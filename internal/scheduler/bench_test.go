package scheduler

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchCell builds a cell of n unit machines, each pre-loaded with
// residents residents of the given tier/priority, and a scheduler over it
// running the default (LeastAllocated) policy.
func benchCell(n, residents int, tier trace.Tier, priority int, limit, usage trace.Resources, oc cluster.OvercommitPolicy) (*Scheduler, *cluster.Cell) {
	return benchPolicyCell(LeastAllocated, n, residents, tier, priority, limit, usage, oc)
}

// benchPolicyCell is benchCell with an explicit placement policy, for
// per-policy fast-path benchmarks and allocation guards.
func benchPolicyCell(policy PlacementPolicy, n, residents int, tier trace.Tier, priority int, limit, usage trace.Resources, oc cluster.OvercommitPolicy) (*Scheduler, *cluster.Cell) {
	cell := cluster.NewCell("bench")
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Policy = policy
	cfg.Batch = nil
	cfg.Overcommit = oc
	cfg.ServiceTime = dist.Deterministic{Value: 0.001}
	s := New(cfg, cell, k, trace.NopSink{}, rng.New(7))
	id := trace.CollectionID(1)
	for i := 0; i < n; i++ {
		m := cell.AddMachine(trace.Resources{CPU: 1, Mem: 1}, "P0")
		for r := 0; r < residents; r++ {
			cell.Place(m.ID, &cluster.Resident{
				Key:      trace.InstanceKey{Collection: id},
				Limit:    limit,
				Priority: priority,
				Tier:     tier,
				Usage:    usage,
			})
			id++
		}
	}
	return s, cell
}

// benchTask returns a pending task of the given shape.
func benchTask(req trace.Resources, priority int, tier trace.Tier) *Task {
	j := NewJob(999999)
	j.Type = trace.CollectionJob
	j.Priority = priority
	j.Tier = tier
	t := &Task{Request: req, Duration: sim.Hour}
	j.AddTask(t)
	return t
}

// BenchmarkPlacement measures the steady-state placement fast path: one
// candidate-sampling scoring pass plus the place/remove cell mutations a
// real placement cycle performs. The loop must not allocate.
func BenchmarkPlacement(b *testing.B) {
	s, cell := benchCell(200, 12, trace.TierMid, 110,
		trace.Resources{CPU: 0.03, Mem: 0.03}, trace.Resources{CPU: 0.02, Mem: 0.02},
		cluster.OvercommitPolicy{CPUFactor: 1.5, MemFactor: 1.45})
	t := benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 120, trace.TierProduction)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := s.pickMachine(t)
		if m == nil {
			b.Fatal("no feasible machine")
		}
		cell.Place(m.ID, s.takeResident(t.Key, t.Request, t.Job.Priority, t.Job.Tier))
		s.releaseResident(cell.Remove(m.ID, t.Key))
	}
}

// BenchmarkInstrumentedPlacement is BenchmarkPlacement against a
// scheduler wired to a caller-supplied metrics registry: the same
// steady-state cycle with every sched_* counter live. Benchgate holds it
// to the uninstrumented baseline's tolerance band with allocs/op pinned
// at 0 — counters must stay batched atomic adds, never allocations.
func BenchmarkInstrumentedPlacement(b *testing.B) {
	reg := metrics.NewRegistry()
	cell := cluster.NewCell("bench")
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Batch = nil
	cfg.ServiceTime = dist.Deterministic{Value: 0.001}
	cfg.Metrics = reg
	s := New(cfg, cell, k, trace.NopSink{}, rng.New(7))
	id := trace.CollectionID(1)
	for i := 0; i < 200; i++ {
		m := cell.AddMachine(trace.Resources{CPU: 1, Mem: 1}, "P0")
		for r := 0; r < 12; r++ {
			cell.Place(m.ID, &cluster.Resident{
				Key:      trace.InstanceKey{Collection: id},
				Limit:    trace.Resources{CPU: 0.03, Mem: 0.03},
				Priority: 110,
				Tier:     trace.TierMid,
				Usage:    trace.Resources{CPU: 0.02, Mem: 0.02},
			})
			id++
		}
	}
	t := benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 120, trace.TierProduction)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := s.pickMachine(t)
		if m == nil {
			b.Fatal("no feasible machine")
		}
		cell.Place(m.ID, s.takeResident(t.Key, t.Request, t.Job.Priority, t.Job.Tier))
		s.releaseResident(cell.Remove(m.ID, t.Key))
	}
	b.StopTimer()
	if reg.Counter("sched_score_cache_hits_total").Value()+
		reg.Counter("sched_score_cache_misses_total").Value() == 0 {
		b.Fatal("instrumented run recorded no score-cache activity")
	}
}

// BenchmarkPlacementPolicy measures the same steady-state placement
// cycle as BenchmarkPlacement once per registered policy, so benchgate
// can hold the whole zoo to the PR 3 fast path (0 allocs/op and
// comparable per-placement cost through the score cache).
func BenchmarkPlacementPolicy(b *testing.B) {
	for _, p := range Policies() {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			s, cell := benchPolicyCell(p, 200, 12, trace.TierMid, 110,
				trace.Resources{CPU: 0.03, Mem: 0.03}, trace.Resources{CPU: 0.02, Mem: 0.02},
				cluster.OvercommitPolicy{CPUFactor: 1.5, MemFactor: 1.45})
			t := benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 120, trace.TierProduction)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := s.pickMachine(t)
				if m == nil {
					b.Fatal("no feasible machine")
				}
				cell.Place(m.ID, s.takeResident(t.Key, t.Request, t.Job.Priority, t.Job.Tier))
				s.releaseResident(cell.Remove(m.ID, t.Key))
			}
		})
	}
}

// BenchmarkPreemption measures the preemption probe on machines whose
// residents are all production-tier (unpreemptable): every candidate's
// victim order is walked end to end and no eviction happens, so the loop
// isolates the scan cost.
func BenchmarkPreemption(b *testing.B) {
	s, _ := benchCell(64, 20, trace.TierProduction, 120,
		trace.Resources{CPU: 0.05, Mem: 0.05}, trace.Resources{CPU: 0.03, Mem: 0.03},
		cluster.OvercommitPolicy{CPUFactor: 1, MemFactor: 1})
	t := benchTask(trace.Resources{CPU: 0.5, Mem: 0.5}, 200, trace.TierProduction)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := s.tryPreemption(t); m != nil {
			b.Fatal("preemption should be impossible")
		}
	}
}
