package scheduler

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Submit enters a job (or alloc set) into the system at the current
// simulation time, emitting SUBMIT rows and routing it either to the batch
// queue or straight to the ready state.
func (s *Scheduler) Submit(j *Job) {
	now := s.k.Now()
	if _, dup := s.jobs[j.ID]; dup {
		panic(fmt.Sprintf("scheduler: duplicate job %d", j.ID))
	}
	if len(j.Tasks) == 0 {
		panic(fmt.Sprintf("scheduler: job %d has no tasks", j.ID))
	}
	s.jobs[j.ID] = j
	s.met.jobsSubmitted.Inc()
	j.State = JobSubmitted
	j.SubmitTime = now
	j.FinalType = trace.EventSubmit
	j.liveTasks = len(j.Tasks)
	for _, t := range j.Tasks {
		t.remaining = t.Duration
		t.planSegments()
	}

	if j.Parent != 0 {
		s.children[j.Parent] = append(s.children[j.Parent], j)
	}
	if j.Type == trace.CollectionJob && j.AllocSet != 0 {
		s.allocJobs[j.AllocSet] = append(s.allocJobs[j.AllocSet], j)
	}

	s.emitCollection(j, trace.EventSubmit)
	for _, t := range j.Tasks {
		s.emitInstance(t, trace.EventSubmit, now)
		t.submitted = true
	}

	// A child whose parent already terminated is killed on arrival —
	// the parent-exit cleanup of §5.2 applies to late submissions too.
	if j.Parent != 0 {
		if parent := s.jobs[j.Parent]; parent == nil || parent.State == JobDone {
			s.KillJob(j, trace.EventKill)
			return
		}
	}

	// Schedule the scripted user kill, if any. Parent-driven kills happen
	// via propagation instead.
	if j.KillAfter > 0 {
		j.killEvent = s.k.After(j.KillAfter, func(sim.Time) {
			s.KillJob(j, trace.EventKill)
		})
	}

	// Batch-tier jobs go through the batch scheduler's queue (§3); all
	// others are immediately ready.
	if s.cfg.Batch != nil && j.Scheduler == trace.SchedulerBatch {
		j.State = JobQueued
		s.emitCollection(j, trace.EventQueue)
		s.batchQueue = append(s.batchQueue, j)
		return
	}
	s.enableJob(j)
}

// enableJob marks a job ready and enqueues its tasks for placement.
func (s *Scheduler) enableJob(j *Job) {
	j.State = JobReady
	j.ReadyTime = s.k.Now()
	s.emitCollection(j, trace.EventEnable)
	for _, t := range j.Tasks {
		s.enqueue(t)
	}
}

// batchAdmissionCheck admits queued batch jobs while the best-effort batch
// tier's allocation is below the configured ceiling.
func (s *Scheduler) batchAdmissionCheck() {
	if len(s.batchQueue) == 0 {
		return
	}
	cfg := s.cfg.Batch
	admitted := 0
	for len(s.batchQueue) > 0 && admitted < cfg.MaxAdmitPerCheck {
		if s.bebAllocatedFraction() >= cfg.AllocCeiling {
			break
		}
		j := s.batchQueue[0]
		s.batchQueue = s.batchQueue[1:]
		if j.State == JobDone {
			continue // killed while queued
		}
		admitted++
		s.met.batchAdmitted.Inc()
		s.enableJob(j)
	}
}

// bebAllocatedFraction returns the best-effort batch tier's current share
// of cell CPU capacity, counting both running allocations and tasks already
// waiting for placement. The numerator is the incrementally maintained
// bebAllocCPU sum — O(1) per admission check instead of walking every job
// ever submitted — and, unlike the recomputed walk it replaced, its
// summation order is simulation order, not map order, so the value is
// identical across same-seed runs down to the last bit.
func (s *Scheduler) bebAllocatedFraction() float64 {
	capacity := s.cell.Capacity().CPU
	if capacity <= 0 {
		return 1
	}
	return s.bebAllocCPU / capacity
}

// bebAllocatedFractionRecomputed is the pre-incremental full walk, kept
// as the oracle for the equivalence test: the two must agree to floating-
// point reassociation noise at every admission check. Jobs are visited in
// sorted ID order so the oracle itself is reproducible.
func (s *Scheduler) bebAllocatedFractionRecomputed() float64 {
	capacity := s.cell.Capacity().CPU
	if capacity <= 0 {
		return 1
	}
	ids := make([]trace.CollectionID, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	alloc := 0.0
	for _, id := range ids {
		j := s.jobs[id]
		if j.Tier != trace.TierBestEffortBatch || j.State == JobDone || j.State == JobQueued {
			continue
		}
		for _, t := range j.Tasks {
			if t.State == TaskRunning || t.State == TaskPending {
				alloc += t.Request.CPU
			}
		}
	}
	return alloc / capacity
}

// planSegments splits the task's remaining duration into equal segments,
// one per scripted crash-restart plus the final run, preserving the total
// resource integral while generating FAIL churn (Figure 9).
func (t *Task) planSegments() {
	n := sim.Time(t.Restarts + 1)
	t.segment = t.remaining / n
	if t.segment <= 0 {
		t.segment = 1
	}
}

// startRunning transitions a placed task to running and schedules the end
// of its current segment.
func (s *Scheduler) startRunning(t *Task, m trace.MachineID) {
	now := s.k.Now()
	t.State = TaskRunning
	t.Machine = m
	t.runStart = now
	s.running[t.Key] = t
	if t.Job.FirstRun < 0 {
		t.Job.FirstRun = now
	}
	s.emitInstance(t, trace.EventSchedule, now)

	segment := t.segment
	if segment > t.remaining {
		segment = t.remaining
	}
	if segment <= 0 {
		segment = 1
	}
	if t.endFn == nil {
		t.endFn = func(sim.Time) { s.segmentEnd(t) }
	}
	t.endEvent = s.k.After(segment, t.endFn)
}

// segmentEnd handles a task reaching the end of a running segment: either
// a scripted crash-restart or final termination.
func (s *Scheduler) segmentEnd(t *Task) {
	now := s.k.Now()
	t.endEvent = sim.EventRef{}
	ran := now - t.runStart
	t.remaining -= ran
	if t.remaining < 0 {
		t.remaining = 0
	}
	s.unplace(t, !(t.Restarts > 0 && t.remaining > 0))

	if t.Restarts > 0 && t.remaining > 0 {
		// Scripted crash: FAIL, then come back after the restart delay.
		t.Restarts--
		s.met.tasksFailedRestarts.Inc()
		s.emitInstance(t, trace.EventFail, now)
		s.requeueAfter(t, s.cfg.FailRestartDelay)
		return
	}

	// Final termination of this task, with the job's scripted outcome.
	final := trace.EventFinish
	if t.Job.Outcome == OutcomeFail {
		final = trace.EventFail
	}
	s.finishTask(t, final)
}

// finishTask marks a task dead and, if it is the job's last live task,
// terminates the job.
func (s *Scheduler) finishTask(t *Task, final trace.EventType) {
	if t.State == TaskDead {
		return
	}
	t.State = TaskDead
	s.accountBEB(t)
	s.emitInstance(t, final, s.k.Now())
	t.Job.liveTasks--
	if t.Job.liveTasks <= 0 && t.Job.State != JobDone {
		s.terminateJob(t.Job, final)
	}
}

// terminateJob emits the job's terminal event and propagates kills to
// children (§5.2: a child job is killed automatically when its parent
// terminates).
func (s *Scheduler) terminateJob(j *Job, final trace.EventType) {
	if j.State == JobDone {
		return
	}
	j.State = JobDone
	j.FinalType = final
	s.accountBEBJob(j)
	s.k.Cancel(j.killEvent)
	j.killEvent = sim.EventRef{}
	s.emitCollection(j, final)

	// Alloc set teardown: kill the jobs still running inside it.
	if j.Type == trace.CollectionAllocSet {
		s.teardownAllocSet(j)
	}

	for _, child := range s.children[j.ID] {
		if child.State != JobDone {
			s.KillJob(child, trace.EventKill)
		}
	}
	delete(s.children, j.ID)
}

// KillJob cancels a job: running tasks are stopped, pending tasks are
// withdrawn, and the collection-level terminal event is emitted.
func (s *Scheduler) KillJob(j *Job, final trace.EventType) {
	if j.State == JobDone {
		return
	}
	now := s.k.Now()
	for _, t := range j.Tasks {
		switch t.State {
		case TaskRunning:
			s.k.Cancel(t.endEvent)
			t.endEvent = sim.EventRef{}
			s.unplace(t, true)
			t.State = TaskDead
			s.emitInstance(t, final, now)
		case TaskPending, TaskWaiting:
			s.k.Cancel(t.retryEvent)
			t.retryEvent = sim.EventRef{}
			t.State = TaskDead
			s.emitInstance(t, final, now)
		}
	}
	j.liveTasks = 0
	s.terminateJob(j, final)
}

// unplace removes a running task from its machine (and alloc instance),
// leaving its state untouched; callers decide what happens next. terminal
// says whether the task is ending for good (vs. being evicted): a
// terminally de-scheduled alloc instance kills its inner jobs, an evicted
// one merely displaces them.
func (s *Scheduler) unplace(t *Task, terminal bool) {
	if t.Machine == 0 {
		return
	}
	if s.UnplaceHook != nil {
		s.UnplaceHook(t, t.runStart)
	}
	delete(s.running, t.Key)
	// A de-scheduled alloc instance takes its reservation with it.
	if t.Job.Type == trace.CollectionAllocSet {
		s.removeAllocInstance(t.Key, terminal)
	}
	if t.AllocInstance.Collection != 0 {
		if ai := s.findAllocInstance(t.AllocInstance); ai != nil {
			ai.Used = ai.Used.Sub(t.Request)
			delete(ai.tasks, t.Key)
		}
		t.AllocInstance = trace.InstanceKey{}
	}
	if m := s.cell.Machine(t.Machine); m != nil && m.Resident(t.Key) != nil {
		// The detached record is recycled: nothing else may retain it.
		s.releaseResident(s.cell.Remove(t.Machine, t.Key))
	}
	t.Machine = 0
}

// Evict de-schedules a running task for an infrastructure reason (§5.2:
// machine failure, OS upgrade, preemption, or overcommit pressure) and
// requeues it for rescheduling after the eviction restart delay.
func (s *Scheduler) Evict(t *Task) {
	if t.State != TaskRunning {
		return
	}
	now := s.k.Now()
	s.k.Cancel(t.endEvent)
	t.endEvent = sim.EventRef{}
	ran := now - t.runStart
	t.remaining -= ran
	if t.remaining < 0 {
		t.remaining = 0
	}
	s.unplace(t, false)
	t.Evictions++
	s.emitInstance(t, trace.EventEvict, now)

	if t.remaining == 0 {
		// Evicted at the very end of its run; treat as completed work.
		final := trace.EventFinish
		if t.Job.Outcome == OutcomeFail {
			final = trace.EventFail
		}
		s.finishTask(t, final)
		return
	}
	s.requeueAfter(t, s.cfg.EvictionRestartDelay)
}

// requeueAfter re-queues a de-scheduled task: the trace-visible re-SUBMIT
// happens immediately (the instance is pending again, as in the real
// trace), while actual placement eligibility is delayed.
func (s *Scheduler) requeueAfter(t *Task, delay sim.Time) {
	t.State = TaskWaiting
	s.accountBEB(t)
	t.Reschedules++
	s.emitInstance(t, trace.EventSubmit, s.k.Now())
	t.retryEvent = s.k.After(delay, s.retryFn(t))
}

// EvictMachine evicts residents of a machine for maintenance (an OS
// upgrade, about one per machine-month, §5.2). Production-tier residents
// are usually spared: Borg's eviction-rate SLOs protect them (migrated
// gracefully, which the trace does not record as an EVICT).
func (s *Scheduler) EvictMachine(id trace.MachineID) {
	m := s.cell.Machine(id)
	if m == nil {
		return
	}
	s.met.machineEvictions.Inc()
	for _, r := range m.Residents() {
		if r.Tier == trace.TierProduction && !s.src.Bool(s.cfg.ProdEvictionSLO) {
			continue
		}
		if t := s.taskByKey(r.Key); t != nil {
			s.Evict(t)
		}
	}
}

// HandleMemoryPressure evicts the lowest-priority residents of a machine
// until summed memory usage fits under limitMem (§5.2: "the machine was
// over-committed and Borg had to kill one or more instances"). Pass the
// machine's memory capacity, less any already-committed window usage.
func (s *Scheduler) HandleMemoryPressure(id trace.MachineID, limitMem float64) int {
	m := s.cell.Machine(id)
	if m == nil {
		return 0
	}
	evicted := 0
	for m.UsageTotal().Mem > limitMem+1e-9 {
		victim := pickOOMVictim(m.Residents())
		if victim == nil {
			break
		}
		t := s.taskByKey(victim.Key)
		if t == nil {
			break
		}
		if victim.Limit.Mem > 0 && victim.Usage.Mem > victim.Limit.Mem {
			// Over its own limit: the task FAILs (§5.2: "trying to use
			// more resources than it had requested"), rather than being
			// evicted by the infrastructure.
			s.failOverLimit(t)
			s.met.oomKills.Inc()
		} else {
			s.Evict(t)
			s.met.oomEvictions.Inc()
		}
		evicted++
	}
	return evicted
}

// failOverLimit crashes a task that exceeded its own memory limit. The
// first failure restarts it (a crashloop the trace is full of); repeat
// offenders die for good — their memory demand simply does not fit the
// request, and Borg will not reschedule them forever.
func (s *Scheduler) failOverLimit(t *Task) {
	if t.State != TaskRunning {
		return
	}
	now := s.k.Now()
	s.k.Cancel(t.endEvent)
	t.endEvent = sim.EventRef{}
	ran := now - t.runStart
	t.remaining -= ran
	if t.remaining < 0 {
		t.remaining = 0
	}
	t.oomFails++
	if t.oomFails >= 2 || t.remaining == 0 {
		s.unplace(t, true)
		s.finishTask(t, trace.EventFail)
		return
	}
	s.unplace(t, false)
	s.emitInstance(t, trace.EventFail, now)
	s.requeueAfter(t, s.cfg.FailRestartDelay)
}

// pickOOMVictim chooses which resident dies under memory pressure:
// first a non-production resident using more memory than its limit (the
// culprit), then the weakest non-production resident, and only as a last
// resort a production resident — eviction SLOs shield the production tier
// (§5.2). residents arrive sorted weakest-first. Zero-limit residents are
// reservation-backed (alloc-hosted) and not treated as over-limit.
func pickOOMVictim(residents []*cluster.Resident) *cluster.Resident {
	for _, r := range residents {
		if r.Tier != trace.TierProduction && r.Limit.Mem > 0 && r.Usage.Mem > r.Limit.Mem {
			return r
		}
	}
	for _, r := range residents {
		if r.Tier != trace.TierProduction {
			return r
		}
	}
	if len(residents) > 0 {
		return residents[0]
	}
	return nil
}

// taskByKey resolves an instance key to its live task.
func (s *Scheduler) taskByKey(key trace.InstanceKey) *Task {
	j := s.jobs[key.Collection]
	if j == nil || int(key.Index) >= len(j.Tasks) {
		return nil
	}
	return j.Tasks[key.Index]
}

// emitCollection emits a collection event carrying the job's static
// attributes.
func (s *Scheduler) emitCollection(j *Job, typ trace.EventType) {
	s.sink.CollectionEvent(trace.CollectionEvent{
		Time:           s.k.Now(),
		Collection:     j.ID,
		Type:           typ,
		CollectionType: j.Type,
		Priority:       j.Priority,
		Tier:           j.Tier,
		User:           j.User,
		Parent:         j.Parent,
		AllocSet:       j.AllocSet,
		Scheduler:      j.Scheduler,
		Scaling:        j.Scaling,
	})
}

// emitInstance emits an instance event for a task.
func (s *Scheduler) emitInstance(t *Task, typ trace.EventType, now sim.Time) {
	s.sink.InstanceEvent(trace.InstanceEvent{
		Time:          now,
		Key:           t.Key,
		Type:          typ,
		Machine:       t.Machine,
		Priority:      t.Job.Priority,
		Tier:          t.Job.Tier,
		Request:       t.Request,
		AllocInstance: t.AllocInstance,
	})
}
