package scheduler

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testRig wires a small cell, kernel, sink and scheduler for tests.
type testRig struct {
	cell  *cluster.Cell
	k     *sim.Kernel
	tr    *trace.MemTrace
	sched *Scheduler
}

func newRig(t *testing.T, cfg Config, machines int, capacity trace.Resources) *testRig {
	t.Helper()
	cell := cluster.NewCell("test")
	k := sim.NewKernel()
	tr := trace.NewMemTrace(trace.Meta{Era: trace.Era2019, Cell: "test"})
	for i := 0; i < machines; i++ {
		m := cell.AddMachine(capacity, "P0")
		tr.MachineEvent(trace.MachineEvent{Time: 0, Machine: m.ID, Type: trace.MachineAdd, Capacity: capacity, Platform: "P0"})
	}
	sched := New(cfg, cell, k, tr, rng.New(42))
	return &testRig{cell: cell, k: k, tr: tr, sched: sched}
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.ServiceTime = dist.Deterministic{Value: 0.001}
	cfg.Batch = nil
	cfg.RetryBackoff = 1 * sim.Second
	cfg.EvictionRestartDelay = 1 * sim.Second
	cfg.FailRestartDelay = 1 * sim.Second
	return cfg
}

func mkJob(id trace.CollectionID, priority int, tier trace.Tier, tasks int, req trace.Resources, duration sim.Time) *Job {
	j := NewJob(id)
	j.Type = trace.CollectionJob
	j.Priority = priority
	j.Tier = tier
	j.User = "u"
	for i := 0; i < tasks; i++ {
		j.AddTask(&Task{Request: req, Duration: duration, MeanCPU: req.CPU * 0.5, MeanMem: req.Mem * 0.5, PeakFact: 1.2})
	}
	return j
}

func eventsOfType(tr *trace.MemTrace, id trace.CollectionID, typ trace.EventType) int {
	n := 0
	for _, ev := range tr.EventsOf(id) {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

func instanceEventsOfType(tr *trace.MemTrace, id trace.CollectionID, typ trace.EventType) int {
	n := 0
	for _, ev := range tr.InstanceEvents {
		if ev.Key.Collection == id && ev.Type == typ {
			n++
		}
	}
	return n
}

func TestSimpleJobLifecycle(t *testing.T) {
	rig := newRig(t, fastConfig(), 4, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 120, trace.TierProduction, 3, trace.Resources{CPU: 0.2, Mem: 0.2}, 10*sim.Minute)
	rig.k.At(1*sim.Second, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(1 * sim.Hour)

	if j.State != JobDone || j.FinalType != trace.EventFinish {
		t.Fatalf("job state %v final %v", j.State, j.FinalType)
	}
	if got := eventsOfType(rig.tr, 1, trace.EventSubmit); got != 1 {
		t.Fatalf("collection SUBMITs %d", got)
	}
	if got := eventsOfType(rig.tr, 1, trace.EventEnable); got != 1 {
		t.Fatalf("collection ENABLEs %d", got)
	}
	if got := eventsOfType(rig.tr, 1, trace.EventFinish); got != 1 {
		t.Fatalf("collection FINISHes %d", got)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventSchedule); got != 3 {
		t.Fatalf("instance SCHEDULEs %d", got)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventFinish); got != 3 {
		t.Fatalf("instance FINISHes %d", got)
	}
	// All resources released.
	rig.cell.Machines(func(m *cluster.Machine) {
		if m.NumResidents() != 0 {
			t.Fatalf("machine %d still has residents", m.ID)
		}
		if m.Allocated().CPU != 0 {
			t.Fatalf("machine %d allocation leak %v", m.ID, m.Allocated())
		}
	})
	if j.FirstRun < 0 {
		t.Fatal("FirstRun not recorded")
	}
	// Scheduling delay should be small but positive (service time).
	if d := j.FirstRun - j.ReadyTime; d <= 0 || d > 10*sim.Second {
		t.Fatalf("scheduling delay %v", d)
	}
}

func TestJobDurationRespected(t *testing.T) {
	rig := newRig(t, fastConfig(), 2, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 120, trace.TierProduction, 1, trace.Resources{CPU: 0.1, Mem: 0.1}, 30*sim.Minute)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(2 * sim.Hour)
	var sched, finish sim.Time
	for _, ev := range rig.tr.InstanceEvents {
		if ev.Type == trace.EventSchedule {
			sched = ev.Time
		}
		if ev.Type == trace.EventFinish {
			finish = ev.Time
		}
	}
	ran := finish - sched
	if ran != 30*sim.Minute {
		t.Fatalf("task ran %v, want 30m", ran)
	}
}

func TestBatchQueueing(t *testing.T) {
	cfg := fastConfig()
	cfg.Batch = &BatchConfig{CheckPeriod: 10 * sim.Second, AllocCeiling: 0.5, MaxAdmitPerCheck: 1}
	rig := newRig(t, cfg, 4, trace.Resources{CPU: 1, Mem: 1})

	j1 := mkJob(1, 110, trace.TierBestEffortBatch, 1, trace.Resources{CPU: 0.2, Mem: 0.2}, 20*sim.Minute)
	j1.Scheduler = trace.SchedulerBatch
	j2 := mkJob(2, 110, trace.TierBestEffortBatch, 1, trace.Resources{CPU: 0.2, Mem: 0.2}, 20*sim.Minute)
	j2.Scheduler = trace.SchedulerBatch
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j1); rig.sched.Submit(j2) })
	rig.k.RunUntil(1 * sim.Hour)

	for _, id := range []trace.CollectionID{1, 2} {
		if got := eventsOfType(rig.tr, id, trace.EventQueue); got != 1 {
			t.Fatalf("job %d QUEUE events %d", id, got)
		}
		if got := eventsOfType(rig.tr, id, trace.EventEnable); got != 1 {
			t.Fatalf("job %d ENABLE events %d", id, got)
		}
	}
	// MaxAdmitPerCheck=1 means the jobs were admitted at different ticks.
	var enables []sim.Time
	for _, ev := range rig.tr.CollectionEvents {
		if ev.Type == trace.EventEnable {
			enables = append(enables, ev.Time)
		}
	}
	if len(enables) != 2 || enables[0] == enables[1] {
		t.Fatalf("batch admissions not staggered: %v", enables)
	}
	if rig.sched.Stats().BatchAdmitted != 2 {
		t.Fatalf("batch admitted %d", rig.sched.Stats().BatchAdmitted)
	}
}

func TestBatchCeilingHoldsJobs(t *testing.T) {
	cfg := fastConfig()
	cfg.Batch = &BatchConfig{CheckPeriod: 10 * sim.Second, AllocCeiling: 0.1, MaxAdmitPerCheck: 10}
	rig := newRig(t, cfg, 2, trace.Resources{CPU: 1, Mem: 1})

	// First job takes 15% of cell CPU: above the ceiling once running.
	j1 := mkJob(1, 110, trace.TierBestEffortBatch, 3, trace.Resources{CPU: 0.1, Mem: 0.1}, 30*sim.Minute)
	j1.Scheduler = trace.SchedulerBatch
	j2 := mkJob(2, 110, trace.TierBestEffortBatch, 1, trace.Resources{CPU: 0.1, Mem: 0.1}, 10*sim.Minute)
	j2.Scheduler = trace.SchedulerBatch
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j1); rig.sched.Submit(j2) })
	rig.k.RunUntil(20 * sim.Minute)

	if j1.State == JobQueued {
		t.Fatal("first job should have been admitted")
	}
	if j2.State != JobQueued {
		t.Fatalf("second job state %v, want still queued", j2.State)
	}
	// After the first job completes, the second is admitted.
	rig.k.RunUntil(2 * sim.Hour)
	if j2.State != JobDone {
		t.Fatalf("second job never completed: %v", j2.State)
	}
}

func TestPriorityOrdering(t *testing.T) {
	cfg := fastConfig()
	cfg.ServiceTime = dist.Deterministic{Value: 1.0} // slow server to build a queue
	rig := newRig(t, cfg, 4, trace.Resources{CPU: 1, Mem: 1})
	free := mkJob(1, 0, trace.TierFree, 2, trace.Resources{CPU: 0.1, Mem: 0.1}, 10*sim.Minute)
	prod := mkJob(2, 200, trace.TierProduction, 2, trace.Resources{CPU: 0.1, Mem: 0.1}, 10*sim.Minute)
	// Free submitted first, but prod must be placed first.
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(free) })
	rig.k.At(sim.Millisecond, func(sim.Time) { rig.sched.Submit(prod) })
	rig.k.RunUntil(1 * sim.Hour)

	var firstProd, firstFree sim.Time = -1, -1
	for _, ev := range rig.tr.InstanceEvents {
		if ev.Type != trace.EventSchedule {
			continue
		}
		if ev.Key.Collection == 2 && firstProd < 0 {
			firstProd = ev.Time
		}
		if ev.Key.Collection == 1 && firstFree < 0 {
			firstFree = ev.Time
		}
	}
	if firstProd < 0 || firstFree < 0 {
		t.Fatal("both jobs must run")
	}
	// The very first placement may be the free task (already in service),
	// but prod must not wait behind both free tasks.
	if firstProd > firstFree {
		prodCount := 0
		for _, ev := range rig.tr.InstanceEvents {
			if ev.Type == trace.EventSchedule && ev.Time <= firstFree && ev.Key.Collection == 2 {
				prodCount++
			}
		}
		if prodCount == 0 {
			t.Fatalf("prod first at %v, free first at %v: priority inversion", firstProd, firstFree)
		}
	}
}

func TestPreemption(t *testing.T) {
	cfg := fastConfig()
	cfg.Overcommit = cluster.OvercommitPolicy{CPUFactor: 1, MemFactor: 1}
	rig := newRig(t, cfg, 1, trace.Resources{CPU: 1, Mem: 1})

	filler := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.9, Mem: 0.9}, 5*sim.Hour)
	prod := mkJob(2, 200, trace.TierProduction, 1, trace.Resources{CPU: 0.8, Mem: 0.8}, 30*sim.Minute)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(filler) })
	rig.k.At(1*sim.Minute, func(sim.Time) { rig.sched.Submit(prod) })
	rig.k.RunUntil(8 * sim.Hour)

	if got := instanceEventsOfType(rig.tr, 1, trace.EventEvict); got < 1 {
		t.Fatalf("filler evictions %d, want >= 1", got)
	}
	if rig.sched.Stats().Preemptions < 1 {
		t.Fatalf("preemption count %d", rig.sched.Stats().Preemptions)
	}
	if prod.State != JobDone || prod.FinalType != trace.EventFinish {
		t.Fatalf("prod job %v/%v", prod.State, prod.FinalType)
	}
	// The evicted filler is rescheduled after prod finishes and completes.
	if filler.State != JobDone {
		t.Fatalf("filler state %v", filler.State)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventSubmit); got < 2 {
		t.Fatalf("filler should have re-SUBMIT after eviction, got %d submits", got)
	}
}

func TestNoPreemptionWhenDisabled(t *testing.T) {
	cfg := fastConfig()
	cfg.EnablePreemption = false
	cfg.Overcommit = cluster.OvercommitPolicy{CPUFactor: 1, MemFactor: 1}
	rig := newRig(t, cfg, 1, trace.Resources{CPU: 1, Mem: 1})
	filler := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.9, Mem: 0.9}, 30*sim.Minute)
	prod := mkJob(2, 200, trace.TierProduction, 1, trace.Resources{CPU: 0.8, Mem: 0.8}, 10*sim.Minute)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(filler) })
	rig.k.At(1*sim.Minute, func(sim.Time) { rig.sched.Submit(prod) })
	rig.k.RunUntil(4 * sim.Hour)

	if got := instanceEventsOfType(rig.tr, 1, trace.EventEvict); got != 0 {
		t.Fatalf("filler evicted %d times despite preemption disabled", got)
	}
	// Prod waits for the filler to finish, then runs.
	if prod.State != JobDone {
		t.Fatalf("prod never ran: %v", prod.State)
	}
	if rig.sched.Stats().PlacementRetries == 0 {
		t.Fatal("expected placement retries while blocked")
	}
}

func TestParentChildKillPropagation(t *testing.T) {
	rig := newRig(t, fastConfig(), 4, trace.Resources{CPU: 1, Mem: 1})
	parent := mkJob(1, 120, trace.TierProduction, 1, trace.Resources{CPU: 0.1, Mem: 0.1}, 10*sim.Minute)
	child := mkJob(2, 110, trace.TierBestEffortBatch, 2, trace.Resources{CPU: 0.1, Mem: 0.1}, 10*sim.Hour)
	child.Parent = 1
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(parent); rig.sched.Submit(child) })
	rig.k.RunUntil(2 * sim.Hour)

	if parent.State != JobDone || parent.FinalType != trace.EventFinish {
		t.Fatalf("parent %v/%v", parent.State, parent.FinalType)
	}
	if child.State != JobDone || child.FinalType != trace.EventKill {
		t.Fatalf("child %v/%v, want killed", child.State, child.FinalType)
	}
	// Child killed promptly after parent exit.
	var parentEnd, childEnd sim.Time
	for _, ev := range rig.tr.CollectionEvents {
		if ev.Collection == 1 && ev.Type == trace.EventFinish {
			parentEnd = ev.Time
		}
		if ev.Collection == 2 && ev.Type == trace.EventKill {
			childEnd = ev.Time
		}
	}
	if childEnd < parentEnd || childEnd > parentEnd+sim.Minute {
		t.Fatalf("child killed at %v, parent ended %v", childEnd, parentEnd)
	}
}

func TestUserKill(t *testing.T) {
	rig := newRig(t, fastConfig(), 2, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 120, trace.TierProduction, 2, trace.Resources{CPU: 0.1, Mem: 0.1}, 10*sim.Hour)
	j.Outcome = OutcomeKill
	j.KillAfter = 30 * sim.Minute
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(2 * sim.Hour)

	if j.FinalType != trace.EventKill {
		t.Fatalf("final %v", j.FinalType)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventKill); got != 2 {
		t.Fatalf("instance kills %d", got)
	}
	var killTime sim.Time
	for _, ev := range rig.tr.EventsOf(1) {
		if ev.Type == trace.EventKill {
			killTime = ev.Time
		}
	}
	if killTime != 30*sim.Minute {
		t.Fatalf("killed at %v", killTime)
	}
}

func TestFailRestartChurn(t *testing.T) {
	rig := newRig(t, fastConfig(), 2, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 120, trace.TierProduction, 1, trace.Resources{CPU: 0.1, Mem: 0.1}, 30*sim.Minute)
	j.Tasks[0].Restarts = 2
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(4 * sim.Hour)

	if got := instanceEventsOfType(rig.tr, 1, trace.EventFail); got != 2 {
		t.Fatalf("FAILs %d, want 2 scripted restarts", got)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventSubmit); got != 3 {
		t.Fatalf("SUBMITs %d, want 1 + 2 resubmits", got)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventSchedule); got != 3 {
		t.Fatalf("SCHEDULEs %d", got)
	}
	if j.FinalType != trace.EventFinish {
		t.Fatalf("final %v", j.FinalType)
	}
	// Total running time across segments equals the scripted duration.
	var running, lastStart sim.Time
	for _, ev := range rig.tr.InstanceEvents {
		switch ev.Type {
		case trace.EventSchedule:
			lastStart = ev.Time
		case trace.EventFail, trace.EventFinish:
			running += ev.Time - lastStart
		}
	}
	if running != 30*sim.Minute {
		t.Fatalf("total running %v, want 30m", running)
	}
}

func TestOutcomeFail(t *testing.T) {
	rig := newRig(t, fastConfig(), 2, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.1, Mem: 0.1}, 10*sim.Minute)
	j.Outcome = OutcomeFail
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(1 * sim.Hour)
	if j.FinalType != trace.EventFail {
		t.Fatalf("final %v, want FAIL", j.FinalType)
	}
}

func TestEvictMachine(t *testing.T) {
	rig := newRig(t, fastConfig(), 2, trace.Resources{CPU: 1, Mem: 1})
	// Free tier: maintenance always evicts below-production residents.
	j := mkJob(1, 0, trace.TierFree, 4, trace.Resources{CPU: 0.3, Mem: 0.3}, 2*sim.Hour)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.At(30*sim.Minute, func(sim.Time) {
		rig.sched.EvictMachine(rig.cell.MachineIDs()[0])
	})
	rig.k.RunUntil(6 * sim.Hour)

	if got := instanceEventsOfType(rig.tr, 1, trace.EventEvict); got < 1 {
		t.Fatalf("evictions %d", got)
	}
	if j.State != JobDone || j.FinalType != trace.EventFinish {
		t.Fatalf("job %v/%v — evicted tasks must be rescheduled and finish", j.State, j.FinalType)
	}
	if rig.sched.Stats().MachineEvictions != 1 {
		t.Fatalf("machine evictions %d", rig.sched.Stats().MachineEvictions)
	}
}

func TestHandleMemoryPressure(t *testing.T) {
	rig := newRig(t, fastConfig(), 1, trace.Resources{CPU: 1, Mem: 1})
	low := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.1, Mem: 0.55}, 5*sim.Hour)
	high := mkJob(2, 200, trace.TierProduction, 1, trace.Resources{CPU: 0.1, Mem: 0.55}, 5*sim.Hour)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(low); rig.sched.Submit(high) })
	rig.k.RunUntil(10 * sim.Minute)

	// Aggregate pressure: both tasks are within their own limits, but
	// the machine total exceeds capacity.
	m := rig.cell.Machine(rig.cell.MachineIDs()[0])
	for _, r := range m.Residents() {
		m.SetUsage(r.Key, trace.Resources{CPU: 0.1, Mem: 0.52})
	}
	evicted := rig.sched.HandleMemoryPressure(m.ID, m.Capacity.Mem)
	if evicted != 1 {
		t.Fatalf("evicted %d, want exactly 1", evicted)
	}
	// The free-tier task must be the victim, via an EVICT event.
	if got := instanceEventsOfType(rig.tr, 1, trace.EventEvict); got != 1 {
		t.Fatalf("free-tier evictions %d", got)
	}
	if got := instanceEventsOfType(rig.tr, 2, trace.EventEvict); got != 0 {
		t.Fatalf("prod evicted %d times", got)
	}
	if rig.sched.Stats().OOMEvictions != 1 {
		t.Fatalf("oom evictions %d", rig.sched.Stats().OOMEvictions)
	}
}

func TestMemoryPressureOverLimitFails(t *testing.T) {
	rig := newRig(t, fastConfig(), 1, trace.Resources{CPU: 1, Mem: 1})
	// The culprit exceeds its own limit; an innocent prod task shares
	// the machine.
	culprit := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.1, Mem: 0.2}, 5*sim.Hour)
	victim := mkJob(2, 200, trace.TierProduction, 1, trace.Resources{CPU: 0.1, Mem: 0.6}, 5*sim.Hour)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(culprit); rig.sched.Submit(victim) })
	rig.k.RunUntil(10 * sim.Minute)

	m := rig.cell.Machine(rig.cell.MachineIDs()[0])
	for _, r := range m.Residents() {
		// Collection 1 ends up over its 0.2 limit; the prod task stays
		// within its own limit but contributes to aggregate pressure.
		m.SetUsage(r.Key, trace.Resources{CPU: 0.1, Mem: 0.55})
	}
	rig.sched.HandleMemoryPressure(m.ID, m.Capacity.Mem)
	// The over-limit task FAILs (§5.2 "fail"); no EVICT for it.
	if got := instanceEventsOfType(rig.tr, 1, trace.EventFail); got != 1 {
		t.Fatalf("culprit FAILs %d, want 1", got)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventEvict); got != 0 {
		t.Fatalf("culprit EVICTs %d, want 0", got)
	}
	if rig.sched.Stats().OOMKills != 1 {
		t.Fatalf("oom kills %d", rig.sched.Stats().OOMKills)
	}
}

func TestAllocSetPlacementAndTeardown(t *testing.T) {
	rig := newRig(t, fastConfig(), 4, trace.Resources{CPU: 1, Mem: 1})

	as := NewJob(1)
	as.Type = trace.CollectionAllocSet
	as.Priority = 200
	as.Tier = trace.TierProduction
	as.User = "u"
	for i := 0; i < 2; i++ {
		as.AddTask(&Task{Request: trace.Resources{CPU: 0.5, Mem: 0.5}, Duration: 5 * sim.Hour})
	}

	inner := mkJob(2, 120, trace.TierProduction, 3, trace.Resources{CPU: 0.2, Mem: 0.2}, 4*sim.Hour)
	inner.AllocSet = 1

	rig.k.At(0, func(sim.Time) { rig.sched.Submit(as) })
	rig.k.At(1*sim.Minute, func(sim.Time) { rig.sched.Submit(inner) })
	rig.k.RunUntil(30 * sim.Minute)

	// Inner tasks must be running inside alloc instances.
	running := 0
	rig.sched.RunningTasks(func(t2 *Task) {
		if t2.Job.ID == 2 {
			running++
			if t2.AllocInstance.Collection != 1 {
				t.Fatalf("inner task %s not in alloc instance: %v", t2.Key, t2.AllocInstance)
			}
		}
	})
	if running != 3 {
		t.Fatalf("running inner tasks %d", running)
	}
	// Machine allocation counts only the alloc set reservations, not the
	// inner tasks.
	total := rig.cell.TotalAllocated()
	if total.CPU < 0.99 || total.CPU > 1.01 {
		t.Fatalf("allocated CPU %v, want ~1.0 (two 0.5 reservations)", total.CPU)
	}
	// Instance events for inner tasks carry the alloc instance reference.
	found := false
	for _, ev := range rig.tr.InstanceEvents {
		if ev.Key.Collection == 2 && ev.Type == trace.EventSchedule {
			if ev.AllocInstance.Collection != 1 {
				t.Fatalf("schedule event lacks alloc instance: %+v", ev)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no inner schedule events")
	}

	// Tear the alloc set down early; inner jobs must be killed.
	rig.k.At(35*sim.Minute, func(sim.Time) { rig.sched.KillJob(as, trace.EventKill) })
	rig.k.RunUntil(1 * sim.Hour)
	if inner.State != JobDone || inner.FinalType != trace.EventKill {
		t.Fatalf("inner job %v/%v after alloc set teardown", inner.State, inner.FinalType)
	}
	rig.cell.Machines(func(m *cluster.Machine) {
		if m.NumResidents() != 0 {
			t.Fatalf("machine %d has %d leftover residents", m.ID, m.NumResidents())
		}
	})
}

func TestJobWaitsForAllocSet(t *testing.T) {
	rig := newRig(t, fastConfig(), 2, trace.Resources{CPU: 1, Mem: 1})
	inner := mkJob(2, 120, trace.TierProduction, 1, trace.Resources{CPU: 0.2, Mem: 0.2}, 30*sim.Minute)
	inner.AllocSet = 1 // alloc set not submitted yet
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(inner) })
	rig.k.RunUntil(10 * sim.Minute)
	if inner.FirstRun >= 0 {
		t.Fatal("inner job ran without its alloc set")
	}
	as := NewJob(1)
	as.Type = trace.CollectionAllocSet
	as.Priority = 200
	as.Tier = trace.TierProduction
	as.AddTask(&Task{Request: trace.Resources{CPU: 0.5, Mem: 0.5}, Duration: 5 * sim.Hour})
	rig.k.At(11*sim.Minute, func(sim.Time) { rig.sched.Submit(as) })
	rig.k.RunUntil(2 * sim.Hour)
	if inner.State != JobDone || inner.FinalType != trace.EventFinish {
		t.Fatalf("inner %v/%v — should run once alloc set arrives", inner.State, inner.FinalType)
	}
}

func TestInfeasibleTaskRetries(t *testing.T) {
	rig := newRig(t, fastConfig(), 1, trace.Resources{CPU: 0.5, Mem: 0.5})
	// Request larger than any machine: never placeable.
	j := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.9, Mem: 0.9}, 10*sim.Minute)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(5 * sim.Minute)
	if rig.sched.Stats().PlacementRetries < 2 {
		t.Fatalf("retries %d", rig.sched.Stats().PlacementRetries)
	}
	if j.FirstRun >= 0 {
		t.Fatal("impossible task was placed")
	}
}

func TestDuplicateSubmitPanics(t *testing.T) {
	rig := newRig(t, fastConfig(), 1, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.1, Mem: 0.1}, sim.Minute)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(sim.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate submit did not panic")
		}
	}()
	rig.sched.Submit(j)
}

func TestEmptyJobPanics(t *testing.T) {
	rig := newRig(t, fastConfig(), 1, trace.Resources{CPU: 1, Mem: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("empty job did not panic")
		}
	}()
	rig.sched.Submit(NewJob(9))
}

func TestTraceValidates(t *testing.T) {
	rig := newRig(t, fastConfig(), 4, trace.Resources{CPU: 1, Mem: 1})
	for i := 0; i < 20; i++ {
		id := trace.CollectionID(i + 1)
		tier := trace.TierFree
		prio := 0
		if i%3 == 0 {
			tier, prio = trace.TierProduction, 120
		}
		j := mkJob(id, prio, tier, 1+i%4, trace.Resources{CPU: 0.05, Mem: 0.05}, sim.Time(i+1)*10*sim.Minute)
		if i%5 == 0 {
			j.Tasks[0].Restarts = 1
		}
		delay := sim.Time(i) * 2 * sim.Minute
		rig.k.At(delay, func(sim.Time) { rig.sched.Submit(j) })
	}
	rig.k.RunUntil(24 * sim.Hour)
	violations := trace.Validate(rig.tr, trace.DefaultValidateOptions())
	if len(violations) != 0 {
		t.Fatalf("trace violations: %v", violations)
	}
}

func TestStringers(t *testing.T) {
	if RandomFit.String() != "random-fit" || BestFit.String() != "best-fit" || LeastAllocated.String() != "least-allocated" {
		t.Fatal("policy strings")
	}
	if OutcomeFinish.String() != "finish" || OutcomeKill.String() != "kill" || OutcomeFail.String() != "fail" {
		t.Fatal("outcome strings")
	}
}
