package scheduler

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// checkBEB asserts the incremental beb allocated fraction matches the
// full recomputed walk to floating-point reassociation noise.
func checkBEB(t *testing.T, s *Scheduler, now sim.Time) {
	t.Helper()
	inc := s.bebAllocatedFraction()
	ref := s.bebAllocatedFractionRecomputed()
	if diff := math.Abs(inc - ref); diff > 1e-9*(1+math.Abs(ref)) {
		t.Fatalf("t=%v: incremental beb fraction %.15g != recomputed %.15g (diff %g)",
			now, inc, ref, diff)
	}
}

// TestBEBAllocIncrementalMatchesRecompute drives a churny best-effort
// batch workload — queued admissions, scripted crash-restarts, user
// kills, maintenance evictions, preemption by production jobs — and
// asserts at every admission-check period that the incrementally
// maintained allocated-CPU sum equals the full recomputed walk it
// replaced.
func TestBEBAllocIncrementalMatchesRecompute(t *testing.T) {
	cfg := fastConfig()
	cfg.Batch = &BatchConfig{CheckPeriod: 30 * sim.Second, AllocCeiling: 0.4, MaxAdmitPerCheck: 2}
	rig := newRig(t, cfg, 6, trace.Resources{CPU: 1, Mem: 1})
	src := rng.New(99)

	id := trace.CollectionID(1)
	for i := 0; i < 60; i++ {
		var j *Job
		switch i % 4 {
		case 0, 1: // batch-queued beb jobs, some with restarts
			j = mkJob(id, 110, trace.TierBestEffortBatch, 1+src.Intn(4),
				trace.Resources{CPU: 0.05 + 0.1*src.Float64(), Mem: 0.05}, sim.Time(10+src.Intn(50))*sim.Minute)
			j.Scheduler = trace.SchedulerBatch
			for _, task := range j.Tasks {
				task.Restarts = src.Intn(2)
			}
		case 2: // beb jobs bypassing the queue, killed mid-flight
			j = mkJob(id, 115, trace.TierBestEffortBatch, 2,
				trace.Resources{CPU: 0.08, Mem: 0.05}, 2*sim.Hour)
			j.KillAfter = sim.Time(5+src.Intn(40)) * sim.Minute
		default: // production jobs that preempt the beb tier
			j = mkJob(id, 200, trace.TierProduction, 2,
				trace.Resources{CPU: 0.3, Mem: 0.3}, sim.Time(20+src.Intn(40))*sim.Minute)
		}
		id++
		at := sim.Time(src.Intn(int(3 * sim.Hour)))
		job := j
		rig.k.At(at, func(sim.Time) { rig.sched.Submit(job) })
	}
	// Maintenance evictions keep tasks cycling through requeues.
	for i := 0; i < 8; i++ {
		mid := rig.cell.MachineIDs()[src.Intn(6)]
		rig.k.At(sim.Time(src.Intn(int(3*sim.Hour))), func(sim.Time) { rig.sched.EvictMachine(mid) })
	}
	rig.k.Every(cfg.Batch.CheckPeriod, cfg.Batch.CheckPeriod/2, 4*sim.Hour, func(now sim.Time) {
		checkBEB(t, rig.sched, now)
	})

	rig.k.RunUntil(5 * sim.Hour)
	checkBEB(t, rig.sched, 5*sim.Hour)
	// Every job has terminated by now, so the incremental sum must have
	// cancelled back to (floating-point) zero, not drifted.
	if f := rig.sched.bebAllocatedFraction(); math.Abs(f) > 1e-9 {
		t.Fatalf("beb fraction %g after all jobs ended; want ~0", f)
	}
}

// TestUpdateTaskRequestKeepsBEBSum pins the autopilot integration: a
// request update on a counted task must move the incremental sum by
// exactly the request delta.
func TestUpdateTaskRequestKeepsBEBSum(t *testing.T) {
	rig := newRig(t, fastConfig(), 2, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 110, trace.TierBestEffortBatch, 1, trace.Resources{CPU: 0.2, Mem: 0.2}, 2*sim.Hour)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(10 * sim.Minute)

	task := j.Tasks[0]
	if task.State != TaskRunning {
		t.Fatalf("task state %v; want running", task.State)
	}
	rig.sched.UpdateTaskRequest(task, trace.Resources{CPU: 0.35, Mem: 0.25})
	checkBEB(t, rig.sched, 10*sim.Minute)
	if got := rig.sched.bebAllocatedFraction() * rig.cell.Capacity().CPU; math.Abs(got-0.35) > 1e-12 {
		t.Fatalf("beb CPU sum %g after update; want 0.35", got)
	}

	// A request write that bypasses UpdateTaskRequest leaves the sum
	// stale, but removal subtracts the recorded amount, so the error
	// heals at the task's next transition instead of drifting forever.
	task.Request = trace.Resources{CPU: 0.9, Mem: 0.25}
	rig.sched.KillJob(j, trace.EventKill)
	if f := rig.sched.bebAllocatedFraction(); math.Abs(f) > 1e-12 {
		t.Fatalf("beb fraction %g after kill following a bypassing write; want 0", f)
	}
}
