package scheduler

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestScoreCacheMatchesRecompute is the invalidation property test for the
// equivalence-class score cache: after every randomized cell mutation
// (place, evict, limit update, usage sample), the cached score must equal
// a from-scratch recomputation bit for bit — the cache is memoization,
// never approximation.
func TestScoreCacheMatchesRecompute(t *testing.T) {
	s, cell := benchCell(8, 6, trace.TierMid, 110,
		trace.Resources{CPU: 0.05, Mem: 0.05}, trace.Resources{CPU: 0.03, Mem: 0.03},
		cluster.OvercommitPolicy{CPUFactor: 1.5, MemFactor: 1.45})
	tasks := []*Task{
		benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 120, trace.TierProduction),
		benchTask(trace.Resources{CPU: 0.02, Mem: 0.04}, 0, trace.TierFree),
		benchTask(trace.Resources{CPU: 0.2, Mem: 0.05}, 110, trace.TierBestEffortBatch),
	}
	src := rng.New(5)
	ids := cell.MachineIDs()
	next := trace.CollectionID(100000)
	extra := make(map[trace.MachineID][]trace.InstanceKey)
	var hits, misses int

	for step := 0; step < 3000; step++ {
		mid := ids[src.Intn(len(ids))]
		m := cell.Machine(mid)
		switch op := src.Intn(4); {
		case op == 0: // place a new resident
			key := trace.InstanceKey{Collection: next}
			next++
			cell.Place(mid, &cluster.Resident{
				Key:   key,
				Limit: trace.Resources{CPU: src.Float64() * 0.05, Mem: src.Float64() * 0.05},
			})
			extra[mid] = append(extra[mid], key)
		case op == 1 && len(extra[mid]) > 0: // evict one again
			keys := extra[mid]
			cell.Remove(mid, keys[len(keys)-1])
			extra[mid] = keys[:len(keys)-1]
		case op == 2 && len(extra[mid]) > 0: // autopilot-style limit update
			keys := extra[mid]
			cell.UpdateLimit(mid, keys[src.Intn(len(keys))],
				trace.Resources{CPU: src.Float64() * 0.05, Mem: src.Float64() * 0.05})
		default: // usage sample on any resident
			rs := m.Residents()
			if len(rs) > 0 {
				m.SetUsage(rs[src.Intn(len(rs))].Key,
					trace.Resources{CPU: src.Float64() * 0.05, Mem: src.Float64() * 0.05})
			}
		}

		// Score a random (task, machine) pair twice through the cache —
		// the second lookup is guaranteed cached — and compare both
		// against direct recomputation.
		tt := tasks[src.Intn(len(tasks))]
		vm := cell.Machine(ids[src.Intn(len(ids))])
		usage := vm.UsageTotal()
		class := s.classID(tt)
		first, firstHit := s.cachedScore(vm, tt, usage, class)
		cached, cachedHit := s.cachedScore(vm, tt, usage, class)
		if firstHit {
			hits++
		} else {
			misses++
		}
		if !cachedHit {
			t.Fatalf("step %d: immediate re-probe missed the cache", step)
		}
		want := s.policy.Score(vm, tt.Request, usage)
		if first != want || cached != want {
			t.Fatalf("step %d: cached score %v/%v, recomputed %v (machine %d gen %d)",
				step, first, cached, want, vm.ID, vm.Gen())
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate cache exercise: hits=%d misses=%d", hits, misses)
	}
}

// TestClassIDStableAndDistinct checks equivalence-class interning: same
// shape/tier/band shares an ID, any differing component splits it, and
// IDs stay monotonic across a table clear so stale cache slots can never
// alias a fresh class.
func TestClassIDStableAndDistinct(t *testing.T) {
	s, _ := benchCell(1, 0, trace.TierMid, 110,
		trace.Resources{}, trace.Resources{}, cluster.OvercommitPolicy{CPUFactor: 1, MemFactor: 1})
	base := benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 120, trace.TierProduction)
	same := benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 125, trace.TierProduction) // same band of ten
	if s.classID(base) != s.classID(same) {
		t.Fatal("identical class interned to different IDs")
	}
	for _, other := range []*Task{
		benchTask(trace.Resources{CPU: 0.2, Mem: 0.1}, 120, trace.TierProduction), // shape
		benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 120, trace.TierMid),        // tier
		benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 200, trace.TierProduction), // band
	} {
		if s.classID(other) == s.classID(base) {
			t.Fatalf("distinct class shares ID: %+v", other.Request)
		}
	}
	id := s.classID(base)
	clear(s.classIDs) // simulate hitting maxClassIDs
	if again := s.classID(base); again <= id {
		t.Fatalf("class ID not monotonic across clear: %d then %d", id, again)
	}
}

// TestPlacementSteadyStateZeroAllocs is the CI allocation guard: one
// steady-state placement cycle — candidate scoring, placing the chosen
// resident, and unplacing it — must not allocate.
func TestPlacementSteadyStateZeroAllocs(t *testing.T) {
	s, cell := benchCell(64, 8, trace.TierMid, 110,
		trace.Resources{CPU: 0.03, Mem: 0.03}, trace.Resources{CPU: 0.02, Mem: 0.02},
		cluster.OvercommitPolicy{CPUFactor: 1.5, MemFactor: 1.45})
	task := benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 120, trace.TierProduction)
	cycle := func() {
		m := s.pickMachine(task)
		if m == nil {
			t.Fatal("no feasible machine")
		}
		cell.Place(m.ID, s.takeResident(task.Key, task.Request, task.Job.Priority, task.Job.Tier))
		s.releaseResident(cell.Remove(m.ID, task.Key))
	}
	for i := 0; i < 100; i++ {
		cycle() // warm the pool, class table, and score slots
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("steady-state placement allocates %.1f allocs/op, want 0", avg)
	}
}

// TestInstrumentedPlacementZeroAllocs repeats the steady-state guard with
// a caller-supplied metrics registry wired into the scheduler: live
// counters and the pending-queue gauge must add only atomic operations to
// the placement cycle, never allocations.
func TestInstrumentedPlacementZeroAllocs(t *testing.T) {
	reg := metrics.NewRegistry()
	cell := cluster.NewCell("bench")
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.Batch = nil
	cfg.ServiceTime = dist.Deterministic{Value: 0.001}
	cfg.Metrics = reg
	s := New(cfg, cell, k, trace.NopSink{}, rng.New(7))
	id := trace.CollectionID(1)
	for i := 0; i < 64; i++ {
		m := cell.AddMachine(trace.Resources{CPU: 1, Mem: 1}, "P0")
		for r := 0; r < 8; r++ {
			cell.Place(m.ID, &cluster.Resident{
				Key:      trace.InstanceKey{Collection: id},
				Limit:    trace.Resources{CPU: 0.03, Mem: 0.03},
				Priority: 110,
				Tier:     trace.TierMid,
				Usage:    trace.Resources{CPU: 0.02, Mem: 0.02},
			})
			id++
		}
	}
	task := benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 120, trace.TierProduction)
	cycle := func() {
		m := s.pickMachine(task)
		if m == nil {
			t.Fatal("no feasible machine")
		}
		cell.Place(m.ID, s.takeResident(task.Key, task.Request, task.Job.Priority, task.Job.Tier))
		s.releaseResident(cell.Remove(m.ID, task.Key))
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Fatalf("instrumented placement allocates %.1f allocs/op, want 0", avg)
	}
	if reg.Counter("sched_score_cache_hits_total").Value() == 0 {
		t.Fatal("instrumented cycles recorded no score-cache hits")
	}
}

// TestPreemptionProbeZeroAllocs guards the preemption scan: probing the
// cached victim order of unpreemptable machines must not allocate.
func TestPreemptionProbeZeroAllocs(t *testing.T) {
	s, _ := benchCell(32, 20, trace.TierProduction, 120,
		trace.Resources{CPU: 0.05, Mem: 0.05}, trace.Resources{CPU: 0.03, Mem: 0.03},
		cluster.OvercommitPolicy{CPUFactor: 1, MemFactor: 1})
	task := benchTask(trace.Resources{CPU: 0.5, Mem: 0.5}, 200, trace.TierProduction)
	probe := func() {
		if m := s.tryPreemption(task); m != nil {
			t.Fatal("preemption should be impossible")
		}
	}
	for i := 0; i < 50; i++ {
		probe()
	}
	if avg := testing.AllocsPerRun(200, probe); avg != 0 {
		t.Fatalf("preemption probe allocates %.1f allocs/op, want 0", avg)
	}
}
