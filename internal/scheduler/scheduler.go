// Package scheduler implements the Borg cluster scheduler reproduced by
// the paper: tiered priority scheduling with preemption (§2), limit-based
// admission with resource overcommit (§4), alloc sets (§5.1), job
// parent→child kill propagation (§5.2), an Omega-style batch-queue
// front-end for the best-effort batch tier (§3), and rescheduling of
// evicted and failed tasks (the churn of §6.2).
//
// The scheduler runs inside a discrete-event kernel and emits trace rows
// through a trace.Sink, so a simulated month of cell operation produces a
// trace with the same causal structure as the published one.
package scheduler

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BatchConfig configures the batch scheduler front-end that queues
// best-effort batch jobs until the cell can handle them (§3).
type BatchConfig struct {
	// CheckPeriod is how often the admission controller runs.
	CheckPeriod sim.Time
	// AllocCeiling is the fraction of cell CPU capacity the best-effort
	// batch tier may have allocated before further jobs are held in the
	// queue.
	AllocCeiling float64
	// MaxAdmitPerCheck caps admissions per controller run; the queue
	// drains in bursts, which lengthens the beb-tier delay tail
	// (Figure 10b).
	MaxAdmitPerCheck int
}

// Config parameterizes the scheduler.
type Config struct {
	// Policy names the placement brain; New resolves it through the policy
	// registry (see policy.go for the zoo).
	Policy PlacementPolicy
	// CandidateSample is how many machines a placement attempt examines
	// (power-of-k-choices sampling, as production schedulers do to bound
	// scan cost).
	CandidateSample int
	// Overcommit bounds per-machine allocation relative to capacity.
	Overcommit cluster.OvercommitPolicy
	// ServiceTime is the simulated time one placement attempt occupies
	// the scheduler, in seconds. Scheduling delay distributions
	// (Figure 10) emerge from this service process and the arrival burst
	// structure.
	ServiceTime dist.Sampler
	// RetryBackoff delays re-attempts for tasks that found no feasible
	// machine.
	RetryBackoff sim.Time
	// EnablePreemption lets production-tier tasks evict lower tiers when
	// no machine is otherwise feasible (§2).
	EnablePreemption bool
	// PreemptionPriorityGap is the minimum priority advantage a task
	// needs over a victim.
	PreemptionPriorityGap int
	// EvictionRestartDelay is how long an evicted task waits before
	// re-entering the pending queue ("in almost all cases, an evicted
	// instance will be rescheduled elsewhere in the same cell", §5.2).
	EvictionRestartDelay sim.Time
	// FailRestartDelay is how long a crashed task waits before its next
	// attempt.
	FailRestartDelay sim.Time
	// ProdEvictionSLO is the probability a production-tier task is
	// actually evicted during machine maintenance. Borg's eviction-rate
	// SLOs protect important collections (§5.2: <0.2% of prod
	// collections see any eviction), modeled as sparing prod residents
	// with high probability (they are migrated gracefully instead).
	ProdEvictionSLO float64
	// Batch enables the batch-queue front-end when non-nil.
	Batch *BatchConfig
	// Metrics receives the scheduler's activity counters (the sched_*
	// instruments; see newSchedInstruments for the catalogue). Nil gets a
	// private registry, so counting is unconditional and Stats always
	// works. Instruments observe only — they consume no randomness and
	// cannot change a single trace byte (the metrics package contract).
	Metrics *metrics.Registry
}

// DefaultConfig returns a 2019-profile scheduler configuration.
func DefaultConfig() Config {
	return Config{
		Policy:                LeastAllocated,
		CandidateSample:       16,
		Overcommit:            cluster.OvercommitPolicy{CPUFactor: 1.5, MemFactor: 1.45},
		ServiceTime:           dist.LogNormalFromMedian(0.06, 0.9),
		RetryBackoff:          30 * sim.Second,
		EnablePreemption:      true,
		PreemptionPriorityGap: 10,
		EvictionRestartDelay:  15 * sim.Second,
		FailRestartDelay:      10 * sim.Second,
		ProdEvictionSLO:       0.08,
		Batch: &BatchConfig{
			CheckPeriod:      20 * sim.Second,
			AllocCeiling:     0.65,
			MaxAdmitPerCheck: 8,
		},
	}
}

// Outcome is a job's scripted final state, decided by the workload model.
type Outcome int

// Outcomes.
const (
	OutcomeFinish Outcome = iota // completes normally
	OutcomeKill                  // canceled by the user (or a parent exit)
	OutcomeFail                  // dies of its own bug
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeFinish:
		return "finish"
	case OutcomeKill:
		return "kill"
	case OutcomeFail:
		return "fail"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// TaskState is a task's position in its lifecycle.
type TaskState int

// Task states.
const (
	TaskPending TaskState = iota // awaiting placement
	TaskWaiting                  // backoff or restart delay
	TaskRunning                  // placed on a machine
	TaskDead                     // terminal
)

// Task is one replica of a job (or one alloc instance of an alloc set).
type Task struct {
	Key     trace.InstanceKey
	Job     *Job
	Request trace.Resources

	// Duration is the total running time the task needs to complete.
	// Restarts split it into equal segments separated by FAIL events.
	Duration sim.Time
	// Restarts is the number of scripted crash-restarts remaining.
	Restarts int

	// Usage model parameters, consumed by the simulation's sampling loop:
	// mean absolute usage in NCU/NMU (independent of the limit, so
	// Autopilot limit changes alter slack, not consumption), and the
	// peak-to-mean factor within a sampling window.
	MeanCPU  float64
	MeanMem  float64
	PeakFact float64

	State   TaskState
	Machine trace.MachineID
	// AllocInstance hosts this task when the job targets an alloc set.
	AllocInstance trace.InstanceKey

	// endFn/retryFn are the task's kernel callbacks, built once on first
	// use and reused across every subsequent start/retry so steady-state
	// scheduling does not allocate a closure per placement.
	endFn   func(sim.Time)
	retryFn func(sim.Time)

	remaining  sim.Time
	segment    sim.Time // remaining time in the current segment plan
	runStart   sim.Time
	endEvent   sim.EventRef
	retryEvent sim.EventRef
	enqueueSeq uint64
	submitted  bool // first instance SUBMIT emitted
	// bebCounted/bebCountedCPU track this task's contribution to the
	// scheduler's incremental beb CPU sum: the recorded amount — not the
	// live Request — is what removal subtracts, so even a request write
	// that bypasses UpdateTaskRequest can only make the sum stale until
	// the task's next transition, never permanently drift it.
	bebCounted    bool
	bebCountedCPU float64
	Reschedules   int // SUBMIT events beyond the first
	Evictions     int
	oomFails      int // times killed for exceeding its own memory limit
}

// JobState is a job's position in its lifecycle.
type JobState int

// Job states.
const (
	JobSubmitted JobState = iota
	JobQueued             // held by the batch scheduler
	JobReady              // eligible for placement
	JobDone
)

// Job is a collection: a job proper or an alloc set.
type Job struct {
	ID        trace.CollectionID
	Type      trace.CollectionType
	Priority  int
	Tier      trace.Tier
	User      string
	Parent    trace.CollectionID
	AllocSet  trace.CollectionID // target alloc set for task placement
	Scheduler trace.SchedulerKind
	Scaling   trace.VerticalScaling

	// Outcome scripts how the job ends if it runs to completion;
	// KillAfter > 0 schedules a user-initiated kill that long after
	// submission (before natural completion, it wins).
	Outcome   Outcome
	KillAfter sim.Time

	Tasks []*Task

	State      JobState
	SubmitTime sim.Time
	ReadyTime  sim.Time
	// FirstRun is when the first task started running (scheduling delay
	// measurement, Figure 10); -1 until then.
	FirstRun  sim.Time
	FinalType trace.EventType // termination event emitted, EventSubmit if still open

	liveTasks int
	killEvent sim.EventRef
}

// NewJob constructs a job with sensible zero-state bookkeeping.
func NewJob(id trace.CollectionID) *Job {
	return &Job{ID: id, FirstRun: -1}
}

// AddTask appends a task to the job, assigning the next instance index.
func (j *Job) AddTask(t *Task) {
	t.Key = trace.InstanceKey{Collection: j.ID, Index: int32(len(j.Tasks))}
	t.Job = j
	j.Tasks = append(j.Tasks, t)
}

// Stats is a point-in-time snapshot of scheduler activity for logs and
// ablation benches. Since the metrics migration the fields are read off
// the scheduler's registry-backed counters (see schedInstruments);
// Stats() keeps the legacy aggregate shape so existing callers and
// tests are untouched.
type Stats struct {
	JobsSubmitted    int
	TasksPlaced      int
	PlacementRetries int
	// PlacementGiveUps counts tasks abandoned by a no-retry policy
	// (Policy.RetryOnFailure() == false) after finding no feasible
	// machine.
	PlacementGiveUps    int
	Preemptions         int
	OOMEvictions        int // aggregate-overcommit evictions (EVICT)
	OOMKills            int // over-own-limit kills (FAIL, §5.2's "fail")
	MachineEvictions    int
	BatchAdmitted       int
	BatchQueuedNow      int
	TasksFailedRestarts int
	// ScoreCacheHits/Misses count equivalence-class score lookups served
	// from cache versus recomputed (placement fast path telemetry).
	ScoreCacheHits   int
	ScoreCacheMisses int
}

// schedInstruments binds the scheduler's activity counters to a metrics
// registry once at construction, so every increment site is a bare
// atomic add with no name lookup. Counters are the only instrument kind
// here: the placement fast path must stay allocation-free and lock-free
// (histograms take a mutex), so distributional views (queue depth over
// sim-time) are sampled by the usage pipeline's periodic tick instead.
type schedInstruments struct {
	jobsSubmitted       *metrics.Counter // sched_jobs_submitted_total
	tasksPlaced         *metrics.Counter // sched_tasks_placed_total
	placementAttempts   *metrics.Counter // sched_placement_attempts_total
	placementRetries    *metrics.Counter // sched_placement_retries_total
	placementGiveUps    *metrics.Counter // sched_placement_giveups_total
	preemptions         *metrics.Counter // sched_preemptions_total
	oomEvictions        *metrics.Counter // sched_oom_evictions_total
	oomKills            *metrics.Counter // sched_oom_kills_total
	machineEvictions    *metrics.Counter // sched_machine_evictions_total
	batchAdmitted       *metrics.Counter // sched_batch_admitted_total
	tasksFailedRestarts *metrics.Counter // sched_task_failed_restarts_total
	scoreCacheHits      *metrics.Counter // sched_score_cache_hits_total
	scoreCacheMisses    *metrics.Counter // sched_score_cache_misses_total
	pendingQueue        *metrics.Gauge   // sched_pending_queue (live depth)
}

func newSchedInstruments(reg *metrics.Registry) schedInstruments {
	return schedInstruments{
		jobsSubmitted:       reg.Counter("sched_jobs_submitted_total"),
		tasksPlaced:         reg.Counter("sched_tasks_placed_total"),
		placementAttempts:   reg.Counter("sched_placement_attempts_total"),
		placementRetries:    reg.Counter("sched_placement_retries_total"),
		placementGiveUps:    reg.Counter("sched_placement_giveups_total"),
		preemptions:         reg.Counter("sched_preemptions_total"),
		oomEvictions:        reg.Counter("sched_oom_evictions_total"),
		oomKills:            reg.Counter("sched_oom_kills_total"),
		machineEvictions:    reg.Counter("sched_machine_evictions_total"),
		batchAdmitted:       reg.Counter("sched_batch_admitted_total"),
		tasksFailedRestarts: reg.Counter("sched_task_failed_restarts_total"),
		scoreCacheHits:      reg.Counter("sched_score_cache_hits_total"),
		scoreCacheMisses:    reg.Counter("sched_score_cache_misses_total"),
		pendingQueue:        reg.Gauge("sched_pending_queue"),
	}
}

// AllocInstance is a reserved slot of an alloc set placed on a machine;
// jobs targeting the alloc set place tasks inside these reservations.
type AllocInstance struct {
	Key      trace.InstanceKey
	Machine  trace.MachineID
	Reserved trace.Resources
	Used     trace.Resources
	tasks    map[trace.InstanceKey]*Task
	// slot is the instance's index in its alloc set's registry slice,
	// kept current so removal needs no linear scan.
	slot int
}

// eqClass is the equivalence-class key for placement scoring: tasks with
// the same request shape, tier and priority band rank machines
// identically, so their machine scores share cache entries (the 2015-era
// Borg fast path the paper credits for scheduler throughput).
type eqClass struct {
	req  trace.Resources
	tier trace.Tier
	band int
}

// scoreSlot is one machine's memoized score for the equivalence class
// that last scored it, valid while the machine's generation is unchanged.
// Every input of score() is covered by the generation (allocation, usage,
// limits) or by the class (request shape), so a valid slot is
// bit-identical to recomputation — the cache can never change placement
// behavior, only skip work. One slot per machine suffices because the
// pending queue serves a job's identically-shaped tasks back to back.
type scoreSlot struct {
	class uint32
	gen   uint64
	score float64
}

// maxClassIDs bounds the class-interning table; crossing it clears the
// table wholesale. IDs keep monotonically increasing across clears, so a
// re-interned class can never alias a stale score slot.
const maxClassIDs = 1 << 16

// classID interns a task's scoring equivalence class to a small integer,
// so the per-candidate cache probe is an array index instead of a struct
// hash. Priority bands of ten keep the class count small; priority does
// not feed the score itself, so band width only shifts hit rates.
func (s *Scheduler) classID(t *Task) uint32 {
	c := eqClass{req: t.Request, tier: t.Job.Tier, band: t.Job.Priority / 10}
	if id, ok := s.classIDs[c]; ok {
		return id
	}
	if len(s.classIDs) >= maxClassIDs {
		clear(s.classIDs)
	}
	s.nextClassID++
	s.classIDs[c] = s.nextClassID
	return s.nextClassID
}

// Free returns the unused reservation.
func (a *AllocInstance) Free() trace.Resources { return a.Reserved.Sub(a.Used) }

// Scheduler is the cell scheduler.
type Scheduler struct {
	cfg  Config
	cell *cluster.Cell
	k    *sim.Kernel
	sink trace.Sink
	src  *rng.Source
	// policy is cfg.Policy resolved through the registry once at
	// construction, so the placement hot path never re-resolves it.
	policy Policy

	pending taskHeap
	busy    bool
	seq     uint64

	jobs     map[trace.CollectionID]*Job
	children map[trace.CollectionID][]*Job
	allocs   map[trace.CollectionID][]*AllocInstance // live alloc instances per alloc set
	// allocByKey indexes every live alloc instance by its instance key so
	// lookups are O(1) instead of scanning the set's registry slice.
	allocByKey map[trace.InstanceKey]*AllocInstance
	// allocJobs tracks jobs targeting each alloc set, so tearing the set
	// down can kill them even when they are still pending.
	allocJobs map[trace.CollectionID][]*Job
	// running indexes tasks currently placed on machines, so per-window
	// usage sampling is O(running) rather than O(all jobs ever).
	running map[trace.InstanceKey]*Task

	// scoreSlots memoizes placement scores per machine (indexed by
	// machine ID) for the last equivalence class that scored the machine,
	// invalidated by machine generation counters.
	scoreSlots  []scoreSlot
	classIDs    map[eqClass]uint32
	nextClassID uint32
	// residentPool recycles Resident records between placements so the
	// steady-state place/unplace cycle does not allocate.
	residentPool []*cluster.Resident

	batchQueue []*Job

	// bebAllocCPU is the incrementally maintained sum of CPU requests of
	// best-effort-batch tasks that are pending or running in admitted
	// jobs — the numerator of bebAllocatedFraction. Maintained at every
	// task/job state transition and request update instead of walking all
	// jobs each admission check.
	bebAllocCPU float64

	met schedInstruments

	// UnplaceHook, when set, is invoked just before a running task
	// leaves its machine, with the time it started running. The usage
	// sampler uses it to emit partial-window usage records so that
	// short-lived tasks (most of the workload's "mice") appear in the
	// usage table.
	UnplaceHook func(t *Task, runStart sim.Time)
}

// New constructs a scheduler bound to a cell, kernel and sink.
func New(cfg Config, cell *cluster.Cell, k *sim.Kernel, sink trace.Sink, src *rng.Source) *Scheduler {
	if cfg.CandidateSample <= 0 {
		cfg.CandidateSample = 8
	}
	if cfg.ServiceTime == nil {
		cfg.ServiceTime = dist.Deterministic{Value: 0.05}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Scheduler{
		cfg:        cfg,
		cell:       cell,
		k:          k,
		sink:       sink,
		src:        src,
		policy:     PolicyFor(cfg.Policy),
		jobs:       make(map[trace.CollectionID]*Job),
		children:   make(map[trace.CollectionID][]*Job),
		allocs:     make(map[trace.CollectionID][]*AllocInstance),
		allocByKey: make(map[trace.InstanceKey]*AllocInstance),
		allocJobs:  make(map[trace.CollectionID][]*Job),
		running:    make(map[trace.InstanceKey]*Task),
		classIDs:   make(map[eqClass]uint32),
		met:        newSchedInstruments(reg),
	}
	if qo, ok := s.policy.(QueueOrderer); ok {
		s.pending.less = qo.QueueLess
	}
	if cfg.Batch != nil {
		k.Every(cfg.Batch.CheckPeriod, cfg.Batch.CheckPeriod, 0, func(sim.Time) {
			s.batchAdmissionCheck()
		})
	}
	return s
}

// Stats returns a snapshot of activity counters, read from the
// registry-backed instruments.
func (s *Scheduler) Stats() Stats {
	return Stats{
		JobsSubmitted:       int(s.met.jobsSubmitted.Value()),
		TasksPlaced:         int(s.met.tasksPlaced.Value()),
		PlacementRetries:    int(s.met.placementRetries.Value()),
		PlacementGiveUps:    int(s.met.placementGiveUps.Value()),
		Preemptions:         int(s.met.preemptions.Value()),
		OOMEvictions:        int(s.met.oomEvictions.Value()),
		OOMKills:            int(s.met.oomKills.Value()),
		MachineEvictions:    int(s.met.machineEvictions.Value()),
		BatchAdmitted:       int(s.met.batchAdmitted.Value()),
		BatchQueuedNow:      len(s.batchQueue),
		TasksFailedRestarts: int(s.met.tasksFailedRestarts.Value()),
		ScoreCacheHits:      int(s.met.scoreCacheHits.Value()),
		ScoreCacheMisses:    int(s.met.scoreCacheMisses.Value()),
	}
}

// QueueDepth returns the live pending-queue length. The usage pipeline's
// sampling tick observes it into the sched_queue_depth histogram so the
// queue's sim-time distribution is visible without touching the
// placement fast path.
func (s *Scheduler) QueueDepth() int { return s.pending.Len() }

// Job returns a submitted job by ID, or nil.
func (s *Scheduler) Job(id trace.CollectionID) *Job { return s.jobs[id] }

// accountBEB reconciles one task's contribution to the incremental
// best-effort-batch allocated-CPU sum with its current state: a task
// counts while it is pending or running inside a job that is neither
// done nor still held in the batch queue (the same predicate the
// admission controller's recomputed walk used). Idempotent — callers
// invoke it after any transition that might change eligibility.
func (s *Scheduler) accountBEB(t *Task) {
	if t.Job.Tier != trace.TierBestEffortBatch {
		return
	}
	want := (t.State == TaskPending || t.State == TaskRunning) &&
		t.Job.State != JobDone && t.Job.State != JobQueued
	if want == t.bebCounted {
		return
	}
	if want {
		t.bebCountedCPU = t.Request.CPU
		s.bebAllocCPU += t.bebCountedCPU
	} else {
		s.bebAllocCPU -= t.bebCountedCPU
		t.bebCountedCPU = 0
	}
	t.bebCounted = want
}

// accountBEBJob reconciles every task of a job after a job-level state
// change (queued → ready, ready → done).
func (s *Scheduler) accountBEBJob(j *Job) {
	if j.Tier != trace.TierBestEffortBatch {
		return
	}
	for _, t := range j.Tasks {
		s.accountBEB(t)
	}
}

// UpdateTaskRequest changes a task's resource request in place (the
// autopilot's limit updates route through here) while keeping the
// incremental admission accounting consistent with the new request.
func (s *Scheduler) UpdateTaskRequest(t *Task, rec trace.Resources) {
	if t.bebCounted {
		s.bebAllocCPU += rec.CPU - t.bebCountedCPU
		t.bebCountedCPU = rec.CPU
	}
	t.Request = rec
}

// RunningTasks calls fn for every running task in the cell, in a
// deterministic (sorted-key) order so callers may consume randomness.
func (s *Scheduler) RunningTasks(fn func(*Task)) {
	keys := make([]trace.InstanceKey, 0, len(s.running))
	for k := range s.running {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Collection != keys[j].Collection {
			return keys[i].Collection < keys[j].Collection
		}
		return keys[i].Index < keys[j].Index
	})
	for _, k := range keys {
		fn(s.running[k])
	}
}

// NumRunning returns the number of currently running tasks.
func (s *Scheduler) NumRunning() int { return len(s.running) }

// TaskByKey resolves an instance key to its task, or nil. Callers that
// iterate a machine's cached resident order and look tasks up with this
// method avoid the global sorted walk RunningTasks performs.
func (s *Scheduler) TaskByKey(key trace.InstanceKey) *Task { return s.taskByKey(key) }

// Cell returns the scheduled cell.
func (s *Scheduler) Cell() *cluster.Cell { return s.cell }
