package scheduler

import (
	"container/heap"

	"repro/internal/sim"
)

// taskHeap orders pending tasks by (priority desc, enqueue sequence asc):
// strongest tier first, FIFO within a priority. A policy implementing
// QueueOrderer substitutes its own primary ordering via less; ties under
// either ordering break by enqueue sequence rather than a timestamp, so
// bursts of tasks arriving in the same simulation instant still pop
// deterministically.
type taskHeap struct {
	tasks []*Task
	// less is the optional QueueOrderer hook; nil selects the default
	// priority-descending order.
	less func(a, b *Task) bool
}

func (h *taskHeap) Len() int { return len(h.tasks) }

func (h *taskHeap) Less(i, j int) bool {
	a, b := h.tasks[i], h.tasks[j]
	if h.less != nil {
		if h.less(a, b) {
			return true
		}
		if h.less(b, a) {
			return false
		}
	} else if a.Job.Priority != b.Job.Priority {
		return a.Job.Priority > b.Job.Priority
	}
	return a.enqueueSeq < b.enqueueSeq
}

func (h *taskHeap) Swap(i, j int) { h.tasks[i], h.tasks[j] = h.tasks[j], h.tasks[i] }

func (h *taskHeap) Push(x any) { h.tasks = append(h.tasks, x.(*Task)) }

func (h *taskHeap) Pop() any {
	old := h.tasks
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	h.tasks = old[:n-1]
	return t
}

// enqueue adds a task to the pending queue and pokes the scheduling server.
func (s *Scheduler) enqueue(t *Task) {
	t.State = TaskPending
	s.accountBEB(t)
	t.enqueueSeq = s.seq
	s.seq++
	heap.Push(&s.pending, t)
	s.met.pendingQueue.Set(float64(s.pending.Len()))
	s.kick()
}

// kick starts the scheduling server if it is idle and work is pending.
// The server processes one placement attempt per service time draw; the
// resulting queueing behaviour produces the scheduling-delay distributions
// of Figure 10.
func (s *Scheduler) kick() {
	if s.busy || s.pending.Len() == 0 {
		return
	}
	s.busy = true
	service := s.cfg.ServiceTime.Sample(s.src)
	if service < 0 {
		service = 0
	}
	s.k.After(sim.FromSeconds(service), func(now sim.Time) {
		s.busy = false
		s.serveOne(now)
		s.kick()
	})
}

// serveOne pops the strongest pending task and attempts placement.
func (s *Scheduler) serveOne(now sim.Time) {
	for s.pending.Len() > 0 {
		t := heap.Pop(&s.pending).(*Task)
		if t.State != TaskPending || t.Job.State == JobDone {
			continue // withdrawn (killed) while queued
		}
		// The gauge updates before the attempt: any path out of
		// attemptPlacement that re-enqueues refreshes it again.
		s.met.pendingQueue.Set(float64(s.pending.Len()))
		s.attemptPlacement(t, now)
		return
	}
	s.met.pendingQueue.Set(0)
}
