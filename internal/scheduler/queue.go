package scheduler

import (
	"container/heap"

	"repro/internal/sim"
)

// taskHeap orders pending tasks by (priority desc, enqueue sequence asc):
// strongest tier first, FIFO within a priority. The enqueue sequence rather
// than a timestamp breaks ties deterministically when bursts of tasks
// arrive in the same simulation instant.
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }

func (h taskHeap) Less(i, j int) bool {
	if h[i].Job.Priority != h[j].Job.Priority {
		return h[i].Job.Priority > h[j].Job.Priority
	}
	return h[i].enqueueSeq < h[j].enqueueSeq
}

func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *taskHeap) Push(x any) { *h = append(*h, x.(*Task)) }

func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// enqueue adds a task to the pending queue and pokes the scheduling server.
func (s *Scheduler) enqueue(t *Task) {
	t.State = TaskPending
	s.accountBEB(t)
	t.enqueueSeq = s.seq
	s.seq++
	heap.Push(&s.pending, t)
	s.kick()
}

// kick starts the scheduling server if it is idle and work is pending.
// The server processes one placement attempt per service time draw; the
// resulting queueing behaviour produces the scheduling-delay distributions
// of Figure 10.
func (s *Scheduler) kick() {
	if s.busy || s.pending.Len() == 0 {
		return
	}
	s.busy = true
	service := s.cfg.ServiceTime.Sample(s.src)
	if service < 0 {
		service = 0
	}
	s.k.After(sim.FromSeconds(service), func(now sim.Time) {
		s.busy = false
		s.serveOne(now)
		s.kick()
	})
}

// serveOne pops the strongest pending task and attempts placement.
func (s *Scheduler) serveOne(now sim.Time) {
	for s.pending.Len() > 0 {
		t := heap.Pop(&s.pending).(*Task)
		if t.State != TaskPending || t.Job.State == JobDone {
			continue // withdrawn (killed) while queued
		}
		s.attemptPlacement(t, now)
		return
	}
}
