package scheduler

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// These tests cover cross-feature interactions: batch queue × kill,
// autoscaling-field plumbing, eviction of alloc instances, and the
// priority structure of preemption.

func TestKillWhileBatchQueued(t *testing.T) {
	cfg := fastConfig()
	cfg.Batch = &BatchConfig{CheckPeriod: 1 * sim.Minute, AllocCeiling: 0.5, MaxAdmitPerCheck: 1}
	rig := newRig(t, cfg, 2, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 110, trace.TierBestEffortBatch, 1, trace.Resources{CPU: 0.1, Mem: 0.1}, sim.Hour)
	j.Scheduler = trace.SchedulerBatch
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	// Kill before the first admission check fires.
	rig.k.At(10*sim.Second, func(sim.Time) { rig.sched.KillJob(j, trace.EventKill) })
	rig.k.RunUntil(30 * sim.Minute)

	if j.State != JobDone || j.FinalType != trace.EventKill {
		t.Fatalf("job %v/%v", j.State, j.FinalType)
	}
	// The queued job must never be enabled or scheduled after its kill.
	if got := eventsOfType(rig.tr, 1, trace.EventEnable); got != 0 {
		t.Fatalf("killed-in-queue job was enabled %d times", got)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventSchedule); got != 0 {
		t.Fatalf("killed-in-queue job was scheduled %d times", got)
	}
}

func TestEvictedAllocInstanceDisplacesInnerTasks(t *testing.T) {
	rig := newRig(t, fastConfig(), 3, trace.Resources{CPU: 1, Mem: 1})
	as := NewJob(1)
	as.Type = trace.CollectionAllocSet
	as.Priority = 200
	as.Tier = trace.TierProduction
	as.AddTask(&Task{Request: trace.Resources{CPU: 0.5, Mem: 0.5}, Duration: 10 * sim.Hour})
	as.AddTask(&Task{Request: trace.Resources{CPU: 0.5, Mem: 0.5}, Duration: 10 * sim.Hour})
	inner := mkJob(2, 120, trace.TierProduction, 2, trace.Resources{CPU: 0.2, Mem: 0.2}, 5*sim.Hour)
	inner.AllocSet = 1
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(as) })
	rig.k.At(time5m(), func(sim.Time) { rig.sched.Submit(inner) })

	// Evict one alloc instance directly (as machine maintenance would).
	rig.k.At(30*sim.Minute, func(sim.Time) { rig.sched.Evict(as.Tasks[0]) })
	rig.k.RunUntil(8 * sim.Hour)

	// The alloc set task is re-placed; inner tasks displaced from the
	// evicted instance are rescheduled into a live reservation — the
	// inner JOB must survive (not be killed).
	if inner.State != JobDone || inner.FinalType != trace.EventFinish {
		t.Fatalf("inner job %v/%v after instance eviction; want it to finish", inner.State, inner.FinalType)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventEvict); got != 1 {
		t.Fatalf("alloc-instance evictions %d", got)
	}
}

func time5m() sim.Time { return 5 * sim.Minute }

func TestProdNeverPreemptsProd(t *testing.T) {
	cfg := fastConfig()
	cfg.Overcommit.CPUFactor = 1
	cfg.Overcommit.MemFactor = 1
	rig := newRig(t, cfg, 1, trace.Resources{CPU: 1, Mem: 1})
	lowProd := mkJob(1, 120, trace.TierProduction, 1, trace.Resources{CPU: 0.9, Mem: 0.9}, 3*sim.Hour)
	highProd := mkJob(2, 450, trace.TierProduction, 1, trace.Resources{CPU: 0.9, Mem: 0.9}, sim.Hour)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(lowProd) })
	rig.k.At(sim.Minute, func(sim.Time) { rig.sched.Submit(highProd) })
	rig.k.RunUntil(6 * sim.Hour)

	if got := instanceEventsOfType(rig.tr, 1, trace.EventEvict); got != 0 {
		t.Fatalf("prod-120 task evicted %d times by prod-450 — SLO violation", got)
	}
	// The stronger job still runs, just later.
	if highProd.State != JobDone || highProd.FinalType != trace.EventFinish {
		t.Fatalf("high-prod job %v/%v", highProd.State, highProd.FinalType)
	}
}

func TestPreemptionFreesOnlyWhatIsNeeded(t *testing.T) {
	cfg := fastConfig()
	cfg.Overcommit.CPUFactor = 1
	cfg.Overcommit.MemFactor = 1
	rig := newRig(t, cfg, 1, trace.Resources{CPU: 1, Mem: 1})
	// Four small free-tier tasks fill the machine.
	filler := mkJob(1, 0, trace.TierFree, 4, trace.Resources{CPU: 0.24, Mem: 0.24}, 5*sim.Hour)
	// A prod task needing one victim's worth of room.
	prod := mkJob(2, 200, trace.TierProduction, 1, trace.Resources{CPU: 0.2, Mem: 0.2}, sim.Hour)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(filler) })
	rig.k.At(sim.Minute, func(sim.Time) { rig.sched.Submit(prod) })
	rig.k.RunUntil(20 * sim.Minute)

	if got := instanceEventsOfType(rig.tr, 1, trace.EventEvict); got != 1 {
		t.Fatalf("evicted %d filler tasks, want exactly 1", got)
	}
	if prod.FirstRun < 0 {
		t.Fatal("prod task never placed")
	}
}

func TestTaskRestartsSurviveEviction(t *testing.T) {
	rig := newRig(t, fastConfig(), 2, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.2, Mem: 0.2}, sim.Hour)
	j.Tasks[0].Restarts = 1
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	// Evict mid-first-segment.
	rig.k.At(10*sim.Minute, func(sim.Time) { rig.sched.Evict(j.Tasks[0]) })
	rig.k.RunUntil(6 * sim.Hour)

	if j.State != JobDone || j.FinalType != trace.EventFinish {
		t.Fatalf("job %v/%v", j.State, j.FinalType)
	}
	// One EVICT, one scripted FAIL, and enough SUBMITs to cover both.
	if got := instanceEventsOfType(rig.tr, 1, trace.EventEvict); got != 1 {
		t.Fatalf("evictions %d", got)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventFail); got != 1 {
		t.Fatalf("fails %d", got)
	}
	if got := instanceEventsOfType(rig.tr, 1, trace.EventSubmit); got != 3 {
		t.Fatalf("submits %d, want 1 original + 2 requeues", got)
	}
	// Total running time is preserved across eviction and restart.
	var running, lastStart sim.Time
	for _, ev := range rig.tr.InstanceEvents {
		switch ev.Type {
		case trace.EventSchedule:
			lastStart = ev.Time
		case trace.EventEvict, trace.EventFail, trace.EventFinish:
			running += ev.Time - lastStart
		}
	}
	if running != sim.Hour {
		t.Fatalf("total running %v, want 1h", running)
	}
}

func TestUnplaceHookFires(t *testing.T) {
	rig := newRig(t, fastConfig(), 1, trace.Resources{CPU: 1, Mem: 1})
	var hooks int
	var lastStart sim.Time
	rig.sched.UnplaceHook = func(task *Task, runStart sim.Time) {
		hooks++
		lastStart = runStart
	}
	j := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.1, Mem: 0.1}, 10*sim.Minute)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(time30m())
	if hooks != 1 {
		t.Fatalf("unplace hook fired %d times", hooks)
	}
	if lastStart <= 0 {
		t.Fatalf("hook runStart %v", lastStart)
	}
	if rig.sched.NumRunning() != 0 {
		t.Fatalf("running index leaked: %d", rig.sched.NumRunning())
	}
}

func time30m() sim.Time { return 30 * sim.Minute }

func TestOOMKillTerminalAfterRepeat(t *testing.T) {
	rig := newRig(t, fastConfig(), 1, trace.Resources{CPU: 1, Mem: 1})
	j := mkJob(1, 0, trace.TierFree, 1, trace.Resources{CPU: 0.1, Mem: 0.1}, 5*sim.Hour)
	rig.k.At(0, func(sim.Time) { rig.sched.Submit(j) })
	rig.k.RunUntil(5 * sim.Minute)
	m := rig.cell.Machine(rig.cell.MachineIDs()[0])

	overLimit := func() {
		for _, r := range m.Residents() {
			m.SetUsage(r.Key, trace.Resources{CPU: 0.1, Mem: 1.5}) // way over its limit
		}
		rig.sched.HandleMemoryPressure(m.ID, m.Capacity.Mem)
	}
	overLimit() // first offense: FAIL + restart
	rig.k.RunUntil(10 * sim.Minute)
	if j.State == JobDone {
		t.Fatal("job dead after first OOM offense; should restart once")
	}
	overLimit() // second offense: terminal FAIL
	rig.k.RunUntil(20 * sim.Minute)
	if j.State != JobDone || j.FinalType != trace.EventFail {
		t.Fatalf("job %v/%v after repeat OOM, want terminal FAIL", j.State, j.FinalType)
	}
	if rig.sched.Stats().OOMKills != 2 {
		t.Fatalf("oom kills %d", rig.sched.Stats().OOMKills)
	}
}
