package scheduler

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestPolicyNameRoundTrip covers every registered policy: String must
// produce a canonical name (not the PlacementPolicy(%d) fallback),
// ParsePolicy must invert it, and the registry implementation must carry
// the matching tag — so adding a policy with a missing name, registry
// entry or mismatched Kind fails here instead of misbehaving at runtime.
func TestPolicyNameRoundTrip(t *testing.T) {
	if len(Policies()) != int(numPolicies) {
		t.Fatalf("Policies() returned %d tags, registry holds %d", len(Policies()), numPolicies)
	}
	seen := make(map[string]bool)
	for _, p := range Policies() {
		name := p.String()
		if strings.HasPrefix(name, "PlacementPolicy(") {
			t.Fatalf("policy %d has no canonical name", int(p))
		}
		if seen[name] {
			t.Fatalf("duplicate policy name %q", name)
		}
		seen[name] = true
		parsed, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if parsed != p {
			t.Fatalf("round trip %q: got %d, want %d", name, int(parsed), int(p))
		}
		if kind := PolicyFor(p).Kind(); kind != p {
			t.Fatalf("registry entry for %q reports Kind %d", name, int(kind))
		}
	}
	if MustParsePolicy("least-allocated") != LeastAllocated {
		t.Fatal("MustParsePolicy mismatch")
	}
}

// TestParsePolicyUnknown checks the unknown-name error names the typo and
// lists every valid policy, so a misconfigured CLI flag or sweep clause
// is self-explaining.
func TestParsePolicyUnknown(t *testing.T) {
	_, err := ParsePolicy("bestfit")
	if err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bestfit"`) {
		t.Fatalf("error does not name the bad input: %q", msg)
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list valid policy %q: %q", name, msg)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustParsePolicy did not panic on unknown name")
			}
		}()
		MustParsePolicy("bestfit")
	}()
}

// TestPolicyScoreMatchesLegacySwitch is the differential oracle for the
// refactor: BestFit and LeastAllocated through the Policy interface must
// reproduce the pre-refactor score() switch bit for bit across
// randomized machine states, so same-seed traces cannot drift. (The
// whole-trace version of this check ran against pre-refactor golden
// traces when the interface was extracted; this keeps the scoring core
// pinned.)
func TestPolicyScoreMatchesLegacySwitch(t *testing.T) {
	legacy := func(pol PlacementPolicy, m *cluster.Machine, req, usage trace.Resources) float64 {
		alloc := m.Allocated()
		capacity := m.Capacity
		frac := 0.0
		if capacity.CPU > 0 {
			frac += (alloc.CPU+req.CPU)/capacity.CPU + usage.CPU/capacity.CPU
		}
		if capacity.Mem > 0 {
			frac += (alloc.Mem+req.Mem)/capacity.Mem + usage.Mem/capacity.Mem
		}
		switch pol {
		case BestFit:
			return -frac
		case LeastAllocated:
			return frac
		default:
			return frac
		}
	}

	src := rng.New(99)
	cell := cluster.NewCell("oracle")
	var ms []*cluster.Machine
	for i := 0; i < 8; i++ {
		shape := trace.Resources{CPU: 0.5 + src.Float64(), Mem: 0.5 + src.Float64()}
		ms = append(ms, cell.AddMachine(shape, "P0"))
	}
	next := trace.CollectionID(1)
	for step := 0; step < 2000; step++ {
		m := ms[src.Intn(len(ms))]
		key := trace.InstanceKey{Collection: next}
		next++
		cell.Place(m.ID, &cluster.Resident{
			Key:   key,
			Limit: trace.Resources{CPU: src.Float64() * 0.2, Mem: src.Float64() * 0.2},
		})
		m.SetUsage(key, trace.Resources{CPU: src.Float64() * 0.1, Mem: src.Float64() * 0.1})

		req := trace.Resources{CPU: src.Float64() * 0.3, Mem: src.Float64() * 0.3}
		vm := ms[src.Intn(len(ms))]
		usage := vm.UsageTotal()
		for _, pol := range []PlacementPolicy{BestFit, LeastAllocated} {
			got := PolicyFor(pol).Score(vm, req, usage)
			want := legacy(pol, vm, req, usage)
			if got != want {
				t.Fatalf("step %d: %v.Score = %v, legacy switch = %v", step, pol, got, want)
			}
		}
	}
}

// TestWorstFitPrefersLargestHeadroom checks WorstFit's spreading: the
// machine retaining the most absolute free capacity after placement must
// score strictly lower (better).
func TestWorstFitPrefersLargestHeadroom(t *testing.T) {
	cell := cluster.NewCell("wf")
	big := cell.AddMachine(trace.Resources{CPU: 4, Mem: 4}, "P0")
	small := cell.AddMachine(trace.Resources{CPU: 1, Mem: 1}, "P0")
	req := trace.Resources{CPU: 0.1, Mem: 0.1}
	wf := PolicyFor(WorstFit)
	if !(wf.Score(big, req, trace.Resources{}) < wf.Score(small, req, trace.Resources{})) {
		t.Fatal("WorstFit does not prefer the machine with the most absolute headroom")
	}
	// LeastAllocated, by contrast, is fraction-normalized and ties here.
	la := PolicyFor(LeastAllocated)
	if la.Score(big, req, trace.Resources{}) >= la.Score(small, req, trace.Resources{}) {
		t.Fatal("expected LeastAllocated to score the small empty machine no better")
	}
}

// TestOversubPenalizesRiskyMachine checks the oversubscription-aware
// scorer: between two machines with identical sampled usage, the one
// whose post-placement allocation exceeds physical capacity must score
// strictly worse, and the penalty must grow with how hot the machine
// already runs.
func TestOversubPenalizesRiskyMachine(t *testing.T) {
	cell := cluster.NewCell("os")
	risky := cell.AddMachine(trace.Resources{CPU: 1, Mem: 1}, "P0")
	safe := cell.AddMachine(trace.Resources{CPU: 1, Mem: 1}, "P0")
	// Overcommit lets allocation exceed capacity on the risky machine.
	cell.Place(risky.ID, &cluster.Resident{
		Key:   trace.InstanceKey{Collection: 1},
		Limit: trace.Resources{CPU: 1.1, Mem: 1.1},
	})
	cell.Place(safe.ID, &cluster.Resident{
		Key:   trace.InstanceKey{Collection: 2},
		Limit: trace.Resources{CPU: 0.3, Mem: 0.3},
	})
	req := trace.Resources{CPU: 0.1, Mem: 0.1}
	usage := trace.Resources{CPU: 0.2, Mem: 0.2}
	os := PolicyFor(Oversub)
	if !(os.Score(safe, req, usage) < os.Score(risky, req, usage)) {
		t.Fatal("Oversub does not penalize the overcommitted machine")
	}
	cold := trace.Resources{CPU: 0.05, Mem: 0.05}
	hot := trace.Resources{CPU: 0.9, Mem: 0.9}
	coldRisk := os.Score(risky, req, cold) - os.Score(safe, req, cold)
	hotRisk := os.Score(risky, req, hot) - os.Score(safe, req, hot)
	if !(hotRisk > coldRisk) {
		t.Fatalf("oversubscription penalty did not grow with heat: cold %v, hot %v", coldRisk, hotRisk)
	}
}

// TestOneShotGivesUp checks the no-retry policy end to end: a task no
// machine can host is abandoned (KILL, PlacementGiveUps) instead of
// parked for backoff, while the same scenario under LeastAllocated
// retries forever.
func TestOneShotGivesUp(t *testing.T) {
	build := func(policy PlacementPolicy) (*Scheduler, *sim.Kernel) {
		cell := cluster.NewCell("oneshot")
		cell.AddMachine(trace.Resources{CPU: 0.1, Mem: 0.1}, "P0")
		k := sim.NewKernel()
		cfg := DefaultConfig()
		cfg.Policy = policy
		cfg.Batch = nil
		cfg.ServiceTime = dist.Deterministic{Value: 0.001}
		return New(cfg, cell, k, trace.NopSink{}, rng.New(3)), k
	}
	submit := func(s *Scheduler, k *sim.Kernel) Stats {
		j := NewJob(1)
		j.Type = trace.CollectionJob
		j.Priority = 120
		j.Tier = trace.TierProduction
		j.AddTask(&Task{Request: trace.Resources{CPU: 5, Mem: 5}, Duration: sim.Hour})
		k.At(0, func(sim.Time) { s.Submit(j) })
		k.RunUntil(2 * sim.Minute)
		return s.Stats()
	}

	s, k := build(OneShot)
	st := submit(s, k)
	if st.PlacementGiveUps != 1 {
		t.Fatalf("OneShot: PlacementGiveUps = %d, want 1", st.PlacementGiveUps)
	}
	if st.PlacementRetries != 0 {
		t.Fatalf("OneShot: PlacementRetries = %d, want 0", st.PlacementRetries)
	}
	if job := s.Job(1); job.State != JobDone || job.FinalType != trace.EventKill {
		t.Fatalf("OneShot: job state %v final %v, want done/KILL", job.State, job.FinalType)
	}

	s, k = build(LeastAllocated)
	st = submit(s, k)
	if st.PlacementGiveUps != 0 {
		t.Fatalf("LeastAllocated: PlacementGiveUps = %d, want 0", st.PlacementGiveUps)
	}
	if st.PlacementRetries == 0 {
		t.Fatal("LeastAllocated: expected backoff retries for the infeasible task")
	}
	if job := s.Job(1); job.State == JobDone {
		t.Fatal("LeastAllocated: infeasible job should still be live (retrying)")
	}
}

// TestQueueOrdererOverride checks the pending-queue hook: a policy-
// supplied QueueLess replaces the default priority order, and ties under
// the custom order still break FIFO by enqueue sequence.
func TestQueueOrdererOverride(t *testing.T) {
	mk := func(priority int, seq uint64) *Task {
		tt := benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, priority, trace.TierMid)
		tt.enqueueSeq = seq
		return tt
	}
	// Custom order: weakest priority first — the reverse of the default.
	h := &taskHeap{less: func(a, b *Task) bool { return a.Job.Priority < b.Job.Priority }}
	h.tasks = []*Task{mk(300, 0), mk(100, 2), mk(100, 1), mk(200, 3)}
	if h.Less(1, 0) != true || h.Less(0, 1) != false {
		t.Fatal("custom less not consulted")
	}
	// Equal priorities: index 2 enqueued before index 1.
	if h.Less(2, 1) != true || h.Less(1, 2) != false {
		t.Fatal("tie under custom less does not break by enqueue sequence")
	}
	// Default ordering (nil less): strongest priority first, then FIFO.
	d := &taskHeap{tasks: []*Task{mk(100, 0), mk(300, 1), mk(300, 2)}}
	if d.Less(0, 1) != false || d.Less(1, 0) != true {
		t.Fatal("default order lost priority-descending")
	}
	if d.Less(1, 2) != true || d.Less(2, 1) != false {
		t.Fatal("default order lost FIFO tie-break")
	}
}

// TestPlacementZeroAllocsEveryPolicy extends the PR 3 allocation guard
// across the zoo: the steady-state placement cycle must stay
// allocation-free under every registered policy, scored or first-fit.
func TestPlacementZeroAllocsEveryPolicy(t *testing.T) {
	for _, p := range Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			s, cell := benchPolicyCell(p, 64, 8, trace.TierMid, 110,
				trace.Resources{CPU: 0.03, Mem: 0.03}, trace.Resources{CPU: 0.02, Mem: 0.02},
				cluster.OvercommitPolicy{CPUFactor: 1.5, MemFactor: 1.45})
			task := benchTask(trace.Resources{CPU: 0.1, Mem: 0.1}, 120, trace.TierProduction)
			cycle := func() {
				m := s.pickMachine(task)
				if m == nil {
					t.Fatal("no feasible machine")
				}
				cell.Place(m.ID, s.takeResident(task.Key, task.Request, task.Job.Priority, task.Job.Tier))
				s.releaseResident(cell.Remove(m.ID, task.Key))
			}
			for i := 0; i < 100; i++ {
				cycle()
			}
			if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
				t.Fatalf("policy %v: steady-state placement allocates %.1f allocs/op, want 0", p, avg)
			}
		})
	}
}
