package scheduler

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// attemptPlacement tries to put one pending task onto a machine (or into
// an alloc instance), falling back to preemption and then to a backoff
// retry.
func (s *Scheduler) attemptPlacement(t *Task, now sim.Time) {
	if t.Job.State == JobDone || t.State != TaskPending {
		return
	}
	// Jobs targeting an alloc set place tasks inside its reservations
	// (§5.1) instead of claiming machine allocation directly.
	if t.Job.Type == trace.CollectionJob && t.Job.AllocSet != 0 {
		s.placeInAlloc(t, now)
		return
	}

	m := s.pickMachine(t)
	if m == nil && s.cfg.EnablePreemption && t.Job.Tier == trace.TierProduction {
		m = s.tryPreemption(t)
	}
	if m == nil {
		s.retryLater(t)
		return
	}
	s.placeOnMachine(t, m)
}

// pickMachine samples candidate machines and returns the best feasible one
// under the configured policy, or nil.
func (s *Scheduler) pickMachine(t *Task) *cluster.Machine {
	ids := s.cell.MachineIDs()
	if len(ids) == 0 {
		return nil
	}
	k := s.cfg.CandidateSample
	if k > len(ids) {
		k = len(ids)
	}
	var best *cluster.Machine
	bestScore := math.Inf(1)
	for i := 0; i < k; i++ {
		m := s.cell.Machine(ids[s.src.Intn(len(ids))])
		if m == nil || !m.FitsLimit(t.Request, s.cfg.Overcommit) {
			continue
		}
		// Usage-aware feasibility: do not stack onto a machine whose
		// sampled memory usage leaves no room — memory is a hard bound
		// and placing here would trigger OOM evictions next window.
		if m.UsageTotal().Mem+0.6*t.Request.Mem > m.Capacity.Mem {
			continue
		}
		if s.cfg.Policy == RandomFit {
			return m
		}
		score := s.score(m, t)
		if score < bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// score ranks a feasible machine; lower is better. Both the allocation
// position and the sampled usage contribute, so load spreading considers
// actual consumption as well as promises.
func (s *Scheduler) score(m *cluster.Machine, t *Task) float64 {
	alloc := m.Allocated()
	usage := m.UsageTotal()
	capacity := m.Capacity
	frac := 0.0
	if capacity.CPU > 0 {
		frac += (alloc.CPU+t.Request.CPU)/capacity.CPU + usage.CPU/capacity.CPU
	}
	if capacity.Mem > 0 {
		frac += (alloc.Mem+t.Request.Mem)/capacity.Mem + usage.Mem/capacity.Mem
	}
	switch s.cfg.Policy {
	case BestFit:
		// Prefer the fullest machine that still fits: minimize remaining
		// headroom, i.e. maximize the post-placement fraction.
		return -frac
	case LeastAllocated:
		// Spread load: prefer the emptiest machine.
		return frac
	default:
		return frac
	}
}

// placeOnMachine commits a placement and starts the task.
func (s *Scheduler) placeOnMachine(t *Task, m *cluster.Machine) {
	limit := t.Request
	s.cell.Place(m.ID, &cluster.Resident{
		Key:      t.Key,
		Limit:    limit,
		Priority: t.Job.Priority,
		Tier:     t.Job.Tier,
	})
	s.stats.TasksPlaced++
	s.startRunning(t, m.ID)

	// A newly placed alloc instance becomes a reservation jobs can
	// schedule into.
	if t.Job.Type == trace.CollectionAllocSet {
		s.allocs[t.Job.ID] = append(s.allocs[t.Job.ID], &AllocInstance{
			Key:      t.Key,
			Machine:  m.ID,
			Reserved: t.Request,
			tasks:    make(map[trace.InstanceKey]*Task),
		})
	}
}

// placeInAlloc places a task inside the freest alloc instance of its
// job's target alloc set.
func (s *Scheduler) placeInAlloc(t *Task, now sim.Time) {
	instances := s.allocs[t.Job.AllocSet]
	var best *AllocInstance
	bestFree := -1.0
	for _, ai := range instances {
		free := ai.Free()
		if t.Request.CPU <= free.CPU+1e-12 && t.Request.Mem <= free.Mem+1e-12 {
			score := free.CPU + free.Mem
			if score > bestFree {
				best, bestFree = ai, score
			}
		}
	}
	if best == nil {
		// The alloc set is not (yet) placed or is full; retry later.
		s.retryLater(t)
		return
	}
	best.Used = best.Used.Add(t.Request)
	best.tasks[t.Key] = t
	t.AllocInstance = best.Key
	// Inner tasks consume the alloc set's reservation, not fresh machine
	// allocation, so they join the machine with a zero limit.
	s.cell.Place(best.Machine, &cluster.Resident{
		Key:      t.Key,
		Limit:    trace.Resources{},
		Priority: t.Job.Priority,
		Tier:     t.Job.Tier,
	})
	s.stats.TasksPlaced++
	s.startRunning(t, best.Machine)
}

// tryPreemption finds a machine where evicting weaker residents makes room
// for t, performs the evictions, and returns the machine (§2: "Borg will
// evict lower-tier jobs in order to ensure production tier jobs receive
// their expected level of service").
func (s *Scheduler) tryPreemption(t *Task) *cluster.Machine {
	ids := s.cell.MachineIDs()
	if len(ids) == 0 {
		return nil
	}
	k := s.cfg.CandidateSample
	if k > len(ids) {
		k = len(ids)
	}
	type plan struct {
		m       *cluster.Machine
		victims []*Task
	}
	var best *plan
	for i := 0; i < k; i++ {
		m := s.cell.Machine(ids[s.src.Intn(len(ids))])
		if m == nil {
			continue
		}
		ceiling := s.cfg.Overcommit.AllocationCeiling(m.Capacity)
		need := m.Allocated().Add(t.Request).Sub(ceiling)
		if need.CPU <= 0 && need.Mem <= 0 {
			// Already fits; pickMachine should have found it, but the
			// random samples differ.
			return m
		}
		var victims []*Task
		freed := trace.Resources{}
		for _, r := range m.Residents() { // weakest first
			if r.Priority > t.Job.Priority-s.cfg.PreemptionPriorityGap {
				break
			}
			// Production never preempts production: eviction-rate SLOs
			// protect the tier (§5.2).
			if r.Tier == trace.TierProduction {
				continue
			}
			vt := s.taskByKey(r.Key)
			if vt == nil || vt.State != TaskRunning {
				continue
			}
			victims = append(victims, vt)
			freed = freed.Add(r.Limit)
			if freed.CPU >= need.CPU && freed.Mem >= need.Mem {
				break
			}
		}
		if freed.CPU >= need.CPU && freed.Mem >= need.Mem && len(victims) > 0 {
			if best == nil || len(victims) < len(best.victims) {
				best = &plan{m: m, victims: victims}
			}
		}
	}
	if best == nil {
		return nil
	}
	for _, v := range best.victims {
		s.Evict(v)
		s.stats.Preemptions++
	}
	if !best.m.FitsLimit(t.Request, s.cfg.Overcommit) {
		return nil // eviction freed less than planned (racing state)
	}
	return best.m
}

// retryLater parks a task and re-enqueues it after the retry backoff.
// Unlike eviction, a feasibility retry is not a trace-visible resubmit.
func (s *Scheduler) retryLater(t *Task) {
	s.stats.PlacementRetries++
	t.State = TaskWaiting
	t.retryEvent = s.k.After(s.cfg.RetryBackoff, func(sim.Time) {
		t.retryEvent = sim.EventRef{}
		if t.Job.State == JobDone || t.State != TaskWaiting {
			return
		}
		s.enqueue(t)
	})
}

// findAllocInstance resolves an alloc-instance key to its live record.
func (s *Scheduler) findAllocInstance(key trace.InstanceKey) *AllocInstance {
	for _, ai := range s.allocs[key.Collection] {
		if ai.Key == key {
			return ai
		}
	}
	return nil
}

// removeAllocInstance drops an alloc instance from the registry. The
// tasks running inside lose their reservation: if the alloc set is
// terminating, their jobs are killed outright (they would be killed by the
// teardown moments later anyway — an EVICT first would misattribute
// infrastructure evictions to them); if the instance was merely evicted,
// they are displaced and rescheduled.
func (s *Scheduler) removeAllocInstance(key trace.InstanceKey, terminal bool) {
	instances := s.allocs[key.Collection]
	for i, ai := range instances {
		if ai.Key != key {
			continue
		}
		s.allocs[key.Collection] = append(instances[:i], instances[i+1:]...)
		inner := make([]*Task, 0, len(ai.tasks))
		for _, t := range ai.tasks {
			inner = append(inner, t)
		}
		sortTasks(inner)
		for _, t := range inner {
			if terminal {
				if t.Job.State != JobDone {
					s.KillJob(t.Job, trace.EventKill)
				}
			} else if t.State == TaskRunning {
				s.Evict(t)
			}
		}
		return
	}
}

// sortTasks orders tasks by key for deterministic iteration.
func sortTasks(ts []*Task) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Key.Collection != ts[j].Key.Collection {
			return ts[i].Key.Collection < ts[j].Key.Collection
		}
		return ts[i].Key.Index < ts[j].Key.Index
	})
}

// teardownAllocSet kills the jobs targeting a terminated alloc set —
// running or still pending — and forgets its reservations.
func (s *Scheduler) teardownAllocSet(j *Job) {
	for _, inner := range s.allocJobs[j.ID] {
		if inner.State != JobDone {
			s.KillJob(inner, trace.EventKill)
		}
	}
	delete(s.allocJobs, j.ID)
	delete(s.allocs, j.ID)
}
