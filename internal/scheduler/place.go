package scheduler

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// attemptPlacement tries to put one pending task onto a machine (or into
// an alloc instance), falling back to preemption and then to a backoff
// retry.
func (s *Scheduler) attemptPlacement(t *Task, now sim.Time) {
	if t.Job.State == JobDone || t.State != TaskPending {
		return
	}
	s.met.placementAttempts.Inc()
	// Jobs targeting an alloc set place tasks inside its reservations
	// (§5.1) instead of claiming machine allocation directly.
	if t.Job.Type == trace.CollectionJob && t.Job.AllocSet != 0 {
		s.placeInAlloc(t, now)
		return
	}

	m := s.pickMachine(t)
	if m == nil && s.cfg.EnablePreemption && t.Job.Tier == trace.TierProduction {
		m = s.tryPreemption(t)
	}
	if m == nil {
		if !s.policy.RetryOnFailure() {
			// A one-shot policy abandons the task instead of parking it
			// for backoff: the cluster has room now or the work is dropped.
			s.met.placementGiveUps.Inc()
			s.finishTask(t, trace.EventKill)
			return
		}
		s.retryLater(t)
		return
	}
	s.placeOnMachine(t, m)
}

// pickMachine samples candidate machines and returns the best feasible one
// under the configured policy, or nil. This is the placement fast path:
// candidate feasibility and scoring read only O(1) machine aggregates,
// and scores memoize per equivalence class. The RNG draw sequence is
// identical whether or not the cache hits, so caching cannot perturb the
// deterministic trace.
func (s *Scheduler) pickMachine(t *Task) *cluster.Machine {
	ids := s.cell.MachineIDs()
	if len(ids) == 0 {
		return nil
	}
	k := s.cfg.CandidateSample
	if k > len(ids) {
		k = len(ids)
	}
	var class uint32 // interned lazily: RandomFit never needs it
	var best *cluster.Machine
	bestScore := math.Inf(1)
	// Cache hits/misses accumulate locally and post to the atomic
	// counters once per pick, not once per candidate, so instrumentation
	// adds O(1) atomics to the fast path.
	var hits, misses int64
	for i := 0; i < k; i++ {
		m := s.cell.Machine(ids[s.src.Intn(len(ids))])
		if m == nil || !m.FitsLimit(t.Request, s.cfg.Overcommit) {
			continue
		}
		// Usage-aware feasibility: do not stack onto a machine whose
		// sampled memory usage leaves no room — memory is a hard bound
		// and placing here would trigger OOM evictions next window.
		usage := m.UsageTotal()
		if usage.Mem+0.6*t.Request.Mem > m.Capacity.Mem {
			continue
		}
		if s.policy.FirstFit() {
			return m
		}
		if class == 0 {
			class = s.classID(t)
		}
		score, hit := s.cachedScore(m, t, usage, class)
		if hit {
			hits++
		} else {
			misses++
		}
		if score < bestScore {
			best, bestScore = m, score
		}
	}
	if hits != 0 {
		s.met.scoreCacheHits.Add(hits)
	}
	if misses != 0 {
		s.met.scoreCacheMisses.Add(misses)
	}
	return best
}

// cachedScore returns the policy's Score(m, req, usage) through the
// equivalence-class cache, and whether the slot hit: a slot whose class
// and machine generation both match is exact memoization (see
// scoreSlot) and skips recomputation — valid because Policy.Score is
// contractually a pure function of state covered by (class, m.Gen()).
// The probe is a bare array index — no hashing on the per-candidate
// path; the caller batches hit/miss counts into the metrics counters.
func (s *Scheduler) cachedScore(m *cluster.Machine, t *Task, usage trace.Resources, class uint32) (float64, bool) {
	i := int(m.ID)
	if i >= len(s.scoreSlots) {
		grown := make([]scoreSlot, i+1)
		copy(grown, s.scoreSlots)
		s.scoreSlots = grown
	}
	slot := &s.scoreSlots[i]
	if slot.class == class && slot.gen == m.Gen() {
		return slot.score, true
	}
	sc := s.policy.Score(m, t.Request, usage)
	*slot = scoreSlot{class: class, gen: m.Gen(), score: sc}
	return sc, false
}

// takeResident returns a Resident record for a placement, recycling one
// from the pool when possible so steady-state placement does not allocate.
func (s *Scheduler) takeResident(key trace.InstanceKey, limit trace.Resources, priority int, tier trace.Tier) *cluster.Resident {
	if n := len(s.residentPool); n > 0 {
		r := s.residentPool[n-1]
		s.residentPool = s.residentPool[:n-1]
		*r = cluster.Resident{Key: key, Limit: limit, Priority: priority, Tier: tier}
		return r
	}
	return &cluster.Resident{Key: key, Limit: limit, Priority: priority, Tier: tier}
}

// releaseResident returns an unplaced Resident record to the pool. The
// record must already be detached from its machine; a stale victim-order
// snapshot may still reference it until the snapshot holder's current
// scheduling event completes, so the record is zeroed here — any such
// latent read then resolves to a non-existent instance (a loud no-op)
// rather than silently aliasing whatever task reuses the record next.
func (s *Scheduler) releaseResident(r *cluster.Resident) {
	if r != nil {
		*r = cluster.Resident{}
		s.residentPool = append(s.residentPool, r)
	}
}

// placeOnMachine commits a placement and starts the task.
func (s *Scheduler) placeOnMachine(t *Task, m *cluster.Machine) {
	limit := t.Request
	res := s.takeResident(t.Key, limit, t.Job.Priority, t.Job.Tier)
	// The resident carries the task pointer so the usage sampler reads
	// residents straight into tasks with no key lookup; recycling the
	// record (releaseResident) clears it.
	res.Task = t
	s.cell.Place(m.ID, res)
	s.met.tasksPlaced.Inc()
	s.startRunning(t, m.ID)

	// A newly placed alloc instance becomes a reservation jobs can
	// schedule into.
	if t.Job.Type == trace.CollectionAllocSet {
		ai := &AllocInstance{
			Key:      t.Key,
			Machine:  m.ID,
			Reserved: t.Request,
			tasks:    make(map[trace.InstanceKey]*Task),
			slot:     len(s.allocs[t.Job.ID]),
		}
		s.allocs[t.Job.ID] = append(s.allocs[t.Job.ID], ai)
		s.allocByKey[ai.Key] = ai
	}
}

// placeInAlloc places a task inside the freest alloc instance of its
// job's target alloc set.
func (s *Scheduler) placeInAlloc(t *Task, now sim.Time) {
	instances := s.allocs[t.Job.AllocSet]
	var best *AllocInstance
	bestFree := -1.0
	for _, ai := range instances {
		free := ai.Free()
		if t.Request.CPU <= free.CPU+1e-12 && t.Request.Mem <= free.Mem+1e-12 {
			score := free.CPU + free.Mem
			if score > bestFree {
				best, bestFree = ai, score
			}
		}
	}
	if best == nil {
		// The alloc set is not (yet) placed or is full; retry later.
		s.retryLater(t)
		return
	}
	best.Used = best.Used.Add(t.Request)
	best.tasks[t.Key] = t
	t.AllocInstance = best.Key
	// Inner tasks consume the alloc set's reservation, not fresh machine
	// allocation, so they join the machine with a zero limit.
	res := s.takeResident(t.Key, trace.Resources{}, t.Job.Priority, t.Job.Tier)
	res.Task = t
	s.cell.Place(best.Machine, res)
	s.met.tasksPlaced.Inc()
	s.startRunning(t, best.Machine)
}

// tryPreemption finds a machine where evicting weaker residents makes room
// for t, performs the evictions, and returns the machine (§2: "Borg will
// evict lower-tier jobs in order to ensure production tier jobs receive
// their expected level of service").
func (s *Scheduler) tryPreemption(t *Task) *cluster.Machine {
	ids := s.cell.MachineIDs()
	if len(ids) == 0 {
		return nil
	}
	k := s.cfg.CandidateSample
	if k > len(ids) {
		k = len(ids)
	}
	type plan struct {
		m       *cluster.Machine
		victims []*Task
		freed   trace.Resources
	}
	var best *plan
	for i := 0; i < k; i++ {
		m := s.cell.Machine(ids[s.src.Intn(len(ids))])
		if m == nil {
			continue
		}
		ceiling := m.Ceiling(s.cfg.Overcommit)
		need := m.Allocated().Add(t.Request).Sub(ceiling)
		if need.CPU <= 0 && need.Mem <= 0 {
			// Already fits; pickMachine should have found it, but the
			// random samples differ.
			return m
		}
		var victims []*Task
		freed := trace.Resources{}
		for _, r := range m.Residents() { // weakest first
			if r.Priority > t.Job.Priority-s.cfg.PreemptionPriorityGap {
				break
			}
			// Production never preempts production: eviction-rate SLOs
			// protect the tier (§5.2).
			if r.Tier == trace.TierProduction {
				continue
			}
			vt := s.taskByKey(r.Key)
			if vt == nil || vt.State != TaskRunning {
				continue
			}
			victims = append(victims, vt)
			freed = freed.Add(r.Limit)
			if freed.CPU >= need.CPU && freed.Mem >= need.Mem {
				break
			}
		}
		if freed.CPU >= need.CPU && freed.Mem >= need.Mem && len(victims) > 0 {
			if best == nil || s.policy.PreferPlan(len(victims), freed, len(best.victims), best.freed) {
				best = &plan{m: m, victims: victims, freed: freed}
			}
		}
	}
	if best == nil {
		return nil
	}
	for _, v := range best.victims {
		s.Evict(v)
		s.met.preemptions.Inc()
	}
	if !best.m.FitsLimit(t.Request, s.cfg.Overcommit) {
		return nil // eviction freed less than planned (racing state)
	}
	return best.m
}

// retryLater parks a task and re-enqueues it after the retry backoff.
// Unlike eviction, a feasibility retry is not a trace-visible resubmit.
func (s *Scheduler) retryLater(t *Task) {
	s.met.placementRetries.Inc()
	t.State = TaskWaiting
	s.accountBEB(t)
	t.retryEvent = s.k.After(s.cfg.RetryBackoff, s.retryFn(t))
}

// retryFn returns the task's cached re-enqueue callback, shared by
// feasibility retries and post-eviction requeues (the guard conditions
// are identical) so neither path allocates a closure per attempt.
func (s *Scheduler) retryFn(t *Task) func(sim.Time) {
	if t.retryFn == nil {
		t.retryFn = func(sim.Time) {
			t.retryEvent = sim.EventRef{}
			if t.Job.State == JobDone || t.State != TaskWaiting {
				return
			}
			s.enqueue(t)
		}
	}
	return t.retryFn
}

// findAllocInstance resolves an alloc-instance key to its live record.
func (s *Scheduler) findAllocInstance(key trace.InstanceKey) *AllocInstance {
	return s.allocByKey[key]
}

// removeAllocInstance drops an alloc instance from the registry. The
// tasks running inside lose their reservation: if the alloc set is
// terminating, their jobs are killed outright (they would be killed by the
// teardown moments later anyway — an EVICT first would misattribute
// infrastructure evictions to them); if the instance was merely evicted,
// they are displaced and rescheduled.
func (s *Scheduler) removeAllocInstance(key trace.InstanceKey, terminal bool) {
	ai := s.allocByKey[key]
	if ai == nil {
		return
	}
	delete(s.allocByKey, key)
	instances := s.allocs[key.Collection]
	// Close the slot and renumber the shifted tail (the shift itself is
	// already O(tail); renumbering adds no asymptotic cost).
	i := ai.slot
	s.allocs[key.Collection] = append(instances[:i], instances[i+1:]...)
	for j := i; j < len(s.allocs[key.Collection]); j++ {
		s.allocs[key.Collection][j].slot = j
	}
	inner := make([]*Task, 0, len(ai.tasks))
	for _, t := range ai.tasks {
		inner = append(inner, t)
	}
	sortTasks(inner)
	for _, t := range inner {
		if terminal {
			if t.Job.State != JobDone {
				s.KillJob(t.Job, trace.EventKill)
			}
		} else if t.State == TaskRunning {
			s.Evict(t)
		}
	}
}

// sortTasks orders tasks by key for deterministic iteration.
func sortTasks(ts []*Task) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Key.Collection != ts[j].Key.Collection {
			return ts[i].Key.Collection < ts[j].Key.Collection
		}
		return ts[i].Key.Index < ts[j].Key.Index
	})
}

// teardownAllocSet kills the jobs targeting a terminated alloc set —
// running or still pending — and forgets its reservations.
func (s *Scheduler) teardownAllocSet(j *Job) {
	for _, inner := range s.allocJobs[j.ID] {
		if inner.State != JobDone {
			s.KillJob(inner, trace.EventKill)
		}
	}
	delete(s.allocJobs, j.ID)
	for _, ai := range s.allocs[j.ID] {
		delete(s.allocByKey, ai.Key)
	}
	delete(s.allocs, j.ID)
}
