package scheduler

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// PlacementPolicy names a registered placement brain. It is the stable
// configuration tag — profiles, CLI flags and sweep variants select
// policies by it (or by its canonical string name via ParsePolicy) — and
// indexes the policy registry that holds the actual implementation.
type PlacementPolicy int

// The placement-policy zoo. The 2011 profile uses RandomFit (wide machine
// utilization spread); the 2019 profile uses LeastAllocated load
// spreading, which reproduces Figure 6's tighter utilization
// distribution. The remaining policies exist for cross-policy sweeps:
// same clusters, same arrivals, different brains.
const (
	RandomFit      PlacementPolicy = iota // first feasible candidate
	BestFit                               // pack: minimize leftover fractional headroom
	LeastAllocated                        // spread: pick the emptiest candidate by fraction
	WorstFit                              // spread: maximize absolute leftover headroom
	Oversub                               // oversubscription-aware: penalize usage-over-allocation risk
	OneShot                               // LeastAllocated scoring, but no placement retries
	numPolicies                           // registry size sentinel — keep last
)

// Policy is a placement brain behind the scheduler's fast path: it ranks
// feasible candidate machines, arbitrates between preemption plans, and
// decides what happens to tasks that found no feasible machine.
//
// Implementations must be stateless values (the registry shares one
// instance across schedulers) and Score must be a pure function of
// inputs that are fully covered by the score cache key: the machine's
// generation counter (which advances on every allocation, limit and
// usage mutation) and the task's equivalence class (request shape). A
// policy honoring that contract gets exact memoization through
// Scheduler.cachedScore for free; one that reads anything else (time,
// RNG, queue state) would silently break the cache and the determinism
// contract with it.
type Policy interface {
	// Kind returns the policy's registry tag.
	Kind() PlacementPolicy
	// FirstFit reports whether the first feasible candidate wins outright.
	// First-fit policies skip equivalence-class interning and the score
	// cache entirely, preserving RandomFit's original draw-and-return path.
	FirstFit() bool
	// Score ranks a feasible machine for a task requesting req; lower is
	// better. usage is the machine's sampled usage total, read once by the
	// caller and threaded through.
	Score(m *cluster.Machine, req, usage trace.Resources) float64
	// PreferPlan arbitrates between two feasible preemption plans: it
	// reports whether evicting victimsA tasks freeing freedA beats
	// evicting victimsB freeing freedB.
	PreferPlan(victimsA int, freedA trace.Resources, victimsB int, freedB trace.Resources) bool
	// RetryOnFailure reports whether a task that found no feasible machine
	// (even after preemption) is parked for a backoff retry. A one-shot
	// policy returns false: the task is abandoned instead.
	RetryOnFailure() bool
}

// QueueOrderer is the optional pending-queue ordering hook: a Policy that
// also implements it replaces the default pending order (priority
// descending, FIFO within a priority) with its own. Ties under QueueLess
// still break by enqueue sequence, so any ordering stays deterministic.
type QueueOrderer interface {
	QueueLess(a, b *Task) bool
}

// defaultPolicy supplies the shared behavior the pre-refactor switch
// hard-wired: scored selection, preemption plans compared by victim
// count, and backoff retries on placement failure.
type defaultPolicy struct{}

func (defaultPolicy) FirstFit() bool { return false }

func (defaultPolicy) PreferPlan(victimsA int, _ trace.Resources, victimsB int, _ trace.Resources) bool {
	return victimsA < victimsB
}

func (defaultPolicy) RetryOnFailure() bool { return true }

// allocFraction is the shared load metric of the original score():
// post-placement allocated fraction plus sampled usage fraction, summed
// over CPU and memory. Both the allocation position and the sampled
// usage contribute, so load spreading considers actual consumption as
// well as promises. The operation order is load-bearing: BestFit and
// LeastAllocated traces are bit-for-bit reproductions of the pre-policy
// switch only because this computes the identical float sequence.
func allocFraction(m *cluster.Machine, req, usage trace.Resources) float64 {
	alloc := m.Allocated()
	capacity := m.Capacity
	frac := 0.0
	if capacity.CPU > 0 {
		frac += (alloc.CPU+req.CPU)/capacity.CPU + usage.CPU/capacity.CPU
	}
	if capacity.Mem > 0 {
		frac += (alloc.Mem+req.Mem)/capacity.Mem + usage.Mem/capacity.Mem
	}
	return frac
}

// randomFitPolicy takes the first feasible candidate the sampler draws.
type randomFitPolicy struct{ defaultPolicy }

func (randomFitPolicy) Kind() PlacementPolicy { return RandomFit }
func (randomFitPolicy) FirstFit() bool        { return true }
func (randomFitPolicy) Score(*cluster.Machine, trace.Resources, trace.Resources) float64 {
	return 0 // never consulted: FirstFit short-circuits scoring
}

// bestFitPolicy packs: prefer the fullest machine that still fits, i.e.
// minimize remaining headroom by maximizing the post-placement fraction.
type bestFitPolicy struct{ defaultPolicy }

func (bestFitPolicy) Kind() PlacementPolicy { return BestFit }
func (bestFitPolicy) Score(m *cluster.Machine, req, usage trace.Resources) float64 {
	return -allocFraction(m, req, usage)
}

// leastAllocatedPolicy spreads: prefer the emptiest machine by combined
// allocated and used fraction.
type leastAllocatedPolicy struct{ defaultPolicy }

func (leastAllocatedPolicy) Kind() PlacementPolicy { return LeastAllocated }
func (leastAllocatedPolicy) Score(m *cluster.Machine, req, usage trace.Resources) float64 {
	return allocFraction(m, req, usage)
}

// worstFitPolicy spreads by absolute headroom: prefer the machine that
// would retain the most unallocated NCU+NMU after placement. Unlike
// LeastAllocated it ignores sampled usage and normalizes by nothing, so
// on heterogeneous machine shapes it herds tasks toward the physically
// largest machines rather than the proportionally emptiest ones.
type worstFitPolicy struct{ defaultPolicy }

func (worstFitPolicy) Kind() PlacementPolicy { return WorstFit }
func (worstFitPolicy) Score(m *cluster.Machine, req, _ trace.Resources) float64 {
	alloc := m.Allocated()
	capacity := m.Capacity
	free := (capacity.CPU - alloc.CPU - req.CPU) + (capacity.Mem - alloc.Mem - req.Mem)
	return -free
}

// oversubPolicy is usage-aware overcommit hygiene: it scores like a
// spreader on sampled usage but additionally charges each candidate its
// oversubscription exposure — the fraction of post-placement promises
// not covered by physical capacity (possible only because overcommit
// lets allocation exceed capacity). The exposure only hurts when usage
// materializes, so it is scaled up on machines that are already hot:
// a cold overcommitted machine is cheap, a hot one is a near-certain
// OOM-pressure eviction next window.
type oversubPolicy struct{ defaultPolicy }

// oversubRiskWeight converts one unit of hot oversubscription exposure
// into score units comparable with the usage fractions.
const oversubRiskWeight = 4.0

func (oversubPolicy) Kind() PlacementPolicy { return Oversub }
func (oversubPolicy) Score(m *cluster.Machine, req, usage trace.Resources) float64 {
	alloc := m.Allocated()
	capacity := m.Capacity
	score := 0.0
	if capacity.CPU > 0 {
		u := usage.CPU / capacity.CPU
		a := (alloc.CPU + req.CPU) / capacity.CPU
		score += u
		if a > 1 {
			score += oversubRiskWeight * (a - 1) * (1 + 3*u)
		}
	}
	if capacity.Mem > 0 {
		u := usage.Mem / capacity.Mem
		a := (alloc.Mem + req.Mem) / capacity.Mem
		score += u
		if a > 1 {
			score += oversubRiskWeight * (a - 1) * (1 + 3*u)
		}
	}
	return score
}

// oneShotPolicy schedules exactly like LeastAllocated but never retries:
// a task with no feasible machine (even after preemption) is abandoned
// rather than parked for backoff — the cluster either has room now or
// the work is dropped (the raz-bn k8s-cluster-simulator "oneshot"
// experiment arm). Against LeastAllocated under common random numbers,
// the paired difference isolates exactly what the retry loop buys.
type oneShotPolicy struct{ defaultPolicy }

func (oneShotPolicy) Kind() PlacementPolicy { return OneShot }
func (oneShotPolicy) RetryOnFailure() bool  { return false }
func (oneShotPolicy) Score(m *cluster.Machine, req, usage trace.Resources) float64 {
	return allocFraction(m, req, usage)
}

// policyRegistry maps each PlacementPolicy tag to its shared stateless
// implementation. Adding a policy means adding a const above, an entry
// here and a name in policyNames — the registration tests fail on any
// partial registration.
var policyRegistry = [numPolicies]Policy{
	RandomFit:      randomFitPolicy{},
	BestFit:        bestFitPolicy{},
	LeastAllocated: leastAllocatedPolicy{},
	WorstFit:       worstFitPolicy{},
	Oversub:        oversubPolicy{},
	OneShot:        oneShotPolicy{},
}

// policyNames is the single name table behind String, ParsePolicy and
// PolicyNames — there is no other switch to keep in sync.
var policyNames = [numPolicies]string{
	RandomFit:      "random-fit",
	BestFit:        "best-fit",
	LeastAllocated: "least-allocated",
	WorstFit:       "worst-fit",
	Oversub:        "oversub",
	OneShot:        "one-shot",
}

// String names the policy.
func (p PlacementPolicy) String() string {
	if p >= 0 && p < numPolicies && policyNames[p] != "" {
		return policyNames[p]
	}
	return fmt.Sprintf("PlacementPolicy(%d)", int(p))
}

// PolicyFor resolves a policy tag to its implementation. It panics on an
// unregistered tag: a Config carrying one is a programming error, and
// every name-based path (ParsePolicy) cannot produce one.
func PolicyFor(p PlacementPolicy) Policy {
	if p < 0 || p >= numPolicies || policyRegistry[p] == nil {
		panic(fmt.Sprintf("scheduler: unregistered placement policy %d", int(p)))
	}
	return policyRegistry[p]
}

// Policies returns every registered policy tag, in registry order.
func Policies() []PlacementPolicy {
	out := make([]PlacementPolicy, 0, numPolicies)
	for p := PlacementPolicy(0); p < numPolicies; p++ {
		out = append(out, p)
	}
	return out
}

// PolicyNames returns the canonical policy names, sorted — the valid set
// ParsePolicy accepts, for help text and error messages.
func PolicyNames() []string {
	out := make([]string, 0, numPolicies)
	for _, name := range policyNames {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParsePolicy resolves a canonical policy name (as printed by String) to
// its tag. Unknown names error with the full valid set, so a typo'd
// configuration fails loudly instead of silently simulating the wrong
// brain.
func ParsePolicy(name string) (PlacementPolicy, error) {
	for p, n := range policyNames {
		if n == name {
			return PlacementPolicy(p), nil
		}
	}
	return 0, fmt.Errorf("scheduler: unknown placement policy %q (policies: %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// MustParsePolicy is ParsePolicy for static configuration: it panics on
// an unknown name.
func MustParsePolicy(name string) PlacementPolicy {
	p, err := ParsePolicy(name)
	if err != nil {
		panic(err)
	}
	return p
}
