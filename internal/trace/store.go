package trace

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Meta describes a generated trace: which era profile produced it, the cell
// name, and the simulated horizon. It backs Table 1.
type Meta struct {
	Era      Era
	Cell     string   // "2011", or "a".."h" for 2019 cells
	Duration sim.Time // simulated horizon
	Machines int      // machines at trace start
	Seed     uint64   // root seed used for generation
}

// MemTrace is an in-memory trace store: the Sink that retains everything.
// It also builds the per-collection and per-instance indexes the analyses
// need. MemTrace is not safe for concurrent mutation.
type MemTrace struct {
	Meta Meta

	CollectionEvents []CollectionEvent
	InstanceEvents   []InstanceEvent
	UsageRecords     []UsageRecord
	MachineEvents    []MachineEvent

	collIndex map[CollectionID][]int // indexes into CollectionEvents
	instIndex map[InstanceKey][]int  // indexes into InstanceEvents
}

// NewMemTrace returns an empty store with the given metadata.
func NewMemTrace(meta Meta) *MemTrace {
	return &MemTrace{
		Meta:      meta,
		collIndex: make(map[CollectionID][]int),
		instIndex: make(map[InstanceKey][]int),
	}
}

// CollectionEvent stores the row.
func (t *MemTrace) CollectionEvent(ev CollectionEvent) {
	t.collIndex[ev.Collection] = append(t.collIndex[ev.Collection], len(t.CollectionEvents))
	t.CollectionEvents = append(t.CollectionEvents, ev)
}

// InstanceEvent stores the row.
func (t *MemTrace) InstanceEvent(ev InstanceEvent) {
	t.instIndex[ev.Key] = append(t.instIndex[ev.Key], len(t.InstanceEvents))
	t.InstanceEvents = append(t.InstanceEvents, ev)
}

// Usage stores the row.
func (t *MemTrace) Usage(rec UsageRecord) {
	t.UsageRecords = append(t.UsageRecords, rec)
}

// UsageBatch stores a whole block of rows with one append.
func (t *MemTrace) UsageBatch(recs []UsageRecord) {
	t.UsageRecords = append(t.UsageRecords, recs...)
}

// MachineEvent stores the row.
func (t *MemTrace) MachineEvent(ev MachineEvent) {
	t.MachineEvents = append(t.MachineEvents, ev)
}

// Collections returns the IDs of all collections seen, sorted.
func (t *MemTrace) Collections() []CollectionID {
	ids := make([]CollectionID, 0, len(t.collIndex))
	for id := range t.collIndex {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EventsOf returns the collection's events in emission order.
func (t *MemTrace) EventsOf(id CollectionID) []CollectionEvent {
	idxs := t.collIndex[id]
	out := make([]CollectionEvent, len(idxs))
	for i, idx := range idxs {
		out[i] = t.CollectionEvents[idx]
	}
	return out
}

// Instances returns all instance keys seen, sorted.
func (t *MemTrace) Instances() []InstanceKey {
	keys := make([]InstanceKey, 0, len(t.instIndex))
	for k := range t.instIndex {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Collection != keys[j].Collection {
			return keys[i].Collection < keys[j].Collection
		}
		return keys[i].Index < keys[j].Index
	})
	return keys
}

// InstanceEventsOf returns the instance's events in emission order.
func (t *MemTrace) InstanceEventsOf(k InstanceKey) []InstanceEvent {
	idxs := t.instIndex[k]
	out := make([]InstanceEvent, len(idxs))
	for i, idx := range idxs {
		out[i] = t.InstanceEvents[idx]
	}
	return out
}

// InstancesOfCollection returns the instance keys belonging to one
// collection, sorted by index.
func (t *MemTrace) InstancesOfCollection(id CollectionID) []InstanceKey {
	var keys []InstanceKey
	for k := range t.instIndex {
		if k.Collection == id {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Index < keys[j].Index })
	return keys
}

// CollectionInfo is the static view of one collection, reconstructed from
// its first event (the trace repeats static attributes on every row).
type CollectionInfo struct {
	ID             CollectionID
	CollectionType CollectionType
	Priority       int
	Tier           Tier
	User           string
	Parent         CollectionID
	AllocSet       CollectionID
	Scheduler      SchedulerKind
	Scaling        VerticalScaling

	SubmitTime sim.Time
	// FinalEvent is the last termination event observed, or EventSubmit
	// if the collection never terminated inside the trace window.
	FinalEvent EventType
	FinalTime  sim.Time
}

// CollectionInfos reconstructs the static attributes and outcome of every
// collection in the trace, sorted by ID.
func (t *MemTrace) CollectionInfos() []CollectionInfo {
	out := make([]CollectionInfo, 0, len(t.collIndex))
	for _, id := range t.Collections() {
		evs := t.EventsOf(id)
		first := evs[0]
		info := CollectionInfo{
			ID:             id,
			CollectionType: first.CollectionType,
			Priority:       first.Priority,
			Tier:           first.Tier,
			User:           first.User,
			Parent:         first.Parent,
			AllocSet:       first.AllocSet,
			Scheduler:      first.Scheduler,
			Scaling:        first.Scaling,
			SubmitTime:     first.Time,
			FinalEvent:     EventSubmit,
		}
		for _, ev := range evs {
			if ev.Type.IsTermination() {
				info.FinalEvent = ev.Type
				info.FinalTime = ev.Time
			}
		}
		out = append(out, info)
	}
	return out
}

// MachineCapacities returns each machine's final capacity and platform, as
// established by ADD/UPDATE machine events, excluding removed machines.
func (t *MemTrace) MachineCapacities() map[MachineID]MachineEvent {
	m := make(map[MachineID]MachineEvent)
	for _, ev := range t.MachineEvents {
		switch ev.Type {
		case MachineAdd, MachineUpdate:
			m[ev.Machine] = ev
		case MachineRemove:
			delete(m, ev.Machine)
		}
	}
	return m
}

// Counts summarizes row counts; used in logs and Table 1.
func (t *MemTrace) Counts() string {
	return fmt.Sprintf("collections=%d instances=%d collEvents=%d instEvents=%d usage=%d machineEvents=%d",
		len(t.collIndex), len(t.instIndex), len(t.CollectionEvents),
		len(t.InstanceEvents), len(t.UsageRecords), len(t.MachineEvents))
}
