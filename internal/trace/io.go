package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/sim"
)

// The on-disk layout mirrors the 2011 trace's CSV distribution (§3): one
// file per table plus a JSON metadata file.
const (
	metaFile             = "meta.json"
	collectionEventsFile = "collection_events.csv"
	instanceEventsFile   = "instance_events.csv"
	usageFile            = "instance_usage.csv"
	machineEventsFile    = "machine_events.csv"
)

// WriteDir writes the trace as CSV tables plus meta.json into dir,
// creating it if needed. It is the post-hoc counterpart of DirSink:
// replaying the retained tables through a sink produces the identical
// on-disk layout a streaming run would have written.
func WriteDir(t *MemTrace, dir string) error {
	s, err := NewDirSink(dir, t.Meta)
	if err != nil {
		return err
	}
	for _, ev := range t.CollectionEvents {
		s.CollectionEvent(ev)
	}
	for _, ev := range t.InstanceEvents {
		s.InstanceEvent(ev)
	}
	for _, rec := range t.UsageRecords {
		s.Usage(rec)
	}
	for _, ev := range t.MachineEvents {
		s.MachineEvent(ev)
	}
	return s.Close()
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
func itoa(i int64) string   { return strconv.FormatInt(i, 10) }
func utoa(u uint64) string  { return strconv.FormatUint(u, 10) }
func ts(t sim.Time) string  { return itoa(int64(t)) }

// Per-row CSV encoders, shared by WriteDir and DirSink.

func collectionEventHeader() []string {
	return []string{
		"time", "collection_id", "type", "collection_type", "priority",
		"tier", "user", "parent_collection_id", "alloc_collection_id",
		"scheduler", "vertical_scaling",
	}
}

func collectionEventRow(ev CollectionEvent) []string {
	return []string{
		ts(ev.Time), utoa(uint64(ev.Collection)), ev.Type.String(),
		ev.CollectionType.String(), itoa(int64(ev.Priority)),
		ev.Tier.String(), ev.User, utoa(uint64(ev.Parent)),
		utoa(uint64(ev.AllocSet)), ev.Scheduler.String(),
		ev.Scaling.String(),
	}
}

func instanceEventHeader() []string {
	return []string{
		"time", "collection_id", "instance_index", "type", "machine_id",
		"priority", "tier", "request_cpu", "request_mem",
		"alloc_collection_id", "alloc_instance_index",
	}
}

func instanceEventRow(ev InstanceEvent) []string {
	return []string{
		ts(ev.Time), utoa(uint64(ev.Key.Collection)),
		itoa(int64(ev.Key.Index)), ev.Type.String(),
		itoa(int64(ev.Machine)), itoa(int64(ev.Priority)),
		ev.Tier.String(), ftoa(ev.Request.CPU), ftoa(ev.Request.Mem),
		utoa(uint64(ev.AllocInstance.Collection)),
		itoa(int64(ev.AllocInstance.Index)),
	}
}

func usageHeader() []string {
	return []string{
		"start_time", "end_time", "collection_id", "instance_index",
		"machine_id", "tier", "avg_cpu", "avg_mem", "max_cpu", "max_mem",
		"limit_cpu", "limit_mem",
	}
}

func usageRow(rec UsageRecord) []string {
	return []string{
		ts(rec.Start), ts(rec.End), utoa(uint64(rec.Key.Collection)),
		itoa(int64(rec.Key.Index)), itoa(int64(rec.Machine)),
		rec.Tier.String(), ftoa(rec.AvgUsage.CPU), ftoa(rec.AvgUsage.Mem),
		ftoa(rec.MaxUsage.CPU), ftoa(rec.MaxUsage.Mem),
		ftoa(rec.Limit.CPU), ftoa(rec.Limit.Mem),
	}
}

func machineEventHeader() []string {
	return []string{
		"time", "machine_id", "type", "capacity_cpu", "capacity_mem", "platform",
	}
}

func machineEventRow(ev MachineEvent) []string {
	return []string{
		ts(ev.Time), itoa(int64(ev.Machine)), ev.Type.String(),
		ftoa(ev.Capacity.CPU), ftoa(ev.Capacity.Mem), ev.Platform,
	}
}

// tableWriter is one CSV table's open write path.
type tableWriter struct {
	file *os.File
	buf  *bufio.Writer
	csv  *csv.Writer
}

// DirSink streams trace rows to the same on-disk CSV layout WriteDir
// produces — one file per table plus meta.json — as the simulation emits
// them, so writing a trace needs no in-memory retention at all. Wrap it
// in a BufferedSink to amortize per-row dispatch on hot paths, and in a
// SyncSink if several concurrently simulated cells share one sink
// (per-cell shard directories avoid that need entirely).
//
// The Sink interface carries no error returns, so write errors are
// sticky: the first one is retained, subsequent rows are dropped, and
// Err/Close surface it.
type DirSink struct {
	dir    string
	tables [4]tableWriter // collection, instance, usage, machine
	err    error
	closed bool
}

// Table indexes into DirSink.tables.
const (
	tabCollection = iota
	tabInstance
	tabUsage
	tabMachine
)

// NewDirSink creates dir (if needed), writes meta.json and the four CSV
// headers, and returns a sink streaming rows into the table files.
func NewDirSink(dir string, meta Meta) (*DirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: create dir: %w", err)
	}
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("trace: marshal meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), metaBytes, 0o644); err != nil {
		return nil, fmt.Errorf("trace: write meta: %w", err)
	}
	s := &DirSink{dir: dir}
	specs := []struct {
		name   string
		header []string
	}{
		{collectionEventsFile, collectionEventHeader()},
		{instanceEventsFile, instanceEventHeader()},
		{usageFile, usageHeader()},
		{machineEventsFile, machineEventHeader()},
	}
	for i, spec := range specs {
		f, err := os.Create(filepath.Join(dir, spec.name))
		if err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("trace: create %s: %w", spec.name, err)
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		cw := csv.NewWriter(bw)
		s.tables[i] = tableWriter{file: f, buf: bw, csv: cw}
		if err := cw.Write(spec.header); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("trace: write %s header: %w", spec.name, err)
		}
	}
	return s, nil
}

func (s *DirSink) write(table int, row []string) {
	if s.err != nil || s.closed {
		return
	}
	if err := s.tables[table].csv.Write(row); err != nil {
		s.err = fmt.Errorf("trace: write %s: %w", s.dir, err)
	}
}

// CollectionEvent writes the row.
func (s *DirSink) CollectionEvent(ev CollectionEvent) { s.write(tabCollection, collectionEventRow(ev)) }

// InstanceEvent writes the row.
func (s *DirSink) InstanceEvent(ev InstanceEvent) { s.write(tabInstance, instanceEventRow(ev)) }

// Usage writes the row.
func (s *DirSink) Usage(rec UsageRecord) { s.write(tabUsage, usageRow(rec)) }

// UsageBatch writes the block in order through the codec path, checking
// the sticky error once instead of per row.
func (s *DirSink) UsageBatch(recs []UsageRecord) {
	if s.err != nil || s.closed {
		return
	}
	for i := range recs {
		s.write(tabUsage, usageRow(recs[i]))
	}
}

// MachineEvent writes the row.
func (s *DirSink) MachineEvent(ev MachineEvent) { s.write(tabMachine, machineEventRow(ev)) }

// Flush pushes buffered rows to the operating system. It is idempotent
// and safe to call mid-run (e.g. via trace.Flush on the pipeline).
func (s *DirSink) Flush() {
	if s.closed {
		return
	}
	for i := range s.tables {
		t := &s.tables[i]
		t.csv.Flush()
		if err := t.csv.Error(); err != nil && s.err == nil {
			s.err = fmt.Errorf("trace: flush %s: %w", s.dir, err)
		}
		if err := t.buf.Flush(); err != nil && s.err == nil {
			s.err = fmt.Errorf("trace: flush %s: %w", s.dir, err)
		}
	}
}

// Err returns the first write error, if any.
func (s *DirSink) Err() error { return s.err }

// Close flushes and closes the table files, returning the first error
// encountered over the sink's lifetime. Further rows are dropped.
func (s *DirSink) Close() error {
	if s.closed {
		return s.err
	}
	s.Flush()
	s.closed = true
	s.closeFiles()
	return s.err
}

func (s *DirSink) closeFiles() {
	for i := range s.tables {
		if f := s.tables[i].file; f != nil {
			if err := f.Close(); err != nil && s.err == nil {
				s.err = fmt.Errorf("trace: close %s: %w", s.dir, err)
			}
			s.tables[i].file = nil
		}
	}
}

// ReadDir loads a trace previously written by WriteDir. CPU histograms are
// not round-tripped (the CSV schema, like the 2011 trace, omits them).
func ReadDir(dir string) (*MemTrace, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("trace: read meta: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("trace: parse meta: %w", err)
	}
	t := NewMemTrace(meta)
	if err := readCSVFile(filepath.Join(dir, collectionEventsFile), t.readCollectionEvent); err != nil {
		return nil, err
	}
	if err := readCSVFile(filepath.Join(dir, instanceEventsFile), t.readInstanceEvent); err != nil {
		return nil, err
	}
	if err := readCSVFile(filepath.Join(dir, usageFile), t.readUsage); err != nil {
		return nil, err
	}
	if err := readCSVFile(filepath.Join(dir, machineEventsFile), t.readMachineEvent); err != nil {
		return nil, err
	}
	return t, nil
}

func readCSVFile(path string, row func(rec []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("trace: open %s: %w", path, err)
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReaderSize(f, 1<<20))
	r.ReuseRecord = true
	first := true
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("trace: read %s: %w", path, err)
		}
		if first {
			first = false // skip header
			continue
		}
		if err := row(rec); err != nil {
			return fmt.Errorf("trace: parse %s: %w", path, err)
		}
	}
}

// fieldParser accumulates the first parse error across a row, so row
// readers stay linear instead of nesting a dozen error checks.
type fieldParser struct{ err error }

func (p *fieldParser) int(s string) int64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		p.err = err
	}
	return v
}

func (p *fieldParser) uint(s string) uint64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		p.err = err
	}
	return v
}

func (p *fieldParser) float(s string) float64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		p.err = err
	}
	return v
}

func (p *fieldParser) event(s string) EventType {
	if p.err != nil {
		return 0
	}
	v, err := ParseEventType(s)
	if err != nil {
		p.err = err
	}
	return v
}

func parseTier(s string) (Tier, error) {
	for _, tier := range Tiers() {
		if tier.String() == s {
			return tier, nil
		}
	}
	return 0, fmt.Errorf("unknown tier %q", s)
}

func (p *fieldParser) tier(s string) Tier {
	if p.err != nil {
		return 0
	}
	v, err := parseTier(s)
	if err != nil {
		p.err = err
	}
	return v
}

func parseCollectionType(s string) (CollectionType, error) {
	switch s {
	case "job":
		return CollectionJob, nil
	case "alloc_set":
		return CollectionAllocSet, nil
	}
	return 0, fmt.Errorf("unknown collection type %q", s)
}

func parseScheduler(s string) (SchedulerKind, error) {
	switch s {
	case "default":
		return SchedulerDefault, nil
	case "batch":
		return SchedulerBatch, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q", s)
}

func parseScaling(s string) (VerticalScaling, error) {
	switch s {
	case "none":
		return ScalingNone, nil
	case "constrained":
		return ScalingConstrained, nil
	case "full":
		return ScalingFull, nil
	}
	return 0, fmt.Errorf("unknown scaling %q", s)
}

func parseMachineEventType(s string) (MachineEventType, error) {
	switch s {
	case "ADD":
		return MachineAdd, nil
	case "REMOVE":
		return MachineRemove, nil
	case "UPDATE":
		return MachineUpdate, nil
	}
	return 0, fmt.Errorf("unknown machine event %q", s)
}

func (t *MemTrace) readCollectionEvent(rec []string) error {
	if len(rec) != 11 {
		return fmt.Errorf("collection event row has %d fields", len(rec))
	}
	var p fieldParser
	ev := CollectionEvent{
		Time:       sim.Time(p.int(rec[0])),
		Collection: CollectionID(p.uint(rec[1])),
		Type:       p.event(rec[2]),
		Priority:   int(p.int(rec[4])),
		Tier:       p.tier(rec[5]),
		User:       rec[6],
		Parent:     CollectionID(p.uint(rec[7])),
		AllocSet:   CollectionID(p.uint(rec[8])),
	}
	ct, err := parseCollectionType(rec[3])
	if err != nil {
		return err
	}
	ev.CollectionType = ct
	sched, err := parseScheduler(rec[9])
	if err != nil {
		return err
	}
	ev.Scheduler = sched
	scal, err := parseScaling(rec[10])
	if err != nil {
		return err
	}
	ev.Scaling = scal
	if p.err != nil {
		return p.err
	}
	t.CollectionEvent(ev)
	return nil
}

func (t *MemTrace) readInstanceEvent(rec []string) error {
	if len(rec) != 11 {
		return fmt.Errorf("instance event row has %d fields", len(rec))
	}
	var p fieldParser
	ev := InstanceEvent{
		Time: sim.Time(p.int(rec[0])),
		Key: InstanceKey{
			Collection: CollectionID(p.uint(rec[1])),
			Index:      int32(p.int(rec[2])),
		},
		Type:     p.event(rec[3]),
		Machine:  MachineID(p.int(rec[4])),
		Priority: int(p.int(rec[5])),
		Tier:     p.tier(rec[6]),
		Request:  Resources{CPU: p.float(rec[7]), Mem: p.float(rec[8])},
		AllocInstance: InstanceKey{
			Collection: CollectionID(p.uint(rec[9])),
			Index:      int32(p.int(rec[10])),
		},
	}
	if p.err != nil {
		return p.err
	}
	t.InstanceEvent(ev)
	return nil
}

func (t *MemTrace) readUsage(rec []string) error {
	if len(rec) != 12 {
		return fmt.Errorf("usage row has %d fields", len(rec))
	}
	var p fieldParser
	u := UsageRecord{
		Start: sim.Time(p.int(rec[0])),
		End:   sim.Time(p.int(rec[1])),
		Key: InstanceKey{
			Collection: CollectionID(p.uint(rec[2])),
			Index:      int32(p.int(rec[3])),
		},
		Machine:  MachineID(p.int(rec[4])),
		Tier:     p.tier(rec[5]),
		AvgUsage: Resources{CPU: p.float(rec[6]), Mem: p.float(rec[7])},
		MaxUsage: Resources{CPU: p.float(rec[8]), Mem: p.float(rec[9])},
		Limit:    Resources{CPU: p.float(rec[10]), Mem: p.float(rec[11])},
	}
	if p.err != nil {
		return p.err
	}
	t.Usage(u)
	return nil
}

func (t *MemTrace) readMachineEvent(rec []string) error {
	if len(rec) != 6 {
		return fmt.Errorf("machine event row has %d fields", len(rec))
	}
	var p fieldParser
	ev := MachineEvent{
		Time:     sim.Time(p.int(rec[0])),
		Machine:  MachineID(p.int(rec[1])),
		Capacity: Resources{CPU: p.float(rec[3]), Mem: p.float(rec[4])},
		Platform: rec[5],
	}
	met, err := parseMachineEventType(rec[2])
	if err != nil {
		return err
	}
	ev.Type = met
	if p.err != nil {
		return p.err
	}
	t.MachineEvent(ev)
	return nil
}
