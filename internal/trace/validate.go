package trace

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Violation is one failed invariant, with enough context to debug it.
// The paper's trace-generation pipeline checks "a raft of logical
// invariants" (§9); this validator reproduces that practice for the
// synthetic traces.
type Violation struct {
	Invariant string
	Detail    string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Invariant, v.Detail)
}

// ValidateOptions tunes validation strictness.
type ValidateOptions struct {
	// MaxViolations stops validation after this many findings
	// (0 = unlimited). Large traces with a systemic bug would otherwise
	// produce millions of identical rows.
	MaxViolations int

	// CPUOvercommitTolerance is how much the sum of *usage* on a machine
	// may exceed CPU capacity before it is flagged. CPU is work
	// conserving (§2), so transient usage above capacity is legal;
	// memory is a hard bound.
	CPUOvercommitTolerance float64
}

// DefaultValidateOptions mirrors the paper's model: memory hard-capped,
// CPU allowed 0% above capacity at the usage level (the machine cannot
// physically exceed its capacity; per-task usage may exceed per-task limit).
func DefaultValidateOptions() ValidateOptions {
	return ValidateOptions{MaxViolations: 100, CPUOvercommitTolerance: 1e-9}
}

// Validate checks the §9-style invariants over a stored trace and returns
// all violations found (bounded by opts.MaxViolations):
//
//  1. A SUBMIT precedes any termination event, per collection and instance.
//  2. At most one terminal state is "open" at a time: termination events
//     must be separated by a re-SUBMIT (instances may restart).
//  3. Event times are non-decreasing per collection/instance.
//  4. Every SCHEDULE names a machine that has been added (and not removed).
//  5. Instance events reference collections that have events.
//  6. Usage windows are well-formed (Start < End) and usage is
//     non-negative; average <= max.
//  7. Per-machine, per-window summed usage does not exceed capacity
//     (hard for memory, tolerance for CPU).
//  8. A child collection does not outlive its parent's termination by
//     more than a grace window (parent exit kills children, §5.2).
func Validate(t *MemTrace, opts ValidateOptions) []Violation {
	var out []Violation
	add := func(invariant, format string, args ...any) bool {
		out = append(out, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
		return opts.MaxViolations > 0 && len(out) >= opts.MaxViolations
	}

	// Machine liveness intervals.
	type interval struct{ add, remove sim.Time }
	machines := make(map[MachineID]*interval)
	for _, ev := range t.MachineEvents {
		switch ev.Type {
		case MachineAdd:
			machines[ev.Machine] = &interval{add: ev.Time, remove: -1}
		case MachineRemove:
			if iv, ok := machines[ev.Machine]; ok {
				iv.remove = ev.Time
			}
		}
	}
	capacity := make(map[MachineID]Resources)
	for _, ev := range t.MachineEvents {
		if ev.Type == MachineAdd || ev.Type == MachineUpdate {
			capacity[ev.Machine] = ev.Capacity
		}
	}

	// Collection-level checks.
	collTerm := make(map[CollectionID]sim.Time)
	for _, id := range t.Collections() {
		evs := t.EventsOf(id)
		var last sim.Time = -1
		seenSubmit := false
		openTermination := false
		for _, ev := range evs {
			if ev.Time < last {
				if add("coll-time-order", "collection %d: %s at %v after %v", id, ev.Type, ev.Time, last) {
					return out
				}
			}
			last = ev.Time
			switch {
			case ev.Type == EventSubmit:
				seenSubmit = true
				openTermination = false
			case ev.Type.IsTermination():
				if !seenSubmit {
					if add("submit-before-termination", "collection %d: %s at %v before any SUBMIT", id, ev.Type, ev.Time) {
						return out
					}
				}
				if openTermination {
					if add("double-termination", "collection %d: %s at %v after prior termination", id, ev.Type, ev.Time) {
						return out
					}
				}
				openTermination = true
				collTerm[id] = ev.Time
			}
		}
	}

	// Parent/child causality: children must terminate within the grace
	// window after the parent's termination.
	const parentKillGrace = 5 * sim.Minute
	infos := t.CollectionInfos()
	infoByID := make(map[CollectionID]CollectionInfo, len(infos))
	for _, info := range infos {
		infoByID[info.ID] = info
	}
	for _, info := range infos {
		if info.Parent == 0 {
			continue
		}
		pterm, ok := collTerm[info.Parent]
		if !ok {
			continue // parent still running at trace end
		}
		cterm, terminated := collTerm[info.ID]
		if !terminated {
			if add("parent-kill", "collection %d still open after parent %d terminated at %v", info.ID, info.Parent, pterm) {
				return out
			}
			continue
		}
		// A child submitted after its parent's exit is killed on arrival,
		// so the grace window runs from whichever came last.
		deadline := pterm
		if info.SubmitTime > deadline {
			deadline = info.SubmitTime
		}
		if cterm > deadline+parentKillGrace {
			if add("parent-kill", "collection %d terminated at %v, > grace after parent %d at %v", info.ID, cterm, info.Parent, pterm) {
				return out
			}
		}
	}
	_ = infoByID

	// Instance-level checks.
	for _, key := range t.Instances() {
		evs := t.InstanceEventsOf(key)
		var last sim.Time = -1
		seenSubmit := false
		running := false
		terminated := false
		for _, ev := range evs {
			if ev.Time < last {
				if add("inst-time-order", "instance %s: %s at %v after %v", key, ev.Type, ev.Time, last) {
					return out
				}
			}
			last = ev.Time
			switch {
			case ev.Type == EventSubmit:
				seenSubmit = true
				terminated = false
			case ev.Type == EventSchedule:
				if !seenSubmit {
					if add("schedule-before-submit", "instance %s scheduled at %v before SUBMIT", key, ev.Time) {
						return out
					}
				}
				if ev.Machine == 0 {
					if add("schedule-machine", "instance %s scheduled at %v with no machine", key, ev.Time) {
						return out
					}
				} else if iv, ok := machines[ev.Machine]; !ok {
					if add("schedule-machine", "instance %s scheduled on unknown machine %d", key, ev.Machine) {
						return out
					}
				} else if ev.Time < iv.add || (iv.remove >= 0 && ev.Time > iv.remove) {
					if add("schedule-machine", "instance %s scheduled on machine %d outside its lifetime", key, ev.Machine) {
						return out
					}
				}
				running = true
			case ev.Type.IsTermination():
				if terminated {
					if add("double-termination", "instance %s: %s at %v after prior termination", key, ev.Type, ev.Time) {
						return out
					}
				}
				terminated = true
				running = false
			}
		}
		_ = running
		if _, ok := t.collIndex[key.Collection]; !ok {
			if add("orphan-instance", "instance %s references collection with no events", key) {
				return out
			}
		}
	}

	// Usage-record checks, plus per-machine-window capacity accounting.
	type windowKey struct {
		machine MachineID
		start   sim.Time
	}
	usageSum := make(map[windowKey]Resources)
	for i, rec := range t.UsageRecords {
		if rec.End <= rec.Start {
			if add("usage-window", "usage[%d] %s window [%v,%v) is empty or inverted", i, rec.Key, rec.Start, rec.End) {
				return out
			}
		}
		if !rec.AvgUsage.NonNegative() || !rec.MaxUsage.NonNegative() {
			if add("usage-negative", "usage[%d] %s has negative usage", i, rec.Key) {
				return out
			}
		}
		if rec.AvgUsage.CPU > rec.MaxUsage.CPU+1e-9 || rec.AvgUsage.Mem > rec.MaxUsage.Mem+1e-9 {
			if add("usage-avg-max", "usage[%d] %s average exceeds max", i, rec.Key) {
				return out
			}
		}
		if rec.Machine != 0 && rec.End > rec.Start {
			// Time-weighted accounting: a record contributes its average
			// usage scaled by its overlap with each 5-minute window, so
			// partial-window records from short tasks are weighed by
			// how long they actually occupied the machine.
			firstW := rec.Start / sim.SampleWindow
			lastW := (rec.End - 1) / sim.SampleWindow
			for w := firstW; w <= lastW; w++ {
				wStart := w * sim.SampleWindow
				wEnd := wStart + sim.SampleWindow
				lo, hi := rec.Start, rec.End
				if wStart > lo {
					lo = wStart
				}
				if wEnd < hi {
					hi = wEnd
				}
				frac := float64(hi-lo) / float64(sim.SampleWindow)
				k := windowKey{machine: rec.Machine, start: wStart}
				usageSum[k] = usageSum[k].Add(rec.AvgUsage.Scale(frac))
			}
		}
	}
	keys := make([]windowKey, 0, len(usageSum))
	for k := range usageSum {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].machine != keys[j].machine {
			return keys[i].machine < keys[j].machine
		}
		return keys[i].start < keys[j].start
	})
	for _, k := range keys {
		sum := usageSum[k]
		cap, ok := capacity[k.machine]
		if !ok {
			if add("usage-machine", "usage on machine %d with no capacity record", k.machine) {
				return out
			}
			continue
		}
		if sum.Mem > cap.Mem+1e-9 {
			if add("machine-mem-capacity", "machine %d window %v: summed mem usage %.4f > capacity %.4f",
				k.machine, k.start, sum.Mem, cap.Mem) {
				return out
			}
		}
		if sum.CPU > cap.CPU+opts.CPUOvercommitTolerance {
			if add("machine-cpu-capacity", "machine %d window %v: summed cpu usage %.4f > capacity %.4f",
				k.machine, k.start, sum.CPU, cap.CPU) {
				return out
			}
		}
	}

	return out
}
