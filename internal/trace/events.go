package trace

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// EventType is a collection/instance life-cycle transition (§5.2/§5.3).
type EventType int

// Event types. SUBMIT..SCHEDULE are the forward path; EVICT..LOST are
// terminations; the UPDATE events record in-place limit changes (used by
// Autopilot).
const (
	EventSubmit        EventType = iota // submitted by a user (or re-queued after eviction)
	EventQueue                          // held by the batch scheduler's queue
	EventEnable                         // "ready": eligible for placement
	EventSchedule                       // placed on a machine (task begins running)
	EventEvict                          // de-scheduled by the infrastructure
	EventFail                           // terminated by the task's own problem
	EventFinish                         // completed normally
	EventKill                           // canceled by the user or a parent's exit
	EventLost                           // record lost; terminal with unknown cause
	EventUpdatePending                  // limits changed while pending
	EventUpdateRunning                  // limits changed while running

	NumEventTypes
)

// String returns the trace-style upper-case event name.
func (e EventType) String() string {
	switch e {
	case EventSubmit:
		return "SUBMIT"
	case EventQueue:
		return "QUEUE"
	case EventEnable:
		return "ENABLE"
	case EventSchedule:
		return "SCHEDULE"
	case EventEvict:
		return "EVICT"
	case EventFail:
		return "FAIL"
	case EventFinish:
		return "FINISH"
	case EventKill:
		return "KILL"
	case EventLost:
		return "LOST"
	case EventUpdatePending:
		return "UPDATE_PENDING"
	case EventUpdateRunning:
		return "UPDATE_RUNNING"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// IsTermination reports whether the event ends a collection or instance
// (the four termination causes of §5.2, plus LOST).
func (e EventType) IsTermination() bool {
	switch e {
	case EventEvict, EventFail, EventFinish, EventKill, EventLost:
		return true
	default:
		return false
	}
}

// ParseEventType inverts String. It returns an error for unknown names.
func ParseEventType(s string) (EventType, error) {
	for e := EventType(0); e < NumEventTypes; e++ {
		if e.String() == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event type %q", s)
}

// CollectionEvent is one row of the collection_events table.
type CollectionEvent struct {
	Time       sim.Time
	Collection CollectionID
	Type       EventType

	// Static attributes, repeated on each event row as in the trace.
	CollectionType CollectionType
	Priority       int
	Tier           Tier
	User           string
	Parent         CollectionID    // 0 = no parent (job dependencies, §5.2)
	AllocSet       CollectionID    // 0 = not in an alloc set (for jobs)
	Scheduler      SchedulerKind   // which scheduler owns the job
	Scaling        VerticalScaling // Autopilot mode (§8)
}

// InstanceKey identifies an instance (task or alloc instance) within a
// trace: the owning collection plus the instance index.
type InstanceKey struct {
	Collection CollectionID
	Index      int32
}

// String renders collection/index.
func (k InstanceKey) String() string {
	return fmt.Sprintf("%d/%d", k.Collection, k.Index)
}

// InstanceEvent is one row of the instance_events table.
type InstanceEvent struct {
	Time sim.Time
	Key  InstanceKey
	Type EventType

	Machine  MachineID // machine placed on (SCHEDULE and later events)
	Priority int
	Tier     Tier

	// Request is the resource limit at the time of the event. UPDATE
	// events carry the new limit.
	Request Resources

	// AllocInstance is the alloc instance hosting this task, when the
	// owning job runs inside an alloc set.
	AllocInstance InstanceKey
}

// UsageRecord is one row of the instance_usage table: one instance's
// resource consumption within a 5-minute sampling window.
type UsageRecord struct {
	Start   sim.Time
	End     sim.Time
	Key     InstanceKey
	Machine MachineID
	Tier    Tier

	AvgUsage Resources // mean usage over the window
	MaxUsage Resources // peak usage over the window
	Limit    Resources // limit in force during the window

	// CPUHistogram is the 21-bucket histogram of CPU utilization samples
	// within the window (§3). Nil when histogram collection is disabled.
	CPUHistogram *stats.UsageHistogram
}

// MachineEventType is the machine_events table's event kind.
type MachineEventType int

// Machine event kinds.
const (
	MachineAdd    MachineEventType = iota // machine joined the cell
	MachineRemove                         // machine left (failure or decommission)
	MachineUpdate                         // capacity changed
)

// String names the machine event.
func (m MachineEventType) String() string {
	switch m {
	case MachineAdd:
		return "ADD"
	case MachineRemove:
		return "REMOVE"
	case MachineUpdate:
		return "UPDATE"
	default:
		return fmt.Sprintf("MachineEventType(%d)", int(m))
	}
}

// MachineEvent is one row of the machine_events table.
type MachineEvent struct {
	Time     sim.Time
	Machine  MachineID
	Type     MachineEventType
	Capacity Resources
	Platform string // hardware platform identifier
}

// Sink receives trace rows as the simulator emits them. Implementations
// must not retain argument pointers beyond the call unless documented
// (MemTrace copies what it needs).
type Sink interface {
	CollectionEvent(ev CollectionEvent)
	InstanceEvent(ev InstanceEvent)
	Usage(rec UsageRecord)
	MachineEvent(ev MachineEvent)
}

// MultiSink fans out each row to every child sink in order.
type MultiSink []Sink

// CollectionEvent forwards to all children.
func (m MultiSink) CollectionEvent(ev CollectionEvent) {
	for _, s := range m {
		s.CollectionEvent(ev)
	}
}

// InstanceEvent forwards to all children.
func (m MultiSink) InstanceEvent(ev InstanceEvent) {
	for _, s := range m {
		s.InstanceEvent(ev)
	}
}

// Usage forwards to all children.
func (m MultiSink) Usage(rec UsageRecord) {
	for _, s := range m {
		s.Usage(rec)
	}
}

// UsageBatch forwards the block to all children: one call for children
// that batch, record by record for the rest.
func (m MultiSink) UsageBatch(recs []UsageRecord) {
	for _, s := range m {
		EmitUsageBatch(s, recs)
	}
}

// MachineEvent forwards to all children.
func (m MultiSink) MachineEvent(ev MachineEvent) {
	for _, s := range m {
		s.MachineEvent(ev)
	}
}

// NopSink discards everything; useful as a default and in benchmarks.
type NopSink struct{}

// CollectionEvent discards the row.
func (NopSink) CollectionEvent(CollectionEvent) {}

// InstanceEvent discards the row.
func (NopSink) InstanceEvent(InstanceEvent) {}

// Usage discards the row.
func (NopSink) Usage(UsageRecord) {}

// UsageBatch discards the block.
func (NopSink) UsageBatch([]UsageRecord) {}

// MachineEvent discards the row.
func (NopSink) MachineEvent(MachineEvent) {}
