package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestTierFromPriority2019(t *testing.T) {
	cases := []struct {
		priority int
		want     Tier
	}{
		{0, TierFree}, {99, TierFree},
		{110, TierBestEffortBatch}, {115, TierBestEffortBatch},
		{116, TierMid}, {119, TierMid},
		{120, TierProduction}, {200, TierProduction}, {359, TierProduction},
		{360, TierProduction}, {450, TierProduction}, // monitoring folded into prod
	}
	for _, c := range cases {
		if got := TierFromPriority2019(c.priority); got != c.want {
			t.Errorf("TierFromPriority2019(%d) = %v, want %v", c.priority, got, c.want)
		}
	}
}

func TestTierFromPriority2011(t *testing.T) {
	cases := []struct {
		band int
		want Tier
	}{
		{0, TierFree}, {1, TierFree},
		{2, TierBestEffortBatch}, {8, TierBestEffortBatch},
		{9, TierProduction}, {10, TierProduction}, {11, TierProduction},
	}
	for _, c := range cases {
		if got := TierFromPriority2011(c.band); got != c.want {
			t.Errorf("TierFromPriority2011(%d) = %v, want %v", c.band, got, c.want)
		}
	}
}

func TestPriorityBandCorrespondence(t *testing.T) {
	// The 2011 band i corresponds to raw priority Priority2019Values[i];
	// both mappings must agree on the tier except for the mid tier (which
	// did not exist in 2011) and for priority 119, which is documented as
	// band 8 (beb) in 2011 but mid in 2019.
	for band, raw := range Priority2019Values {
		t2011 := TierFromPriority2011(band)
		t2019 := TierFromPriority2019(raw)
		if raw == 119 {
			continue // tier added between the traces
		}
		if t2011 != t2019 {
			t.Errorf("band %d (raw %d): 2011 tier %v != 2019 tier %v", band, raw, t2011, t2019)
		}
	}
}

func TestStringers(t *testing.T) {
	if TierFree.String() != "free" || TierProduction.String() != "prod" {
		t.Fatal("tier strings")
	}
	if Era2011.String() != "2011" || Era2019.String() != "2019" {
		t.Fatal("era strings")
	}
	if CollectionJob.String() != "job" || CollectionAllocSet.String() != "alloc_set" {
		t.Fatal("collection type strings")
	}
	if ScalingFull.String() != "full" || ScalingNone.String() != "none" {
		t.Fatal("scaling strings")
	}
	if SchedulerBatch.String() != "batch" {
		t.Fatal("scheduler strings")
	}
	if MachineAdd.String() != "ADD" {
		t.Fatal("machine event strings")
	}
	if (InstanceKey{Collection: 3, Index: 7}).String() != "3/7" {
		t.Fatal("instance key string")
	}
}

func TestEventTypeRoundTrip(t *testing.T) {
	for e := EventType(0); e < NumEventTypes; e++ {
		got, err := ParseEventType(e.String())
		if err != nil || got != e {
			t.Fatalf("round trip %v: got %v err %v", e, got, err)
		}
	}
	if _, err := ParseEventType("NOPE"); err == nil {
		t.Fatal("unknown event type parsed")
	}
}

func TestIsTermination(t *testing.T) {
	term := map[EventType]bool{
		EventEvict: true, EventFail: true, EventFinish: true,
		EventKill: true, EventLost: true,
	}
	for e := EventType(0); e < NumEventTypes; e++ {
		if got := e.IsTermination(); got != term[e] {
			t.Errorf("%v.IsTermination() = %v", e, got)
		}
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPU: 1, Mem: 2}
	b := Resources{CPU: 0.5, Mem: 0.5}
	if got := a.Add(b); got != (Resources{CPU: 1.5, Mem: 2.5}) {
		t.Fatalf("add %v", got)
	}
	if got := a.Sub(b); got != (Resources{CPU: 0.5, Mem: 1.5}) {
		t.Fatalf("sub %v", got)
	}
	if got := a.Scale(2); got != (Resources{CPU: 2, Mem: 4}) {
		t.Fatalf("scale %v", got)
	}
	if !b.FitsIn(a) || a.FitsIn(b) {
		t.Fatal("fits")
	}
	if !a.NonNegative() || (Resources{CPU: -1}).NonNegative() {
		t.Fatal("non-negative")
	}
}

// Property: FitsIn is monotone — if r fits in c, a smaller r' also fits.
func TestFitsInMonotoneProperty(t *testing.T) {
	f := func(c1, c2, m1, m2 uint8) bool {
		r := Resources{CPU: float64(c1) / 255, Mem: float64(m1) / 255}
		c := Resources{CPU: float64(c2) / 255, Mem: float64(m2) / 255}
		if !r.FitsIn(c) {
			return true
		}
		smaller := r.Scale(0.5)
		return smaller.FitsIn(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func newTestTrace() *MemTrace {
	tr := NewMemTrace(Meta{Era: Era2019, Cell: "a", Duration: sim.Day, Machines: 2, Seed: 1})
	tr.MachineEvent(MachineEvent{Time: 0, Machine: 1, Type: MachineAdd, Capacity: Resources{CPU: 1, Mem: 1}, Platform: "P0"})
	tr.MachineEvent(MachineEvent{Time: 0, Machine: 2, Type: MachineAdd, Capacity: Resources{CPU: 0.5, Mem: 0.5}, Platform: "P1"})

	// Collection 10: a normal job with 1 task that finishes.
	tr.CollectionEvent(CollectionEvent{Time: 100, Collection: 10, Type: EventSubmit, CollectionType: CollectionJob, Priority: 120, Tier: TierProduction, User: "u1", Scheduler: SchedulerDefault})
	tr.InstanceEvent(InstanceEvent{Time: 100, Key: InstanceKey{10, 0}, Type: EventSubmit, Priority: 120, Tier: TierProduction, Request: Resources{CPU: 0.1, Mem: 0.1}})
	tr.InstanceEvent(InstanceEvent{Time: 150, Key: InstanceKey{10, 0}, Type: EventSchedule, Machine: 1, Priority: 120, Tier: TierProduction, Request: Resources{CPU: 0.1, Mem: 0.1}})
	tr.Usage(UsageRecord{Start: 0, End: sim.Time(300 * sim.Second), Key: InstanceKey{10, 0}, Machine: 1, Tier: TierProduction,
		AvgUsage: Resources{CPU: 0.05, Mem: 0.08}, MaxUsage: Resources{CPU: 0.09, Mem: 0.09}, Limit: Resources{CPU: 0.1, Mem: 0.1}})
	tr.InstanceEvent(InstanceEvent{Time: sim.Time(time600()), Key: InstanceKey{10, 0}, Type: EventFinish, Machine: 1, Priority: 120, Tier: TierProduction, Request: Resources{CPU: 0.1, Mem: 0.1}})
	tr.CollectionEvent(CollectionEvent{Time: sim.Time(time600()), Collection: 10, Type: EventFinish, CollectionType: CollectionJob, Priority: 120, Tier: TierProduction, User: "u1"})

	// Collection 11: a child job killed when its parent (10) finished.
	tr.CollectionEvent(CollectionEvent{Time: 200, Collection: 11, Type: EventSubmit, CollectionType: CollectionJob, Priority: 110, Tier: TierBestEffortBatch, User: "u1", Parent: 10, Scheduler: SchedulerBatch})
	tr.CollectionEvent(CollectionEvent{Time: sim.Time(time600()) + 10, Collection: 11, Type: EventKill, CollectionType: CollectionJob, Priority: 110, Tier: TierBestEffortBatch, User: "u1", Parent: 10})
	return tr
}

func time600() int64 { return int64(600 * sim.Second) }

func TestMemTraceIndexes(t *testing.T) {
	tr := newTestTrace()
	colls := tr.Collections()
	if len(colls) != 2 || colls[0] != 10 || colls[1] != 11 {
		t.Fatalf("collections %v", colls)
	}
	if evs := tr.EventsOf(10); len(evs) != 2 || evs[0].Type != EventSubmit || evs[1].Type != EventFinish {
		t.Fatalf("events of 10: %v", evs)
	}
	insts := tr.Instances()
	if len(insts) != 1 || insts[0] != (InstanceKey{10, 0}) {
		t.Fatalf("instances %v", insts)
	}
	if evs := tr.InstanceEventsOf(InstanceKey{10, 0}); len(evs) != 3 {
		t.Fatalf("instance events %v", evs)
	}
	if keys := tr.InstancesOfCollection(10); len(keys) != 1 {
		t.Fatalf("instances of collection %v", keys)
	}
	if tr.Counts() == "" {
		t.Fatal("counts")
	}
}

func TestCollectionInfos(t *testing.T) {
	tr := newTestTrace()
	infos := tr.CollectionInfos()
	if len(infos) != 2 {
		t.Fatalf("infos %v", infos)
	}
	if infos[0].ID != 10 || infos[0].FinalEvent != EventFinish || infos[0].Tier != TierProduction {
		t.Fatalf("info[0] %+v", infos[0])
	}
	if infos[1].Parent != 10 || infos[1].FinalEvent != EventKill || infos[1].Scheduler != SchedulerBatch {
		t.Fatalf("info[1] %+v", infos[1])
	}
}

func TestMachineCapacities(t *testing.T) {
	tr := newTestTrace()
	caps := tr.MachineCapacities()
	if len(caps) != 2 {
		t.Fatalf("capacities %v", caps)
	}
	tr.MachineEvent(MachineEvent{Time: 500, Machine: 2, Type: MachineRemove})
	caps = tr.MachineCapacities()
	if len(caps) != 1 {
		t.Fatalf("after remove %v", caps)
	}
}

func TestValidateCleanTrace(t *testing.T) {
	tr := newTestTrace()
	if v := Validate(tr, DefaultValidateOptions()); len(v) != 0 {
		t.Fatalf("violations on clean trace: %v", v)
	}
}

func TestValidateCatchesTerminationBeforeSubmit(t *testing.T) {
	tr := NewMemTrace(Meta{})
	tr.CollectionEvent(CollectionEvent{Time: 5, Collection: 1, Type: EventFinish, CollectionType: CollectionJob})
	v := Validate(tr, DefaultValidateOptions())
	if len(v) == 0 || v[0].Invariant != "submit-before-termination" {
		t.Fatalf("violations %v", v)
	}
	if v[0].String() == "" {
		t.Fatal("violation string")
	}
}

func TestValidateCatchesDoubleTermination(t *testing.T) {
	tr := NewMemTrace(Meta{})
	tr.CollectionEvent(CollectionEvent{Time: 1, Collection: 1, Type: EventSubmit})
	tr.CollectionEvent(CollectionEvent{Time: 2, Collection: 1, Type: EventFinish})
	tr.CollectionEvent(CollectionEvent{Time: 3, Collection: 1, Type: EventKill})
	found := false
	for _, v := range Validate(tr, DefaultValidateOptions()) {
		if v.Invariant == "double-termination" {
			found = true
		}
	}
	if !found {
		t.Fatal("double termination not caught")
	}
}

func TestValidateAllowsResubmitAfterEvict(t *testing.T) {
	tr := NewMemTrace(Meta{})
	tr.MachineEvent(MachineEvent{Time: 0, Machine: 1, Type: MachineAdd, Capacity: Resources{CPU: 1, Mem: 1}})
	tr.CollectionEvent(CollectionEvent{Time: 1, Collection: 1, Type: EventSubmit})
	tr.InstanceEvent(InstanceEvent{Time: 1, Key: InstanceKey{1, 0}, Type: EventSubmit})
	tr.InstanceEvent(InstanceEvent{Time: 2, Key: InstanceKey{1, 0}, Type: EventSchedule, Machine: 1})
	tr.InstanceEvent(InstanceEvent{Time: 3, Key: InstanceKey{1, 0}, Type: EventEvict, Machine: 1})
	tr.InstanceEvent(InstanceEvent{Time: 4, Key: InstanceKey{1, 0}, Type: EventSubmit})
	tr.InstanceEvent(InstanceEvent{Time: 5, Key: InstanceKey{1, 0}, Type: EventSchedule, Machine: 1})
	tr.InstanceEvent(InstanceEvent{Time: 6, Key: InstanceKey{1, 0}, Type: EventFinish, Machine: 1})
	tr.CollectionEvent(CollectionEvent{Time: 6, Collection: 1, Type: EventFinish})
	if v := Validate(tr, DefaultValidateOptions()); len(v) != 0 {
		t.Fatalf("evict-resubmit flagged: %v", v)
	}
}

func TestValidateCatchesUnknownMachine(t *testing.T) {
	tr := NewMemTrace(Meta{})
	tr.CollectionEvent(CollectionEvent{Time: 1, Collection: 1, Type: EventSubmit})
	tr.InstanceEvent(InstanceEvent{Time: 1, Key: InstanceKey{1, 0}, Type: EventSubmit})
	tr.InstanceEvent(InstanceEvent{Time: 2, Key: InstanceKey{1, 0}, Type: EventSchedule, Machine: 99})
	found := false
	for _, v := range Validate(tr, DefaultValidateOptions()) {
		if v.Invariant == "schedule-machine" {
			found = true
		}
	}
	if !found {
		t.Fatal("unknown machine not caught")
	}
}

func TestValidateCatchesTimeDisorder(t *testing.T) {
	tr := NewMemTrace(Meta{})
	tr.CollectionEvent(CollectionEvent{Time: 10, Collection: 1, Type: EventSubmit})
	tr.CollectionEvent(CollectionEvent{Time: 5, Collection: 1, Type: EventFinish})
	found := false
	for _, v := range Validate(tr, DefaultValidateOptions()) {
		if v.Invariant == "coll-time-order" {
			found = true
		}
	}
	if !found {
		t.Fatal("time disorder not caught")
	}
}

func TestValidateCatchesMemoryOverCapacity(t *testing.T) {
	tr := NewMemTrace(Meta{})
	tr.MachineEvent(MachineEvent{Time: 0, Machine: 1, Type: MachineAdd, Capacity: Resources{CPU: 1, Mem: 0.5}})
	tr.CollectionEvent(CollectionEvent{Time: 0, Collection: 1, Type: EventSubmit})
	for i := int32(0); i < 2; i++ {
		tr.InstanceEvent(InstanceEvent{Time: 0, Key: InstanceKey{1, i}, Type: EventSubmit})
		tr.InstanceEvent(InstanceEvent{Time: 1, Key: InstanceKey{1, i}, Type: EventSchedule, Machine: 1})
		tr.Usage(UsageRecord{Start: 0, End: sim.SampleWindow, Key: InstanceKey{1, i}, Machine: 1,
			AvgUsage: Resources{CPU: 0.1, Mem: 0.4}, MaxUsage: Resources{CPU: 0.1, Mem: 0.4}})
	}
	found := false
	for _, v := range Validate(tr, DefaultValidateOptions()) {
		if v.Invariant == "machine-mem-capacity" {
			found = true
		}
	}
	if !found {
		t.Fatal("memory over capacity not caught")
	}
}

func TestValidateCatchesChildOutlivingParent(t *testing.T) {
	tr := NewMemTrace(Meta{})
	tr.CollectionEvent(CollectionEvent{Time: 0, Collection: 1, Type: EventSubmit})
	tr.CollectionEvent(CollectionEvent{Time: 10, Collection: 1, Type: EventFinish})
	tr.CollectionEvent(CollectionEvent{Time: 0, Collection: 2, Type: EventSubmit, Parent: 1})
	// Child terminates way beyond the grace window.
	tr.CollectionEvent(CollectionEvent{Time: 10 + sim.Hour, Collection: 2, Type: EventFinish, Parent: 1})
	found := false
	for _, v := range Validate(tr, DefaultValidateOptions()) {
		if v.Invariant == "parent-kill" {
			found = true
		}
	}
	if !found {
		t.Fatal("child outliving parent not caught")
	}
}

func TestValidateMaxViolations(t *testing.T) {
	tr := NewMemTrace(Meta{})
	for i := CollectionID(1); i <= 50; i++ {
		tr.CollectionEvent(CollectionEvent{Time: 1, Collection: i, Type: EventFinish})
	}
	v := Validate(tr, ValidateOptions{MaxViolations: 7})
	if len(v) != 7 {
		t.Fatalf("got %d violations, want capped at 7", len(v))
	}
}

func TestValidateUsageChecks(t *testing.T) {
	tr := NewMemTrace(Meta{})
	tr.MachineEvent(MachineEvent{Time: 0, Machine: 1, Type: MachineAdd, Capacity: Resources{CPU: 1, Mem: 1}})
	tr.Usage(UsageRecord{Start: 10, End: 10, Key: InstanceKey{1, 0}, Machine: 1})
	tr.Usage(UsageRecord{Start: 0, End: 10, Key: InstanceKey{1, 0}, Machine: 1,
		AvgUsage: Resources{CPU: 0.5}, MaxUsage: Resources{CPU: 0.1}})
	var names []string
	for _, v := range Validate(tr, DefaultValidateOptions()) {
		names = append(names, v.Invariant)
	}
	hasWindow, hasAvgMax := false, false
	for _, n := range names {
		if n == "usage-window" {
			hasWindow = true
		}
		if n == "usage-avg-max" {
			hasAvgMax = true
		}
	}
	if !hasWindow || !hasAvgMax {
		t.Fatalf("violations %v", names)
	}
}

func TestMultiSinkFanout(t *testing.T) {
	a := NewMemTrace(Meta{})
	b := NewMemTrace(Meta{})
	ms := MultiSink{a, b, NopSink{}}
	ms.CollectionEvent(CollectionEvent{Collection: 1, Type: EventSubmit})
	ms.InstanceEvent(InstanceEvent{Key: InstanceKey{1, 0}, Type: EventSubmit})
	ms.Usage(UsageRecord{Start: 0, End: 1, Key: InstanceKey{1, 0}})
	ms.MachineEvent(MachineEvent{Machine: 1, Type: MachineAdd})
	for _, tr := range []*MemTrace{a, b} {
		if len(tr.CollectionEvents) != 1 || len(tr.InstanceEvents) != 1 ||
			len(tr.UsageRecords) != 1 || len(tr.MachineEvents) != 1 {
			t.Fatalf("fanout missed rows: %s", tr.Counts())
		}
	}
}
