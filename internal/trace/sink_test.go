package trace

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

// emitMixed streams a deterministic mix of rows into s.
func emitMixed(s Sink, n int) {
	for i := 0; i < n; i++ {
		t := sim.Time(i) * sim.Second
		s.MachineEvent(MachineEvent{Time: t, Machine: MachineID(i%7 + 1), Type: MachineAdd})
		s.CollectionEvent(CollectionEvent{Time: t, Collection: CollectionID(i), Type: EventSubmit})
		s.InstanceEvent(InstanceEvent{Time: t, Key: InstanceKey{Collection: CollectionID(i)}, Type: EventSubmit})
		s.Usage(UsageRecord{Start: t, End: t + sim.Minute, Key: InstanceKey{Collection: CollectionID(i)}})
	}
}

func TestFanOutFlattensAndDropsNil(t *testing.T) {
	a, b := &CountingSink{}, &CountingSink{}
	s := FanOut(nil, MultiSink{a, nil, MultiSink{b}})
	emitMixed(s, 3)
	if a.Counts() != b.Counts() || a.Counts().Total() != 12 {
		t.Fatalf("counts a=%+v b=%+v", a.Counts(), b.Counts())
	}
	if ms, ok := s.(MultiSink); !ok || len(ms) != 2 {
		t.Fatalf("not flattened: %T %v", s, s)
	}
	if _, ok := FanOut().(NopSink); !ok {
		t.Fatal("empty fan-out not NopSink")
	}
	if single := FanOut(a); single != Sink(a) {
		t.Fatal("single fan-out should unwrap")
	}
}

func TestBufferedSinkPreservesPerTableOrderAndFlushes(t *testing.T) {
	direct := NewMemTrace(Meta{})
	buffered := NewMemTrace(Meta{})
	bs := NewBufferedSink(buffered, 16)
	emitMixed(direct, 100)
	emitMixed(bs, 100)
	if got := len(buffered.UsageRecords); got != 96 {
		t.Fatalf("pre-flush usage rows %d, want 96 (tail buffered)", got)
	}
	bs.Flush()
	bs.Flush() // idempotent
	if len(buffered.UsageRecords) != len(direct.UsageRecords) ||
		len(buffered.CollectionEvents) != len(direct.CollectionEvents) ||
		len(buffered.InstanceEvents) != len(direct.InstanceEvents) ||
		len(buffered.MachineEvents) != len(direct.MachineEvents) {
		t.Fatalf("row counts differ after flush: %s vs %s", buffered.Counts(), direct.Counts())
	}
	for i := range direct.UsageRecords {
		if buffered.UsageRecords[i] != direct.UsageRecords[i] {
			t.Fatalf("usage row %d reordered", i)
		}
	}
	for i := range direct.CollectionEvents {
		if buffered.CollectionEvents[i] != direct.CollectionEvents[i] {
			t.Fatalf("collection row %d reordered", i)
		}
	}
}

func TestFlushRecursesThroughFanOut(t *testing.T) {
	inner := NewMemTrace(Meta{})
	bs := NewBufferedSink(inner, 1000)
	s := FanOut(&CountingSink{}, bs)
	emitMixed(s, 5)
	if len(inner.UsageRecords) != 0 {
		t.Fatal("buffer flushed early")
	}
	Flush(s)
	if len(inner.UsageRecords) != 5 {
		t.Fatalf("flush through fan-out left %d rows", len(inner.UsageRecords))
	}
}

func TestSyncSinkConcurrentWriters(t *testing.T) {
	c := &CountingSink{}
	s := NewSyncSink(c)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			emitMixed(s, 250)
		}()
	}
	wg.Wait()
	if got := c.Counts().Total(); got != 8*250*4 {
		t.Fatalf("lost rows: %d", got)
	}
}

func TestRowCountsAddTotal(t *testing.T) {
	a := RowCounts{Collections: 1, Instances: 2, Usage: 3, Machines: 4}
	b := a.Add(a)
	if b.Total() != 20 {
		t.Fatalf("total %d", b.Total())
	}
}
