package trace

import "sync"

// This file is the streaming half of the trace package: composable Sink
// implementations that let a simulation emit rows into a pipeline —
// fan-out, batching, thread-safe sharing, online reduction — instead of
// (or in addition to) retaining a full MemTrace. The engine package wires
// these per cell; full in-memory retention is one sink among several, not
// a structural assumption.

// Flusher is implemented by sinks that buffer rows and can be asked to
// drain them downstream. Flush must be idempotent.
type Flusher interface {
	Flush()
}

// UsageBatcher is an optional Sink capability: delivery of a whole block
// of usage records in one call. The usage table dominates trace volume,
// so hot emitters (the per-window sampler, BufferedSink's flush) hand
// over one slice per block instead of paying an interface dispatch per
// record.
//
// Contract: the batch is ordered — UsageBatch(recs) must be
// indistinguishable from calling Usage(recs[0]), Usage(recs[1]), … in
// sequence, so scalar and batched delivery of the same stream produce
// identical state and bytes. The callee must not retain or modify the
// slice after returning: emitters reuse the backing array for the next
// block.
type UsageBatcher interface {
	UsageBatch(recs []UsageRecord)
}

// EmitUsageBatch delivers a block of usage records to s, in one call
// when s implements UsageBatcher and record by record otherwise. Either
// way the records arrive in slice order.
func EmitUsageBatch(s Sink, recs []UsageRecord) {
	if len(recs) == 0 {
		return
	}
	if ub, ok := s.(UsageBatcher); ok {
		ub.UsageBatch(recs)
		return
	}
	for i := range recs {
		s.Usage(recs[i])
	}
}

// Flush drains s if it buffers, and recurses into fan-out sinks so an
// entire pipeline can be drained with one call at end of simulation.
func Flush(s Sink) {
	switch v := s.(type) {
	case MultiSink:
		for _, child := range v {
			Flush(child)
		}
	case Flusher:
		v.Flush()
	}
}

// FanOut composes sinks into one: nil entries are dropped and nested
// MultiSinks flattened. Zero live sinks yield a NopSink, one is returned
// unwrapped, more become a MultiSink.
func FanOut(sinks ...Sink) Sink {
	var flat MultiSink
	var add func(s Sink)
	add = func(s Sink) {
		switch v := s.(type) {
		case nil:
			return
		case MultiSink:
			for _, child := range v {
				add(child)
			}
		default:
			flat = append(flat, s)
		}
	}
	for _, s := range sinks {
		add(s)
	}
	switch len(flat) {
	case 0:
		return NopSink{}
	case 1:
		return flat[0]
	default:
		return flat
	}
}

// BufferedSink batches rows per table and forwards them to the downstream
// sink in blocks, amortizing per-row dispatch on hot paths (a cell emits
// millions of rows). Row order is preserved within each table; ordering
// across tables is not (a flushed block of usage records may overtake a
// buffered machine event), which every analysis in this repository
// tolerates because rows are timestamped. Call Flush (or trace.Flush on
// the enclosing pipeline) after the simulation to drain the tail.
type BufferedSink struct {
	out   Sink
	limit int
	// outBatcher is out's UsageBatcher capability, asserted once at
	// construction: batch-capable downstreams take usage blocks straight
	// through instead of being re-buffered (see UsageBatch).
	outBatcher UsageBatcher

	coll  []CollectionEvent
	inst  []InstanceEvent
	usage []UsageRecord
	mach  []MachineEvent
}

// DefaultBatchSize is the per-table buffer size used when NewBufferedSink
// is given a non-positive one.
const DefaultBatchSize = 1024

// NewBufferedSink wraps out with per-table batching of the given size.
func NewBufferedSink(out Sink, batch int) *BufferedSink {
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	b := &BufferedSink{out: out, limit: batch}
	b.outBatcher, _ = out.(UsageBatcher)
	return b
}

// CollectionEvent buffers the row.
func (b *BufferedSink) CollectionEvent(ev CollectionEvent) {
	b.coll = append(b.coll, ev)
	if len(b.coll) >= b.limit {
		b.flushCollections()
	}
}

// InstanceEvent buffers the row.
func (b *BufferedSink) InstanceEvent(ev InstanceEvent) {
	b.inst = append(b.inst, ev)
	if len(b.inst) >= b.limit {
		b.flushInstances()
	}
}

// Usage buffers the row.
func (b *BufferedSink) Usage(rec UsageRecord) {
	b.usage = append(b.usage, rec)
	if len(b.usage) >= b.limit {
		b.flushUsage()
	}
}

// UsageBatch buffers a whole block of usage rows, flushing once if the
// buffer reaches its limit. Records stay in delivery order, so scalar
// and batched delivery drain downstream identically. When the downstream
// itself takes blocks, re-buffering would only copy every row once more:
// any scalar stragglers are drained first to keep row order, then the
// block is handed straight through (the downstream must not retain it,
// per the UsageBatcher contract, so the emitter's reuse guarantee holds
// across the forward).
func (b *BufferedSink) UsageBatch(recs []UsageRecord) {
	if b.outBatcher != nil {
		if len(b.usage) > 0 {
			b.flushUsage()
		}
		b.outBatcher.UsageBatch(recs)
		return
	}
	b.usage = append(b.usage, recs...)
	if len(b.usage) >= b.limit {
		b.flushUsage()
	}
}

// MachineEvent buffers the row.
func (b *BufferedSink) MachineEvent(ev MachineEvent) {
	b.mach = append(b.mach, ev)
	if len(b.mach) >= b.limit {
		b.flushMachines()
	}
}

// Flush drains all four table buffers downstream, then flushes the
// downstream sink itself.
func (b *BufferedSink) Flush() {
	b.flushMachines()
	b.flushCollections()
	b.flushInstances()
	b.flushUsage()
	Flush(b.out)
}

func (b *BufferedSink) flushCollections() {
	for i := range b.coll {
		b.out.CollectionEvent(b.coll[i])
	}
	b.coll = b.coll[:0]
}

func (b *BufferedSink) flushInstances() {
	for i := range b.inst {
		b.out.InstanceEvent(b.inst[i])
	}
	b.inst = b.inst[:0]
}

func (b *BufferedSink) flushUsage() {
	EmitUsageBatch(b.out, b.usage)
	b.usage = b.usage[:0]
}

func (b *BufferedSink) flushMachines() {
	for i := range b.mach {
		b.out.MachineEvent(b.mach[i])
	}
	b.mach = b.mach[:0]
}

// SyncSink serializes access to a sink that is shared across concurrently
// running cell simulations (e.g. one CSV writer receiving all cells'
// rows). Per-cell sinks do not need it: the engine guarantees each cell's
// pipeline is driven by a single goroutine.
type SyncSink struct {
	mu  sync.Mutex
	out Sink
}

// NewSyncSink wraps out with a mutex.
func NewSyncSink(out Sink) *SyncSink { return &SyncSink{out: out} }

// CollectionEvent forwards under the lock.
func (s *SyncSink) CollectionEvent(ev CollectionEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out.CollectionEvent(ev)
}

// InstanceEvent forwards under the lock.
func (s *SyncSink) InstanceEvent(ev InstanceEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out.InstanceEvent(ev)
}

// Usage forwards under the lock.
func (s *SyncSink) Usage(rec UsageRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out.Usage(rec)
}

// UsageBatch forwards the block downstream under one lock acquisition.
func (s *SyncSink) UsageBatch(recs []UsageRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	EmitUsageBatch(s.out, recs)
}

// MachineEvent forwards under the lock.
func (s *SyncSink) MachineEvent(ev MachineEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out.MachineEvent(ev)
}

// Flush drains the wrapped sink under the lock.
func (s *SyncSink) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	Flush(s.out)
}

// RowCounts tallies rows per trace table.
type RowCounts struct {
	Collections int64
	Instances   int64
	Usage       int64
	Machines    int64
}

// Total sums all tables.
func (c RowCounts) Total() int64 {
	return c.Collections + c.Instances + c.Usage + c.Machines
}

// Add returns the element-wise sum of two counts.
func (c RowCounts) Add(o RowCounts) RowCounts {
	return RowCounts{
		Collections: c.Collections + o.Collections,
		Instances:   c.Instances + o.Instances,
		Usage:       c.Usage + o.Usage,
		Machines:    c.Machines + o.Machines,
	}
}

// CountingSink is the simplest online reducer: it tallies rows per table
// as they stream past, so a run with MemTrace retention disabled still
// reports how much trace it generated.
type CountingSink struct {
	counts RowCounts
}

// CollectionEvent counts the row.
func (c *CountingSink) CollectionEvent(CollectionEvent) { c.counts.Collections++ }

// InstanceEvent counts the row.
func (c *CountingSink) InstanceEvent(InstanceEvent) { c.counts.Instances++ }

// Usage counts the row.
func (c *CountingSink) Usage(UsageRecord) { c.counts.Usage++ }

// UsageBatch counts the whole block at once.
func (c *CountingSink) UsageBatch(recs []UsageRecord) { c.counts.Usage += int64(len(recs)) }

// MachineEvent counts the row.
func (c *CountingSink) MachineEvent(MachineEvent) { c.counts.Machines++ }

// Counts returns the tallies so far.
func (c *CountingSink) Counts() RowCounts { return c.counts }
