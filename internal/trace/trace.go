// Package trace defines the reproduction's trace data model, mirroring the
// published 2019 Borg trace (v3) schema: collections (jobs and alloc sets),
// instances (tasks and alloc instances), their life-cycle events, 5-minute
// usage records with CPU histograms, and machine events. It also provides
// the in-memory trace store, streaming Sink fan-out, CSV/JSON codecs, and
// the invariant validator described in §9 of the paper.
package trace

import "fmt"

// Era distinguishes the two trace generations compared by the paper.
type Era int

// Trace eras.
const (
	Era2011 Era = iota
	Era2019
)

// String returns the year label.
func (e Era) String() string {
	switch e {
	case Era2011:
		return "2011"
	case Era2019:
		return "2019"
	default:
		return fmt.Sprintf("Era(%d)", int(e))
	}
}

// Tier is a band of priorities with similar scheduling properties (§2).
// Monitoring-tier jobs are folded into Production, as the paper does.
type Tier int

// Tiers, ordered from weakest to strongest.
const (
	TierFree Tier = iota
	TierBestEffortBatch
	TierMid
	TierProduction

	NumTiers
)

// String returns the paper's abbreviation for the tier.
func (t Tier) String() string {
	switch t {
	case TierFree:
		return "free"
	case TierBestEffortBatch:
		return "beb"
	case TierMid:
		return "mid"
	case TierProduction:
		return "prod"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Tiers lists all tiers in ascending strength order, for iteration.
func Tiers() []Tier {
	return []Tier{TierFree, TierBestEffortBatch, TierMid, TierProduction}
}

// TierFromPriority2019 maps a raw 2019 priority (sparse, 0–450) to its tier
// per the trace documentation: free <= 99, beb 110–115, mid 116–119,
// prod 120–359, monitoring >= 360 (folded into prod).
func TierFromPriority2019(priority int) Tier {
	switch {
	case priority <= 99:
		return TierFree
	case priority <= 115:
		return TierBestEffortBatch
	case priority <= 119:
		return TierMid
	default:
		return TierProduction
	}
}

// TierFromPriority2011 maps a 2011 priority band (0–11) to its tier:
// free = bands 0–1, beb = bands 2–8, prod = bands 9–10, monitoring = 11
// (folded into prod). The 2011 trace has no mid tier.
func TierFromPriority2011(band int) Tier {
	switch {
	case band <= 1:
		return TierFree
	case band <= 8:
		return TierBestEffortBatch
	default:
		return TierProduction
	}
}

// Priority2011Values are the 12 remapped priority bands of the 2011 trace.
var Priority2011Values = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}

// Priority2019Values are the raw priority values the 2011 bands correspond
// to (§3): sparse values in 0–450.
var Priority2019Values = []int{0, 25, 100, 101, 103, 104, 107, 109, 119, 200, 360, 450}

// CollectionType distinguishes jobs from alloc sets (together,
// "collections", §5.1).
type CollectionType int

// Collection types.
const (
	CollectionJob CollectionType = iota
	CollectionAllocSet
)

// String names the collection type.
func (c CollectionType) String() string {
	switch c {
	case CollectionJob:
		return "job"
	case CollectionAllocSet:
		return "alloc_set"
	default:
		return fmt.Sprintf("CollectionType(%d)", int(c))
	}
}

// VerticalScaling is the Autopilot mode recorded per collection (§8).
type VerticalScaling int

// Vertical scaling strategies.
const (
	ScalingNone VerticalScaling = iota
	ScalingConstrained
	ScalingFull
)

// String names the strategy as in Figure 14's legend.
func (v VerticalScaling) String() string {
	switch v {
	case ScalingNone:
		return "none"
	case ScalingConstrained:
		return "constrained"
	case ScalingFull:
		return "full"
	default:
		return fmt.Sprintf("VerticalScaling(%d)", int(v))
	}
}

// SchedulerKind identifies which scheduler admitted the job: the regular
// Borg scheduler or the throughput-oriented batch scheduler (§3, "batch
// queueing"; like Omega, Borg now supports multiple schedulers).
type SchedulerKind int

// Scheduler kinds.
const (
	SchedulerDefault SchedulerKind = iota
	SchedulerBatch
)

// String names the scheduler.
func (s SchedulerKind) String() string {
	switch s {
	case SchedulerDefault:
		return "default"
	case SchedulerBatch:
		return "batch"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(s))
	}
}

// CollectionID identifies a collection within a trace.
type CollectionID uint64

// MachineID identifies a machine within a cell. Zero means "no machine".
type MachineID int32

// Resources is a CPU+memory vector in normalized units: NCU (Normalized
// Compute Units) and NMU (Normalized Memory Units), both scaled so the
// largest machine in the trace is 1.0 (§3).
type Resources struct {
	CPU float64 // NCU
	Mem float64 // NMU
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPU: r.CPU + o.CPU, Mem: r.Mem + o.Mem}
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{CPU: r.CPU - o.CPU, Mem: r.Mem - o.Mem}
}

// Scale returns r scaled by f in both dimensions.
func (r Resources) Scale(f float64) Resources {
	return Resources{CPU: r.CPU * f, Mem: r.Mem * f}
}

// FitsIn reports whether r fits within capacity c in both dimensions.
func (r Resources) FitsIn(c Resources) bool {
	return r.CPU <= c.CPU && r.Mem <= c.Mem
}

// NonNegative reports whether both dimensions are >= 0.
func (r Resources) NonNegative() bool { return r.CPU >= 0 && r.Mem >= 0 }
