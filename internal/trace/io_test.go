package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr := newTestTrace()
	dir := t.TempDir()
	if err := WriteDir(tr, dir); err != nil {
		t.Fatalf("write: %v", err)
	}
	for _, f := range []string{metaFile, collectionEventsFile, instanceEventsFile, usageFile, machineEventsFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Meta != tr.Meta {
		t.Fatalf("meta %+v != %+v", got.Meta, tr.Meta)
	}
	if !reflect.DeepEqual(got.CollectionEvents, tr.CollectionEvents) {
		t.Fatalf("collection events differ:\n%v\n%v", got.CollectionEvents, tr.CollectionEvents)
	}
	if !reflect.DeepEqual(got.InstanceEvents, tr.InstanceEvents) {
		t.Fatalf("instance events differ")
	}
	if !reflect.DeepEqual(got.UsageRecords, tr.UsageRecords) {
		t.Fatalf("usage records differ:\n%v\n%v", got.UsageRecords, tr.UsageRecords)
	}
	if !reflect.DeepEqual(got.MachineEvents, tr.MachineEvents) {
		t.Fatalf("machine events differ")
	}
}

func TestReadDirMissing(t *testing.T) {
	if _, err := ReadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing dir")
	}
}

func TestReadDirCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDir(newTestTrace(), dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("expected error for corrupt meta")
	}
}

func TestReadDirCorruptRow(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDir(newTestTrace(), dir); err != nil {
		t.Fatal(err)
	}
	bad := "time,collection_id,type,collection_type,priority,tier,user,parent_collection_id,alloc_collection_id,scheduler,vertical_scaling\nnot-a-number,1,SUBMIT,job,0,free,u,0,0,default,none\n"
	if err := os.WriteFile(filepath.Join(dir, collectionEventsFile), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("expected error for corrupt row")
	}
}

func TestReadDirBadEnums(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDir(newTestTrace(), dir); err != nil {
		t.Fatal(err)
	}
	bad := "time,collection_id,type,collection_type,priority,tier,user,parent_collection_id,alloc_collection_id,scheduler,vertical_scaling\n1,1,SUBMIT,weird,0,free,u,0,0,default,none\n"
	if err := os.WriteFile(filepath.Join(dir, collectionEventsFile), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("expected error for bad collection type")
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := parseTier("nope"); err == nil {
		t.Fatal("parseTier")
	}
	if _, err := parseScheduler("nope"); err == nil {
		t.Fatal("parseScheduler")
	}
	if _, err := parseScaling("nope"); err == nil {
		t.Fatal("parseScaling")
	}
	if _, err := parseMachineEventType("nope"); err == nil {
		t.Fatal("parseMachineEventType")
	}
	for _, tier := range Tiers() {
		got, err := parseTier(tier.String())
		if err != nil || got != tier {
			t.Fatalf("tier round trip %v", tier)
		}
	}
}

// TestDirSinkStreamsIdenticalToWriteDir pins the shared-encoder property:
// streaming rows through a DirSink (here behind a BufferedSink, as the
// suite export wires it) produces byte-identical files to post-hoc
// WriteDir of the same trace, and a trailing Flush delivers the buffered
// tail before Close.
func TestDirSinkStreamsIdenticalToWriteDir(t *testing.T) {
	tr := newTestTrace()
	postDir, streamDir := t.TempDir(), t.TempDir()
	if err := WriteDir(tr, postDir); err != nil {
		t.Fatal(err)
	}
	ds, err := NewDirSink(streamDir, tr.Meta)
	if err != nil {
		t.Fatal(err)
	}
	// Large batch: nothing reaches the files until the pipeline flushes,
	// which is exactly the tail a missing Flush would lose.
	bs := NewBufferedSink(ds, 1<<20)
	for _, ev := range tr.MachineEvents {
		bs.MachineEvent(ev)
	}
	for _, ev := range tr.CollectionEvents {
		bs.CollectionEvent(ev)
	}
	for _, ev := range tr.InstanceEvents {
		bs.InstanceEvent(ev)
	}
	for _, rec := range tr.UsageRecords {
		bs.Usage(rec)
	}
	Flush(bs) // drains the buffer into the DirSink and flushes it
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{metaFile, collectionEventsFile, instanceEventsFile, usageFile, machineEventsFile} {
		want, err := os.ReadFile(filepath.Join(postDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(streamDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s differs between streamed and post-hoc write", name)
		}
	}
}

// TestDirSinkMidRunFlushAndCloseIdempotent exercises Flush mid-stream
// (rows written so far become visible on disk) and double Close.
func TestDirSinkMidRunFlushAndCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirSink(dir, Meta{Cell: "x"})
	if err != nil {
		t.Fatal(err)
	}
	ds.MachineEvent(MachineEvent{Time: 0, Machine: 1, Type: MachineAdd, Capacity: Resources{CPU: 1, Mem: 1}, Platform: "P0"})
	ds.Flush()
	mid, err := os.ReadFile(filepath.Join(dir, machineEventsFile))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(mid), "\n"); lines != 2 { // header + 1 row
		t.Fatalf("mid-run flush left %d lines visible, want 2", lines)
	}
	ds.MachineEvent(MachineEvent{Time: 1, Machine: 2, Type: MachineAdd, Capacity: Resources{CPU: 1, Mem: 1}, Platform: "P0"})
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Rows after Close are dropped, not panicking or resurrecting files.
	ds.MachineEvent(MachineEvent{Time: 2, Machine: 3, Type: MachineAdd})
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.MachineEvents) != 2 {
		t.Fatalf("machine events %d, want 2", len(got.MachineEvents))
	}
	if ds.Err() != nil {
		t.Fatalf("unexpected sink error: %v", ds.Err())
	}
}
