package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr := newTestTrace()
	dir := t.TempDir()
	if err := WriteDir(tr, dir); err != nil {
		t.Fatalf("write: %v", err)
	}
	for _, f := range []string{metaFile, collectionEventsFile, instanceEventsFile, usageFile, machineEventsFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Meta != tr.Meta {
		t.Fatalf("meta %+v != %+v", got.Meta, tr.Meta)
	}
	if !reflect.DeepEqual(got.CollectionEvents, tr.CollectionEvents) {
		t.Fatalf("collection events differ:\n%v\n%v", got.CollectionEvents, tr.CollectionEvents)
	}
	if !reflect.DeepEqual(got.InstanceEvents, tr.InstanceEvents) {
		t.Fatalf("instance events differ")
	}
	if !reflect.DeepEqual(got.UsageRecords, tr.UsageRecords) {
		t.Fatalf("usage records differ:\n%v\n%v", got.UsageRecords, tr.UsageRecords)
	}
	if !reflect.DeepEqual(got.MachineEvents, tr.MachineEvents) {
		t.Fatalf("machine events differ")
	}
}

func TestReadDirMissing(t *testing.T) {
	if _, err := ReadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing dir")
	}
}

func TestReadDirCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDir(newTestTrace(), dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("expected error for corrupt meta")
	}
}

func TestReadDirCorruptRow(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDir(newTestTrace(), dir); err != nil {
		t.Fatal(err)
	}
	bad := "time,collection_id,type,collection_type,priority,tier,user,parent_collection_id,alloc_collection_id,scheduler,vertical_scaling\nnot-a-number,1,SUBMIT,job,0,free,u,0,0,default,none\n"
	if err := os.WriteFile(filepath.Join(dir, collectionEventsFile), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("expected error for corrupt row")
	}
}

func TestReadDirBadEnums(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDir(newTestTrace(), dir); err != nil {
		t.Fatal(err)
	}
	bad := "time,collection_id,type,collection_type,priority,tier,user,parent_collection_id,alloc_collection_id,scheduler,vertical_scaling\n1,1,SUBMIT,weird,0,free,u,0,0,default,none\n"
	if err := os.WriteFile(filepath.Join(dir, collectionEventsFile), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Fatal("expected error for bad collection type")
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := parseTier("nope"); err == nil {
		t.Fatal("parseTier")
	}
	if _, err := parseScheduler("nope"); err == nil {
		t.Fatal("parseScheduler")
	}
	if _, err := parseScaling("nope"); err == nil {
		t.Fatal("parseScaling")
	}
	if _, err := parseMachineEventType("nope"); err == nil {
		t.Fatal("parseMachineEventType")
	}
	for _, tier := range Tiers() {
		got, err := parseTier(tier.String())
		if err != nil || got != tier {
			t.Fatalf("tier round trip %v", tier)
		}
	}
}
