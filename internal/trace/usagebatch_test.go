package trace

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// scalarRecorder retains rows like MemTrace but implements only the four
// scalar Sink methods, so EmitUsageBatch must fall back to the per-record
// loop. It is the test double for pre-batching downstream sinks.
type scalarRecorder struct {
	usage []UsageRecord
	other int
}

func (r *scalarRecorder) CollectionEvent(CollectionEvent) { r.other++ }
func (r *scalarRecorder) InstanceEvent(InstanceEvent)     { r.other++ }
func (r *scalarRecorder) Usage(rec UsageRecord)           { r.usage = append(r.usage, rec) }
func (r *scalarRecorder) MachineEvent(MachineEvent)       { r.other++ }

// usageBlock builds n distinguishable records starting at ordinal base.
func usageBlock(base, n int) []UsageRecord {
	recs := make([]UsageRecord, n)
	for i := range recs {
		t := sim.Time(base+i) * sim.Minute
		recs[i] = UsageRecord{
			Start: t, End: t + sim.Minute,
			Key:      InstanceKey{Collection: CollectionID(base + i), Index: int32(i)},
			Machine:  MachineID(base + i),
			AvgUsage: Resources{CPU: float64(base + i)},
		}
	}
	return recs
}

func TestEmitUsageBatchScalarFallback(t *testing.T) {
	rec := &scalarRecorder{}
	EmitUsageBatch(rec, nil)
	EmitUsageBatch(rec, []UsageRecord{})
	if len(rec.usage) != 0 {
		t.Fatalf("empty batch delivered %d rows", len(rec.usage))
	}
	block := usageBlock(0, 7)
	EmitUsageBatch(rec, block)
	if !reflect.DeepEqual(rec.usage, block) {
		t.Fatal("scalar fallback lost or reordered rows")
	}
}

// TestMultiSinkUsageBatchFansOutInOrder drives one batch stream through a
// fan-out with a batch-capable child, a scalar-only child and a counter:
// every child must see exactly the scalar-delivered stream.
func TestMultiSinkUsageBatchFansOutInOrder(t *testing.T) {
	batcher := NewMemTrace(Meta{})
	scalar := &scalarRecorder{}
	counter := &CountingSink{}
	s := FanOut(batcher, scalar, counter)

	want := NewMemTrace(Meta{})
	for _, n := range []int{3, 1, 5} {
		block := usageBlock(len(want.UsageRecords), n)
		EmitUsageBatch(s, block)
		for _, r := range block {
			want.Usage(r)
		}
	}
	if !reflect.DeepEqual(batcher.UsageRecords, want.UsageRecords) {
		t.Fatal("batch-capable child diverged from scalar delivery")
	}
	if !reflect.DeepEqual(scalar.usage, want.UsageRecords) {
		t.Fatal("scalar-only child diverged from scalar delivery")
	}
	if got := counter.Counts().Usage; got != int64(len(want.UsageRecords)) {
		t.Fatalf("counter saw %d rows, want %d", got, len(want.UsageRecords))
	}
}

// TestBufferedSinkUsageBatchBuffersForScalarDownstream checks the
// re-buffering path (downstream without UsageBatch): blocks and scalar
// rows interleave in delivery order, the limit still triggers flushes,
// Flush drains the tail, and the sink copies blocks rather than aliasing
// the caller's reusable backing array.
func TestBufferedSinkUsageBatchBuffersForScalarDownstream(t *testing.T) {
	down := &scalarRecorder{}
	bs := NewBufferedSink(down, 8)

	var want []UsageRecord
	buf := make([]UsageRecord, 0, 16)
	emit := func(base, n int) {
		block := append(buf[:0], usageBlock(base, n)...)
		want = append(want, block...)
		bs.UsageBatch(block)
		// The emitter owns the array again after UsageBatch returns;
		// scribbling over it must not reach the downstream rows.
		for i := range block {
			block[i] = UsageRecord{Machine: -1}
		}
	}

	emit(0, 3)
	bs.Usage(usageBlock(3, 1)[0])
	want = append(want, usageBlock(3, 1)[0])
	if len(down.usage) != 0 {
		t.Fatalf("flushed below limit: %d rows downstream", len(down.usage))
	}
	emit(4, 6) // crosses the limit of 8 → one flush of everything so far
	if len(down.usage) != 10 {
		t.Fatalf("limit flush delivered %d rows, want 10", len(down.usage))
	}
	emit(10, 2) // tail stays buffered
	bs.Flush()
	bs.Flush() // idempotent
	if !reflect.DeepEqual(down.usage, want) {
		t.Fatal("buffered batch delivery lost, reordered or aliased rows")
	}
}

// TestBufferedSinkUsageBatchPassthrough checks the passthrough path
// (downstream with UsageBatch): blocks are forwarded immediately, scalar
// stragglers buffered beforehand are drained first so row order is
// preserved, and Flush still drains scalar tails.
func TestBufferedSinkUsageBatchPassthrough(t *testing.T) {
	down := NewMemTrace(Meta{})
	bs := NewBufferedSink(down, 1000)

	straggler := usageBlock(0, 1)[0]
	bs.Usage(straggler)
	if len(down.UsageRecords) != 0 {
		t.Fatal("scalar row bypassed the buffer")
	}
	block := usageBlock(1, 4)
	bs.UsageBatch(block)
	if len(down.UsageRecords) != 5 {
		t.Fatalf("passthrough delivered %d rows, want straggler+block = 5", len(down.UsageRecords))
	}
	want := append([]UsageRecord{straggler}, block...)
	if !reflect.DeepEqual(down.UsageRecords, want) {
		t.Fatal("straggler/block order not preserved")
	}

	tail := usageBlock(5, 1)[0]
	bs.Usage(tail)
	bs.Flush()
	if !reflect.DeepEqual(down.UsageRecords, append(want, tail)) {
		t.Fatal("Flush lost the scalar tail after a passthrough")
	}
}
