// Package experiments regenerates every table and figure of the paper's
// evaluation from freshly simulated traces: Table 1, Figures 1–14 and
// Table 2, plus the §5.1 and §5.2 statistics. It is the engine behind
// cmd/borgexperiments and the repository's benchmark suite, and the source
// of EXPERIMENTS.md.
//
// The report renders from an abstract per-cell analysis surface with two
// implementations: RunSuite retains each cell's MemTrace and analyzes it
// post-hoc, while RunSuiteStreaming attaches one streaming.CellReducer
// per cell and simulates with core.Options.NoMemTrace, folding every row
// online so memory stays bounded by the number of jobs rather than the
// number of trace rows. Both paths produce byte-identical reports for the
// same scale and seed (the differential test in this package is CI's
// acceptance gate for that).
package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/progress"
	"repro/internal/report"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scale sets the simulated size of the reproduction. The paper's cells
// have 12,000 machines for a month; everything here is calibrated to scale
// linearly, and rates are reported both raw and normalized back to paper
// scale.
type Scale struct {
	Name         string
	Machines2011 int
	Machines2019 int // per cell, 8 cells
	Horizon      sim.Time
	Warmup       sim.Time // excluded from time-averaged figures
	Seed         uint64
	// Parallelism bounds how many cells simulate concurrently (engine
	// worker pool); <= 0 means GOMAXPROCS. Output is identical at every
	// setting — per-cell seeds derive from Seed via engine.DeriveSeed.
	Parallelism int
	// RunKnobs carries the shared per-run knobs. Policy and Arrival
	// override every cell profile's placement policy / arrival process by
	// name (empty keeps each profile's defaults; SuiteProfiles panics on
	// unknown names). UsageNoiseFast threads into every cell's options.
	// Progress, when non-nil, receives live progress lines (cells done /
	// in flight / ETA) while the suite simulates — pure wall-clock
	// reporting, it never changes the output. Metrics/Timeline, when
	// non-nil, receive the suite's instrument rollup and run timeline
	// (each cell gets a private registry, merged in spec order — see
	// engine.RunInstruments); like Progress, they never change the
	// report or trace bytes.
	core.RunKnobs
	// RecordWorkload captures every cell's arrival/job stream into its
	// CellResult.Workload (see SaveWorkloads for persisting a suite's
	// recordings).
	RecordWorkload bool
	// Replay holds per-cell recordings, index-aligned with SuiteSpecs
	// (0 = the 2011 cell, then 2019 a–h): a non-nil entry replays that
	// recording instead of generating cell i's workload. LoadWorkloads
	// rebuilds this slice from a recorded directory.
	Replay []*workload.Recording
}

// engineOptions builds the suite's engine options: the scale's
// parallelism plus progress hooks when Progress is set.
func (sc Scale) engineOptions(cells int) engine.Options {
	opts := engine.Options{Parallelism: sc.Parallelism}
	if sc.Progress != nil {
		prog := progress.New(sc.Progress, "suite", cells)
		opts.OnStart = func(int) { prog.Start() }
		opts.OnResult = func(int, *core.CellResult) { prog.Done() }
	}
	return opts
}

// SmallScale is quick enough for tests and benchmarks.
func SmallScale() Scale {
	return Scale{Name: "small", Machines2011: 120, Machines2019: 100,
		Horizon: 12 * sim.Hour, Warmup: 4 * sim.Hour, Seed: 1}
}

// DefaultScale is the scale EXPERIMENTS.md reports.
func DefaultScale() Scale {
	return Scale{Name: "default", Machines2011: 300, Machines2019: 250,
		Horizon: 24 * sim.Hour, Warmup: 8 * sim.Hour, Seed: 1}
}

// LargeScale stresses the simulator further (slower, closer asymptotics).
func LargeScale() Scale {
	return Scale{Name: "large", Machines2011: 600, Machines2019: 400,
		Horizon: 48 * sim.Hour, Warmup: 16 * sim.Hour, Seed: 1}
}

// Suite holds the simulated traces for one scale (the retained-trace
// path).
type Suite struct {
	Scale Scale
	T2011 *trace.MemTrace
	T2019 []*trace.MemTrace // cells a–h in order
	Stats []core.CellResult

	an *suiteAnalyses // lazily built post-hoc analysis surface
}

// SuiteProfiles builds the suite's nine cell profiles — the 2011 cell at
// index 0, then the 2019 cells a–h. Every call constructs fresh profile
// values, so callers (parameter-sweep variants in particular) may mutate
// them freely without affecting other runs.
func SuiteProfiles(sc Scale) []*workload.CellProfile {
	profiles := make([]*workload.CellProfile, 0, 9)
	profiles = append(profiles, workload.Profile2011(sc.Machines2011))
	for _, cell := range workload.Cells2019() {
		profiles = append(profiles, workload.Profile2019(cell, sc.Machines2019))
	}
	if sc.Policy != "" {
		policy := scheduler.MustParsePolicy(sc.Policy)
		for _, p := range profiles {
			p.Policy = policy
		}
	}
	if sc.Arrival != "" {
		workload.MustParseArrival(sc.Arrival) // validate once, loudly
		for _, p := range profiles {
			p.Arrival = sc.Arrival
		}
	}
	return profiles
}

// SuiteSpecsWith builds the suite's nine cell specs with overlay applied
// to each freshly built profile first (nil means none) — the hook
// parameter sweeps use to vary profile knobs per variant. Seeds and ID
// spaces are assigned per the engine contracts.
func SuiteSpecsWith(sc Scale, overlay func(*workload.CellProfile)) []engine.Spec {
	// Policy and Arrival act at the profile level (SuiteProfiles), so
	// only the remaining knobs ride the per-cell options; Progress is
	// suite-level reporting and never enters a cell, and Metrics/Timeline
	// are applied per cell by engine.RunInstruments in the run functions.
	// TimelineWarmup is inert until a timeline is attached.
	base := core.Options{Horizon: sc.Horizon, RecordWorkload: sc.RecordWorkload,
		TimelineWarmup: sc.Warmup}
	base.UsageNoiseFast = sc.UsageNoiseFast
	profiles := SuiteProfiles(sc)
	specs := make([]engine.Spec, 0, len(profiles))
	for i, p := range profiles {
		if overlay != nil {
			overlay(p)
		}
		spec := engine.NewSpec(i, p, base, sc.Seed)
		if i < len(sc.Replay) {
			spec.Options.Replay = sc.Replay[i]
		}
		specs = append(specs, spec)
	}
	return specs
}

// SuiteSpecs builds the suite's nine cell specs — the 2011 cell at index
// 0, then the eight 2019 cells a–h — with seeds and ID spaces assigned
// per the engine contracts.
func SuiteSpecs(sc Scale) []engine.Spec {
	return SuiteSpecsWith(sc, nil)
}

// RunSuite simulates the 2011 cell and the eight 2019 cells, sc.Parallelism
// cells at a time, retaining every cell's full trace in memory.
func RunSuite(sc Scale) *Suite {
	s := &Suite{Scale: sc}
	specs := SuiteSpecs(sc)
	ri := engine.NewRunInstruments(sc.Metrics, sc.Timeline, len(specs))
	ri.Apply(specs)
	results := engine.Run(specs, ri.Wrap(sc.engineOptions(len(specs))))
	s.T2011 = results[0].Trace
	s.Stats = append(s.Stats, *results[0])
	for _, r := range results[1:] {
		s.T2019 = append(s.T2019, r.Trace)
		s.Stats = append(s.Stats, *r)
	}
	return s
}

// RateNormalization returns the factor converting this suite's per-cell
// 2019 rates to paper scale (12,000 machines).
func (s *Suite) RateNormalization2019() float64 {
	return float64(workload.ReferenceMachines) / float64(s.Scale.Machines2019)
}

// RateNormalization2011 is the 2011 counterpart.
func (s *Suite) RateNormalization2011() float64 {
	return float64(workload.ReferenceMachines) / float64(s.Scale.Machines2011)
}

// --- the per-cell analysis surface ---

// cellAnalyses is everything the report needs from one simulated cell.
// streaming.CellReducer satisfies it directly (online); traceCell adapts
// a retained MemTrace (post-hoc).
type cellAnalyses interface {
	Meta() trace.Meta
	MachineShapes() []analysis.ShapePoint
	UsageSeries() analysis.TierSeries
	AllocationSeries() analysis.TierSeries
	AverageUsageByTier(warmup sim.Time) analysis.TierAverages
	AverageAllocationByTier(warmup sim.Time) analysis.TierAverages
	MachineUtilization() (cpu, mem []float64)
	Transitions() []analysis.Transition
	Inventory() analysis.Inventory
	AllocSetAccum() analysis.AllocSetAccum
	TerminationAccum() analysis.TerminationAccum
	Rates() analysis.SubmissionRates
	Delays() analysis.DelaySamples
	TasksPerJob() map[trace.Tier][]float64
	UsageIntegrals() analysis.UsageIntegrals
	SlackSamples() map[trace.VerticalScaling][]float64
}

// traceCell is the post-hoc adapter: every method delegates to the
// analysis package over the retained trace. at is the Figure 6 snapshot
// instant.
type traceCell struct {
	tr *trace.MemTrace
	at sim.Time
}

func (c traceCell) Meta() trace.Meta                      { return c.tr.Meta }
func (c traceCell) MachineShapes() []analysis.ShapePoint  { return analysis.MachineShapes(c.tr) }
func (c traceCell) UsageSeries() analysis.TierSeries      { return analysis.UsageSeries(c.tr) }
func (c traceCell) AllocationSeries() analysis.TierSeries { return analysis.AllocationSeries(c.tr) }
func (c traceCell) Transitions() []analysis.Transition    { return analysis.Transitions(c.tr) }
func (c traceCell) Inventory() analysis.Inventory         { return analysis.InventoryOf(c.tr) }
func (c traceCell) AllocSetAccum() analysis.AllocSetAccum { return analysis.AllocSetAccumOf(c.tr) }
func (c traceCell) Rates() analysis.SubmissionRates       { return analysis.RatesOf(c.tr) }
func (c traceCell) Delays() analysis.DelaySamples         { return analysis.DelaysOf(c.tr) }
func (c traceCell) TasksPerJob() map[trace.Tier][]float64 { return analysis.TasksPerJobOf(c.tr) }
func (c traceCell) UsageIntegrals() analysis.UsageIntegrals {
	return analysis.JobUsageIntegralsOf(c.tr)
}
func (c traceCell) TerminationAccum() analysis.TerminationAccum {
	return analysis.TerminationAccumOf(c.tr)
}
func (c traceCell) AverageUsageByTier(warmup sim.Time) analysis.TierAverages {
	return analysis.AverageUsageByTier(c.tr, warmup)
}
func (c traceCell) AverageAllocationByTier(warmup sim.Time) analysis.TierAverages {
	return analysis.AverageAllocationByTier(c.tr, warmup)
}
func (c traceCell) MachineUtilization() (cpu, mem []float64) {
	return analysis.MachineUtilization(c.tr, c.at)
}
func (c traceCell) SlackSamples() map[trace.VerticalScaling][]float64 {
	return analysis.SlackSamplesOf(c.tr)
}

// suiteAnalyses assembles the nine cells' analysis surfaces for report
// rendering: the 2011 cell plus the 2019 cells a–h in order.
type suiteAnalyses struct {
	sc    Scale
	c2011 cellAnalyses
	c2019 []cellAnalyses
}

func (s *Suite) analyses() *suiteAnalyses {
	if s.an == nil {
		at := s.Scale.Horizon / 2
		a := &suiteAnalyses{sc: s.Scale, c2011: traceCell{s.T2011, at}}
		for _, tr := range s.T2019 {
			a.c2019 = append(a.c2019, traceCell{tr, at})
		}
		s.an = a
	}
	return s.an
}

func (a *suiteAnalyses) rates2019() analysis.SubmissionRates {
	cells := make([]analysis.SubmissionRates, len(a.c2019))
	for i, c := range a.c2019 {
		cells[i] = c.Rates()
	}
	return analysis.MergeRates(cells)
}

func (a *suiteAnalyses) integrals2019() analysis.UsageIntegrals {
	cells := make([]analysis.UsageIntegrals, len(a.c2019))
	for i, c := range a.c2019 {
		cells[i] = c.UsageIntegrals()
	}
	return analysis.MergeIntegrals(cells)
}

// WriteReport emits every artifact to w.
func (a *suiteAnalyses) WriteReport(w io.Writer) error {
	steps := []func(io.Writer) error{
		a.WriteTable1,
		a.WriteFigure1,
		a.WriteFigures2and4,
		a.WriteFigures3and5,
		a.WriteFigure6,
		a.WriteFigure7,
		a.WriteAllocSetStats,
		a.WriteTerminationStats,
		a.WriteFigure8,
		a.WriteFigure9,
		a.WriteFigure10,
		a.WriteFigure11,
		a.WriteTable2,
		a.WriteFigure12,
		a.WriteFigure13,
		a.WriteFigure14,
	}
	for _, step := range steps {
		if err := step(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable1 emits the trace-comparison inventory.
func (a *suiteAnalyses) WriteTable1(w io.Writer) error {
	fmt.Fprintf(w, "== Table 1: trace comparison (scale %q) ==\n", a.sc.Name)
	cells := make([]analysis.Inventory, len(a.c2019))
	for i, c := range a.c2019 {
		cells[i] = c.Inventory()
	}
	rows := analysis.Table1FromInventories(
		a.c2011.Inventory(), a.c2011.Meta().Duration,
		analysis.MergeInventories(cells), a.c2019[0].Meta().Duration, len(a.c2019))
	return report.Table1(w, rows)
}

// WriteFigure1 emits machine shape populations.
func (a *suiteAnalyses) WriteFigure1(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 1: machine shapes (2019, all cells) ==")
	counts := make(map[trace.Resources]int)
	for _, c := range a.c2019 {
		for _, p := range c.MachineShapes() {
			counts[trace.Resources{CPU: p.CPU, Mem: p.Mem}] += p.Count
		}
	}
	var rows [][]string
	for r, n := range counts {
		rows = append(rows, []string{report.F(r.CPU), report.F(r.Mem), fmt.Sprint(n)})
	}
	sortRows(rows)
	return report.Table(w, []string{"NCU", "NMU", "machines"}, rows)
}

// WriteFigures2and4 emits the hourly usage and allocation series.
func (a *suiteAnalyses) WriteFigures2and4(w io.Writer) error {
	var use19, alloc19 []analysis.TierSeries
	for _, c := range a.c2019 {
		use19 = append(use19, c.UsageSeries())
		alloc19 = append(alloc19, c.AllocationSeries())
	}
	avgUse := analysis.AverageSeries(use19)
	avgAlloc := analysis.AverageSeries(alloc19)
	u11 := a.c2011.UsageSeries()
	a11 := a.c2011.AllocationSeries()

	if err := report.TierSeriesTable(w, "== Figure 2a: 2011 CPU usage (fraction of capacity/hour) ==", u11, "cpu"); err != nil {
		return err
	}
	if err := report.TierSeriesTable(w, "== Figure 2b: 2019 CPU usage (avg of 8 cells) ==", avgUse, "cpu"); err != nil {
		return err
	}
	if err := report.TierSeriesTable(w, "== Figure 2c: 2011 memory usage ==", u11, "mem"); err != nil {
		return err
	}
	if err := report.TierSeriesTable(w, "== Figure 2d: 2019 memory usage (avg of 8 cells) ==", avgUse, "mem"); err != nil {
		return err
	}
	if err := report.TierSeriesTable(w, "== Figure 4a: 2011 CPU allocation ==", a11, "cpu"); err != nil {
		return err
	}
	if err := report.TierSeriesTable(w, "== Figure 4b: 2019 CPU allocation (avg of 8 cells) ==", avgAlloc, "cpu"); err != nil {
		return err
	}
	if err := report.TierSeriesTable(w, "== Figure 4c: 2011 memory allocation ==", a11, "mem"); err != nil {
		return err
	}
	return report.TierSeriesTable(w, "== Figure 4d: 2019 memory allocation (avg of 8 cells) ==", avgAlloc, "mem")
}

// WriteFigures3and5 emits the per-cell tier averages.
func (a *suiteAnalyses) WriteFigures3and5(w io.Writer) error {
	var use, alloc []analysis.TierAverages
	use = append(use, a.c2011.AverageUsageByTier(a.sc.Warmup))
	alloc = append(alloc, a.c2011.AverageAllocationByTier(a.sc.Warmup))
	for _, c := range a.c2019 {
		use = append(use, c.AverageUsageByTier(a.sc.Warmup))
		alloc = append(alloc, c.AverageAllocationByTier(a.sc.Warmup))
	}
	if err := report.TierAveragesTable(w, "== Figure 3 (CPU): average usage by tier and cell ==", use, "cpu"); err != nil {
		return err
	}
	if err := report.TierAveragesTable(w, "== Figure 3 (mem) ==", use, "mem"); err != nil {
		return err
	}
	if err := report.TierAveragesTable(w, "== Figure 5 (CPU): average allocation by tier and cell ==", alloc, "cpu"); err != nil {
		return err
	}
	return report.TierAveragesTable(w, "== Figure 5 (mem) ==", alloc, "mem")
}

// WriteFigure6 emits machine-utilization CCDF quantiles per cell at the
// mid-trace snapshot.
func (a *suiteAnalyses) WriteFigure6(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 6: machine utilization at mid-trace (upper quantiles) ==")
	probs := []float64{0.9, 0.5, 0.1}
	headers := []string{"cell/resource", "P>0.9", "median", "P>0.1"}
	var rows [][]string
	cpu11, mem11 := a.c2011.MachineUtilization()
	rows = append(rows, report.CCDFQuantiles("2011 cpu", cpu11, probs))
	rows = append(rows, report.CCDFQuantiles("2011 mem", mem11, probs))
	for i, c := range a.c2019 {
		cpu, mem := c.MachineUtilization()
		cell := workload.Cells2019()[i]
		rows = append(rows, report.CCDFQuantiles(cell+" cpu", cpu, probs))
		rows = append(rows, report.CCDFQuantiles(cell+" mem", mem, probs))
	}
	return report.Table(w, headers, rows)
}

// WriteFigure7 emits cell g's transition counts, as the paper does.
func (a *suiteAnalyses) WriteFigure7(w io.Writer) error {
	gIdx := 6 // cell g
	return report.Transitions(w, "== Figure 7: state transitions (cell g) ==",
		a.c2019[gIdx].Transitions(), 20)
}

// WriteAllocSetStats emits §5.1's numbers.
func (a *suiteAnalyses) WriteAllocSetStats(w io.Writer) error {
	accums := make([]analysis.AllocSetAccum, len(a.c2019))
	for i, c := range a.c2019 {
		accums[i] = c.AllocSetAccum()
	}
	st := analysis.FinishAllocSets(accums)
	fmt.Fprintln(w, "== §5.1: alloc sets (2019, all cells) ==")
	rows := [][]string{
		{"alloc sets / collections", report.Pct(st.AllocSetShare), "2%"},
		{"alloc share of CPU allocation", report.Pct(st.CPUAllocShare), "20%"},
		{"alloc share of RAM allocation", report.Pct(st.MemAllocShare), "18%"},
		{"jobs running in allocs", report.Pct(st.JobsInAllocShare), "15%"},
		{"prod share of in-alloc jobs", report.Pct(st.ProdShareInAlloc), "95%"},
		{"mem utilization inside allocs", report.Pct(st.MemUtilInAlloc), "73%"},
		{"mem utilization outside", report.Pct(st.MemUtilOutside), "41%"},
	}
	return report.Table(w, []string{"metric", "measured", "paper"}, rows)
}

// WriteTerminationStats emits §5.2's numbers.
func (a *suiteAnalyses) WriteTerminationStats(w io.Writer) error {
	accums := make([]analysis.TerminationAccum, len(a.c2019))
	for i, c := range a.c2019 {
		accums[i] = c.TerminationAccum()
	}
	st := analysis.FinishTerminations(accums)
	fmt.Fprintln(w, "== §5.2: terminations (2019, all cells) ==")
	rows := [][]string{
		{"collections with any eviction", report.Pct(st.CollectionsWithEviction), "3.2%"},
		{"non-prod share of evicted", report.Pct(st.NonProdShareOfEvicted), "96.6%"},
		{"prod collections evicted", report.Pct(st.ProdEvictedShare), "<0.2%"},
		{"single-eviction share (prod)", report.Pct(st.SingleEvictionShare), "52%"},
		{"kill rate with parent", report.Pct(st.KillRateWithParent), "87%"},
		{"kill rate without parent", report.Pct(st.KillRateWithoutParent), "41%"},
	}
	return report.Table(w, []string{"metric", "measured", "paper"}, rows)
}

// WriteFigure8 emits job-submission-rate distributions.
func (a *suiteAnalyses) WriteFigure8(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 8: job submission rate (jobs/hour, normalized to 12k machines) ==")
	r19 := a.rates2019()
	r11 := a.c2011.Rates()
	n19 := scaleAll(r19.JobsPerHour, a.norm2019())
	n11 := scaleAll(r11.JobsPerHour, a.norm2011())
	rows := [][]string{
		statRow("2011", n11),
		statRow("2019 per-cell", n19),
	}
	med19 := stats.Quantile(n19, 0.5)
	med11 := stats.Quantile(n11, 0.5)
	rows = append(rows, []string{"median ratio 2019/2011", report.F(med19 / med11), "", "", "paper: 3.7x"})
	return report.Table(w, []string{"series", "median", "mean", "p90", "note"}, rows)
}

// WriteFigure9 emits task-submission-rate distributions and the
// resubmission ratio.
func (a *suiteAnalyses) WriteFigure9(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 9: task submission rate (tasks/hour, normalized) ==")
	r19 := a.rates2019()
	r11 := a.c2011.Rates()
	rows := [][]string{
		statRow("2011 new tasks", scaleAll(r11.NewTasksPerHour, a.norm2011())),
		statRow("2011 all tasks", scaleAll(r11.AllTasksPerHour, a.norm2011())),
		statRow("2019 new tasks", scaleAll(r19.NewTasksPerHour, a.norm2019())),
		statRow("2019 all tasks", scaleAll(r19.AllTasksPerHour, a.norm2019())),
	}
	resub19 := stats.Quantile(r19.AllTasksPerHour, 0.5)/stats.Quantile(r19.NewTasksPerHour, 0.5) - 1
	resub11 := stats.Quantile(r11.AllTasksPerHour, 0.5)/stats.Quantile(r11.NewTasksPerHour, 0.5) - 1
	rows = append(rows, []string{"resubmit:new 2011", report.F(resub11), "", "", "paper: 0.66"})
	rows = append(rows, []string{"resubmit:new 2019", report.F(resub19), "", "", "paper: 2.26"})
	return report.Table(w, []string{"series", "median", "mean", "p90", "note"}, rows)
}

// WriteFigure10 emits scheduling-delay distributions by era and tier.
func (a *suiteAnalyses) WriteFigure10(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 10: job scheduling delay (seconds, ready -> first task running) ==")
	cells := make([]analysis.DelaySamples, len(a.c2019))
	for i, c := range a.c2019 {
		cells[i] = c.Delays()
	}
	d19 := analysis.MergeDelays(cells)
	d11 := a.c2011.Delays()
	rows := [][]string{
		delayRow("2011 all", d11.All),
		delayRow("2019 all", d19.All),
	}
	for _, tier := range trace.Tiers() {
		if xs := d11.ByTier[tier]; len(xs) > 0 {
			rows = append(rows, delayRow("2011 "+tier.String(), xs))
		}
	}
	for _, tier := range trace.Tiers() {
		if xs := d19.ByTier[tier]; len(xs) > 0 {
			rows = append(rows, delayRow("2019 "+tier.String(), xs))
		}
	}
	return report.Table(w, []string{"series", "median", "p90", "p99", "n"}, rows)
}

// WriteFigure11 emits tasks-per-job quantiles by tier.
func (a *suiteAnalyses) WriteFigure11(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 11: tasks per job by tier (2019) ==")
	cells := make([]map[trace.Tier][]float64, len(a.c2019))
	for i, c := range a.c2019 {
		cells[i] = c.TasksPerJob()
	}
	tpj := analysis.MergeSamplesBy(cells)
	rows := make([][]string, 0, len(tpj))
	for _, tier := range trace.Tiers() {
		xs := tpj[tier]
		if len(xs) == 0 {
			continue
		}
		rows = append(rows, []string{
			tier.String(),
			report.F(stats.Quantile(xs, 0.80)),
			report.F(stats.Quantile(xs, 0.95)),
			report.F(stats.Quantile(xs, 0.99)),
			fmt.Sprint(len(xs)),
		})
	}
	rows = append(rows, []string{"paper 95%ile", "beb 498", "mid 67", "free 21 / prod 3", ""})
	return report.Table(w, []string{"tier", "p80", "p95", "p99", "jobs"}, rows)
}

// WriteTable2 emits the resource-hour distribution statistics.
func (a *suiteAnalyses) WriteTable2(w io.Writer) error {
	i19 := a.integrals2019()
	i11 := a.c2011.UsageIntegrals()
	if err := report.Table2(w, "== Table 2 (2011): per-job resource-hours ==",
		analysis.ComputeTable2Column(i11.CPUHours), analysis.ComputeTable2Column(i11.MemHours)); err != nil {
		return err
	}
	return report.Table2(w, "== Table 2 (2019): per-job resource-hours ==",
		analysis.ComputeTable2Column(i19.CPUHours), analysis.ComputeTable2Column(i19.MemHours))
}

// WriteFigure12 emits the log-log CCDF of per-job resource-hours.
func (a *suiteAnalyses) WriteFigure12(w io.Writer) error {
	i19 := a.integrals2019()
	i11 := a.c2011.UsageIntegrals()
	grid := analysis.LogGrid(1e-5, 1e3, 1)
	return report.CCDFSeries(w, "== Figure 12: CCDF of resource-usage-hours per job ==", grid,
		map[string][]float64{
			"2019 NCU-hours": i19.CPUHours,
			"2019 NMU-hours": i19.MemHours,
			"2011 NCU-hours": i11.CPUHours,
			"2011 NMU-hours": i11.MemHours,
		})
}

// WriteFigure13 emits the CPU/memory consumption correlation.
func (a *suiteAnalyses) WriteFigure13(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 13: median NMU-hours per 1-NCU-hour bucket (2019) ==")
	ints := a.integrals2019()
	points, pearson := analysis.CPUMemCorrelation(ints, 100)
	rows := make([][]string, 0, len(points)+1)
	for _, p := range points {
		rows = append(rows, []string{report.F(p.NCUHours), report.F(p.MedianNMU), fmt.Sprint(p.Jobs)})
	}
	rows = append(rows, []string{"Pearson r", report.F(pearson), "paper: 0.97"})
	return report.Table(w, []string{"NCU-hours bucket", "median NMU-hours", "jobs"}, rows)
}

// WriteFigure14 emits the peak-slack CCDF by vertical-scaling strategy.
func (a *suiteAnalyses) WriteFigure14(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 14: peak NCU slack by autoscaling strategy (2019) ==")
	cells := make([]map[trace.VerticalScaling][]float64, len(a.c2019))
	for i, c := range a.c2019 {
		cells[i] = c.SlackSamples()
	}
	slack := analysis.MergeSamplesBy(cells)
	rows := make([][]string, 0, 3)
	for _, mode := range []trace.VerticalScaling{trace.ScalingFull, trace.ScalingConstrained, trace.ScalingNone} {
		xs := slack[mode]
		if len(xs) == 0 {
			continue
		}
		rows = append(rows, []string{
			mode.String(),
			report.F(stats.Quantile(xs, 0.25)),
			report.F(stats.Quantile(xs, 0.5)),
			report.F(stats.Quantile(xs, 0.75)),
			fmt.Sprint(len(xs)),
		})
	}
	rows = append(rows, []string{"paper", "full autoscaling cuts slack by >25pp for most jobs", "", "", ""})
	return report.Table(w, []string{"strategy", "slack p25 (%)", "median (%)", "p75 (%)", "samples"}, rows)
}

func (a *suiteAnalyses) norm2019() float64 {
	return float64(workload.ReferenceMachines) / float64(a.sc.Machines2019)
}

func (a *suiteAnalyses) norm2011() float64 {
	return float64(workload.ReferenceMachines) / float64(a.sc.Machines2011)
}

// --- Suite render wrappers (the retained-trace path) ---

// WriteReport emits every artifact to w.
func (s *Suite) WriteReport(w io.Writer) error { return s.analyses().WriteReport(w) }

// WriteTable1 emits the trace-comparison inventory.
func (s *Suite) WriteTable1(w io.Writer) error { return s.analyses().WriteTable1(w) }

// WriteFigure1 emits machine shape populations.
func (s *Suite) WriteFigure1(w io.Writer) error { return s.analyses().WriteFigure1(w) }

// WriteFigures2and4 emits the hourly usage and allocation series.
func (s *Suite) WriteFigures2and4(w io.Writer) error { return s.analyses().WriteFigures2and4(w) }

// WriteFigures3and5 emits the per-cell tier averages.
func (s *Suite) WriteFigures3and5(w io.Writer) error { return s.analyses().WriteFigures3and5(w) }

// WriteFigure6 emits machine-utilization quantiles at mid-trace.
func (s *Suite) WriteFigure6(w io.Writer) error { return s.analyses().WriteFigure6(w) }

// WriteFigure7 emits cell g's transition counts.
func (s *Suite) WriteFigure7(w io.Writer) error { return s.analyses().WriteFigure7(w) }

// WriteAllocSetStats emits §5.1's numbers.
func (s *Suite) WriteAllocSetStats(w io.Writer) error { return s.analyses().WriteAllocSetStats(w) }

// WriteTerminationStats emits §5.2's numbers.
func (s *Suite) WriteTerminationStats(w io.Writer) error {
	return s.analyses().WriteTerminationStats(w)
}

// WriteFigure8 emits job-submission-rate distributions.
func (s *Suite) WriteFigure8(w io.Writer) error { return s.analyses().WriteFigure8(w) }

// WriteFigure9 emits task-submission-rate distributions.
func (s *Suite) WriteFigure9(w io.Writer) error { return s.analyses().WriteFigure9(w) }

// WriteFigure10 emits scheduling-delay distributions.
func (s *Suite) WriteFigure10(w io.Writer) error { return s.analyses().WriteFigure10(w) }

// WriteFigure11 emits tasks-per-job quantiles by tier.
func (s *Suite) WriteFigure11(w io.Writer) error { return s.analyses().WriteFigure11(w) }

// WriteTable2 emits the resource-hour distribution statistics.
func (s *Suite) WriteTable2(w io.Writer) error { return s.analyses().WriteTable2(w) }

// WriteFigure12 emits the log-log CCDF of per-job resource-hours.
func (s *Suite) WriteFigure12(w io.Writer) error { return s.analyses().WriteFigure12(w) }

// WriteFigure13 emits the CPU/memory consumption correlation.
func (s *Suite) WriteFigure13(w io.Writer) error { return s.analyses().WriteFigure13(w) }

// WriteFigure14 emits the peak-slack summary by scaling strategy.
func (s *Suite) WriteFigure14(w io.Writer) error { return s.analyses().WriteFigure14(w) }

// --- helpers ---

func scaleAll(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

func statRow(name string, xs []float64) []string {
	sum := stats.Summarize(xs)
	return []string{name, report.F(sum.Median), report.F(sum.Mean), report.F(sum.P90), ""}
}

func delayRow(name string, xs []float64) []string {
	sum := stats.Summarize(xs)
	return []string{name, report.F(sum.Median), report.F(sum.P90), report.F(sum.P99), fmt.Sprint(sum.N)}
}

func sortRows(rows [][]string) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && less(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func less(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
