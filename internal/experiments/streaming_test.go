package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// streamScale is small enough for CI but large enough that every figure
// has non-trivial content in all nine cells.
func streamScale() Scale {
	return Scale{Name: "stream-diff", Machines2011: 60, Machines2019: 50,
		Horizon: 6 * sim.Hour, Warmup: 2 * sim.Hour, Seed: 3}
}

// TestStreamingReportMatchesRetained is the tentpole acceptance gate: the
// full nine-cell suite run with NoMemTrace must produce a report
// byte-identical to the retained-trace post-hoc path on the same seed.
func TestStreamingReportMatchesRetained(t *testing.T) {
	sc := streamScale()
	retained := tinySuiteAt(t, sc)

	streamed, err := RunSuiteStreaming(sc, StreamingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range streamed.Stats {
		if res.Trace != nil {
			t.Fatalf("cell %d retained a trace despite NoMemTrace", i)
		}
		if res.Rows.Total() == 0 {
			t.Fatalf("cell %d emitted no rows", i)
		}
	}

	var retainedReport, streamedReport bytes.Buffer
	if err := retained.WriteReport(&retainedReport); err != nil {
		t.Fatal(err)
	}
	if err := streamed.WriteReport(&streamedReport); err != nil {
		t.Fatal(err)
	}
	if retainedReport.Len() == 0 {
		t.Fatal("empty report")
	}
	if !bytes.Equal(retainedReport.Bytes(), streamedReport.Bytes()) {
		t.Fatalf("streaming report diverges from retained report\nfirst difference near byte %d",
			firstDiff(retainedReport.Bytes(), streamedReport.Bytes()))
	}
}

// TestStreamingReportDeterministicAcrossParallelism extends the engine's
// determinism contract to the reducer path: parallel reduction must not
// change a byte.
func TestStreamingReportDeterministicAcrossParallelism(t *testing.T) {
	sc := streamScale()
	sc.Parallelism = 1
	serial, err := RunSuiteStreaming(sc, StreamingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc.Parallelism = 8
	parallel, err := RunSuiteStreaming(sc, StreamingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteReport(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("streaming report bytes differ between parallelism 1 and 8")
	}
}

// TestStreamingExportShards drives the trace/io.go codecs through the
// sink pipeline: a streaming run exports per-cell CSV shards while
// simulating, and each shard must read back exactly the rows a retained
// run produced — including the tail rows only a correct Flush ordering
// delivers.
func TestStreamingExportShards(t *testing.T) {
	sc := streamScale()
	dir := t.TempDir()
	if _, err := RunSuiteStreaming(sc, StreamingOptions{ExportDir: dir, ExportBatch: 64}); err != nil {
		t.Fatal(err)
	}
	retained := tinySuiteAt(t, sc)
	traces := append([]*trace.MemTrace{retained.T2011}, retained.T2019...)
	for i, want := range traces {
		shard := filepath.Join(dir, ShardDirName(i, want.Meta.Cell))
		got, err := trace.ReadDir(shard)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if got.Meta != want.Meta {
			t.Fatalf("shard %d meta %+v != %+v", i, got.Meta, want.Meta)
		}
		if !reflect.DeepEqual(got.CollectionEvents, want.CollectionEvents) {
			t.Fatalf("shard %d collection events differ", i)
		}
		if !reflect.DeepEqual(got.InstanceEvents, want.InstanceEvents) {
			t.Fatalf("shard %d instance events differ", i)
		}
		if !reflect.DeepEqual(got.UsageRecords, want.UsageRecords) {
			t.Fatalf("shard %d usage records differ (tail lost to a missing flush?)", i)
		}
		if !reflect.DeepEqual(got.MachineEvents, want.MachineEvents) {
			t.Fatalf("shard %d machine events differ", i)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("expected 9 shards, found %d", len(entries))
	}
}

// tinySuiteAt caches retained suites per scale so the three tests above
// share one simulation of each configuration. Scale is not comparable
// (it carries a Replay slice), so the cache keys on its printed form.
var retainedCache = map[string]*Suite{}

func tinySuiteAt(t *testing.T, sc Scale) *Suite {
	t.Helper()
	key := fmt.Sprintf("%+v", sc)
	if s, ok := retainedCache[key]; ok {
		return s
	}
	s := RunSuite(sc)
	retainedCache[key] = s
	return s
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
