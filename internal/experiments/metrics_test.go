package experiments

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// tinyScale is the cheap per-case scale the metrics differential tests
// share (matching the per-policy determinism gate's size).
func tinyScale() Scale {
	return Scale{Name: "tiny", Machines2011: 40, Machines2019: 30,
		Horizon: 3 * sim.Hour, Warmup: sim.Hour, Seed: 11}
}

func suiteReport(t *testing.T, sc Scale) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := RunSuite(sc).WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
	return buf.Bytes()
}

// TestMetricsDoNotChangeReport is the suite-level pinned acceptance
// test for the observability contract: enabling the full metrics stack
// (run registry + timeline, per-cell registries, spec-order rollup)
// must leave the report byte-identical to a metrics-off run — at
// parallelism 1 and at parallelism 8.
func TestMetricsDoNotChangeReport(t *testing.T) {
	for _, par := range []int{1, 8} {
		sc := tinyScale()
		sc.Parallelism = par
		plain := suiteReport(t, sc)

		sc = tinyScale()
		sc.Parallelism = par
		reg := metrics.NewRegistry()
		sc.Metrics = reg
		sc.Timeline = metrics.NewTimeline()
		instrumented := suiteReport(t, sc)

		if !bytes.Equal(plain, instrumented) {
			t.Fatalf("parallelism %d: report bytes differ with metrics enabled", par)
		}
		if reg.Counter("sched_tasks_placed_total").Value() == 0 {
			t.Fatalf("parallelism %d: rollup recorded no placements", par)
		}
		if got := reg.Counter("run_cells_done_total").Value(); got != 9 {
			t.Fatalf("parallelism %d: run_cells_done_total = %d, want 9", par, got)
		}
		if sc.Timeline.Len() == 0 {
			t.Fatalf("parallelism %d: timeline recorded no spans", par)
		}
	}
}

// TestMetricsRollupIdenticalAcrossParallelism pins that the rolled-up
// snapshot itself — not just the report — is byte-identical at any
// parallelism: per-cell registries merge in spec order on the
// serialized OnResult path, so even t-digest quantiles agree.
func TestMetricsRollupIdenticalAcrossParallelism(t *testing.T) {
	snap := func(par int) []byte {
		sc := tinyScale()
		sc.Parallelism = par
		reg := metrics.NewRegistry()
		sc.Metrics = reg
		RunSuite(sc)
		var buf bytes.Buffer
		if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := snap(1)
	if parallel := snap(8); !bytes.Equal(serial, parallel) {
		t.Fatalf("rollup snapshots differ between parallelism 1 and 8:\n--- p1 ---\n%s\n--- p8 ---\n%s",
			serial, parallel)
	}
}

// TestStreamingMetricsMatchRetained pins that the streaming suite rolls
// up the same scheduler counters as the retained suite — the two paths
// instrument identical simulations.
func TestStreamingMetricsMatchRetained(t *testing.T) {
	run := func(stream bool) int64 {
		sc := tinyScale()
		reg := metrics.NewRegistry()
		sc.Metrics = reg
		if stream {
			if _, err := RunSuiteStreaming(sc, StreamingOptions{}); err != nil {
				t.Fatal(err)
			}
		} else {
			RunSuite(sc)
		}
		return reg.Counter("sched_tasks_placed_total").Value()
	}
	retained, streaming := run(false), run(true)
	if retained == 0 || retained != streaming {
		t.Fatalf("sched_tasks_placed_total: retained %d vs streaming %d", retained, streaming)
	}
}
