package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"testing"

	"repro/internal/sim"
)

// swapFiles exchanges the contents of two files.
func swapFiles(a, b string) error {
	ca, err := os.ReadFile(a)
	if err != nil {
		return err
	}
	cb, err := os.ReadFile(b)
	if err != nil {
		return err
	}
	if err := os.WriteFile(a, cb, 0o644); err != nil {
		return err
	}
	return os.WriteFile(b, ca, 0o644)
}

// pinScale is the frozen configuration behind TestReportGoldenHash.
func pinScale() Scale {
	return Scale{Name: "pin", Machines2011: 60, Machines2019: 50,
		Horizon: 4 * sim.Hour, Warmup: 1 * sim.Hour, Seed: 7, Parallelism: 4}
}

// TestReportGoldenHash pins the whole pipeline's bytes: the nine-cell
// suite report at a fixed scale and seed hashes to a frozen value. Any
// change to the default workload path (arrival processes, rng draw
// order, generator structure) that moves even one byte fails here —
// this is the "poisson stays byte-identical" acceptance gate for the
// arrival-process API. If a PR intends a versioned trace change, it
// must update this hash explicitly and say so.
func TestReportGoldenHash(t *testing.T) {
	const (
		wantHash  = "b2a0d67f4019849a1c63841508fdec5fa1ce29fe72cb55c694ce93b46159d5f6"
		wantBytes = 14057
	)
	s := RunSuite(pinScale())
	var b bytes.Buffer
	if err := s.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(b.Bytes())); got != wantHash || b.Len() != wantBytes {
		t.Fatalf("pinned report moved: sha256 %s (%d bytes), want %s (%d bytes)",
			got, b.Len(), wantHash, wantBytes)
	}
}

func replayScale() Scale {
	return Scale{Name: "replay", Machines2011: 40, Machines2019: 30,
		Horizon: 3 * sim.Hour, Warmup: 1 * sim.Hour, Seed: 5}
}

// TestSuiteRecordReplayRoundTrip pins the suite-level record/replay
// contract: workloads recorded by one run save to disk, load back, and
// replay to the recording run's exact report — at parallelism 1 and 8
// alike — while a policy change under the same replayed workloads moves
// the report.
func TestSuiteRecordReplayRoundTrip(t *testing.T) {
	report := func(sc Scale) []byte {
		t.Helper()
		var b bytes.Buffer
		if err := RunSuite(sc).WriteReport(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}

	rec := replayScale()
	rec.RecordWorkload = true
	suite := RunSuite(rec)
	dir := t.TempDir()
	if err := SaveWorkloads(dir, suite.Stats); err != nil {
		t.Fatal(err)
	}
	var recReport bytes.Buffer
	if err := suite.WriteReport(&recReport); err != nil {
		t.Fatal(err)
	}

	base := replayScale()
	recs, err := LoadWorkloads(dir, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Replay = recs

	p1 := base
	p1.Parallelism = 1
	r1 := report(p1)
	p8 := base
	p8.Parallelism = 8
	r8 := report(p8)
	if !bytes.Equal(r1, r8) {
		t.Fatalf("replay reports differ between parallelism 1 and 8 (first diff at byte %d)", firstDiff(r1, r8))
	}
	if !bytes.Equal(r1, recReport.Bytes()) {
		t.Fatalf("replay report differs from the recording run's report (first diff at byte %d)",
			firstDiff(r1, recReport.Bytes()))
	}

	alt := base
	alt.Policy = "best-fit"
	if bytes.Equal(report(alt), r1) {
		t.Fatal("best-fit under replayed workloads produced the baseline report — policy inert under replay")
	}
}

// TestLoadWorkloadsRejectsCellMismatch: loading a directory recorded for
// different cells must fail loudly, not replay the wrong workload.
func TestLoadWorkloadsRejectsCellMismatch(t *testing.T) {
	sc := replayScale()
	sc.RecordWorkload = true
	suite := RunSuite(sc)
	dir := t.TempDir()
	if err := SaveWorkloads(dir, suite.Stats); err != nil {
		t.Fatal(err)
	}
	// Swap two cells' files: names still line up with the suite order,
	// but the recorded Meta.Cell inside no longer matches.
	a := dir + "/" + WorkloadFileName(1, "a")
	b := dir + "/" + WorkloadFileName(2, "b")
	if err := swapFiles(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWorkloads(dir, replayScale()); err == nil {
		t.Fatal("LoadWorkloads accepted a directory with mismatched cell recordings")
	}
}
