package experiments

import (
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/analysis/streaming"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/workload"
)

// StreamingSuite is the NoMemTrace counterpart of Suite: instead of nine
// retained traces it holds nine streaming reducers whose state was folded
// online while the cells simulated. Its report is byte-identical to the
// retained path's for the same scale and seed.
type StreamingSuite struct {
	Scale Scale
	R2011 *streaming.CellReducer
	R2019 []*streaming.CellReducer // cells a–h in order
	Stats []core.CellResult        // CellResult.Trace is nil by design
}

// StreamingOptions configures a NoMemTrace suite run.
type StreamingOptions struct {
	// ExportDir, when non-empty, additionally writes each cell's trace as
	// sharded CSV while simulating: one subdirectory per cell (named
	// cell-<index>-<name>), each in the WriteDir layout, fed through a
	// BufferedSink so the per-row cost is amortized.
	ExportDir string
	// ExportBatch is the export buffering batch size; <= 0 means
	// trace.DefaultBatchSize.
	ExportBatch int
}

// NewCellReducerFor builds the streaming reducer matching one cell spec:
// metadata equal to what core.Run would stamp on a retained trace, and
// the Figure 6 snapshot pinned at mid-horizon.
func NewCellReducerFor(spec engine.Spec) *streaming.CellReducer {
	return streaming.NewCellReducer(streaming.Config{
		Meta: trace.Meta{
			Era:      spec.Profile.Era,
			Cell:     spec.Profile.Name,
			Duration: spec.Options.Horizon,
			Machines: spec.Profile.Machines,
			Seed:     spec.Options.Seed,
		},
		SnapshotAt: spec.Options.Horizon / 2,
	})
}

// SuiteReducers builds the nine per-cell reducers for a scale, with
// metadata matching what core.Run would stamp on a retained trace and the
// Figure 6 snapshot pinned at mid-horizon.
func SuiteReducers(sc Scale) (r2011 *streaming.CellReducer, r2019 []*streaming.CellReducer) {
	specs := SuiteSpecs(sc)
	reducers := make([]*streaming.CellReducer, len(specs))
	for i, spec := range specs {
		reducers[i] = NewCellReducerFor(spec)
	}
	return reducers[0], reducers[1:]
}

// ShardDirName names cell i's export shard (index 0 is the 2011 cell).
func ShardDirName(i int, cell string) string {
	return fmt.Sprintf("cell-%d-%s", i, cell)
}

// RunSuiteStreaming simulates the nine-cell suite with NoMemTrace: every
// trace row streams through the per-cell reducer (and optional CSV export
// shard) and is dropped, so memory stays bounded by per-job reducer state
// instead of growing with the horizon.
func RunSuiteStreaming(sc Scale, opts StreamingOptions) (*StreamingSuite, error) {
	specs := SuiteSpecs(sc)
	r2011, r2019 := SuiteReducers(sc)
	reducers := append([]*streaming.CellReducer{r2011}, r2019...)

	engine.AttachSinks(specs, func(i int) trace.Sink { return reducers[i] })
	var exports []*trace.DirSink
	for i := range specs {
		specs[i].Options.NoMemTrace = true
		if opts.ExportDir != "" {
			shard := filepath.Join(opts.ExportDir, ShardDirName(i, specs[i].Profile.Name))
			ds, err := trace.NewDirSink(shard, reducers[i].Meta())
			if err != nil {
				closeExports(exports)
				return nil, err
			}
			exports = append(exports, ds)
			// core.Run flushes the pipeline at end of simulation, which
			// drains this buffer into the shard before Close below.
			specs[i].Options.ExtraSinks = append(specs[i].Options.ExtraSinks,
				trace.NewBufferedSink(ds, opts.ExportBatch))
		}
	}

	s := &StreamingSuite{Scale: sc, R2011: r2011, R2019: r2019}
	ri := engine.NewRunInstruments(sc.Metrics, sc.Timeline, len(specs))
	ri.Apply(specs)
	results := engine.Run(specs, ri.Wrap(sc.engineOptions(len(specs))))
	for _, r := range results {
		s.Stats = append(s.Stats, *r)
	}
	for _, ds := range exports {
		if err := ds.Close(); err != nil {
			closeExports(exports)
			return nil, err
		}
	}
	return s, nil
}

func closeExports(exports []*trace.DirSink) {
	for _, ds := range exports {
		ds.Close()
	}
}

// RateNormalization2019 converts per-cell 2019 rates to paper scale.
func (s *StreamingSuite) RateNormalization2019() float64 {
	return float64(workload.ReferenceMachines) / float64(s.Scale.Machines2019)
}

// RateNormalization2011 is the 2011 counterpart.
func (s *StreamingSuite) RateNormalization2011() float64 {
	return float64(workload.ReferenceMachines) / float64(s.Scale.Machines2011)
}

func (s *StreamingSuite) analyses() *suiteAnalyses {
	a := &suiteAnalyses{sc: s.Scale, c2011: s.R2011}
	for _, r := range s.R2019 {
		a.c2019 = append(a.c2019, r)
	}
	return a
}

// WriteReport emits every artifact to w from reducer state alone.
func (s *StreamingSuite) WriteReport(w io.Writer) error { return s.analyses().WriteReport(w) }
