package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/workload"
)

// WorkloadFileName names cell i's recording file within a workload
// directory (index 0 is the 2011 cell, then 2019 a–h — the SuiteSpecs
// order).
func WorkloadFileName(i int, cell string) string {
	return fmt.Sprintf("workload-%d-%s.rec", i, cell)
}

// SaveWorkloads writes a recorded suite's workloads — one versioned
// recording file per cell — into dir (created if missing). results must
// come from a run with Scale.RecordWorkload set; a cell without a
// recording is an error, not a silent skip.
func SaveWorkloads(dir string, results []core.CellResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range results {
		res := &results[i]
		if res.Workload == nil {
			return fmt.Errorf("experiments: cell %d (%s) has no workload recording — run with RecordWorkload set",
				i, res.Profile.Name)
		}
		path := filepath.Join(dir, WorkloadFileName(i, res.Profile.Name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if _, err := res.Workload.WriteTo(f); err != nil {
			f.Close()
			return fmt.Errorf("experiments: writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadWorkloads reads the suite's per-cell recordings back from dir,
// index-aligned with SuiteSpecs for the given scale — assign the result
// to Scale.Replay to replay the suite. Every cell's file must exist and
// parse; a partial workload directory is an error.
func LoadWorkloads(dir string, sc Scale) ([]*workload.Recording, error) {
	profiles := SuiteProfiles(sc)
	recs := make([]*workload.Recording, len(profiles))
	for i, p := range profiles {
		path := filepath.Join(dir, WorkloadFileName(i, p.Name))
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("experiments: loading workload for cell %d (%s): %w", i, p.Name, err)
		}
		rec, err := workload.ReadRecording(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: parsing %s: %w", path, err)
		}
		if rec.Meta.Cell != p.Name {
			return nil, fmt.Errorf("experiments: %s records cell %q, want %q", path, rec.Meta.Cell, p.Name)
		}
		recs[i] = rec
	}
	return recs, nil
}
