package experiments

import (
	"runtime"
	"sync"
	"time"
)

// PeakHeapDuring samples runtime.MemStats.HeapAlloc while fn runs and
// returns the maximum observed, in bytes. It backs the CI memory-ceiling
// gate and the suite benchmarks' peak-heap-MB metric — one sampler, so
// the budget and the benchmark always measure the same thing. Sampling
// at 20ms misses only very short spikes, which is fine for suite-length
// work.
func PeakHeapDuring(fn func()) uint64 {
	runtime.GC()
	var mu sync.Mutex
	var peak uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			runtime.ReadMemStats(&ms)
			mu.Lock()
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			mu.Unlock()
			select {
			case <-done:
				return
			case <-ticker.C:
			}
		}
	}()
	fn()
	close(done)
	wg.Wait()
	return peak
}
