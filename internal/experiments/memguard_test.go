package experiments

import (
	"io"
	"os"
	"strconv"
	"testing"

	"repro/internal/metrics"
)

// defaultMemBudgetMB is the peak-HeapAlloc ceiling for the LargeScale
// streaming suite. Measured on the PR machine: ~500 MB streaming versus
// ~5400 MB with retained traces, so the budget sits ~3× above the
// streaming baseline (headroom for runner core counts — more concurrent
// cells means more transient simulation state) and ~3.5× below the
// trace-retention failure mode it exists to catch.
const defaultMemBudgetMB = 1536

// TestLargeScaleStreamingMemoryCeiling is CI's memory-regression gate:
// the LargeScale nine-cell suite must complete with NoMemTrace inside a
// fixed heap budget, so a change that quietly reintroduces trace
// retention (or unbounded reducer state) cannot land. The run takes tens
// of seconds, so it only executes when STREAM_MEM_GUARD=1 is set (the CI
// workflow sets it; locally: STREAM_MEM_GUARD=1 go test ./internal/experiments -run MemoryCeiling).
func TestLargeScaleStreamingMemoryCeiling(t *testing.T) {
	if os.Getenv("STREAM_MEM_GUARD") != "1" {
		t.Skip("set STREAM_MEM_GUARD=1 to run the memory-ceiling guard")
	}
	budgetMB := defaultMemBudgetMB
	if s := os.Getenv("STREAM_MEM_BUDGET_MB"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad STREAM_MEM_BUDGET_MB %q: %v", s, err)
		}
		budgetMB = v
	}

	var reportErr error
	peak := metrics.PeakHeapDuring(func() {
		suite, err := RunSuiteStreaming(LargeScale(), StreamingOptions{})
		if err != nil {
			reportErr = err
			return
		}
		reportErr = suite.WriteReport(io.Discard)
	})
	if reportErr != nil {
		t.Fatal(reportErr)
	}
	peakMB := float64(peak) / 1e6
	t.Logf("LargeScale streaming suite peak HeapAlloc: %.1f MB (budget %d MB)", peakMB, budgetMB)
	if peakMB > float64(budgetMB) {
		t.Fatalf("peak HeapAlloc %.1f MB exceeds the %d MB streaming budget — did trace retention creep back in?",
			peakMB, budgetMB)
	}
}
