package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/streaming"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// scalarOnly hides every optional sink capability — UsageBatcher in
// particular — so trace.EmitUsageBatch falls back to per-record delivery
// downstream of it. Flush passes through: buffered tails must still
// drain, that is delivery shape, not batching.
type scalarOnly struct{ out trace.Sink }

func (s scalarOnly) CollectionEvent(ev trace.CollectionEvent) { s.out.CollectionEvent(ev) }
func (s scalarOnly) InstanceEvent(ev trace.InstanceEvent)     { s.out.InstanceEvent(ev) }
func (s scalarOnly) Usage(rec trace.UsageRecord)              { s.out.Usage(rec) }
func (s scalarOnly) MachineEvent(ev trace.MachineEvent)       { s.out.MachineEvent(ev) }
func (s scalarOnly) Flush()                                   { trace.Flush(s.out) }

// runSuiteStreamingDelivery is RunSuiteStreaming with the usage delivery
// mode forced: batched leaves the pipeline as production wires it; scalar
// interposes scalarOnly around every reducer, export buffer and export
// writer, so each usage row travels the pre-batching one-call-per-record
// path end to end.
func runSuiteStreamingDelivery(t *testing.T, sc Scale, exportDir string, scalar bool) *StreamingSuite {
	t.Helper()
	specs := SuiteSpecs(sc)
	r2011, r2019 := SuiteReducers(sc)
	reducers := append([]*streaming.CellReducer{r2011}, r2019...)

	engine.AttachSinks(specs, func(i int) trace.Sink {
		if scalar {
			return scalarOnly{reducers[i]}
		}
		return reducers[i]
	})
	var exports []*trace.DirSink
	for i := range specs {
		specs[i].Options.NoMemTrace = true
		shard := filepath.Join(exportDir, ShardDirName(i, specs[i].Profile.Name))
		ds, err := trace.NewDirSink(shard, reducers[i].Meta())
		if err != nil {
			t.Fatal(err)
		}
		exports = append(exports, ds)
		var export trace.Sink
		if scalar {
			export = scalarOnly{trace.NewBufferedSink(scalarOnly{ds}, 0)}
		} else {
			export = trace.NewBufferedSink(ds, 0)
		}
		specs[i].Options.ExtraSinks = append(specs[i].Options.ExtraSinks, export)
	}

	s := &StreamingSuite{Scale: sc, R2011: r2011, R2019: r2019}
	for _, r := range engine.Run(specs, engine.Options{Parallelism: sc.Parallelism}) {
		s.Stats = append(s.Stats, *r)
	}
	for _, ds := range exports {
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestBatchedScalarDeliveryByteIdentical is the batching acceptance gate:
// at the same seed, batched and scalar usage delivery must produce
// byte-identical reports and byte-identical CSV export shards, at
// parallelism 1 and 8. Any batch that splits, reorders or drops a record
// relative to scalar delivery shows up here as a byte diff.
func TestBatchedScalarDeliveryByteIdentical(t *testing.T) {
	sc := Scale{Name: "tiny", Machines2011: 40, Machines2019: 30,
		Horizon: 3 * sim.Hour, Warmup: sim.Hour, Seed: 11}

	var firstReport []byte
	for _, par := range []int{1, 8} {
		sc.Parallelism = par
		batchedDir, scalarDir := t.TempDir(), t.TempDir()
		batched := runSuiteStreamingDelivery(t, sc, batchedDir, false)
		scalar := runSuiteStreamingDelivery(t, sc, scalarDir, true)

		var rb, rs bytes.Buffer
		if err := batched.WriteReport(&rb); err != nil {
			t.Fatal(err)
		}
		if err := scalar.WriteReport(&rs); err != nil {
			t.Fatal(err)
		}
		if rb.Len() == 0 {
			t.Fatal("empty report")
		}
		if !bytes.Equal(rb.Bytes(), rs.Bytes()) {
			t.Fatalf("parallelism %d: batched and scalar reports differ", par)
		}
		if firstReport == nil {
			firstReport = rb.Bytes()
		} else if !bytes.Equal(firstReport, rb.Bytes()) {
			t.Fatalf("parallelism %d: report differs from parallelism 1", par)
		}

		compareShardBytes(t, batchedDir, scalarDir)
	}
}

// compareShardBytes asserts the two export trees hold the same files with
// the same bytes.
func compareShardBytes(t *testing.T, wantDir, gotDir string) {
	t.Helper()
	n := 0
	err := filepath.Walk(wantDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(wantDir, path)
		if err != nil {
			return err
		}
		want, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		got, err := os.ReadFile(filepath.Join(gotDir, rel))
		if err != nil {
			return err
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("export shard file %s differs between batched and scalar delivery", rel)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no export files compared")
	}
}
