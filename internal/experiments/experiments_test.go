package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

var (
	suiteOnce sync.Once
	suite     *Suite
)

// tinySuite runs a very small 9-cell suite once and shares it.
func tinySuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		sc := Scale{Name: "tiny", Machines2011: 60, Machines2019: 50,
			Horizon: 6 * sim.Hour, Warmup: 2 * sim.Hour, Seed: 3}
		suite = RunSuite(sc)
	})
	return suite
}

func TestRunSuiteShape(t *testing.T) {
	s := tinySuite(t)
	if s.T2011 == nil || len(s.T2019) != 8 {
		t.Fatalf("suite shape: %v cells", len(s.T2019))
	}
	if len(s.Stats) != 9 {
		t.Fatalf("stats %d", len(s.Stats))
	}
	for i, tr := range s.T2019 {
		if tr.Meta.Era != trace.Era2019 {
			t.Fatalf("cell %d era %v", i, tr.Meta.Era)
		}
		if len(tr.CollectionEvents) == 0 {
			t.Fatalf("cell %d empty", i)
		}
	}
	if s.T2011.Meta.Era != trace.Era2011 {
		t.Fatal("2011 era")
	}
}

func TestCellsHaveDisjointIDs(t *testing.T) {
	s := tinySuite(t)
	seen := map[trace.CollectionID]bool{}
	for _, tr := range append([]*trace.MemTrace{s.T2011}, s.T2019...) {
		for _, id := range tr.Collections() {
			if seen[id] {
				t.Fatalf("collection id %d appears in two cells", id)
			}
			seen[id] = true
		}
	}
}

func TestAllTracesValidate(t *testing.T) {
	s := tinySuite(t)
	for _, tr := range append([]*trace.MemTrace{s.T2011}, s.T2019...) {
		if v := trace.Validate(tr, trace.DefaultValidateOptions()); len(v) != 0 {
			t.Fatalf("cell %s: %d violations, first %v", tr.Meta.Cell, len(v), v[0])
		}
	}
}

func TestWriteReportContainsEveryArtifact(t *testing.T) {
	s := tinySuite(t)
	var b strings.Builder
	if err := s.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2a", "Figure 2b", "Figure 2c", "Figure 2d",
		"Figure 3", "Figure 4a", "Figure 4b", "Figure 4c", "Figure 4d", "Figure 5",
		"Figure 6", "Figure 7", "§5.1", "§5.2", "Figure 8", "Figure 9",
		"Figure 10", "Figure 11", "Table 2 (2011)", "Table 2 (2019)",
		"Figure 12", "Figure 13", "Figure 14",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Spot-check paper reference values are present as annotations.
	for _, want := range []string{"3.7x", "0.97", "96.6%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing paper annotation %q", want)
		}
	}
}

func TestScalesAreOrdered(t *testing.T) {
	small, def, large := SmallScale(), DefaultScale(), LargeScale()
	if !(small.Machines2019 < def.Machines2019 && def.Machines2019 < large.Machines2019) {
		t.Fatal("machine scaling not monotone")
	}
	if !(small.Horizon < def.Horizon && def.Horizon < large.Horizon) {
		t.Fatal("horizon scaling not monotone")
	}
	if small.Warmup >= small.Horizon {
		t.Fatal("warmup must be below horizon")
	}
}

func TestRateNormalization(t *testing.T) {
	s := tinySuite(t)
	if got := s.RateNormalization2019(); got != 12000.0/50 {
		t.Fatalf("2019 normalization %v", got)
	}
	if got := s.RateNormalization2011(); got != 12000.0/60 {
		t.Fatalf("2011 normalization %v", got)
	}
}
