package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// TestSuiteDeterministicAcrossParallelism is the engine's acceptance
// gate: the small-scale suite at parallelism 8 must produce the same
// trace rows and the same report bytes as at parallelism 1.
func TestSuiteDeterministicAcrossParallelism(t *testing.T) {
	sc := SmallScale()
	sc.Parallelism = 1
	serial := RunSuite(sc)
	sc.Parallelism = 8
	parallel := RunSuite(sc)

	check := func(cell string, a, b *trace.MemTrace) {
		t.Helper()
		if !reflect.DeepEqual(a.CollectionEvents, b.CollectionEvents) {
			t.Fatalf("cell %s: collection event streams differ", cell)
		}
		if !reflect.DeepEqual(a.InstanceEvents, b.InstanceEvents) {
			t.Fatalf("cell %s: instance event streams differ", cell)
		}
		if !reflect.DeepEqual(a.UsageRecords, b.UsageRecords) {
			t.Fatalf("cell %s: usage record streams differ", cell)
		}
		if !reflect.DeepEqual(a.MachineEvents, b.MachineEvents) {
			t.Fatalf("cell %s: machine event streams differ", cell)
		}
	}
	check("2011", serial.T2011, parallel.T2011)
	for i := range serial.T2019 {
		check(serial.T2019[i].Meta.Cell, serial.T2019[i], parallel.T2019[i])
	}

	var serialReport, parallelReport bytes.Buffer
	if err := serial.WriteReport(&serialReport); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteReport(&parallelReport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialReport.Bytes(), parallelReport.Bytes()) {
		t.Fatal("WriteReport bytes differ between parallelism 1 and 8")
	}
	if serialReport.Len() == 0 {
		t.Fatal("empty report")
	}
}
