package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestSuiteDeterministicAcrossParallelism is the engine's acceptance
// gate: the small-scale suite at parallelism 8 must produce the same
// trace rows and the same report bytes as at parallelism 1.
func TestSuiteDeterministicAcrossParallelism(t *testing.T) {
	sc := SmallScale()
	sc.Parallelism = 1
	serial := RunSuite(sc)
	sc.Parallelism = 8
	parallel := RunSuite(sc)

	check := func(cell string, a, b *trace.MemTrace) {
		t.Helper()
		if !reflect.DeepEqual(a.CollectionEvents, b.CollectionEvents) {
			t.Fatalf("cell %s: collection event streams differ", cell)
		}
		if !reflect.DeepEqual(a.InstanceEvents, b.InstanceEvents) {
			t.Fatalf("cell %s: instance event streams differ", cell)
		}
		if !reflect.DeepEqual(a.UsageRecords, b.UsageRecords) {
			t.Fatalf("cell %s: usage record streams differ", cell)
		}
		if !reflect.DeepEqual(a.MachineEvents, b.MachineEvents) {
			t.Fatalf("cell %s: machine event streams differ", cell)
		}
	}
	check("2011", serial.T2011, parallel.T2011)
	for i := range serial.T2019 {
		check(serial.T2019[i].Meta.Cell, serial.T2019[i], parallel.T2019[i])
	}

	var serialReport, parallelReport bytes.Buffer
	if err := serial.WriteReport(&serialReport); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteReport(&parallelReport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialReport.Bytes(), parallelReport.Bytes()) {
		t.Fatal("WriteReport bytes differ between parallelism 1 and 8")
	}
	if serialReport.Len() == 0 {
		t.Fatal("empty report")
	}
}

// TestSuiteDeterministicPerPolicy runs the parallelism gate once per
// registered placement policy at a tiny scale: every brain in the zoo
// must keep the byte-identical determinism contract — identical event
// streams at parallelism 1 and 8 — not just the era defaults.
func TestSuiteDeterministicPerPolicy(t *testing.T) {
	for _, p := range scheduler.Policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sc := Scale{Name: "tiny", Machines2011: 40, Machines2019: 30,
				Horizon: 3 * sim.Hour, Warmup: sim.Hour, Seed: 11}
			sc.Policy = p.String()
			sc.Parallelism = 1
			serial := RunSuite(sc)
			sc.Parallelism = 8
			parallel := RunSuite(sc)

			check := func(cell string, a, b *trace.MemTrace) {
				t.Helper()
				if !reflect.DeepEqual(a.CollectionEvents, b.CollectionEvents) ||
					!reflect.DeepEqual(a.InstanceEvents, b.InstanceEvents) ||
					!reflect.DeepEqual(a.UsageRecords, b.UsageRecords) ||
					!reflect.DeepEqual(a.MachineEvents, b.MachineEvents) {
					t.Fatalf("cell %s: event streams differ between parallelism 1 and 8", cell)
				}
			}
			check("2011", serial.T2011, parallel.T2011)
			for i := range serial.T2019 {
				check(serial.T2019[i].Meta.Cell, serial.T2019[i], parallel.T2019[i])
			}
			if serial.Stats[1].Sched.TasksPlaced == 0 {
				t.Fatalf("policy %v: degenerate run, no tasks placed", p)
			}
		})
	}
}
