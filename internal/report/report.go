// Package report renders analysis results as aligned text tables and CSV —
// the harness's equivalent of the paper's figures and tables. Each figure
// is emitted as the series of points a plotting tool would consume, plus a
// quantile summary for quick reading.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float compactly (4 significant digits).
func F(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return strconv.FormatFloat(v*100, 'f', 1, 64) + "%" }

// CCDFQuantiles summarizes a sample by the x-values at which the CCDF
// crosses the given probabilities (i.e. upper quantiles), labelled for a
// figure report.
func CCDFQuantiles(name string, xs []float64, probs []float64) []string {
	row := []string{name}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range probs {
		row = append(row, F(stats.QuantileSorted(sorted, 1-p)))
	}
	return row
}

// CCDFSeries writes one or more CCDFs evaluated on a shared grid, one row
// per grid point, one column per series.
func CCDFSeries(w io.Writer, title string, grid []float64, series map[string][]float64) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	headers := append([]string{"x"}, names...)
	ccdfs := make(map[string][]stats.CCDFPoint, len(series))
	for name, xs := range series {
		ccdfs[name] = stats.CCDF(xs)
	}
	rows := make([][]string, 0, len(grid))
	for _, x := range grid {
		row := []string{F(x)}
		for _, name := range names {
			row = append(row, F(stats.CCDFAt(ccdfs[name], x)))
		}
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// TierSeriesTable writes an hourly per-tier series (Figures 2/4) for one
// resource dimension ("cpu" or "mem").
func TierSeriesTable(w io.Writer, title string, s analysis.TierSeries, resource string) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	headers := []string{"hour"}
	for _, tier := range trace.Tiers() {
		headers = append(headers, tier.String())
	}
	headers = append(headers, "total")
	rows := make([][]string, 0, len(s.Hours))
	for i := range s.Hours {
		row := []string{strconv.Itoa(int(s.Hours[i]))}
		total := 0.0
		for _, tier := range trace.Tiers() {
			var v float64
			if resource == "mem" {
				v = s.Mem[tier][i]
			} else {
				v = s.CPU[tier][i]
			}
			total += v
			row = append(row, F(v))
		}
		row = append(row, F(total))
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// TierAveragesTable writes Figures 3/5's per-cell bars.
func TierAveragesTable(w io.Writer, title string, cells []analysis.TierAverages, resource string) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	headers := []string{"cell"}
	for _, tier := range trace.Tiers() {
		headers = append(headers, tier.String())
	}
	headers = append(headers, "total")
	var rows [][]string
	for _, c := range cells {
		row := []string{c.Cell}
		total := 0.0
		for _, tier := range trace.Tiers() {
			var v float64
			if resource == "mem" {
				v = c.Mem[tier]
			} else {
				v = c.CPU[tier]
			}
			total += v
			row = append(row, F(v))
		}
		row = append(row, F(total))
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// Table1 writes the paper's Table 1 comparison.
func Table1(w io.Writer, rows []analysis.Table1Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Metric, r.V2011, r.V2019}
	}
	return Table(w, []string{"Metric", "2011", "2019"}, out)
}

// Table2 writes one era's pair of Table 2 columns.
func Table2(w io.Writer, title string, cpu, mem analysis.Table2Column) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	rows := [][]string{
		{"median", F(cpu.Median), F(mem.Median)},
		{"mean", F(cpu.Mean), F(mem.Mean)},
		{"variance", F(cpu.Variance), F(mem.Variance)},
		{"90%ile", F(cpu.P90), F(mem.P90)},
		{"99%ile", F(cpu.P99), F(mem.P99)},
		{"99.9%ile", F(cpu.P999), F(mem.P999)},
		{"maximum", F(cpu.Max), F(mem.Max)},
		{"top 1% jobs load", Pct(cpu.Top1Share), Pct(mem.Top1Share)},
		{"top 0.1% jobs load", Pct(cpu.Top01Share), Pct(mem.Top01Share)},
		{"C^2", F(cpu.C2), F(mem.C2)},
		{"Pareto(alpha)", F(cpu.ParetoAlpha), F(mem.ParetoAlpha)},
		{"R^2", Pct(cpu.ParetoR2), Pct(mem.ParetoR2)},
		{"jobs", strconv.Itoa(cpu.N), strconv.Itoa(mem.N)},
	}
	return Table(w, []string{"Measure", "NCU-hours", "NMU-hours"}, rows)
}

// Transitions writes Figure 7's transition counts.
func Transitions(w io.Writer, title string, ts []analysis.Transition, limit int) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if limit <= 0 || limit > len(ts) {
		limit = len(ts)
	}
	rows := make([][]string, 0, limit)
	for _, t := range ts[:limit] {
		rows = append(rows, []string{t.From, t.To, strconv.Itoa(t.Count)})
	}
	return Table(w, []string{"From", "To", "Count"}, rows)
}

// WriteCSV writes rows (with a header) as CSV — for feeding external
// plotting tools.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
