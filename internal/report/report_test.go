package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/trace"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"a", "long-header"}, [][]string{
		{"1", "2"},
		{"333", "4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "long-header") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestFormatters(t *testing.T) {
	if F(0.123456) != "0.1235" {
		t.Fatalf("F: %q", F(0.123456))
	}
	if Pct(0.5) != "50.0%" {
		t.Fatalf("Pct: %q", Pct(0.5))
	}
}

func TestCCDFQuantiles(t *testing.T) {
	row := CCDFQuantiles("series", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, []float64{0.5, 0.1})
	if row[0] != "series" || len(row) != 3 {
		t.Fatalf("row %v", row)
	}
	// P(X > x) = 0.5 at the median.
	if row[1] != "5.5" {
		t.Fatalf("median %q", row[1])
	}
}

func TestCCDFSeries(t *testing.T) {
	var b strings.Builder
	err := CCDFSeries(&b, "Figure test", []float64{0, 5, 10}, map[string][]float64{
		"a": {1, 2, 3},
		"b": {6, 7, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Figure test") || !strings.Contains(out, "a") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTierSeriesTable(t *testing.T) {
	s := analysis.TierSeries{
		Hours: []float64{0, 1},
		CPU:   map[trace.Tier][]float64{},
		Mem:   map[trace.Tier][]float64{},
	}
	for _, tier := range trace.Tiers() {
		s.CPU[tier] = []float64{0.1, 0.2}
		s.Mem[tier] = []float64{0.05, 0.1}
	}
	var b strings.Builder
	if err := TierSeriesTable(&b, "Figure 2a", s, "cpu"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "free") || !strings.Contains(b.String(), "0.4") {
		t.Fatalf("output:\n%s", b.String())
	}
	b.Reset()
	if err := TierSeriesTable(&b, "Figure 2c", s, "mem"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.2") {
		t.Fatalf("mem output:\n%s", b.String())
	}
}

func TestTierAveragesTable(t *testing.T) {
	cells := []analysis.TierAverages{
		{Cell: "a", CPU: map[trace.Tier]float64{trace.TierProduction: 0.4}, Mem: map[trace.Tier]float64{trace.TierProduction: 0.3}},
	}
	var b strings.Builder
	if err := TierAveragesTable(&b, "Figure 3", cells, "cpu"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.4") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestTable1And2(t *testing.T) {
	var b strings.Builder
	if err := Table1(&b, []analysis.Table1Row{{Metric: "Cells", V2011: "1", V2019: "8"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Cells") {
		t.Fatal("table1 output")
	}
	b.Reset()
	col := analysis.Table2Column{Median: 0.001, Mean: 1, C2: 100, Top1Share: 0.9, ParetoAlpha: 0.7, ParetoR2: 0.99, N: 10}
	if err := Table2(&b, "Table 2 (2019)", col, col); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "C^2") || !strings.Contains(out, "90.0%") {
		t.Fatalf("table2 output:\n%s", out)
	}
}

func TestTransitions(t *testing.T) {
	var b strings.Builder
	ts := []analysis.Transition{
		{From: "SUBMIT", To: "SCHEDULE", Count: 100},
		{From: "EVICT", To: "SUBMIT", Count: 1},
	}
	if err := Transitions(&b, "Figure 7", ts, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "SCHEDULE") || strings.Contains(out, "EVICT") {
		t.Fatalf("limit not applied:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, []string{"x", "y"}, [][]string{{"1", "2"}}); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x,y\n1,2\n" {
		t.Fatalf("csv: %q", b.String())
	}
}
