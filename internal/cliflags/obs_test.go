package cliflags

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parse registers the shared flags on a fresh FlagSet and parses args.
func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := Register(fs, "seed")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestObservabilityLifecycle(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "snap.prom")
	timelinePath := filepath.Join(dir, "timeline.json")
	c := parse(t, "-http", "127.0.0.1:0", "-metrics", metricsPath, "-timeline", timelinePath)

	var logs []string
	obs, err := c.StartObservability(func(format string, args ...any) {
		logs = append(logs, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Reg == nil || obs.Timeline == nil {
		t.Fatal("registry or timeline missing with -http and -timeline set")
	}
	if len(logs) == 0 || !strings.Contains(logs[0], "live observability") {
		t.Fatalf("listen address not logged: %v", logs)
	}

	k := obs.Knobs(c.Knobs())
	if k.Metrics != obs.Reg || k.Timeline != obs.Timeline {
		t.Fatal("Knobs did not attach the observability surfaces")
	}

	rs := obs.MeasureRun(func() {
		obs.Reg.Counter("worked_total").Inc()
		obs.Timeline.Span("run", "run", 0)()
	})
	if rs.Elapsed < 0 {
		t.Fatalf("bad run stats: %+v", rs)
	}
	if !strings.Contains(rs.String(), "peak heap") {
		t.Fatalf("run summary format changed: %q", rs)
	}

	if err := obs.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"worked_total 1", "run_wall_seconds", "peak_heap_bytes"} {
		if !strings.Contains(string(snap), want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, snap)
		}
	}
	tl, err := os.ReadFile(timelinePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tl), `"ph":"X"`) {
		t.Errorf("timeline not chrome trace JSON:\n%s", tl)
	}
}

func TestObservabilityServerServes(t *testing.T) {
	c := parse(t, "-http", "127.0.0.1:0")
	var addr string
	obs, err := c.StartObservability(func(format string, args ...any) {
		if len(args) == 1 {
			if s, ok := args[0].(string); ok {
				addr = strings.TrimSuffix(strings.TrimPrefix(s, "http://"), "/")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	if addr == "" {
		t.Fatal("no address logged")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
}

func TestObservabilityOffByDefault(t *testing.T) {
	c := parse(t)
	obs, err := c.StartObservability(func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Reg == nil {
		t.Fatal("run registry must always exist (the run summary records into it)")
	}
	if obs.Timeline != nil {
		t.Fatal("timeline allocated with nothing to render it")
	}
	if err := obs.Close(); err != nil {
		t.Fatal(err)
	}
}
