// Package cliflags registers and validates the command-line flags the
// three CLIs (borgexperiments, borgsweep, borgfleet) share: -seed,
// -parallel, -progress, -policy, -arrival, -cpuprofile, -memprofile,
// and the observability set (-http, -metrics, -timeline). Before this
// package each binary re-declared the set by hand, and the copies
// drifted in help text and validation; now every CLI registers the
// shared flags through one Common value, validates name-registered
// knobs the same way, and converts them to core.RunKnobs with one call.
// StartObservability owns the shared observability lifecycle: the run
// registry, the optional live HTTP server, the snapshot/timeline file
// exports at Close, and the one-format run summary (elapsed wall time +
// peak HeapAlloc) every CLI used to hand-roll.
package cliflags

import (
	"flag"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/profiling"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// Common holds the parsed shared flags. Per-CLI flags (scales, fleet
// sizes, output paths) stay in each main.
type Common struct {
	Seed       *uint64
	Parallel   *int
	Progress   *bool
	Policy     *string
	Arrival    *string
	CPUProfile *string
	MemProfile *string
	// Observability flags: -http serves the live endpoint while the run
	// executes; -metrics and -timeline export the final snapshot and the
	// Chrome trace_event run timeline. See StartObservability.
	HTTP        *string
	MetricsOut  *string
	TimelineOut *string
}

// Register installs the shared flag set on fs with identical names,
// defaults and help text across the CLIs. seedUsage words the -seed
// flag for the binary ("root random seed", "sweep root seed", …).
func Register(fs *flag.FlagSet, seedUsage string) *Common {
	return &Common{
		Seed:     fs.Uint64("seed", 1, seedUsage),
		Parallel: fs.Int("parallel", 0, "cells simulated concurrently (0 = all CPUs); does not change the output"),
		Progress: fs.Bool("progress", false, "print live progress (done / in flight / ETA) to stderr"),
		Policy: fs.String("policy", "", "override every cell's placement policy ("+
			strings.Join(scheduler.PolicyNames(), ", ")+"); empty keeps profile defaults"),
		Arrival: fs.String("arrival", "", "override every cell's arrival process ("+
			strings.Join(workload.ArrivalNames(), ", ")+
			"), e.g. gamma:cv=2.5 or cohorts:k=40,skew=1.5; empty keeps profile defaults"),
		CPUProfile: fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file"),
		MemProfile: fs.String("memprofile", "", "write a pprof heap profile at exit to this file"),
		HTTP: fs.String("http", "", "serve live observability on this address while the run executes "+
			"(e.g. :6060): / progress+ETA, /metrics Prometheus, /metrics.json, /metrics.csv, /timeline, /debug/pprof/, /debug/vars"),
		MetricsOut: fs.String("metrics", "", "write the final metrics snapshot to this file "+
			"(.json and .csv by extension; anything else is Prometheus text)"),
		TimelineOut: fs.String("timeline", "", "write the run's wall-clock timeline to this file as Chrome trace_event JSON "+
			"(load in chrome://tracing or Perfetto)"),
	}
}

// Validate checks the name-registered knobs after fs.Parse: an unknown
// policy or arrival spec returns the registry's error (which lists the
// valid set) instead of panicking mid-run.
func (c *Common) Validate() error {
	if *c.Policy != "" {
		if _, err := scheduler.ParsePolicy(*c.Policy); err != nil {
			return err
		}
	}
	if *c.Arrival != "" {
		if _, err := workload.ParseArrival(*c.Arrival); err != nil {
			return err
		}
	}
	return nil
}

// Knobs converts the parsed flags to the core.RunKnobs every runner
// config embeds (-progress selects os.Stderr).
func (c *Common) Knobs() core.RunKnobs {
	k := core.RunKnobs{Policy: *c.Policy, Arrival: *c.Arrival}
	if *c.Progress {
		k.Progress = os.Stderr
	}
	return k
}

// StartProfiling starts the -cpuprofile/-memprofile session; callers
// defer Stop on the returned session.
func (c *Common) StartProfiling() (*profiling.Session, error) {
	return profiling.Start(*c.CPUProfile, *c.MemProfile)
}
