package cliflags

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Obs is one CLI run's observability bundle: the run-level metrics
// registry (always created — the consolidated run summary records into
// it), the wall-clock timeline (created when anything will render it),
// and the optional live HTTP server. Obtain one from
// Common.StartObservability, thread Reg/Timeline into the run via
// Knobs, wrap the run in MeasureRun, and defer Close.
type Obs struct {
	// Reg is the run-level registry every cell's instruments roll up
	// into (see engine.RunInstruments).
	Reg *metrics.Registry
	// Timeline collects wall-clock spans; nil unless -http or -timeline
	// asked for one.
	Timeline *metrics.Timeline

	srv         *metrics.Server
	metricsOut  string
	timelineOut string
	logf        func(format string, args ...any)
}

// StartObservability builds the run's observability bundle from the
// parsed flags: it always creates the run registry, creates a timeline
// iff -http or -timeline will render it, and starts the live HTTP
// server when -http is set (logging the listen address through logf).
func (c *Common) StartObservability(logf func(format string, args ...any)) (*Obs, error) {
	o := &Obs{
		Reg:         metrics.NewRegistry(),
		metricsOut:  *c.MetricsOut,
		timelineOut: *c.TimelineOut,
		logf:        logf,
	}
	if *c.HTTP != "" || o.timelineOut != "" {
		o.Timeline = metrics.NewTimeline()
	}
	if *c.HTTP != "" {
		srv, err := metrics.StartServer(*c.HTTP, o.Reg, o.Timeline)
		if err != nil {
			return nil, fmt.Errorf("-http: %w", err)
		}
		o.srv = srv
		logf("live observability on http://%s/", srv.Addr())
	}
	return o, nil
}

// Knobs returns k with the run registry and timeline attached, so CLIs
// write `cfg.RunKnobs = obs.Knobs(common.Knobs())`.
func (o *Obs) Knobs(k core.RunKnobs) core.RunKnobs {
	k.Metrics = o.Reg
	k.Timeline = o.Timeline
	return k
}

// MeasureRun times fn under the shared peak-HeapAlloc sampler and
// records the outcome into the run registry — the single implementation
// behind every CLI's "... in 1.6s (peak heap 6 MB)" line.
func (o *Obs) MeasureRun(fn func()) metrics.RunStats {
	return metrics.MeasureRun(o.Reg, fn)
}

// Close bounds the observability lifecycle to the run: it gracefully
// shuts the live server down (draining in-flight scrapes) and writes
// the -metrics and -timeline files from final state. Export errors are
// returned after the server is down; callers typically log.Fatal them.
func (o *Obs) Close() error {
	var firstErr error
	if o.srv != nil {
		if err := o.srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if o.metricsOut != "" {
		if err := writeFile(o.metricsOut, func(f *os.File) error {
			return o.Reg.Snapshot().WriteSnapshotFile(f, o.metricsOut)
		}); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			o.logf("wrote metrics snapshot to %s", o.metricsOut)
		}
	}
	if o.timelineOut != "" {
		if err := writeFile(o.timelineOut, func(f *os.File) error {
			return o.Timeline.WriteChromeTrace(f)
		}); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			o.logf("wrote run timeline to %s", o.timelineOut)
		}
	}
	return firstErr
}

// writeFile creates path, runs write, and closes it, reporting the
// first error.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
