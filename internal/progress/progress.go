// Package progress reports live completion state for multi-cell runs:
// cells done, cells in flight, elapsed wall clock and a simple ETA. The
// fleet runner drives it from the engine's OnStart/OnResult hooks, and
// the suite and sweep binaries reuse it behind their -progress flags, so
// every long-running front-end reports the same way.
//
// Reporting is wall-clock plumbing, deliberately outside the simulation
// determinism boundary: a Reporter never touches simulation state and
// its output carries no simulation randomness.
package progress

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter prints single-line progress updates to a writer. It is safe
// for concurrent use: Start arrives from engine worker goroutines while
// Done arrives from the (serialized) delivery path.
type Reporter struct {
	mu      sync.Mutex
	w       io.Writer
	label   string
	total   int
	started int
	done    int
	begin   time.Time
	minGap  time.Duration
	last    time.Time
}

// New returns a reporter for total units of work, labeled in output.
// A nil writer yields a reporter that counts but never prints, so
// callers can wire hooks unconditionally.
func New(w io.Writer, label string, total int) *Reporter {
	return &Reporter{
		w: w, label: label, total: total,
		begin: time.Now(), minGap: time.Second,
	}
}

// Start records one unit entering execution.
func (r *Reporter) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.started++
	r.maybePrint(false)
}

// Done records one finished unit. The final unit always prints.
func (r *Reporter) Done() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
	r.maybePrint(r.done == r.total)
}

// Elapsed returns the wall-clock time since the reporter was created.
func (r *Reporter) Elapsed() time.Duration { return time.Since(r.begin) }

// maybePrint emits a progress line, rate-limited to one per minGap
// unless force is set. Callers hold r.mu.
func (r *Reporter) maybePrint(force bool) {
	if r.w == nil {
		return
	}
	now := time.Now()
	if !force && now.Sub(r.last) < r.minGap {
		return
	}
	r.last = now
	elapsed := now.Sub(r.begin)
	inFlight := r.started - r.done
	line := fmt.Sprintf("%s: %d/%d done, %d in flight, %s elapsed",
		r.label, r.done, r.total, inFlight, roundDuration(elapsed))
	if r.done > 0 && r.done < r.total {
		eta := time.Duration(float64(elapsed) / float64(r.done) * float64(r.total-r.done))
		line += ", ETA " + roundDuration(eta).String()
	}
	fmt.Fprintln(r.w, line)
}

// roundDuration trims sub-100ms noise so progress lines stay readable.
func roundDuration(d time.Duration) time.Duration {
	return d.Round(100 * time.Millisecond)
}
