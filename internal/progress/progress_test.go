package progress

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestReporterCountsAndFinalLine(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, "fleet", 3)
	for i := 0; i < 3; i++ {
		r.Start()
		r.Done()
	}
	out := buf.String()
	if !strings.Contains(out, "fleet: 3/3 done") {
		t.Fatalf("final progress line missing: %q", out)
	}
}

func TestReporterNilWriterAndConcurrency(t *testing.T) {
	r := New(nil, "x", 64)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Start()
			r.Done()
		}()
	}
	wg.Wait()
	if r.done != 64 || r.started != 64 {
		t.Fatalf("counts %d/%d, want 64/64", r.done, r.started)
	}
	if r.Elapsed() < 0 {
		t.Fatal("negative elapsed")
	}
}
