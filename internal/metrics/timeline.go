package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one recorded wall-clock interval of a run: a named piece of
// work (warmup, run, flush, reduce, a whole cell) attributed to a track
// (TID — by convention the cell's spec index).
type Span struct {
	Name  string
	Cat   string
	TID   int
	Start time.Time
	Dur   time.Duration
}

// Timeline collects wall-clock spans from concurrent workers and
// exports them as a Chrome trace_event JSON file (load it in
// chrome://tracing or Perfetto to see where a fleet run's wall time
// went, cell by cell). Timelines observe wall time only — they sit
// outside the simulation's determinism boundary, like
// internal/progress.
type Timeline struct {
	mu    sync.Mutex
	begin time.Time
	spans []Span
}

// NewTimeline returns a timeline whose timestamps are relative to now.
func NewTimeline() *Timeline {
	return &Timeline{begin: time.Now()}
}

// Record appends one completed span. Safe for concurrent use.
func (t *Timeline) Record(name, cat string, tid int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Cat: cat, TID: tid, Start: start, Dur: dur})
	t.mu.Unlock()
}

// Span starts a span now and returns the closure that ends it. Typical
// use: defer tl.Span("run", "cell", i)().
func (t *Timeline) Span(name, cat string, tid int) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Record(name, cat, tid, start, time.Since(start)) }
}

// Len returns the number of recorded spans.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// traceEvent is one Chrome trace_event record ("X" = complete event;
// ts/dur in microseconds).
type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
}

// WriteChromeTrace renders the timeline as a Chrome trace_event JSON
// array. Spans are sorted by (start, tid, name) so the file is stable
// for a given set of recorded spans regardless of recording order.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	begin := t.begin
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		if spans[i].TID != spans[j].TID {
			return spans[i].TID < spans[j].TID
		}
		return spans[i].Name < spans[j].Name
	})
	events := make([]traceEvent, len(spans))
	for i, s := range spans {
		events[i] = traceEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X", PID: 1, TID: s.TID,
			TS:  s.Start.Sub(begin).Microseconds(),
			Dur: s.Dur.Microseconds(),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
