package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("placed_total").Add(7)
	reg.Gauge("run_cells_total").Set(9)
	reg.Counter("run_cells_started_total").Add(9)
	reg.Counter("run_cells_done_total").Add(4)
	tl := NewTimeline()
	tl.Record("cell", "cell", 0, time.Now(), time.Millisecond)

	srv, err := StartServer("127.0.0.1:0", reg, tl)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	for _, tc := range []struct {
		path, marker string
	}{
		{"/", "cells: 4/9 done, 5 in flight"},
		{"/metrics", "placed_total 7"},
		{"/metrics.json", `"placed_total"`},
		{"/metrics.csv", "placed_total,counter,7"},
		{"/timeline", `"ph":"X"`},
		{"/debug/pprof/", "profiles"},
		{"/debug/vars", "memstats"},
	} {
		code, body := get(t, base+tc.path)
		if code != http.StatusOK {
			t.Errorf("%s: status %d", tc.path, code)
		}
		if !strings.Contains(body, tc.marker) {
			t.Errorf("%s: body missing %q:\n%s", tc.path, tc.marker, body)
		}
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: status %d, want 404", code)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestServerNilTimeline(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+srv.Addr()+"/timeline"); code != http.StatusNotFound {
		t.Errorf("/timeline without timeline: status %d, want 404", code)
	}
}

// TestStalledScrapeNeverBlocksMerges is the satellite's liveness gate:
// a scraper that opens /metrics and never reads its response must not
// block registry writes or the engine's OnResult-path merges, and
// server shutdown must still complete.
func TestStalledScrapeNeverBlocksMerges(t *testing.T) {
	reg := NewRegistry()
	// A fat registry so the rendered response exceeds trivial sizes.
	for i := 0; i < 200; i++ {
		reg.Counter(fmt.Sprintf("c_%03d_total", i)).Add(int64(i))
		h := reg.Histogram(fmt.Sprintf("h_%03d", i))
		for j := 0; j < 20; j++ {
			h.Observe(float64(j))
		}
	}
	srv, err := StartServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Stalled scraper: sends the request, never reads the response.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		t.Fatal(err)
	}

	merged := make(chan struct{})
	go func() {
		// The OnResult-path work: per-cell registries merging into the
		// scraped run registry while the scrape is in flight.
		for i := 0; i < 50; i++ {
			cell := NewRegistry()
			fill(cell, i)
			reg.Merge(cell)
			reg.Counter("c_000_total").Inc()
		}
		close(merged)
	}()
	select {
	case <-merged:
	case <-time.After(5 * time.Second):
		t.Fatal("registry merges blocked behind a stalled scrape")
	}

	conn.Close()
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close after stalled scrape: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not complete after a stalled scrape")
	}
}
