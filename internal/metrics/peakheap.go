package metrics

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// PeakHeapDuring samples runtime.MemStats.HeapAlloc while fn runs and
// returns the maximum observed, in bytes. It backs the CI memory-ceiling
// gate, the suite benchmarks' peak-heap-MB metric and every CLI's run
// summary — one sampler, so the budget, the benchmarks and the logs all
// measure the same thing. Sampling at 20ms misses only very short
// spikes, which is fine for suite-length work.
func PeakHeapDuring(fn func()) uint64 {
	runtime.GC()
	var mu sync.Mutex
	var peak uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			runtime.ReadMemStats(&ms)
			mu.Lock()
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			mu.Unlock()
			select {
			case <-done:
				return
			case <-ticker.C:
			}
		}
	}()
	fn()
	close(done)
	wg.Wait()
	return peak
}

// RunStats is a run's wall-clock summary: elapsed time and peak
// HeapAlloc, as measured by MeasureRun. Its String form is the one
// format every CLI logs, replacing three hand-rolled copies.
type RunStats struct {
	Elapsed       time.Duration
	PeakHeapBytes uint64
}

// String renders like "1.6s (peak heap 6 MB)".
func (rs RunStats) String() string {
	return fmt.Sprintf("%v (peak heap %.0f MB)",
		rs.Elapsed.Round(time.Millisecond), float64(rs.PeakHeapBytes)/(1<<20))
}

// MeasureRun times fn under the peak-heap sampler and, when reg is
// non-nil, records the outcome as run_wall_seconds and peak_heap_bytes
// gauges so exported snapshots carry the run summary too.
func MeasureRun(reg *Registry, fn func()) RunStats {
	start := time.Now()
	peak := PeakHeapDuring(fn)
	rs := RunStats{Elapsed: time.Since(start), PeakHeapBytes: peak}
	if reg != nil {
		reg.Gauge("run_wall_seconds").Set(rs.Elapsed.Seconds())
		reg.Gauge("peak_heap_bytes").Set(float64(peak))
	}
	return rs
}
