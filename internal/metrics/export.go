package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges as scalar series, histograms as summaries
// (quantile-labeled series plus _sum and _count). Quantiles are t-digest
// estimates; _sum and _count are exact.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.Name, c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", g.Name, g.Name, promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", h.Name); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", h.Name, q.label, promFloat(q.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", h.Name, promFloat(h.Sum), h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promFloat formats a float the way Prometheus expects: full round-trip
// precision, NaN spelled literally.
func promFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV renders the snapshot in long form: one row per instrument
// with kind-appropriate columns filled and the rest empty.
func (s Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "kind", "value", "count", "sum", "min", "p50", "p90", "p99", "max"}); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if err := cw.Write([]string{c.Name, "counter", strconv.FormatInt(c.Value, 10), "", "", "", "", "", "", ""}); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := cw.Write([]string{g.Name, "gauge", promFloat(g.Value), "", "", "", "", "", "", ""}); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		rec := []string{h.Name, "histogram", "", strconv.FormatInt(h.Count, 10), promFloat(h.Sum),
			promFloat(h.Min), promFloat(h.P50), promFloat(h.P90), promFloat(h.P99), promFloat(h.Max)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSnapshotFile writes the snapshot to w in the format named by the
// path extension: ".json" → JSON, ".csv" → CSV, anything else → the
// Prometheus text format (the conventional ".prom").
func (s Snapshot) WriteSnapshotFile(w io.Writer, path string) error {
	switch {
	case strings.HasSuffix(path, ".json"):
		return s.WriteJSON(w)
	case strings.HasSuffix(path, ".csv"):
		return s.WriteCSV(w)
	default:
		return s.WritePrometheus(w)
	}
}
