package metrics

import (
	"bytes"
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in live observability endpoint: it serves the
// registry in three formats, the run timeline, Go's pprof and expvar
// debug surfaces, and a plain-text progress/ETA view, so long fleet
// runs can be watched and profiled in flight.
//
// Handlers render from Registry.Snapshot into a local buffer before
// writing, so a slow or stalled scraper holds no registry lock and can
// never block the engine's OnResult merges — only its own connection.
// The server is bounded by the run: Close performs a graceful shutdown
// (with a short drain deadline) when the run completes.
type Server struct {
	reg   *Registry
	tl    *Timeline
	start time.Time
	ln    net.Listener
	srv   *http.Server
	done  chan struct{}
}

// StartServer listens on addr (e.g. ":6060", or ":0" to pick a free
// port — see Addr) and serves:
//
//	/              live progress and ETA (text)
//	/metrics       Prometheus text format
//	/metrics.json  JSON snapshot
//	/metrics.csv   CSV snapshot
//	/timeline      Chrome trace_event JSON (404 when no timeline)
//	/debug/pprof/  Go profiling endpoints
//	/debug/vars    expvar (Go runtime memstats etc.)
//
// tl may be nil. The server runs until Close.
func StartServer(addr string, reg *Registry, tl *Timeline) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, tl: tl, start: time.Now(), ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleProgress)
	mux.HandleFunc("/metrics", s.handleSnapshot("text/plain; version=0.0.4", Snapshot.WritePrometheus))
	mux.HandleFunc("/metrics.json", s.handleSnapshot("application/json", Snapshot.WriteJSON))
	mux.HandleFunc("/metrics.csv", s.handleSnapshot("text/csv", Snapshot.WriteCSV))
	mux.HandleFunc("/timeline", s.handleTimeline)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	s.srv = &http.Server{Handler: mux}
	go func() {
		s.srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}

// Addr returns the listener's address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down gracefully, draining in-flight scrapes
// for up to two seconds before closing remaining connections. It is the
// clean-shutdown bound every CLI defers when the run completes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	<-s.done
	return err
}

// handleSnapshot renders the registry snapshot through render into a
// buffer and serves it. The snapshot briefly holds the registry lock to
// copy instrument pointers; rendering and the client write hold none.
func (s *Server) handleSnapshot(contentType string, render func(Snapshot, io.Writer) error) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := render(s.reg.Snapshot(), &buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(buf.Bytes())
	}
}

// handleTimeline serves the run timeline as Chrome trace_event JSON.
func (s *Server) handleTimeline(w http.ResponseWriter, req *http.Request) {
	if s.tl == nil {
		http.NotFound(w, req)
		return
	}
	var buf bytes.Buffer
	if err := s.tl.WriteChromeTrace(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// handleProgress serves the live progress/ETA view from the run
// counters engine.RunInstruments maintains (run_cells_total/
// _started_total/_done_total). Before a run registers cells it shows
// elapsed time only.
func (s *Server) handleProgress(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	elapsed := time.Since(s.start).Round(time.Second)
	total := int64(s.reg.Gauge("run_cells_total").Value())
	started := s.reg.Counter("run_cells_started_total").Value()
	done := s.reg.Counter("run_cells_done_total").Value()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "borgsim live: elapsed %v\n", elapsed)
	if total > 0 {
		inFlight := started - done
		fmt.Fprintf(&buf, "cells: %d/%d done, %d in flight\n", done, total, inFlight)
		if done > 0 && done < total {
			eta := time.Duration(float64(time.Since(s.start)) / float64(done) * float64(total-done))
			fmt.Fprintf(&buf, "eta: ~%v\n", eta.Round(time.Second))
		}
	}
	fmt.Fprintf(&buf, "\nendpoints: /metrics /metrics.json /metrics.csv /timeline /debug/pprof/ /debug/vars\n")
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(buf.Bytes())
}
