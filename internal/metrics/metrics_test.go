package metrics

import (
	"math"
	"reflect"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second Counter lookup returned a different instrument")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := r.Gauge("g").Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("h")
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	hv := h.snapshot()
	if hv.Count != 4 || hv.Sum != 10 || hv.Min != 1 || hv.Max != 4 {
		t.Fatalf("histogram snapshot = %+v", hv)
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	for name, f := range map[string]func(){
		"gauge":     func() { r.Gauge("x") },
		"histogram": func() { r.Histogram("x") },
		"empty":     func() { r.Counter("") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// fill populates a registry with a deterministic instrument mix derived
// from seed, exercising all three kinds.
func fill(r *Registry, seed int) {
	r.Counter("placed").Add(int64(10 + seed))
	r.Counter("attempts").Add(int64(100 * (seed + 1)))
	r.Gauge("queue").Set(float64(seed))
	h := r.Histogram("depth")
	for i := 0; i < 50; i++ {
		h.Observe(float64((i*seed+7)%23) + 0.5)
	}
}

// TestMergeAssociative is the rollup-order independence gate: merging
// cell registries in any grouping must yield identical counters and
// gauges and identical exact histogram stats (count/sum/min/max) —
// the property that makes cell→fleet rollups safe to reason about.
func TestMergeAssociative(t *testing.T) {
	mk := func() []*Registry {
		rs := make([]*Registry, 4)
		for i := range rs {
			rs[i] = NewRegistry()
			fill(rs[i], i+1)
		}
		return rs
	}

	// Left fold: ((r0+r1)+r2)+r3 into a fresh root.
	left := NewRegistry()
	for _, r := range mk() {
		left.Merge(r)
	}
	// Right-ish fold: r3+r2+r1+r0, and pairwise: (r0+r1) + (r2+r3).
	rev := NewRegistry()
	rs := mk()
	for i := len(rs) - 1; i >= 0; i-- {
		rev.Merge(rs[i])
	}
	rs = mk()
	a, b := NewRegistry(), NewRegistry()
	a.Merge(rs[0])
	a.Merge(rs[1])
	b.Merge(rs[2])
	b.Merge(rs[3])
	a.Merge(b)

	ls := left.Snapshot()
	for name, other := range map[string]Snapshot{"reversed": rev.Snapshot(), "pairwise": a.Snapshot()} {
		if !reflect.DeepEqual(ls.Counters, other.Counters) {
			t.Errorf("%s: counters differ: %+v vs %+v", name, ls.Counters, other.Counters)
		}
		if !reflect.DeepEqual(ls.Gauges, other.Gauges) {
			t.Errorf("%s: gauges differ: %+v vs %+v", name, ls.Gauges, other.Gauges)
		}
		if len(ls.Hists) != len(other.Hists) {
			t.Fatalf("%s: histogram count differs", name)
		}
		for i, h := range ls.Hists {
			o := other.Hists[i]
			if h.Name != o.Name || h.Count != o.Count || h.Sum != o.Sum || h.Min != o.Min || h.Max != o.Max {
				t.Errorf("%s: exact hist stats differ: %+v vs %+v", name, h, o)
			}
			// Quantiles are t-digest estimates: tolerance, not equality.
			for _, q := range [][2]float64{{h.P50, o.P50}, {h.P90, o.P90}, {h.P99, o.P99}} {
				if math.Abs(q[0]-q[1]) > 2 {
					t.Errorf("%s: %s quantiles far apart: %g vs %g", name, h.Name, q[0], q[1])
				}
			}
		}
	}
}

func TestMergeNilAndEmpty(t *testing.T) {
	r := NewRegistry()
	fill(r, 1)
	before := r.Snapshot()
	r.Merge(nil)
	r.Merge(NewRegistry())
	if !reflect.DeepEqual(before, r.Snapshot()) {
		t.Fatal("merging nil/empty changed the registry")
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Inc()
	r.Counter("aa").Inc()
	r.Gauge("m").Set(1)
	r.Gauge("b").Set(2)
	r.Histogram("y").Observe(1)
	r.Histogram("x").Observe(2)
	s := r.Snapshot()
	if s.Counters[0].Name != "aa" || s.Counters[1].Name != "zz" {
		t.Errorf("counters unsorted: %+v", s.Counters)
	}
	if s.Gauges[0].Name != "b" || s.Gauges[1].Name != "m" {
		t.Errorf("gauges unsorted: %+v", s.Gauges)
	}
	if s.Hists[0].Name != "x" || s.Hists[1].Name != "y" {
		t.Errorf("histograms unsorted: %+v", s.Hists)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	hv := h.snapshot()
	if hv.Count != 1000 || hv.Min != 1 || hv.Max != 1000 {
		t.Fatalf("exact stats wrong: %+v", hv)
	}
	for _, q := range []struct {
		got, want, tol float64
	}{{hv.P50, 500, 25}, {hv.P90, 900, 25}, {hv.P99, 990, 15}} {
		if math.Abs(q.got-q.want) > q.tol {
			t.Errorf("quantile %g too far from %g", q.got, q.want)
		}
	}
}
