package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Record("a", "b", 0, time.Time{}, 0)
	tl.Span("a", "b", 0)()
	if tl.Len() != 0 {
		t.Fatal("nil timeline has spans")
	}
}

func TestTimelineConcurrentRecordAndExport(t *testing.T) {
	tl := NewTimeline()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				done := tl.Span("work", "cell", w)
				done()
			}
		}(w)
	}
	wg.Wait()
	if tl.Len() != 200 {
		t.Fatalf("recorded %d spans, want 200", tl.Len())
	}

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(events) != 200 {
		t.Fatalf("exported %d events, want 200", len(events))
	}
	prev := int64(-1 << 62)
	for _, e := range events {
		if e["ph"] != "X" || e["name"] != "work" || e["cat"] != "cell" {
			t.Fatalf("malformed event: %v", e)
		}
		ts := int64(e["ts"].(float64))
		if ts < prev {
			t.Fatal("events not sorted by start time")
		}
		prev = ts
	}
}

func TestTimelineStableSort(t *testing.T) {
	// Same start instant, different tids/names: event order must be
	// pinned by the (start, tid, name) sort regardless of recording
	// order. (ts values embed each timeline's creation instant, so the
	// comparison is on the ordered name/tid sequence, not raw bytes.)
	base := time.Now()
	render := func(order []int) []string {
		tl := NewTimeline()
		spans := []Span{
			{Name: "b", TID: 1}, {Name: "a", TID: 1}, {Name: "a", TID: 0},
		}
		for _, i := range order {
			s := spans[i]
			tl.Record(s.Name, "c", s.TID, base, time.Millisecond)
		}
		var buf bytes.Buffer
		if err := tl.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(events))
		for i, e := range events {
			keys[i] = fmt.Sprintf("%v/%v", e["tid"], e["name"])
		}
		return keys
	}
	a, b := render([]int{0, 1, 2}), render([]int{2, 1, 0})
	want := []string{"0/a", "1/a", "1/b"}
	if !reflect.DeepEqual(a, want) || !reflect.DeepEqual(b, want) {
		t.Fatalf("event order depends on recording order: %v vs %v (want %v)", a, b, want)
	}
}
