// Package metrics is the simulator's observability seam: a registry of
// typed instruments (counters, gauges, t-digest histograms) that every
// hot layer — scheduler, sim kernel, usage pipeline, engine — reports
// into, with exporters for the Prometheus text format, JSON and CSV, a
// Chrome trace_event run timeline, and an opt-in live HTTP server.
//
// # Determinism contract
//
// Instruments are observers, never participants: they consume no
// randomness, schedule no events, and write no trace rows, so a
// simulation instrumented with a Registry produces byte-identical
// traces and reports to the same run with metrics disabled — at any
// parallelism. The pinned metrics-on/off differential tests in
// internal/core and internal/experiments are CI's acceptance gate for
// that contract; new instrumentation must keep them green.
//
// Counters and gauges are lock-free atomics so live HTTP scrapes read
// mid-run values without stalling simulation. Histograms take a mutex
// per observation (t-digest compression is not lock-free) and therefore
// stay OFF allocation-free fast paths: hot code uses counters and
// gauges only, and histogram observations ride existing periodic ticks
// (the usage sampler's 5-minute window, end-of-run summaries).
//
// # Per-cell registries, fleet rollups
//
// Concurrent cells never share a registry. Each cell writes to its own,
// and the engine merges per-cell registries into the run-level rollup
// in spec order on the serialized OnResult path (engine.RunInstruments)
// — the same discipline the streaming reducers use, so rollups are
// deterministic at any parallelism. Counter and gauge merges are
// associative and exact; histogram quantiles are t-digest estimates
// whose count/sum/min/max stay exact under merge.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is NOT usable — obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (negative deltas are the caller's bug; the registry
// does not police monotonicity on the hot path).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 level.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the current level.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the level by delta. Not atomic against concurrent Add —
// fine for single-writer gauges, which is every gauge in the simulator
// (per-cell registries have one writing goroutine).
func (g *Gauge) Add(delta float64) { g.Set(g.Value() + delta) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a mergeable distribution sketch: a stats.Digest t-digest
// plus exact count/sum/min/max. Observations take a mutex; keep
// histograms off allocation-free fast paths (see the package doc).
type Histogram struct {
	mu  sync.Mutex
	d   *stats.Digest
	sum float64
}

func newHistogram() *Histogram {
	return &Histogram{d: stats.NewDigest(stats.DefaultCompression)}
}

// Observe folds one sample into the histogram. NaN panics, matching
// stats.Digest.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	h.d.Add(x)
	h.sum += x
	h.mu.Unlock()
}

// merge folds other into h. Lock order is receiver then source; the
// engine only ever merges cell→rollup in one direction, so the order
// cannot deadlock.
func (h *Histogram) merge(other *Histogram) {
	h.mu.Lock()
	other.mu.Lock()
	h.d.Merge(other.d)
	h.sum += other.sum
	other.mu.Unlock()
	h.mu.Unlock()
}

// snapshot returns the histogram's exported view.
func (h *Histogram) snapshot() HistValue {
	h.mu.Lock()
	defer h.mu.Unlock()
	v := HistValue{Count: h.d.Count(), Sum: h.sum}
	if v.Count > 0 {
		v.Min = h.d.Min()
		v.Max = h.d.Max()
		v.P50 = h.d.Quantile(0.50)
		v.P90 = h.d.Quantile(0.90)
		v.P99 = h.d.Quantile(0.99)
	}
	return v
}

// HistValue is one histogram's snapshot: exact count/sum/min/max and
// t-digest quantile estimates.
type HistValue struct {
	Count         int64
	Sum           float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Registry holds named instruments. Get-or-create lookups take a mutex
// (do them once at setup, not per event); the instruments themselves
// are safe for concurrent use and for live scraping while a run writes.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// checkName panics when name is empty or already bound to another
// instrument kind — a kind collision would emit duplicate series.
func (r *Registry) checkName(name, kind string) {
	if name == "" {
		panic("metrics: empty instrument name")
	}
	for k, m := range map[string]bool{
		"counter":   r.counters[name] != nil,
		"gauge":     r.gauges[name] != nil,
		"histogram": r.hists[name] != nil,
	} {
		if m && k != kind {
			panic(fmt.Sprintf("metrics: %q already registered as a %s", name, k))
		}
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.checkName(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.checkName(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it empty on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	r.checkName(name, "histogram")
	h := newHistogram()
	r.hists[name] = h
	return h
}

// Merge folds other into r: counters and gauges add, histograms merge
// their digests. Merging is associative — any grouping of cell
// registries yields the same counters, gauge sums and exact histogram
// count/sum/min/max (quantiles agree to t-digest accuracy) — which is
// what makes cell→fleet rollups order-independent. The caller must not
// write to other concurrently.
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	other.mu.Lock()
	cs := make([]namedCounter, 0, len(other.counters))
	for name, c := range other.counters {
		cs = append(cs, namedCounter{name, c})
	}
	gs := make([]namedGauge, 0, len(other.gauges))
	for name, g := range other.gauges {
		gs = append(gs, namedGauge{name, g})
	}
	hs := make([]namedHist, 0, len(other.hists))
	for name, h := range other.hists {
		hs = append(hs, namedHist{name, h})
	}
	other.mu.Unlock()
	for _, nc := range cs {
		r.Counter(nc.name).Add(nc.c.Value())
	}
	for _, ng := range gs {
		r.Gauge(ng.name).Add(ng.g.Value())
	}
	for _, nh := range hs {
		r.Histogram(nh.name).merge(nh.h)
	}
}

type namedCounter struct {
	name string
	c    *Counter
}

type namedGauge struct {
	name string
	g    *Gauge
}

type namedHist struct {
	name string
	h    *Histogram
}

// Snapshot is a point-in-time copy of a registry, sorted by name within
// each kind. Exporters render snapshots, never live registries, so a
// slow consumer (an HTTP scrape, a file write) holds no lock while the
// run continues.
type Snapshot struct {
	Counters []CounterValue `json:"counters"`
	Gauges   []GaugeValue   `json:"gauges"`
	Hists    []HistSnapshot `json:"histograms"`
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistSnapshot is one histogram's snapshot.
type HistSnapshot struct {
	Name string `json:"name"`
	HistValue
}

// Snapshot copies the registry's current values. The registry lock is
// held only while instrument pointers are collected; counter and gauge
// reads are atomic and histogram snapshots lock per histogram.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	cs := make([]namedCounter, 0, len(r.counters))
	for name, c := range r.counters {
		cs = append(cs, namedCounter{name, c})
	}
	gs := make([]namedGauge, 0, len(r.gauges))
	for name, g := range r.gauges {
		gs = append(gs, namedGauge{name, g})
	}
	hs := make([]namedHist, 0, len(r.hists))
	for name, h := range r.hists {
		hs = append(hs, namedHist{name, h})
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters: make([]CounterValue, 0, len(cs)),
		Gauges:   make([]GaugeValue, 0, len(gs)),
		Hists:    make([]HistSnapshot, 0, len(hs)),
	}
	for _, nc := range cs {
		snap.Counters = append(snap.Counters, CounterValue{nc.name, nc.c.Value()})
	}
	for _, ng := range gs {
		snap.Gauges = append(snap.Gauges, GaugeValue{ng.name, ng.g.Value()})
	}
	for _, nh := range hs {
		snap.Hists = append(snap.Hists, HistSnapshot{Name: nh.name, HistValue: nh.h.snapshot()})
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	return snap
}
