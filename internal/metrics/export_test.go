package metrics

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

// exportReg builds a small registry covering all three kinds.
func exportReg() *Registry {
	r := NewRegistry()
	r.Counter("placed_total").Add(42)
	r.Gauge("queue_depth").Set(3.5)
	h := r.Histogram("batch_size")
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := exportReg().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE placed_total counter\nplaced_total 42\n",
		"# TYPE queue_depth gauge\nqueue_depth 3.5\n",
		"# TYPE batch_size summary\n",
		`batch_size{quantile="0.5"} 2`,
		"batch_size_sum 6\nbatch_size_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := exportReg().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(got.Counters) != 1 || got.Counters[0].Value != 42 {
		t.Errorf("round-tripped counters: %+v", got.Counters)
	}
	if len(got.Hists) != 1 || got.Hists[0].Count != 3 || got.Hists[0].Sum != 6 {
		t.Errorf("round-tripped histograms: %+v", got.Hists)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := exportReg().Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // header + 3 instruments
		t.Fatalf("got %d rows, want 4: %v", len(recs), recs)
	}
	if recs[1][0] != "placed_total" || recs[1][1] != "counter" || recs[1][2] != "42" {
		t.Errorf("counter row: %v", recs[1])
	}
	if recs[3][0] != "batch_size" || recs[3][1] != "histogram" || recs[3][3] != "3" {
		t.Errorf("histogram row: %v", recs[3])
	}
}

func TestWriteSnapshotFileDispatch(t *testing.T) {
	snap := exportReg().Snapshot()
	for _, tc := range []struct {
		path, marker string
	}{
		{"out.json", `"counters"`},
		{"out.csv", "name,kind,value"},
		{"out.prom", "# TYPE placed_total counter"},
		{"out", "# TYPE placed_total counter"},
	} {
		var buf bytes.Buffer
		if err := snap.WriteSnapshotFile(&buf, tc.path); err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if !strings.Contains(buf.String(), tc.marker) {
			t.Errorf("%s: output missing %q:\n%s", tc.path, tc.marker, buf.String())
		}
	}
}

// TestSnapshotDeterministic pins that two identical registries snapshot
// to byte-identical exports — the property run-level rollups inherit.
func TestSnapshotDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := exportReg().Snapshot().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := exportReg().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical registries exported different bytes")
	}
}
