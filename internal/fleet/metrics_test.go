package fleet

import (
	"bytes"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestFleetMetricsDoNotChangeReport pins the observe-only contract at
// fleet scale: attaching the full observability stack (registry,
// timeline, live HTTP server) leaves the fleet report identical, and
// the rollup arrives with the fleet's scheduler activity.
func TestFleetMetricsDoNotChangeReport(t *testing.T) {
	plain := Run(testConfig(4))

	cfg := testConfig(4)
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	cfg.Timeline = metrics.NewTimeline()
	instrumented := Run(cfg)

	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatalf("fleet report differs with metrics enabled:\nplain: %+v\ninstrumented: %+v",
			plain, instrumented)
	}
	if reg.Counter("sched_tasks_placed_total").Value() == 0 {
		t.Fatal("rollup recorded no placements")
	}
	if got := reg.Counter("run_cells_done_total").Value(); got != int64(cfg.Cells) {
		t.Fatalf("run_cells_done_total = %d, want %d", got, cfg.Cells)
	}
	if cfg.Timeline.Len() < cfg.Cells {
		t.Fatalf("timeline has %d spans, want at least one per cell", cfg.Timeline.Len())
	}
}

// TestFleetLiveMetricsScrape is the CI metrics-smoke's in-process twin:
// it scrapes the live /metrics endpoint from inside the run (the OnCell
// hook fires on the engine's OnResult path) and asserts the scrape both
// succeeds mid-run and shows progress counters moving — proving a live
// consumer never deadlocks against the serialized rollup path it
// observes.
func TestFleetLiveMetricsScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, err := metrics.StartServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := testConfig(4)
	cfg.Metrics = reg
	var midRun []string
	cfg.OnCell = func(s CellSummary) {
		// Scrape from the rollup path itself: if a scrape could block the
		// merge (or vice versa) this would deadlock, not just slow down.
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			t.Errorf("cell %d: scrape failed: %v", s.Index, err)
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Errorf("cell %d: read failed: %v", s.Index, err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("cell %d: status %d", s.Index, resp.StatusCode)
		}
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "run_cells_done_total ") {
				midRun = append(midRun, line)
			}
		}
	}
	Run(cfg)

	if len(midRun) != cfg.Cells {
		t.Fatalf("captured %d mid-run scrapes, want %d", len(midRun), cfg.Cells)
	}
	// Done counts must be monotone non-decreasing across the in-order
	// scrapes and strictly positive by the last one.
	if midRun[len(midRun)-1] == "run_cells_done_total 0" {
		t.Fatalf("final mid-run scrape shows no progress: %v", midRun)
	}

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sched_tasks_placed_total") {
		t.Fatal("final snapshot missing scheduler series")
	}
}
