// Package fleet runs warehouse-scale federations: O(100) synthetic
// cells expanded from a fleet spec, simulated in one process on the
// engine's worker pool with bounded memory, and reduced online into a
// fleet-level percentile rollup.
//
// # Fleet sampling
//
// Cell i of a fleet rooted at seed R simulates with engine.DeriveSeed(R,
// i) — exactly the multi-cell suite contract — and draws its profile
// from an independent "fleet-profile" rng stream split off the same
// seed, via workload.SampleFleetProfile: a calibrated 2019 base cell
// plus lognormal machine-count, arrival-rate and tier-mix variation
// around the 2019 medians. Profile and world therefore depend only on
// (R, i): changing fleet-level knobs (parallelism, rollup options,
// fast-noise off/on aside) never reshuffles which stochastic world a
// cell index maps to, so fleets are reproducible and CRN-comparable.
//
// # Bounded memory and rollup determinism
//
// Cells are streamed through engine.RunStream: specs (profile + one
// streaming.CellReducer sink, NoMemTrace) materialize as workers pick
// up indices and are released as soon as each cell's scalars have been
// folded into the rollup, so peak state is O(Parallelism) cells — not
// O(fleet). The rollup itself is one mergeable t-digest
// (stats.Digest) per scalar metric, fed in spec order by the engine's
// in-order OnResult delivery; digests are deterministic sequential
// code, so the fleet report is byte-identical at any Parallelism.
package fleet

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/analysis/streaming"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/progress"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config describes one fleet run.
type Config struct {
	// Cells is the fleet size.
	Cells int
	// MedianMachines is the median of the lognormal machine-count
	// distribution cells draw from; <= 0 means 60 (the many-cell suite's
	// per-cell size, keeping O(100)-cell fleets inside CI memory).
	MedianMachines int
	// Horizon is the per-cell simulated duration; 0 means 4 hours.
	Horizon sim.Time
	// Warmup is the scalar warmup cutoff passed to each cell's reducer;
	// 0 means Horizon/2.
	Warmup sim.Time
	// Seed roots the fleet: cell i simulates with DeriveSeed(Seed, i).
	Seed uint64
	// Parallelism bounds the worker pool (engine semantics: <= 0 means
	// GOMAXPROCS). Output is identical at any value.
	Parallelism int
	// RunKnobs carries the shared per-run knobs, applied to every cell:
	// Policy/Arrival overrides, the usage-noise fast path (a versioned
	// trace bump; see core.RunKnobs), and the Progress writer for live
	// progress lines (cells done / in flight / ETA). Metrics/Timeline,
	// when non-nil, receive the fleet-level instrument rollup and run
	// timeline (per-cell registries merged in fleet order; never change
	// the report bytes).
	core.RunKnobs
	// OnCell, when set, observes each cell's summary in fleet order as
	// it completes — the streaming hook per-cell CSV export hangs off.
	OnCell func(CellSummary)
}

// CellSummary is one completed cell's contribution to the fleet view.
type CellSummary struct {
	Index    int
	Name     string
	Machines int
	Scalars  []streaming.Scalar
}

// MetricRollup is the cross-cell distribution of one scalar metric.
type MetricRollup struct {
	Name                          string
	Mean, P50, P90, P99, Min, Max float64
}

// Report is the fleet-level result: per-metric cross-cell percentiles
// over the per-cell scalar values.
type Report struct {
	Cells         int
	TotalMachines int
	Horizon       sim.Time
	Seed          uint64
	FastNoise     bool
	Rollup        []MetricRollup
}

// cellName labels fleet cell i ("f000", "f001", ...).
func cellName(i int) string { return fmt.Sprintf("f%03d", i) }

// Spec expands fleet cell i into its engine spec: sampled profile,
// derived seed, disjoint ID space, NoMemTrace with the given extra
// sinks. It is exported so tests (and future front-ends) can reproduce
// exactly the spec the fleet would run.
func (cfg Config) Spec(i int, sinks ...trace.Sink) engine.Spec {
	seed := engine.DeriveSeed(cfg.Seed, i)
	p := workload.SampleFleetProfile(cellName(i), cfg.medianMachines(),
		rng.New(seed).Split("fleet-profile"))
	knobs := cfg.RunKnobs
	// Progress is fleet-level reporting, and the fleet registry/timeline
	// must not be written by concurrent cells directly: Run gives each
	// cell a private registry and merges in fleet order
	// (engine.RunInstruments), so all three are nilled per cell.
	knobs.Progress = nil
	knobs.Metrics = nil
	knobs.Timeline = nil
	return engine.Spec{
		Profile: p,
		Options: core.Options{
			RunKnobs:   knobs,
			Horizon:    cfg.horizon(),
			Seed:       seed,
			IDBase:     engine.IDBase(i),
			NoMemTrace: true,
			ExtraSinks: sinks,
		},
	}
}

func (cfg Config) medianMachines() int {
	if cfg.MedianMachines <= 0 {
		return 60
	}
	return cfg.MedianMachines
}

func (cfg Config) horizon() sim.Time {
	if cfg.Horizon <= 0 {
		return 4 * sim.Hour
	}
	return cfg.Horizon
}

func (cfg Config) warmup() sim.Time {
	if cfg.Warmup <= 0 {
		return cfg.horizon() / 2
	}
	return cfg.Warmup
}

// Run simulates the fleet and returns its rollup report.
func Run(cfg Config) *Report {
	n := cfg.Cells
	names := streaming.ScalarNames()
	digests := make([]*stats.Digest, len(names))
	sums := make([]float64, len(names))
	for i := range digests {
		digests[i] = stats.NewDigest(stats.DefaultCompression)
	}
	rep := &Report{
		Cells: n, Horizon: cfg.horizon(), Seed: cfg.Seed,
		FastNoise: cfg.UsageNoiseFast,
	}
	if n == 0 {
		rep.Rollup = rollup(names, digests, sums, 0)
		return rep
	}

	prog := progress.New(cfg.Progress, "fleet", n)
	// reducers[i] is created with cell i's spec and released once its
	// scalars are rolled up: the engine's mutex-ordered handoff from the
	// building worker to the delivering worker covers the slot.
	reducers := make([]*streaming.CellReducer, n)
	warmup := cfg.warmup()
	ri := engine.NewRunInstruments(cfg.Metrics, cfg.Timeline, n)
	engine.RunStream(n, func(i int) engine.Spec {
		spec := cfg.Spec(i)
		spec.Options = ri.Cell(i, spec.Options)
		reducers[i] = streaming.NewCellReducer(streaming.Config{
			Meta: trace.Meta{
				Era: spec.Profile.Era, Cell: spec.Profile.Name,
				Duration: spec.Options.Horizon,
				Machines: spec.Profile.Machines,
				Seed:     spec.Options.Seed,
			},
			SnapshotAt: spec.Options.Horizon / 2,
		})
		spec.Options.ExtraSinks = append(spec.Options.ExtraSinks, reducers[i])
		return spec
	}, ri.Wrap(engine.Options{
		Parallelism: cfg.Parallelism,
		OnStart:     func(int) { prog.Start() },
		OnResult: func(i int, res *core.CellResult) {
			scalars := reducers[i].Scalars(warmup)
			reducers[i] = nil
			rep.TotalMachines += res.Profile.Machines
			for j, s := range scalars {
				if math.IsNaN(s.Value) {
					continue
				}
				digests[j].Add(s.Value)
				sums[j] += s.Value
			}
			if cfg.OnCell != nil {
				cfg.OnCell(CellSummary{
					Index: i, Name: res.Profile.Name,
					Machines: res.Profile.Machines, Scalars: scalars,
				})
			}
			prog.Done()
		},
	}))
	rep.Rollup = rollup(names, digests, sums, n)
	return rep
}

// rollup folds the per-metric digests into the report rows.
func rollup(names []string, digests []*stats.Digest, sums []float64, cells int) []MetricRollup {
	out := make([]MetricRollup, len(names))
	for i, name := range names {
		d := digests[i]
		r := MetricRollup{Name: name}
		if c := d.Count(); c > 0 {
			r.Mean = sums[i] / float64(c)
			r.P50 = d.Quantile(0.50)
			r.P90 = d.Quantile(0.90)
			r.P99 = d.Quantile(0.99)
			r.Min = d.Min()
			r.Max = d.Max()
		}
		out[i] = r
	}
	return out
}

// WriteText renders the fleet report as an aligned text table.
func (r *Report) WriteText(w io.Writer) error {
	noise := "exact"
	if r.FastNoise {
		noise = "fast"
	}
	if _, err := fmt.Fprintf(w, "fleet: %d cells, %d machines, horizon %s, seed %d, usage noise %s\n",
		r.Cells, r.TotalMachines, r.Horizon, r.Seed, noise); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-18s %10s %10s %10s %10s %10s %10s\n",
		"metric", "mean", "p50", "p90", "p99", "min", "max"); err != nil {
		return err
	}
	for _, m := range r.Rollup {
		if _, err := fmt.Fprintf(w, "%-18s %10.4g %10.4g %10.4g %10.4g %10.4g %10.4g\n",
			m.Name, m.Mean, m.P50, m.P90, m.P99, m.Min, m.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the rollup in machine-readable long form.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "mean", "p50", "p90", "p99", "min", "max"}); err != nil {
		return err
	}
	for _, m := range r.Rollup {
		rec := []string{m.Name}
		for _, v := range []float64{m.Mean, m.P50, m.P90, m.P99, m.Min, m.Max} {
			rec = append(rec, ftoa(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CellCSV streams per-cell scalar rows to CSV — plug its Cell method
// into Config.OnCell. Rows arrive in fleet order, so the file is
// deterministic for a given (config, seed) at any parallelism.
type CellCSV struct {
	w      *csv.Writer
	header bool
	err    error
}

// NewCellCSV returns a streaming per-cell CSV writer.
func NewCellCSV(w io.Writer) *CellCSV { return &CellCSV{w: csv.NewWriter(w)} }

// Cell appends one cell's row, writing the header first on first use.
func (c *CellCSV) Cell(s CellSummary) {
	if c.err != nil {
		return
	}
	if !c.header {
		c.header = true
		rec := []string{"cell", "machines"}
		for _, sc := range s.Scalars {
			rec = append(rec, sc.Name)
		}
		if c.err = c.w.Write(rec); c.err != nil {
			return
		}
	}
	rec := []string{s.Name, strconv.Itoa(s.Machines)}
	for _, sc := range s.Scalars {
		rec = append(rec, ftoa(sc.Value))
	}
	c.err = c.w.Write(rec)
}

// Close flushes the writer and reports the first error encountered.
func (c *CellCSV) Close() error {
	c.w.Flush()
	if c.err != nil {
		return c.err
	}
	return c.w.Error()
}

// ftoa formats a float at full round-trip precision, keeping CSV output
// byte-comparable across runs.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
