package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis/streaming"
	"repro/internal/sim"
)

// testConfig is a fleet small enough for unit tests but large enough to
// exercise out-of-order completion under parallelism.
func testConfig(par int) Config {
	return Config{
		Cells:          10,
		MedianMachines: 20,
		Horizon:        sim.Hour,
		Seed:           5,
		Parallelism:    par,
	}
}

// TestFleetRollupParallelismInvariant pins the headline determinism
// claim: the fleet report and the streaming per-cell CSV are
// byte-identical at parallelism 1 and 8 for the same root seed.
func TestFleetRollupParallelismInvariant(t *testing.T) {
	run := func(par int) (*Report, string) {
		var csvBuf bytes.Buffer
		cw := NewCellCSV(&csvBuf)
		cfg := testConfig(par)
		cfg.OnCell = cw.Cell
		rep := Run(cfg)
		if err := cw.Close(); err != nil {
			t.Fatalf("cell CSV: %v", err)
		}
		return rep, csvBuf.String()
	}
	rep1, csv1 := run(1)
	rep8, csv8 := run(8)
	if !reflect.DeepEqual(rep1, rep8) {
		t.Fatalf("fleet report differs across parallelism:\np1: %+v\np8: %+v", rep1, rep8)
	}
	if csv1 != csv8 {
		t.Fatal("per-cell CSV differs across parallelism")
	}
	var text1, text8 bytes.Buffer
	if err := rep1.WriteText(&text1); err != nil {
		t.Fatal(err)
	}
	if err := rep8.WriteText(&text8); err != nil {
		t.Fatal(err)
	}
	if text1.String() != text8.String() {
		t.Fatal("report text differs across parallelism")
	}
}

func TestFleetReportShape(t *testing.T) {
	var cells []CellSummary
	cfg := testConfig(4)
	cfg.OnCell = func(s CellSummary) { cells = append(cells, s) }
	rep := Run(cfg)
	if rep.Cells != cfg.Cells || len(cells) != cfg.Cells {
		t.Fatalf("cells: report %d, observed %d, want %d", rep.Cells, len(cells), cfg.Cells)
	}
	for i, s := range cells {
		if s.Index != i {
			t.Fatalf("cell summaries out of order: %d at position %d", s.Index, i)
		}
		if s.Machines <= 0 || len(s.Scalars) != len(streaming.ScalarNames()) {
			t.Fatalf("cell %d summary malformed: %+v", i, s)
		}
	}
	if rep.TotalMachines <= 0 {
		t.Fatal("no machines accounted")
	}
	names := streaming.ScalarNames()
	if len(rep.Rollup) != len(names) {
		t.Fatalf("rollup has %d metrics, want %d", len(rep.Rollup), len(names))
	}
	for i, m := range rep.Rollup {
		if m.Name != names[i] {
			t.Fatalf("rollup metric %d is %q, want %q", i, m.Name, names[i])
		}
		if m.P50 > m.P90 || m.P90 > m.P99 || m.Min > m.P50 || m.P99 > m.Max {
			t.Fatalf("%s: percentiles out of order: %+v", m.Name, m)
		}
	}
	util := rep.Rollup[0]
	if util.Name != "cpu_util" || util.Mean <= 0 || util.Mean >= 1 {
		t.Fatalf("cpu_util rollup implausible: %+v", util)
	}
}

func TestFleetCSVAndTextOutputs(t *testing.T) {
	rep := Run(testConfig(2))
	var csvBuf, textBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+len(rep.Rollup) {
		t.Fatalf("rollup CSV has %d lines, want %d", len(lines), 1+len(rep.Rollup))
	}
	if lines[0] != "metric,mean,p50,p90,p99,min,max" {
		t.Fatalf("rollup CSV header %q", lines[0])
	}
	if err := rep.WriteText(&textBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(textBuf.String(), "cpu_util") {
		t.Fatal("report text missing metrics")
	}
}

func TestFleetSpecContract(t *testing.T) {
	cfg := testConfig(1)
	a := cfg.Spec(3)
	b := cfg.Spec(3)
	if a.Profile.Machines != b.Profile.Machines || a.Options.Seed != b.Options.Seed {
		t.Fatal("Spec is not a pure function of (config, index)")
	}
	if a.Profile.Name != "f003" {
		t.Fatalf("cell name %q", a.Profile.Name)
	}
	if !a.Options.NoMemTrace {
		t.Fatal("fleet specs must not retain MemTraces")
	}
	if a.Options.IDBase == cfg.Spec(4).Options.IDBase {
		t.Fatal("fleet cells share an ID space")
	}
}

func TestFleetEmpty(t *testing.T) {
	rep := Run(Config{Cells: 0, Seed: 1})
	if rep.Cells != 0 || rep.TotalMachines != 0 {
		t.Fatalf("empty fleet report: %+v", rep)
	}
	if len(rep.Rollup) != len(streaming.ScalarNames()) {
		t.Fatal("empty fleet rollup missing metric rows")
	}
}
