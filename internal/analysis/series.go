// Package analysis implements every analysis of the paper over generated
// traces: resource utilization and allocation series (Figures 2–5),
// machine shape and utilization distributions (Figures 1 and 6), state
// transitions (Figure 7), alloc-set and termination statistics (§5.1,
// §5.2), scheduler load (Figures 8–10), tasks-per-job (Figure 11),
// heavy-tailed usage integrals (Table 2, Figures 12–13), and Autopilot
// slack (Figure 14). Table 1's inventory is derived from trace metadata.
//
// Functions accept one or more MemTraces; where the paper aggregates
// across the 8 cells of the 2019 trace, pass all of them.
//
// Each analysis is factored into a per-cell accumulation step and an
// exact merge/finish step, so the streaming reducers in the analysis/
// streaming subpackage can compute the per-cell state online (while the
// simulation runs, with no retained trace) and still produce results
// bit-identical to the post-hoc path: within a cell both paths fold the
// same terms in trace-emission order, and across cells both paths merge
// the per-cell partials with the same functions in the same order.
package analysis

import (
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ShapePoint is one machine shape with its population (Figure 1).
type ShapePoint struct {
	CPU, Mem float64
	Count    int
}

// MachineShapes returns the distinct machine shapes and their counts,
// sorted by population descending (Figure 1's circle areas).
func MachineShapes(tr *trace.MemTrace) []ShapePoint {
	return ShapesOf(tr.MachineCapacities())
}

// ShapesOf derives Figure 1's shape populations from a machine-capacity
// snapshot (as built by MemTrace.MachineCapacities or maintained online
// by a streaming reducer).
func ShapesOf(caps map[trace.MachineID]trace.MachineEvent) []ShapePoint {
	counts := make(map[trace.Resources]int)
	for _, ev := range caps {
		counts[ev.Capacity]++
	}
	out := make([]ShapePoint, 0, len(counts))
	for r, n := range counts {
		out = append(out, ShapePoint{CPU: r.CPU, Mem: r.Mem, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].CPU != out[j].CPU {
			return out[i].CPU < out[j].CPU
		}
		return out[i].Mem < out[j].Mem
	})
	return out
}

// TierSeries is an hourly stacked time series of per-tier fractions of
// cell capacity (Figures 2 and 4).
type TierSeries struct {
	// Hours[i] is the start (in hours) of interval i.
	Hours []float64
	// CPU[tier][i] and Mem[tier][i] are fractions of cell capacity.
	CPU map[trace.Tier][]float64
	Mem map[trace.Tier][]float64
}

// newTierSeries allocates a zeroed series of n hours.
func newTierSeries(n int) TierSeries {
	s := TierSeries{
		Hours: make([]float64, n),
		CPU:   make(map[trace.Tier][]float64),
		Mem:   make(map[trace.Tier][]float64),
	}
	for i := range s.Hours {
		s.Hours[i] = float64(i)
	}
	for _, t := range trace.Tiers() {
		s.CPU[t] = make([]float64, n)
		s.Mem[t] = make([]float64, n)
	}
	return s
}

// TotalCapacity sums a capacity snapshot in ascending machine-ID order.
// The order is fixed so that both the post-hoc and the streaming path
// produce the same floating-point sum.
func TotalCapacity(caps map[trace.MachineID]trace.MachineEvent) trace.Resources {
	ids := make([]trace.MachineID, 0, len(caps))
	for id := range caps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sum trace.Resources
	for _, id := range ids {
		sum = sum.Add(caps[id].Capacity)
	}
	return sum
}

// SeriesHours converts a trace horizon to the hourly bucket count used by
// the Figure 2/4 series (at least one bucket).
func SeriesHours(duration sim.Time) int {
	hours := int(duration / sim.Hour)
	if hours <= 0 {
		hours = 1
	}
	return hours
}

// SeriesAccum accumulates the raw per-tier resource-hour sums behind a
// TierSeries, one usage record at a time in emission order. Normalization
// by cell capacity happens once in Finish, so the accumulation itself
// needs no knowledge of the cell — the property that lets a streaming
// reducer fold records online and still match the post-hoc sums bit for
// bit.
type SeriesAccum struct {
	hours int
	// Tiers are dense (0..NumTiers-1), so the per-tier buckets live in
	// arrays rather than maps: folding a record is pure indexed
	// arithmetic, which matters because this sits on the reducer's
	// per-usage-record path.
	cpu, mem [trace.NumTiers][]float64
}

// NewSeriesAccum returns a zeroed accumulator with one bucket per hour.
func NewSeriesAccum(hours int) *SeriesAccum {
	a := &SeriesAccum{hours: hours}
	for _, t := range trace.Tiers() {
		a.cpu[t] = make([]float64, hours)
		a.mem[t] = make([]float64, hours)
	}
	return a
}

// sampleWindowHours is Observe's per-record weight, hoisted.
var sampleWindowHours = sim.SampleWindow.Hours()

// Observe folds one record's contribution (v, normally the record's
// average usage or its limit) into the hour bucket containing its start.
func (a *SeriesAccum) Observe(rec trace.UsageRecord, v trace.Resources) {
	a.ObserveAt(rec.Start, rec.Tier, v)
}

// ObserveAt is Observe without the record: the streaming reducer's batch
// path calls it with the three fields it already has in hand, skipping a
// full record copy per accumulator.
func (a *SeriesAccum) ObserveAt(start sim.Time, tier trace.Tier, v trace.Resources) {
	h := int(start / sim.Hour)
	if h < 0 || h >= a.hours {
		return
	}
	a.cpu[tier][h] += v.CPU * sampleWindowHours
	a.mem[tier][h] += v.Mem * sampleWindowHours
}

// Finish normalizes the accumulated resource-hours by the cell's hourly
// capacity and returns the series. A non-positive capacity yields the
// zero series.
func (a *SeriesAccum) Finish(capacity trace.Resources) TierSeries {
	s := newTierSeries(a.hours)
	if capacity.CPU <= 0 || capacity.Mem <= 0 {
		return s
	}
	for _, t := range trace.Tiers() {
		for i := 0; i < a.hours; i++ {
			s.CPU[t][i] = a.cpu[t][i] / capacity.CPU
			s.Mem[t][i] = a.mem[t][i] / capacity.Mem
		}
	}
	return s
}

// inAllocJobs returns the set of collections that run inside alloc sets.
func inAllocJobs(tr *trace.MemTrace) map[trace.CollectionID]bool {
	out := make(map[trace.CollectionID]bool)
	for _, info := range tr.CollectionInfos() {
		if info.CollectionType == trace.CollectionJob && info.AllocSet != 0 {
			out[info.ID] = true
		}
	}
	return out
}

// UsageSeries computes Figure 2's hourly per-tier usage as a fraction of
// cell capacity.
func UsageSeries(tr *trace.MemTrace) TierSeries {
	return series(tr, false)
}

// AllocationSeries computes Figure 4's hourly per-tier allocation (sum of
// limits) as a fraction of cell capacity. Jobs running inside alloc sets
// are excluded: their limits consume the alloc set's reservation, which is
// already counted.
func AllocationSeries(tr *trace.MemTrace) TierSeries {
	return series(tr, true)
}

func series(tr *trace.MemTrace, allocation bool) TierSeries {
	a := NewSeriesAccum(SeriesHours(tr.Meta.Duration))
	var inAlloc map[trace.CollectionID]bool
	if allocation {
		inAlloc = inAllocJobs(tr)
	}
	for _, rec := range tr.UsageRecords {
		if allocation {
			if inAlloc[rec.Key.Collection] {
				continue
			}
			a.Observe(rec, rec.Limit)
		} else {
			a.Observe(rec, rec.AvgUsage)
		}
	}
	return a.Finish(TotalCapacity(tr.MachineCapacities()))
}

// AverageSeries averages several cells' series point-wise (the paper's
// "averaged across all 8 cells" panels). Series must have equal lengths;
// shorter series are padded as missing (ignored at that index).
func AverageSeries(all []TierSeries) TierSeries {
	n := 0
	for _, s := range all {
		if len(s.Hours) > n {
			n = len(s.Hours)
		}
	}
	out := newTierSeries(n)
	for i := 0; i < n; i++ {
		for _, tier := range trace.Tiers() {
			var sum float64
			var count int
			for _, s := range all {
				if i < len(s.CPU[tier]) {
					sum += s.CPU[tier][i]
					count++
				}
			}
			if count > 0 {
				out.CPU[tier][i] = sum / float64(count)
			}
			sum, count = 0, 0
			for _, s := range all {
				if i < len(s.Mem[tier]) {
					sum += s.Mem[tier][i]
					count++
				}
			}
			if count > 0 {
				out.Mem[tier][i] = sum / float64(count)
			}
		}
	}
	return out
}

// TierAverages is one cell's whole-trace average utilization or
// allocation by tier (one group of bars in Figures 3 and 5).
type TierAverages struct {
	Cell string
	CPU  map[trace.Tier]float64
	Mem  map[trace.Tier]float64
}

// AverageUsageByTier computes Figure 3's per-cell bars: the mean over
// post-warmup hours of the per-tier usage fraction.
func AverageUsageByTier(tr *trace.MemTrace, warmup sim.Time) TierAverages {
	return AverageOfSeries(UsageSeries(tr), tr.Meta.Cell, warmup)
}

// AverageAllocationByTier computes Figure 5's per-cell bars.
func AverageAllocationByTier(tr *trace.MemTrace, warmup sim.Time) TierAverages {
	return AverageOfSeries(AllocationSeries(tr), tr.Meta.Cell, warmup)
}

// AverageOfSeries reduces an hourly series to its post-warmup mean per
// tier (the shared final step of Figures 3 and 5).
func AverageOfSeries(s TierSeries, cell string, warmup sim.Time) TierAverages {
	out := TierAverages{
		Cell: cell,
		CPU:  make(map[trace.Tier]float64),
		Mem:  make(map[trace.Tier]float64),
	}
	start := int(warmup / sim.Hour)
	if start >= len(s.Hours) {
		start = 0
	}
	n := len(s.Hours) - start
	if n <= 0 {
		return out
	}
	for _, tier := range trace.Tiers() {
		var c, m float64
		for i := start; i < len(s.Hours); i++ {
			c += s.CPU[tier][i]
			m += s.Mem[tier][i]
		}
		out.CPU[tier] = c / float64(n)
		out.Mem[tier] = m / float64(n)
	}
	return out
}

// MachineUtilization returns each machine's usage÷capacity in the sampling
// window containing at; machines with no usage records in the window count
// as zero (Figure 6's snapshot distribution).
func MachineUtilization(tr *trace.MemTrace, at sim.Time) (cpu, mem []float64) {
	usage := make(map[trace.MachineID]trace.Resources)
	for _, rec := range tr.UsageRecords {
		if rec.Start <= at && at < rec.End && rec.Machine != 0 {
			usage[rec.Machine] = usage[rec.Machine].Add(rec.AvgUsage)
		}
	}
	return UtilizationSamples(tr.MachineCapacities(), usage)
}

// UtilizationSamples turns a capacity snapshot and the per-machine usage
// totals of one sampling window into Figure 6's per-machine utilization
// samples, in ascending machine-ID order.
func UtilizationSamples(caps map[trace.MachineID]trace.MachineEvent,
	usage map[trace.MachineID]trace.Resources) (cpu, mem []float64) {
	ids := make([]trace.MachineID, 0, len(caps))
	for id := range caps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c := caps[id].Capacity
		u := usage[id]
		// Work-conserving machines cannot exceed their physical capacity;
		// records of tasks that stopped mid-window can overlap the
		// snapshot instant with the survivors' windows, so clamp.
		if c.CPU > 0 {
			cpu = append(cpu, math.Min(1, u.CPU/c.CPU))
		}
		if c.Mem > 0 {
			mem = append(mem, math.Min(1, u.Mem/c.Mem))
		}
	}
	return cpu, mem
}

// MachineUtilizationCCDF computes Figure 6's CCDFs for one cell.
func MachineUtilizationCCDF(tr *trace.MemTrace, at sim.Time) (cpu, mem []stats.CCDFPoint) {
	c, m := MachineUtilization(tr, at)
	return stats.CCDF(c), stats.CCDF(m)
}
