package streaming

import (
	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Scalar is one named scalar figure-of-merit extracted from a finished
// reducer. Scalars are the unit of parameter-sweep statistics: each is a
// single comparable number per (cell, seed, variant), so cross-seed
// means and confidence intervals are well defined where full figure
// tables are not.
type Scalar struct {
	Name  string
	Value float64
}

// scalarNames is the fixed emission order of Scalars. Order is part of
// the contract: sweep aggregation indexes metric vectors positionally.
var scalarNames = []string{
	"cpu_util",          // post-warmup mean CPU usage, fraction of capacity
	"mem_util",          // post-warmup mean memory usage
	"cpu_alloc",         // post-warmup mean CPU allocation (limit) fraction
	"mem_alloc",         // post-warmup mean memory allocation fraction
	"jobs_per_hr_p50",   // median hourly job submission rate (raw, cell scale)
	"tasks_per_hr_p50",  // median hourly task submission rate incl. resubmits
	"delay_p50_s",       // median job scheduling delay, seconds
	"delay_p99_s",       // p99 job scheduling delay, seconds
	"evicted_share",     // fraction of collections with ≥1 eviction
	"tasks_per_job_p95", // p95 tasks per job, all tiers pooled
}

// ScalarNames lists the metrics Scalars emits, in emission order.
func ScalarNames() []string {
	return append([]string(nil), scalarNames...)
}

// Scalars extracts the cell's comparable scalar metrics from finished
// reducer state, in ScalarNames order. warmup excludes the ramp-in hours
// from the utilization and allocation averages, exactly as Figures 3/5
// do. Quantile metrics over empty sample sets report 0 rather than NaN
// so cross-seed aggregation stays finite.
func (r *CellReducer) Scalars(warmup sim.Time) []Scalar {
	r.finalize()

	sumTiers := func(a analysis.TierAverages) (cpu, mem float64) {
		for _, tier := range trace.Tiers() {
			cpu += a.CPU[tier]
			mem += a.Mem[tier]
		}
		return cpu, mem
	}
	cell := r.cfg.Meta.Cell
	useCPU, useMem := sumTiers(analysis.AverageOfSeries(r.usageSeries, cell, warmup))
	allocCPU, allocMem := sumTiers(analysis.AverageOfSeries(r.allocSeries, cell, warmup))

	var tpj []float64
	for _, tier := range trace.Tiers() {
		tpj = append(tpj, r.tasksPerJob[tier]...)
	}
	term := analysis.FinishTerminations([]analysis.TerminationAccum{r.termAccum})

	values := []float64{
		useCPU,
		useMem,
		allocCPU,
		allocMem,
		quantileOrZero(r.rates.JobsPerHour, 0.5),
		quantileOrZero(r.rates.AllTasksPerHour, 0.5),
		quantileOrZero(r.delays.All, 0.5),
		quantileOrZero(r.delays.All, 0.99),
		term.CollectionsWithEviction,
		quantileOrZero(tpj, 0.95),
	}
	out := make([]Scalar, len(values))
	for i, v := range values {
		out[i] = Scalar{Name: scalarNames[i], Value: v}
	}
	return out
}

// quantileOrZero is stats.Quantile with 0 (not NaN) for empty samples.
func quantileOrZero(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return stats.Quantile(xs, q)
}
