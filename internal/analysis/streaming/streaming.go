// Package streaming computes every per-figure analysis of the paper
// online, as the simulation emits trace rows, instead of post-hoc over a
// fully retained MemTrace. A CellReducer is a trace.Sink: attach one per
// cell via core.Options.ExtraSinks (typically together with NoMemTrace)
// and, once the simulation has finished, read the same structs the
// analysis package produces — bit-identical to the post-hoc path on the
// same trace, which is what lets full suites run with no trace retention
// and still emit a byte-identical report.
//
// # Memory model
//
// A retained trace grows with every row: life-cycle events and 5-minute
// usage records accumulate for the whole horizon, which is why memory —
// not CPU — capped suite horizons before this package existed. A
// CellReducer's state instead grows only with the number of distinct
// collections and instances (per-job aggregates the figures inherently
// need) plus fixed-size hourly buckets; per-row work is O(1) and
// allocation-free in steady state. Usage records, the dominant table by
// far, are folded and dropped.
//
// # Exactness contract
//
// Bit-identity with the post-hoc path holds because both sides are built
// from the same factored pieces in package analysis: within a cell both
// fold the same terms in trace-emission order (MemTrace replays tables in
// emission order, and the reducer sees rows in emission order), and
// normalizations/merges happen in shared Finish/Merge functions. Two
// trace invariants are relied on and checked by the differential tests: a
// collection's first event precedes all rows that reference it, and
// machine capacities are fully announced before the first usage record.
package streaming

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config identifies the cell a reducer consumes and pins the analysis
// parameters that must be known before rows stream in.
type Config struct {
	// Meta mirrors the retained trace's metadata: cell name, era,
	// duration (hourly bucket count), machine count and seed.
	Meta trace.Meta
	// SnapshotAt is the instant of Figure 6's machine-utilization
	// snapshot (the suite uses mid-horizon). Records overlapping this
	// instant are folded into the per-machine snapshot totals.
	SnapshotAt sim.Time
}

// collState is one collection's reduced view: the static attributes and
// outcome the analyses read, plus its per-job aggregates.
type collState struct {
	info      trace.CollectionInfo
	hasInfo   bool
	lastEvent trace.EventType
	hasLast   bool

	// Usage-path classification, memoized when the first event delivers
	// the static attributes (which precede every row that references the
	// collection): the per-record hot path tests three booleans instead
	// of re-deriving them from info.
	isJob      bool
	isAllocSet bool
	inAlloc    bool

	evictions int
	tasks     int // distinct instance indices seen

	sawUsage           bool
	cpuHours, memHours float64 // job usage integrals (Table 2)
}

// instState is one instance's reduced view.
type instState struct {
	lastEvent trace.EventType
	hasLast   bool
	submitted bool // first SUBMIT counted toward Figure 9's new tasks
}

// numScalingModes spans the dense trace.VerticalScaling values.
const numScalingModes = int(trace.ScalingFull) + 1

// CellReducer reduces one cell's trace stream into every per-figure
// analysis. It is not safe for concurrent use; the engine drives each
// cell's sink pipeline from a single goroutine, which is exactly the
// contract the reducer needs. Accessors may be called once the
// simulation has completed; the first access finalizes the reducer and
// further rows panic.
type CellReducer struct {
	cfg Config

	caps       map[trace.MachineID]trace.MachineEvent
	usageAcc   *analysis.SeriesAccum
	allocAcc   *analysis.SeriesAccum
	snapUsage  map[trace.MachineID]trace.Resources
	trans      analysis.TransitionCounts
	colls      map[trace.CollectionID]*collState
	insts      map[trace.InstanceKey]*instState
	rates      analysis.SubmissionRates
	allocAccum analysis.AllocSetAccum
	// slack is indexed by the dense trace.VerticalScaling values;
	// SlackSamples rebuilds the map shape the analyses consume.
	slack      [numScalingModes][]float64
	batchQueue bool

	enable     map[trace.CollectionID]sim.Time
	enableTier map[trace.CollectionID]trace.Tier
	firstSched map[trace.CollectionID]sim.Time

	// Products, computed once by finalize.
	done        bool
	shapes      []analysis.ShapePoint
	usageSeries analysis.TierSeries
	allocSeries analysis.TierSeries
	utilCPU     []float64
	utilMem     []float64
	transitions []analysis.Transition
	inventory   analysis.Inventory
	termAccum   analysis.TerminationAccum
	delays      analysis.DelaySamples
	tasksPerJob map[trace.Tier][]float64
	integrals   analysis.UsageIntegrals
}

// NewCellReducer returns an empty reducer for one cell.
func NewCellReducer(cfg Config) *CellReducer {
	hours := analysis.SeriesHours(cfg.Meta.Duration)
	return &CellReducer{
		cfg:       cfg,
		caps:      make(map[trace.MachineID]trace.MachineEvent),
		usageAcc:  analysis.NewSeriesAccum(hours),
		allocAcc:  analysis.NewSeriesAccum(hours),
		snapUsage: make(map[trace.MachineID]trace.Resources),
		trans:     make(analysis.TransitionCounts),
		colls:     make(map[trace.CollectionID]*collState),
		insts:     make(map[trace.InstanceKey]*instState),
		rates: analysis.SubmissionRates{
			JobsPerHour:     make([]float64, hours),
			NewTasksPerHour: make([]float64, hours),
			AllTasksPerHour: make([]float64, hours),
		},
		enable:     make(map[trace.CollectionID]sim.Time),
		enableTier: make(map[trace.CollectionID]trace.Tier),
		firstSched: make(map[trace.CollectionID]sim.Time),
	}
}

func (r *CellReducer) mutable() {
	if r.done {
		panic("streaming: trace row after CellReducer was finalized")
	}
}

func (r *CellReducer) coll(id trace.CollectionID) *collState {
	c := r.colls[id]
	if c == nil {
		c = &collState{}
		r.colls[id] = c
	}
	return c
}

// CollectionEvent reduces one collection_events row.
func (r *CellReducer) CollectionEvent(ev trace.CollectionEvent) {
	r.mutable()
	c := r.coll(ev.Collection)
	if !c.hasInfo {
		// The first event carries the static attributes, as
		// MemTrace.CollectionInfos reconstructs them.
		c.hasInfo = true
		c.info = trace.CollectionInfo{
			ID:             ev.Collection,
			CollectionType: ev.CollectionType,
			Priority:       ev.Priority,
			Tier:           ev.Tier,
			User:           ev.User,
			Parent:         ev.Parent,
			AllocSet:       ev.AllocSet,
			Scheduler:      ev.Scheduler,
			Scaling:        ev.Scaling,
			SubmitTime:     ev.Time,
			FinalEvent:     trace.EventSubmit,
		}
		r.allocAccum.ObserveCollection(ev.CollectionType, ev.AllocSet, ev.Tier)
		c.isJob = ev.CollectionType == trace.CollectionJob
		c.isAllocSet = ev.CollectionType == trace.CollectionAllocSet
		c.inAlloc = c.isJob && ev.AllocSet != 0
	}
	if ev.Type.IsTermination() {
		c.info.FinalEvent = ev.Type
		c.info.FinalTime = ev.Time
	}
	if c.hasLast {
		r.trans.Observe(c.lastEvent, ev.Type)
	}
	c.lastEvent, c.hasLast = ev.Type, true

	switch ev.Type {
	case trace.EventQueue:
		r.batchQueue = true
	case trace.EventSubmit:
		if c.info.CollectionType == trace.CollectionJob {
			if h := int(ev.Time / sim.Hour); h >= 0 && h < len(r.rates.JobsPerHour) {
				r.rates.JobsPerHour[h]++
			}
		}
	case trace.EventEnable:
		if ev.CollectionType == trace.CollectionJob {
			if _, ok := r.enable[ev.Collection]; !ok {
				r.enable[ev.Collection] = ev.Time
				r.enableTier[ev.Collection] = ev.Tier
			}
		}
	}
}

// InstanceEvent reduces one instance_events row.
func (r *CellReducer) InstanceEvent(ev trace.InstanceEvent) {
	r.mutable()
	in := r.insts[ev.Key]
	if in == nil {
		in = &instState{}
		r.insts[ev.Key] = in
		r.coll(ev.Key.Collection).tasks++
	}
	if in.hasLast {
		r.trans.Observe(in.lastEvent, ev.Type)
	}
	in.lastEvent, in.hasLast = ev.Type, true

	switch ev.Type {
	case trace.EventSubmit:
		c := r.colls[ev.Key.Collection]
		if c != nil && c.hasInfo && c.info.CollectionType == trace.CollectionJob {
			if h := int(ev.Time / sim.Hour); h >= 0 && h < len(r.rates.AllTasksPerHour) {
				r.rates.AllTasksPerHour[h]++
				if !in.submitted {
					// First *counted* SUBMIT, mirroring the post-hoc
					// seen-set which only records counted events.
					in.submitted = true
					r.rates.NewTasksPerHour[h]++
				}
			}
		}
	case trace.EventSchedule:
		if cur, ok := r.firstSched[ev.Key.Collection]; !ok || ev.Time < cur {
			r.firstSched[ev.Key.Collection] = ev.Time
		}
	case trace.EventEvict:
		r.coll(ev.Key.Collection).evictions++
	}
}

// Usage reduces one instance_usage row.
func (r *CellReducer) Usage(rec trace.UsageRecord) {
	r.mutable()
	r.usageOne(&rec, r.colls[rec.Key.Collection])
}

// UsageBatch reduces a block of instance_usage rows. Each record folds
// exactly as a scalar Usage call would — same terms, same order — so
// batched and scalar delivery of the same stream are bit-identical. The
// collection lookup is memoized across adjacent records: a machine
// window's batch arrives in victim order (priority, then collection),
// so same-collection records cluster.
func (r *CellReducer) UsageBatch(recs []trace.UsageRecord) {
	r.mutable()
	var lastC *collState
	var lastID trace.CollectionID
	for i := range recs {
		rec := &recs[i]
		if id := rec.Key.Collection; lastC == nil || id != lastID {
			lastC = r.colls[id]
			lastID = id
		}
		r.usageOne(rec, lastC)
	}
}

// usageOne folds one usage record given its collection's reduced state
// (nil when the collection has never had an event).
func (r *CellReducer) usageOne(rec *trace.UsageRecord, c *collState) {
	r.usageAcc.ObserveAt(rec.Start, rec.Tier, rec.AvgUsage)

	var isJob, isAllocSet, inAlloc bool
	if c != nil && c.hasInfo {
		isJob, isAllocSet, inAlloc = c.isJob, c.isAllocSet, c.inAlloc
	}

	if !inAlloc {
		// Jobs inside alloc sets consume their alloc set's reservation,
		// which the alloc set's own records already count (Figure 4).
		r.allocAcc.ObserveAt(rec.Start, rec.Tier, rec.Limit)
	}
	r.allocAccum.ObserveUsage(rec, isAllocSet, inAlloc)

	if isJob {
		h := (rec.End - rec.Start).Hours()
		c.sawUsage = true
		c.cpuHours += rec.AvgUsage.CPU * h
		c.memHours += rec.AvgUsage.Mem * h
		if s, ok := analysis.SlackSampleOf(rec); ok {
			mode := c.info.Scaling
			r.slack[mode] = append(r.slack[mode], s)
		}
	}

	if rec.Start <= r.cfg.SnapshotAt && r.cfg.SnapshotAt < rec.End && rec.Machine != 0 {
		r.snapUsage[rec.Machine] = r.snapUsage[rec.Machine].Add(rec.AvgUsage)
	}
}

// MachineEvent reduces one machine_events row.
func (r *CellReducer) MachineEvent(ev trace.MachineEvent) {
	r.mutable()
	switch ev.Type {
	case trace.MachineAdd, trace.MachineUpdate:
		r.caps[ev.Machine] = ev
	case trace.MachineRemove:
		delete(r.caps, ev.Machine)
	}
}

// sortedCollections returns the reduced collections in ascending ID
// order, skipping IDs that never saw a collection event (parity with
// MemTrace.CollectionInfos, which only knows collections with events).
func (r *CellReducer) sortedCollections() []*collState {
	out := make([]*collState, 0, len(r.colls))
	for _, c := range r.colls {
		if c.hasInfo {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.ID < out[j].info.ID })
	return out
}

// finalize computes every product exactly once.
func (r *CellReducer) finalize() {
	if r.done {
		return
	}
	r.done = true

	capacity := analysis.TotalCapacity(r.caps)
	r.shapes = analysis.ShapesOf(r.caps)
	r.usageSeries = r.usageAcc.Finish(capacity)
	r.allocSeries = r.allocAcc.Finish(capacity)
	r.utilCPU, r.utilMem = analysis.UtilizationSamples(r.caps, r.snapUsage)
	r.transitions = analysis.TransitionsFromCounts(r.trans)
	r.delays = analysis.FinishDelays(r.enable, r.enableTier, r.firstSched)

	colls := r.sortedCollections()
	r.inventory = analysis.NewInventory()
	for _, ev := range r.caps {
		r.inventory.ObserveMachine(ev)
	}
	r.inventory.BatchQueue = r.batchQueue
	r.tasksPerJob = make(map[trace.Tier][]float64)
	cpu := make(map[trace.CollectionID]float64)
	mem := make(map[trace.CollectionID]float64)
	for _, c := range colls {
		r.inventory.ObserveCollection(c.info)
		r.termAccum.ObserveCollection(c.info, c.evictions)
		if c.info.CollectionType != trace.CollectionJob {
			continue
		}
		if c.tasks > 0 {
			r.tasksPerJob[c.info.Tier] = append(r.tasksPerJob[c.info.Tier], float64(c.tasks))
		}
		if c.sawUsage {
			cpu[c.info.ID] = c.cpuHours
			mem[c.info.ID] = c.memHours
		}
	}
	r.integrals = analysis.FinishIntegrals(cpu, mem)
}

// Meta returns the cell's metadata.
func (r *CellReducer) Meta() trace.Meta { return r.cfg.Meta }

// MachineShapes returns Figure 1's shape populations.
func (r *CellReducer) MachineShapes() []analysis.ShapePoint {
	r.finalize()
	return r.shapes
}

// UsageSeries returns Figure 2's hourly per-tier usage series.
func (r *CellReducer) UsageSeries() analysis.TierSeries {
	r.finalize()
	return r.usageSeries
}

// AllocationSeries returns Figure 4's hourly per-tier allocation series.
func (r *CellReducer) AllocationSeries() analysis.TierSeries {
	r.finalize()
	return r.allocSeries
}

// AverageUsageByTier returns Figure 3's per-cell bars.
func (r *CellReducer) AverageUsageByTier(warmup sim.Time) analysis.TierAverages {
	return analysis.AverageOfSeries(r.UsageSeries(), r.cfg.Meta.Cell, warmup)
}

// AverageAllocationByTier returns Figure 5's per-cell bars.
func (r *CellReducer) AverageAllocationByTier(warmup sim.Time) analysis.TierAverages {
	return analysis.AverageOfSeries(r.AllocationSeries(), r.cfg.Meta.Cell, warmup)
}

// MachineUtilization returns Figure 6's per-machine utilization samples
// at the configured snapshot instant.
func (r *CellReducer) MachineUtilization() (cpu, mem []float64) {
	r.finalize()
	return r.utilCPU, r.utilMem
}

// Transitions returns Figure 7's transition counts.
func (r *CellReducer) Transitions() []analysis.Transition {
	r.finalize()
	return r.transitions
}

// Inventory returns the cell's Table 1 inventory partial.
func (r *CellReducer) Inventory() analysis.Inventory {
	r.finalize()
	return r.inventory
}

// AllocSetAccum returns the cell's §5.1 partial.
func (r *CellReducer) AllocSetAccum() analysis.AllocSetAccum {
	r.finalize()
	return r.allocAccum
}

// TerminationAccum returns the cell's §5.2 partial.
func (r *CellReducer) TerminationAccum() analysis.TerminationAccum {
	r.finalize()
	return r.termAccum
}

// Rates returns the cell's Figure 8/9 hourly submission samples.
func (r *CellReducer) Rates() analysis.SubmissionRates {
	r.finalize()
	return r.rates
}

// Delays returns the cell's Figure 10 scheduling-delay samples.
func (r *CellReducer) Delays() analysis.DelaySamples {
	r.finalize()
	return r.delays
}

// TasksPerJob returns the cell's Figure 11 task-count samples by tier.
func (r *CellReducer) TasksPerJob() map[trace.Tier][]float64 {
	r.finalize()
	return r.tasksPerJob
}

// UsageIntegrals returns the cell's Table 2 per-job resource-hours.
func (r *CellReducer) UsageIntegrals() analysis.UsageIntegrals {
	r.finalize()
	return r.integrals
}

// SlackSamples returns the cell's Figure 14 slack samples by strategy.
// Like the post-hoc analysis.SlackSamplesOf, the map holds only
// strategies that produced at least one sample.
func (r *CellReducer) SlackSamples() map[trace.VerticalScaling][]float64 {
	r.finalize()
	out := make(map[trace.VerticalScaling][]float64)
	for mode, samples := range r.slack {
		if len(samples) > 0 {
			out[trace.VerticalScaling(mode)] = samples
		}
	}
	return out
}

// Counts summarizes the reducer's state sizes, for logs.
func (r *CellReducer) Counts() string {
	return fmt.Sprintf("collections=%d instances=%d machines=%d",
		len(r.colls), len(r.insts), len(r.caps))
}

// Replay feeds a retained trace through a fresh reducer, table by table
// in emission order (machines, collections, instances, usage). Feeding
// collection events before the rows that reference them preserves the
// same first-event-precedes-references invariant the live stream
// provides, so a replayed reducer is bit-identical to one that consumed
// the stream live — the property the differential tests pin.
func Replay(tr *trace.MemTrace, cfg Config) *CellReducer {
	r := NewCellReducer(cfg)
	for _, ev := range tr.MachineEvents {
		r.MachineEvent(ev)
	}
	for _, ev := range tr.CollectionEvents {
		r.CollectionEvent(ev)
	}
	for _, ev := range tr.InstanceEvents {
		r.InstanceEvent(ev)
	}
	for _, rec := range tr.UsageRecords {
		r.Usage(rec)
	}
	return r
}
