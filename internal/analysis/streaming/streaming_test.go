package streaming

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fixture runs one cell with both a streaming reducer attached to the
// live sink pipeline and full MemTrace retention, so every reducer
// product can be compared against the post-hoc path on the exact same
// rows.
type fixture struct {
	tr  *trace.MemTrace
	red *CellReducer
	at  sim.Time
}

var (
	fixOnce          sync.Once
	fix2019, fix2011 *fixture
)

func runFixture(p *workload.CellProfile, horizon sim.Time, seed uint64) *fixture {
	at := horizon / 2
	red := NewCellReducer(Config{
		Meta: trace.Meta{
			Era: p.Era, Cell: p.Name, Duration: horizon,
			Machines: p.Machines, Seed: seed,
		},
		SnapshotAt: at,
	})
	res := core.Run(p, core.Options{
		Horizon:    horizon,
		Seed:       seed,
		ExtraSinks: []trace.Sink{red},
	})
	return &fixture{tr: res.Trace, red: red, at: at}
}

func fixtures(t *testing.T) (*fixture, *fixture) {
	t.Helper()
	fixOnce.Do(func() {
		fix2019 = runFixture(workload.Profile2019("a", 120), 10*sim.Hour, 42)
		fix2011 = runFixture(workload.Profile2011(120), 10*sim.Hour, 43)
	})
	return fix2019, fix2011
}

// diff asserts got == want via reflect.DeepEqual with a labelled failure.
func diff(t *testing.T, label string, got, want any) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: streaming reducer diverges from post-hoc analysis\n got: %+v\nwant: %+v", label, got, want)
	}
}

func TestReducerMatchesPostHoc(t *testing.T) {
	f19, f11 := fixtures(t)
	for _, f := range []*fixture{f19, f11} {
		cell := f.tr.Meta.Cell
		diff(t, cell+" shapes", f.red.MachineShapes(), analysis.MachineShapes(f.tr))
		diff(t, cell+" usage series", f.red.UsageSeries(), analysis.UsageSeries(f.tr))
		diff(t, cell+" allocation series", f.red.AllocationSeries(), analysis.AllocationSeries(f.tr))
		diff(t, cell+" tier averages", f.red.AverageUsageByTier(2*sim.Hour),
			analysis.AverageUsageByTier(f.tr, 2*sim.Hour))
		cpu, mem := f.red.MachineUtilization()
		wantCPU, wantMem := analysis.MachineUtilization(f.tr, f.at)
		diff(t, cell+" utilization cpu", cpu, wantCPU)
		diff(t, cell+" utilization mem", mem, wantMem)
		diff(t, cell+" transitions", f.red.Transitions(), analysis.Transitions(f.tr))
		diff(t, cell+" inventory", f.red.Inventory(), analysis.InventoryOf(f.tr))
		diff(t, cell+" allocset accum", f.red.AllocSetAccum(), analysis.AllocSetAccumOf(f.tr))
		diff(t, cell+" termination accum", f.red.TerminationAccum(), analysis.TerminationAccumOf(f.tr))
		diff(t, cell+" rates", f.red.Rates(), analysis.RatesOf(f.tr))
		diff(t, cell+" delays", f.red.Delays(), analysis.DelaysOf(f.tr))
		diff(t, cell+" tasks per job", f.red.TasksPerJob(), analysis.TasksPerJobOf(f.tr))
		diff(t, cell+" integrals", f.red.UsageIntegrals(), analysis.JobUsageIntegralsOf(f.tr))
		diff(t, cell+" slack", f.red.SlackSamples(), analysis.SlackSamplesOf(f.tr))
	}
}

// TestReplayMatchesLive pins the ordering contract: replaying a retained
// trace table-by-table through a fresh reducer yields the same state as
// consuming the live interleaved stream.
func TestReplayMatchesLive(t *testing.T) {
	f19, _ := fixtures(t)
	replayed := Replay(f19.tr, Config{Meta: f19.tr.Meta, SnapshotAt: f19.at})
	diff(t, "usage series", replayed.UsageSeries(), f19.red.UsageSeries())
	diff(t, "transitions", replayed.Transitions(), f19.red.Transitions())
	diff(t, "rates", replayed.Rates(), f19.red.Rates())
	diff(t, "integrals", replayed.UsageIntegrals(), f19.red.UsageIntegrals())
	diff(t, "allocset accum", replayed.AllocSetAccum(), f19.red.AllocSetAccum())
	cpu, mem := replayed.MachineUtilization()
	liveCPU, liveMem := f19.red.MachineUtilization()
	diff(t, "utilization cpu", cpu, liveCPU)
	diff(t, "utilization mem", mem, liveMem)
}

func TestRowAfterFinalizePanics(t *testing.T) {
	r := NewCellReducer(Config{Meta: trace.Meta{Duration: sim.Hour}})
	r.CollectionEvent(trace.CollectionEvent{Collection: 1, Type: trace.EventSubmit})
	_ = r.Transitions() // finalizes
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on row after finalize")
		}
	}()
	r.CollectionEvent(trace.CollectionEvent{Collection: 1, Type: trace.EventFinish})
}

func TestReducerStateIsBounded(t *testing.T) {
	f19, _ := fixtures(t)
	// The reducer must have dropped the usage table: its state tracks
	// collections and instances, not rows.
	if len(f19.red.colls) == 0 || len(f19.red.insts) == 0 {
		t.Fatalf("reducer state empty: %s", f19.red.Counts())
	}
	if rows := len(f19.tr.UsageRecords); rows <= len(f19.red.colls) {
		t.Skipf("fixture too small to demonstrate reduction (usage rows %d)", rows)
	}
}
