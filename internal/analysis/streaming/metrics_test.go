package streaming

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestScalarsMatchAccessorDerivation pins Scalars against independent
// recomputation from the reducer's figure accessors on a real simulated
// cell: names in contract order, utilization scalars equal to the tier
// sums of Figures 3/5, and the termination share equal to the §5.2
// finish function.
func TestScalarsMatchAccessorDerivation(t *testing.T) {
	p := workload.Profile2019("b", 40)
	horizon := 4 * sim.Hour
	warmup := sim.Hour
	res := core.Run(p, core.Options{Horizon: horizon, Seed: 11})
	r := Replay(res.Trace, Config{
		Meta:       res.Trace.Meta,
		SnapshotAt: horizon / 2,
	})

	scalars := r.Scalars(warmup)
	names := ScalarNames()
	if len(scalars) != len(names) {
		t.Fatalf("got %d scalars, want %d", len(scalars), len(names))
	}
	byName := make(map[string]float64, len(scalars))
	for i, s := range scalars {
		if s.Name != names[i] {
			t.Fatalf("scalar %d named %q, want %q", i, s.Name, names[i])
		}
		byName[s.Name] = s.Value
	}

	sumTiers := func(a analysis.TierAverages) (cpu, mem float64) {
		for _, tier := range trace.Tiers() {
			cpu += a.CPU[tier]
			mem += a.Mem[tier]
		}
		return cpu, mem
	}
	wantCPU, wantMem := sumTiers(r.AverageUsageByTier(warmup))
	if byName["cpu_util"] != wantCPU || byName["mem_util"] != wantMem {
		t.Fatalf("util scalars (%g, %g) != tier sums (%g, %g)",
			byName["cpu_util"], byName["mem_util"], wantCPU, wantMem)
	}
	if byName["cpu_util"] <= 0 || byName["cpu_alloc"] < byName["cpu_util"] {
		t.Fatalf("implausible utilization: util %g alloc %g", byName["cpu_util"], byName["cpu_alloc"])
	}
	term := analysis.FinishTerminations([]analysis.TerminationAccum{r.TerminationAccum()})
	if byName["evicted_share"] != term.CollectionsWithEviction {
		t.Fatalf("evicted_share %g != %g", byName["evicted_share"], term.CollectionsWithEviction)
	}
	if byName["jobs_per_hr_p50"] <= 0 || byName["tasks_per_job_p95"] < 1 {
		t.Fatalf("rate/size scalars: %v", byName)
	}
}

// TestScalarsEmptyReducer checks an empty cell yields finite zeros, not
// NaNs, so sweep aggregation over degenerate cells stays well defined.
func TestScalarsEmptyReducer(t *testing.T) {
	r := NewCellReducer(Config{Meta: trace.Meta{Duration: 2 * sim.Hour}})
	for _, s := range r.Scalars(0) {
		if s.Value != 0 {
			t.Fatalf("empty-cell scalar %s = %g, want 0", s.Name, s.Value)
		}
	}
}
