package analysis

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Shared fixtures: one 2019 cell and one 2011 cell, simulated once.
var (
	fixtureOnce sync.Once
	fx2019      *trace.MemTrace
	fx2011      *trace.MemTrace
)

func fixtures(t *testing.T) (*trace.MemTrace, *trace.MemTrace) {
	t.Helper()
	fixtureOnce.Do(func() {
		fx2019 = core.Run(workload.Profile2019("a", 150),
			core.Options{Horizon: 12 * sim.Hour, Seed: 42}).Trace
		fx2011 = core.Run(workload.Profile2011(150),
			core.Options{Horizon: 12 * sim.Hour, Seed: 43}).Trace
	})
	return fx2019, fx2011
}

func TestMachineShapes(t *testing.T) {
	t19, t11 := fixtures(t)
	s19 := MachineShapes(t19)
	s11 := MachineShapes(t11)
	total := 0
	for _, p := range s19 {
		total += p.Count
		if p.CPU <= 0 || p.Mem <= 0 {
			t.Fatalf("degenerate shape %+v", p)
		}
	}
	if total != 150 {
		t.Fatalf("shape counts sum to %d", total)
	}
	if len(s19) <= len(s11) {
		t.Fatalf("2019 shapes (%d) should outnumber 2011's (%d)", len(s19), len(s11))
	}
	// Sorted by count descending.
	for i := 1; i < len(s19); i++ {
		if s19[i].Count > s19[i-1].Count {
			t.Fatal("shapes not sorted by count")
		}
	}
}

func TestUsageSeriesBounds(t *testing.T) {
	t19, _ := fixtures(t)
	s := UsageSeries(t19)
	if len(s.Hours) != 12 {
		t.Fatalf("series length %d", len(s.Hours))
	}
	for i := range s.Hours {
		var sum float64
		for _, tier := range trace.Tiers() {
			v := s.CPU[tier][i]
			if v < 0 {
				t.Fatalf("negative usage fraction %v", v)
			}
			sum += v
		}
		if sum > 1.05 {
			t.Fatalf("hour %d total CPU usage fraction %v > 1", i, sum)
		}
	}
}

func TestAllocationExceedsUsage(t *testing.T) {
	t19, _ := fixtures(t)
	u := UsageSeries(t19)
	a := AllocationSeries(t19)
	// In steady state, summed allocation must exceed summed usage
	// (limits are oversized; §4).
	var usageSum, allocSum float64
	for i := 6; i < len(u.Hours); i++ {
		for _, tier := range trace.Tiers() {
			usageSum += u.CPU[tier][i]
			allocSum += a.CPU[tier][i]
		}
	}
	if allocSum <= usageSum {
		t.Fatalf("allocation (%v) should exceed usage (%v)", allocSum, usageSum)
	}
}

func TestAverageSeries(t *testing.T) {
	a := newTierSeries(2)
	b := newTierSeries(2)
	a.CPU[trace.TierFree][0] = 0.2
	b.CPU[trace.TierFree][0] = 0.4
	avg := AverageSeries([]TierSeries{a, b})
	if math.Abs(avg.CPU[trace.TierFree][0]-0.3) > 1e-12 {
		t.Fatalf("average %v", avg.CPU[trace.TierFree][0])
	}
}

func TestAverageUsageByTier(t *testing.T) {
	t19, _ := fixtures(t)
	av := AverageUsageByTier(t19, 6*sim.Hour)
	if av.Cell != "a" {
		t.Fatalf("cell %q", av.Cell)
	}
	// Cell a is prod-heavy: production must be the top CPU consumer.
	for _, tier := range []trace.Tier{trace.TierFree, trace.TierMid} {
		if av.CPU[tier] >= av.CPU[trace.TierProduction] {
			t.Fatalf("tier %v (%v) >= prod (%v) in prod-heavy cell a",
				tier, av.CPU[tier], av.CPU[trace.TierProduction])
		}
	}
	if av.CPU[trace.TierProduction] <= 0 {
		t.Fatal("no production usage")
	}
}

func TestMachineUtilization(t *testing.T) {
	t19, _ := fixtures(t)
	cpu, mem := MachineUtilization(t19, 8*sim.Hour)
	if len(cpu) != 150 || len(mem) != 150 {
		t.Fatalf("utilization samples %d/%d", len(cpu), len(mem))
	}
	for _, v := range cpu {
		if v < 0 || v > 1.01 {
			t.Fatalf("cpu utilization %v out of range", v)
		}
	}
	for _, v := range mem {
		if v < 0 || v > 1.01 {
			t.Fatalf("mem utilization %v out of range", v)
		}
	}
	ccdfC, ccdfM := MachineUtilizationCCDF(t19, 8*sim.Hour)
	if len(ccdfC) == 0 || len(ccdfM) == 0 {
		t.Fatal("empty ccdf")
	}
	if ccdfC[len(ccdfC)-1].P != 0 {
		t.Fatal("ccdf must end at zero")
	}
}

func TestTransitions(t *testing.T) {
	t19, _ := fixtures(t)
	ts := Transitions(t19)
	if len(ts) == 0 {
		t.Fatal("no transitions")
	}
	find := func(from, to string) int {
		for _, tr := range ts {
			if tr.From == from && tr.To == to {
				return tr.Count
			}
		}
		return 0
	}
	if find("SUBMIT", "ENABLE") == 0 {
		t.Fatal("no SUBMIT->ENABLE transitions")
	}
	if find("SUBMIT", "QUEUE") == 0 {
		t.Fatal("no SUBMIT->QUEUE transitions (batch tier)")
	}
	if find("SUBMIT", "SCHEDULE") == 0 {
		t.Fatal("no SUBMIT->SCHEDULE instance transitions")
	}
	// Common paths dominate rare ones (Figure 7's orders of magnitude).
	if common, rare := find("SUBMIT", "SCHEDULE"), find("EVICT", "SUBMIT"); common <= rare {
		t.Fatalf("common path (%d) should dominate rare path (%d)", common, rare)
	}
	if FormatTransition(ts[0]) == "" {
		t.Fatal("format")
	}
}

func TestAllocSetStats(t *testing.T) {
	t19, t11 := fixtures(t)
	st := AllocSets([]*trace.MemTrace{t19})
	if st.AllocSets == 0 {
		t.Fatal("no alloc sets in 2019 trace")
	}
	if st.AllocSetShare < 0.005 || st.AllocSetShare > 0.06 {
		t.Fatalf("alloc set share %v, want ~0.02", st.AllocSetShare)
	}
	if st.CPUAllocShare < 0.05 || st.CPUAllocShare > 0.5 {
		t.Fatalf("alloc CPU share %v, want ~0.20", st.CPUAllocShare)
	}
	if st.ProdShareInAlloc < 0.8 {
		t.Fatalf("prod share of in-alloc jobs %v, want ~0.95", st.ProdShareInAlloc)
	}
	if st.MemUtilInAlloc <= st.MemUtilOutside {
		t.Fatalf("in-alloc mem util (%v) should exceed outside (%v)",
			st.MemUtilInAlloc, st.MemUtilOutside)
	}
	// 2011: no alloc sets at all.
	st11 := AllocSets([]*trace.MemTrace{t11})
	if st11.AllocSets != 0 {
		t.Fatalf("2011 alloc sets %d", st11.AllocSets)
	}
}

func TestTerminationStats(t *testing.T) {
	t19, _ := fixtures(t)
	st := Terminations([]*trace.MemTrace{t19})
	if st.Collections == 0 {
		t.Fatal("no collections")
	}
	if st.ByFinal[trace.EventFinish] == 0 || st.ByFinal[trace.EventKill] == 0 {
		t.Fatalf("termination mix %v", st.ByFinal)
	}
	// The paper reports 3.2% at month scale; the 12-hour fixture has a
	// larger share because transient ramp-in pressure affects relatively
	// more of its few hundred collections.
	if st.CollectionsWithEviction < 0.001 || st.CollectionsWithEviction > 0.20 {
		t.Fatalf("evicted share %v, want small (paper: 3.2%%)", st.CollectionsWithEviction)
	}
	if st.KillRateWithParent <= st.KillRateWithoutParent {
		t.Fatalf("parented kill rate (%v) should exceed parentless (%v); paper: 87%% vs 41%%",
			st.KillRateWithParent, st.KillRateWithoutParent)
	}
	if st.NonProdShareOfEvicted < 0.5 {
		t.Fatalf("non-prod share of evicted %v, want high (paper: 96.6%%)", st.NonProdShareOfEvicted)
	}
}

func TestRates(t *testing.T) {
	t19, t11 := fixtures(t)
	r19 := Rates([]*trace.MemTrace{t19})
	r11 := Rates([]*trace.MemTrace{t11})
	if len(r19.JobsPerHour) != 12 {
		t.Fatalf("rate samples %d", len(r19.JobsPerHour))
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	m19, m11 := mean(r19.JobsPerHour), mean(r11.JobsPerHour)
	ratio := m19 / m11
	if ratio < 2.3 || ratio > 5.2 {
		t.Fatalf("2019/2011 job rate ratio %v, want ~3.5 (paper: 3.7 median)", ratio)
	}
	// Rescheduling churn: all-tasks must exceed new-tasks, much more so
	// in 2019 (paper: 2.26:1 vs 0.66:1).
	resub19 := mean(r19.AllTasksPerHour)/mean(r19.NewTasksPerHour) - 1
	resub11 := mean(r11.AllTasksPerHour)/mean(r11.NewTasksPerHour) - 1
	if resub19 <= resub11 {
		t.Fatalf("2019 churn (%v) should exceed 2011's (%v)", resub19, resub11)
	}
	if resub19 < 1.0 {
		t.Fatalf("2019 resubmit ratio %v, want > 1 (paper: 2.26)", resub19)
	}
}

func TestSchedulingDelays(t *testing.T) {
	t19, _ := fixtures(t)
	all, byTier := SchedulingDelays([]*trace.MemTrace{t19})
	if len(all) < 100 {
		t.Fatalf("too few delay samples: %d", len(all))
	}
	for _, d := range all {
		if d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
	prodMed := stats.Quantile(byTier[trace.TierProduction], 0.5)
	bebP90 := stats.Quantile(byTier[trace.TierBestEffortBatch], 0.9)
	if !(prodMed < bebP90) {
		t.Fatalf("prod median delay %v should undercut beb tail %v", prodMed, bebP90)
	}
}

func TestTasksPerJobByTier(t *testing.T) {
	t19, _ := fixtures(t)
	tpj := TasksPerJob([]*trace.MemTrace{t19})
	beb95 := stats.Quantile(tpj[trace.TierBestEffortBatch], 0.95)
	prod95 := stats.Quantile(tpj[trace.TierProduction], 0.95)
	if !(beb95 > prod95) {
		t.Fatalf("beb 95%%ile (%v) should exceed prod's (%v)", beb95, prod95)
	}
}

func TestUsageIntegralsAndTable2(t *testing.T) {
	t19, _ := fixtures(t)
	ints := JobUsageIntegrals([]*trace.MemTrace{t19})
	if len(ints.CPUHours) != len(ints.MemHours) || len(ints.CPUHours) == 0 {
		t.Fatalf("integrals %d/%d", len(ints.CPUHours), len(ints.MemHours))
	}
	col := ComputeTable2Column(ints.CPUHours)
	if col.N != len(ints.CPUHours) {
		t.Fatalf("N %d", col.N)
	}
	if col.Median >= col.Mean {
		t.Fatalf("median %v >= mean %v — not right-skewed", col.Median, col.Mean)
	}
	if col.Top1Share < 0.3 {
		t.Fatalf("top-1%% share %v, want heavy tail", col.Top1Share)
	}
	if col.C2 < 10 {
		t.Fatalf("C² %v, want high variability", col.C2)
	}
	if col.Max <= col.P999 {
		t.Fatalf("max %v <= p99.9 %v", col.Max, col.P999)
	}
}

func TestUsageCCDFAndLogGrid(t *testing.T) {
	grid := LogGrid(0.001, 1000, 3)
	if len(grid) < 18 {
		t.Fatalf("grid size %d", len(grid))
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatal("grid not increasing")
		}
	}
	ccdf := UsageCCDF([]float64{0.001, 0.01, 1, 10, 100})
	prev := 1.1
	for _, p := range ccdf {
		if p.P > prev {
			t.Fatal("ccdf not non-increasing")
		}
		prev = p.P
	}
	if UsageCCDF(nil) != nil {
		t.Fatal("empty ccdf")
	}
}

func TestCPUMemCorrelationSynthetic(t *testing.T) {
	// mem ≈ 0.7 × cpu: correlation of bucket medians should be ~1.
	var ints UsageIntegrals
	for i := 0; i < 5000; i++ {
		c := float64(i%50) + 0.5
		ints.CPUHours = append(ints.CPUHours, c)
		ints.MemHours = append(ints.MemHours, 0.7*c+0.1*float64(i%7))
	}
	points, r := CPUMemCorrelation(ints, 50)
	if len(points) != 50 {
		t.Fatalf("buckets %d", len(points))
	}
	if r < 0.99 {
		t.Fatalf("pearson %v", r)
	}
}

func TestCPUMemCorrelationOnTrace(t *testing.T) {
	t19, _ := fixtures(t)
	ints := JobUsageIntegrals([]*trace.MemTrace{t19})
	points, r := CPUMemCorrelation(ints, 100)
	if len(points) >= 5 && !math.IsNaN(r) && r < 0.2 {
		t.Fatalf("trace correlation %v suspiciously low", r)
	}
}

func TestSlackSamples(t *testing.T) {
	t19, _ := fixtures(t)
	slack := SlackSamples([]*trace.MemTrace{t19})
	full := slack[trace.ScalingFull]
	none := slack[trace.ScalingNone]
	if len(full) == 0 || len(none) == 0 {
		t.Fatalf("slack groups sizes: full=%d none=%d", len(full), len(none))
	}
	medFull := stats.Quantile(full, 0.5)
	medNone := stats.Quantile(none, 0.5)
	if !(medFull < medNone) {
		t.Fatalf("full autoscaling slack median (%v) should undercut manual (%v); Figure 14",
			medFull, medNone)
	}
	for _, s := range full {
		if s < 0 || s > 100 {
			t.Fatalf("slack %v out of [0,100]", s)
		}
	}
}

func TestTable1(t *testing.T) {
	t19, t11 := fixtures(t)
	rows := Table1(t11, []*trace.MemTrace{t19})
	if len(rows) != 11 {
		t.Fatalf("rows %d", len(rows))
	}
	get := func(metric string) Table1Row {
		for _, r := range rows {
			if r.Metric == metric {
				return r
			}
		}
		t.Fatalf("missing row %q", metric)
		return Table1Row{}
	}
	if r := get("Alloc sets"); r.V2011 != "–" || r.V2019 != "Y" {
		t.Fatalf("alloc sets row %+v", r)
	}
	if r := get("Job dependencies"); r.V2011 != "–" || r.V2019 != "Y" {
		t.Fatalf("dependencies row %+v", r)
	}
	if r := get("Batch queueing"); r.V2019 != "Y" {
		t.Fatalf("batch row %+v", r)
	}
	if r := get("Vertical scaling"); r.V2011 != "–" || r.V2019 != "Y" {
		t.Fatalf("vertical row %+v", r)
	}
	if r := get("Machines"); r.V2011 != "150" {
		t.Fatalf("machines row %+v", r)
	}
	if r := get("Cells"); r.V2019 != "1" {
		t.Fatalf("cells row %+v", r)
	}
}
