package analysis

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/stats"
	"repro/internal/trace"
)

// UsageIntegrals holds each job's lifetime resource consumption: the
// integral of usage over time in NCU-hours and NMU-hours (§7). Index i of
// both slices refers to the same job.
type UsageIntegrals struct {
	CPUHours []float64
	MemHours []float64
}

// JobUsageIntegrals integrates every job's usage records over time.
// Alloc sets are excluded (they reserve rather than use).
func JobUsageIntegrals(traces []*trace.MemTrace) UsageIntegrals {
	var out UsageIntegrals
	for _, tr := range traces {
		isJob := make(map[trace.CollectionID]bool)
		for _, info := range tr.CollectionInfos() {
			if info.CollectionType == trace.CollectionJob {
				isJob[info.ID] = true
			}
		}
		cpu := make(map[trace.CollectionID]float64)
		mem := make(map[trace.CollectionID]float64)
		for _, rec := range tr.UsageRecords {
			if !isJob[rec.Key.Collection] {
				continue
			}
			h := (rec.End - rec.Start).Hours()
			cpu[rec.Key.Collection] += rec.AvgUsage.CPU * h
			mem[rec.Key.Collection] += rec.AvgUsage.Mem * h
		}
		ids := make([]trace.CollectionID, 0, len(cpu))
		for id := range cpu {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			out.CPUHours = append(out.CPUHours, cpu[id])
			out.MemHours = append(out.MemHours, mem[id])
		}
	}
	return out
}

// Table2Column holds one column of the paper's Table 2: the distribution
// of per-job resource-hours for one resource dimension in one era.
type Table2Column struct {
	Median      float64
	Mean        float64
	Variance    float64
	P90         float64
	P99         float64
	P999        float64
	Max         float64
	Top1Share   float64 // load from the top 1% of jobs (paper 2019: 99.2%)
	Top01Share  float64 // load from the top 0.1% (paper 2019: 93.1%)
	C2          float64 // squared coefficient of variation (paper: 23k/43k)
	ParetoAlpha float64 // fitted tail index (paper: 0.69/0.72)
	ParetoR2    float64 // goodness of fit (paper: >99%)
	N           int
}

// ComputeTable2Column derives all of Table 2's statistics for one sample
// of per-job resource-hours. The Pareto fit follows the paper: jobs using
// more than 1 resource-hour, excluding the top 0.01%.
func ComputeTable2Column(hours []float64) Table2Column {
	s := stats.Summarize(hours)
	fit := stats.FitParetoTail(hours, 1, 0.9999)
	return Table2Column{
		Median:      s.Median,
		Mean:        s.Mean,
		Variance:    s.Variance,
		P90:         s.P90,
		P99:         s.P99,
		P999:        s.P999,
		Max:         s.Max,
		Top1Share:   stats.TopShare(hours, 0.01),
		Top01Share:  stats.TopShare(hours, 0.001),
		C2:          s.C2,
		ParetoAlpha: fit.Alpha,
		ParetoR2:    fit.R2,
		N:           s.N,
	}
}

// UsageCCDF returns the log-log CCDF of per-job resource-hours evaluated
// on a logarithmic grid (Figure 12's series).
func UsageCCDF(hours []float64) []stats.CCDFPoint {
	if len(hours) == 0 {
		return nil
	}
	grid := LogGrid(1e-6, 1e5, 12)
	return stats.CCDFSampled(hours, grid)
}

// LogGrid builds a logarithmic grid with pointsPerDecade points between
// lo and hi.
func LogGrid(lo, hi float64, pointsPerDecade int) []float64 {
	var out []float64
	step := math.Pow(10, 1/float64(pointsPerDecade))
	for x := lo; x <= hi*1.0000001; x *= step {
		out = append(out, x)
	}
	return out
}

// BucketPoint is one point of Figure 13: jobs bucketed by NCU-hours, with
// the bucket's median NMU-hours.
type BucketPoint struct {
	NCUHours  float64 // bucket lower edge
	MedianNMU float64
	Jobs      int
}

// CPUMemCorrelation buckets jobs into 1-NCU-hour buckets and reports each
// bucket's median NMU-hours plus the Pearson correlation across buckets
// (paper: 0.97).
func CPUMemCorrelation(integrals UsageIntegrals, maxBucket int) (points []BucketPoint, pearson float64) {
	buckets := make(map[int][]float64)
	for i, c := range integrals.CPUHours {
		b := int(c)
		if b < 0 || b >= maxBucket {
			continue
		}
		buckets[b] = append(buckets[b], integrals.MemHours[i])
	}
	keys := make([]int, 0, len(buckets))
	for b := range buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	var xs, ys []float64
	for _, b := range keys {
		med := stats.Quantile(buckets[b], 0.5)
		points = append(points, BucketPoint{NCUHours: float64(b), MedianNMU: med, Jobs: len(buckets[b])})
		xs = append(xs, float64(b))
		ys = append(ys, med)
	}
	pearson = stats.Pearson(xs, ys)
	return points, pearson
}

// SlackSamples groups per-record peak NCU slack percentages by the owning
// collection's vertical-scaling strategy (Figure 14):
//
//	peak NCU slack = max(0, limit − max usage) / limit.
func SlackSamples(traces []*trace.MemTrace) map[trace.VerticalScaling][]float64 {
	out := make(map[trace.VerticalScaling][]float64)
	for _, tr := range traces {
		scaling := make(map[trace.CollectionID]trace.VerticalScaling)
		isJob := make(map[trace.CollectionID]bool)
		for _, info := range tr.CollectionInfos() {
			scaling[info.ID] = info.Scaling
			isJob[info.ID] = info.CollectionType == trace.CollectionJob
		}
		for _, rec := range tr.UsageRecords {
			if !isJob[rec.Key.Collection] || rec.Limit.CPU <= 0 {
				continue
			}
			slack := (rec.Limit.CPU - rec.MaxUsage.CPU) / rec.Limit.CPU
			if slack < 0 {
				slack = 0
			}
			mode := scaling[rec.Key.Collection]
			out[mode] = append(out[mode], slack*100)
		}
	}
	return out
}

// Table1Row is one row of Table 1's trace comparison.
type Table1Row struct {
	Metric string
	V2011  string
	V2019  string
}

// Table1 rebuilds the paper's Table 1 from generated traces.
func Table1(t2011 *trace.MemTrace, t2019 []*trace.MemTrace) []Table1Row {
	count2011 := traceInventory([]*trace.MemTrace{t2011})
	count2019 := traceInventory(t2019)
	boolStr := func(b bool) string {
		if b {
			return "Y"
		}
		return "–"
	}
	rows := []Table1Row{
		{"Duration (days)", fmtF(t2011.Meta.Duration.Hours() / 24), fmtF(t2019[0].Meta.Duration.Hours() / 24)},
		{"Cells", "1", fmtI(len(t2019))},
		{"Machines", fmtI(count2011.machines), fmtI(count2019.machines)},
		{"Machines per cell", fmtI(count2011.machines), fmtI(count2019.machines / len(t2019))},
		{"Hardware platforms", fmtI(count2011.platforms), fmtI(count2019.platforms)},
		{"Machine shapes", fmtI(count2011.shapes), fmtI(count2019.shapes)},
		{"Priority values", count2011.prioRange, count2019.prioRange},
		{"Alloc sets", boolStr(count2011.allocSets), boolStr(count2019.allocSets)},
		{"Job dependencies", boolStr(count2011.dependencies), boolStr(count2019.dependencies)},
		{"Batch queueing", boolStr(count2011.batchQueue), boolStr(count2019.batchQueue)},
		{"Vertical scaling", boolStr(count2011.vertical), boolStr(count2019.vertical)},
	}
	return rows
}

type inventory struct {
	machines     int
	platforms    int
	shapes       int
	prioRange    string
	allocSets    bool
	dependencies bool
	batchQueue   bool
	vertical     bool
}

func traceInventory(traces []*trace.MemTrace) inventory {
	var inv inventory
	platforms := make(map[string]bool)
	shapes := make(map[trace.Resources]bool)
	minPrio, maxPrio := math.MaxInt32, -1
	for _, tr := range traces {
		for _, ev := range tr.MachineCapacities() {
			inv.machines++
			platforms[ev.Platform] = true
			shapes[ev.Capacity] = true
		}
		for _, info := range tr.CollectionInfos() {
			if info.Priority < minPrio {
				minPrio = info.Priority
			}
			if info.Priority > maxPrio {
				maxPrio = info.Priority
			}
			if info.CollectionType == trace.CollectionAllocSet {
				inv.allocSets = true
			}
			if info.Parent != 0 {
				inv.dependencies = true
			}
			if info.Scaling != trace.ScalingNone {
				inv.vertical = true
			}
		}
		for _, ev := range tr.CollectionEvents {
			if ev.Type == trace.EventQueue {
				inv.batchQueue = true
			}
		}
	}
	inv.platforms = len(platforms)
	inv.shapes = len(shapes)
	if maxPrio >= 0 {
		inv.prioRange = fmtI(minPrio) + "–" + fmtI(maxPrio)
	}
	return inv
}

func fmtI(v int) string { return strconv.Itoa(v) }

func fmtF(v float64) string {
	if v == math.Trunc(v) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}
