package analysis

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// UsageIntegrals holds each job's lifetime resource consumption: the
// integral of usage over time in NCU-hours and NMU-hours (§7). Index i of
// both slices refers to the same job.
type UsageIntegrals struct {
	CPUHours []float64
	MemHours []float64
}

// MergeIntegrals concatenates per-cell integrals in cell order.
func MergeIntegrals(cells []UsageIntegrals) UsageIntegrals {
	var out UsageIntegrals
	for _, c := range cells {
		out.CPUHours = append(out.CPUHours, c.CPUHours...)
		out.MemHours = append(out.MemHours, c.MemHours...)
	}
	return out
}

// FinishIntegrals orders per-job resource-hour sums by ascending
// collection ID into the figure-ready sample slices. Only jobs present in
// the cpu map (i.e. with at least one usage record) are emitted.
func FinishIntegrals(cpu, mem map[trace.CollectionID]float64) UsageIntegrals {
	var out UsageIntegrals
	ids := make([]trace.CollectionID, 0, len(cpu))
	for id := range cpu {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out.CPUHours = append(out.CPUHours, cpu[id])
		out.MemHours = append(out.MemHours, mem[id])
	}
	return out
}

// JobUsageIntegralsOf integrates one cell's jobs post-hoc.
func JobUsageIntegralsOf(tr *trace.MemTrace) UsageIntegrals {
	isJob := make(map[trace.CollectionID]bool)
	for _, info := range tr.CollectionInfos() {
		if info.CollectionType == trace.CollectionJob {
			isJob[info.ID] = true
		}
	}
	cpu := make(map[trace.CollectionID]float64)
	mem := make(map[trace.CollectionID]float64)
	for _, rec := range tr.UsageRecords {
		if !isJob[rec.Key.Collection] {
			continue
		}
		h := (rec.End - rec.Start).Hours()
		cpu[rec.Key.Collection] += rec.AvgUsage.CPU * h
		mem[rec.Key.Collection] += rec.AvgUsage.Mem * h
	}
	return FinishIntegrals(cpu, mem)
}

// JobUsageIntegrals integrates every job's usage records over time.
// Alloc sets are excluded (they reserve rather than use).
func JobUsageIntegrals(traces []*trace.MemTrace) UsageIntegrals {
	cells := make([]UsageIntegrals, len(traces))
	for i, tr := range traces {
		cells[i] = JobUsageIntegralsOf(tr)
	}
	return MergeIntegrals(cells)
}

// Table2Column holds one column of the paper's Table 2: the distribution
// of per-job resource-hours for one resource dimension in one era.
type Table2Column struct {
	Median      float64
	Mean        float64
	Variance    float64
	P90         float64
	P99         float64
	P999        float64
	Max         float64
	Top1Share   float64 // load from the top 1% of jobs (paper 2019: 99.2%)
	Top01Share  float64 // load from the top 0.1% (paper 2019: 93.1%)
	C2          float64 // squared coefficient of variation (paper: 23k/43k)
	ParetoAlpha float64 // fitted tail index (paper: 0.69/0.72)
	ParetoR2    float64 // goodness of fit (paper: >99%)
	N           int
}

// ComputeTable2Column derives all of Table 2's statistics for one sample
// of per-job resource-hours. The Pareto fit follows the paper: jobs using
// more than 1 resource-hour, excluding the top 0.01%.
func ComputeTable2Column(hours []float64) Table2Column {
	s := stats.Summarize(hours)
	fit := stats.FitParetoTail(hours, 1, 0.9999)
	return Table2Column{
		Median:      s.Median,
		Mean:        s.Mean,
		Variance:    s.Variance,
		P90:         s.P90,
		P99:         s.P99,
		P999:        s.P999,
		Max:         s.Max,
		Top1Share:   stats.TopShare(hours, 0.01),
		Top01Share:  stats.TopShare(hours, 0.001),
		C2:          s.C2,
		ParetoAlpha: fit.Alpha,
		ParetoR2:    fit.R2,
		N:           s.N,
	}
}

// UsageCCDF returns the log-log CCDF of per-job resource-hours evaluated
// on a logarithmic grid (Figure 12's series).
func UsageCCDF(hours []float64) []stats.CCDFPoint {
	if len(hours) == 0 {
		return nil
	}
	grid := LogGrid(1e-6, 1e5, 12)
	return stats.CCDFSampled(hours, grid)
}

// LogGrid builds a logarithmic grid with pointsPerDecade points between
// lo and hi.
func LogGrid(lo, hi float64, pointsPerDecade int) []float64 {
	var out []float64
	step := math.Pow(10, 1/float64(pointsPerDecade))
	for x := lo; x <= hi*1.0000001; x *= step {
		out = append(out, x)
	}
	return out
}

// BucketPoint is one point of Figure 13: jobs bucketed by NCU-hours, with
// the bucket's median NMU-hours.
type BucketPoint struct {
	NCUHours  float64 // bucket lower edge
	MedianNMU float64
	Jobs      int
}

// CPUMemCorrelation buckets jobs into 1-NCU-hour buckets and reports each
// bucket's median NMU-hours plus the Pearson correlation across buckets
// (paper: 0.97).
func CPUMemCorrelation(integrals UsageIntegrals, maxBucket int) (points []BucketPoint, pearson float64) {
	buckets := make(map[int][]float64)
	for i, c := range integrals.CPUHours {
		b := int(c)
		if b < 0 || b >= maxBucket {
			continue
		}
		buckets[b] = append(buckets[b], integrals.MemHours[i])
	}
	keys := make([]int, 0, len(buckets))
	for b := range buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	var xs, ys []float64
	for _, b := range keys {
		med := stats.Quantile(buckets[b], 0.5)
		points = append(points, BucketPoint{NCUHours: float64(b), MedianNMU: med, Jobs: len(buckets[b])})
		xs = append(xs, float64(b))
		ys = append(ys, med)
	}
	pearson = stats.Pearson(xs, ys)
	return points, pearson
}

// SlackSampleOf computes one usage record's peak NCU slack percentage:
//
//	peak NCU slack = max(0, limit − max usage) / limit.
//
// The second return is false when the record carries no CPU limit.
// The record is passed by pointer because this runs once per usage row
// on the streaming hot path; it is not retained.
func SlackSampleOf(rec *trace.UsageRecord) (float64, bool) {
	if rec.Limit.CPU <= 0 {
		return 0, false
	}
	slack := (rec.Limit.CPU - rec.MaxUsage.CPU) / rec.Limit.CPU
	if slack < 0 {
		slack = 0
	}
	return slack * 100, true
}

// SlackSamplesOf groups one cell's per-record slack samples by the owning
// collection's vertical-scaling strategy.
func SlackSamplesOf(tr *trace.MemTrace) map[trace.VerticalScaling][]float64 {
	out := make(map[trace.VerticalScaling][]float64)
	scaling := make(map[trace.CollectionID]trace.VerticalScaling)
	isJob := make(map[trace.CollectionID]bool)
	for _, info := range tr.CollectionInfos() {
		scaling[info.ID] = info.Scaling
		isJob[info.ID] = info.CollectionType == trace.CollectionJob
	}
	for i := range tr.UsageRecords {
		rec := &tr.UsageRecords[i]
		if !isJob[rec.Key.Collection] {
			continue
		}
		if s, ok := SlackSampleOf(rec); ok {
			mode := scaling[rec.Key.Collection]
			out[mode] = append(out[mode], s)
		}
	}
	return out
}

// SlackSamples groups per-record peak NCU slack percentages by the owning
// collection's vertical-scaling strategy (Figure 14).
func SlackSamples(traces []*trace.MemTrace) map[trace.VerticalScaling][]float64 {
	cells := make([]map[trace.VerticalScaling][]float64, len(traces))
	for i, tr := range traces {
		cells[i] = SlackSamplesOf(tr)
	}
	return MergeSamplesBy(cells)
}

// Table1Row is one row of Table 1's trace comparison.
type Table1Row struct {
	Metric string
	V2011  string
	V2019  string
}

// Inventory is one cell's Table 1 metadata: machine population, hardware
// diversity, priority range and feature flags. It can be built post-hoc
// (InventoryOf) or online by a streaming reducer, and merged exactly
// across cells.
type Inventory struct {
	Machines     int
	Platforms    map[string]bool
	Shapes       map[trace.Resources]bool
	MinPriority  int // math.MaxInt32 when no collection was seen
	MaxPriority  int // -1 when no collection was seen
	AllocSets    bool
	Dependencies bool
	BatchQueue   bool
	Vertical     bool
}

// NewInventory returns an empty inventory.
func NewInventory() Inventory {
	return Inventory{
		Platforms:   make(map[string]bool),
		Shapes:      make(map[trace.Resources]bool),
		MinPriority: math.MaxInt32,
		MaxPriority: -1,
	}
}

// ObserveMachine counts one machine of the final capacity snapshot.
func (v *Inventory) ObserveMachine(ev trace.MachineEvent) {
	v.Machines++
	v.Platforms[ev.Platform] = true
	v.Shapes[ev.Capacity] = true
}

// ObserveCollection folds one collection's static attributes.
func (v *Inventory) ObserveCollection(info trace.CollectionInfo) {
	if info.Priority < v.MinPriority {
		v.MinPriority = info.Priority
	}
	if info.Priority > v.MaxPriority {
		v.MaxPriority = info.Priority
	}
	if info.CollectionType == trace.CollectionAllocSet {
		v.AllocSets = true
	}
	if info.Parent != 0 {
		v.Dependencies = true
	}
	if info.Scaling != trace.ScalingNone {
		v.Vertical = true
	}
}

// MergeInventories combines per-cell inventories.
func MergeInventories(cells []Inventory) Inventory {
	out := NewInventory()
	for _, c := range cells {
		out.Machines += c.Machines
		for p := range c.Platforms {
			out.Platforms[p] = true
		}
		for s := range c.Shapes {
			out.Shapes[s] = true
		}
		if c.MinPriority < out.MinPriority {
			out.MinPriority = c.MinPriority
		}
		if c.MaxPriority > out.MaxPriority {
			out.MaxPriority = c.MaxPriority
		}
		out.AllocSets = out.AllocSets || c.AllocSets
		out.Dependencies = out.Dependencies || c.Dependencies
		out.BatchQueue = out.BatchQueue || c.BatchQueue
		out.Vertical = out.Vertical || c.Vertical
	}
	return out
}

func (v Inventory) prioRange() string {
	if v.MaxPriority < 0 {
		return ""
	}
	return fmtI(v.MinPriority) + "–" + fmtI(v.MaxPriority)
}

// InventoryOf builds one trace's inventory post-hoc.
func InventoryOf(tr *trace.MemTrace) Inventory {
	inv := NewInventory()
	for _, ev := range tr.MachineCapacities() {
		inv.ObserveMachine(ev)
	}
	for _, info := range tr.CollectionInfos() {
		inv.ObserveCollection(info)
	}
	for _, ev := range tr.CollectionEvents {
		if ev.Type == trace.EventQueue {
			inv.BatchQueue = true
		}
	}
	return inv
}

// Table1FromInventories rebuilds the paper's Table 1 from merged per-era
// inventories plus the trace durations and the 2019 cell count.
func Table1FromInventories(count2011 Inventory, dur2011 sim.Time,
	count2019 Inventory, dur2019 sim.Time, cells2019 int) []Table1Row {
	boolStr := func(b bool) string {
		if b {
			return "Y"
		}
		return "–"
	}
	return []Table1Row{
		{"Duration (days)", fmtF(dur2011.Hours() / 24), fmtF(dur2019.Hours() / 24)},
		{"Cells", "1", fmtI(cells2019)},
		{"Machines", fmtI(count2011.Machines), fmtI(count2019.Machines)},
		{"Machines per cell", fmtI(count2011.Machines), fmtI(count2019.Machines / cells2019)},
		{"Hardware platforms", fmtI(len(count2011.Platforms)), fmtI(len(count2019.Platforms))},
		{"Machine shapes", fmtI(len(count2011.Shapes)), fmtI(len(count2019.Shapes))},
		{"Priority values", count2011.prioRange(), count2019.prioRange()},
		{"Alloc sets", boolStr(count2011.AllocSets), boolStr(count2019.AllocSets)},
		{"Job dependencies", boolStr(count2011.Dependencies), boolStr(count2019.Dependencies)},
		{"Batch queueing", boolStr(count2011.BatchQueue), boolStr(count2019.BatchQueue)},
		{"Vertical scaling", boolStr(count2011.Vertical), boolStr(count2019.Vertical)},
	}
}

// Table1 rebuilds the paper's Table 1 from generated traces.
func Table1(t2011 *trace.MemTrace, t2019 []*trace.MemTrace) []Table1Row {
	cells := make([]Inventory, len(t2019))
	for i, tr := range t2019 {
		cells[i] = InventoryOf(tr)
	}
	return Table1FromInventories(InventoryOf(t2011), t2011.Meta.Duration,
		MergeInventories(cells), t2019[0].Meta.Duration, len(t2019))
}

func fmtI(v int) string { return strconv.Itoa(v) }

func fmtF(v float64) string {
	if v == math.Trunc(v) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}
