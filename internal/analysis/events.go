package analysis

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Transition is one edge of Figure 7's state-transition diagram.
type Transition struct {
	From, To string
	Count    int
}

// TransitionCounts tallies consecutive event-type pairs; the key is
// {from, to}.
type TransitionCounts map[[2]string]int

// Observe counts one edge.
func (c TransitionCounts) Observe(from, to trace.EventType) {
	c[[2]string{from.String(), to.String()}]++
}

// Transitions counts consecutive event-type pairs across all collections
// and instances of a trace (Figure 7), sorted by count descending.
func Transitions(tr *trace.MemTrace) []Transition {
	counts := make(TransitionCounts)
	for _, id := range tr.Collections() {
		evs := tr.EventsOf(id)
		for i := 1; i < len(evs); i++ {
			counts.Observe(evs[i-1].Type, evs[i].Type)
		}
	}
	for _, key := range tr.Instances() {
		evs := tr.InstanceEventsOf(key)
		for i := 1; i < len(evs); i++ {
			counts.Observe(evs[i-1].Type, evs[i].Type)
		}
	}
	return TransitionsFromCounts(counts)
}

// TransitionsFromCounts sorts a tally into Figure 7's edge list (count
// descending, then lexicographic).
func TransitionsFromCounts(counts TransitionCounts) []Transition {
	out := make([]Transition, 0, len(counts))
	for k, n := range counts {
		out = append(out, Transition{From: k[0], To: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// AllocSetStats reproduces §5.1's alloc-set findings.
type AllocSetStats struct {
	Collections      int
	AllocSets        int
	AllocSetShare    float64 // alloc sets / collections (paper: 2%)
	CPUAllocShare    float64 // alloc reservations / total allocation (paper: 20%)
	MemAllocShare    float64 // (paper: 18%)
	JobsInAllocShare float64 // jobs targeting an alloc set (paper: 15%)
	ProdShareInAlloc float64 // prod share of those (paper: 95%)
	MemUtilInAlloc   float64 // mean mem usage ÷ limit inside allocs (paper: 73%)
	MemUtilOutside   float64 // (paper: 41%)
}

// AllocSetAccum is one cell's partial accumulation of §5.1's statistics.
// Counts are exact and the float sums fold usage records in emission
// order, so an accumulation built online by a streaming reducer is
// bit-identical to one built post-hoc from the retained trace.
type AllocSetAccum struct {
	Collections, AllocSets     int
	Jobs, InAlloc, ProdInAlloc int
	CPUAlloc, CPUAllocSets     float64
	MemAlloc, MemAllocSets     float64
	MemUtilIn, MemUtilOut      float64
	WeightIn, WeightOut        float64
}

// ObserveCollection counts one collection's static attributes.
func (a *AllocSetAccum) ObserveCollection(ct trace.CollectionType, allocSet trace.CollectionID, tier trace.Tier) {
	a.Collections++
	if ct == trace.CollectionAllocSet {
		a.AllocSets++
		return
	}
	a.Jobs++
	if allocSet != 0 {
		a.InAlloc++
		if tier == trace.TierProduction {
			a.ProdInAlloc++
		}
	}
}

// ObserveUsage folds one usage record, categorized by its collection:
// the record belongs to an alloc set, to a job inside an alloc set, or to
// a free-standing job. The record is passed by pointer because this runs
// once per usage row on the streaming hot path; it is not retained.
func (a *AllocSetAccum) ObserveUsage(rec *trace.UsageRecord, isAllocSet, inAllocSet bool) {
	switch {
	case isAllocSet:
		a.CPUAllocSets += rec.Limit.CPU
		a.MemAllocSets += rec.Limit.Mem
		a.CPUAlloc += rec.Limit.CPU
		a.MemAlloc += rec.Limit.Mem
	case inAllocSet:
		// Consumes its alloc set's reservation, not fresh allocation;
		// contributes to utilization-inside.
		if rec.Limit.Mem > 0 {
			a.MemUtilIn += rec.AvgUsage.Mem / rec.Limit.Mem
			a.WeightIn++
		}
	default:
		a.CPUAlloc += rec.Limit.CPU
		a.MemAlloc += rec.Limit.Mem
		if rec.Limit.Mem > 0 {
			a.MemUtilOut += rec.AvgUsage.Mem / rec.Limit.Mem
			a.WeightOut++
		}
	}
}

// FinishAllocSets merges per-cell partials in order and derives §5.1's
// ratios.
func FinishAllocSets(accums []AllocSetAccum) AllocSetStats {
	var t AllocSetAccum
	for _, a := range accums {
		t.Collections += a.Collections
		t.AllocSets += a.AllocSets
		t.Jobs += a.Jobs
		t.InAlloc += a.InAlloc
		t.ProdInAlloc += a.ProdInAlloc
		t.CPUAlloc += a.CPUAlloc
		t.CPUAllocSets += a.CPUAllocSets
		t.MemAlloc += a.MemAlloc
		t.MemAllocSets += a.MemAllocSets
		t.MemUtilIn += a.MemUtilIn
		t.MemUtilOut += a.MemUtilOut
		t.WeightIn += a.WeightIn
		t.WeightOut += a.WeightOut
	}
	st := AllocSetStats{Collections: t.Collections, AllocSets: t.AllocSets}
	if t.Collections > 0 {
		st.AllocSetShare = float64(t.AllocSets) / float64(t.Collections)
	}
	if t.CPUAlloc > 0 {
		st.CPUAllocShare = t.CPUAllocSets / t.CPUAlloc
	}
	if t.MemAlloc > 0 {
		st.MemAllocShare = t.MemAllocSets / t.MemAlloc
	}
	if t.Jobs > 0 {
		st.JobsInAllocShare = float64(t.InAlloc) / float64(t.Jobs)
	}
	if t.InAlloc > 0 {
		st.ProdShareInAlloc = float64(t.ProdInAlloc) / float64(t.InAlloc)
	}
	if t.WeightIn > 0 {
		st.MemUtilInAlloc = t.MemUtilIn / t.WeightIn
	}
	if t.WeightOut > 0 {
		st.MemUtilOutside = t.MemUtilOut / t.WeightOut
	}
	return st
}

// AllocSetAccumOf builds one trace's partial post-hoc.
func AllocSetAccumOf(tr *trace.MemTrace) AllocSetAccum {
	var a AllocSetAccum
	isAllocSet := make(map[trace.CollectionID]bool)
	inAllocSet := make(map[trace.CollectionID]bool)
	for _, info := range tr.CollectionInfos() {
		a.ObserveCollection(info.CollectionType, info.AllocSet, info.Tier)
		if info.CollectionType == trace.CollectionAllocSet {
			isAllocSet[info.ID] = true
		} else if info.AllocSet != 0 {
			inAllocSet[info.ID] = true
		}
	}
	for i := range tr.UsageRecords {
		rec := &tr.UsageRecords[i]
		a.ObserveUsage(rec, isAllocSet[rec.Key.Collection], inAllocSet[rec.Key.Collection])
	}
	return a
}

// AllocSets computes §5.1's statistics over one or more cells.
func AllocSets(traces []*trace.MemTrace) AllocSetStats {
	accums := make([]AllocSetAccum, len(traces))
	for i, tr := range traces {
		accums[i] = AllocSetAccumOf(tr)
	}
	return FinishAllocSets(accums)
}

// TerminationStats reproduces §5.2's findings.
type TerminationStats struct {
	Collections int
	// ByFinal counts collections by their final termination event
	// (EventSubmit = still running at trace end).
	ByFinal map[trace.EventType]int
	// CollectionsWithEviction is the share of collections that saw at
	// least one instance eviction (paper: 3.2%).
	CollectionsWithEviction float64
	// NonProdShareOfEvicted is the non-production share among those
	// (paper: 96.6%).
	NonProdShareOfEvicted float64
	// ProdEvictedShare is the share of production collections with any
	// instance eviction (paper: <0.2%).
	ProdEvictedShare float64
	// SingleEvictionShare is, among evicted production collections, the
	// share with exactly one eviction (paper: 52%).
	SingleEvictionShare float64
	// KillRateWithParent / KillRateWithoutParent compare KILL outcomes
	// for jobs with and without parents (paper: 87% vs 41%).
	KillRateWithParent    float64
	KillRateWithoutParent float64
}

// TerminationAccum is one cell's partial accumulation of §5.2's counts.
// Everything is integral, so per-cell partials merge exactly.
type TerminationAccum struct {
	Collections                                 int
	ByFinal                                     [trace.NumEventTypes]int
	Evicted, Prod, ProdEvicted, ProdEvictedOnce int
	NonProdEvicted                              int
	WithParent, WithParentKilled                int
	WithoutParent, WithoutParentKilled          int
}

// ObserveCollection counts one collection's outcome; evictions is the
// number of instance EVICT events its instances logged.
func (a *TerminationAccum) ObserveCollection(info trace.CollectionInfo, evictions int) {
	a.Collections++
	a.ByFinal[info.FinalEvent]++
	if evictions > 0 {
		a.Evicted++
		if info.Tier == trace.TierProduction {
			a.ProdEvicted++
			if evictions == 1 {
				a.ProdEvictedOnce++
			}
		} else {
			a.NonProdEvicted++
		}
	}
	if info.Tier == trace.TierProduction {
		a.Prod++
	}
	if info.CollectionType != trace.CollectionJob {
		return
	}
	killed := info.FinalEvent == trace.EventKill
	if info.Parent != 0 {
		a.WithParent++
		if killed {
			a.WithParentKilled++
		}
	} else {
		a.WithoutParent++
		if killed {
			a.WithoutParentKilled++
		}
	}
}

// FinishTerminations merges per-cell partials and derives §5.2's ratios.
func FinishTerminations(accums []TerminationAccum) TerminationStats {
	var t TerminationAccum
	for _, a := range accums {
		t.Collections += a.Collections
		for e := range t.ByFinal {
			t.ByFinal[e] += a.ByFinal[e]
		}
		t.Evicted += a.Evicted
		t.Prod += a.Prod
		t.ProdEvicted += a.ProdEvicted
		t.ProdEvictedOnce += a.ProdEvictedOnce
		t.NonProdEvicted += a.NonProdEvicted
		t.WithParent += a.WithParent
		t.WithParentKilled += a.WithParentKilled
		t.WithoutParent += a.WithoutParent
		t.WithoutParentKilled += a.WithoutParentKilled
	}
	st := TerminationStats{Collections: t.Collections, ByFinal: make(map[trace.EventType]int)}
	for e, n := range t.ByFinal {
		if n > 0 {
			st.ByFinal[trace.EventType(e)] = n
		}
	}
	if t.Collections > 0 {
		st.CollectionsWithEviction = float64(t.Evicted) / float64(t.Collections)
	}
	if t.Evicted > 0 {
		st.NonProdShareOfEvicted = float64(t.NonProdEvicted) / float64(t.Evicted)
	}
	if t.Prod > 0 {
		st.ProdEvictedShare = float64(t.ProdEvicted) / float64(t.Prod)
	}
	if t.ProdEvicted > 0 {
		st.SingleEvictionShare = float64(t.ProdEvictedOnce) / float64(t.ProdEvicted)
	}
	if t.WithParent > 0 {
		st.KillRateWithParent = float64(t.WithParentKilled) / float64(t.WithParent)
	}
	if t.WithoutParent > 0 {
		st.KillRateWithoutParent = float64(t.WithoutParentKilled) / float64(t.WithoutParent)
	}
	return st
}

// TerminationAccumOf builds one trace's partial post-hoc.
func TerminationAccumOf(tr *trace.MemTrace) TerminationAccum {
	var a TerminationAccum
	evictions := make(map[trace.CollectionID]int)
	for _, ev := range tr.InstanceEvents {
		if ev.Type == trace.EventEvict {
			evictions[ev.Key.Collection]++
		}
	}
	for _, info := range tr.CollectionInfos() {
		a.ObserveCollection(info, evictions[info.ID])
	}
	return a
}

// Terminations computes §5.2's statistics over one or more cells.
func Terminations(traces []*trace.MemTrace) TerminationStats {
	accums := make([]TerminationAccum, len(traces))
	for i, tr := range traces {
		accums[i] = TerminationAccumOf(tr)
	}
	return FinishTerminations(accums)
}

// SubmissionRates holds Figures 8 and 9's hourly rate samples for one or
// more cells (each element is one cell-hour).
type SubmissionRates struct {
	JobsPerHour     []float64 // job SUBMIT events per hour (Figure 8)
	NewTasksPerHour []float64 // first-time instance SUBMITs (Figure 9)
	AllTasksPerHour []float64 // all instance SUBMITs incl. rescheduling
}

// MergeRates concatenates per-cell samples in cell order.
func MergeRates(cells []SubmissionRates) SubmissionRates {
	var out SubmissionRates
	for _, c := range cells {
		out.JobsPerHour = append(out.JobsPerHour, c.JobsPerHour...)
		out.NewTasksPerHour = append(out.NewTasksPerHour, c.NewTasksPerHour...)
		out.AllTasksPerHour = append(out.AllTasksPerHour, c.AllTasksPerHour...)
	}
	return out
}

// RatesOf computes one cell's per-hour submission counts. Alloc sets are
// excluded from the job counts, matching the paper's job-centric view.
func RatesOf(tr *trace.MemTrace) SubmissionRates {
	hours := SeriesHours(tr.Meta.Duration)
	out := SubmissionRates{
		JobsPerHour:     make([]float64, hours),
		NewTasksPerHour: make([]float64, hours),
		AllTasksPerHour: make([]float64, hours),
	}
	isJob := make(map[trace.CollectionID]bool)
	for _, info := range tr.CollectionInfos() {
		if info.CollectionType == trace.CollectionJob {
			isJob[info.ID] = true
		}
	}
	for _, ev := range tr.CollectionEvents {
		if ev.Type == trace.EventSubmit && isJob[ev.Collection] {
			if h := int(ev.Time / sim.Hour); h >= 0 && h < hours {
				out.JobsPerHour[h]++
			}
		}
	}
	seen := make(map[trace.InstanceKey]bool)
	for _, ev := range tr.InstanceEvents {
		if ev.Type != trace.EventSubmit || !isJob[ev.Key.Collection] {
			continue
		}
		h := int(ev.Time / sim.Hour)
		if h < 0 || h >= hours {
			continue
		}
		out.AllTasksPerHour[h]++
		if !seen[ev.Key] {
			seen[ev.Key] = true
			out.NewTasksPerHour[h]++
		}
	}
	return out
}

// Rates computes per-hour submission counts over one or more cells.
func Rates(traces []*trace.MemTrace) SubmissionRates {
	cells := make([]SubmissionRates, len(traces))
	for i, tr := range traces {
		cells[i] = RatesOf(tr)
	}
	return MergeRates(cells)
}

// DelaySamples holds Figure 10's per-job scheduling delays in seconds —
// the time from the job's ENABLE (ready) to its first task running —
// overall and split by tier.
type DelaySamples struct {
	All    []float64
	ByTier map[trace.Tier][]float64
}

// MergeDelays concatenates per-cell samples in cell order.
func MergeDelays(cells []DelaySamples) DelaySamples {
	out := DelaySamples{ByTier: make(map[trace.Tier][]float64)}
	for _, c := range cells {
		out.All = append(out.All, c.All...)
		for tier, xs := range c.ByTier {
			out.ByTier[tier] = append(out.ByTier[tier], xs...)
		}
	}
	return out
}

// DelaysOf computes one cell's scheduling delays post-hoc.
func DelaysOf(tr *trace.MemTrace) DelaySamples {
	enable := make(map[trace.CollectionID]sim.Time)
	tier := make(map[trace.CollectionID]trace.Tier)
	for _, ev := range tr.CollectionEvents {
		if ev.Type == trace.EventEnable && ev.CollectionType == trace.CollectionJob {
			if _, ok := enable[ev.Collection]; !ok {
				enable[ev.Collection] = ev.Time
				tier[ev.Collection] = ev.Tier
			}
		}
	}
	first := make(map[trace.CollectionID]sim.Time)
	for _, ev := range tr.InstanceEvents {
		if ev.Type != trace.EventSchedule {
			continue
		}
		if cur, ok := first[ev.Key.Collection]; !ok || ev.Time < cur {
			first[ev.Key.Collection] = ev.Time
		}
	}
	return FinishDelays(enable, tier, first)
}

// FinishDelays derives the delay samples from the first-ENABLE and
// first-SCHEDULE indexes, in ascending collection-ID order. Jobs that
// never ran inside the trace window are skipped.
func FinishDelays(enable map[trace.CollectionID]sim.Time, tier map[trace.CollectionID]trace.Tier,
	first map[trace.CollectionID]sim.Time) DelaySamples {
	out := DelaySamples{ByTier: make(map[trace.Tier][]float64)}
	ids := make([]trace.CollectionID, 0, len(enable))
	for id := range enable {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fr, ok := first[id]
		if !ok {
			continue // never ran inside the trace window
		}
		d := (fr - enable[id]).Seconds()
		if d < 0 {
			continue
		}
		out.All = append(out.All, d)
		out.ByTier[tier[id]] = append(out.ByTier[tier[id]], d)
	}
	return out
}

// SchedulingDelays returns per-job scheduling delays in seconds (Figure
// 10) over one or more cells, overall and split by tier.
func SchedulingDelays(traces []*trace.MemTrace) (all []float64, byTier map[trace.Tier][]float64) {
	cells := make([]DelaySamples, len(traces))
	for i, tr := range traces {
		cells[i] = DelaysOf(tr)
	}
	merged := MergeDelays(cells)
	return merged.All, merged.ByTier
}

// MergeSamplesBy concatenates per-cell keyed sample groups in cell order.
func MergeSamplesBy[K comparable](cells []map[K][]float64) map[K][]float64 {
	out := make(map[K][]float64)
	for _, c := range cells {
		for k, xs := range c {
			out[k] = append(out[k], xs...)
		}
	}
	return out
}

// TasksPerJobOf returns one cell's task-count distribution by tier.
func TasksPerJobOf(tr *trace.MemTrace) map[trace.Tier][]float64 {
	out := make(map[trace.Tier][]float64)
	counts := make(map[trace.CollectionID]int)
	for _, key := range tr.Instances() {
		counts[key.Collection]++
	}
	for _, info := range tr.CollectionInfos() {
		if info.CollectionType != trace.CollectionJob {
			continue
		}
		if n := counts[info.ID]; n > 0 {
			out[info.Tier] = append(out[info.Tier], float64(n))
		}
	}
	return out
}

// TasksPerJob returns the task-count distribution by tier (Figure 11).
func TasksPerJob(traces []*trace.MemTrace) map[trace.Tier][]float64 {
	cells := make([]map[trace.Tier][]float64, len(traces))
	for i, tr := range traces {
		cells[i] = TasksPerJobOf(tr)
	}
	return MergeSamplesBy(cells)
}

// FormatTransition renders a transition edge for reports.
func FormatTransition(t Transition) string {
	return fmt.Sprintf("%s -> %s: %d", t.From, t.To, t.Count)
}
