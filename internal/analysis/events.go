package analysis

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Transition is one edge of Figure 7's state-transition diagram.
type Transition struct {
	From, To string
	Count    int
}

// Transitions counts consecutive event-type pairs across all collections
// and instances of a trace (Figure 7), sorted by count descending.
func Transitions(tr *trace.MemTrace) []Transition {
	counts := make(map[[2]string]int)
	for _, id := range tr.Collections() {
		evs := tr.EventsOf(id)
		for i := 1; i < len(evs); i++ {
			counts[[2]string{evs[i-1].Type.String(), evs[i].Type.String()}]++
		}
	}
	for _, key := range tr.Instances() {
		evs := tr.InstanceEventsOf(key)
		for i := 1; i < len(evs); i++ {
			counts[[2]string{evs[i-1].Type.String(), evs[i].Type.String()}]++
		}
	}
	out := make([]Transition, 0, len(counts))
	for k, n := range counts {
		out = append(out, Transition{From: k[0], To: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// AllocSetStats reproduces §5.1's alloc-set findings.
type AllocSetStats struct {
	Collections      int
	AllocSets        int
	AllocSetShare    float64 // alloc sets / collections (paper: 2%)
	CPUAllocShare    float64 // alloc reservations / total allocation (paper: 20%)
	MemAllocShare    float64 // (paper: 18%)
	JobsInAllocShare float64 // jobs targeting an alloc set (paper: 15%)
	ProdShareInAlloc float64 // prod share of those (paper: 95%)
	MemUtilInAlloc   float64 // mean mem usage ÷ limit inside allocs (paper: 73%)
	MemUtilOutside   float64 // (paper: 41%)
}

// AllocSets computes §5.1's statistics over one or more cells.
func AllocSets(traces []*trace.MemTrace) AllocSetStats {
	var st AllocSetStats
	var cpuAlloc, cpuAllocSets, memAlloc, memAllocSets float64
	var jobs, inAlloc, prodInAlloc int
	var memUtilIn, memUtilOut, weightIn, weightOut float64

	for _, tr := range traces {
		isAllocSet := make(map[trace.CollectionID]bool)
		inAllocSet := make(map[trace.CollectionID]bool)
		for _, info := range tr.CollectionInfos() {
			st.Collections++
			if info.CollectionType == trace.CollectionAllocSet {
				st.AllocSets++
				isAllocSet[info.ID] = true
				continue
			}
			jobs++
			if info.AllocSet != 0 {
				inAlloc++
				inAllocSet[info.ID] = true
				if info.Tier == trace.TierProduction {
					prodInAlloc++
				}
			}
		}
		for _, rec := range tr.UsageRecords {
			switch {
			case isAllocSet[rec.Key.Collection]:
				cpuAllocSets += rec.Limit.CPU
				memAllocSets += rec.Limit.Mem
				cpuAlloc += rec.Limit.CPU
				memAlloc += rec.Limit.Mem
			case inAllocSet[rec.Key.Collection]:
				// Consumes its alloc set's reservation, not fresh
				// allocation; contributes to utilization-inside.
				if rec.Limit.Mem > 0 {
					memUtilIn += rec.AvgUsage.Mem / rec.Limit.Mem
					weightIn++
				}
			default:
				cpuAlloc += rec.Limit.CPU
				memAlloc += rec.Limit.Mem
				if rec.Limit.Mem > 0 {
					memUtilOut += rec.AvgUsage.Mem / rec.Limit.Mem
					weightOut++
				}
			}
		}
	}
	if st.Collections > 0 {
		st.AllocSetShare = float64(st.AllocSets) / float64(st.Collections)
	}
	if cpuAlloc > 0 {
		st.CPUAllocShare = cpuAllocSets / cpuAlloc
	}
	if memAlloc > 0 {
		st.MemAllocShare = memAllocSets / memAlloc
	}
	if jobs > 0 {
		st.JobsInAllocShare = float64(inAlloc) / float64(jobs)
	}
	if inAlloc > 0 {
		st.ProdShareInAlloc = float64(prodInAlloc) / float64(inAlloc)
	}
	if weightIn > 0 {
		st.MemUtilInAlloc = memUtilIn / weightIn
	}
	if weightOut > 0 {
		st.MemUtilOutside = memUtilOut / weightOut
	}
	return st
}

// TerminationStats reproduces §5.2's findings.
type TerminationStats struct {
	Collections int
	// ByFinal counts collections by their final termination event
	// (EventSubmit = still running at trace end).
	ByFinal map[trace.EventType]int
	// CollectionsWithEviction is the share of collections that saw at
	// least one instance eviction (paper: 3.2%).
	CollectionsWithEviction float64
	// NonProdShareOfEvicted is the non-production share among those
	// (paper: 96.6%).
	NonProdShareOfEvicted float64
	// ProdEvictedShare is the share of production collections with any
	// instance eviction (paper: <0.2%).
	ProdEvictedShare float64
	// SingleEvictionShare is, among evicted production collections, the
	// share with exactly one eviction (paper: 52%).
	SingleEvictionShare float64
	// KillRateWithParent / KillRateWithoutParent compare KILL outcomes
	// for jobs with and without parents (paper: 87% vs 41%).
	KillRateWithParent    float64
	KillRateWithoutParent float64
}

// Terminations computes §5.2's statistics over one or more cells.
func Terminations(traces []*trace.MemTrace) TerminationStats {
	st := TerminationStats{ByFinal: make(map[trace.EventType]int)}
	var evicted, prod, prodEvicted, prodEvictedOnce, nonProdEvicted int
	var withParent, withParentKilled, withoutParent, withoutParentKilled int

	for _, tr := range traces {
		// Count instance evictions per collection.
		evictions := make(map[trace.CollectionID]int)
		for _, ev := range tr.InstanceEvents {
			if ev.Type == trace.EventEvict {
				evictions[ev.Key.Collection]++
			}
		}
		for _, info := range tr.CollectionInfos() {
			st.Collections++
			st.ByFinal[info.FinalEvent]++
			n := evictions[info.ID]
			if n > 0 {
				evicted++
				if info.Tier == trace.TierProduction {
					prodEvicted++
					if n == 1 {
						prodEvictedOnce++
					}
				} else {
					nonProdEvicted++
				}
			}
			if info.Tier == trace.TierProduction {
				prod++
			}
			if info.CollectionType != trace.CollectionJob {
				continue
			}
			killed := info.FinalEvent == trace.EventKill
			if info.Parent != 0 {
				withParent++
				if killed {
					withParentKilled++
				}
			} else {
				withoutParent++
				if killed {
					withoutParentKilled++
				}
			}
		}
	}
	if st.Collections > 0 {
		st.CollectionsWithEviction = float64(evicted) / float64(st.Collections)
	}
	if evicted > 0 {
		st.NonProdShareOfEvicted = float64(nonProdEvicted) / float64(evicted)
	}
	if prod > 0 {
		st.ProdEvictedShare = float64(prodEvicted) / float64(prod)
	}
	if prodEvicted > 0 {
		st.SingleEvictionShare = float64(prodEvictedOnce) / float64(prodEvicted)
	}
	if withParent > 0 {
		st.KillRateWithParent = float64(withParentKilled) / float64(withParent)
	}
	if withoutParent > 0 {
		st.KillRateWithoutParent = float64(withoutParentKilled) / float64(withoutParent)
	}
	return st
}

// SubmissionRates holds Figures 8 and 9's hourly rate samples for one or
// more cells (each element is one cell-hour).
type SubmissionRates struct {
	JobsPerHour     []float64 // job SUBMIT events per hour (Figure 8)
	NewTasksPerHour []float64 // first-time instance SUBMITs (Figure 9)
	AllTasksPerHour []float64 // all instance SUBMITs incl. rescheduling
}

// Rates computes per-hour submission counts. Alloc sets are excluded from
// the job counts, matching the paper's job-centric view.
func Rates(traces []*trace.MemTrace) SubmissionRates {
	var out SubmissionRates
	for _, tr := range traces {
		hours := int(tr.Meta.Duration / sim.Hour)
		if hours <= 0 {
			hours = 1
		}
		jobs := make([]float64, hours)
		newTasks := make([]float64, hours)
		allTasks := make([]float64, hours)

		isJob := make(map[trace.CollectionID]bool)
		for _, info := range tr.CollectionInfos() {
			if info.CollectionType == trace.CollectionJob {
				isJob[info.ID] = true
			}
		}
		for _, ev := range tr.CollectionEvents {
			if ev.Type == trace.EventSubmit && isJob[ev.Collection] {
				if h := int(ev.Time / sim.Hour); h >= 0 && h < hours {
					jobs[h]++
				}
			}
		}
		seen := make(map[trace.InstanceKey]bool)
		for _, ev := range tr.InstanceEvents {
			if ev.Type != trace.EventSubmit || !isJob[ev.Key.Collection] {
				continue
			}
			h := int(ev.Time / sim.Hour)
			if h < 0 || h >= hours {
				continue
			}
			allTasks[h]++
			if !seen[ev.Key] {
				seen[ev.Key] = true
				newTasks[h]++
			}
		}
		out.JobsPerHour = append(out.JobsPerHour, jobs...)
		out.NewTasksPerHour = append(out.NewTasksPerHour, newTasks...)
		out.AllTasksPerHour = append(out.AllTasksPerHour, allTasks...)
	}
	return out
}

// SchedulingDelays returns per-job scheduling delays in seconds — the time
// from the job's ENABLE (ready) to its first task running (Figure 10) —
// overall and split by tier.
func SchedulingDelays(traces []*trace.MemTrace) (all []float64, byTier map[trace.Tier][]float64) {
	byTier = make(map[trace.Tier][]float64)
	for _, tr := range traces {
		enable := make(map[trace.CollectionID]sim.Time)
		tier := make(map[trace.CollectionID]trace.Tier)
		for _, ev := range tr.CollectionEvents {
			if ev.Type == trace.EventEnable && ev.CollectionType == trace.CollectionJob {
				if _, ok := enable[ev.Collection]; !ok {
					enable[ev.Collection] = ev.Time
					tier[ev.Collection] = ev.Tier
				}
			}
		}
		first := make(map[trace.CollectionID]sim.Time)
		for _, ev := range tr.InstanceEvents {
			if ev.Type != trace.EventSchedule {
				continue
			}
			if cur, ok := first[ev.Key.Collection]; !ok || ev.Time < cur {
				first[ev.Key.Collection] = ev.Time
			}
		}
		ids := make([]trace.CollectionID, 0, len(enable))
		for id := range enable {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			fr, ok := first[id]
			if !ok {
				continue // never ran inside the trace window
			}
			d := (fr - enable[id]).Seconds()
			if d < 0 {
				continue
			}
			all = append(all, d)
			byTier[tier[id]] = append(byTier[tier[id]], d)
		}
	}
	return all, byTier
}

// TasksPerJob returns the task-count distribution by tier (Figure 11).
func TasksPerJob(traces []*trace.MemTrace) map[trace.Tier][]float64 {
	out := make(map[trace.Tier][]float64)
	for _, tr := range traces {
		counts := make(map[trace.CollectionID]int)
		for _, key := range tr.Instances() {
			counts[key.Collection]++
		}
		for _, info := range tr.CollectionInfos() {
			if info.CollectionType != trace.CollectionJob {
				continue
			}
			if n := counts[info.ID]; n > 0 {
				out[info.Tier] = append(out[info.Tier], float64(n))
			}
		}
	}
	return out
}

// FormatTransition renders a transition edge for reports.
func FormatTransition(t Transition) string {
	return fmt.Sprintf("%s -> %s: %d", t.From, t.To, t.Count)
}
