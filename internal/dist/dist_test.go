package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDeterministic(t *testing.T) {
	var _ Sampler = Deterministic{}
	if got := (Deterministic{Value: 3.5}).Sample(rng.New(1)); got != 3.5 {
		t.Fatalf("got %v", got)
	}
}

func TestLogNormalMedianAndMean(t *testing.T) {
	var _ Sampler = LogNormal{}
	l := LogNormalFromMedian(0.25, 0.6)
	src := rng.New(11)
	n := 200000
	xs := make([]float64, n)
	sum := 0.0
	for i := range xs {
		xs[i] = l.Sample(src)
		sum += xs[i]
	}
	// Median of the samples should sit near the requested median.
	below := 0
	for _, x := range xs {
		if x < 0.25 {
			below++
		}
	}
	if frac := float64(below) / float64(n); frac < 0.48 || frac > 0.52 {
		t.Fatalf("median off: %.3f below", frac)
	}
	if mean := sum / float64(n); math.Abs(mean-l.Mean())/l.Mean() > 0.05 {
		t.Fatalf("mean %.4f want %.4f", mean, l.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	e := Exponential{Rate: 4}
	src := rng.New(7)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += e.Sample(src)
	}
	if mean := sum / float64(n); math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("mean %v", mean)
	}
}

func TestParetoTail(t *testing.T) {
	p := Pareto{Xm: 2, Alpha: 1.5}
	src := rng.New(3)
	for i := 0; i < 1000; i++ {
		if x := p.Sample(src); x < 2 {
			t.Fatalf("sample %v below Xm", x)
		}
	}
}

func TestBoundedParetoQuantileAndMean(t *testing.T) {
	b := BoundedPareto{L: 1, H: 1000, Alpha: 0.75}
	if q := b.Quantile(0); q != 1 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := b.Quantile(1); q != 1000 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if q := b.Quantile(0.5); q < 1 || q > 1000 {
		t.Fatalf("Quantile(0.5) = %v", q)
	}
	// Monte-Carlo mean vs analytic mean.
	src := rng.New(5)
	sum := 0.0
	n := 400000
	for i := 0; i < n; i++ {
		sum += b.Sample(src)
	}
	mean := sum / float64(n)
	if math.Abs(mean-b.Mean())/b.Mean() > 0.05 {
		t.Fatalf("mean %.3f analytic %.3f", mean, b.Mean())
	}
	// Alpha == 1 uses the log form and must stay finite.
	one := BoundedPareto{L: 1, H: 100, Alpha: 1}
	if m := one.Mean(); math.IsNaN(m) || math.IsInf(m, 0) || m <= 1 {
		t.Fatalf("alpha=1 mean %v", m)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	c := NewCategorical([]float64{1, 0, 3})
	src := rng.New(9)
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[c.Draw(src)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket drawn %d times", counts[1])
	}
	if f := float64(counts[2]) / float64(n); math.Abs(f-0.75) > 0.02 {
		t.Fatalf("bucket 2 freq %v", f)
	}
}

func TestCategoricalDegenerateWeights(t *testing.T) {
	c := NewCategorical([]float64{0, 0})
	src := rng.New(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		k := c.Draw(src)
		if k < 0 || k > 1 {
			t.Fatalf("draw %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 2 {
		t.Fatalf("uniform fallback drew %v", seen)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(50, 1.2)
	src := rng.New(13)
	counts := make([]int, 50)
	for i := 0; i < 100000; i++ {
		counts[z.Draw(src)]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[5] {
		t.Fatalf("not skewed: %v", counts[:6])
	}
}

func TestPoissonCount(t *testing.T) {
	src := rng.New(21)
	if n := PoissonCount(src, 0); n != 0 {
		t.Fatalf("mean 0 gave %d", n)
	}
	if n := PoissonCount(src, -3); n != 0 {
		t.Fatalf("negative mean gave %d", n)
	}
	sum := 0
	n := 20000
	for i := 0; i < n; i++ {
		sum += PoissonCount(src, 6.5)
	}
	if mean := float64(sum) / float64(n); math.Abs(mean-6.5) > 0.15 {
		t.Fatalf("mean %v", mean)
	}
	// Large means go through the splitting path without underflow.
	big := PoissonCount(rng.New(4), 2000)
	if big < 1500 || big > 2500 {
		t.Fatalf("large-mean draw %d", big)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	draw := func() []float64 {
		src := rng.New(42)
		l := LogNormalFromMedian(0.1, 0.9)
		b := BoundedPareto{L: 1, H: 100, Alpha: 1.2}
		c := NewCategorical([]float64{2, 1, 1})
		z := NewZipf(10, 1.1)
		out := make([]float64, 0, 40)
		for i := 0; i < 10; i++ {
			out = append(out, l.Sample(src), b.Sample(src),
				float64(c.Draw(src)), float64(z.Draw(src)))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestInvNormCDF(t *testing.T) {
	// Known two-sided z-scores and symmetric reference points.
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963985},
		{0.025, -1.959963985},
		{0.84134474606854293, 1}, // Φ(1)
		{0.15865525393145707, -1},
		{0.99865010196836990, 3}, // Φ(3)
		{0.9999, 3.719016485},
		{0.0001, -3.719016485},
	}
	for _, c := range cases {
		got := InvNormCDF(c.p)
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("InvNormCDF(%v) = %.9f, want %.9f", c.p, got, c.want)
		}
	}
	// Round trip against the normal CDF across the unit interval.
	for p := 0.001; p < 1; p += 0.007 {
		z := InvNormCDF(p)
		back := 0.5 * math.Erfc(-z/math.Sqrt2)
		if math.Abs(back-p) > 1e-12 {
			t.Fatalf("round trip at p=%v: Φ(Φ⁻¹(p)) = %v", p, back)
		}
	}
	if !math.IsInf(InvNormCDF(0), -1) || !math.IsInf(InvNormCDF(1), 1) {
		t.Error("endpoints must map to ±Inf")
	}
	if !math.IsNaN(InvNormCDF(-0.1)) || !math.IsNaN(InvNormCDF(1.1)) {
		t.Error("out-of-range p must map to NaN")
	}
}

func TestLogNormalQuantile(t *testing.T) {
	l := LogNormalFromMedian(2.0, 0.5)
	if got := l.Quantile(0.5); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("median quantile %v, want 2", got)
	}
	// p90 = median · exp(sigma · z90).
	want := 2.0 * math.Exp(0.5*1.2815515655446004)
	if got := l.Quantile(0.9); math.Abs(got-want) > 1e-6 {
		t.Errorf("p90 %v, want %v", got, want)
	}
}
