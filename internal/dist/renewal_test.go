package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func sampleStats(t *testing.T, s Sampler, n int) (mean, cv float64) {
	t.Helper()
	src := rng.New(11)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Sample(src)
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("bad variate %v", x)
		}
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

func TestGammaMomentsAcrossShapes(t *testing.T) {
	for _, shape := range []float64{0.25, 0.5, 1, 2.5, 9} {
		g := Gamma{Shape: shape, Scale: 1 / shape} // mean 1, CV 1/sqrt(shape)
		mean, cv := sampleStats(t, g, 200000)
		if math.Abs(mean-1) > 0.03 {
			t.Errorf("shape %g: mean %.4f, want 1±0.03", shape, mean)
		}
		wantCV := 1 / math.Sqrt(shape)
		if math.Abs(cv-wantCV)/wantCV > 0.05 {
			t.Errorf("shape %g: cv %.4f, want %.4f ±5%%", shape, cv, wantCV)
		}
	}
}

func TestWeibullMoments(t *testing.T) {
	for _, k := range []float64{0.5, 1, 2} {
		w := Weibull{Shape: k, Scale: 1}
		mean, cv := sampleStats(t, w, 200000)
		wantMean := math.Gamma(1 + 1/k)
		wantCV := math.Sqrt(weibullCV2(k))
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Errorf("k=%g: mean %.4f, want %.4f", k, mean, wantMean)
		}
		if math.Abs(cv-wantCV)/wantCV > 0.05 {
			t.Errorf("k=%g: cv %.4f, want %.4f", k, cv, wantCV)
		}
	}
}

func TestWeibullShapeFromCVRoundTrip(t *testing.T) {
	for _, cv := range []float64{0.3, 0.7, 1, 1.8, 3.5} {
		k := WeibullShapeFromCV(cv)
		got := math.Sqrt(weibullCV2(k))
		if math.Abs(got-cv)/cv > 1e-6 {
			t.Errorf("cv %g: shape %g gives cv %g", cv, k, got)
		}
	}
	if k := WeibullShapeFromCV(1); math.Abs(k-1) > 1e-6 {
		t.Errorf("cv=1 should give the exponential shape 1, got %g", k)
	}
}

func TestRenewalSamplersDeterministic(t *testing.T) {
	for _, s := range []Sampler{Gamma{Shape: 0.4, Scale: 2.5}, Weibull{Shape: 0.6, Scale: 1.2}} {
		a, b := rng.New(5), rng.New(5)
		for i := 0; i < 1000; i++ {
			if x, y := s.Sample(a), s.Sample(b); x != y {
				t.Fatalf("%T: draw %d diverged: %v vs %v", s, i, x, y)
			}
		}
	}
}
