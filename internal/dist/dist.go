// Package dist provides the parametric probability distributions the
// workload generator and scheduler are calibrated with: log-normals for
// service times and oversize factors, (bounded) Paretos for the
// heavy-tailed job-size and usage integrals of §7, exponentials for
// arrival thinning, and discrete Zipf/categorical pickers.
//
// Every distribution draws exclusively from an explicit *rng.Source, so a
// simulation's randomness remains a pure function of its root seed — the
// same determinism contract the engine relies on for parallel runs.
package dist

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// Sampler is a distribution that can draw one float64 variate.
type Sampler interface {
	Sample(src *rng.Source) float64
}

// Deterministic always returns Value; it stands in for a distribution in
// tests and ablations.
type Deterministic struct {
	Value float64
}

// Sample returns the constant.
func (d Deterministic) Sample(*rng.Source) float64 { return d.Value }

// LogNormal is the distribution of exp(N(Mu, Sigma²)).
type LogNormal struct {
	Mu    float64 // mean of the underlying normal (log of the median)
	Sigma float64 // standard deviation of the underlying normal
}

// LogNormalFromMedian builds a log-normal from its median and log-space
// sigma — the parameterization the paper's fits are quoted in.
func LogNormalFromMedian(median, sigma float64) LogNormal {
	if median <= 0 {
		median = math.SmallestNonzeroFloat64
	}
	return LogNormal{Mu: math.Log(median), Sigma: sigma}
}

// Sample draws one variate.
func (l LogNormal) Sample(src *rng.Source) float64 {
	return math.Exp(l.Mu + l.Sigma*src.NormFloat64())
}

// Mean returns the analytic mean exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Quantile returns the p-quantile exp(Mu + Sigma·Φ⁻¹(p)).
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*InvNormCDF(p))
}

// InvNormCDF returns Φ⁻¹(p), the standard normal quantile function, via
// Acklam's rational approximation (relative error < 1.15e-9 across the
// open unit interval) — accurate enough to build stratified lookup
// tables for lognormal variates (the usage-noise fast path) and to
// convert confidence levels to z-scores. p outside (0, 1) returns ±Inf
// at the endpoints and NaN beyond them.
func InvNormCDF(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	// Coefficients for the central and tail rational approximations.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
			1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
			6.680131188771972e+01, -1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
			-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
			3.754408661907416e+00}
	)
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow: // lower tail
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow: // central region
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default: // upper tail, by symmetry
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against math.Erfc pushes the result to
	// near machine precision.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// Exponential is the exponential distribution with the given rate
// (events per unit time); its mean is 1/Rate.
type Exponential struct {
	Rate float64
}

// Sample draws one variate by inversion.
func (e Exponential) Sample(src *rng.Source) float64 {
	return -math.Log(src.Float64Open()) / e.Rate
}

// Pareto is the unbounded Pareto distribution with scale Xm (minimum
// value) and tail index Alpha.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws one variate by inversion.
func (p Pareto) Sample(src *rng.Source) float64 {
	return p.Xm * math.Pow(src.Float64Open(), -1/p.Alpha)
}

// BoundedPareto is a Pareto truncated to [L, H]: the two-sided power law
// behind the paper's per-job resource-hours distributions (Table 2), where
// the unbounded tail would otherwise let one job eat the cell.
type BoundedPareto struct {
	L     float64 // lower bound (inclusive)
	H     float64 // upper bound
	Alpha float64 // tail index
}

// Quantile returns the inverse CDF at u in [0, 1).
func (b BoundedPareto) Quantile(u float64) float64 {
	if u <= 0 {
		return b.L
	}
	if u >= 1 {
		return b.H
	}
	ratio := 1 - math.Pow(b.L/b.H, b.Alpha)
	return b.L * math.Pow(1-u*ratio, -1/b.Alpha)
}

// Sample draws one variate by inversion.
func (b BoundedPareto) Sample(src *rng.Source) float64 {
	return b.Quantile(src.Float64Open())
}

// Mean returns the analytic mean; Alpha == 1 uses the logarithmic form.
func (b BoundedPareto) Mean() float64 {
	if b.H <= b.L {
		return b.L
	}
	if math.Abs(b.Alpha-1) < 1e-9 {
		return b.L * b.H * math.Log(b.H/b.L) / (b.H - b.L)
	}
	num := b.Alpha * math.Pow(b.L, b.Alpha) *
		(math.Pow(b.H, 1-b.Alpha) - math.Pow(b.L, 1-b.Alpha))
	den := (1 - b.Alpha) * (1 - math.Pow(b.L/b.H, b.Alpha))
	return num / den
}

// Categorical draws indices with probability proportional to the weights
// it was built from. It consumes exactly one uniform variate per draw.
type Categorical struct {
	cdf []float64
}

// NewCategorical builds a categorical picker over len(weights) outcomes.
// Negative weights are treated as zero; an all-zero weight vector draws
// uniformly.
func NewCategorical(weights []float64) *Categorical {
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cdf[i] = total
	}
	if total <= 0 {
		for i := range cdf {
			cdf[i] = float64(i+1) / float64(len(cdf))
		}
		return &Categorical{cdf: cdf}
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Categorical{cdf: cdf}
}

// Draw returns one index in [0, len(weights)).
func (c *Categorical) Draw(src *rng.Source) int {
	u := src.Float64()
	i := sort.Search(len(c.cdf), func(i int) bool { return u < c.cdf[i] })
	if i >= len(c.cdf) {
		// Float rounding left cdf[last] a hair under 1.
		return len(c.cdf) - 1
	}
	return i
}

// Zipf draws 0-based ranks k in [0, n) with P(k) ∝ 1/(k+1)^s — the user
// popularity model (a few users own most jobs, §5.1).
type Zipf struct {
	cat *Categorical
}

// NewZipf builds a Zipf picker over n ranks with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	w := make([]float64, n)
	for k := range w {
		w[k] = math.Pow(float64(k+1), -s)
	}
	return &Zipf{cat: NewCategorical(w)}
}

// Draw returns one rank in [0, n).
func (z *Zipf) Draw(src *rng.Source) int { return z.cat.Draw(src) }

// PoissonCount draws a Poisson-distributed count with the given mean via
// Knuth's product method, splitting large means so the running product
// never underflows. Non-positive means yield zero.
func PoissonCount(src *rng.Source, mean float64) int {
	n := 0
	for mean > 500 {
		// Poisson(a+b) = Poisson(a) + Poisson(b) for independent draws.
		n += poissonKnuth(src, 500)
		mean -= 500
	}
	return n + poissonKnuth(src, mean)
}

func poissonKnuth(src *rng.Source, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= src.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Gamma is the gamma distribution with the given Shape (k) and Scale (θ);
// its mean is Shape·Scale and its squared coefficient of variation is
// 1/Shape. Renewal arrival processes use it as the inter-arrival law: a
// mean-one gamma with Shape = 1/CV² dials burstiness without moving the
// rate.
type Gamma struct {
	Shape float64
	Scale float64
}

// Sample draws one variate via Marsaglia–Tsang squeeze rejection (shapes
// below one use the standard boost: Gamma(k) = Gamma(k+1)·U^(1/k)).
func (g Gamma) Sample(src *rng.Source) float64 {
	shape := g.Shape
	if shape <= 0 || g.Scale <= 0 {
		return 0
	}
	boost := 1.0
	if shape < 1 {
		boost = math.Pow(src.Float64Open(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := src.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := src.Float64Open()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return g.Scale * boost * d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return g.Scale * boost * d * v
		}
	}
}

// Mean returns the analytic mean Shape·Scale.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// Weibull is the Weibull distribution with the given Shape (k) and Scale
// (λ); shapes below one give heavy, bursty tails, shape one is the
// exponential, larger shapes approach regular spacing.
type Weibull struct {
	Shape float64
	Scale float64
}

// Sample draws one variate by inversion.
func (w Weibull) Sample(src *rng.Source) float64 {
	if w.Shape <= 0 || w.Scale <= 0 {
		return 0
	}
	return w.Scale * math.Pow(-math.Log(src.Float64Open()), 1/w.Shape)
}

// Mean returns the analytic mean λ·Γ(1+1/k).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

// weibullCV2 is the squared coefficient of variation of a Weibull with
// shape k: Γ(1+2/k)/Γ(1+1/k)² − 1, monotone decreasing in k.
func weibullCV2(k float64) float64 {
	g1 := math.Gamma(1 + 1/k)
	return math.Gamma(1+2/k)/(g1*g1) - 1
}

// WeibullShapeFromCV solves the Weibull shape k whose coefficient of
// variation equals cv, by bisection (the CV is monotone decreasing in the
// shape). cv must be positive; extreme values clamp to the bracket
// [0.08, 64] — CV ≈ 0.016 at k = 64 and ≈ 2.7e5 at k = 0.08, far beyond
// any workload calibration.
func WeibullShapeFromCV(cv float64) float64 {
	target := cv * cv
	lo, hi := 0.08, 64.0
	if weibullCV2(lo) <= target {
		return lo
	}
	if weibullCV2(hi) >= target {
		return hi
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if weibullCV2(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
