// Package profiling backs the -cpuprofile/-memprofile flags of the
// command-line tools: pprof profiles of whole simulation runs, for
// finding hot paths at realistic scales instead of microbenchmark ones.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Session owns the profile files opened for one run.
type Session struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// Stop time to memPath; either path may be empty to disable that
// profile. Callers must invoke Stop on the way out (note that log.Fatal
// skips deferred calls: profiles of a failed run are lost, which is the
// standard trade-off).
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop flushes and closes the CPU profile and, when requested, writes
// the heap profile after a GC so it reflects the final live set. It is
// idempotent.
func (s *Session) Stop() error {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		err := s.cpuFile.Close()
		s.cpuFile = nil
		if err != nil {
			return err
		}
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			return err
		}
		s.memPath = ""
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
