package autopilot

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
)

func setup(t *testing.T, scaling trace.VerticalScaling, request trace.Resources) (*Autopilot, *cluster.Cell, *scheduler.Task, *trace.MemTrace) {
	t.Helper()
	cell := cluster.NewCell("test")
	m := cell.AddMachine(trace.Resources{CPU: 1, Mem: 1}, "P0")
	tr := trace.NewMemTrace(trace.Meta{})
	oc := cluster.OvercommitPolicy{CPUFactor: 1.2, MemFactor: 1.2}
	ap := New(DefaultConfig(oc), cell, tr)

	j := scheduler.NewJob(1)
	j.Type = trace.CollectionJob
	j.Priority = 120
	j.Tier = trace.TierProduction
	j.Scaling = scaling
	task := &scheduler.Task{Request: request, Duration: sim.Hour}
	j.AddTask(task)
	task.Machine = m.ID
	cell.Place(m.ID, &cluster.Resident{Key: task.Key, Limit: request, Priority: 120, Tier: trace.TierProduction})
	return ap, cell, task, tr
}

func TestNoneStrategyNeverAdjusts(t *testing.T) {
	ap, _, task, tr := setup(t, trace.ScalingNone, trace.Resources{CPU: 0.4, Mem: 0.4})
	for i := 0; i < 20; i++ {
		got := ap.Observe(sim.Time(i)*sim.SampleWindow, task, trace.Resources{CPU: 0.05, Mem: 0.05})
		if got != task.Request || got.CPU != 0.4 {
			t.Fatalf("limit changed for non-autoscaled task: %v", got)
		}
	}
	if ap.Updates() != 0 || len(tr.InstanceEvents) != 0 {
		t.Fatalf("updates %d events %d", ap.Updates(), len(tr.InstanceEvents))
	}
	if ap.Tracked() != 0 {
		t.Fatal("none tasks should not be tracked")
	}
}

func TestFullShrinksTowardPeak(t *testing.T) {
	ap, cell, task, tr := setup(t, trace.ScalingFull, trace.Resources{CPU: 0.4, Mem: 0.4})
	for i := 0; i < 15; i++ {
		ap.Observe(sim.Time(i)*sim.SampleWindow, task, trace.Resources{CPU: 0.05, Mem: 0.08})
	}
	// Limit should approach peak × margin = 0.05×1.1 / 0.08×1.1.
	if task.Request.CPU > 0.06 || task.Request.Mem > 0.095 {
		t.Fatalf("limit did not shrink: %+v", task.Request)
	}
	if task.Request.CPU < 0.05 || task.Request.Mem < 0.08 {
		t.Fatalf("limit below peak: %+v", task.Request)
	}
	if ap.Updates() == 0 {
		t.Fatal("no updates issued")
	}
	// Machine allocation tracks the shrunken limit.
	m := cell.Machine(task.Machine)
	if m.Allocated().CPU > 0.06 {
		t.Fatalf("machine allocation not updated: %v", m.Allocated())
	}
	// UPDATE_RUNNING events were emitted.
	found := false
	for _, ev := range tr.InstanceEvents {
		if ev.Type == trace.EventUpdateRunning {
			found = true
		}
	}
	if !found {
		t.Fatal("no UPDATE_RUNNING events")
	}
}

func TestFullGrowsOnPressure(t *testing.T) {
	ap, _, task, _ := setup(t, trace.ScalingFull, trace.Resources{CPU: 0.1, Mem: 0.1})
	for i := 0; i < 5; i++ {
		ap.Observe(sim.Time(i)*sim.SampleWindow, task, trace.Resources{CPU: 0.3, Mem: 0.3})
	}
	if task.Request.CPU < 0.3 || task.Request.Mem < 0.3 {
		t.Fatalf("limit did not grow above usage: %+v", task.Request)
	}
}

func TestGrowthCappedByMachineHeadroom(t *testing.T) {
	ap, cell, task, _ := setup(t, trace.ScalingFull, trace.Resources{CPU: 0.1, Mem: 0.1})
	// Fill the machine with another resident so headroom is scarce.
	m := cell.Machine(task.Machine)
	cell.Place(m.ID, &cluster.Resident{
		Key:   trace.InstanceKey{Collection: 99},
		Limit: trace.Resources{CPU: 1.0, Mem: 1.0},
	})
	for i := 0; i < 5; i++ {
		ap.Observe(sim.Time(i)*sim.SampleWindow, task, trace.Resources{CPU: 0.9, Mem: 0.9})
	}
	ceiling := ap.cfg.Overcommit.AllocationCeiling(m.Capacity)
	if alloc := m.Allocated(); alloc.CPU > ceiling.CPU+1e-9 || alloc.Mem > ceiling.Mem+1e-9 {
		t.Fatalf("allocation %v exceeds ceiling %v", alloc, ceiling)
	}
}

func TestConstrainedFloor(t *testing.T) {
	ap, _, task, _ := setup(t, trace.ScalingConstrained, trace.Resources{CPU: 0.4, Mem: 0.4})
	for i := 0; i < 20; i++ {
		ap.Observe(sim.Time(i)*sim.SampleWindow, task, trace.Resources{CPU: 0.01, Mem: 0.01})
	}
	floor := 0.4 * ap.cfg.ConstrainedFloor
	if task.Request.CPU < floor-1e-9 {
		t.Fatalf("constrained limit %v fell below floor %v", task.Request.CPU, floor)
	}
	// Full scaling with the same usage would shrink far below the floor.
	ap2, _, task2, _ := setup(t, trace.ScalingFull, trace.Resources{CPU: 0.4, Mem: 0.4})
	for i := 0; i < 20; i++ {
		ap2.Observe(sim.Time(i)*sim.SampleWindow, task2, trace.Resources{CPU: 0.01, Mem: 0.01})
	}
	if task2.Request.CPU >= task.Request.CPU {
		t.Fatalf("full (%v) should shrink below constrained (%v)", task2.Request.CPU, task.Request.CPU)
	}
}

func TestWindowPeakMemory(t *testing.T) {
	ap, _, task, _ := setup(t, trace.ScalingFull, trace.Resources{CPU: 0.5, Mem: 0.5})
	// One tall peak, then quiet: the percentile recommender must keep the
	// limit well above the quiet level while the peak is in the window.
	ap.Observe(0, task, trace.Resources{CPU: 0.4, Mem: 0.4})
	for i := 1; i < 6; i++ {
		ap.Observe(sim.Time(i)*sim.SampleWindow, task, trace.Resources{CPU: 0.05, Mem: 0.05})
	}
	// With the p85 recommender, one 0.4 peak among five 0.05 samples
	// keeps the limit well above the quiet level (≈0.14), though below
	// the raw peak.
	if task.Request.CPU < 0.1 {
		t.Fatalf("limit %v forgot an in-window peak", task.Request.CPU)
	}
	// After the window slides past the peak, the limit shrinks.
	for i := 6; i < 25; i++ {
		ap.Observe(sim.Time(i)*sim.SampleWindow, task, trace.Resources{CPU: 0.05, Mem: 0.05})
	}
	if task.Request.CPU > 0.1 {
		t.Fatalf("limit %v did not shrink after peak left the window", task.Request.CPU)
	}
}

func TestHysteresisSuppressesSmallChanges(t *testing.T) {
	ap, _, task, _ := setup(t, trace.ScalingFull, trace.Resources{CPU: 0.11, Mem: 0.11})
	ap.Observe(0, task, trace.Resources{CPU: 0.1, Mem: 0.1})
	base := ap.Updates()
	// Recommended = 0.1 × 1.1 = 0.11 = current limit: no update.
	ap.Observe(sim.SampleWindow, task, trace.Resources{CPU: 0.1, Mem: 0.1})
	if ap.Updates() != base {
		t.Fatalf("update issued for insignificant change (updates %d -> %d)", base, ap.Updates())
	}
}

func TestForget(t *testing.T) {
	ap, _, task, _ := setup(t, trace.ScalingFull, trace.Resources{CPU: 0.4, Mem: 0.4})
	ap.Observe(0, task, trace.Resources{CPU: 0.1, Mem: 0.1})
	if ap.Tracked() != 1 {
		t.Fatalf("tracked %d", ap.Tracked())
	}
	ap.Forget(task.Key)
	if ap.Tracked() != 0 {
		t.Fatalf("tracked after forget %d", ap.Tracked())
	}
}

func TestSignificant(t *testing.T) {
	if significant(1.0, 1.01, 0.05) {
		t.Fatal("1% change flagged at 5% threshold")
	}
	if !significant(1.0, 1.2, 0.05) {
		t.Fatal("20% change not flagged")
	}
	if !significant(0, 0.5, 0.05) {
		t.Fatal("growth from zero not flagged")
	}
	if significant(0, 0, 0.05) {
		t.Fatal("zero to zero flagged")
	}
}
