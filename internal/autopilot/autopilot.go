// Package autopilot reproduces Borg's vertical autoscaling system (§8,
// and the companion Autopilot paper): a per-task moving-window peak
// recommender that continually adjusts resource limits to minimize slack —
// the gap between requested and used resources.
//
// Three strategies are modeled, matching the trace's annotations:
// ScalingNone (limits never touched), ScalingFull (limit tracks the
// windowed peak with a safety margin), and ScalingConstrained (as Full,
// but the limit may not drop below a floor fraction of the original
// user request).
package autopilot

import (
	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config tunes the recommender.
type Config struct {
	// WindowSamples is the number of recent 5-minute peak samples the
	// recommender considers (12 ≈ one hour of history).
	WindowSamples int
	// Percentile selects the windowed peak percentile the limit tracks;
	// Autopilot's recommenders are percentile-based rather than
	// max-based, so transient spikes do not ratchet limits up.
	Percentile float64
	// Margin is the safety factor applied to the windowed percentile.
	Margin float64
	// ConstrainedFloor is the minimum fraction of the original request a
	// constrained task's limit may shrink to.
	ConstrainedFloor float64
	// UpdateThreshold is the relative limit change required before an
	// update is issued (hysteresis; avoids trace spam).
	UpdateThreshold float64
	// MinCPU and MinMem floor the recommended limits.
	MinCPU, MinMem float64
	// Overcommit is the cell's policy, used to cap limit growth at the
	// machine's allocation ceiling.
	Overcommit cluster.OvercommitPolicy
}

// DefaultConfig mirrors the reproduction's 2019 profile.
func DefaultConfig(oc cluster.OvercommitPolicy) Config {
	return Config{
		WindowSamples:    12,
		Percentile:       0.85,
		Margin:           1.03,
		ConstrainedFloor: 0.75,
		UpdateThreshold:  0.05,
		MinCPU:           0.0005,
		MinMem:           0.0005,
		Overcommit:       oc,
	}
}

// window holds a task's recent peak-usage samples and its original request.
type window struct {
	peaks    []trace.Resources
	next     int
	filled   bool
	original trace.Resources
}

func (w *window) add(u trace.Resources) {
	if w.next == len(w.peaks) {
		w.next = 0
		w.filled = true
	}
	w.peaks[w.next] = u
	w.next++
}

// percentile returns the q-quantile of the windowed peaks, computed per
// resource dimension.
func (w *window) percentile(q float64) trace.Resources {
	n := w.next
	if w.filled {
		n = len(w.peaks)
	}
	if n == 0 {
		return trace.Resources{}
	}
	cpus := make([]float64, n)
	mems := make([]float64, n)
	for i := 0; i < n; i++ {
		cpus[i] = w.peaks[i].CPU
		mems[i] = w.peaks[i].Mem
	}
	return trace.Resources{
		CPU: stats.Quantile(cpus, q),
		Mem: stats.Quantile(mems, q),
	}
}

// Autopilot is the vertical autoscaler for one cell.
type Autopilot struct {
	cfg     Config
	cell    *cluster.Cell
	sink    trace.Sink
	windows map[trace.InstanceKey]*window

	setRequest func(*scheduler.Task, trace.Resources)

	updates int
}

// New constructs an Autopilot bound to a cell and trace sink.
func New(cfg Config, cell *cluster.Cell, sink trace.Sink) *Autopilot {
	if cfg.WindowSamples <= 0 {
		cfg.WindowSamples = 12
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 1.1
	}
	return &Autopilot{
		cfg:     cfg,
		cell:    cell,
		sink:    sink,
		windows: make(map[trace.InstanceKey]*window),
	}
}

// OnLimitChange registers fn as the writer of task request updates —
// typically the scheduler's accounting-aware setter, so admission sums
// maintained incrementally over task requests stay consistent with
// autoscaling. When unset, the autopilot writes t.Request directly.
func (a *Autopilot) OnLimitChange(fn func(*scheduler.Task, trace.Resources)) {
	a.setRequest = fn
}

// Updates returns how many limit updates have been issued.
func (a *Autopilot) Updates() int { return a.updates }

// Tracked returns how many instances currently have usage windows.
func (a *Autopilot) Tracked() int { return len(a.windows) }

// Observe feeds one 5-minute peak usage sample for a running task and, for
// autoscaled tasks, adjusts the task's limit toward the windowed peak.
// It returns the new limit (unchanged for non-autoscaled tasks).
func (a *Autopilot) Observe(now sim.Time, t *scheduler.Task, peakUsage trace.Resources) trace.Resources {
	if t.Job.Scaling == trace.ScalingNone {
		return t.Request
	}
	w := a.windows[t.Key]
	if w == nil {
		w = &window{peaks: make([]trace.Resources, a.cfg.WindowSamples), original: t.Request}
		a.windows[t.Key] = w
	}
	w.add(peakUsage)

	rec := w.percentile(a.cfg.Percentile).Scale(a.cfg.Margin)
	if rec.CPU < a.cfg.MinCPU {
		rec.CPU = a.cfg.MinCPU
	}
	if rec.Mem < a.cfg.MinMem {
		rec.Mem = a.cfg.MinMem
	}
	if t.Job.Scaling == trace.ScalingConstrained {
		floor := w.original.Scale(a.cfg.ConstrainedFloor)
		if rec.CPU < floor.CPU {
			rec.CPU = floor.CPU
		}
		if rec.Mem < floor.Mem {
			rec.Mem = floor.Mem
		}
	}

	cur := t.Request
	if !significant(cur.CPU, rec.CPU, a.cfg.UpdateThreshold) &&
		!significant(cur.Mem, rec.Mem, a.cfg.UpdateThreshold) {
		return cur
	}

	// Cap growth at the machine's remaining allocation headroom. Inner
	// (alloc-hosted) tasks have a zero machine-level limit, so only
	// direct placements need the check.
	if t.Machine != 0 && t.AllocInstance.Collection == 0 {
		m := a.cell.Machine(t.Machine)
		if m != nil {
			ceiling := m.Ceiling(a.cfg.Overcommit)
			head := ceiling.Sub(m.Allocated()).Add(cur)
			if rec.CPU > head.CPU {
				rec.CPU = head.CPU
			}
			if rec.Mem > head.Mem {
				rec.Mem = head.Mem
			}
			if rec.CPU < a.cfg.MinCPU || rec.Mem < a.cfg.MinMem {
				return cur // no headroom at all; keep the current limit
			}
			a.cell.UpdateLimit(t.Machine, t.Key, rec)
		}
	}
	if a.setRequest != nil {
		a.setRequest(t, rec)
	} else {
		t.Request = rec
	}
	a.updates++
	a.sink.InstanceEvent(trace.InstanceEvent{
		Time:          now,
		Key:           t.Key,
		Type:          trace.EventUpdateRunning,
		Machine:       t.Machine,
		Priority:      t.Job.Priority,
		Tier:          t.Job.Tier,
		Request:       rec,
		AllocInstance: t.AllocInstance,
	})
	return rec
}

// Forget drops a task's window when it stops running.
func (a *Autopilot) Forget(key trace.InstanceKey) {
	delete(a.windows, key)
}

// significant reports whether new differs from old by more than threshold
// relative to old.
func significant(old, new, threshold float64) bool {
	if old == 0 {
		return new != 0
	}
	diff := new - old
	if diff < 0 {
		diff = -diff
	}
	return diff/old > threshold
}
