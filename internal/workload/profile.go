// Package workload synthesizes Borg cell workloads whose statistics are
// calibrated to the numbers the paper reports: arrival rates (§6.1),
// tasks-per-job by tier (Figure 11), heavy-tailed Pareto resource
// integrals (§7, Table 2), termination and dependency behaviour (§5.2),
// alloc-set usage (§5.1), tier mixes with per-cell variation (§4), and
// Autopilot coverage (§8).
//
// Two eras are provided: Profile2011 (one cell) and Profile2019 (cells
// a–h). All rates are specified at the paper's reference cell size of
// 12,000 machines and scaled linearly to the simulated machine count.
package workload

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ReferenceMachines is the per-cell machine count both traces report
// (Table 1); arrival rates scale as machines/ReferenceMachines.
const ReferenceMachines = 12000

// TierParams calibrates one tier's workload within a cell.
type TierParams struct {
	Tier trace.Tier
	// ArrivalShare is this tier's share of job submissions.
	ArrivalShare float64
	// CPUBudget and MemBudget are the target average fractions of cell
	// capacity this tier consumes (Figures 2/3 bar heights).
	CPUBudget float64
	MemBudget float64
	// Priorities are the raw priority values used by this tier and their
	// weights.
	Priorities      []int
	PriorityWeights []float64
	// TaskSingleProb is the probability a job has exactly one task; the
	// rest follow a bounded-Pareto tail with TaskAlpha up to TaskCap
	// (calibrates Figure 11's per-tier tasks-per-job quantiles).
	TaskSingleProb float64
	TaskAlpha      float64
	TaskCap        float64
	// UsageAlpha is the Pareto tail index of the per-job NCU-hours
	// integral (Table 2's fitted α).
	UsageAlpha float64
	// MemPerCPUMedian and MemPerCPUSigma couple NMU-hours to NCU-hours
	// (Figure 13's correlation).
	MemPerCPUMedian float64
	MemPerCPUSigma  float64
	// OversizeCPU/OversizeMem are the median request/usage ratios (slack
	// before autoscaling, §4's usage-vs-allocation gaps).
	OversizeCPU      float64
	OversizeCPUSigma float64
	OversizeMem      float64
	OversizeMemSigma float64
	// KillProb is the chance a parentless job is killed by its user
	// before completing; FailProb the chance it fails on its own.
	KillProb float64
	FailProb float64
	// ParentProb is the chance a job is submitted as the child of a live
	// job (§5.2 dependencies).
	ParentProb float64
	// RestartMean is the mean number of scripted crash-restarts per task
	// (geometric), driving Figure 9's rescheduling churn.
	RestartMean float64
	// BatchScheduler routes the tier's jobs through the batch queue.
	BatchScheduler bool
	// ScalingProbs are the probabilities of ScalingNone, ScalingConstrained
	// and ScalingFull (§8). Must sum to 1.
	ScalingProbs [3]float64
}

// CellProfile calibrates one simulated cell.
type CellProfile struct {
	Name string
	Era  trace.Era
	// Machines is the simulated cell size.
	Machines int
	Shapes   []cluster.Shape
	// JobsPerHour is the mean submission rate at ReferenceMachines.
	JobsPerHour float64
	// DiurnalAmplitude and DiurnalPhase modulate arrivals over the day;
	// phase is the local-time offset (cell g runs at Singapore time).
	DiurnalAmplitude float64
	DiurnalPhase     sim.Time
	// Arrival selects the arrival process by spec (see ParseArrival);
	// empty means the default diurnally-thinned poisson stream.
	Arrival string
	// Users and UserSkew shape the Zipf user-popularity model (and the
	// cohorts process's client population); zero means the calibrated
	// defaults of 50 users at skew 1.2.
	Users    int
	UserSkew float64
	Tiers    []TierParams
	// AllocSetFraction is the fraction of collections that are alloc
	// sets (§5.1: 2%).
	AllocSetFraction float64
	// ProdAllocProb is the probability a production job targets a live
	// alloc set (§5.1: 15% of jobs overall, 95% of them prod).
	ProdAllocProb float64
	// InAllocMemBoost multiplies memory utilization for jobs inside
	// allocs (§5.1: 73% vs 41% utilization).
	InAllocMemBoost float64
	// MaintenanceRate is the per-machine rate of OS-upgrade evictions
	// per month (§5.2: "about 1/month per machine").
	MaintenanceRate float64
	// Overcommit is the cell's allocation policy (§4).
	Overcommit cluster.OvercommitPolicy
	// Placement tuning for the scheduler.
	Policy          scheduler.PlacementPolicy
	CandidateSample int
	// SchedServiceMedian is the median per-placement service time in
	// seconds (Figure 10 calibration).
	SchedServiceMedian float64
	SchedServiceSigma  float64
	// BatchQueue enables the batch scheduler front-end.
	BatchQueue bool
	// BatchAllocCeiling overrides the batch admission controller's
	// best-effort-batch CPU allocation ceiling (fraction of cell
	// capacity); 0 means the default (0.85). Parameter sweeps use it to
	// probe admission-pressure sensitivity.
	BatchAllocCeiling float64
	// UsageNoiseSigma is the per-window lognormal usage noise.
	UsageNoiseSigma float64
	// MemUnderProvisionProb is the chance a task's memory limit sits
	// below its peak usage, making it OOM-evictable under pressure.
	MemUnderProvisionProb float64
}

// TotalArrivalRate returns jobs/hour scaled to the simulated cell size.
func (p *CellProfile) TotalArrivalRate() float64 {
	return p.JobsPerHour * float64(p.Machines) / ReferenceMachines
}

// TierByName returns the tier parameters, or nil.
func (p *CellProfile) TierFor(t trace.Tier) *TierParams {
	for i := range p.Tiers {
		if p.Tiers[i].Tier == t {
			return &p.Tiers[i]
		}
	}
	return nil
}

// Profile2011 builds the single-cell 2011-era profile: coarse priority
// bands, no alloc sets / dependencies / batch queue / autopilot, a larger
// free tier, CPU-biased overcommit and random-fit placement.
func Profile2011(machines int) *CellProfile {
	return &CellProfile{
		Name:             "2011",
		Era:              trace.Era2011,
		Machines:         machines,
		Shapes:           cluster.Shapes2011,
		JobsPerHour:      964, // §6.1: mean 964 jobs/h in 2011
		DiurnalAmplitude: 0.30,
		DiurnalPhase:     0,
		Tiers: []TierParams{
			{
				Tier: trace.TierFree, ArrivalShare: 0.32,
				CPUBudget: 0.12, MemBudget: 0.14,
				Priorities: []int{0, 1}, PriorityWeights: []float64{0.6, 0.4},
				TaskSingleProb: 0.62, TaskAlpha: 0.62, TaskCap: 800,
				UsageAlpha:      0.77,
				MemPerCPUMedian: 1.0, MemPerCPUSigma: 0.45,
				OversizeCPU: 2.6, OversizeCPUSigma: 0.45,
				OversizeMem: 1.35, OversizeMemSigma: 0.30,
				KillProb: 0.38, FailProb: 0.12,
				RestartMean:  0.5,
				ScalingProbs: [3]float64{1, 0, 0},
			},
			{
				Tier: trace.TierBestEffortBatch, ArrivalShare: 0.44,
				CPUBudget: 0.06, MemBudget: 0.07,
				Priorities: []int{2, 4, 6, 8}, PriorityWeights: []float64{0.4, 0.3, 0.2, 0.1},
				TaskSingleProb: 0.50, TaskAlpha: 0.55, TaskCap: 1500,
				UsageAlpha:      0.77,
				MemPerCPUMedian: 1.0, MemPerCPUSigma: 0.45,
				OversizeCPU: 2.2, OversizeCPUSigma: 0.40,
				OversizeMem: 1.30, OversizeMemSigma: 0.30,
				KillProb: 0.40, FailProb: 0.12,
				RestartMean:  0.7,
				ScalingProbs: [3]float64{1, 0, 0},
			},
			{
				Tier: trace.TierProduction, ArrivalShare: 0.24,
				CPUBudget: 0.28, MemBudget: 0.30,
				Priorities: []int{9, 10, 11}, PriorityWeights: []float64{0.55, 0.40, 0.05},
				TaskSingleProb: 0.80, TaskAlpha: 1.3, TaskCap: 300,
				UsageAlpha:      0.77,
				MemPerCPUMedian: 1.1, MemPerCPUSigma: 0.40,
				OversizeCPU: 3.3, OversizeCPUSigma: 0.40,
				OversizeMem: 1.45, OversizeMemSigma: 0.25,
				KillProb: 0.30, FailProb: 0.06,
				RestartMean:  0.25,
				ScalingProbs: [3]float64{1, 0, 0},
			},
		},
		AllocSetFraction: 0,
		ProdAllocProb:    0,
		InAllocMemBoost:  1,
		MaintenanceRate:  1.0,
		// §4: in 2011 CPU was over-committed far more than memory.
		Overcommit:            cluster.OvercommitPolicy{CPUFactor: 1.30, MemFactor: 1.00},
		Policy:                scheduler.RandomFit,
		CandidateSample:       6,
		SchedServiceMedian:    0.35,
		SchedServiceSigma:     1.0,
		BatchQueue:            false,
		UsageNoiseSigma:       0.30,
		MemUnderProvisionProb: 0.02,
	}
}

// cellTweak captures the per-cell 2019 variations (Figures 3/5: cell b is
// beb-heavy, a prod-heavy, h mid-heavy, c over-allocates beb memory;
// cell g runs on Singapore local time).
type cellTweak struct {
	arrival        [4]float64 // free, beb, mid, prod arrival shares
	cpuB           [4]float64 // CPU budgets
	memB           [4]float64 // memory budgets
	phase          sim.Time
	bebMemOversize float64 // extra beb memory request inflation (cell c)
}

var tweaks2019 = map[string]cellTweak{
	"a": {arrival: [4]float64{0.14, 0.40, 0.05, 0.41}, cpuB: [4]float64{0.02, 0.13, 0.03, 0.42}, memB: [4]float64{0.02, 0.12, 0.04, 0.46}},
	"b": {arrival: [4]float64{0.14, 0.66, 0.03, 0.17}, cpuB: [4]float64{0.02, 0.33, 0.02, 0.21}, memB: [4]float64{0.02, 0.31, 0.03, 0.21}},
	"c": {arrival: [4]float64{0.18, 0.56, 0.05, 0.21}, cpuB: [4]float64{0.03, 0.25, 0.03, 0.27}, memB: [4]float64{0.02, 0.28, 0.03, 0.25}, bebMemOversize: 2.4},
	"d": {arrival: [4]float64{0.20, 0.50, 0.06, 0.24}, cpuB: [4]float64{0.03, 0.20, 0.04, 0.30}, memB: [4]float64{0.03, 0.19, 0.04, 0.32}},
	"e": {arrival: [4]float64{0.17, 0.48, 0.08, 0.27}, cpuB: [4]float64{0.02, 0.18, 0.05, 0.33}, memB: [4]float64{0.02, 0.17, 0.05, 0.35}},
	"f": {arrival: [4]float64{0.22, 0.52, 0.04, 0.22}, cpuB: [4]float64{0.04, 0.23, 0.02, 0.27}, memB: [4]float64{0.04, 0.21, 0.03, 0.29}},
	"g": {arrival: [4]float64{0.18, 0.50, 0.07, 0.25}, cpuB: [4]float64{0.02, 0.20, 0.04, 0.31}, memB: [4]float64{0.02, 0.19, 0.05, 0.33}, phase: 15 * sim.Hour},
	"h": {arrival: [4]float64{0.14, 0.44, 0.16, 0.26}, cpuB: [4]float64{0.02, 0.16, 0.10, 0.30}, memB: [4]float64{0.02, 0.15, 0.11, 0.32}},
}

// Cells2019 lists the 2019 trace's cell names.
func Cells2019() []string { return []string{"a", "b", "c", "d", "e", "f", "g", "h"} }

// Profile2019 builds the profile for one 2019 cell (a–h).
func Profile2019(cell string, machines int) *CellProfile {
	tw, ok := tweaks2019[cell]
	if !ok {
		panic("workload: unknown 2019 cell " + cell)
	}
	bebMemOversize := 1.55
	bebMemSigma := 0.35
	if tw.bebMemOversize > 0 {
		bebMemOversize = tw.bebMemOversize
		bebMemSigma = 0.45
	}
	return &CellProfile{
		Name:             cell,
		Era:              trace.Era2019,
		Machines:         machines,
		Shapes:           cluster.Shapes2019,
		JobsPerHour:      3360, // §6.1: mean 3360 jobs/h in 2019
		DiurnalAmplitude: 0.25,
		DiurnalPhase:     tw.phase,
		Tiers: []TierParams{
			{
				Tier: trace.TierFree, ArrivalShare: tw.arrival[0],
				CPUBudget: tw.cpuB[0], MemBudget: tw.memB[0],
				Priorities: []int{0, 25, 50}, PriorityWeights: []float64{0.5, 0.3, 0.2},
				// Figure 11: free 95%ile ≈ 21 tasks.
				TaskSingleProb: 0.70, TaskAlpha: 0.60, TaskCap: 600,
				UsageAlpha:      0.69,
				MemPerCPUMedian: 0.72, MemPerCPUSigma: 0.40,
				OversizeCPU: 3.0, OversizeCPUSigma: 0.45,
				OversizeMem: 1.5, OversizeMemSigma: 0.35,
				KillProb: 0.40, FailProb: 0.10,
				ParentProb:   0.30,
				RestartMean:  4.0,
				ScalingProbs: [3]float64{0.55, 0.15, 0.30},
			},
			{
				Tier: trace.TierBestEffortBatch, ArrivalShare: tw.arrival[1],
				CPUBudget: tw.cpuB[1], MemBudget: tw.memB[1],
				Priorities: []int{110, 115}, PriorityWeights: []float64{0.6, 0.4},
				// Figure 11: beb 80%ile ≈ 25 tasks, 95%ile ≈ 498.
				TaskSingleProb: 0.35, TaskAlpha: 0.30, TaskCap: 3000,
				UsageAlpha:      0.69,
				MemPerCPUMedian: 0.68, MemPerCPUSigma: 0.40,
				OversizeCPU: 2.8, OversizeCPUSigma: 0.40,
				OversizeMem: bebMemOversize, OversizeMemSigma: bebMemSigma,
				KillProb: 0.42, FailProb: 0.10,
				ParentProb:     0.42,
				RestartMean:    6.0,
				BatchScheduler: true,
				ScalingProbs:   [3]float64{0.55, 0.15, 0.30},
			},
			{
				Tier: trace.TierMid, ArrivalShare: tw.arrival[2],
				CPUBudget: tw.cpuB[2], MemBudget: tw.memB[2],
				Priorities: []int{116, 119}, PriorityWeights: []float64{0.7, 0.3},
				// Figure 11: mid 95%ile ≈ 67 tasks.
				TaskSingleProb: 0.50, TaskAlpha: 0.55, TaskCap: 1200,
				UsageAlpha:      0.70,
				MemPerCPUMedian: 0.76, MemPerCPUSigma: 0.35,
				// §4: mid-tier allocation and usage are close together.
				OversizeCPU: 1.8, OversizeCPUSigma: 0.25,
				OversizeMem: 1.25, OversizeMemSigma: 0.20,
				KillProb: 0.35, FailProb: 0.08,
				ParentProb:   0.22,
				RestartMean:  3.0,
				ScalingProbs: [3]float64{0.55, 0.15, 0.30},
			},
			{
				Tier: trace.TierProduction, ArrivalShare: tw.arrival[3],
				CPUBudget: tw.cpuB[3], MemBudget: tw.memB[3],
				Priorities: []int{120, 200, 360, 450}, PriorityWeights: []float64{0.45, 0.43, 0.08, 0.04},
				// Figure 11: prod 95%ile ≈ 3 tasks.
				TaskSingleProb: 0.85, TaskAlpha: 1.6, TaskCap: 400,
				UsageAlpha: 0.69,
				// §4: prod CPU usage ≈30% of allocation, memory ≈65%.
				MemPerCPUMedian: 0.92, MemPerCPUSigma: 0.35,
				OversizeCPU: 3.0, OversizeCPUSigma: 0.35,
				OversizeMem: 1.5, OversizeMemSigma: 0.25,
				KillProb: 0.32, FailProb: 0.05,
				ParentProb:   0.10,
				RestartMean:  0.8,
				ScalingProbs: [3]float64{0.55, 0.15, 0.30},
			},
		},
		AllocSetFraction: 0.02,
		ProdAllocProb:    0.58,
		InAllocMemBoost:  1.8,
		MaintenanceRate:  1.0,
		// §4: by 2019 memory is over-committed nearly as much as CPU
		// (in 2011 memory was not over-committed at all).
		Overcommit:            cluster.OvercommitPolicy{CPUFactor: 1.60, MemFactor: 1.30},
		Policy:                scheduler.LeastAllocated,
		CandidateSample:       16,
		SchedServiceMedian:    0.18,
		SchedServiceSigma:     1.1,
		BatchQueue:            true,
		UsageNoiseSigma:       0.25,
		MemUnderProvisionProb: 0.02,
	}
}

// SolveBoundedParetoL finds the lower bound L of a bounded Pareto with
// the given alpha and upper bound H whose mean equals targetMean, by
// bisection. The mean is monotone increasing in L.
func SolveBoundedParetoL(alpha, h, targetMean float64) float64 {
	lo, hi := h*1e-12, h
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: L spans decades
		m := (dist.BoundedPareto{L: mid, H: h, Alpha: alpha}).Mean()
		if m < targetMean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
