package workload

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// recordCell drives a fresh generator for the profile through a Recorder
// exactly as core.Run's arrival loop does and returns the capture.
func recordCell(t *testing.T, arrival string, idBase trace.CollectionID, seed uint64) *Recording {
	t.Helper()
	p := Profile2019("a", 240)
	horizon := 12 * sim.Hour
	gen := NewGeneratorArrival(p, testCapacityCPU, horizon, rng.New(seed), idBase+1, arrival)
	spec := arrival
	if spec == "" {
		spec = p.Arrival
	}
	rec := NewRecorder(gen, RecordingMeta{
		Cell: p.Name, Era: p.Era, Machines: p.Machines, Horizon: horizon,
		Seed: seed, Arrival: MustParseArrival(spec).String(), IDBase: idBase,
	})
	drive(rec, horizon)
	return rec.Recording()
}

// drive pumps a JobSource to its horizon, mirroring core.Run's loop.
func drive(src JobSource, horizon sim.Time) {
	now := sim.Time(0)
	for {
		now += src.NextInterArrival(now)
		if now >= horizon {
			return
		}
		src.Generate(now)
	}
}

func TestRecordingRoundTripsThroughText(t *testing.T) {
	rec := recordCell(t, "cohorts:k=12", 1<<32, 7)
	if len(rec.Arrivals) == 0 {
		t.Fatal("recorded no arrivals")
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("recording did not round-trip through its text form:\nmeta %+v vs %+v, %d vs %d arrivals",
			rec.Meta, got.Meta, len(rec.Arrivals), len(got.Arrivals))
	}
}

// TestReplayerReproducesRecording replays a capture through a second
// Recorder: the re-capture must equal the original exactly (same arrival
// instants, same job bodies), proving the replayed stream is the
// recorded stream.
func TestReplayerReproducesRecording(t *testing.T) {
	rec := recordCell(t, "", 1<<32, 7)
	re := NewRecorder(NewReplayer(rec, rec.Meta.IDBase), rec.Meta)
	drive(re, rec.Meta.Horizon)
	if !reflect.DeepEqual(rec, re.Recording()) {
		t.Fatalf("replay re-capture differs from the original recording (%d vs %d arrivals)",
			len(rec.Arrivals), len(re.Recording().Arrivals))
	}
}

// TestReplayerRebasesIDs checks a recording replays into a different ID
// space: every collection ID (and parent/alloc reference) shifts by the
// new base while offsets stay put.
func TestReplayerRebasesIDs(t *testing.T) {
	rec := recordCell(t, "", 1<<32, 7)
	newBase := trace.CollectionID(5 << 32)
	re := NewRecorder(NewReplayer(rec, newBase),
		RecordingMeta{Cell: rec.Meta.Cell, Era: rec.Meta.Era, Machines: rec.Meta.Machines,
			Horizon: rec.Meta.Horizon, Seed: rec.Meta.Seed, Arrival: rec.Meta.Arrival, IDBase: newBase})
	drive(re, rec.Meta.Horizon)
	got := re.Recording()
	if len(got.Arrivals) != len(rec.Arrivals) {
		t.Fatalf("arrival counts differ: %d vs %d", len(got.Arrivals), len(rec.Arrivals))
	}
	for i := range rec.Arrivals {
		if !reflect.DeepEqual(rec.Arrivals[i], got.Arrivals[i]) {
			t.Fatalf("arrival %d differs after rebase (offsets should be base-independent)", i)
		}
	}
}

// TestReplayerDrains checks the end-of-stream contract: past the last
// recorded arrival the replayer reports an interval beyond any horizon
// and generates nothing.
func TestReplayerDrains(t *testing.T) {
	rec := recordCell(t, "", 1<<32, 7)
	r := NewReplayer(rec, rec.Meta.IDBase)
	drive(r, rec.Meta.Horizon)
	if d := r.NextInterArrival(rec.Meta.Horizon); d < rec.Meta.Horizon {
		t.Fatalf("drained replayer reported inter-arrival %v, want effectively never", d)
	}
	if jobs := r.Generate(rec.Meta.Horizon); jobs != nil {
		t.Fatalf("drained replayer generated %d jobs", len(jobs))
	}
}

// TestReadRecordingRejectsCorruption pins the loud-failure contract of
// the versioned format: wrong magic, wrong version and truncation all
// error rather than replaying a distorted workload.
func TestReadRecordingRejectsCorruption(t *testing.T) {
	rec := recordCell(t, "", 1<<32, 7)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	corrupt := map[string]string{
		"magic":    "borgtrace/1" + good[len("borgworkload/1"):],
		"version":  "borgworkload/9" + good[len("borgworkload/1"):],
		"truncate": good[:len(good)*2/3],
	}
	for name, text := range corrupt {
		if _, err := ReadRecording(bytes.NewReader([]byte(text))); err == nil {
			t.Errorf("%s-corrupted recording parsed without error", name)
		}
	}
}
