package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

func constantRateProfile() *CellProfile {
	p := Profile2019("a", 600)
	p.DiurnalAmplitude = 0 // renewal rates rescale by Rate(now); keep it flat
	return p
}

func TestParseArrivalErrorsListValidSets(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"loglogistic", `unknown arrival process "loglogistic" (processes: cohorts, gamma, poisson, weibull)`},
		{"gamma:burst=2", `unknown arrival knob "burst" for process "gamma" (knobs: cv)`},
		{"poisson:cv=2", `arrival process "poisson" takes no knobs`},
		{"gamma:cv=abc", `bad value "abc" for arrival knob "cv"`},
		{"gamma:cv=-1", `arrival knob cv=-1 in "gamma:cv=-1" must be positive`},
		{"cohorts:k", `bad arrival knob "k" in "cohorts:k" (want knob=value)`},
	}
	for _, tc := range cases {
		_, err := ParseArrival(tc.spec)
		if err == nil {
			t.Fatalf("ParseArrival(%q): expected error", tc.spec)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseArrival(%q) error %q, want it to contain %q", tc.spec, err, tc.want)
		}
	}
}

func TestParseArrivalSpecs(t *testing.T) {
	// Empty and bare-name specs select the process with default knobs.
	for _, spec := range []string{"", "poisson"} {
		s, err := ParseArrival(spec)
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", spec, err)
		}
		if s.String() != "poisson" {
			t.Errorf("ParseArrival(%q).String() = %q, want poisson", spec, s.String())
		}
	}
	// Knobs parse under both separators, and String round-trips the input.
	for _, spec := range []string{"cohorts:k=40,skew=1.5,cv=2", "cohorts:k=40+skew=1.5+cv=2"} {
		s, err := ParseArrival(spec)
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", spec, err)
		}
		if s.Name != "cohorts" || s.Knobs["k"] != 40 || s.Knobs["skew"] != 1.5 || s.Knobs["cv"] != 2 {
			t.Errorf("ParseArrival(%q) = %+v", spec, s)
		}
		if s.String() != spec {
			t.Errorf("ParseArrival(%q).String() = %q", spec, s.String())
		}
	}
	if names := ArrivalNames(); strings.Join(names, ",") != "cohorts,gamma,poisson,weibull" {
		t.Errorf("ArrivalNames() = %v", names)
	}
}

// TestArrivalProcessesDeterministic pins the seed contract for every
// registered process: the same seed yields the same (interval, user)
// sequence, and a different seed a different one.
func TestArrivalProcessesDeterministic(t *testing.T) {
	specs := []string{"poisson", "gamma:cv=2.5", "weibull:cv=2.5", "cohorts:k=20,skew=1.4"}
	drive := func(spec string, seed uint64) []string {
		p := Profile2019("a", 600)
		a := newArrival(MustParseArrival(spec), p, 1000*sim.Hour, rng.New(seed))
		var out []string
		now := sim.Time(0)
		for i := 0; i < 500; i++ {
			d := a.NextInterArrival(now)
			now += d
			out = append(out, d.String()+"/"+a.User())
		}
		return out
	}
	for _, spec := range specs {
		a, b := drive(spec, 11), drive(spec, 11)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: step %d differs across identical seeds: %s vs %s", spec, i, a[i], b[i])
			}
		}
		c := drive(spec, 12)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 11 and 12 produced identical streams", spec)
		}
	}
}

// TestArrivalProcessesMatchProfileRate checks every process realizes the
// profile's calibrated arrival rate: over a long horizon the empirical
// jobs/hour lands within a few percent of TotalArrivalRate.
func TestArrivalProcessesMatchProfileRate(t *testing.T) {
	specs := []string{"poisson", "gamma:cv=2.5", "weibull:cv=0.6", "cohorts:k=20"}
	for _, spec := range specs {
		p := constantRateProfile()
		if spec == "poisson" {
			p = Profile2019("a", 600) // thinning handles the diurnal envelope exactly
		}
		horizon := sim.Time(10 * sim.Day)
		a := newArrival(MustParseArrival(spec), p, horizon, rng.New(5))
		now := sim.Time(0)
		n := 0
		for {
			now += a.NextInterArrival(now)
			if now >= horizon {
				break
			}
			n++
		}
		got := float64(n) / horizon.Hours()
		want := p.TotalArrivalRate()
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("%s: empirical rate %.1f jobs/hour, profile %.1f (rel err %.3f)", spec, got, want, rel)
		}
	}
}

// TestRenewalCVKnob checks the burstiness knob does what it says: at a
// constant envelope rate, the empirical coefficient of variation of the
// inter-arrival times tracks the requested cv for both renewal bodies.
func TestRenewalCVKnob(t *testing.T) {
	for _, tc := range []struct {
		spec string
		cv   float64
	}{
		{"gamma:cv=2.5", 2.5},
		{"gamma:cv=0.5", 0.5},
		{"weibull:cv=2", 2},
		{"weibull:cv=0.6", 0.6},
	} {
		p := constantRateProfile()
		a := newArrival(MustParseArrival(tc.spec), p, 1_000_000*sim.Hour, rng.New(17))
		const n = 40000
		var sum, sumSq float64
		now := sim.Time(0)
		for i := 0; i < n; i++ {
			iv := a.NextInterArrival(now)
			now += iv
			d := iv.Hours()
			sum += d
			sumSq += d * d
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		got := math.Sqrt(variance) / mean
		if rel := math.Abs(got-tc.cv) / tc.cv; rel > 0.15 {
			t.Errorf("%s: empirical CV %.3f, want %.2f (rel err %.3f)", tc.spec, got, tc.cv, rel)
		}
	}
}

// TestCohortUsers checks the cohorts process's user model: every
// submission names a cohort member, and the Zipf skew makes the head
// client the heaviest submitter.
func TestCohortUsers(t *testing.T) {
	p := constantRateProfile()
	a := newArrival(MustParseArrival("cohorts:k=10,skew=1.5"), p, 1_000_000*sim.Hour, rng.New(23))
	counts := make(map[string]int)
	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		now += a.NextInterArrival(now)
		counts[a.User()]++
	}
	for u := range counts {
		if !strings.HasPrefix(u, "user-0") || len(u) != 7 {
			t.Fatalf("unexpected cohort user %q", u)
		}
	}
	head := counts["user-00"]
	for u, c := range counts {
		if u != "user-00" && c >= head {
			t.Errorf("user %s fired %d times, head user-00 only %d — skew not applied", u, c, head)
		}
	}
}

// TestPoissonMatchesDefaultGenerator pins the compatibility contract:
// NewGeneratorArrival with an explicit "poisson" spec is draw-for-draw
// identical to the default generator at the same seed.
func TestPoissonMatchesDefaultGenerator(t *testing.T) {
	p1, p2 := Profile2019("a", 600), Profile2019("a", 600)
	horizon := 100 * sim.Hour
	g1 := NewGenerator(p1, testCapacityCPU, horizon, rng.New(9), 1)
	g2 := NewGeneratorArrival(p2, testCapacityCPU, horizon, rng.New(9), 1, "poisson")
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		d1, d2 := g1.NextInterArrival(now), g2.NextInterArrival(now)
		if d1 != d2 {
			t.Fatalf("step %d: inter-arrival %v vs %v", i, d1, d2)
		}
		now += d1
		if u1, u2 := g1.user(), g2.user(); u1 != u2 {
			t.Fatalf("step %d: user %q vs %q", i, u1, u2)
		}
	}
}

// TestSineEnvelopeMaxRateBounds checks the thinning bound over a dense
// time sweep for a multi-harmonic envelope.
func TestSineEnvelopeMaxRateBounds(t *testing.T) {
	e := SineEnvelope{Base: 100, Harmonics: []RateHarmonic{
		{Amplitude: 0.3, Period: sim.Day, Phase: 3 * sim.Hour},
		{Amplitude: -0.15, Period: 7 * sim.Day},
	}}
	max := e.MaxRate()
	if want := 100 * 1.45; math.Abs(max-want) > 1e-9 {
		t.Fatalf("MaxRate = %g, want %g", max, want)
	}
	modulated := false
	for ti := sim.Time(0); ti < 14*sim.Day; ti += sim.Minute {
		r := e.Rate(ti)
		if r > max+1e-9 {
			t.Fatalf("Rate(%v) = %g exceeds MaxRate %g", ti, r, max)
		}
		if math.Abs(r-100) > 20 {
			modulated = true
		}
	}
	if !modulated {
		t.Error("envelope never moved the rate away from base — harmonics inert")
	}
}

// BenchmarkArrivalProcess measures one inter-arrival + user draw per
// iteration for each registered process (the benchgate tracks these).
func BenchmarkArrivalProcess(b *testing.B) {
	for _, spec := range []string{"poisson", "gamma:cv=2.5", "weibull:cv=2.5", "cohorts:k=40"} {
		b.Run(spec, func(b *testing.B) {
			p := Profile2019("a", 600)
			a := newArrival(MustParseArrival(spec), p, sim.FromHours(1e12), rng.New(1))
			now := sim.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += a.NextInterArrival(now)
				_ = a.User()
			}
		})
	}
}
