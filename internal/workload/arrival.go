package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/sim"
)

// RateEnvelope is the deterministic arrival-rate modulation an arrival
// process runs under: Rate(t) is the instantaneous target rate in
// jobs/hour and MaxRate is a hard upper bound over all t (the thinning
// bound for rejection sampling). Implementations must be pure functions
// of t.
type RateEnvelope interface {
	Rate(t sim.Time) float64
	MaxRate() float64
}

// RateHarmonic is one sinusoidal modulation term of a SineEnvelope.
type RateHarmonic struct {
	// Amplitude is the relative modulation depth (0.25 swings the rate
	// ±25% around the base).
	Amplitude float64
	// Period is the oscillation period (sim.Day for diurnal cycles).
	Period sim.Time
	// Phase is the time offset (cell g runs at Singapore local time).
	Phase sim.Time
}

// SineEnvelope modulates a base rate by a sum of sinusoidal harmonics:
// Rate(t) = Base · (1 + Σᵢ Aᵢ·sin(2π(t+phaseᵢ)/periodᵢ)). One harmonic
// with period sim.Day is the classic diurnal profile; extra harmonics
// compose weekly or multi-period patterns. MaxRate is the safe thinning
// bound Base · (1 + Σ|Aᵢ|).
type SineEnvelope struct {
	Base      float64
	Harmonics []RateHarmonic
}

// Rate returns the modulated rate at time t. The single-harmonic float
// operation order is load-bearing: it reproduces the pre-refactor
// diurnal computation bit for bit, which keeps the default poisson
// process byte-identical at the same seed.
func (e SineEnvelope) Rate(t sim.Time) float64 {
	s := 1.0
	for _, h := range e.Harmonics {
		s += h.Amplitude * math.Sin(2*math.Pi*float64(t+h.Phase)/float64(h.Period))
	}
	return e.Base * s
}

// MaxRate returns the envelope's hard upper bound over all t.
func (e SineEnvelope) MaxRate() float64 {
	s := 1.0
	for _, h := range e.Harmonics {
		s += math.Abs(h.Amplitude)
	}
	return e.Base * s
}

// envelopeFor builds the profile's calibrated envelope: the cell's total
// arrival rate under its diurnal modulation.
func envelopeFor(p *CellProfile) SineEnvelope {
	return SineEnvelope{
		Base:      p.TotalArrivalRate(),
		Harmonics: []RateHarmonic{{Amplitude: p.DiurnalAmplitude, Period: sim.Day, Phase: p.DiurnalPhase}},
	}
}

// ArrivalProcess is the pluggable arrival seam of the workload
// generator: it decides when the next collection is submitted and by
// whom. Implementations draw exclusively from the generator's rng
// source, so a cell's randomness stays a pure function of its seed.
//
// The contract with the caller (core.Run's arrival loop):
//
//   - NextInterArrival(now) returns the delta to the next submission. A
//     result placing the arrival at or beyond the horizon stops the
//     loop; after that the process is never consulted again.
//   - User() names the submitting user for collections created at the
//     current arrival. It is called between one NextInterArrival return
//     and the next call, possibly more than once (a job preceded by an
//     alloc set).
type ArrivalProcess interface {
	// Name returns the process's registered name.
	Name() string
	// NextInterArrival returns the time from now to the next submission.
	NextInterArrival(now sim.Time) sim.Time
	// User returns the submitting user of the current arrival.
	User() string
}

// ArrivalSpec is a parsed arrival-process selection: a registered
// process name plus validated numeric knobs. The zero value selects the
// default poisson process.
type ArrivalSpec struct {
	// Name is the registered process name; empty means "poisson".
	Name string
	// Knobs are the per-process parameters (see ParseArrival).
	Knobs map[string]float64
	raw   string
}

// String returns the spec as ParseArrival accepted it (the canonical
// process name for the zero value).
func (s ArrivalSpec) String() string {
	if s.raw != "" {
		return s.raw
	}
	if s.Name != "" {
		return s.Name
	}
	return "poisson"
}

// knob returns a knob value or its default.
func (s ArrivalSpec) knob(name string, def float64) float64 {
	if v, ok := s.Knobs[name]; ok {
		return v
	}
	return def
}

// arrivalEntry is one registered process: its valid knob names and its
// constructor.
type arrivalEntry struct {
	knobs []string
	build func(spec ArrivalSpec, p *CellProfile, env RateEnvelope, horizon sim.Time, src *rng.Source) ArrivalProcess
}

// arrivalRegistry is the single name table behind ParseArrival,
// ArrivalNames and newArrival — like the scheduler's policy registry,
// there is no other switch to keep in sync.
var arrivalRegistry = map[string]arrivalEntry{
	"poisson": {knobs: nil, build: newPoissonArrival},
	"gamma":   {knobs: []string{"cv"}, build: newGammaArrival},
	"weibull": {knobs: []string{"cv"}, build: newWeibullArrival},
	"cohorts": {knobs: []string{"cv", "k", "skew"}, build: newCohortArrival},
}

// ArrivalNames returns the registered arrival-process names, sorted —
// the valid set ParseArrival accepts, for help text and error messages.
func ArrivalNames() []string {
	out := make([]string, 0, len(arrivalRegistry))
	for name := range arrivalRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseArrival parses an arrival-process spec string:
//
//	name[:knob=value[,knob=value...]]
//
// "+" also separates knobs ("cohorts:k=40+cv=2"), so a spec can embed in
// sweep variant clauses whose own grammar claims the comma. Registered
// processes and their knobs:
//
//   - "poisson" — the default diurnally-thinned Poisson stream (no
//     knobs); byte-identical at the same seed to the pre-API generator.
//   - "gamma:cv=C" — a renewal process with gamma inter-arrival times of
//     coefficient of variation C (default 1); C > 1 is bursty.
//   - "weibull:cv=C" — likewise with Weibull inter-arrivals.
//   - "cohorts:k=K,skew=S,cv=C" — K clients with Zipf(S)-skewed rates,
//     each an independent gamma renewal process with the given CV,
//     superposed; the firing client is the submitting user. Defaults
//     come from the profile's Users/UserSkew knobs (50, 1.2) and cv 1.
//
// An empty spec selects poisson. Unknown process and knob names error
// with the valid set, so a typo never silently simulates the wrong
// workload.
func ParseArrival(spec string) (ArrivalSpec, error) {
	raw := strings.TrimSpace(spec)
	if raw == "" {
		return ArrivalSpec{}, nil
	}
	name, rest, hasKnobs := strings.Cut(raw, ":")
	name = strings.TrimSpace(name)
	entry, ok := arrivalRegistry[name]
	if !ok {
		return ArrivalSpec{}, fmt.Errorf("workload: unknown arrival process %q (processes: %s)",
			name, strings.Join(ArrivalNames(), ", "))
	}
	out := ArrivalSpec{Name: name, raw: raw}
	if !hasKnobs {
		return out, nil
	}
	out.Knobs = make(map[string]float64)
	for _, kv := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == '+' }) {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		knob, value, ok := strings.Cut(kv, "=")
		if !ok {
			return ArrivalSpec{}, fmt.Errorf("workload: bad arrival knob %q in %q (want knob=value)", kv, raw)
		}
		knob = strings.TrimSpace(knob)
		valid := false
		for _, k := range entry.knobs {
			if k == knob {
				valid = true
				break
			}
		}
		if !valid {
			if len(entry.knobs) == 0 {
				return ArrivalSpec{}, fmt.Errorf("workload: arrival process %q takes no knobs (got %q)", name, knob)
			}
			return ArrivalSpec{}, fmt.Errorf("workload: unknown arrival knob %q for process %q (knobs: %s)",
				knob, name, strings.Join(entry.knobs, ", "))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
		if err != nil {
			return ArrivalSpec{}, fmt.Errorf("workload: bad value %q for arrival knob %q in %q", value, knob, raw)
		}
		if v <= 0 {
			return ArrivalSpec{}, fmt.Errorf("workload: arrival knob %s=%g in %q must be positive", knob, v, raw)
		}
		out.Knobs[knob] = v
	}
	return out, nil
}

// MustParseArrival is ParseArrival for static configuration: it panics
// on a malformed spec, like scheduler.MustParsePolicy.
func MustParseArrival(spec string) ArrivalSpec {
	s, err := ParseArrival(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// newArrival instantiates the spec's process for one generator.
func newArrival(spec ArrivalSpec, p *CellProfile, horizon sim.Time, src *rng.Source) ArrivalProcess {
	name := spec.Name
	if name == "" {
		name = "poisson"
	}
	entry, ok := arrivalRegistry[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown arrival process %q (processes: %s)",
			name, strings.Join(ArrivalNames(), ", ")))
	}
	return entry.build(spec, p, envelopeFor(p), horizon, src)
}

// userCount and userSkew resolve the profile's Zipf user-model knobs to
// the calibrated defaults (50 users, skew 1.2 — the constants the
// pre-API generator hard-wired).
func userCount(p *CellProfile) int {
	if p.Users > 0 {
		return p.Users
	}
	return 50
}

func userSkew(p *CellProfile) float64 {
	if p.UserSkew > 0 {
		return p.UserSkew
	}
	return 1.2
}

// zipfUsers is the shared user-popularity model of the single-stream
// processes: ranks drawn Zipf-skewed from the generator's source (one
// uniform per draw, exactly as before the API split).
type zipfUsers struct {
	zipf *dist.Zipf
	src  *rng.Source
}

func newZipfUsers(p *CellProfile, src *rng.Source) zipfUsers {
	return zipfUsers{zipf: dist.NewZipf(userCount(p), userSkew(p)), src: src}
}

func (z zipfUsers) user() string {
	return fmt.Sprintf("user-%02d", z.zipf.Draw(z.src))
}

// minArrivalRate floors envelope rates before division so a zero-rate
// trough cannot produce an infinite interval mid-computation.
const minArrivalRate = 1e-9

// maxThinningSteps bounds the poisson process's rejection loop. The
// acceptance probability is at least (1−A)/(1+A) per step for a diurnal
// amplitude A, so with calibrated profiles (A ≤ 0.3) exhaustion is
// impossible; hitting the cap means the envelope bound is broken and the
// workload would be silently distorted, so it is a loud error.
const maxThinningSteps = 100000

// poissonArrival is the default process: a homogeneous Poisson stream at
// the envelope's MaxRate, thinned by Rate(t)/MaxRate — byte-identical at
// the same seed to the pre-API generator.
type poissonArrival struct {
	env     RateEnvelope
	src     *rng.Source
	horizon sim.Time
	users   zipfUsers
}

func newPoissonArrival(spec ArrivalSpec, p *CellProfile, env RateEnvelope, horizon sim.Time, src *rng.Source) ArrivalProcess {
	return &poissonArrival{env: env, src: src, horizon: horizon, users: newZipfUsers(p, src)}
}

func (a *poissonArrival) Name() string { return "poisson" }
func (a *poissonArrival) User() string { return a.users.user() }

func (a *poissonArrival) NextInterArrival(now sim.Time) sim.Time {
	max := a.env.MaxRate()
	if max <= 0 {
		return a.horizon
	}
	t := now
	for i := 0; i < maxThinningSteps; i++ {
		step := dist.Exponential{Rate: max}.Sample(a.src) // hours
		t += sim.FromHours(step)
		if a.src.Float64() <= a.env.Rate(t)/max {
			return t - now
		}
		if t >= a.horizon {
			// Every candidate past the horizon is discarded by the caller
			// and the process is never consulted again, so stop drawing.
			// (The pre-API loop kept thinning here; the trace is identical
			// because no later draw can be observed.)
			return t - now
		}
	}
	panic(fmt.Sprintf(
		"workload: poisson arrival thinning exhausted %d steps before %v (envelope max %g, rate at t %g) — envelope bound broken",
		maxThinningSteps, a.horizon, max, a.env.Rate(t)))
}

// renewalArrival generalizes the stream to i.i.d. mean-one inter-arrival
// draws rescaled by the envelope rate at the previous arrival: gamma or
// Weibull bodies put a CV knob on burstiness that a Poisson stream
// (CV = 1, memoryless) cannot express.
type renewalArrival struct {
	name    string
	env     RateEnvelope
	src     *rng.Source
	horizon sim.Time
	sampler dist.Sampler // mean-one inter-arrival law
	users   zipfUsers
}

func newGammaArrival(spec ArrivalSpec, p *CellProfile, env RateEnvelope, horizon sim.Time, src *rng.Source) ArrivalProcess {
	cv := spec.knob("cv", 1)
	shape := 1 / (cv * cv)
	return &renewalArrival{
		name: "gamma", env: env, src: src, horizon: horizon,
		sampler: dist.Gamma{Shape: shape, Scale: 1 / shape},
		users:   newZipfUsers(p, src),
	}
}

func newWeibullArrival(spec ArrivalSpec, p *CellProfile, env RateEnvelope, horizon sim.Time, src *rng.Source) ArrivalProcess {
	cv := spec.knob("cv", 1)
	shape := dist.WeibullShapeFromCV(cv)
	return &renewalArrival{
		name: "weibull", env: env, src: src, horizon: horizon,
		sampler: dist.Weibull{Shape: shape, Scale: 1 / math.Gamma(1+1/shape)},
		users:   newZipfUsers(p, src),
	}
}

func (a *renewalArrival) Name() string { return a.name }
func (a *renewalArrival) User() string { return a.users.user() }

func (a *renewalArrival) NextInterArrival(now sim.Time) sim.Time {
	rate := a.env.Rate(now)
	if rate <= minArrivalRate {
		return a.horizon
	}
	d := sim.FromHours(a.sampler.Sample(a.src) / rate)
	if d < 1 {
		d = 1 // never collapse below clock resolution
	}
	return d
}

// cohortArrival superposes K per-client renewal streams: client ranks
// carry Zipf-skewed shares of the cell rate, each client draws gamma
// inter-arrivals with the given CV, and the earliest pending client
// fires — so heavy users are bursty in their own right and the firing
// client is the submitting user (replacing the independent Zipf user
// draw of the single-stream processes).
type cohortArrival struct {
	env     RateEnvelope
	src     *rng.Source
	horizon sim.Time
	shares  []float64 // normalized Zipf weights, rank order
	names   []string
	sampler dist.Sampler // mean-one gamma at the cohort CV
	next    []sim.Time
	started bool
	cur     int
}

func newCohortArrival(spec ArrivalSpec, p *CellProfile, env RateEnvelope, horizon sim.Time, src *rng.Source) ArrivalProcess {
	k := int(spec.knob("k", float64(userCount(p))))
	if k < 1 {
		k = 1
	}
	skew := spec.knob("skew", userSkew(p))
	cv := spec.knob("cv", 1)
	shape := 1 / (cv * cv)
	shares := make([]float64, k)
	total := 0.0
	for i := range shares {
		shares[i] = math.Pow(float64(i+1), -skew)
		total += shares[i]
	}
	names := make([]string, k)
	for i := range names {
		shares[i] /= total
		names[i] = fmt.Sprintf("user-%02d", i)
	}
	return &cohortArrival{
		env: env, src: src, horizon: horizon,
		shares: shares, names: names,
		sampler: dist.Gamma{Shape: shape, Scale: 1 / shape},
		next:    make([]sim.Time, k),
	}
}

func (a *cohortArrival) Name() string { return "cohorts" }
func (a *cohortArrival) User() string { return a.names[a.cur] }

// interval draws client i's next inter-arrival at time now: a mean-one
// gamma over the client's share of the envelope rate.
func (a *cohortArrival) interval(i int, now sim.Time) sim.Time {
	rate := a.shares[i] * a.env.Rate(now)
	if rate <= minArrivalRate {
		return a.horizon + sim.Day // effectively never
	}
	d := sim.FromHours(a.sampler.Sample(a.src) / rate)
	if d < 1 {
		d = 1
	}
	return d
}

func (a *cohortArrival) NextInterArrival(now sim.Time) sim.Time {
	if !a.started {
		// Lazily seed every client's first arrival so construction
		// consumes no randomness (the generator's own contract).
		a.started = true
		for i := range a.next {
			a.next[i] = now + a.interval(i, now)
		}
	} else {
		a.next[a.cur] = now + a.interval(a.cur, now)
	}
	best := 0
	for i, t := range a.next {
		if t < a.next[best] {
			best = i
		}
	}
	a.cur = best
	d := a.next[best] - now
	if d < 1 {
		d = 1
	}
	return d
}
