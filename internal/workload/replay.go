package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
)

// JobSource is the generator-facing seam core.Run schedules arrivals
// from: the live Generator and the Replayer both satisfy it, so a cell
// cannot tell a synthesized workload from a recorded one.
type JobSource interface {
	// NextInterArrival returns the time from now to the next submission;
	// a result placing it at or beyond the horizon ends the stream.
	NextInterArrival(now sim.Time) sim.Time
	// Generate returns the collections submitted at time now.
	Generate(now sim.Time) []*scheduler.Job
}

// recordingVersion is the workload-trace format version this build
// writes; ReadRecording rejects anything else, so a format change is a
// loud version bump rather than a silent misparse.
const recordingVersion = 1

// recordingMagic is the first line of every recording file.
const recordingMagic = "borgworkload"

// RecordingMeta is a recording's provenance header: enough to name the
// cell the workload was generated for and to re-anchor collection IDs on
// replay. Horizon and Seed are informational (a replay may run under a
// different horizon; the seed documents which world generated the jobs).
type RecordingMeta struct {
	Cell     string
	Era      trace.Era
	Machines int
	Horizon  sim.Time
	Seed     uint64
	// Arrival is the generating process's spec string.
	Arrival string
	// IDBase is the collection-ID base the recording was generated under;
	// job IDs are stored as offsets from it so a replay can rebase them
	// into any cell's ID space.
	IDBase trace.CollectionID
}

// RecordedTask is one task body, exactly the fields the generator sets.
type RecordedTask struct {
	CPU, Mem float64
	Duration sim.Time
	Restarts int
	MeanCPU  float64
	MeanMem  float64
	PeakFact float64
}

// RecordedJob is one collection as generated, with IDs stored as offsets
// from the recording's IDBase (0 = none for Parent/AllocSet).
type RecordedJob struct {
	IDOff     uint64
	Type      trace.CollectionType
	Priority  int
	Tier      trace.Tier
	User      string
	ParentOff uint64
	AllocOff  uint64
	Scheduler trace.SchedulerKind
	Scaling   trace.VerticalScaling
	Outcome   scheduler.Outcome
	KillAfter sim.Time
	Tasks     []RecordedTask
}

// RecordedArrival is one arrival instant and the collections submitted
// at it (a job, possibly preceded by an alloc set).
type RecordedArrival struct {
	At   sim.Time
	Jobs []RecordedJob
}

// Recording is a captured workload: a versioned, immutable arrival/job
// stream. One Recording may back any number of concurrent Replayers.
type Recording struct {
	Meta     RecordingMeta
	Arrivals []RecordedArrival
}

// Recorder wraps a JobSource and captures everything it emits, in
// emission order, into a Recording — the jobs still flow to the caller
// untouched. Snapshots are taken inside Generate, before the scheduler
// mutates the returned jobs.
type Recorder struct {
	src JobSource
	rec *Recording
}

// NewRecorder wraps src; meta documents the generating run.
func NewRecorder(src JobSource, meta RecordingMeta) *Recorder {
	return &Recorder{src: src, rec: &Recording{Meta: meta}}
}

// Recording returns the captured workload (valid once the run is done).
func (r *Recorder) Recording() *Recording { return r.rec }

// NextInterArrival delegates to the wrapped source.
func (r *Recorder) NextInterArrival(now sim.Time) sim.Time {
	return r.src.NextInterArrival(now)
}

// Generate delegates and snapshots the result.
func (r *Recorder) Generate(now sim.Time) []*scheduler.Job {
	jobs := r.src.Generate(now)
	arr := RecordedArrival{At: now, Jobs: make([]RecordedJob, 0, len(jobs))}
	base := uint64(r.rec.Meta.IDBase)
	for _, j := range jobs {
		rj := RecordedJob{
			IDOff:     uint64(j.ID) - base,
			Type:      j.Type,
			Priority:  j.Priority,
			Tier:      j.Tier,
			User:      j.User,
			Scheduler: j.Scheduler,
			Scaling:   j.Scaling,
			Outcome:   j.Outcome,
			KillAfter: j.KillAfter,
			Tasks:     make([]RecordedTask, 0, len(j.Tasks)),
		}
		if j.Parent != 0 {
			rj.ParentOff = uint64(j.Parent) - base
		}
		if j.AllocSet != 0 {
			rj.AllocOff = uint64(j.AllocSet) - base
		}
		for _, t := range j.Tasks {
			rj.Tasks = append(rj.Tasks, RecordedTask{
				CPU: t.Request.CPU, Mem: t.Request.Mem,
				Duration: t.Duration, Restarts: t.Restarts,
				MeanCPU: t.MeanCPU, MeanMem: t.MeanMem, PeakFact: t.PeakFact,
			})
		}
		arr.Jobs = append(arr.Jobs, rj)
	}
	r.rec.Arrivals = append(r.rec.Arrivals, arr)
	return jobs
}

// replayNever is the inter-arrival a drained Replayer reports: far
// enough past any horizon that the caller's "next >= horizon" check
// always ends the stream.
const replayNever = sim.Time(math.MaxInt64 / 4)

// Replayer replays a Recording through the JobSource seam: the same
// arrival instants, the same job bodies, byte-identically — under any
// placement policy, parameter overlay or engine parallelism. Collection
// IDs are rebased onto idBase so the replayed cell keeps a disjoint ID
// space. A Replayer is single-run state (it holds a cursor); build a
// fresh one per cell run, sharing the immutable Recording.
type Replayer struct {
	rec    *Recording
	idBase trace.CollectionID
	cursor int
}

// NewReplayer builds a replayer over rec, rebasing collection IDs onto
// idBase (pass the run's engine ID base, as NewGenerator's startID-1).
func NewReplayer(rec *Recording, idBase trace.CollectionID) *Replayer {
	return &Replayer{rec: rec, idBase: idBase}
}

// NextInterArrival returns the delta to the next recorded arrival.
func (r *Replayer) NextInterArrival(now sim.Time) sim.Time {
	if r.cursor >= len(r.rec.Arrivals) {
		return replayNever
	}
	d := r.rec.Arrivals[r.cursor].At - now
	if d < 0 {
		d = 0
	}
	return d
}

// Generate rebuilds the collections recorded at the current arrival.
func (r *Replayer) Generate(now sim.Time) []*scheduler.Job {
	if r.cursor >= len(r.rec.Arrivals) {
		return nil
	}
	arr := &r.rec.Arrivals[r.cursor]
	r.cursor++
	out := make([]*scheduler.Job, 0, len(arr.Jobs))
	for i := range arr.Jobs {
		rj := &arr.Jobs[i]
		j := scheduler.NewJob(r.idBase + trace.CollectionID(rj.IDOff))
		j.Type = rj.Type
		j.Priority = rj.Priority
		j.Tier = rj.Tier
		j.User = rj.User
		j.Scheduler = rj.Scheduler
		j.Scaling = rj.Scaling
		j.Outcome = rj.Outcome
		j.KillAfter = rj.KillAfter
		if rj.ParentOff != 0 {
			j.Parent = r.idBase + trace.CollectionID(rj.ParentOff)
		}
		if rj.AllocOff != 0 {
			j.AllocSet = r.idBase + trace.CollectionID(rj.AllocOff)
		}
		for _, rt := range rj.Tasks {
			j.AddTask(&scheduler.Task{
				Request:  trace.Resources{CPU: rt.CPU, Mem: rt.Mem},
				Duration: rt.Duration,
				Restarts: rt.Restarts,
				MeanCPU:  rt.MeanCPU,
				MeanMem:  rt.MeanMem,
				PeakFact: rt.PeakFact,
			})
		}
		out = append(out, j)
	}
	return out
}

// ftoaExact renders a float so ParseFloat round-trips it bit-exactly —
// replay fidelity depends on it.
func ftoaExact(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo serializes the recording in the versioned text format:
//
//	borgworkload/1
//	cell <name> / era / machines / horizon / seed / arrival / idbase
//	arrivals <count>
//	A <time-µs> <njobs>
//	J <idoff> <type> <prio> <tier> <user> <parentoff> <allocoff> <sched> <scaling> <outcome> <killafter> <ntasks>
//	T <cpu> <mem> <duration-µs> <restarts> <meancpu> <meanmem> <peakfact>
//
// Floats are written with strconv.FormatFloat(…, 'g', -1, 64) and user
// names with strconv.Quote, so decoding reproduces the recording
// bit-exactly. The format is line-oriented and diff-friendly: two
// recordings of the same workload are byte-identical files.
func (rec *Recording) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(format string, args ...any) error {
		k, err := fmt.Fprintf(bw, format, args...)
		n += int64(k)
		return err
	}
	m := &rec.Meta
	if err := write("%s/%d\n", recordingMagic, recordingVersion); err != nil {
		return n, err
	}
	if err := write("cell %s\nera %d\nmachines %d\nhorizon %d\nseed %d\narrival %s\nidbase %d\narrivals %d\n",
		quoteIfEmpty(m.Cell), int(m.Era), m.Machines, int64(m.Horizon), m.Seed,
		quoteIfEmpty(m.Arrival), uint64(m.IDBase), len(rec.Arrivals)); err != nil {
		return n, err
	}
	for ai := range rec.Arrivals {
		arr := &rec.Arrivals[ai]
		if err := write("A %d %d\n", int64(arr.At), len(arr.Jobs)); err != nil {
			return n, err
		}
		for ji := range arr.Jobs {
			j := &arr.Jobs[ji]
			if err := write("J %d %d %d %d %s %d %d %d %d %d %d %d\n",
				j.IDOff, int(j.Type), j.Priority, int(j.Tier), strconv.Quote(j.User),
				j.ParentOff, j.AllocOff, int(j.Scheduler), int(j.Scaling),
				int(j.Outcome), int64(j.KillAfter), len(j.Tasks)); err != nil {
				return n, err
			}
			for _, t := range j.Tasks {
				if err := write("T %s %s %d %d %s %s %s\n",
					ftoaExact(t.CPU), ftoaExact(t.Mem), int64(t.Duration), t.Restarts,
					ftoaExact(t.MeanCPU), ftoaExact(t.MeanMem), ftoaExact(t.PeakFact)); err != nil {
					return n, err
				}
			}
		}
	}
	return n, bw.Flush()
}

// quoteIfEmpty keeps header values single-token (empty strings and
// strings with spaces are quoted; plain tokens stay bare for
// readability).
func quoteIfEmpty(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\"") {
		return strconv.Quote(s)
	}
	return s
}

func unquoteHeader(s string) (string, error) {
	if strings.HasPrefix(s, "\"") {
		return strconv.Unquote(s)
	}
	return s, nil
}

// ReadRecording parses a recording written by WriteTo. It validates the
// magic, the version, and every count, so a truncated or corrupted file
// fails loudly instead of replaying a partial workload.
func ReadRecording(r io.Reader) (*Recording, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	next := func() (string, error) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				return line, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("workload: recording truncated at line %d", lineNo)
	}
	errAt := func(format string, args ...any) error {
		return fmt.Errorf("workload: recording line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	head, err := next()
	if err != nil {
		return nil, err
	}
	magic, ver, ok := strings.Cut(head, "/")
	if !ok || magic != recordingMagic {
		return nil, errAt("not a workload recording (want %q header)", recordingMagic)
	}
	if v, err := strconv.Atoi(ver); err != nil || v != recordingVersion {
		return nil, errAt("unsupported recording version %q (this build reads version %d)", ver, recordingVersion)
	}

	rec := &Recording{}
	var arrivals int
	for _, key := range []string{"cell", "era", "machines", "horizon", "seed", "arrival", "idbase", "arrivals"} {
		line, err := next()
		if err != nil {
			return nil, err
		}
		k, v, ok := strings.Cut(line, " ")
		if !ok || k != key {
			return nil, errAt("want header %q, got %q", key, line)
		}
		switch key {
		case "cell":
			if rec.Meta.Cell, err = unquoteHeader(v); err != nil {
				return nil, errAt("bad cell name %q", v)
			}
		case "era":
			e, err := strconv.Atoi(v)
			if err != nil {
				return nil, errAt("bad era %q", v)
			}
			rec.Meta.Era = trace.Era(e)
		case "machines":
			if rec.Meta.Machines, err = strconv.Atoi(v); err != nil {
				return nil, errAt("bad machines %q", v)
			}
		case "horizon":
			h, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, errAt("bad horizon %q", v)
			}
			rec.Meta.Horizon = sim.Time(h)
		case "seed":
			if rec.Meta.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
				return nil, errAt("bad seed %q", v)
			}
		case "arrival":
			if rec.Meta.Arrival, err = unquoteHeader(v); err != nil {
				return nil, errAt("bad arrival spec %q", v)
			}
		case "idbase":
			b, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, errAt("bad idbase %q", v)
			}
			rec.Meta.IDBase = trace.CollectionID(b)
		case "arrivals":
			if arrivals, err = strconv.Atoi(v); err != nil || arrivals < 0 {
				return nil, errAt("bad arrivals count %q", v)
			}
		}
	}

	rec.Arrivals = make([]RecordedArrival, 0, arrivals)
	for ai := 0; ai < arrivals; ai++ {
		line, err := next()
		if err != nil {
			return nil, err
		}
		f := strings.Fields(line)
		if len(f) != 3 || f[0] != "A" {
			return nil, errAt("want arrival record, got %q", line)
		}
		at, err1 := strconv.ParseInt(f[1], 10, 64)
		njobs, err2 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || njobs < 0 {
			return nil, errAt("bad arrival record %q", line)
		}
		arr := RecordedArrival{At: sim.Time(at), Jobs: make([]RecordedJob, 0, njobs)}
		for ji := 0; ji < njobs; ji++ {
			line, err := next()
			if err != nil {
				return nil, err
			}
			j, ntasks, err := parseJobLine(line)
			if err != nil {
				return nil, errAt("%v", err)
			}
			for ti := 0; ti < ntasks; ti++ {
				line, err := next()
				if err != nil {
					return nil, err
				}
				t, err := parseTaskLine(line)
				if err != nil {
					return nil, errAt("%v", err)
				}
				j.Tasks = append(j.Tasks, t)
			}
			arr.Jobs = append(arr.Jobs, j)
		}
		rec.Arrivals = append(rec.Arrivals, arr)
	}
	return rec, nil
}

func parseJobLine(line string) (RecordedJob, int, error) {
	var j RecordedJob
	f := strings.Fields(line)
	if len(f) != 13 || f[0] != "J" {
		return j, 0, fmt.Errorf("want job record, got %q", line)
	}
	var errs []error
	u64 := func(s string) uint64 { v, err := strconv.ParseUint(s, 10, 64); errs = append(errs, err); return v }
	i64 := func(s string) int64 { v, err := strconv.ParseInt(s, 10, 64); errs = append(errs, err); return v }
	j.IDOff = u64(f[1])
	j.Type = trace.CollectionType(i64(f[2]))
	j.Priority = int(i64(f[3]))
	j.Tier = trace.Tier(i64(f[4]))
	user, err := strconv.Unquote(f[5])
	errs = append(errs, err)
	j.User = user
	j.ParentOff = u64(f[6])
	j.AllocOff = u64(f[7])
	j.Scheduler = trace.SchedulerKind(i64(f[8]))
	j.Scaling = trace.VerticalScaling(i64(f[9]))
	j.Outcome = scheduler.Outcome(i64(f[10]))
	j.KillAfter = sim.Time(i64(f[11]))
	ntasks := int(i64(f[12]))
	for _, err := range errs {
		if err != nil {
			return j, 0, fmt.Errorf("bad job record %q: %v", line, err)
		}
	}
	if ntasks < 0 {
		return j, 0, fmt.Errorf("bad job record %q: negative task count", line)
	}
	j.Tasks = make([]RecordedTask, 0, ntasks)
	return j, ntasks, nil
}

func parseTaskLine(line string) (RecordedTask, error) {
	var t RecordedTask
	f := strings.Fields(line)
	if len(f) != 8 || f[0] != "T" {
		return t, fmt.Errorf("want task record, got %q", line)
	}
	var errs []error
	f64 := func(s string) float64 { v, err := strconv.ParseFloat(s, 64); errs = append(errs, err); return v }
	i64 := func(s string) int64 { v, err := strconv.ParseInt(s, 10, 64); errs = append(errs, err); return v }
	t.CPU = f64(f[1])
	t.Mem = f64(f[2])
	t.Duration = sim.Time(i64(f[3]))
	t.Restarts = int(i64(f[4]))
	t.MeanCPU = f64(f[5])
	t.MeanMem = f64(f[6])
	t.PeakFact = f64(f[7])
	for _, err := range errs {
		if err != nil {
			return t, fmt.Errorf("bad task record %q: %v", line, err)
		}
	}
	return t, nil
}
