package workload

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

const testCapacityCPU = 200.0

func genJobs(t *testing.T, p *CellProfile, horizon sim.Time, n int) []*scheduler.Job {
	t.Helper()
	g := NewGenerator(p, testCapacityCPU, horizon, rng.New(7), 1)
	var jobs []*scheduler.Job
	now := sim.Time(0)
	for len(jobs) < n {
		now += g.NextInterArrival(now)
		if now >= horizon {
			now = 0 // wrap; we only need job bodies here
		}
		for _, j := range g.Generate(now) {
			jobs = append(jobs, j)
		}
	}
	return jobs
}

func TestArrivalRateMatchesProfile(t *testing.T) {
	p := Profile2019("a", 600)
	g := NewGenerator(p, testCapacityCPU, 100*sim.Hour, rng.New(3), 1)
	want := p.TotalArrivalRate() // jobs/hour
	if math.Abs(want-3360*600/12000.0) > 1e-9 {
		t.Fatalf("scaled rate %v", want)
	}
	var now sim.Time
	count := 0
	for now < 100*sim.Hour {
		now += g.NextInterArrival(now)
		count++
	}
	got := float64(count) / 100
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("empirical arrival rate %v, want ~%v", got, want)
	}
}

func TestArrivalRatio2019To2011(t *testing.T) {
	r19 := Profile2019("a", 600).TotalArrivalRate()
	r11 := Profile2011(600).TotalArrivalRate()
	ratio := r19 / r11
	if math.Abs(ratio-3.49) > 0.1 { // 3360/964 ≈ 3.49, §6.1's ≈3.5×
		t.Fatalf("arrival ratio %v", ratio)
	}
}

func TestDiurnalModulation(t *testing.T) {
	p := Profile2019("g", 600)
	g := NewGenerator(p, testCapacityCPU, sim.Day, rng.New(5), 1)
	peakRate := 0.0
	var peakAt sim.Time
	for h := 0; h < 24; h++ {
		r := g.rateAt(sim.Time(h) * sim.Hour)
		if r > peakRate {
			peakRate, peakAt = r, sim.Time(h)*sim.Hour
		}
	}
	gNoPhase := NewGenerator(Profile2019("a", 600), testCapacityCPU, sim.Day, rng.New(5), 1)
	peakRateA := 0.0
	var peakAtA sim.Time
	for h := 0; h < 24; h++ {
		r := gNoPhase.rateAt(sim.Time(h) * sim.Hour)
		if r > peakRateA {
			peakRateA, peakAtA = r, sim.Time(h)*sim.Hour
		}
	}
	if peakAt == peakAtA {
		t.Fatalf("cell g peak hour %v equals cell a's %v despite phase shift", peakAt, peakAtA)
	}
}

func TestTierMixMatchesShares(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 8000)
	counts := map[trace.Tier]int{}
	total := 0
	for _, j := range jobs {
		if j.Type != trace.CollectionJob {
			continue
		}
		counts[j.Tier]++
		total++
	}
	for _, tp := range p.Tiers {
		got := float64(counts[tp.Tier]) / float64(total)
		if math.Abs(got-tp.ArrivalShare) > 0.03 {
			t.Fatalf("tier %v share %v, want ~%v", tp.Tier, got, tp.ArrivalShare)
		}
	}
}

func TestTasksPerJobQuantiles(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 30000)
	byTier := map[trace.Tier][]float64{}
	for _, j := range jobs {
		if j.Type != trace.CollectionJob {
			continue
		}
		byTier[j.Tier] = append(byTier[j.Tier], float64(len(j.Tasks)))
	}
	// Figure 11's calibration targets, with generous bands (statistical).
	q95 := func(tier trace.Tier) float64 {
		xs := byTier[tier]
		sort.Float64s(xs)
		return stats.QuantileSorted(xs, 0.95)
	}
	if v := q95(trace.TierProduction); v < 1 || v > 8 {
		t.Fatalf("prod 95%%ile tasks %v, want ~3", v)
	}
	if v := q95(trace.TierFree); v < 8 || v > 60 {
		t.Fatalf("free 95%%ile tasks %v, want ~21", v)
	}
	if v := q95(trace.TierMid); v < 25 || v > 160 {
		t.Fatalf("mid 95%%ile tasks %v, want ~67", v)
	}
	if v := q95(trace.TierBestEffortBatch); v < 150 || v > 1200 {
		t.Fatalf("beb 95%%ile tasks %v, want ~498", v)
	}
	// beb 80th percentile ~25.
	xs := byTier[trace.TierBestEffortBatch]
	sort.Float64s(xs)
	if v := stats.QuantileSorted(xs, 0.80); v < 8 || v > 80 {
		t.Fatalf("beb 80%%ile tasks %v, want ~25", v)
	}
}

// plannedNCUHours is a job's scripted compute integral.
func plannedNCUHours(j *scheduler.Job) float64 {
	h := 0.0
	for _, task := range j.Tasks {
		h += task.MeanCPU * task.Duration.Hours()
	}
	return h
}

func TestHeavyTailedUsageIntegrals(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 30000)
	var hours []float64
	for _, j := range jobs {
		if j.Type != trace.CollectionJob {
			continue
		}
		hours = append(hours, plannedNCUHours(j))
	}
	share := stats.TopShare(hours, 0.01)
	if share < 0.55 {
		t.Fatalf("top-1%% share %v, want heavy tail", share)
	}
	sum := stats.Summarize(hours)
	if sum.C2 < 50 {
		t.Fatalf("C² %v, want very high variability", sum.C2)
	}
	fit := stats.FitParetoTail(hours, 1, 0.9999)
	if fit.N > 100 && (fit.Alpha < 0.4 || fit.Alpha > 1.2) {
		t.Fatalf("tail alpha %v (n=%d), want near 0.69", fit.Alpha, fit.N)
	}
}

func Test2011LessVariableThan2019(t *testing.T) {
	j19 := genJobs(t, Profile2019("a", 600), 48*sim.Hour, 20000)
	j11 := genJobs(t, Profile2011(600), 48*sim.Hour, 20000)
	var h19, h11 []float64
	for _, j := range j19 {
		if j.Type == trace.CollectionJob {
			h19 = append(h19, plannedNCUHours(j))
		}
	}
	for _, j := range j11 {
		if j.Type == trace.CollectionJob {
			h11 = append(h11, plannedNCUHours(j))
		}
	}
	c19 := stats.Summarize(h19).C2
	c11 := stats.Summarize(h11).C2
	if c19 < c11 {
		t.Fatalf("2019 C² (%v) should exceed 2011 C² (%v)", c19, c11)
	}
}

func TestMemoryCorrelatesWithCPU(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 20000)
	var lc, lm []float64
	for _, j := range jobs {
		if j.Type != trace.CollectionJob {
			continue
		}
		c := plannedNCUHours(j)
		m := 0.0
		for _, task := range j.Tasks {
			m += task.MeanMem * task.Duration.Hours()
		}
		if c > 0 && m > 0 {
			lc = append(lc, math.Log(c))
			lm = append(lm, math.Log(m))
		}
	}
	r := stats.Pearson(lc, lm)
	if r < 0.85 {
		t.Fatalf("log-log CPU/mem correlation %v, want > 0.85 (paper: 0.97)", r)
	}
}

func TestAllocSetFraction(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 20000)
	allocSets, total := 0, 0
	for _, j := range jobs {
		total++
		if j.Type == trace.CollectionAllocSet {
			allocSets++
		}
	}
	frac := float64(allocSets) / float64(total)
	if math.Abs(frac-0.02) > 0.01 {
		t.Fatalf("alloc set fraction %v, want ~0.02", frac)
	}
}

func TestInAllocJobsMostlyProd(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 30000)
	inAlloc, prodInAlloc, jobCount := 0, 0, 0
	for _, j := range jobs {
		if j.Type != trace.CollectionJob {
			continue
		}
		jobCount++
		if j.AllocSet != 0 {
			inAlloc++
			if j.Tier == trace.TierProduction {
				prodInAlloc++
			}
		}
	}
	frac := float64(inAlloc) / float64(jobCount)
	if frac < 0.05 || frac > 0.35 {
		t.Fatalf("in-alloc job fraction %v, want ~0.15", frac)
	}
	prodShare := float64(prodInAlloc) / float64(inAlloc)
	if prodShare < 0.85 {
		t.Fatalf("prod share of in-alloc jobs %v, want ~0.95", prodShare)
	}
}

func TestParentAssignment(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 20000)
	withParent, jobCount := 0, 0
	ids := map[trace.CollectionID]bool{}
	for _, j := range jobs {
		ids[j.ID] = true
	}
	for _, j := range jobs {
		if j.Type != trace.CollectionJob {
			continue
		}
		jobCount++
		if j.Parent != 0 {
			withParent++
			if !ids[j.Parent] {
				t.Fatalf("job %d has unknown parent %d", j.ID, j.Parent)
			}
			if j.Parent >= j.ID {
				t.Fatalf("job %d has parent %d submitted later", j.ID, j.Parent)
			}
		}
	}
	frac := float64(withParent) / float64(jobCount)
	if frac < 0.1 || frac > 0.5 {
		t.Fatalf("parented fraction %v", frac)
	}
}

func Test2011HasNoNewFeatures(t *testing.T) {
	p := Profile2011(600)
	jobs := genJobs(t, p, 48*sim.Hour, 10000)
	for _, j := range jobs {
		if j.Type == trace.CollectionAllocSet {
			t.Fatal("2011 profile generated an alloc set")
		}
		if j.Parent != 0 {
			t.Fatal("2011 profile generated a parented job")
		}
		if j.Scaling != trace.ScalingNone {
			t.Fatal("2011 profile generated an autoscaled job")
		}
		if j.Scheduler == trace.SchedulerBatch {
			t.Fatal("2011 profile routed a job to the batch scheduler")
		}
		if j.Tier == trace.TierMid {
			t.Fatal("2011 profile generated a mid-tier job")
		}
	}
}

func Test2019HasBatchAndScaling(t *testing.T) {
	p := Profile2019("b", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 10000)
	batch, scaled := 0, 0
	for _, j := range jobs {
		if j.Scheduler == trace.SchedulerBatch {
			batch++
		}
		if j.Scaling != trace.ScalingNone {
			scaled++
		}
	}
	if batch == 0 {
		t.Fatal("no batch jobs in 2019 profile")
	}
	if scaled == 0 {
		t.Fatal("no autoscaled jobs in 2019 profile")
	}
}

func TestRestartsChurnHigherIn2019(t *testing.T) {
	mean := func(jobs []*scheduler.Job) float64 {
		total, n := 0, 0
		for _, j := range jobs {
			for _, task := range j.Tasks {
				total += task.Restarts
				n++
			}
		}
		return float64(total) / float64(n)
	}
	m19 := mean(genJobs(t, Profile2019("a", 600), 48*sim.Hour, 5000))
	m11 := mean(genJobs(t, Profile2011(600), 48*sim.Hour, 5000))
	if m19 <= m11 {
		t.Fatalf("2019 restart mean %v should exceed 2011's %v", m19, m11)
	}
	if m19 < 1.0 {
		t.Fatalf("2019 restart mean %v too low for 2.26:1 churn", m19)
	}
}

func TestRequestsCoverUsage(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 5000)
	under := 0
	tasks := 0
	for _, j := range jobs {
		if j.Type != trace.CollectionJob {
			continue
		}
		for _, task := range j.Tasks {
			tasks++
			if task.Request.CPU < task.MeanCPU {
				t.Fatalf("task CPU request %v below mean usage %v", task.Request.CPU, task.MeanCPU)
			}
			if task.Request.Mem < task.MeanMem*task.PeakFact {
				under++
			}
			if task.Request.CPU > 0.5+1e-9 || task.Request.Mem > 0.5+1e-9 {
				t.Fatalf("request exceeds largest machines: %+v", task.Request)
			}
			if task.Duration <= 0 {
				t.Fatal("non-positive duration")
			}
		}
	}
	// A small fraction of tasks is deliberately memory-under-provisioned.
	frac := float64(under) / float64(tasks)
	if frac > 0.15 {
		t.Fatalf("under-provisioned fraction %v too high", frac)
	}
}

func TestKillOutcomesRoughlyCalibrated(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 20000)
	killed, parentless := 0, 0
	for _, j := range jobs {
		if j.Type != trace.CollectionJob || j.Parent != 0 {
			continue
		}
		parentless++
		if j.Outcome == scheduler.OutcomeKill {
			killed++
			if j.KillAfter <= 0 {
				t.Fatal("killed job without KillAfter")
			}
		}
	}
	frac := float64(killed) / float64(parentless)
	if frac < 0.25 || frac > 0.55 {
		t.Fatalf("parentless kill fraction %v, want ~0.41", frac)
	}
}

func TestSolveBoundedParetoL(t *testing.T) {
	for _, target := range []float64{0.01, 0.5, 3, 25} {
		l := SolveBoundedParetoL(0.69, 1000, target)
		got := (dist.BoundedPareto{L: l, H: 1000, Alpha: 0.69}).Mean()
		if math.Abs(got-target)/target > 0.02 {
			t.Fatalf("target mean %v: solved L %v gives mean %v", target, l, got)
		}
	}
}

func TestUniqueCollectionIDs(t *testing.T) {
	p := Profile2019("a", 600)
	jobs := genJobs(t, p, 48*sim.Hour, 5000)
	seen := map[trace.CollectionID]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate collection ID %d", j.ID)
		}
		seen[j.ID] = true
	}
}

func TestUnknownCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown cell did not panic")
		}
	}()
	Profile2019("z", 100)
}

func TestTierFor(t *testing.T) {
	p := Profile2019("a", 600)
	if p.TierFor(trace.TierMid) == nil {
		t.Fatal("mid tier missing in 2019")
	}
	if Profile2011(600).TierFor(trace.TierMid) != nil {
		t.Fatal("mid tier present in 2011")
	}
}
