package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSampleFleetProfileReproducibleAndVaried(t *testing.T) {
	const median = 60
	a := SampleFleetProfile("f000", median, rng.New(7).Split("fleet-profile"))
	b := SampleFleetProfile("f000", median, rng.New(7).Split("fleet-profile"))
	if a.Machines != b.Machines || a.JobsPerHour != b.JobsPerHour {
		t.Fatalf("same source state produced different profiles: %d/%g vs %d/%g",
			a.Machines, a.JobsPerHour, b.Machines, b.JobsPerHour)
	}
	machines := map[int]bool{}
	rates := map[float64]bool{}
	src := rng.New(1)
	for i := 0; i < 64; i++ {
		p := SampleFleetProfile("f", median, src.SplitN(uint64(i)))
		if p.Era != a.Era {
			t.Fatalf("cell %d era %v", i, p.Era)
		}
		if p.Machines < (median+2)/3 || p.Machines > median*3 {
			t.Fatalf("cell %d machines %d outside clamp band", i, p.Machines)
		}
		total := 0.0
		for _, tier := range p.Tiers {
			if tier.ArrivalShare < 0 {
				t.Fatalf("cell %d negative arrival share", i)
			}
			total += tier.ArrivalShare
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("cell %d arrival shares sum to %g", i, total)
		}
		machines[p.Machines] = true
		rates[p.JobsPerHour] = true
	}
	if len(machines) < 10 || len(rates) < 32 {
		t.Fatalf("fleet sampling barely varies: %d machine counts, %d rates over 64 cells",
			len(machines), len(rates))
	}
}

func TestFleetMachineQuantile(t *testing.T) {
	if got := FleetMachineQuantile(100, 0.5); math.Abs(got-100) > 1e-9 {
		t.Fatalf("median quantile %g, want 100", got)
	}
	p90 := FleetMachineQuantile(100, 0.9)
	want := 100 * math.Exp(FleetMachineSigma*1.2815515655446004)
	if math.Abs(p90-want)/want > 1e-6 {
		t.Fatalf("p90 %g, want %g", p90, want)
	}
}
