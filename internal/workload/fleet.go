package workload

import (
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Fleet-profile sampling: the paper analyzes eight 2019 cells, but the
// Borg fleet it describes is hundreds. SampleFleetProfile synthesizes
// cell profiles beyond the published eight by treating the calibrated
// cells as the fleet's backbone and drawing per-cell variation around
// the 2019 medians — machine count, arrival rate and tier mix — from
// lognormal jitters whose spreads match the cell-to-cell dispersion
// visible across Table 1 and Figures 2/3.

// FleetMachineSigma is the lognormal sigma of fleet machine counts
// around the configured median (Table 1's 2019 cells span roughly a
// 2.5× range around their median size).
const FleetMachineSigma = 0.35

// fleetArrivalSigma jitters the cell's mean submission rate; §6.1
// reports per-cell rates spread around the 3360 jobs/h fleet mean.
const fleetArrivalSigma = 0.25

// fleetMixSigma perturbs each tier's arrival share before
// renormalization, reproducing the mix spread of Figure 3's bars.
const fleetMixSigma = 0.20

// SampleFleetProfile draws one synthetic 2019-era cell for a federation
// run: a base profile picked uniformly from the eight calibrated 2019
// cells, machine count lognormal around medianMachines (clamped to a
// 3× band so one tail draw cannot blow a bounded-memory fleet budget),
// arrival rate and tier arrival mix jittered lognormally, and a quarter
// of cells shifted to a random non-local timezone the way cell g runs
// on Singapore time. The profile is a pure function of (name,
// medianMachines, src state), so fleets seeded via engine.DeriveSeed
// are reproducible and CRN-comparable cell-by-cell.
func SampleFleetProfile(name string, medianMachines int, src *rng.Source) *CellProfile {
	cells := Cells2019()
	base := cells[src.Intn(len(cells))]
	machines := int(math.Round(float64(medianMachines) *
		math.Exp(FleetMachineSigma*src.NormFloat64())))
	if min := (medianMachines + 2) / 3; machines < min {
		machines = min
	}
	if max := medianMachines * 3; machines > max {
		machines = max
	}
	p := Profile2019(base, machines)
	p.Name = name
	p.JobsPerHour *= math.Exp(fleetArrivalSigma * src.NormFloat64())
	total := 0.0
	for i := range p.Tiers {
		p.Tiers[i].ArrivalShare *= math.Exp(fleetMixSigma * src.NormFloat64())
		total += p.Tiers[i].ArrivalShare
	}
	for i := range p.Tiers {
		p.Tiers[i].ArrivalShare /= total
	}
	if src.Bool(0.25) {
		p.DiurnalPhase = sim.Time(src.Intn(24)) * sim.Hour
	}
	return p
}

// FleetMachineQuantile returns the q-quantile of the fleet machine-count
// distribution before clamping — the sizing handle fleet capacity
// planning (and tests) use to reason about tail cells.
func FleetMachineQuantile(medianMachines int, q float64) float64 {
	return float64(medianMachines) * (dist.LogNormal{Mu: 0, Sigma: FleetMachineSigma}).Quantile(q)
}
