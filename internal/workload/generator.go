package workload

import (
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
)

// tierGen is the precomputed sampling machinery for one tier.
type tierGen struct {
	params *TierParams
	prio   *dist.Categorical
	// The per-job NCU-hours integral is a two-part distribution, as in
	// Table 2: a body of mice (median ≈ 5e-5 NCU-hours) and a bounded
	// Pareto tail of hogs above 1 NCU-hour with the paper's α. hogWeight
	// is the hog fraction, solved so the tier consumes its usage budget.
	body      dist.BoundedPareto
	hogs      dist.BoundedPareto
	hogWeight float64
	taskTail  dist.BoundedPareto // tasks-per-job tail
	memRatio  dist.LogNormal
	ovCPU     dist.LogNormal
	ovMem     dist.LogNormal
	scaling   *dist.Categorical
	taskRate  dist.LogNormal // per-task mean CPU rate (NCU)
	restartsQ float64        // geometric continuation probability
}

// usageQuantile is the inverse CDF of the tier's NCU-hours mixture: the
// top hogWeight of ranks are hogs, the rest mice. Comonotone with the
// shared job-size rank.
func (tg *tierGen) usageQuantile(u float64) float64 {
	w := tg.hogWeight
	if u >= 1-w {
		return tg.hogs.Quantile(clampOpen((u - (1 - w)) / w))
	}
	return tg.body.Quantile(clampOpen(u / (1 - w)))
}

// liveRef tracks a recently submitted collection for parent / alloc-set
// selection: the generator's projection of when it will end.
type liveRef struct {
	id      trace.CollectionID
	projEnd sim.Time
	// free is the remaining per-instance reservation estimate (alloc
	// sets only).
	instRes trace.Resources
	freeCPU float64
}

// Generator synthesizes the arrival stream and job bodies for one cell.
type Generator struct {
	p       *CellProfile
	src     *rng.Source
	horizon sim.Time
	// capacityCPU is the cell's total NCU capacity, which anchors the
	// per-tier usage budgets.
	capacityCPU float64

	nextID   trace.CollectionID
	tierPick *dist.Categorical
	tiers    []tierGen
	// arr decides when collections arrive and who submits them; env is
	// its rate envelope (also exposed for tests via rateAt).
	arr ArrivalProcess
	env RateEnvelope

	liveJobs   []liveRef
	liveAllocs []liveRef

	// UsageCompensation inflates per-job usage targets to offset early
	// kills, parent-propagated kills and horizon truncation, which all
	// remove planned usage.
	UsageCompensation float64
}

// NewGenerator builds a generator for the profile over the given horizon.
// startID seeds collection IDs so multiple cells get disjoint ID spaces.
// The arrival process comes from the profile's Arrival spec (default
// poisson); construction consumes no randomness, so building and
// discarding a generator never perturbs the cell's draw sequence.
func NewGenerator(p *CellProfile, capacityCPU float64, horizon sim.Time, src *rng.Source, startID trace.CollectionID) *Generator {
	return NewGeneratorArrival(p, capacityCPU, horizon, src, startID, "")
}

// NewGeneratorArrival is NewGenerator with an arrival-process override:
// a non-empty spec (see ParseArrival) takes precedence over the
// profile's Arrival field. It panics on a malformed spec — callers
// validate user input with ParseArrival first.
func NewGeneratorArrival(p *CellProfile, capacityCPU float64, horizon sim.Time, src *rng.Source, startID trace.CollectionID, arrival string) *Generator {
	g := &Generator{
		p:                 p,
		src:               src,
		horizon:           horizon,
		capacityCPU:       capacityCPU,
		nextID:            startID,
		env:               envelopeFor(p),
		UsageCompensation: 1.15,
	}
	if arrival == "" {
		arrival = p.Arrival
	}
	g.arr = newArrival(MustParseArrival(arrival), p, horizon, src)
	shares := make([]float64, len(p.Tiers))
	rate := p.TotalArrivalRate()
	horizonHours := horizon.Hours()
	for i := range p.Tiers {
		tp := &p.Tiers[i]
		shares[i] = tp.ArrivalShare
		tierRate := rate * tp.ArrivalShare
		if tierRate <= 0 {
			tierRate = 1e-9
		}
		// Target mean NCU-hours per job so the tier consumes its budget
		// share of cell capacity.
		targetMean := tp.CPUBudget * capacityCPU / tierRate * g.UsageCompensation
		// Cap single-hog consumption so one draw cannot eat the cell,
		// while leaving the hogs big enough to dominate the load (§7):
		// the largest job may consume up to ~6% of the cell-horizon,
		// stretched over most of the trace window.
		hMax := math.Min(0.75*tp.CPUBudget, 0.10) * capacityCPU * horizonHours
		if hMax < 4 {
			hMax = 4
		}
		body := dist.BoundedPareto{L: 2e-5, H: 1, Alpha: 0.75}
		hogs := dist.BoundedPareto{L: 1, H: hMax, Alpha: tp.UsageAlpha}
		// Solve the hog fraction for the tier's mean usage target.
		w := (targetMean - body.Mean()) / (hogs.Mean() - body.Mean())
		if w < 0.002 {
			w = 0.002
		}
		if w > 0.35 {
			w = 0.35
		}
		g.tiers = append(g.tiers, tierGen{
			params:    tp,
			prio:      dist.NewCategorical(tp.PriorityWeights),
			body:      body,
			hogs:      hogs,
			hogWeight: w,
			taskTail:  dist.BoundedPareto{L: 1, H: tp.TaskCap, Alpha: tp.TaskAlpha},
			memRatio:  dist.LogNormalFromMedian(tp.MemPerCPUMedian, tp.MemPerCPUSigma),
			ovCPU:     dist.LogNormalFromMedian(tp.OversizeCPU, tp.OversizeCPUSigma),
			ovMem:     dist.LogNormalFromMedian(tp.OversizeMem, tp.OversizeMemSigma),
			scaling:   dist.NewCategorical([]float64{tp.ScalingProbs[0], tp.ScalingProbs[1], tp.ScalingProbs[2]}),
			taskRate:  dist.LogNormalFromMedian(0.03, 0.8),
			restartsQ: tp.RestartMean / (1 + tp.RestartMean),
		})
	}
	g.tierPick = dist.NewCategorical(shares)
	return g
}

// NextInterArrival draws the time to the next job submission at simulation
// time now, delegating to the generator's arrival process (default: a
// homogeneous Poisson stream thinned by the diurnal envelope).
func (g *Generator) NextInterArrival(now sim.Time) sim.Time {
	return g.arr.NextInterArrival(now)
}

// Arrival exposes the generator's arrival process.
func (g *Generator) Arrival() ArrivalProcess { return g.arr }

// rateAt is the modulated arrival rate (jobs/hour) at time t.
func (g *Generator) rateAt(t sim.Time) float64 { return g.env.Rate(t) }

// Generate produces the collections submitted at time now: usually one
// job, occasionally preceded by a new alloc set (§5.1: 2% of collections
// are alloc sets).
func (g *Generator) Generate(now sim.Time) []*scheduler.Job {
	var out []*scheduler.Job
	f := g.p.AllocSetFraction
	if f > 0 && g.src.Bool(f/(1-f)) {
		out = append(out, g.makeAllocSet(now))
	}
	out = append(out, g.makeJob(now))
	g.gc(now)
	return out
}

// gc trims the live lists so they do not grow without bound.
func (g *Generator) gc(now sim.Time) {
	trim := func(in []liveRef) []liveRef {
		out := in[:0]
		for _, r := range in {
			if r.projEnd > now {
				out = append(out, r)
			}
		}
		if len(out) > 400 {
			out = out[len(out)-400:]
		}
		return out
	}
	g.liveJobs = trim(g.liveJobs)
	g.liveAllocs = trim(g.liveAllocs)
}

func (g *Generator) newID() trace.CollectionID {
	id := g.nextID
	g.nextID++
	return id
}

func (g *Generator) user() string {
	return g.arr.User()
}

// makeAllocSet builds an alloc-set collection with a handful of sizeable
// reservations and a long lifetime.
func (g *Generator) makeAllocSet(now sim.Time) *scheduler.Job {
	j := scheduler.NewJob(g.newID())
	j.Type = trace.CollectionAllocSet
	j.Priority = 200
	j.Tier = trace.TierProduction
	j.User = g.user()
	j.Outcome = scheduler.OutcomeFinish

	remaining := g.horizon - now
	durFrac := 0.6 + 0.5*g.src.Float64()
	duration := sim.Time(float64(remaining) * durFrac)
	if duration < sim.Hour {
		duration = sim.Hour
	}

	n := 2 + g.src.Intn(12)
	cpu := clamp(dist.LogNormalFromMedian(0.12, 0.5).Sample(g.src), 0.04, 0.40)
	mem := clamp(dist.LogNormalFromMedian(0.12, 0.5).Sample(g.src), 0.04, 0.40)
	res := trace.Resources{CPU: cpu, Mem: mem}
	for i := 0; i < n; i++ {
		j.AddTask(&scheduler.Task{
			Request:  res,
			Duration: duration,
			// The reservation itself "uses" nothing; inner tasks do.
			MeanCPU: 0, MeanMem: 0, PeakFact: 1,
		})
	}
	g.liveAllocs = append(g.liveAllocs, liveRef{
		id:      j.ID,
		projEnd: now + duration,
		instRes: res,
		freeCPU: cpu * float64(n),
	})
	return j
}

// makeJob builds one job, coupling tasks-per-job and total consumption
// through a shared quantile so big jobs are big on both axes.
func (g *Generator) makeJob(now sim.Time) *scheduler.Job {
	ti := g.tierPick.Draw(g.src)
	tg := &g.tiers[ti]
	tp := tg.params

	j := scheduler.NewJob(g.newID())
	j.Type = trace.CollectionJob
	j.Tier = tp.Tier
	j.Priority = tp.Priorities[tg.prio.Draw(g.src)]
	j.User = g.user()
	if tp.BatchScheduler && g.p.BatchQueue {
		j.Scheduler = trace.SchedulerBatch
	}
	j.Scaling = trace.VerticalScaling(tg.scaling.Draw(g.src))

	// Shared size quantile with a rank-preserving copula: with high
	// probability the task count and the usage integral share the same
	// rank, so big jobs are big on both axes, while each marginal stays
	// exactly as calibrated.
	u := g.src.Float64()
	n := g.taskCount(tg, copulaJitter(u, 0.85, g.src))
	ncuHours := tg.usageQuantile(copulaJitter(u, 0.85, g.src))
	nmuHours := ncuHours * tg.memRatio.Sample(g.src)

	// Decompose the integral into (tasks × per-task rate × duration).
	// Ordinary jobs stay under ~1/3 of the horizon; hogs stretch over a
	// longer window first (they are long-running in reality), and only
	// grow extra tasks when even that is not enough — a physical
	// constraint that keeps their instantaneous footprint modest.
	maxDur := 0.35 * g.horizon.Hours()
	hogDur := math.Min(0.85*g.horizon.Hours(), 18)
	const maxRate = 0.25
	if ncuHours/(float64(n)*maxRate) > maxDur {
		maxDur = hogDur
	}
	if minTasks := int(math.Ceil(ncuHours / (hogDur * maxRate))); minTasks > n {
		n = minTasks
		if n > 5000 {
			n = 5000
		}
	}
	rate := clamp(tg.taskRate.Sample(g.src), 0.002, maxRate)
	durHours := clampFloat(ncuHours/(float64(n)*rate), 2.0/60, maxDur)

	// Dependencies (§5.2): children are attached to a live job and
	// stretched to outlast it, so the parent's exit kills them — this is
	// what drives the trace's 87%-vs-41% kill-rate gap.
	if tp.ParentProb > 0 && g.src.Bool(tp.ParentProb) {
		if ref := g.pickParent(now); ref != nil {
			j.Parent = ref.id
			parentRemaining := (ref.projEnd - now).Hours()
			stretched := parentRemaining * (1.05 + 0.6*g.src.Float64())
			if stretched > durHours {
				durHours = stretched
			}
		}
	}

	rate = clamp(ncuHours/(float64(n)*durHours), 0.0008, 0.30)
	memRate := clamp(nmuHours/(float64(n)*durHours), 0.0004, 0.30)
	// Jobs do not outlive the trace window: a late arrival keeps its
	// rate but is truncated at the horizon (an edge effect the real
	// trace's boundaries have too).
	remaining := (g.horizon - now).Hours() - 0.02
	if remaining < 2.0/60 {
		remaining = 2.0 / 60
	}
	if durHours > remaining {
		durHours = remaining
	}
	duration := sim.FromHours(durHours)

	// Alloc-set targeting (§5.1): mostly production jobs.
	allocProb := 0.0
	if tp.Tier == trace.TierProduction {
		allocProb = g.p.ProdAllocProb
	} else if g.p.ProdAllocProb > 0 {
		allocProb = 0.02
	}
	var hostRes trace.Resources
	if allocProb > 0 && g.src.Bool(allocProb) {
		if ref := g.pickAlloc(now, float64(n)*rate); ref != nil {
			j.AllocSet = ref.id
			hostRes = ref.instRes
			memRate = clamp(memRate*g.p.InAllocMemBoost, 0.0004, 0.35)
		}
	}

	// Requests: usage times an oversize factor; memory must normally
	// clear the peak, except for deliberately under-provisioned tasks
	// that become OOM-evictable (§5.2 overcommit evictions).
	peak := clamp(1.15+math.Abs(g.src.NormFloat64())*0.25, 1.05, 2.5)
	// Keep peak memory beneath the largest request we are willing to
	// issue, so reqMem can always cover it.
	memRate = clamp(memRate, 0.0004, 0.33/peak)
	reqCPU := clamp(rate*tg.ovCPU.Sample(g.src), rate*1.05, 0.35)
	var reqMem float64
	underProv := g.src.Bool(g.p.MemUnderProvisionProb)
	if underProv {
		reqMem = clamp(memRate*(0.9+0.15*g.src.Float64()), 0.0004, 0.35)
	} else {
		reqMem = clamp(memRate*tg.ovMem.Sample(g.src), memRate*peak*1.02, 0.35)
	}
	if j.AllocSet != 0 {
		// Must fit inside one alloc instance's reservation.
		reqCPU = math.Min(reqCPU, hostRes.CPU*0.85)
		reqMem = math.Min(reqMem, hostRes.Mem*0.85)
		rate = math.Min(rate, reqCPU*0.95)
		memRate = math.Min(memRate, reqMem*0.95)
	}

	// Outcomes for parentless jobs.
	if j.Parent == 0 {
		r := g.src.Float64()
		switch {
		case r < tp.KillProb:
			j.Outcome = scheduler.OutcomeKill
			j.KillAfter = sim.Time(float64(duration) * (0.08 + 0.84*g.src.Float64()))
		case r < tp.KillProb+tp.FailProb:
			j.Outcome = scheduler.OutcomeFail
		default:
			j.Outcome = scheduler.OutcomeFinish
		}
	}

	for i := 0; i < n; i++ {
		// Per-task wobble around the job mean, never above the CPU
		// limit (memory may exceed it only for the under-provisioned).
		taskRate := clamp(rate*lognormJitter(g.src, 0.15), 0.0005, reqCPU)
		memCeil := 0.35
		if !underProv {
			memCeil = reqMem / peak
		}
		taskMem := clamp(memRate*lognormJitter(g.src, 0.15), 0.0003, memCeil)
		j.AddTask(&scheduler.Task{
			Request:  trace.Resources{CPU: reqCPU, Mem: reqMem},
			Duration: duration,
			Restarts: g.restarts(tg),
			MeanCPU:  taskRate,
			MeanMem:  taskMem,
			PeakFact: peak,
		})
	}

	g.liveJobs = append(g.liveJobs, liveRef{id: j.ID, projEnd: now + duration})
	return j
}

// taskCount draws the number of tasks for a job at quantile u
// (Figure 11's per-tier distributions).
func (g *Generator) taskCount(tg *tierGen, u float64) int {
	sp := tg.params.TaskSingleProb
	if u < sp {
		return 1
	}
	cond := (u - sp) / (1 - sp)
	n := 1 + int(tg.taskTail.Quantile(clampOpen(cond)))
	if n < 1 {
		n = 1
	}
	if n > int(tg.params.TaskCap) {
		n = int(tg.params.TaskCap)
	}
	return n
}

// restarts draws the scripted crash-restart count (geometric, capped).
func (g *Generator) restarts(tg *tierGen) int {
	k := 0
	for k < 14 && g.src.Bool(tg.restartsQ) {
		k++
	}
	return k
}

// pickParent returns a random live job to act as the parent — preferring
// one ending within a few hours so children need not be stretched to
// extremes.
func (g *Generator) pickParent(now sim.Time) *liveRef {
	if len(g.liveJobs) == 0 {
		return nil
	}
	var best *liveRef
	for attempt := 0; attempt < 6; attempt++ {
		ref := &g.liveJobs[g.src.Intn(len(g.liveJobs))]
		if ref.projEnd <= now {
			continue
		}
		if best == nil || ref.projEnd < best.projEnd {
			best = ref
		}
	}
	return best
}

// pickAlloc finds a live alloc set with spare estimated CPU for the job.
func (g *Generator) pickAlloc(now sim.Time, needCPU float64) *liveRef {
	for attempt := 0; attempt < 4 && len(g.liveAllocs) > 0; attempt++ {
		ref := &g.liveAllocs[g.src.Intn(len(g.liveAllocs))]
		if ref.projEnd > now && ref.freeCPU > needCPU*0.5 {
			ref.freeCPU -= needCPU
			return ref
		}
	}
	return nil
}

// copulaJitter keeps the shared rank u with probability keep, otherwise
// draws a fresh independent rank. Unlike additive noise, this leaves the
// marginal distribution exactly uniform.
func copulaJitter(u, keep float64, src *rng.Source) float64 {
	if src.Bool(keep) {
		return u
	}
	return src.Float64()
}

func clampOpen(u float64) float64 {
	if u < 1e-9 {
		return 1e-9
	}
	if u > 1-1e-9 {
		return 1 - 1e-9
	}
	return u
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func clampFloat(x, lo, hi float64) float64 { return clamp(x, lo, hi) }

// lognormJitter returns a multiplicative lognormal factor with median 1.
func lognormJitter(src *rng.Source, sigma float64) float64 {
	return math.Exp(sigma * src.NormFloat64())
}
