// Package sim provides the discrete-event simulation kernel that drives the
// Borg cell reproduction: a virtual clock in microseconds (the trace's time
// unit), a pooled priority event queue, and helpers for periodic processes
// such as the 5-minute usage sampler.
//
// Event records live in a slab owned by the kernel and are recycled after
// they fire or are canceled, so steady-state simulation does not allocate
// per event. Callers hold EventRef handles — small (slot, generation)
// values that become harmless no-ops once the underlying record has been
// recycled, which makes "cancel the end-of-run timer that may already have
// fired" safe without any bookkeeping on the caller's side.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual simulation time in microseconds since trace start,
// matching the published trace's timestamp unit.
type Time int64

// Common durations in trace time units.
const (
	Microsecond Time = 1
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
	Day              = 24 * Hour

	// SampleWindow is the usage-sampling period used by the trace
	// (5-minute windows, §3).
	SampleWindow = 5 * Minute
)

// Duration converts a standard library duration to simulation time.
func Duration(d time.Duration) Time { return Time(d.Microseconds()) }

// FromSeconds converts floating-point seconds to simulation time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromHours converts floating-point hours to simulation time.
func FromHours(h float64) Time { return Time(h * float64(Hour)) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Hours returns t as floating-point hours.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

// String renders the time as d.hh:mm:ss.mmm for logs and debugging.
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	d := t / Day
	h := (t % Day) / Hour
	m := (t % Hour) / Minute
	s := (t % Minute) / Second
	ms := (t % Second) / Millisecond
	return fmt.Sprintf("%s%d.%02d:%02d:%02d.%03d", neg, d, h, m, s, ms)
}

// EventRef is a handle to a scheduled event. The zero value refers to
// nothing: canceling it is a no-op and Scheduled reports false. A ref goes
// stale the moment its event fires or is canceled; stale refs are equally
// inert, so callers can keep them around without caring which happened.
type EventRef struct {
	slot uint32
	gen  uint32
}

// IsZero reports whether the ref was never assigned a scheduled event.
func (r EventRef) IsZero() bool { return r.gen == 0 }

// eventSlot is one pooled event record in the kernel's slab.
type eventSlot struct {
	due  Time
	seq  uint64 // tie-break: FIFO among equal times
	gen  uint32 // bumped on every recycle; stale EventRefs mismatch
	pos  int32  // index into Kernel.order, -1 when not queued
	fire func(now Time)
}

// Kernel is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; the simulation model is deterministic and sequential by
// design (randomness is injected via rng streams), and multi-cell
// parallelism lives a layer up, in internal/engine, with one kernel per
// cell.
type Kernel struct {
	now    Time
	slots  []eventSlot
	free   []uint32 // recycled slot ids
	order  []uint32 // slot ids, heap-ordered by (due, seq)
	seq    uint64
	events uint64 // fired events, for stats
}

// NewKernel returns a kernel with the clock at 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns how many events have been executed.
func (k *Kernel) Fired() uint64 { return k.events }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.order) }

// PoolSize returns the slab size: the high-water mark of simultaneously
// scheduled events, for capacity diagnostics.
func (k *Kernel) PoolSize() int { return len(k.slots) }

// Scheduled reports whether the ref's event is still queued (not yet
// fired, not canceled).
func (k *Kernel) Scheduled(r EventRef) bool {
	return !r.IsZero() && int(r.slot) < len(k.slots) &&
		k.slots[r.slot].gen == r.gen && k.slots[r.slot].pos >= 0
}

// alloc takes a slot from the freelist (or grows the slab) and stamps a
// fresh generation.
func (k *Kernel) alloc() uint32 {
	var id uint32
	if n := len(k.free); n > 0 {
		id = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slots = append(k.slots, eventSlot{})
		id = uint32(len(k.slots) - 1)
	}
	k.slots[id].gen++
	return id
}

// release invalidates all outstanding refs to the slot and returns it to
// the pool.
func (k *Kernel) release(id uint32) {
	s := &k.slots[id]
	s.gen++
	s.pos = -1
	s.fire = nil
	k.free = append(k.free, id)
}

// heapOrder implements container/heap over the kernel's order slice,
// keeping each slot's pos index in sync so Cancel can remove mid-heap
// entries in O(log n).
type heapOrder Kernel

func (h *heapOrder) Len() int { return len(h.order) }
func (h *heapOrder) Less(i, j int) bool {
	a, b := &h.slots[h.order[i]], &h.slots[h.order[j]]
	if a.due != b.due {
		return a.due < b.due
	}
	return a.seq < b.seq
}
func (h *heapOrder) Swap(i, j int) {
	h.order[i], h.order[j] = h.order[j], h.order[i]
	h.slots[h.order[i]].pos = int32(i)
	h.slots[h.order[j]].pos = int32(j)
}
func (h *heapOrder) Push(x any) {
	id := x.(uint32)
	h.slots[id].pos = int32(len(h.order))
	h.order = append(h.order, id)
}
func (h *heapOrder) Pop() any {
	n := len(h.order)
	id := h.order[n-1]
	h.order = h.order[:n-1]
	h.slots[id].pos = -1
	return id
}

// At schedules fire to run at the absolute time due. Scheduling in the past
// panics: it would silently corrupt causality.
func (k *Kernel) At(due Time, fire func(now Time)) EventRef {
	if due < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", due, k.now))
	}
	id := k.alloc()
	s := &k.slots[id]
	s.due = due
	s.seq = k.seq
	s.fire = fire
	k.seq++
	heap.Push((*heapOrder)(k), id)
	return EventRef{slot: id, gen: s.gen}
}

// After schedules fire to run delay after the current time.
func (k *Kernel) After(delay Time, fire func(now Time)) EventRef {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fire)
}

// Cancel removes a pending event. Canceling a zero, already-fired, or
// already-canceled ref is a no-op.
func (k *Kernel) Cancel(r EventRef) {
	if !k.Scheduled(r) {
		return
	}
	heap.Remove((*heapOrder)(k), int(k.slots[r.slot].pos))
	k.release(r.slot)
}

// Step fires the next event, advancing the clock. It returns false when the
// queue is empty.
func (k *Kernel) Step() bool {
	if len(k.order) == 0 {
		return false
	}
	id := heap.Pop((*heapOrder)(k)).(uint32)
	s := &k.slots[id]
	k.now = s.due
	k.events++
	fire := s.fire
	// Recycle before firing so a callback canceling its own ref (or
	// scheduling into the freed slot) behaves.
	k.release(id)
	fire(k.now)
	return true
}

// RunUntil fires events until the queue is drained or the next event is
// later than end; the clock is then advanced to end. Events scheduled by
// callbacks during the run are honored.
func (k *Kernel) RunUntil(end Time) {
	for len(k.order) > 0 && k.slots[k.order[0]].due <= end {
		k.Step()
	}
	if k.now < end {
		k.now = end
	}
}

// Run drains the queue completely.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// Every schedules fire at start, start+period, ... while the kernel runs,
// until the returned stop function is called or until (optional) end is
// reached (end <= 0 means no end). fire runs before the next tick is
// scheduled, so a callback may stop its own ticker.
func (k *Kernel) Every(start, period, end Time, fire func(now Time)) (stop func()) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	stopped := false
	var tick func(now Time)
	var pending EventRef
	tick = func(now Time) {
		if stopped {
			return
		}
		fire(now)
		next := now + period
		if stopped || (end > 0 && next > end) {
			return
		}
		pending = k.At(next, tick)
	}
	if end <= 0 || start <= end {
		pending = k.At(start, tick)
	}
	return func() {
		stopped = true
		k.Cancel(pending)
	}
}
