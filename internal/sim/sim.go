// Package sim provides the discrete-event simulation kernel that drives the
// Borg cell reproduction: a virtual clock in microseconds (the trace's time
// unit), a priority event queue, and helpers for periodic processes such as
// the 5-minute usage sampler.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual simulation time in microseconds since trace start,
// matching the published trace's timestamp unit.
type Time int64

// Common durations in trace time units.
const (
	Microsecond Time = 1
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
	Day              = 24 * Hour

	// SampleWindow is the usage-sampling period used by the trace
	// (5-minute windows, §3).
	SampleWindow = 5 * Minute
)

// Duration converts a standard library duration to simulation time.
func Duration(d time.Duration) Time { return Time(d.Microseconds()) }

// FromSeconds converts floating-point seconds to simulation time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromHours converts floating-point hours to simulation time.
func FromHours(h float64) Time { return Time(h * float64(Hour)) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Hours returns t as floating-point hours.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

// String renders the time as d.hh:mm:ss.mmm for logs and debugging.
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	d := t / Day
	h := (t % Day) / Hour
	m := (t % Hour) / Minute
	s := (t % Minute) / Second
	ms := (t % Second) / Millisecond
	return fmt.Sprintf("%s%d.%02d:%02d:%02d.%03d", neg, d, h, m, s, ms)
}

// Event is a scheduled callback. Fire runs at the event's due time.
type Event struct {
	due      Time
	seq      uint64 // tie-break: FIFO among equal times
	index    int    // heap index, -1 when not queued
	canceled bool
	fire     func(now Time)
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Due returns the time the event is scheduled for.
func (e *Event) Due() Time { return e.due }

// eventHeap orders events by (due, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; the simulation model is deterministic and sequential by
// design (randomness is injected via rng streams).
type Kernel struct {
	now    Time
	queue  eventHeap
	seq    uint64
	events uint64 // fired events, for stats
}

// NewKernel returns a kernel with the clock at 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns how many events have been executed.
func (k *Kernel) Fired() uint64 { return k.events }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fire to run at the absolute time due. Scheduling in the past
// panics: it would silently corrupt causality.
func (k *Kernel) At(due Time, fire func(now Time)) *Event {
	if due < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", due, k.now))
	}
	e := &Event{due: due, seq: k.seq, fire: fire}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fire to run delay after the current time.
func (k *Kernel) After(delay Time, fire func(now Time)) *Event {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fire)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&k.queue, e.index)
	e.index = -1
}

// Step fires the next event, advancing the clock. It returns false when the
// queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.due
		k.events++
		e.fire(k.now)
		return true
	}
	return false
}

// RunUntil fires events until the queue is drained or the next event is
// later than end; the clock is then advanced to end. Events scheduled by
// callbacks during the run are honored.
func (k *Kernel) RunUntil(end Time) {
	for len(k.queue) > 0 {
		// Peek.
		next := k.queue[0]
		if next.canceled {
			heap.Pop(&k.queue)
			continue
		}
		if next.due > end {
			break
		}
		k.Step()
	}
	if k.now < end {
		k.now = end
	}
}

// Run drains the queue completely.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// Every schedules fire at start, start+period, ... while the kernel runs,
// until the returned stop function is called or until (optional) end is
// reached (end <= 0 means no end). fire runs before the next tick is
// scheduled, so a callback may stop its own ticker.
func (k *Kernel) Every(start, period, end Time, fire func(now Time)) (stop func()) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	stopped := false
	var tick func(now Time)
	var pending *Event
	tick = func(now Time) {
		if stopped {
			return
		}
		fire(now)
		next := now + period
		if stopped || (end > 0 && next > end) {
			return
		}
		pending = k.At(next, tick)
	}
	if end <= 0 || start <= end {
		pending = k.At(start, tick)
	}
	return func() {
		stopped = true
		if pending != nil {
			k.Cancel(pending)
		}
	}
}
