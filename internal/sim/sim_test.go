package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("clock %v", k.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func(Time) { order = append(order, 3) })
	k.At(10, func(Time) { order = append(order, 1) })
	k.At(20, func(Time) { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("final clock %v", k.Now())
	}
	if k.Fired() != 3 {
		t.Fatalf("fired %d", k.Fired())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func(Time) { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func(Time) {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for past event")
		}
	}()
	k.At(50, func(Time) {})
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	k := NewKernel()
	fired := false
	k.After(-5, func(now Time) {
		if now != 0 {
			t.Fatalf("fired at %v", now)
		}
		fired = true
	})
	k.Run()
	if !fired {
		t.Fatal("never fired")
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(10, func(Time) { fired = true })
	if !k.Scheduled(e) {
		t.Fatal("event not scheduled")
	}
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if k.Scheduled(e) {
		t.Fatal("event still scheduled after cancel")
	}
	// Double-cancel and zero-ref cancel are no-ops.
	k.Cancel(e)
	k.Cancel(EventRef{})
}

func TestCancelDuringRun(t *testing.T) {
	k := NewKernel()
	fired := false
	var e2 EventRef
	k.At(1, func(Time) { k.Cancel(e2) })
	e2 = k.At(2, func(Time) { fired = true })
	k.Run()
	if fired {
		t.Fatal("event canceled mid-run still fired")
	}
}

func TestEventPoolReuse(t *testing.T) {
	k := NewKernel()
	// Sequential schedule/fire cycles must recycle the same slot instead
	// of growing the slab.
	for i := 0; i < 1000; i++ {
		k.After(1, func(Time) {})
		k.Step()
	}
	if k.PoolSize() > 2 {
		t.Fatalf("pool grew to %d slots for sequential events", k.PoolSize())
	}
}

func TestStaleRefCannotCancelRecycledSlot(t *testing.T) {
	k := NewKernel()
	stale := k.At(1, func(Time) {})
	k.Step() // fires and recycles the slot
	if k.Scheduled(stale) {
		t.Fatal("fired event still scheduled")
	}
	// The next event reuses the slot; the stale ref must not touch it.
	fired := false
	fresh := k.At(2, func(Time) { fired = true })
	k.Cancel(stale)
	if !k.Scheduled(fresh) {
		t.Fatal("stale cancel removed the slot's new occupant")
	}
	k.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestSelfCancelInCallbackIsNoop(t *testing.T) {
	k := NewKernel()
	var self EventRef
	self = k.At(5, func(Time) { k.Cancel(self) })
	followUp := false
	k.At(6, func(Time) { followUp = true })
	k.Run()
	if !followUp {
		t.Fatal("self-cancel disturbed the queue")
	}
}

func TestZeroRef(t *testing.T) {
	var r EventRef
	if !r.IsZero() {
		t.Fatal("zero value not IsZero")
	}
	k := NewKernel()
	if k.Scheduled(r) {
		t.Fatal("zero ref scheduled")
	}
	if e := k.At(1, func(Time) {}); e.IsZero() {
		t.Fatal("live ref reports IsZero")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Time{5, 15, 25} {
		d := d
		k.At(d, func(now Time) { fired = append(fired, now) })
	}
	k.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	if k.Now() != 20 {
		t.Fatalf("clock %v, want 20", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending %d", k.Pending())
	}
	k.RunUntil(100)
	if len(fired) != 3 || k.Now() != 100 {
		t.Fatalf("fired %v, now %v", fired, k.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := NewKernel()
	var hits int
	var chain func(now Time)
	chain = func(now Time) {
		hits++
		if hits < 5 {
			k.After(10, chain)
		}
	}
	k.At(0, chain)
	k.Run()
	if hits != 5 {
		t.Fatalf("chain hits %d", hits)
	}
	if k.Now() != 40 {
		t.Fatalf("clock %v", k.Now())
	}
}

func TestEvery(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	k.Every(10, 10, 55, func(now Time) { ticks = append(ticks, now) })
	k.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v", ticks)
		}
	}
}

func TestEveryStop(t *testing.T) {
	k := NewKernel()
	count := 0
	var stop func()
	stop = k.Every(0, 10, 0, func(now Time) {
		count++
		if count == 3 {
			stop()
		}
	})
	k.RunUntil(1000)
	if count != 3 {
		t.Fatalf("count %d", count)
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewKernel().Every(0, 0, 0, func(Time) {})
}

func TestTimeConversions(t *testing.T) {
	if Duration(time.Second) != Second {
		t.Fatal("Duration(1s)")
	}
	if (2 * Hour).Hours() != 2 {
		t.Fatal("Hours")
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Fatal("Seconds")
	}
	if got := (Day + 2*Hour + 3*Minute + 4*Second + 5*Millisecond).String(); got != "1.02:03:04.005" {
		t.Fatalf("String() = %q", got)
	}
	if got := Time(-Second).String(); got != "-0.00:00:01.000" {
		t.Fatalf("negative String() = %q", got)
	}
}

// Property: any batch of events fires in non-decreasing time order.
func TestOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, d := range delays {
			k.At(Time(d), func(now Time) { fired = append(fired, now) })
		}
		k.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelThroughput(b *testing.B) {
	k := NewKernel()
	var reschedule func(now Time)
	reschedule = func(now Time) { k.After(1, reschedule) }
	for i := 0; i < 64; i++ {
		k.After(Time(i), reschedule)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}
