package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/trace"
)

func res(c, m float64) trace.Resources { return trace.Resources{CPU: c, Mem: m} }

func TestAddMachineAndCapacity(t *testing.T) {
	c := NewCell("test")
	m1 := c.AddMachine(res(1, 1), "P0")
	m2 := c.AddMachine(res(0.5, 0.25), "P1")
	if m1.ID == m2.ID {
		t.Fatal("duplicate machine IDs")
	}
	if c.NumMachines() != 2 {
		t.Fatalf("machines %d", c.NumMachines())
	}
	if got := c.Capacity(); got != res(1.5, 1.25) {
		t.Fatalf("capacity %v", got)
	}
	if c.Machine(m1.ID) != m1 {
		t.Fatal("lookup")
	}
	if c.Machine(999) != nil {
		t.Fatal("unknown machine should be nil")
	}
	if len(c.MachineIDs()) != 2 {
		t.Fatal("ids")
	}
}

func TestPlaceRemoveAccounting(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	r := &Resident{Key: trace.InstanceKey{Collection: 1, Index: 0}, Limit: res(0.3, 0.2), Priority: 120, Tier: trace.TierProduction}
	c.Place(m.ID, r)
	if m.Allocated() != res(0.3, 0.2) {
		t.Fatalf("allocated %v", m.Allocated())
	}
	if m.NumResidents() != 1 {
		t.Fatal("residents")
	}
	if m.Resident(r.Key) != r {
		t.Fatal("resident lookup")
	}
	got := c.Remove(m.ID, r.Key)
	if got != r {
		t.Fatal("removed resident mismatch")
	}
	if m.Allocated() != res(0, 0) || m.NumResidents() != 0 {
		t.Fatalf("post-remove state %v %d", m.Allocated(), m.NumResidents())
	}
}

func TestPlacePanics(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	r := &Resident{Key: trace.InstanceKey{Collection: 1}}
	c.Place(m.ID, r)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate place", func() { c.Place(m.ID, r) })
	mustPanic("unknown machine", func() { c.Place(999, &Resident{}) })
	mustPanic("remove missing", func() { c.Remove(m.ID, trace.InstanceKey{Collection: 9}) })
	mustPanic("remove unknown machine", func() { c.Remove(999, r.Key) })
	mustPanic("remove unknown cell machine", func() { c.RemoveMachine(999) })
	mustPanic("update missing", func() { c.UpdateLimit(m.ID, trace.InstanceKey{Collection: 9}, res(0, 0)) })
}

func TestResidentsOrderedByPriority(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	c.Place(m.ID, &Resident{Key: trace.InstanceKey{Collection: 1}, Priority: 200})
	c.Place(m.ID, &Resident{Key: trace.InstanceKey{Collection: 2}, Priority: 0})
	c.Place(m.ID, &Resident{Key: trace.InstanceKey{Collection: 3}, Priority: 110})
	rs := m.Residents()
	if rs[0].Priority != 0 || rs[1].Priority != 110 || rs[2].Priority != 200 {
		t.Fatalf("victim order %v", rs)
	}
}

func TestFitsLimitOvercommit(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	noOC := OvercommitPolicy{CPUFactor: 1, MemFactor: 1}
	oc := OvercommitPolicy{CPUFactor: 1.5, MemFactor: 1.2}
	c.Place(m.ID, &Resident{Key: trace.InstanceKey{Collection: 1}, Limit: res(0.9, 0.9)})
	if m.FitsLimit(res(0.2, 0.05), noOC) {
		t.Fatal("should not fit without overcommit")
	}
	if !m.FitsLimit(res(0.2, 0.05), oc) {
		t.Fatal("should fit with overcommit")
	}
	if m.FitsLimit(res(0.7, 0.05), oc) {
		t.Fatal("exceeds even overcommit ceiling")
	}
	ceiling := oc.AllocationCeiling(res(1, 1))
	if ceiling != res(1.5, 1.2) {
		t.Fatalf("ceiling %v", ceiling)
	}
}

func TestUpdateLimit(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	key := trace.InstanceKey{Collection: 1}
	c.Place(m.ID, &Resident{Key: key, Limit: res(0.5, 0.5)})
	c.UpdateLimit(m.ID, key, res(0.2, 0.3))
	if m.Allocated() != res(0.2, 0.3) {
		t.Fatalf("allocated after update %v", m.Allocated())
	}
	if m.Resident(key).Limit != res(0.2, 0.3) {
		t.Fatal("resident limit not updated")
	}
}

func TestUsageTotal(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	r1 := &Resident{Key: trace.InstanceKey{Collection: 1}, Usage: res(0.1, 0.2)}
	r2 := &Resident{Key: trace.InstanceKey{Collection: 2}, Usage: res(0.3, 0.1)}
	c.Place(m.ID, r1)
	c.Place(m.ID, r2)
	got := m.UsageTotal()
	if got.CPU < 0.4-1e-12 || got.CPU > 0.4+1e-12 || got.Mem < 0.3-1e-12 || got.Mem > 0.3+1e-12 {
		t.Fatalf("usage total %v", got)
	}
}

func TestRemoveMachineReturnsResidents(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	c.AddMachine(res(1, 1), "P0")
	c.Place(m.ID, &Resident{Key: trace.InstanceKey{Collection: 1}})
	c.Place(m.ID, &Resident{Key: trace.InstanceKey{Collection: 2}})
	evicted := c.RemoveMachine(m.ID)
	if len(evicted) != 2 {
		t.Fatalf("evicted %d", len(evicted))
	}
	if c.NumMachines() != 1 {
		t.Fatalf("machines %d", c.NumMachines())
	}
	if c.Capacity() != res(1, 1) {
		t.Fatalf("capacity %v", c.Capacity())
	}
	if c.Machine(m.ID) != nil {
		t.Fatal("machine still present")
	}
}

func TestTotalAllocated(t *testing.T) {
	c := NewCell("test")
	m1 := c.AddMachine(res(1, 1), "P0")
	m2 := c.AddMachine(res(1, 1), "P0")
	c.Place(m1.ID, &Resident{Key: trace.InstanceKey{Collection: 1}, Limit: res(0.5, 0.1)})
	c.Place(m2.ID, &Resident{Key: trace.InstanceKey{Collection: 2}, Limit: res(0.25, 0.2)})
	got := c.TotalAllocated()
	if got.CPU != 0.75 || got.Mem < 0.3-1e-12 || got.Mem > 0.3+1e-12 {
		t.Fatalf("total allocated %v", got)
	}
}

func TestBuildCellShapes(t *testing.T) {
	src := rng.New(1)
	c := BuildCell("a", 2000, Shapes2019, src)
	if c.NumMachines() != 2000 {
		t.Fatalf("machines %d", c.NumMachines())
	}
	shapes := c.ShapeStats()
	if len(shapes) < 15 {
		t.Fatalf("only %d distinct shapes in a 2000-machine 2019 cell", len(shapes))
	}
	platforms := c.Platforms()
	if len(platforms) != 7 {
		t.Fatalf("platforms %d, want 7", len(platforms))
	}

	c11 := BuildCell("2011", 2000, Shapes2011, src)
	if got := len(c11.Platforms()); got != 3 {
		t.Fatalf("2011 platforms %d, want 3", got)
	}
	if got := len(c11.ShapeStats()); got > 10 {
		t.Fatalf("2011 shapes %d, want <= 10", got)
	}
}

func TestShapeCatalogsMatchTable1(t *testing.T) {
	if len(Shapes2011) != 10 {
		t.Fatalf("2011 catalog has %d shapes, want 10", len(Shapes2011))
	}
	if len(Shapes2019) != 21 {
		t.Fatalf("2019 catalog has %d shapes, want 21", len(Shapes2019))
	}
	plat := map[string]bool{}
	for _, s := range Shapes2019 {
		plat[s.Platform] = true
		if s.Capacity.CPU <= 0 || s.Capacity.CPU > 1 || s.Capacity.Mem <= 0 || s.Capacity.Mem > 1 {
			t.Fatalf("shape out of normalized range: %+v", s)
		}
	}
	if len(plat) != 7 {
		t.Fatalf("2019 platforms %d, want 7", len(plat))
	}
}

func TestBuildCellPanicsOnEmptyCatalog(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BuildCell("x", 10, nil, rng.New(1))
}

func TestSetUsageMaintainsAggregate(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	key := trace.InstanceKey{Collection: 1}
	c.Place(m.ID, &Resident{Key: key, Usage: res(0.1, 0.1)})
	if !m.SetUsage(key, res(0.4, 0.3)) {
		t.Fatal("SetUsage on placed resident returned false")
	}
	got := m.UsageTotal()
	if got.CPU < 0.4-1e-12 || got.CPU > 0.4+1e-12 || got.Mem < 0.3-1e-12 || got.Mem > 0.3+1e-12 {
		t.Fatalf("usage total %v after SetUsage", got)
	}
	if m.Resident(key).Usage != res(0.4, 0.3) {
		t.Fatal("resident usage not updated")
	}
	if m.SetUsage(trace.InstanceKey{Collection: 9}, res(1, 1)) {
		t.Fatal("SetUsage on missing resident returned true")
	}
	c.Remove(m.ID, key)
	if m.UsageTotal() != res(0, 0) {
		t.Fatalf("usage total %v after removing last resident", m.UsageTotal())
	}
}

func TestCeilingMemoized(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(0.5, 0.8), "P0")
	p1 := OvercommitPolicy{CPUFactor: 1.5, MemFactor: 1.2}
	p2 := OvercommitPolicy{CPUFactor: 2, MemFactor: 1}
	for i := 0; i < 3; i++ { // repeated and alternating policies
		if got := m.Ceiling(p1); got != p1.AllocationCeiling(m.Capacity) {
			t.Fatalf("ceiling %v for p1", got)
		}
		if got := m.Ceiling(p2); got != p2.AllocationCeiling(m.Capacity) {
			t.Fatalf("ceiling %v for p2", got)
		}
	}
}

func TestGenerationBumpsOnEveryMutation(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	key := trace.InstanceKey{Collection: 1}
	g := m.Gen()
	step := func(name string, f func()) {
		f()
		if m.Gen() <= g {
			t.Fatalf("%s did not bump generation (%d -> %d)", name, g, m.Gen())
		}
		g = m.Gen()
	}
	step("place", func() { c.Place(m.ID, &Resident{Key: key, Limit: res(0.2, 0.2)}) })
	step("set usage", func() { m.SetUsage(key, res(0.1, 0.1)) })
	step("update limit", func() { c.UpdateLimit(m.ID, key, res(0.3, 0.1)) })
	step("remove", func() { c.Remove(m.ID, key) })
}

// The cached victim order must behave like a stable snapshot: a slice
// handed out before a mutation keeps its contents, and the next call
// reflects the mutation.
func TestResidentsSnapshotStableAcrossMutation(t *testing.T) {
	c := NewCell("test")
	m := c.AddMachine(res(1, 1), "P0")
	for i := 1; i <= 4; i++ {
		c.Place(m.ID, &Resident{Key: trace.InstanceKey{Collection: trace.CollectionID(i)}, Priority: i * 10})
	}
	snap := m.Residents()
	if len(snap) != 4 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	if again := m.Residents(); &again[0] != &snap[0] {
		t.Fatal("unmutated machine rebuilt its victim order")
	}
	// Evict-while-iterating: removals must not disturb the snapshot.
	for _, r := range snap {
		c.Remove(m.ID, r.Key)
	}
	if len(snap) != 4 || snap[0].Key.Collection != 1 {
		t.Fatal("snapshot disturbed by removals")
	}
	if got := m.Residents(); len(got) != 0 {
		t.Fatalf("fresh call returned %d residents", len(got))
	}
}

// Property: after randomized place/remove/limit/usage mutation sequences,
// the incrementally maintained aggregates (allocation, usage total, victim
// order, ceiling) match a from-scratch recomputation of the same state.
func TestIncrementalStateMatchesRecompute(t *testing.T) {
	src := rng.New(99)
	c := NewCell("prop")
	oc := OvercommitPolicy{CPUFactor: 1.4, MemFactor: 1.2}
	for i := 0; i < 4; i++ {
		c.AddMachine(res(2, 2), "P0")
	}
	ids := c.MachineIDs()
	type placed struct {
		key trace.InstanceKey
		mid trace.MachineID
	}
	var live []placed
	next := trace.CollectionID(1)
	randRes := func() trace.Resources { return res(src.Float64()*0.3, src.Float64()*0.3) }

	verify := func(step int, m *Machine) {
		var wantAlloc, wantUsage trace.Resources
		rs := m.Residents()
		if len(rs) != m.NumResidents() {
			t.Fatalf("step %d: victim order has %d entries, machine has %d residents", step, len(rs), m.NumResidents())
		}
		for i, r := range rs {
			wantAlloc = wantAlloc.Add(r.Limit)
			wantUsage = wantUsage.Add(r.Usage)
			if i > 0 {
				prev := rs[i-1]
				if prev.Priority > r.Priority ||
					(prev.Priority == r.Priority && prev.Key.Collection > r.Key.Collection) {
					t.Fatalf("step %d: victim order violated at %d", step, i)
				}
			}
		}
		const eps = 1e-9
		gotAlloc, gotUsage := m.Allocated(), m.UsageTotal()
		if gotAlloc.CPU < wantAlloc.CPU-eps || gotAlloc.CPU > wantAlloc.CPU+eps ||
			gotAlloc.Mem < wantAlloc.Mem-eps || gotAlloc.Mem > wantAlloc.Mem+eps {
			t.Fatalf("step %d: allocated %v, recomputed %v", step, gotAlloc, wantAlloc)
		}
		if gotUsage.CPU < wantUsage.CPU-eps || gotUsage.CPU > wantUsage.CPU+eps ||
			gotUsage.Mem < wantUsage.Mem-eps || gotUsage.Mem > wantUsage.Mem+eps {
			t.Fatalf("step %d: usage total %v, recomputed %v", step, gotUsage, wantUsage)
		}
		if m.Ceiling(oc) != oc.AllocationCeiling(m.Capacity) {
			t.Fatalf("step %d: stale ceiling", step)
		}
	}

	for step := 0; step < 4000; step++ {
		switch op := src.Intn(4); {
		case op == 0 || len(live) == 0: // place
			mid := ids[src.Intn(len(ids))]
			key := trace.InstanceKey{Collection: next}
			next++
			c.Place(mid, &Resident{
				Key: key, Limit: randRes(), Usage: randRes(),
				Priority: src.Intn(360),
			})
			live = append(live, placed{key: key, mid: mid})
		case op == 1: // remove
			i := src.Intn(len(live))
			c.Remove(live[i].mid, live[i].key)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case op == 2: // update limit
			p := live[src.Intn(len(live))]
			c.UpdateLimit(p.mid, p.key, randRes())
		default: // usage sample
			p := live[src.Intn(len(live))]
			c.Machine(p.mid).SetUsage(p.key, randRes())
		}
		verify(step, c.Machine(ids[src.Intn(len(ids))]))
	}
}

// Property: placement/removal keeps allocation equal to the sum of
// resident limits.
func TestAllocationConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := NewCell("p")
		m := c.AddMachine(res(100, 100), "P0")
		placed := map[trace.InstanceKey]trace.Resources{}
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 || len(placed) == 0 {
				key := trace.InstanceKey{Collection: trace.CollectionID(next)}
				next++
				lim := res(float64(op%7)/10, float64(op%5)/10)
				c.Place(m.ID, &Resident{Key: key, Limit: lim})
				placed[key] = lim
			} else {
				for key := range placed {
					c.Remove(m.ID, key)
					delete(placed, key)
					break
				}
			}
		}
		var want trace.Resources
		for _, lim := range placed {
			want = want.Add(lim)
		}
		got := m.Allocated()
		const eps = 1e-9
		return got.CPU > want.CPU-eps && got.CPU < want.CPU+eps &&
			got.Mem > want.Mem-eps && got.Mem < want.Mem+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
