// Package cluster models the physical substrate of a Borg cell: machines
// with heterogeneous shapes (Figure 1), capacity and allocation accounting
// with overcommit (Figure 4), and resident-instance tracking used by the
// scheduler for placement, preemption, and OOM handling.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Shape is a machine configuration: normalized CPU/memory capacity plus
// the hardware platform it belongs to. Weight is the relative frequency of
// the shape in the fleet.
type Shape struct {
	Capacity trace.Resources
	Platform string
	Weight   float64
}

// Shapes2011 reproduces the 2011 trace's machine mix: 10 machine shapes
// across 3 hardware platforms (Table 1), dominated by one mid-size shape,
// with capacities normalized to the largest machine.
var Shapes2011 = []Shape{
	{Capacity: trace.Resources{CPU: 0.50, Mem: 0.50}, Platform: "A", Weight: 0.53},
	{Capacity: trace.Resources{CPU: 0.50, Mem: 0.25}, Platform: "A", Weight: 0.31},
	{Capacity: trace.Resources{CPU: 0.50, Mem: 0.75}, Platform: "A", Weight: 0.08},
	{Capacity: trace.Resources{CPU: 1.00, Mem: 1.00}, Platform: "B", Weight: 0.01},
	{Capacity: trace.Resources{CPU: 0.25, Mem: 0.25}, Platform: "B", Weight: 0.03},
	{Capacity: trace.Resources{CPU: 0.50, Mem: 0.12}, Platform: "B", Weight: 0.01},
	{Capacity: trace.Resources{CPU: 0.50, Mem: 0.03}, Platform: "B", Weight: 0.005},
	{Capacity: trace.Resources{CPU: 0.50, Mem: 0.97}, Platform: "C", Weight: 0.004},
	{Capacity: trace.Resources{CPU: 1.00, Mem: 0.50}, Platform: "C", Weight: 0.006},
	{Capacity: trace.Resources{CPU: 0.25, Mem: 0.50}, Platform: "C", Weight: 0.005},
}

// Shapes2019 reproduces the 2019 mix: 21 shapes across 7 platforms with a
// much wider spread of CPU:memory ratios (Figure 1, Table 1).
var Shapes2019 = []Shape{
	{Capacity: trace.Resources{CPU: 0.25, Mem: 0.25}, Platform: "P0", Weight: 0.18},
	{Capacity: trace.Resources{CPU: 0.35, Mem: 0.25}, Platform: "P0", Weight: 0.12},
	{Capacity: trace.Resources{CPU: 0.35, Mem: 0.45}, Platform: "P0", Weight: 0.10},
	{Capacity: trace.Resources{CPU: 0.50, Mem: 0.50}, Platform: "P1", Weight: 0.14},
	{Capacity: trace.Resources{CPU: 0.50, Mem: 0.25}, Platform: "P1", Weight: 0.08},
	{Capacity: trace.Resources{CPU: 0.50, Mem: 0.75}, Platform: "P1", Weight: 0.05},
	{Capacity: trace.Resources{CPU: 0.60, Mem: 0.35}, Platform: "P2", Weight: 0.06},
	{Capacity: trace.Resources{CPU: 0.60, Mem: 0.60}, Platform: "P2", Weight: 0.05},
	{Capacity: trace.Resources{CPU: 0.60, Mem: 0.90}, Platform: "P2", Weight: 0.02},
	{Capacity: trace.Resources{CPU: 0.75, Mem: 0.50}, Platform: "P3", Weight: 0.04},
	{Capacity: trace.Resources{CPU: 0.75, Mem: 0.75}, Platform: "P3", Weight: 0.04},
	{Capacity: trace.Resources{CPU: 0.75, Mem: 1.00}, Platform: "P3", Weight: 0.02},
	{Capacity: trace.Resources{CPU: 1.00, Mem: 0.50}, Platform: "P4", Weight: 0.02},
	{Capacity: trace.Resources{CPU: 1.00, Mem: 0.75}, Platform: "P4", Weight: 0.02},
	{Capacity: trace.Resources{CPU: 1.00, Mem: 1.00}, Platform: "P4", Weight: 0.02},
	{Capacity: trace.Resources{CPU: 0.30, Mem: 0.60}, Platform: "P5", Weight: 0.01},
	{Capacity: trace.Resources{CPU: 0.30, Mem: 0.90}, Platform: "P5", Weight: 0.01},
	{Capacity: trace.Resources{CPU: 0.15, Mem: 0.15}, Platform: "P5", Weight: 0.01},
	{Capacity: trace.Resources{CPU: 0.90, Mem: 0.30}, Platform: "P6", Weight: 0.005},
	{Capacity: trace.Resources{CPU: 0.90, Mem: 0.15}, Platform: "P6", Weight: 0.0025},
	{Capacity: trace.Resources{CPU: 0.15, Mem: 0.45}, Platform: "P6", Weight: 0.0025},
}

// Resident is one instance placed on a machine, with the accounting data
// the scheduler needs for preemption and OOM-victim selection.
type Resident struct {
	Key      trace.InstanceKey
	Limit    trace.Resources
	Priority int
	Tier     trace.Tier
	// Usage is the most recent sampled usage; updated by the usage model
	// each sampling window. While a resident is placed, writes must go
	// through Machine.SetUsage or Machine.SetResidentUsage so the
	// machine's incremental usage aggregate stays consistent.
	Usage trace.Resources
	// Task is an opaque owner cookie: the scheduler stores its task
	// pointer here when it places the resident so per-window sampling
	// avoids a key-to-task map lookup. The cluster never reads it; it is
	// cleared when the scheduler recycles the resident.
	Task any
}

// Machine is one node of the cell with capacity, allocation, and resident
// accounting. All mutation goes through the Cell so that cell-level
// aggregates stay consistent. Allocation, usage, victim order and the
// overcommit ceiling are maintained incrementally: the placement fast
// path reads them in O(1) instead of rescanning residents.
type Machine struct {
	ID       trace.MachineID
	Capacity trace.Resources
	Platform string

	allocated  trace.Resources
	usageTotal trace.Resources
	residents  map[trace.InstanceKey]*Resident

	// gen counts state mutations (place, remove, limit update, usage
	// sample). The scheduler's score cache keys on it: an unchanged gen
	// guarantees every input to a machine's placement score is unchanged,
	// so memoized scores are exact, never approximations.
	gen uint64

	// victims caches the (priority asc, key asc) resident ordering and is
	// repaired lazily: membership mutations only mark it dirty, and the
	// next Residents call rebuilds it into a fresh slice. Slices already
	// handed out stay valid as stable snapshots.
	victims      []*Resident
	victimsDirty bool

	// ceil memoizes the allocation ceiling for ceilPolicy; recomputed
	// only when the policy changes (capacity is immutable after AddMachine).
	ceil       trace.Resources
	ceilPolicy OvercommitPolicy
	ceilValid  bool
}

// Allocated returns the summed limits of residents.
func (m *Machine) Allocated() trace.Resources { return m.allocated }

// NumResidents returns the number of placed instances.
func (m *Machine) NumResidents() int { return len(m.residents) }

// Gen returns the machine's mutation generation. Any change to the
// machine's allocation, residents, limits or sampled usage bumps it.
func (m *Machine) Gen() uint64 { return m.gen }

// Residents returns the resident list sorted by (priority asc, key) —
// i.e. preemption-victim order first. The slice is a cached snapshot:
// callers must not modify it, and it is structurally stable (it is
// replaced, not rewritten, on the next mutation), so evicting while
// iterating is safe — but entries removed from the machine belong to
// the remover afterwards (the scheduler recycles them), so a snapshot
// must not be retained across scheduling events nor its removed entries
// dereferenced.
func (m *Machine) Residents() []*Resident {
	if m.victimsDirty {
		out := make([]*Resident, 0, len(m.residents))
		for _, r := range m.residents {
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Priority != out[j].Priority {
				return out[i].Priority < out[j].Priority
			}
			if out[i].Key.Collection != out[j].Key.Collection {
				return out[i].Key.Collection < out[j].Key.Collection
			}
			return out[i].Key.Index < out[j].Key.Index
		})
		m.victims = out
		m.victimsDirty = false
	}
	return m.victims
}

// Resident returns the resident with the given key, or nil.
func (m *Machine) Resident(key trace.InstanceKey) *Resident {
	return m.residents[key]
}

// UsageTotal returns the summed last-sampled usage of all residents,
// maintained incrementally by Place/Remove/SetUsage.
func (m *Machine) UsageTotal() trace.Resources { return m.usageTotal }

// SetUsage records a resident's sampled usage, keeping the machine's
// usage aggregate consistent. It reports whether the resident exists.
func (m *Machine) SetUsage(key trace.InstanceKey, usage trace.Resources) bool {
	r := m.residents[key]
	if r == nil {
		return false
	}
	m.SetResidentUsage(r, usage)
	return true
}

// SetResidentUsage is SetUsage for a caller already holding the resident
// (e.g. from a Residents snapshot): same aggregate maintenance, no map
// lookup. The resident must currently be placed on m.
func (m *Machine) SetResidentUsage(r *Resident, usage trace.Resources) {
	m.usageTotal = m.usageTotal.Sub(r.Usage).Add(usage)
	m.clampAggregates()
	r.Usage = usage
	m.gen++
}

// mutated records a resident-set mutation: the victim order needs repair
// and cached scores are stale.
func (m *Machine) mutated() {
	m.victimsDirty = true
	m.gen++
}

// clampAggregates zeroes numeric drift so long simulations cannot
// accumulate negative aggregates; with no residents the aggregates are
// reset to exactly zero.
func (m *Machine) clampAggregates() {
	if len(m.residents) == 0 {
		m.allocated = trace.Resources{}
		m.usageTotal = trace.Resources{}
		return
	}
	if m.allocated.CPU < 0 {
		m.allocated.CPU = 0
	}
	if m.allocated.Mem < 0 {
		m.allocated.Mem = 0
	}
	if m.usageTotal.CPU < 0 {
		m.usageTotal.CPU = 0
	}
	if m.usageTotal.Mem < 0 {
		m.usageTotal.Mem = 0
	}
}

// OvercommitPolicy bounds the ratio of summed limits to capacity per
// resource dimension (§4: in 2011 CPU was more aggressively over-committed
// than memory; by 2019 they are comparable).
type OvercommitPolicy struct {
	CPUFactor float64
	MemFactor float64
}

// AllocationCeiling returns the machine allocation bound under the policy.
func (p OvercommitPolicy) AllocationCeiling(capacity trace.Resources) trace.Resources {
	return trace.Resources{
		CPU: capacity.CPU * p.CPUFactor,
		Mem: capacity.Mem * p.MemFactor,
	}
}

// Ceiling returns the machine's allocation ceiling under the policy,
// memoized until the policy changes.
func (m *Machine) Ceiling(policy OvercommitPolicy) trace.Resources {
	if !m.ceilValid || policy != m.ceilPolicy {
		m.ceil = policy.AllocationCeiling(m.Capacity)
		m.ceilPolicy = policy
		m.ceilValid = true
	}
	return m.ceil
}

// FitsLimit reports whether a request fits on m under the overcommit
// policy, considering current allocation.
func (m *Machine) FitsLimit(request trace.Resources, policy OvercommitPolicy) bool {
	ceiling := m.Ceiling(policy)
	after := m.allocated.Add(request)
	return after.CPU <= ceiling.CPU+1e-12 && after.Mem <= ceiling.Mem+1e-12
}

// Cell is a set of machines operated as one scheduling domain.
type Cell struct {
	Name string

	machines map[trace.MachineID]*Machine
	ids      []trace.MachineID // sorted, kept in sync with machines
	// occ lists machines that currently hold at least one resident, in
	// ascending ID order. Place/Remove maintain it on the 0↔1 resident
	// transitions so per-window sampling walks only occupied machines.
	occ      []*Machine
	capacity trace.Resources // total live capacity
	nextID   trace.MachineID
}

// NewCell returns an empty cell.
func NewCell(name string) *Cell {
	return &Cell{
		Name:     name,
		machines: make(map[trace.MachineID]*Machine),
		nextID:   1,
	}
}

// AddMachine creates a machine with the given shape and returns it.
func (c *Cell) AddMachine(capacity trace.Resources, platform string) *Machine {
	m := &Machine{
		ID:        c.nextID,
		Capacity:  capacity,
		Platform:  platform,
		residents: make(map[trace.InstanceKey]*Resident),
	}
	c.nextID++
	c.machines[m.ID] = m
	c.ids = append(c.ids, m.ID)
	c.capacity = c.capacity.Add(capacity)
	return m
}

// RemoveMachine deletes a machine from the cell and returns its residents
// (which the caller must reschedule). Removing an unknown machine panics.
func (c *Cell) RemoveMachine(id trace.MachineID) []*Resident {
	m, ok := c.machines[id]
	if !ok {
		panic(fmt.Sprintf("cluster: removing unknown machine %d", id))
	}
	res := m.Residents()
	for _, r := range res {
		c.Remove(id, r.Key)
	}
	delete(c.machines, id)
	// ids is sorted ascending (AddMachine appends monotonically increasing
	// IDs and removals preserve order), so the slot is found by binary
	// search rather than a linear scan.
	if i := sort.Search(len(c.ids), func(i int) bool { return c.ids[i] >= id }); i < len(c.ids) && c.ids[i] == id {
		c.ids = append(c.ids[:i], c.ids[i+1:]...)
	}
	c.capacity = c.capacity.Sub(m.Capacity)
	return res
}

// Machine returns the machine with the given ID, or nil.
func (c *Cell) Machine(id trace.MachineID) *Machine { return c.machines[id] }

// NumMachines returns the count of live machines.
func (c *Cell) NumMachines() int { return len(c.machines) }

// Capacity returns the total live capacity of the cell.
func (c *Cell) Capacity() trace.Resources { return c.capacity }

// MachineIDs returns the live machine IDs in ascending order.
func (c *Cell) MachineIDs() []trace.MachineID { return c.ids }

// OccupiedMachines returns the machines holding at least one resident,
// in ascending ID order. The slice is the cell's live index: callers
// must not modify it or retain it across placements.
func (c *Cell) OccupiedMachines() []*Machine { return c.occ }

// occIndex returns the position of (or insertion point for) machine ID
// id in the occupied index.
func (c *Cell) occIndex(id trace.MachineID) int {
	return sort.Search(len(c.occ), func(i int) bool { return c.occ[i].ID >= id })
}

// occupy inserts m into the occupied index (first resident arrived).
func (c *Cell) occupy(m *Machine) {
	i := c.occIndex(m.ID)
	c.occ = append(c.occ, nil)
	copy(c.occ[i+1:], c.occ[i:])
	c.occ[i] = m
}

// vacate drops m from the occupied index (last resident left).
func (c *Cell) vacate(m *Machine) {
	if i := c.occIndex(m.ID); i < len(c.occ) && c.occ[i] == m {
		c.occ = append(c.occ[:i], c.occ[i+1:]...)
	}
}

// Machines calls fn for every live machine in ID order.
func (c *Cell) Machines(fn func(m *Machine)) {
	for _, id := range c.ids {
		fn(c.machines[id])
	}
}

// Place adds a resident to a machine. It panics on unknown machines or
// duplicate placement — both indicate scheduler bugs, not runtime
// conditions.
func (c *Cell) Place(id trace.MachineID, r *Resident) {
	m, ok := c.machines[id]
	if !ok {
		panic(fmt.Sprintf("cluster: placing on unknown machine %d", id))
	}
	if _, dup := m.residents[r.Key]; dup {
		panic(fmt.Sprintf("cluster: instance %s already on machine %d", r.Key, id))
	}
	m.residents[r.Key] = r
	m.allocated = m.allocated.Add(r.Limit)
	m.usageTotal = m.usageTotal.Add(r.Usage)
	if len(m.residents) == 1 {
		c.occupy(m)
	}
	m.mutated()
}

// Remove detaches a resident from a machine and returns it. Removing a
// non-resident instance panics.
func (c *Cell) Remove(id trace.MachineID, key trace.InstanceKey) *Resident {
	m, ok := c.machines[id]
	if !ok {
		panic(fmt.Sprintf("cluster: removing from unknown machine %d", id))
	}
	r, ok := m.residents[key]
	if !ok {
		panic(fmt.Sprintf("cluster: instance %s not on machine %d", key, id))
	}
	delete(m.residents, key)
	m.allocated = m.allocated.Sub(r.Limit)
	m.usageTotal = m.usageTotal.Sub(r.Usage)
	if len(m.residents) == 0 {
		c.vacate(m)
	}
	m.clampAggregates()
	m.mutated()
	return r
}

// UpdateLimit changes a resident's limit in place, keeping the machine's
// allocation aggregate consistent. Used by Autopilot's vertical scaling.
func (c *Cell) UpdateLimit(id trace.MachineID, key trace.InstanceKey, limit trace.Resources) {
	m, ok := c.machines[id]
	if !ok {
		panic(fmt.Sprintf("cluster: updating on unknown machine %d", id))
	}
	r, ok := m.residents[key]
	if !ok {
		panic(fmt.Sprintf("cluster: instance %s not on machine %d", key, id))
	}
	m.allocated = m.allocated.Sub(r.Limit).Add(limit)
	r.Limit = limit
	// Limit changes alter fit and score but not the victim order (which
	// sorts by priority and key), so only the generation moves.
	m.gen++
}

// TotalAllocated sums limit allocation across all machines.
func (c *Cell) TotalAllocated() trace.Resources {
	var sum trace.Resources
	for _, id := range c.ids {
		sum = sum.Add(c.machines[id].allocated)
	}
	return sum
}

// BuildCell creates a cell of n machines drawn from the shape catalog
// with the catalog's weights, using src for shape selection.
func BuildCell(name string, n int, shapes []Shape, src *rng.Source) *Cell {
	if len(shapes) == 0 {
		panic("cluster: empty shape catalog")
	}
	weights := make([]float64, len(shapes))
	for i, s := range shapes {
		weights[i] = s.Weight
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	c := NewCell(name)
	for i := 0; i < n; i++ {
		u := src.Float64() * total
		j := sort.SearchFloat64s(cum, u)
		if j >= len(shapes) {
			j = len(shapes) - 1
		}
		c.AddMachine(shapes[j].Capacity, shapes[j].Platform)
	}
	return c
}

// ShapeStats counts machines per distinct (CPU, Mem) shape; used by the
// Figure 1 analysis and Table 1's "machine shapes" row.
func (c *Cell) ShapeStats() map[trace.Resources]int {
	out := make(map[trace.Resources]int)
	for _, id := range c.ids {
		out[c.machines[id].Capacity]++
	}
	return out
}

// Platforms returns the set of distinct hardware platforms in the cell.
func (c *Cell) Platforms() map[string]int {
	out := make(map[string]int)
	for _, id := range c.ids {
		out[c.machines[id].Platform]++
	}
	return out
}
