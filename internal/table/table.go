// Package table is a small in-memory columnar table engine — the
// reproduction's stand-in for BigQuery (§3, §9 "Using BigQuery"). The
// paper's analyses are single-pass scans with filters, group-bys and
// aggregations; this engine expresses exactly those, over typed columns,
// without any external dependency.
package table

import (
	"fmt"
	"sort"
	"strings"
)

// ColType is a column's value type.
type ColType int

// Column types.
const (
	Int64 ColType = iota
	Float64
	String
)

// String names the type.
func (c ColType) String() string {
	switch c {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("ColType(%d)", int(c))
	}
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Type ColType
}

// Table is an immutable-schema, append-only columnar table.
type Table struct {
	cols    []Column
	byName  map[string]int
	ints    map[int][]int64
	floats  map[int][]float64
	strings map[int][]string
	rows    int
}

// New creates an empty table with the given schema. Duplicate or empty
// column names panic: schemas are static program data, not user input.
func New(cols ...Column) *Table {
	t := &Table{
		cols:    cols,
		byName:  make(map[string]int, len(cols)),
		ints:    make(map[int][]int64),
		floats:  make(map[int][]float64),
		strings: make(map[int][]string),
	}
	for i, c := range cols {
		if c.Name == "" {
			panic("table: empty column name")
		}
		if _, dup := t.byName[c.Name]; dup {
			panic(fmt.Sprintf("table: duplicate column %q", c.Name))
		}
		t.byName[c.Name] = i
	}
	return t
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// Columns returns the schema.
func (t *Table) Columns() []Column { return t.cols }

func (t *Table) colIndex(name string) int {
	i, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("table: unknown column %q", name))
	}
	return i
}

// Append adds one row. Values must match the schema's arity and types
// (int64, float64 or string per column); mismatches panic, because rows are
// produced by adapters under our control.
func (t *Table) Append(values ...any) {
	if len(values) != len(t.cols) {
		panic(fmt.Sprintf("table: row arity %d != schema arity %d", len(values), len(t.cols)))
	}
	for i, v := range values {
		switch t.cols[i].Type {
		case Int64:
			x, ok := v.(int64)
			if !ok {
				panic(fmt.Sprintf("table: column %q expects int64, got %T", t.cols[i].Name, v))
			}
			t.ints[i] = append(t.ints[i], x)
		case Float64:
			x, ok := v.(float64)
			if !ok {
				panic(fmt.Sprintf("table: column %q expects float64, got %T", t.cols[i].Name, v))
			}
			t.floats[i] = append(t.floats[i], x)
		case String:
			x, ok := v.(string)
			if !ok {
				panic(fmt.Sprintf("table: column %q expects string, got %T", t.cols[i].Name, v))
			}
			t.strings[i] = append(t.strings[i], x)
		}
	}
	t.rows++
}

// Ints returns the backing slice of an int64 column.
func (t *Table) Ints(name string) []int64 {
	i := t.colIndex(name)
	if t.cols[i].Type != Int64 {
		panic(fmt.Sprintf("table: column %q is %v, not int64", name, t.cols[i].Type))
	}
	return t.ints[i]
}

// Floats returns the backing slice of a float64 column.
func (t *Table) Floats(name string) []float64 {
	i := t.colIndex(name)
	if t.cols[i].Type != Float64 {
		panic(fmt.Sprintf("table: column %q is %v, not float64", name, t.cols[i].Type))
	}
	return t.floats[i]
}

// Strings returns the backing slice of a string column.
func (t *Table) Strings(name string) []string {
	i := t.colIndex(name)
	if t.cols[i].Type != String {
		panic(fmt.Sprintf("table: column %q is %v, not string", name, t.cols[i].Type))
	}
	return t.strings[i]
}

// value returns the row'th value of column i as any.
func (t *Table) value(col, row int) any {
	switch t.cols[col].Type {
	case Int64:
		return t.ints[col][row]
	case Float64:
		return t.floats[col][row]
	default:
		return t.strings[col][row]
	}
}

// Row returns one row as a name→value map (for tests and display; queries
// use columnar access).
func (t *Table) Row(i int) map[string]any {
	m := make(map[string]any, len(t.cols))
	for c := range t.cols {
		m[t.cols[c].Name] = t.value(c, i)
	}
	return m
}

// Format renders the table as an aligned text block (up to maxRows rows).
func (t *Table) Format(maxRows int) string {
	var b strings.Builder
	widths := make([]int, len(t.cols))
	header := make([]string, len(t.cols))
	for i, c := range t.cols {
		header[i] = c.Name
		widths[i] = len(c.Name)
	}
	n := t.rows
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	cells := make([][]string, n)
	for r := 0; r < n; r++ {
		cells[r] = make([]string, len(t.cols))
		for c := range t.cols {
			s := fmt.Sprintf("%v", t.value(c, r))
			if t.cols[c].Type == Float64 {
				s = fmt.Sprintf("%.6g", t.floats[c][r])
			}
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	writeRow := func(row []string) {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	if n < t.rows {
		fmt.Fprintf(&b, "... (%d more rows)\n", t.rows-n)
	}
	return b.String()
}

// sortIdx sorts row indexes by the given columns (all ascending unless the
// name is prefixed with '-').
func (t *Table) sortIdx(idx []int, keys []string) {
	type keySpec struct {
		col  int
		desc bool
	}
	specs := make([]keySpec, len(keys))
	for i, k := range keys {
		desc := false
		if strings.HasPrefix(k, "-") {
			desc = true
			k = k[1:]
		}
		specs[i] = keySpec{col: t.colIndex(k), desc: desc}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := idx[a], idx[b]
		for _, s := range specs {
			var cmp int
			switch t.cols[s.col].Type {
			case Int64:
				va, vb := t.ints[s.col][ra], t.ints[s.col][rb]
				switch {
				case va < vb:
					cmp = -1
				case va > vb:
					cmp = 1
				}
			case Float64:
				va, vb := t.floats[s.col][ra], t.floats[s.col][rb]
				switch {
				case va < vb:
					cmp = -1
				case va > vb:
					cmp = 1
				}
			default:
				cmp = strings.Compare(t.strings[s.col][ra], t.strings[s.col][rb])
			}
			if cmp != 0 {
				if s.desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return false
	})
}
