package table

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Table {
	t := New(
		Column{"tier", String},
		Column{"cpu", Float64},
		Column{"tasks", Int64},
	)
	t.Append("prod", 0.5, int64(3))
	t.Append("beb", 1.5, int64(100))
	t.Append("prod", 0.25, int64(1))
	t.Append("free", 0.1, int64(7))
	t.Append("beb", 2.5, int64(50))
	return t
}

func TestAppendAndAccessors(t *testing.T) {
	tb := sample()
	if tb.NumRows() != 5 {
		t.Fatalf("rows %d", tb.NumRows())
	}
	if len(tb.Columns()) != 3 {
		t.Fatal("columns")
	}
	if tb.Strings("tier")[1] != "beb" {
		t.Fatal("string column")
	}
	if tb.Floats("cpu")[4] != 2.5 {
		t.Fatal("float column")
	}
	if tb.Ints("tasks")[0] != 3 {
		t.Fatal("int column")
	}
	row := tb.Row(3)
	if row["tier"] != "free" || row["cpu"] != 0.1 || row["tasks"] != int64(7) {
		t.Fatalf("row %v", row)
	}
}

func TestSchemaPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("dup column", func() { New(Column{"a", Int64}, Column{"a", String}) })
	mustPanic("empty name", func() { New(Column{"", Int64}) })
	tb := sample()
	mustPanic("arity", func() { tb.Append("x", 1.0) })
	mustPanic("type", func() { tb.Append("x", "not-a-float", int64(1)) })
	mustPanic("unknown col", func() { tb.Floats("nope") })
	mustPanic("wrong type access", func() { tb.Ints("cpu") })
}

func TestWhereAndCount(t *testing.T) {
	tb := sample()
	n := From(tb).Where(EqString("tier", "prod")).Count()
	if n != 2 {
		t.Fatalf("prod rows %d", n)
	}
	n = From(tb).Where(And(EqString("tier", "beb"), GtFloat("cpu", 2))).Count()
	if n != 1 {
		t.Fatalf("and rows %d", n)
	}
	n = From(tb).Where(Or(EqString("tier", "free"), EqInt("tasks", 3))).Count()
	if n != 2 {
		t.Fatalf("or rows %d", n)
	}
	n = From(tb).Where(Not(EqString("tier", "prod"))).Count()
	if n != 3 {
		t.Fatalf("not rows %d", n)
	}
	n = From(tb).Where(And(GeInt("tasks", 7), LtInt("tasks", 100))).Count()
	if n != 2 {
		t.Fatalf("int range rows %d", n)
	}
	n = From(tb).Where(LtFloat("cpu", 0.3)).Count()
	if n != 2 {
		t.Fatalf("lt rows %d", n)
	}
}

func TestAggregates(t *testing.T) {
	tb := sample()
	q := From(tb)
	if got := q.Sum("cpu"); math.Abs(got-4.85) > 1e-12 {
		t.Fatalf("sum %v", got)
	}
	if got := q.Mean("cpu"); math.Abs(got-0.97) > 1e-12 {
		t.Fatalf("mean %v", got)
	}
	empty := From(tb).Where(EqString("tier", "nope"))
	if !math.IsNaN(empty.Mean("cpu")) {
		t.Fatal("mean of empty selection should be NaN")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	tb := sample()
	cpus := From(tb).OrderBy("cpu").FloatCol("cpu")
	for i := 1; i < len(cpus); i++ {
		if cpus[i] < cpus[i-1] {
			t.Fatalf("not sorted: %v", cpus)
		}
	}
	desc := From(tb).OrderBy("-cpu").FloatCol("cpu")
	if desc[0] != 2.5 {
		t.Fatalf("desc sort %v", desc)
	}
	multi := From(tb).OrderBy("tier", "-cpu")
	tiers := multi.StringCol("tier")
	if tiers[0] != "beb" || tiers[2] != "free" {
		t.Fatalf("multi sort %v", tiers)
	}
	vals := multi.FloatCol("cpu")
	if vals[0] != 2.5 || vals[1] != 1.5 {
		t.Fatalf("multi sort cpu %v", vals)
	}
	limited := From(tb).OrderBy("cpu").Limit(2).FloatCol("cpu")
	if len(limited) != 2 || limited[1] != 0.25 {
		t.Fatalf("limit %v", limited)
	}
	if got := From(tb).Limit(-1).Count(); got != 0 {
		t.Fatalf("negative limit %d", got)
	}
	if got := From(tb).Limit(99).Count(); got != 5 {
		t.Fatalf("over-limit %d", got)
	}
}

func TestIntAndStringCol(t *testing.T) {
	tb := sample()
	ints := From(tb).Where(EqString("tier", "beb")).IntCol("tasks")
	if len(ints) != 2 || ints[0] != 100 || ints[1] != 50 {
		t.Fatalf("int col %v", ints)
	}
}

func TestGroupBy(t *testing.T) {
	tb := sample()
	g := From(tb).GroupBy([]string{"tier"},
		Count("n"), Sum("cpu_sum", "cpu"), Mean("cpu_mean", "cpu"),
		Min("cpu_min", "cpu"), Max("cpu_max", "cpu"))
	if g.NumRows() != 3 {
		t.Fatalf("groups %d", g.NumRows())
	}
	// First-appearance order: prod, beb, free.
	tiers := g.Strings("tier")
	if tiers[0] != "prod" || tiers[1] != "beb" || tiers[2] != "free" {
		t.Fatalf("group order %v", tiers)
	}
	if g.Ints("n")[1] != 2 {
		t.Fatalf("beb count %d", g.Ints("n")[1])
	}
	if math.Abs(g.Floats("cpu_sum")[1]-4.0) > 1e-12 {
		t.Fatalf("beb sum %v", g.Floats("cpu_sum")[1])
	}
	if math.Abs(g.Floats("cpu_mean")[0]-0.375) > 1e-12 {
		t.Fatalf("prod mean %v", g.Floats("cpu_mean")[0])
	}
	if g.Floats("cpu_min")[1] != 1.5 || g.Floats("cpu_max")[1] != 2.5 {
		t.Fatal("beb min/max")
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	tb := New(Column{"a", String}, Column{"b", Int64}, Column{"v", Float64})
	tb.Append("x", int64(1), 1.0)
	tb.Append("x", int64(2), 2.0)
	tb.Append("x", int64(1), 3.0)
	g := From(tb).GroupBy([]string{"a", "b"}, Sum("s", "v"))
	if g.NumRows() != 2 {
		t.Fatalf("groups %d", g.NumRows())
	}
	if g.Floats("s")[0] != 4.0 {
		t.Fatalf("group sum %v", g.Floats("s")[0])
	}
}

func TestMaterialize(t *testing.T) {
	tb := sample()
	m := From(tb).Where(EqString("tier", "prod")).OrderBy("-cpu").Materialize()
	if m.NumRows() != 2 {
		t.Fatalf("materialized rows %d", m.NumRows())
	}
	if m.Floats("cpu")[0] != 0.5 {
		t.Fatalf("materialized order %v", m.Floats("cpu"))
	}
	// Appending to the copy must not affect the original.
	m.Append("prod", 9.0, int64(9))
	if tb.NumRows() != 5 {
		t.Fatal("materialize aliased the original")
	}
}

func TestQuantile(t *testing.T) {
	tb := New(Column{"v", Float64})
	for _, v := range []float64{1, 2, 3, 4, 5} {
		tb.Append(v)
	}
	q := From(tb)
	if got := q.Quantile("v", 0.5); got != 3 {
		t.Fatalf("median %v", got)
	}
	if got := q.Quantile("v", 0); got != 1 {
		t.Fatalf("q0 %v", got)
	}
	if got := q.Quantile("v", 1); got != 5 {
		t.Fatalf("q1 %v", got)
	}
	if !math.IsNaN(From(tb).Where(GtFloat("v", 100)).Quantile("v", 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestFormat(t *testing.T) {
	tb := sample()
	s := tb.Format(3)
	if !strings.Contains(s, "tier") || !strings.Contains(s, "prod") {
		t.Fatalf("format output:\n%s", s)
	}
	if !strings.Contains(s, "2 more rows") {
		t.Fatalf("format should note truncation:\n%s", s)
	}
	full := tb.Format(0)
	if strings.Contains(full, "more rows") {
		t.Fatalf("full format should not truncate:\n%s", full)
	}
}

// Property: GroupBy counts partition the selection — group counts sum to
// the number of selected rows.
func TestGroupByPartitionProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		tb := New(Column{"k", Int64}, Column{"v", Float64})
		for _, v := range vals {
			tb.Append(int64(v%5), float64(v))
		}
		g := From(tb).GroupBy([]string{"k"}, Count("n"))
		var total int64
		for _, n := range g.Ints("n") {
			total += n
		}
		return total == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Where(p) + Where(Not(p)) partition the rows.
func TestWherePartitionProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		tb := New(Column{"v", Float64})
		for _, v := range vals {
			tb.Append(float64(v))
		}
		p := GtFloat("v", 128)
		a := From(tb).Where(p).Count()
		b := From(tb).Where(Not(p)).Count()
		return a+b == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGroupBy(b *testing.B) {
	tb := New(Column{"k", Int64}, Column{"v", Float64})
	for i := 0; i < 100000; i++ {
		tb.Append(int64(i%64), float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		From(tb).GroupBy([]string{"k"}, Sum("s", "v"), Count("n"))
	}
}
