package table

import (
	"fmt"
	"math"
	"sort"
)

// Predicate decides whether a row of a table is selected.
type Predicate func(t *Table, row int) bool

// EqString selects rows whose string column equals v.
func EqString(col, v string) Predicate {
	return func(t *Table, row int) bool { return t.Strings(col)[row] == v }
}

// EqInt selects rows whose int column equals v.
func EqInt(col string, v int64) Predicate {
	return func(t *Table, row int) bool { return t.Ints(col)[row] == v }
}

// GtFloat selects rows whose float column is > v.
func GtFloat(col string, v float64) Predicate {
	return func(t *Table, row int) bool { return t.Floats(col)[row] > v }
}

// LtFloat selects rows whose float column is < v.
func LtFloat(col string, v float64) Predicate {
	return func(t *Table, row int) bool { return t.Floats(col)[row] < v }
}

// GeInt selects rows whose int column is >= v.
func GeInt(col string, v int64) Predicate {
	return func(t *Table, row int) bool { return t.Ints(col)[row] >= v }
}

// LtInt selects rows whose int column is < v.
func LtInt(col string, v int64) Predicate {
	return func(t *Table, row int) bool { return t.Ints(col)[row] < v }
}

// And combines predicates conjunctively.
func And(ps ...Predicate) Predicate {
	return func(t *Table, row int) bool {
		for _, p := range ps {
			if !p(t, row) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(ps ...Predicate) Predicate {
	return func(t *Table, row int) bool {
		for _, p := range ps {
			if p(t, row) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return func(t *Table, row int) bool { return !p(t, row) }
}

// Query is a lazy scan over a table: a selection of row indexes plus
// pending transforms, executed when a terminal method is called.
type Query struct {
	t   *Table
	idx []int
}

// From starts a query selecting every row of t.
func From(t *Table) *Query {
	idx := make([]int, t.rows)
	for i := range idx {
		idx[i] = i
	}
	return &Query{t: t, idx: idx}
}

// Where filters the selection.
func (q *Query) Where(p Predicate) *Query {
	out := q.idx[:0:0]
	for _, r := range q.idx {
		if p(q.t, r) {
			out = append(out, r)
		}
	}
	return &Query{t: q.t, idx: out}
}

// OrderBy sorts the selection by the named columns; prefix a name with '-'
// for descending order.
func (q *Query) OrderBy(keys ...string) *Query {
	idx := append([]int(nil), q.idx...)
	q.t.sortIdx(idx, keys)
	return &Query{t: q.t, idx: idx}
}

// Limit truncates the selection to at most n rows.
func (q *Query) Limit(n int) *Query {
	if n < 0 {
		n = 0
	}
	if n > len(q.idx) {
		n = len(q.idx)
	}
	return &Query{t: q.t, idx: q.idx[:n]}
}

// Count returns the number of selected rows.
func (q *Query) Count() int { return len(q.idx) }

// FloatCol materializes a float column over the selection.
func (q *Query) FloatCol(name string) []float64 {
	col := q.t.Floats(name)
	out := make([]float64, len(q.idx))
	for i, r := range q.idx {
		out[i] = col[r]
	}
	return out
}

// IntCol materializes an int column over the selection.
func (q *Query) IntCol(name string) []int64 {
	col := q.t.Ints(name)
	out := make([]int64, len(q.idx))
	for i, r := range q.idx {
		out[i] = col[r]
	}
	return out
}

// StringCol materializes a string column over the selection.
func (q *Query) StringCol(name string) []string {
	col := q.t.Strings(name)
	out := make([]string, len(q.idx))
	for i, r := range q.idx {
		out[i] = col[r]
	}
	return out
}

// Sum returns the sum of a float column over the selection.
func (q *Query) Sum(name string) float64 {
	col := q.t.Floats(name)
	s := 0.0
	for _, r := range q.idx {
		s += col[r]
	}
	return s
}

// Mean returns the mean of a float column over the selection (NaN if the
// selection is empty).
func (q *Query) Mean(name string) float64 {
	if len(q.idx) == 0 {
		return math.NaN()
	}
	return q.Sum(name) / float64(len(q.idx))
}

// Materialize copies the selection into a new standalone table.
func (q *Query) Materialize() *Table {
	out := New(q.t.cols...)
	for _, r := range q.idx {
		vals := make([]any, len(q.t.cols))
		for c := range q.t.cols {
			vals[c] = q.t.value(c, r)
		}
		out.Append(vals...)
	}
	return out
}

// Agg is an aggregation over a group of rows.
type Agg struct {
	// Name of the output column.
	Name string
	// Col is the input column ("" for Count).
	Col string
	// Kind selects the aggregation function.
	Kind AggKind
}

// AggKind enumerates supported aggregation functions.
type AggKind int

// Aggregation kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMean
	AggMin
	AggMax
)

// Count is an Agg counting rows per group.
func Count(name string) Agg { return Agg{Name: name, Kind: AggCount} }

// Sum aggregates the sum of a float column.
func Sum(name, col string) Agg { return Agg{Name: name, Col: col, Kind: AggSum} }

// Mean aggregates the mean of a float column.
func Mean(name, col string) Agg { return Agg{Name: name, Col: col, Kind: AggMean} }

// Min aggregates the minimum of a float column.
func Min(name, col string) Agg { return Agg{Name: name, Col: col, Kind: AggMin} }

// Max aggregates the maximum of a float column.
func Max(name, col string) Agg { return Agg{Name: name, Col: col, Kind: AggMax} }

// GroupBy groups the selection by the named key columns and computes the
// aggregations, returning a new table with one row per group. Key columns
// keep their types; aggregate columns are float64 except counts (int64).
// Groups are emitted in first-appearance order.
func (q *Query) GroupBy(keys []string, aggs ...Agg) *Table {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		keyIdx[i] = q.t.colIndex(k)
	}

	outCols := make([]Column, 0, len(keys)+len(aggs))
	for _, k := range keys {
		outCols = append(outCols, q.t.cols[q.t.colIndex(k)])
	}
	for _, a := range aggs {
		typ := Float64
		if a.Kind == AggCount {
			typ = Int64
		}
		outCols = append(outCols, Column{Name: a.Name, Type: typ})
	}

	type groupState struct {
		ord    int
		count  int64
		sums   []float64
		mins   []float64
		maxs   []float64
		sample []any // key values
	}
	groups := make(map[string]*groupState)
	var order []*groupState

	for _, r := range q.idx {
		// Build a composite key string; '\x00' separators keep distinct
		// tuples distinct.
		key := ""
		for _, ci := range keyIdx {
			key += fmt.Sprintf("%v\x00", q.t.value(ci, r))
		}
		g, ok := groups[key]
		if !ok {
			g = &groupState{
				ord:  len(order),
				sums: make([]float64, len(aggs)),
				mins: make([]float64, len(aggs)),
				maxs: make([]float64, len(aggs)),
			}
			for i := range aggs {
				g.mins[i] = math.Inf(1)
				g.maxs[i] = math.Inf(-1)
			}
			g.sample = make([]any, len(keyIdx))
			for i, ci := range keyIdx {
				g.sample[i] = q.t.value(ci, r)
			}
			groups[key] = g
			order = append(order, g)
		}
		g.count++
		for i, a := range aggs {
			if a.Kind == AggCount {
				continue
			}
			v := q.t.Floats(a.Col)[r]
			g.sums[i] += v
			if v < g.mins[i] {
				g.mins[i] = v
			}
			if v > g.maxs[i] {
				g.maxs[i] = v
			}
		}
	}

	out := New(outCols...)
	for _, g := range order {
		vals := make([]any, 0, len(outCols))
		vals = append(vals, g.sample...)
		for i, a := range aggs {
			switch a.Kind {
			case AggCount:
				vals = append(vals, g.count)
			case AggSum:
				vals = append(vals, g.sums[i])
			case AggMean:
				vals = append(vals, g.sums[i]/float64(g.count))
			case AggMin:
				vals = append(vals, g.mins[i])
			case AggMax:
				vals = append(vals, g.maxs[i])
			}
		}
		out.Append(vals...)
	}
	return out
}

// Quantile returns the q-quantile of a float column over the selection.
func (q *Query) Quantile(name string, quantile float64) float64 {
	vals := q.FloatCol(name)
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	if quantile <= 0 {
		return vals[0]
	}
	if quantile >= 1 {
		return vals[len(vals)-1]
	}
	pos := quantile * float64(len(vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(vals) {
		return vals[lo]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}
