package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPairedDiffBasics(t *testing.T) {
	xs := []float64{10, 12, 11, 13}
	ys := []float64{11, 13.5, 11.5, 14}
	d, err := PairedDiff(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// diffs = {1, 1.5, 0.5, 1}: mean 1, stddev sqrt(1/6).
	if d.N != 4 || math.Abs(d.Mean-1) > 1e-12 {
		t.Fatalf("mean diff: %+v", d)
	}
	if want := math.Sqrt(1.0 / 6.0); math.Abs(d.Stddev-want) > 1e-12 {
		t.Fatalf("stddev %g, want %g", d.Stddev, want)
	}
	if d.Min != 0.5 || d.Max != 1.5 {
		t.Fatalf("range: %+v", d)
	}
	// Paired-t half-width: t_{0.975,3} * s / sqrt(4).
	if want := TCritical95(3) * d.Stddev / 2; math.Abs(d.CI95-want) > 1e-12 {
		t.Fatalf("CI95 %g, want %g", d.CI95, want)
	}
}

func TestPairedDiffLengthMismatch(t *testing.T) {
	_, err := PairedDiff([]float64{1, 2}, []float64{1})
	if err == nil || !strings.Contains(err.Error(), "2 vs 1") {
		t.Fatalf("length mismatch error: %v", err)
	}
}

// TestPairedBeatsUnpairedUnderCRN builds the textbook CRN situation —
// shared per-replicate noise plus a small constant treatment effect —
// and checks the paired interval is strictly tighter than the Welch
// unpaired interval on the same data.
func TestPairedBeatsUnpairedUnderCRN(t *testing.T) {
	// Large common noise (per-replicate "seed effect"), tiny constant shift.
	noise := []float64{5, -3, 8, -6, 2, -4, 7, -1}
	xs := make([]float64, len(noise))
	ys := make([]float64, len(noise))
	for i, w := range noise {
		xs[i] = 100 + w
		ys[i] = 100.25 + w
	}
	d, err := PairedDiff(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	unpaired := UnpairedDiffCI95(xs, ys)
	if math.Abs(d.Mean-0.25) > 1e-12 {
		t.Fatalf("mean diff %g, want 0.25", d.Mean)
	}
	// Perfectly correlated noise: paired CI is exactly 0 here, unpaired is
	// dominated by the noise spread.
	if d.CI95 >= unpaired {
		t.Fatalf("paired CI95 %g not tighter than unpaired %g", d.CI95, unpaired)
	}
	if unpaired <= 0 {
		t.Fatalf("unpaired CI95 %g, want > 0", unpaired)
	}
}

func TestUnpairedDiffCI95Degenerate(t *testing.T) {
	if ci := UnpairedDiffCI95([]float64{1}, []float64{2, 3}); ci != 0 {
		t.Fatalf("n<2 sample: CI %g, want 0", ci)
	}
	if ci := UnpairedDiffCI95([]float64{1, 1}, []float64{2, 2}); ci != 0 {
		t.Fatalf("zero-variance samples: CI %g, want 0", ci)
	}
	// Equal-variance balanced case: Welch df = 2n-2, se = s*sqrt(2/n).
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 3, 4, 5}
	sx := SummarizeRuns(xs)
	want := TCritical95(6) * sx.Stddev * math.Sqrt(2.0/4.0)
	if got := UnpairedDiffCI95(xs, ys); math.Abs(got-want) > 1e-12 {
		t.Fatalf("balanced Welch CI %g, want %g", got, want)
	}
}
