package stats

import (
	"fmt"
	"math"
	"sort"
)

// Digest is a mergeable streaming quantile sketch in the style of
// Dunning's merging t-digest: observations accumulate in a small buffer
// and are periodically compressed into weighted centroids whose maximum
// weight shrinks toward the distribution's tails, so extreme quantiles
// (p99 and beyond) stay sharp while the sketch holds O(compression)
// state regardless of how many points stream through. The fleet rollup
// uses one Digest per scalar metric to compute cross-cell percentiles
// online, and reducers can adopt it later for the per-row sample vectors
// (delay, slack, tasks-per-job) that still grow with the horizon.
//
// Determinism: Add, Merge and Quantile are pure sequential code with no
// randomness and no map iteration, so the same sequence of operations
// yields bit-identical state and quantiles — the property the fleet's
// parallelism-independent rollup relies on (the engine delivers results
// in spec order at any parallelism).
//
// The zero value is not usable; construct with NewDigest.
type Digest struct {
	compression float64
	// centroids are the compressed summary, sorted by mean ascending.
	centroids []centroid
	// buffer holds points not yet compressed.
	buffer []float64
	// count is the total weight across centroids and buffer.
	count    float64
	min, max float64
}

// centroid is one weighted cluster of nearby observations.
type centroid struct {
	mean   float64
	weight float64
}

// DefaultCompression balances accuracy and size: ~1% worst-case rank
// error at the median, far better in the tails, with a few hundred
// centroids retained.
const DefaultCompression = 100

// NewDigest returns an empty digest. Larger compression means more
// retained centroids and tighter quantile error; values below 20 are
// clamped to 20.
func NewDigest(compression float64) *Digest {
	if compression < 20 {
		compression = 20
	}
	return &Digest{
		compression: compression,
		buffer:      make([]float64, 0, 8*int(compression)),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add folds one observation into the digest. NaN is rejected with a
// panic: a silent NaN would poison every downstream quantile.
func (d *Digest) Add(x float64) {
	if math.IsNaN(x) {
		panic("stats: NaN added to Digest")
	}
	if x < d.min {
		d.min = x
	}
	if x > d.max {
		d.max = x
	}
	d.count++
	d.buffer = append(d.buffer, x)
	if len(d.buffer) == cap(d.buffer) {
		d.compress()
	}
}

// Merge folds another digest into this one; other is unchanged. Merging
// shard digests produces the same accuracy class as a single digest over
// the concatenated stream.
func (d *Digest) Merge(other *Digest) {
	if other == nil || other.count == 0 {
		return
	}
	if other.min < d.min {
		d.min = other.min
	}
	if other.max > d.max {
		d.max = other.max
	}
	d.compress()
	// Append the other digest's centroids and buffered points as weighted
	// inputs, then recompress the union in one pass.
	for _, c := range other.centroids {
		d.centroids = append(d.centroids, c)
	}
	for _, x := range other.buffer {
		d.centroids = append(d.centroids, centroid{mean: x, weight: 1})
	}
	d.count += other.count
	d.recompress()
}

// Count returns how many observations the digest has absorbed.
func (d *Digest) Count() int64 { return int64(d.count) }

// Min returns the smallest observation (exact), or NaN when empty.
func (d *Digest) Min() float64 {
	if d.count == 0 {
		return math.NaN()
	}
	return d.min
}

// Max returns the largest observation (exact), or NaN when empty.
func (d *Digest) Max() float64 {
	if d.count == 0 {
		return math.NaN()
	}
	return d.max
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1),
// interpolating between centroid means. Empty digests return NaN; the
// extremes return the exact observed min/max.
func (d *Digest) Quantile(q float64) float64 {
	if d.count == 0 {
		return math.NaN()
	}
	d.compress()
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	cs := d.centroids
	if len(cs) == 1 {
		return cs[0].mean
	}
	target := q * d.count
	// Walk centroids treating each as centered mass: centroid i spans
	// cumulative weight (sum - w_i/2, sum + w_i/2].
	cum := 0.0
	for i, c := range cs {
		if target < cum+c.weight/2 {
			if i == 0 {
				// Interpolate between the exact min and the first mean.
				t := target / (cum + c.weight/2)
				return d.min + t*(c.mean-d.min)
			}
			prev := cs[i-1]
			lo := cum - prev.weight/2
			hi := cum + c.weight/2
			t := (target - lo) / (hi - lo)
			return prev.mean + t*(c.mean-prev.mean)
		}
		cum += c.weight
	}
	// Interpolate between the last mean and the exact max.
	last := cs[len(cs)-1]
	lo := d.count - last.weight/2
	if d.count == lo {
		return d.max
	}
	t := (target - lo) / (d.count - lo)
	if t > 1 {
		t = 1
	}
	return last.mean + t*(d.max-last.mean)
}

// compress drains the buffer into the centroid summary.
func (d *Digest) compress() {
	if len(d.buffer) == 0 {
		return
	}
	sort.Float64s(d.buffer)
	for _, x := range d.buffer {
		d.centroids = append(d.centroids, centroid{mean: x, weight: 1})
	}
	d.buffer = d.buffer[:0]
	d.recompress()
}

// recompress sorts the centroid list and re-clusters it against the
// t-digest scale function, merging adjacent centroids while the merged
// cluster stays within its size bound.
func (d *Digest) recompress() {
	cs := d.centroids
	if len(cs) == 0 {
		return
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].mean != cs[j].mean {
			return cs[i].mean < cs[j].mean
		}
		return cs[i].weight < cs[j].weight
	})
	total := 0.0
	for _, c := range cs {
		total += c.weight
	}
	out := cs[:1]
	cumBefore := 0.0 // weight strictly before the current output centroid
	for _, c := range cs[1:] {
		cur := &out[len(out)-1]
		qLo := cumBefore / total
		qHi := (cumBefore + cur.weight + c.weight) / total
		if d.sizeBoundOK(qLo, qHi) {
			// Weighted mean keeps the cluster's first moment exact.
			w := cur.weight + c.weight
			cur.mean += (c.mean - cur.mean) * c.weight / w
			cur.weight = w
		} else {
			cumBefore += cur.weight
			out = append(out, c)
		}
	}
	d.centroids = out
}

// sizeBoundOK reports whether a cluster spanning quantiles [qLo, qHi]
// respects the k1 scale function k(q) = (δ/2π)·asin(2q−1): clusters may
// span at most one unit of k, which squeezes cluster size toward both
// tails.
func (d *Digest) sizeBoundOK(qLo, qHi float64) bool {
	return d.k(qHi)-d.k(qLo) <= 1
}

func (d *Digest) k(q float64) float64 {
	if q <= 0 {
		return -d.compression / 4
	}
	if q >= 1 {
		return d.compression / 4
	}
	return d.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// Centroids returns the number of retained centroids (post-compression)
// — the digest's memory footprint in O(1) units.
func (d *Digest) Centroids() int {
	d.compress()
	return len(d.centroids)
}

// String summarizes the digest for debugging.
func (d *Digest) String() string {
	return fmt.Sprintf("Digest{n=%d, centroids=%d, min=%g, max=%g}",
		d.Count(), len(d.centroids), d.min, d.max)
}
