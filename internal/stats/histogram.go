package stats

import (
	"fmt"
	"math"
	"sort"
)

// UsageHistogramBuckets is the number of buckets in the trace's per-sample
// CPU usage histogram. The 2019 trace records a 21-element histogram per
// 5-minute window, biased towards high percentiles (§3, "CPU usage
// histograms").
const UsageHistogramBuckets = 21

// usageHistogramEdges are the upper edges (as a fraction of the limit or
// machine capacity) of the 21 buckets. The spacing is deliberately denser
// near 1.0, mirroring the trace's bias towards high percentiles.
var usageHistogramEdges = func() [UsageHistogramBuckets]float64 {
	var e [UsageHistogramBuckets]float64
	// 11 coarse buckets covering [0, 0.8), then 10 fine buckets covering
	// [0.8, +inf): 0.80, 0.84, ..., 0.96, 1.0, 1.1, 1.25, 1.5, +inf.
	coarse := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.8}
	fine := []float64{0.84, 0.88, 0.92, 0.96, 1.0, 1.1, 1.25, 1.5, 2.0, math.Inf(1)}
	i := 0
	for _, v := range coarse {
		e[i] = v
		i++
	}
	for _, v := range fine {
		e[i] = v
		i++
	}
	return e
}()

// UsageHistogram is a fixed 21-bucket histogram of CPU utilization samples
// within one 5-minute window, as stored in trace usage records.
type UsageHistogram struct {
	Counts [UsageHistogramBuckets]uint32
}

// Add records one utilization observation (usage ÷ limit, may exceed 1 for
// work-conserving CPU).
func (h *UsageHistogram) Add(util float64) {
	i := sort.SearchFloat64s(usageHistogramEdges[:], util)
	// SearchFloat64s returns the first edge >= util; util exactly on an
	// edge belongs to that bucket. The final bucket edge is +inf so i is
	// always in range, but guard against NaN.
	if i >= UsageHistogramBuckets {
		i = UsageHistogramBuckets - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations recorded.
func (h *UsageHistogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += int(c)
	}
	return t
}

// Quantile estimates the q-quantile of the recorded utilizations from the
// histogram, interpolating within the owning bucket. The final (overflow)
// bucket returns its lower edge.
func (h *UsageHistogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return math.NaN()
	}
	target := q * float64(total)
	cum := 0.0
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = usageHistogramEdges[i-1]
			}
			hi := usageHistogramEdges[i]
			if math.IsInf(hi, 1) {
				return lo
			}
			frac := 0.5
			if c > 0 {
				frac = (target - cum) / float64(c)
				if frac < 0 {
					frac = 0
				}
				if frac > 1 {
					frac = 1
				}
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return usageHistogramEdges[UsageHistogramBuckets-2]
}

// Merge adds other's counts into h.
func (h *UsageHistogram) Merge(other *UsageHistogram) {
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
}

// BucketUpperEdge returns the upper edge of bucket i; the last bucket is
// unbounded (+inf).
func BucketUpperEdge(i int) float64 {
	if i < 0 || i >= UsageHistogramBuckets {
		panic(fmt.Sprintf("stats: bucket index %d out of range", i))
	}
	return usageHistogramEdges[i]
}

// LinearHistogram is a general-purpose equal-width histogram used by the
// report package to render distributions as text.
type LinearHistogram struct {
	Lo, Hi  float64
	Counts  []int
	beneath int
	above   int
}

// NewLinearHistogram builds a histogram with n equal-width buckets on
// [lo, hi). Values outside the range are tallied separately.
func NewLinearHistogram(lo, hi float64, n int) *LinearHistogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid linear histogram")
	}
	return &LinearHistogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records an observation.
func (h *LinearHistogram) Add(x float64) {
	if x < h.Lo {
		h.beneath++
		return
	}
	if x >= h.Hi {
		h.above++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Underflow and Overflow return counts outside [Lo, Hi).
func (h *LinearHistogram) Underflow() int { return h.beneath }

// Overflow returns the count of observations at or above Hi.
func (h *LinearHistogram) Overflow() int { return h.above }
