package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestUsageHistogramAddTotal(t *testing.T) {
	var h UsageHistogram
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 100)
	}
	if h.Total() != 100 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestUsageHistogramHighBias(t *testing.T) {
	// More than half the buckets must cover the [0.8, inf) region — the
	// trace's histogram is biased towards high percentiles.
	highBuckets := 0
	for i := 0; i < UsageHistogramBuckets; i++ {
		if BucketUpperEdge(i) > 0.8 {
			highBuckets++
		}
	}
	if highBuckets < 9 {
		t.Fatalf("only %d buckets above 0.8", highBuckets)
	}
}

func TestUsageHistogramQuantile(t *testing.T) {
	var h UsageHistogram
	src := rng.New(1)
	for i := 0; i < 100000; i++ {
		h.Add(src.Float64()) // uniform on [0,1)
	}
	for _, q := range []float64{0.25, 0.5, 0.9} {
		got := h.Quantile(q)
		if math.Abs(got-q) > 0.05 {
			t.Fatalf("quantile(%v) = %v", q, got)
		}
	}
	var empty UsageHistogram
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestUsageHistogramOverflowBucket(t *testing.T) {
	var h UsageHistogram
	h.Add(5.0)  // way above 2.0 edge: overflow bucket
	h.Add(-1.0) // negative clamps into first bucket region via search
	if h.Total() != 2 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Counts[UsageHistogramBuckets-1] != 1 {
		t.Fatalf("overflow bucket count %d", h.Counts[UsageHistogramBuckets-1])
	}
}

func TestUsageHistogramMerge(t *testing.T) {
	var a, b UsageHistogram
	a.Add(0.1)
	b.Add(0.1)
	b.Add(0.95)
	a.Merge(&b)
	if a.Total() != 3 {
		t.Fatalf("merged total %d", a.Total())
	}
}

func TestBucketUpperEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range bucket did not panic")
		}
	}()
	BucketUpperEdge(UsageHistogramBuckets)
}

func TestLinearHistogram(t *testing.T) {
	h := NewLinearHistogram(0, 10, 10)
	h.Add(-1)
	h.Add(0)
	h.Add(5.5)
	h.Add(9.999)
	h.Add(10)
	h.Add(42)
	if h.Underflow() != 1 {
		t.Fatalf("underflow %d", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Fatalf("overflow %d", h.Overflow())
	}
	if h.Counts[0] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Fatalf("counts %v", h.Counts)
	}
}

func TestLinearHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewLinearHistogram(5, 5, 10)
}
