package stats

import "math"

// CrossRun summarizes independent replicate measurements of one metric —
// the same figure computed from N different simulation seeds. Unlike
// Summary (which describes a within-run sample population), CrossRun
// estimates the metric's run-to-run distribution: sample mean, unbiased
// (n−1) standard deviation, the observed range, and the half-width of
// the two-sided 95% Student-t confidence interval for the mean.
type CrossRun struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	// CI95 is the 95% confidence half-width: mean ± CI95 covers the true
	// mean with 95% confidence under the usual normality assumption.
	// Zero when N < 2 (no variance estimate exists).
	CI95 float64
}

// tCrit95 holds the two-sided 95% Student-t critical values for 1–30
// degrees of freedom; beyond 30 the normal value 1.96 is close enough.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom (1.96 asymptote past df 30, NaN for df < 1).
func TCritical95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.960
}

// SummarizeRuns computes cross-replicate statistics over xs, one value
// per independent run. An empty sample yields a zero CrossRun; a single
// run yields its value with zero spread and zero CI.
func SummarizeRuns(xs []float64) CrossRun {
	if len(xs) == 0 {
		return CrossRun{}
	}
	out := CrossRun{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < out.Min {
			out.Min = x
		}
		if x > out.Max {
			out.Max = x
		}
	}
	n := float64(len(xs))
	out.Mean = sum / n
	if len(xs) < 2 {
		return out
	}
	var ss float64
	for _, x := range xs {
		d := x - out.Mean
		ss += d * d
	}
	out.Stddev = math.Sqrt(ss / (n - 1))
	out.CI95 = TCritical95(len(xs)-1) * out.Stddev / math.Sqrt(n)
	return out
}
