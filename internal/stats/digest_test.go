package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// digestVsExact feeds xs to a digest and compares its quantiles against
// the exact sample quantiles, requiring |rank error| <= rankTol (i.e. the
// digest's q-quantile must sit between the exact (q-rankTol)- and
// (q+rankTol)-quantiles of the sample).
func digestVsExact(t *testing.T, name string, xs []float64, rankTol float64) {
	t.Helper()
	d := NewDigest(DefaultCompression)
	for _, x := range xs {
		d.Add(x)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		got := d.Quantile(q)
		lo := quantileSorted(s, math.Max(0, q-rankTol))
		hi := quantileSorted(s, math.Min(1, q+rankTol))
		if got < lo || got > hi {
			t.Errorf("%s: q=%g digest %g outside exact rank band [%g, %g]", name, q, got, lo, hi)
		}
	}
	if d.Min() != s[0] || d.Max() != s[len(s)-1] {
		t.Errorf("%s: min/max %g/%g, want exact %g/%g", name, d.Min(), d.Max(), s[0], s[len(s)-1])
	}
	if d.Count() != int64(len(xs)) {
		t.Errorf("%s: count %d, want %d", name, d.Count(), len(xs))
	}
}

func TestDigestKnownDistributions(t *testing.T) {
	src := rng.New(42)
	const n = 200000
	uniform := make([]float64, n)
	normal := make([]float64, n)
	lognormal := make([]float64, n)
	exponential := make([]float64, n)
	for i := 0; i < n; i++ {
		uniform[i] = src.Float64()
		normal[i] = src.NormFloat64()
		lognormal[i] = math.Exp(0.5 * src.NormFloat64())
		exponential[i] = -math.Log(src.Float64Open())
	}
	digestVsExact(t, "uniform", uniform, 0.01)
	digestVsExact(t, "normal", normal, 0.01)
	digestVsExact(t, "lognormal", lognormal, 0.01)
	digestVsExact(t, "exponential", exponential, 0.01)
}

func TestDigestSmallSamplesNearExact(t *testing.T) {
	// Below the compression limit every point is its own centroid, so
	// quantiles interpolate the raw sample: tiny fleets get honest
	// percentiles, not sketch noise.
	xs := []float64{5, 1, 4, 2, 3}
	d := NewDigest(DefaultCompression)
	for _, x := range xs {
		d.Add(x)
	}
	if got := d.Quantile(0.5); got != 3 {
		t.Errorf("median of 1..5 = %g, want 3", got)
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("q0 = %g, want 1", got)
	}
	if got := d.Quantile(1); got != 5 {
		t.Errorf("q1 = %g, want 5", got)
	}
}

func TestDigestMergeMatchesWhole(t *testing.T) {
	src := rng.New(7)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Exp(0.4 * src.NormFloat64())
	}
	shards := make([]*Digest, 8)
	for i := range shards {
		shards[i] = NewDigest(DefaultCompression)
	}
	for i, x := range xs {
		shards[i%len(shards)].Add(x)
	}
	merged := NewDigest(DefaultCompression)
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if merged.Count() != n {
		t.Fatalf("merged count %d, want %d", merged.Count(), n)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99} {
		got := merged.Quantile(q)
		lo := quantileSorted(s, math.Max(0, q-0.02))
		hi := quantileSorted(s, math.Min(1, q+0.02))
		if got < lo || got > hi {
			t.Errorf("merged q=%g: %g outside [%g, %g]", q, got, lo, hi)
		}
	}
}

func TestDigestDeterministic(t *testing.T) {
	build := func() *Digest {
		src := rng.New(3)
		d := NewDigest(50)
		for i := 0; i < 50000; i++ {
			d.Add(src.NormFloat64())
		}
		return d
	}
	a, b := build(), build()
	for _, q := range []float64{0, 0.1, 0.5, 0.77, 0.99, 1} {
		if qa, qb := a.Quantile(q), b.Quantile(q); qa != qb {
			t.Fatalf("q=%g: %v != %v — digest is not deterministic", q, qa, qb)
		}
	}
}

func TestDigestBoundedSize(t *testing.T) {
	src := rng.New(11)
	d := NewDigest(DefaultCompression)
	for i := 0; i < 1_000_000; i++ {
		d.Add(src.Float64())
	}
	// The k1 scale function retains ~2δ centroids in the worst case.
	if got, limit := d.Centroids(), 2*int(DefaultCompression); got > limit {
		t.Fatalf("digest retained %d centroids over %d-point stream, want <= %d", got, 1_000_000, limit)
	}
}

func TestDigestEmptyAndEdge(t *testing.T) {
	d := NewDigest(DefaultCompression)
	if !math.IsNaN(d.Quantile(0.5)) || !math.IsNaN(d.Min()) || !math.IsNaN(d.Max()) {
		t.Error("empty digest must report NaN quantiles and extremes")
	}
	if d.Count() != 0 {
		t.Error("empty digest count != 0")
	}
	d.Merge(NewDigest(DefaultCompression)) // merging empty is a no-op
	if d.Count() != 0 {
		t.Error("merge of empty digests changed count")
	}
	d.Add(2.5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := d.Quantile(q); got != 2.5 {
			t.Errorf("single-point digest q=%g = %g, want 2.5", q, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Add(NaN) must panic")
		}
	}()
	d.Add(math.NaN())
}
