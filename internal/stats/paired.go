package stats

import (
	"fmt"
	"math"
)

// PairedDiff summarizes the per-replicate differences ys[i] − xs[i] as a
// CrossRun: mean difference, unbiased stddev of the differences, observed
// range, and the 95% Student-t confidence half-width on the mean
// difference (df = n−1, the paired-t interval).
//
// This is the right estimator for common-random-number experiments: when
// replicate i of both arms shares seeds (the sweep grid's contract),
// run-to-run noise is positively correlated across arms and cancels in
// the difference, so the paired CI is typically far tighter than the
// unpaired two-sample interval UnpairedDiffCI95 computes from the same
// data.
func PairedDiff(xs, ys []float64) (CrossRun, error) {
	if len(xs) != len(ys) {
		return CrossRun{}, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(xs), len(ys))
	}
	diffs := make([]float64, len(xs))
	for i := range xs {
		diffs[i] = ys[i] - xs[i]
	}
	return SummarizeRuns(diffs), nil
}

// UnpairedDiffCI95 returns the 95% confidence half-width on mean(ys) −
// mean(xs) treating the two samples as independent: the Welch two-sample
// interval, with degrees of freedom from the Welch–Satterthwaite
// approximation (truncated to an integer for the t table, which can only
// widen the interval). It is the counterfactual against which PairedDiff
// demonstrates the CRN variance reduction — same data, no pairing
// assumption, wider interval. Zero when either sample has fewer than two
// values (no variance estimate exists).
func UnpairedDiffCI95(xs, ys []float64) float64 {
	if len(xs) < 2 || len(ys) < 2 {
		return 0
	}
	sx := SummarizeRuns(xs)
	sy := SummarizeRuns(ys)
	vx := sx.Stddev * sx.Stddev / float64(len(xs))
	vy := sy.Stddev * sy.Stddev / float64(len(ys))
	se := math.Sqrt(vx + vy)
	if se == 0 {
		return 0
	}
	num := (vx + vy) * (vx + vy)
	den := vx*vx/float64(len(xs)-1) + vy*vy/float64(len(ys)-1)
	df := 1
	if den > 0 {
		if d := int(num / den); d > 1 {
			df = d
		}
	}
	return TCritical95(df) * se
}
