// Package stats implements the descriptive statistics the paper's analyses
// are built from: complementary CDFs, percentiles, the squared coefficient
// of variation C² (§7), Pareto tail fitting with R² goodness of fit
// (Table 2), Pearson correlation (Figure 13), top-k load shares, reservoir
// sampling for unbiased percentile estimation, and the trace's 21-bucket
// CPU-usage histogram.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Summary holds the moments and percentiles reported in Table 2 of the
// paper for a sample of non-negative values.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // population variance
	C2       float64 // squared coefficient of variation: variance / mean²
	Min      float64
	Max      float64
	Median   float64
	P90      float64
	P99      float64
	P999     float64
	Total    float64
}

// Summarize computes a Summary over xs. It sorts a copy; xs is unmodified.
// An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)

	var sum, sumsq float64
	for _, x := range s {
		sum += x
		sumsq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0 // numeric noise for near-constant samples
	}
	c2 := math.Inf(1)
	if mean != 0 {
		c2 = variance / (mean * mean)
	}
	return Summary{
		N:        len(s),
		Mean:     mean,
		Variance: variance,
		C2:       c2,
		Min:      s[0],
		Max:      s[len(s)-1],
		Median:   quantileSorted(s, 0.5),
		P90:      quantileSorted(s, 0.90),
		P99:      quantileSorted(s, 0.99),
		P999:     quantileSorted(s, 0.999),
		Total:    sum,
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It sorts a copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantileSorted returns the q-quantile of an already-sorted sample.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CCDFPoint is one (x, P(X > x)) sample of a complementary CDF.
type CCDFPoint struct {
	X float64
	P float64
}

// CCDF computes the complementary cumulative distribution function of xs:
// for each distinct value x, the fraction of samples strictly greater
// than x. The result is sorted by X ascending; P is non-increasing.
func CCDF(xs []float64) []CCDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := float64(len(s))
	var out []CCDFPoint
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		// P(X > s[i]) = (number of samples after the run) / n.
		out = append(out, CCDFPoint{X: s[i], P: float64(len(s)-j) / n})
		i = j
	}
	return out
}

// CCDFAt evaluates an already-computed CCDF at x (step interpolation).
// For x below the smallest sample it returns 1.
func CCDFAt(ccdf []CCDFPoint, x float64) float64 {
	if len(ccdf) == 0 {
		return math.NaN()
	}
	if x < ccdf[0].X {
		return 1
	}
	i := sort.Search(len(ccdf), func(i int) bool { return ccdf[i].X > x })
	return ccdf[i-1].P
}

// CCDFSampled returns the CCDF evaluated on a fixed grid of xs values —
// convenient for rendering figure series with a bounded number of points.
func CCDFSampled(xs []float64, grid []float64) []CCDFPoint {
	c := CCDF(xs)
	out := make([]CCDFPoint, 0, len(grid))
	for _, g := range grid {
		out = append(out, CCDFPoint{X: g, P: CCDFAt(c, g)})
	}
	return out
}

// TopShare returns the fraction of the total mass of xs contributed by the
// largest frac portion of samples (e.g. frac = 0.01 gives the paper's
// "top 1% of jobs consume X% of resources"). Returns NaN for empty input.
func TopShare(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	total := 0.0
	for _, x := range s {
		total += x
	}
	if total == 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(len(s))))
	if k < 1 {
		k = 1
	}
	if k > len(s) {
		k = len(s)
	}
	top := 0.0
	for _, x := range s[len(s)-k:] {
		top += x
	}
	return top / total
}

// ParetoFit is the result of fitting a Pareto tail to a sample, mirroring
// the paper's Table 2 methodology: ordinary least squares on the log–log
// CCDF of the "large job" body (values > lower bound, excluding the
// extreme top quantile), with R² measuring the fit.
type ParetoFit struct {
	Alpha float64 // tail index: P(X > x) ≈ C · x^(-Alpha)
	R2    float64 // goodness of fit of the log-log regression
	N     int     // samples used in the fit
}

// FitParetoTail fits a Pareto tail to xs restricted to values in
// (lower, upper-quantile(trim)] — the paper uses lower = 1 resource-hour
// and trim = 0.9999 (drop the top 0.01%). Returns a zero fit if fewer than
// 10 points remain.
func FitParetoTail(xs []float64, lower, trimQuantile float64) ParetoFit {
	if len(xs) == 0 {
		return ParetoFit{}
	}
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > lower {
			s = append(s, x)
		}
	}
	if len(s) < 10 {
		return ParetoFit{}
	}
	sort.Float64s(s)
	if trimQuantile > 0 && trimQuantile < 1 {
		cut := quantileSorted(s, trimQuantile)
		i := sort.SearchFloat64s(s, cut)
		if i < 10 {
			i = len(s)
		}
		s = s[:i]
	}
	if len(s) < 10 {
		return ParetoFit{}
	}

	// Build the empirical log-log CCDF on distinct values; regress
	// log P(X > x) = log C - alpha * log x.
	n := float64(len(s))
	var logx, logp []float64
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		p := float64(len(s)-j) / n
		if p > 0 && s[i] > 0 {
			logx = append(logx, math.Log(s[i]))
			logp = append(logp, math.Log(p))
		}
		i = j
	}
	if len(logx) < 5 {
		return ParetoFit{}
	}
	slope, _, r2 := linregress(logx, logp)
	return ParetoFit{Alpha: -slope, R2: r2, N: len(s)}
}

// HillEstimate returns the Hill estimator of the tail index using the top
// k order statistics. A second, independent estimate of alpha used to
// cross-check the regression fit.
func HillEstimate(xs []float64, k int) float64 {
	if len(xs) < 2 || k < 1 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if k >= len(s) {
		k = len(s) - 1
	}
	xk := s[len(s)-1-k]
	if xk <= 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := len(s) - k; i < len(s); i++ {
		sum += math.Log(s[i] / xk)
	}
	if sum == 0 {
		return math.NaN()
	}
	return float64(k) / sum
}

// linregress fits y = intercept + slope*x by ordinary least squares and
// returns (slope, intercept, R²).
func linregress(x, y []float64) (slope, intercept, r2 float64) {
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	// R² = 1 - SS_res/SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := intercept + slope*x[i]
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	if ssTot == 0 {
		return slope, intercept, 1
	}
	return slope, intercept, 1 - ssRes/ssTot
}

// LinRegress exposes the least-squares fit for callers outside the package.
func LinRegress(x, y []float64) (slope, intercept, r2 float64) {
	if len(x) != len(y) || len(x) == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	return linregress(x, y)
}

// Pearson returns the Pearson correlation coefficient of paired samples.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Reservoir is a fixed-capacity uniform sample of a stream (Vitter's
// algorithm R). The paper notes its percentiles and C² values are from
// "unbiased random samples"; analyses over very long simulations use a
// reservoir rather than retaining every observation.
type Reservoir struct {
	cap  int
	seen int64
	data []float64
	src  *rng.Source
}

// NewReservoir creates a reservoir holding at most capacity samples.
func NewReservoir(capacity int, src *rng.Source) *Reservoir {
	if capacity <= 0 {
		panic(fmt.Sprintf("stats: reservoir capacity %d", capacity))
	}
	return &Reservoir{cap: capacity, src: src}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.data) < r.cap {
		r.data = append(r.data, x)
		return
	}
	j := r.src.Uint64n(uint64(r.seen))
	if j < uint64(r.cap) {
		r.data[j] = x
	}
}

// Values returns the retained sample (not a copy).
func (r *Reservoir) Values() []float64 { return r.data }

// Seen returns how many observations were offered in total.
func (r *Reservoir) Seen() int64 { return r.seen }

// Welford accumulates running mean/variance without storing samples.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the count of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// C2 returns variance/mean² (the squared coefficient of variation).
func (w *Welford) C2() float64 {
	m := w.Mean()
	if m == 0 {
		return math.Inf(1)
	}
	return w.Variance() / (m * m)
}
