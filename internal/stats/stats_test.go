package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
)

func TestSummarizeBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Variance-2) > 1e-12 {
		t.Fatalf("variance %v, want 2", s.Variance)
	}
	if math.Abs(s.C2-2.0/9.0) > 1e-12 {
		t.Fatalf("C2 %v, want 2/9", s.C2)
	}
	if s.Total != 15 {
		t.Fatalf("total %v", s.Total)
	}
	// Input must be unmodified.
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("input was reordered")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeConstant(t *testing.T) {
	s := Summarize([]float64{7, 7, 7, 7})
	if s.Variance != 0 || s.C2 != 0 {
		t.Fatalf("constant sample variance %v C2 %v", s.Variance, s.C2)
	}
}

func TestSummarizeZeroMean(t *testing.T) {
	s := Summarize([]float64{0, 0, 0})
	if !math.IsInf(s.C2, 1) {
		t.Fatalf("C2 of zero-mean sample should be +inf, got %v", s.C2)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("median %v, want 5", got)
	}
	if got := Quantile(xs, 0); got != 0 {
		t.Fatalf("q0 %v", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Fatalf("q1 %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty should be NaN")
	}
}

func TestCCDFShape(t *testing.T) {
	xs := []float64{1, 1, 2, 3}
	c := CCDF(xs)
	want := []CCDFPoint{{1, 0.5}, {2, 0.25}, {3, 0}}
	if len(c) != len(want) {
		t.Fatalf("ccdf %v", c)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("ccdf[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	if got := CCDFAt(c, 0.5); got != 1 {
		t.Fatalf("CCDF below min should be 1, got %v", got)
	}
	if got := CCDFAt(c, 1.5); got != 0.5 {
		t.Fatalf("CCDF(1.5) = %v", got)
	}
	if got := CCDFAt(c, 99); got != 0 {
		t.Fatalf("CCDF above max should be 0, got %v", got)
	}
}

func TestCCDFMonotone(t *testing.T) {
	src := rng.New(1)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = src.Float64() * 100
	}
	c := CCDF(xs)
	for i := 1; i < len(c); i++ {
		if c[i].X <= c[i-1].X {
			t.Fatal("CCDF x not strictly increasing")
		}
		if c[i].P > c[i-1].P {
			t.Fatal("CCDF p increased")
		}
	}
	if c[len(c)-1].P != 0 {
		t.Fatal("CCDF must end at 0")
	}
}

func TestCCDFSampled(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := CCDFSampled(xs, []float64{0, 2.5, 10})
	if got[0].P != 1 || got[1].P != 0.5 || got[2].P != 0 {
		t.Fatalf("sampled ccdf %v", got)
	}
}

func TestTopShare(t *testing.T) {
	// 99 ones and a single 9901: the top 1% (1 sample) carries 99.01% of
	// mass.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 1
	}
	xs[99] = 9901
	got := TopShare(xs, 0.01)
	if math.Abs(got-0.9901) > 1e-9 {
		t.Fatalf("top share %v", got)
	}
	if !math.IsNaN(TopShare(nil, 0.01)) {
		t.Fatal("empty top share should be NaN")
	}
	if TopShare([]float64{0, 0}, 0.5) != 0 {
		t.Fatal("zero-mass top share should be 0")
	}
	if TopShare([]float64{5}, 0.0001) != 1 {
		t.Fatal("tiny frac should still take at least one sample")
	}
}

func TestFitParetoTailRecoversAlpha(t *testing.T) {
	src := rng.New(2)
	p := dist.Pareto{Xm: 1, Alpha: 0.7}
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = p.Sample(src)
	}
	fit := FitParetoTail(xs, 1, 0.9999)
	if math.Abs(fit.Alpha-0.7) > 0.06 {
		t.Fatalf("fitted alpha %v, want ~0.7", fit.Alpha)
	}
	if fit.R2 < 0.98 {
		t.Fatalf("R2 %v, want > 0.98", fit.R2)
	}
}

func TestFitParetoTailDegenerate(t *testing.T) {
	if fit := FitParetoTail(nil, 1, 0.9999); fit.N != 0 {
		t.Fatalf("empty fit: %+v", fit)
	}
	if fit := FitParetoTail([]float64{0.1, 0.2}, 1, 0.9999); fit.N != 0 {
		t.Fatalf("all-below-lower fit: %+v", fit)
	}
}

func TestHillEstimate(t *testing.T) {
	src := rng.New(3)
	p := dist.Pareto{Xm: 1, Alpha: 1.5}
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = p.Sample(src)
	}
	alpha := HillEstimate(xs, 5000)
	if math.Abs(alpha-1.5) > 0.12 {
		t.Fatalf("Hill estimate %v, want ~1.5", alpha)
	}
	if !math.IsNaN(HillEstimate(nil, 10)) {
		t.Fatal("Hill of empty should be NaN")
	}
}

func TestLinRegressExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	slope, intercept, r2 := LinRegress(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("fit %v %v %v", slope, intercept, r2)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation r=%v", r)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, yneg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation r=%v", r)
	}
	if !math.IsNaN(Pearson(x, []float64{1, 1, 1, 1, 1})) {
		t.Fatal("constant series should give NaN")
	}
	if !math.IsNaN(Pearson(x, x[:2])) {
		t.Fatal("mismatched lengths should give NaN")
	}
}

func TestReservoirUnbiased(t *testing.T) {
	src := rng.New(4)
	r := NewReservoir(1000, src)
	const n = 100000
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != n {
		t.Fatalf("seen %d", r.Seen())
	}
	if len(r.Values()) != 1000 {
		t.Fatalf("retained %d", len(r.Values()))
	}
	m := Summarize(r.Values()).Mean
	if math.Abs(m-float64(n)/2) > float64(n)*0.03 {
		t.Fatalf("reservoir mean %v biased (want ~%v)", m, n/2)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	src := rng.New(5)
	r := NewReservoir(100, src)
	for i := 0; i < 10; i++ {
		r.Add(float64(i))
	}
	if len(r.Values()) != 10 {
		t.Fatalf("should keep everything below capacity, got %d", len(r.Values()))
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	src := rng.New(6)
	xs := make([]float64, 10000)
	var w Welford
	for i := range xs {
		xs[i] = src.Float64()*10 + 1
		w.Add(xs[i])
	}
	s := Summarize(xs)
	if math.Abs(w.Mean()-s.Mean) > 1e-9 {
		t.Fatalf("welford mean %v vs %v", w.Mean(), s.Mean)
	}
	if math.Abs(w.Variance()-s.Variance) > 1e-6 {
		t.Fatalf("welford variance %v vs %v", w.Variance(), s.Variance)
	}
	if math.Abs(w.C2()-s.C2) > 1e-9 {
		t.Fatalf("welford C2 %v vs %v", w.C2(), s.C2)
	}
	if w.N() != int64(s.N) {
		t.Fatalf("welford n %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Mean() != 0 {
		t.Fatal("empty welford should be zero")
	}
	if !math.IsInf(w.C2(), 1) {
		t.Fatal("empty welford C2 should be +inf")
	}
}

// Property: CCDF values are always within [0,1] and non-increasing.
func TestCCDFProperty(t *testing.T) {
	src := rng.New(7)
	f := func(n uint8) bool {
		xs := make([]float64, int(n)+1)
		for i := range xs {
			xs[i] = src.NormFloat64()
		}
		c := CCDF(xs)
		prev := 1.0
		for _, pt := range c {
			if pt.P < 0 || pt.P > prev {
				return false
			}
			prev = pt.P
		}
		return c[len(c)-1].P == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	src := rng.New(8)
	f := func(n uint8) bool {
		xs := make([]float64, int(n)+2)
		for i := range xs {
			xs[i] = src.Float64() * 100
		}
		s := make([]float64, len(xs))
		copy(s, xs)
		sort.Float64s(s)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := QuantileSorted(s, q)
			if v < prev || v < s[0] || v > s[len(s)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopShare is within [0,1] and non-decreasing in frac.
func TestTopShareMonotoneProperty(t *testing.T) {
	src := rng.New(9)
	f := func(n uint8) bool {
		xs := make([]float64, int(n)+1)
		for i := range xs {
			xs[i] = math.Abs(src.NormFloat64())
		}
		prev := 0.0
		for _, frac := range []float64{0.01, 0.1, 0.5, 1.0} {
			s := TopShare(xs, frac)
			if s < prev-1e-12 || s < 0 || s > 1+1e-12 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeRuns(t *testing.T) {
	if got := SummarizeRuns(nil); got != (CrossRun{}) {
		t.Fatalf("empty: %+v", got)
	}
	one := SummarizeRuns([]float64{3.5})
	if one.N != 1 || one.Mean != 3.5 || one.Stddev != 0 || one.CI95 != 0 || one.Min != 3.5 || one.Max != 3.5 {
		t.Fatalf("single run: %+v", one)
	}

	// Hand-checked: mean 4, sample variance ((−2)²+0²+2²)/2 = 4, stddev 2,
	// CI95 = t(df=2)=4.303 × 2/√3.
	cr := SummarizeRuns([]float64{2, 4, 6})
	if cr.N != 3 || cr.Mean != 4 || cr.Min != 2 || cr.Max != 6 {
		t.Fatalf("runs: %+v", cr)
	}
	if math.Abs(cr.Stddev-2) > 1e-12 {
		t.Fatalf("stddev %g, want 2", cr.Stddev)
	}
	want := 4.303 * 2 / math.Sqrt(3)
	if math.Abs(cr.CI95-want) > 1e-9 {
		t.Fatalf("CI95 %g, want %g", cr.CI95, want)
	}
}

func TestTCritical95(t *testing.T) {
	if !math.IsNaN(TCritical95(0)) {
		t.Fatal("df 0 must be NaN")
	}
	if TCritical95(1) != 12.706 || TCritical95(30) != 2.042 {
		t.Fatalf("table ends: %g %g", TCritical95(1), TCritical95(30))
	}
	if TCritical95(31) != 1.960 || TCritical95(10000) != 1.960 {
		t.Fatal("asymptote")
	}
	// Critical values decrease toward the normal limit (flat once the
	// asymptote takes over).
	for df := 2; df <= 40; df++ {
		if TCritical95(df) > TCritical95(df-1) {
			t.Fatalf("t-critical increases at df %d", df)
		}
	}
}
