// Package engine orchestrates multi-cell simulation runs: it executes N
// independent cell simulations (core.Run) concurrently on a bounded worker
// pool and streams their results back in submission order. The paper
// analyzes eight 2019 cells plus the 2011 cell; the engine is the layer
// that makes that suite — and larger parameter sweeps — scale with the
// hardware instead of running one cell at a time.
//
// # Determinism contract
//
// A cell simulation is a pure function of (profile, horizon, seed): each
// cell owns its private kernel and rng streams, so parallelism changes
// only wall-clock time, never a single trace row. The engine makes the
// two conventions that guarantee cross-cell independence explicit instead
// of caller folklore:
//
//   - Seeds: cell i of a run rooted at seed R simulates with
//     DeriveSeed(R, i), a splitmix64-finalized mix. Same root ⇒ same
//     per-cell seeds ⇒ byte-identical traces at any Parallelism.
//   - ID spaces: cell i offsets its collection IDs by IDBase(i), giving
//     every cell a disjoint 2³² ID range so merged traces never collide.
//
// Sinks are per-cell and driven by that cell's goroutine; a sink shared
// across specs must be wrapped in trace.NewSyncSink by the caller.
package engine

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Spec is one cell simulation in a multi-cell run. Cells are identified
// by spec index in results and by Profile.Name in traces.
type Spec struct {
	Profile *workload.CellProfile
	Options core.Options
}

// Options configures the run.
type Options struct {
	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS. It has
	// no effect on simulation output, only on wall-clock time.
	Parallelism int
	// OnResult, when set, is invoked once per cell in spec order (index
	// 0, 1, 2, ...) as results become available, enabling streaming
	// consumption ahead of Run returning. Calls are serialized; a slow
	// callback backpressures result delivery but not simulation.
	OnResult func(index int, res *core.CellResult)
	// OnStart, when set, is invoked as a worker begins simulating a cell —
	// the hook progress reporters count in-flight cells with. Unlike
	// OnResult it is NOT serialized or ordered: calls arrive concurrently
	// from worker goroutines, so the callback must be safe for concurrent
	// use and should return quickly.
	OnStart func(index int)
}

// DeriveSeed maps a run's root seed and a cell index to the cell's
// simulation seed. It is the engine's published seed-splitting contract:
// stable across releases, collision-resistant across indices, and
// independent of execution order.
func DeriveSeed(root uint64, cell int) uint64 {
	x := root + 0x9e3779b97f4a7c15*uint64(cell+1)
	// splitmix64 finalizer, as in internal/rng.
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// IDBase returns cell i's collection-ID offset: disjoint 2³² ranges so a
// merged multi-cell trace has globally unique collection IDs.
func IDBase(cell int) trace.CollectionID {
	return trace.CollectionID(cell) << 32
}

// DeriveGridSeed maps a sweep's root seed and a 2-D grid coordinate
// (run, cell) to that point's simulation seed: replicate run's root
// derives from the sweep root, and cell seeds derive from the replicate
// root exactly as single-run suites derive theirs. The result depends
// only on (root, run, cell) — never on how many variants or runs the
// sweep contains — so every variant of replicate run simulates each cell
// against the same stochastic world (common random numbers), which is
// what makes cross-variant differences at a fixed seed meaningful.
func DeriveGridSeed(root uint64, run, cell int) uint64 {
	return DeriveSeed(DeriveSeed(root, run), cell)
}

// NewGridSpec builds the spec for one point of a seed × variant × cell
// sweep grid: the simulation seed comes from DeriveGridSeed(root, run,
// cell) while the collection-ID space comes from the point's flat grid
// index, keeping every grid point's IDs disjoint even though variants
// share seeds.
func NewGridSpec(run, cell, flat int, p *workload.CellProfile, base core.Options, root uint64) Spec {
	base.Seed = DeriveGridSeed(root, run, cell)
	base.IDBase = IDBase(flat)
	return Spec{Profile: p, Options: base}
}

// NewSpec builds the spec for cell index i of a run rooted at seed root,
// applying the engine's seed and ID-space contracts to base options.
func NewSpec(i int, p *workload.CellProfile, base core.Options, root uint64) Spec {
	base.Seed = DeriveSeed(root, i)
	base.IDBase = IDBase(i)
	return Spec{Profile: p, Options: base}
}

// AttachSinks appends the sink built by make(i) to each spec's
// ExtraSinks, in place. It is the engine's idiom for per-cell sink
// pipelines — one streaming reducer or export shard per cell, each driven
// only by that cell's goroutine, so none of them needs a SyncSink. A nil
// sink from make leaves that spec unchanged.
func AttachSinks(specs []Spec, make func(i int) trace.Sink) {
	for i := range specs {
		if s := make(i); s != nil {
			specs[i].Options.ExtraSinks = append(specs[i].Options.ExtraSinks, s)
		}
	}
}

// Run simulates every spec and returns results indexed like specs. With
// Parallelism > 1 the cells run concurrently; results (and OnResult
// callbacks) are still delivered in spec order.
func Run(specs []Spec, opts Options) []*core.CellResult {
	return run(len(specs), func(i int) Spec { return specs[i] }, opts, true)
}

// RunStream is Run for fleets too large to materialize: specs are built
// lazily by spec(i) as workers pick up cell indices, and results are
// released as soon as OnResult returns instead of being retained, so an
// O(100)-cell run holds O(Parallelism) cells of state — not O(n) — as
// long as the specs use NoMemTrace with streaming sinks. Everything else
// matches Run: in-order OnResult delivery, concurrent OnStart, and
// byte-identical output at any Parallelism. spec must be safe to call
// concurrently for distinct indices (each index is requested exactly
// once).
func RunStream(n int, spec func(i int) Spec, opts Options) {
	run(n, spec, opts, false)
}

// run is the shared pool: simulate cell indices [0, n) built by spec,
// delivering results in index order. keep retains results for Run's
// return value; RunStream drops each result after its callback so the
// undelivered buffer is the only retained state.
func run(n int, spec func(i int) Spec, opts Options, keep bool) []*core.CellResult {
	results := make([]*core.CellResult, n)
	if n == 0 {
		return results
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}

	if par == 1 {
		for i := 0; i < n; i++ {
			if opts.OnStart != nil {
				opts.OnStart(i)
			}
			s := spec(i)
			res := core.Run(s.Profile, s.Options)
			if keep {
				results[i] = res
			}
			if opts.OnResult != nil {
				opts.OnResult(i, res)
			}
		}
		return results
	}

	var (
		mu         sync.Mutex
		next       int  // first index not yet delivered to OnResult
		delivering bool // a worker is draining callbacks outside the lock
	)
	// deliver records a finished cell and drains in-order OnResult
	// callbacks. Callbacks run outside the mutex so a slow consumer
	// stalls only the one worker currently delivering, never the pool:
	// other workers store their result and go back to simulating.
	deliver := func(i int, res *core.CellResult) {
		mu.Lock()
		results[i] = res
		if delivering {
			mu.Unlock()
			return
		}
		delivering = true
		for next < n && results[next] != nil {
			idx, r := next, results[next]
			if !keep {
				results[idx] = nil
			}
			next++
			mu.Unlock()
			if opts.OnResult != nil {
				opts.OnResult(idx, r)
			}
			mu.Lock()
		}
		delivering = false
		mu.Unlock()
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if opts.OnStart != nil {
					opts.OnStart(i)
				}
				s := spec(i)
				deliver(i, core.Run(s.Profile, s.Options))
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}
