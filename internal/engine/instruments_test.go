package engine

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// rollup runs the three-cell test suite instrumented at the given
// parallelism and returns the run registry's Prometheus rendering,
// minus wall-clock series.
func rollup(t *testing.T, parallelism int) string {
	t.Helper()
	reg := metrics.NewRegistry()
	specs := testSpecs(7)
	ri := NewRunInstruments(reg, nil, len(specs))
	ri.Apply(specs)
	Run(specs, ri.Wrap(Options{Parallelism: parallelism}))
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRollupByteIdenticalAcrossParallelism is the determinism gate for
// the metrics rollup itself: per-cell registries merge in spec order on
// the serialized OnResult path, so the run-level snapshot — quantile
// estimates included — is byte-identical at any parallelism.
func TestRollupByteIdenticalAcrossParallelism(t *testing.T) {
	serial := rollup(t, 1)
	for _, par := range []int{2, 8} {
		if got := rollup(t, par); got != serial {
			t.Fatalf("rollup at parallelism %d differs from serial:\n--- p1 ---\n%s\n--- p%d ---\n%s",
				par, serial, par, got)
		}
	}
}

func TestRollupCarriesInstrumentSeries(t *testing.T) {
	out := rollup(t, 4)
	for _, series := range []string{
		"sched_tasks_placed_total", "sched_placement_attempts_total",
		"sim_events_total", "usage_windows_total",
		"trace_rows_instances_total", "sched_pending_queue",
	} {
		if !bytes.Contains([]byte(out), []byte(series)) {
			t.Errorf("rollup missing series %q", series)
		}
	}
	// Progress counters settle: all cells started and done.
	for _, want := range []string{
		"run_cells_total 3", "run_cells_started_total 3", "run_cells_done_total 3",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("rollup missing %q:\n%s", want, out)
		}
	}
}

func TestRunInstrumentsNilIsNoOp(t *testing.T) {
	var ri *RunInstruments
	if got := NewRunInstruments(nil, nil, 3); got != nil {
		t.Fatal("NewRunInstruments(nil, nil) should return nil")
	}
	specs := testSpecs(7)
	ri.Apply(specs)
	o := ri.Cell(1, specs[1].Options)
	if o.Metrics != nil || o.Timeline != nil {
		t.Fatal("nil instruments attached state")
	}
	opts := ri.Wrap(Options{Parallelism: 2})
	if opts.OnStart != nil || opts.OnResult != nil {
		t.Fatal("nil Wrap installed hooks")
	}
}

func TestTimelineRecordsCellSpans(t *testing.T) {
	tl := metrics.NewTimeline()
	specs := testSpecs(7)
	ri := NewRunInstruments(nil, tl, len(specs))
	ri.Apply(specs)
	reduced := 0
	Run(specs, ri.Wrap(Options{
		Parallelism: 2,
		OnResult:    func(int, *core.CellResult) { reduced++ },
	}))
	if reduced != 3 {
		t.Fatalf("caller OnResult ran %d times", reduced)
	}
	// One warmup+run+flush trio per cell (from core), one "cell" span and
	// one "reduce" span per cell (from the wrapper).
	if got := tl.Len(); got < 3*3 {
		t.Fatalf("timeline has %d spans, want at least 9", got)
	}
}

// TestStalledScrapeDoesNotBlockOnResult wires a real run to a live
// server and stalls a scrape mid-run: the engine's OnResult path (where
// per-cell registries merge into the scraped rollup) must still drain
// at full speed, because handlers render snapshots into local buffers
// and never hold the registry lock while writing to a client.
func TestStalledScrapeDoesNotBlockOnResult(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, err := metrics.StartServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		t.Fatal(err)
	}

	specs := testSpecs(7)
	ri := NewRunInstruments(reg, nil, len(specs))
	ri.Apply(specs)
	done := make(chan struct{})
	go func() {
		Run(specs, ri.Wrap(Options{Parallelism: 2}))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("instrumented run blocked behind a stalled scrape")
	}
	if got := reg.Counter("run_cells_done_total").Value(); got != 3 {
		t.Fatalf("run_cells_done_total = %d, want 3", got)
	}
}

// TestRollupMatchesSchedulerStats cross-checks one rolled-up series
// against the ground truth the per-cell results report.
func TestRollupMatchesSchedulerStats(t *testing.T) {
	reg := metrics.NewRegistry()
	specs := testSpecs(7)
	ri := NewRunInstruments(reg, nil, len(specs))
	ri.Apply(specs)
	var placed int64
	Run(specs, ri.Wrap(Options{OnResult: func(_ int, res *core.CellResult) {
		placed += int64(res.Sched.TasksPlaced)
	}}))
	if got := reg.Counter("sched_tasks_placed_total").Value(); got != placed || placed == 0 {
		t.Fatalf("sched_tasks_placed_total = %d, results say %d", got, placed)
	}
}
