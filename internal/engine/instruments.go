package engine

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// RunInstruments threads a run-level observability surface through a
// multi-cell run: each cell simulates against a private
// metrics.Registry (concurrent cells never share one), and the
// registries merge into the run-level rollup in spec order on the
// serialized OnResult path — the same discipline the streaming reducers
// use — so the rolled-up snapshot is byte-identical at any Parallelism.
// A shared metrics.Timeline (wall-clock only, outside the determinism
// boundary) collects one "cell" span per cell plus a "reduce" span
// around the caller's OnResult work.
//
// The run-level registry also carries the live progress counters the
// HTTP endpoint renders: run_cells_total (gauge, += n per run),
// run_cells_started_total and run_cells_done_total (counters).
//
// All methods are nil-receiver safe, so runners apply instrumentation
// unconditionally:
//
//	ri := engine.NewRunInstruments(sc.Metrics, sc.Timeline, len(specs))
//	ri.Apply(specs)
//	results := engine.Run(specs, ri.Wrap(opts))
type RunInstruments struct {
	reg *metrics.Registry
	tl  *metrics.Timeline
	// cells[i] is cell i's private registry until its OnResult merge
	// releases it.
	cells []*metrics.Registry
	// starts[i] is cell i's wall-clock start, written by the worker in
	// OnStart and read on the OnResult path (the engine's result-handoff
	// mutex orders the two).
	starts        []time.Time
	started, done *metrics.Counter
}

// NewRunInstruments prepares instrumentation for an n-cell run feeding
// the run-level registry reg and timeline tl. Either may be nil; when
// both are, it returns nil and every method is a no-op.
func NewRunInstruments(reg *metrics.Registry, tl *metrics.Timeline, n int) *RunInstruments {
	if reg == nil && tl == nil {
		return nil
	}
	ri := &RunInstruments{reg: reg, tl: tl, starts: make([]time.Time, n)}
	if reg != nil {
		ri.cells = make([]*metrics.Registry, n)
		for i := range ri.cells {
			ri.cells[i] = metrics.NewRegistry()
		}
		reg.Gauge("run_cells_total").Add(float64(n))
		ri.started = reg.Counter("run_cells_started_total")
		ri.done = reg.Counter("run_cells_done_total")
	}
	return ri
}

// Cell returns cell i's options with its instrumentation applied: the
// private per-cell registry (replacing any run-level registry the
// options inherited) and the shared timeline with TID i.
func (ri *RunInstruments) Cell(i int, o core.Options) core.Options {
	if ri == nil {
		return o
	}
	o.Metrics = nil
	if ri.cells != nil {
		o.Metrics = ri.cells[i]
	}
	o.Timeline = ri.tl
	o.TimelineID = i
	return o
}

// Apply instruments every spec in place — the materialized-spec path
// (Run). RunStream callers apply Cell inside their spec closure instead.
func (ri *RunInstruments) Apply(specs []Spec) {
	if ri == nil {
		return
	}
	for i := range specs {
		specs[i].Options = ri.Cell(i, specs[i].Options)
	}
}

// Wrap decorates the run's hooks with the instrumentation work: OnStart
// counts the cell as started and stamps its wall-clock start; OnResult
// records the cell span, merges the cell's registry into the run
// registry (spec order — OnResult delivery is serialized and in-order),
// releases it, counts the cell done, and wraps the caller's own
// OnResult in a "reduce" span. Wrap must be called at most once per
// run's options.
func (ri *RunInstruments) Wrap(opts Options) Options {
	if ri == nil {
		return opts
	}
	onStart, onResult := opts.OnStart, opts.OnResult
	opts.OnStart = func(i int) {
		if ri.started != nil {
			ri.started.Inc()
		}
		ri.starts[i] = time.Now()
		if onStart != nil {
			onStart(i)
		}
	}
	opts.OnResult = func(i int, res *core.CellResult) {
		if ri.tl != nil && !ri.starts[i].IsZero() {
			ri.tl.Record("cell", "cell", i, ri.starts[i], time.Since(ri.starts[i]))
		}
		if ri.reg != nil {
			ri.reg.Merge(ri.cells[i])
			ri.cells[i] = nil
			ri.done.Inc()
		}
		if onResult != nil {
			if ri.tl == nil {
				onResult(i, res)
				return
			}
			done := ri.tl.Span("reduce", "reduce", i)
			onResult(i, res)
			done()
		}
	}
	return opts
}
