package engine

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testSpecs builds a small three-cell run.
func testSpecs(root uint64) []Spec {
	base := core.Options{Horizon: 2 * sim.Hour}
	return []Spec{
		NewSpec(0, workload.Profile2019("a", 40), base, root),
		NewSpec(1, workload.Profile2019("b", 40), base, root),
		NewSpec(2, workload.Profile2011(50), base, root),
	}
}

// sameTrace compares every row of two traces.
func sameTrace(t *testing.T, cell string, a, b *trace.MemTrace) {
	t.Helper()
	if !reflect.DeepEqual(a.CollectionEvents, b.CollectionEvents) {
		t.Fatalf("cell %s: collection events differ", cell)
	}
	if !reflect.DeepEqual(a.InstanceEvents, b.InstanceEvents) {
		t.Fatalf("cell %s: instance events differ", cell)
	}
	if !reflect.DeepEqual(a.UsageRecords, b.UsageRecords) {
		t.Fatalf("cell %s: usage records differ", cell)
	}
	if !reflect.DeepEqual(a.MachineEvents, b.MachineEvents) {
		t.Fatalf("cell %s: machine events differ", cell)
	}
}

func TestParallelismDoesNotChangeTraces(t *testing.T) {
	serial := Run(testSpecs(7), Options{Parallelism: 1})
	for _, par := range []int{2, 8} {
		parallel := Run(testSpecs(7), Options{Parallelism: par})
		if len(parallel) != len(serial) {
			t.Fatalf("result count %d", len(parallel))
		}
		for i := range serial {
			sameTrace(t, serial[i].Profile.Name, serial[i].Trace, parallel[i].Trace)
			if serial[i].Rows != parallel[i].Rows {
				t.Fatalf("cell %d row counts differ", i)
			}
		}
	}
}

func TestOnResultStreamsInSpecOrder(t *testing.T) {
	var order []int
	Run(testSpecs(3), Options{
		Parallelism: 8,
		OnResult: func(i int, res *core.CellResult) {
			order = append(order, i)
			if res == nil || res.Trace == nil {
				t.Errorf("empty result at %d", i)
			}
		},
	})
	if len(order) != 3 {
		t.Fatalf("callbacks: %v", order)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("out-of-order delivery: %v", order)
		}
	}
}

func TestNoMemTraceStreamsWithoutRetention(t *testing.T) {
	counter := &trace.CountingSink{}
	specs := []Spec{NewSpec(0, workload.Profile2019("c", 30), core.Options{
		Horizon:    1 * sim.Hour,
		NoMemTrace: true,
		ExtraSinks: []trace.Sink{counter},
	}, 5)}
	res := Run(specs, Options{Parallelism: 1})[0]
	if res.Trace != nil {
		t.Fatal("trace retained despite NoMemTrace")
	}
	if res.Rows.Total() == 0 {
		t.Fatal("no rows counted")
	}
	if counter.Counts() != res.Rows {
		t.Fatalf("sink saw %+v, counter %+v", counter.Counts(), res.Rows)
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	// The contract is stability: these values must never change, or every
	// regenerated trace silently shifts.
	if got := DeriveSeed(1, 0); got != DeriveSeed(1, 0) {
		t.Fatal("unstable")
	}
	seen := map[uint64]int{}
	for root := uint64(0); root < 8; root++ {
		for cell := 0; cell < 64; cell++ {
			s := DeriveSeed(root, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %d (%d)", s, prev)
			}
			seen[s] = cell
		}
	}
}

func TestIDBaseDisjoint(t *testing.T) {
	if IDBase(0) != 0 || IDBase(1) != 1<<32 || IDBase(9) != 9<<32 {
		t.Fatalf("IDBase values: %d %d %d", IDBase(0), IDBase(1), IDBase(9))
	}
}

func TestEmptyRun(t *testing.T) {
	if res := Run(nil, Options{}); len(res) != 0 {
		t.Fatalf("got %v", res)
	}
}

// TestAttachSinksPerCell pins the per-cell sink idiom: AttachSinks gives
// every spec its own sink (no SyncSink needed), nil sinks are skipped,
// and counts per cell match the engine's row accounting at full
// parallelism — the configuration the race detector exercises in CI.
func TestAttachSinksPerCell(t *testing.T) {
	specs := testSpecs(9)
	counters := make([]*trace.CountingSink, len(specs))
	AttachSinks(specs, func(i int) trace.Sink {
		if i == 1 {
			return nil // spec 1 keeps its pipeline unchanged
		}
		counters[i] = &trace.CountingSink{}
		return counters[i]
	})
	for i := range specs {
		specs[i].Options.NoMemTrace = true
	}
	results := Run(specs, Options{Parallelism: len(specs)})
	for i, res := range results {
		if i == 1 {
			if counters[i] != nil {
				t.Fatal("nil sink was attached")
			}
			continue
		}
		if counters[i].Counts() != res.Rows {
			t.Fatalf("cell %d: sink saw %+v, engine counted %+v", i, counters[i].Counts(), res.Rows)
		}
	}
}

// TestDeriveGridSeed pins the 2-D sweep seed contract: composition of
// DeriveSeed (so replicate roots and cell seeds follow the published
// 1-D contract), collision-freedom over a realistic grid, and — by
// construction — independence from anything but (root, run, cell).
func TestDeriveGridSeed(t *testing.T) {
	if got, want := DeriveGridSeed(7, 3, 5), DeriveSeed(DeriveSeed(7, 3), 5); got != want {
		t.Fatalf("DeriveGridSeed(7,3,5)=%d, want DeriveSeed composition %d", got, want)
	}
	seen := make(map[uint64][2]int)
	for run := 0; run < 64; run++ {
		for cell := 0; cell < 16; cell++ {
			s := DeriveGridSeed(1, run, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d)", run, cell, prev[0], prev[1])
			}
			seen[s] = [2]int{run, cell}
		}
	}
}

// TestSlowOnResultStallsOnlyDeliveringWorker pins the delivery
// invariant behind the drain loop: while one worker is stuck inside a
// slow OnResult callback, the rest of the pool keeps simulating. The
// callback for cell 0 refuses to return until every cell has reported
// OnStart — which can only happen if the non-delivering worker kept
// draining the queue.
func TestSlowOnResultStallsOnlyDeliveringWorker(t *testing.T) {
	const n = 4
	started := make(chan int, n)
	base := core.Options{Horizon: sim.Hour, NoMemTrace: true}
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = NewSpec(i, workload.Profile2019("a", 20), base, 5)
	}
	var order []int
	Run(specs, Options{
		Parallelism: 2,
		OnStart:     func(i int) { started <- i },
		OnResult: func(i int, res *core.CellResult) {
			order = append(order, i)
			if i != 0 {
				return
			}
			deadline := time.After(30 * time.Second)
			for seen := 0; seen < n; {
				select {
				case <-started:
					seen++
				case <-deadline:
					t.Error("pool stalled: not every cell started while OnResult(0) was blocked")
					return
				}
			}
		},
	})
	if len(order) != n {
		t.Fatalf("delivered %d results, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("out-of-order delivery under slow consumer: %v", order)
		}
	}
}

// TestRunStreamMatchesRun checks the streaming pool against the
// materialized one: same per-cell row counts in the same order at
// parallelism 1 and 8, with every cell's OnStart firing exactly once.
func TestRunStreamMatchesRun(t *testing.T) {
	const n = 6
	base := core.Options{Horizon: sim.Hour, NoMemTrace: true}
	mk := func(i int) Spec { return NewSpec(i, workload.Profile2019("a", 20), base, 11) }
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = mk(i)
	}
	want := Run(specs, Options{Parallelism: 1})
	for _, par := range []int{1, 8} {
		starts := make([]int32, n)
		var order []int
		var rows []trace.RowCounts
		RunStream(n, mk, Options{
			Parallelism: par,
			OnStart:     func(i int) { atomic.AddInt32(&starts[i], 1) },
			OnResult: func(i int, res *core.CellResult) {
				order = append(order, i)
				rows = append(rows, res.Rows)
				if res.Trace != nil {
					t.Errorf("par %d: RunStream retained a MemTrace for cell %d", par, i)
				}
			},
		})
		if len(order) != n {
			t.Fatalf("par %d: delivered %d results, want %d", par, len(order), n)
		}
		for i := range order {
			if order[i] != i {
				t.Fatalf("par %d: out-of-order delivery %v", par, order)
			}
			if rows[i] != want[i].Rows {
				t.Fatalf("par %d: cell %d rows %+v, want %+v", par, i, rows[i], want[i].Rows)
			}
			if starts[i] != 1 {
				t.Fatalf("par %d: cell %d started %d times", par, i, starts[i])
			}
		}
	}
}

// TestDeriveSeedFleetScaleDistinct extends the seed-contract coverage to
// fleet-sized index ranges: thousands of cells per root, grid seeds
// included, all pairwise distinct — a collision would silently correlate
// two cells' worlds.
func TestDeriveSeedFleetScaleDistinct(t *testing.T) {
	seen := make(map[uint64]string, 20000)
	record := func(s uint64, what string) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %s and %s", what, prev)
		}
		seen[s] = what
	}
	for _, root := range []uint64{1, 42} {
		for cell := 0; cell < 4096; cell++ {
			record(DeriveSeed(root, cell), "plain")
		}
	}
	for run := 0; run < 16; run++ {
		for cell := 0; cell < 512; cell++ {
			record(DeriveGridSeed(7, run, cell), "grid")
		}
	}
}

// TestNewGridSpec checks grid specs carry the grid seed and the flat
// index's disjoint ID space.
func TestNewGridSpec(t *testing.T) {
	p := workload.Profile2019("a", 10)
	base := core.Options{Horizon: 2 * sim.Hour, NoMemTrace: true}
	spec := NewGridSpec(2, 4, 23, p, base, 9)
	if spec.Options.Seed != DeriveGridSeed(9, 2, 4) {
		t.Fatalf("grid spec seed %d", spec.Options.Seed)
	}
	if spec.Options.IDBase != IDBase(23) {
		t.Fatalf("grid spec ID base %d", spec.Options.IDBase)
	}
	if spec.Profile != p || !spec.Options.NoMemTrace || spec.Options.Horizon != 2*sim.Hour {
		t.Fatal("grid spec dropped base options or profile")
	}
}
