package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split("scheduler")
	c2 := root.Split("workload")
	c1b := New(7).Split("scheduler")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatal("Split is not deterministic for same label")
		}
	}
	// Different labels must give different streams.
	c1 = New(7).Split("scheduler")
	diff := false
	for i := 0; i < 10; i++ {
		if c1.Uint64() != c2.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("Split streams for different labels are identical")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split("x")
	_ = a.SplitN(4)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < n/7-1500 || c > n/7+1500 {
			t.Fatalf("Intn(7) biased: value %d appeared %d times (expected ~%d)", v, c, n/7)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		if v := s.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) returned %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	const n = 300000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	for n := 0; n < 50; n++ {
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(29)
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

// Property: Uint64n(n) < n for all n > 0.
func TestUint64nPropertyBound(t *testing.T) {
	s := New(31)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: New(seed) produces identical prefixes for identical seeds.
func TestSeedDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64OpenNeverZeroOrOne(t *testing.T) {
	s := New(37)
	for i := 0; i < 100000; i++ {
		f := s.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Float64()
	}
	_ = sink
}
