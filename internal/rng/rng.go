// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component in the repository.
//
// The generator is xoshiro256** seeded via splitmix64. Unlike math/rand,
// its output is stable across Go releases and platforms, which keeps every
// generated trace — and therefore every reproduced table and figure —
// bit-for-bit reproducible from a single root seed.
package rng

import "math"

// Source is a deterministic 64-bit PRNG (xoshiro256**).
//
// The zero value is not usable; construct with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64

	// Cached second variate from the polar Box–Muller transform.
	spare     float64
	haveSpare bool
}

// splitmix64 advances the seed and returns the next splitmix64 output.
// It is used to expand a single seed into the four xoshiro words and to
// derive child stream seeds.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give independent
// streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	var s Source
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four zero words from any seed, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
	return &s
}

// Split derives an independent child stream from the parent, keyed by label.
// The parent's state is not advanced, so the set of children depends only on
// the parent's seed and the labels used — subsystems can be added or removed
// without perturbing each other's randomness.
func (s *Source) Split(label string) *Source {
	x := s.s0 ^ rotl(s.s2, 17)
	for i := 0; i < len(label); i++ {
		x = (x ^ uint64(label[i])) * 0x100000001b3
	}
	return New(x)
}

// SplitN derives an independent child stream keyed by an integer, e.g. a
// cell index or job ordinal.
func (s *Source) SplitN(n uint64) *Source {
	x := s.s1 ^ rotl(s.s3, 29) ^ (n * 0x9e3779b97f4a7c15)
	return New(x)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly 0 or 1.
// Distributions that take logarithms of the variate use this to avoid
// infinities.
func (s *Source) Float64Open() float64 {
	for {
		f := s.Float64()
		if f > 0 && f < 1 {
			return f
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Rejection sampling on the top of the range to remove modulo bias.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := s.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int63 returns a non-negative int64, mirroring math/rand's contract so the
// Source can back code written against that interface shape.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// NormFloat64 returns a standard normal variate via the polar Box–Muller
// (Marsaglia) method. The spare variate is cached.
func (s *Source) NormFloat64() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.haveSpare = true
		return u * f
	}
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}
