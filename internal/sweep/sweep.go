// Package sweep runs seed × profile parameter sweeps on the multi-cell
// engine and reduces them to cross-seed statistics. The paper's headline
// observations (tier mix, utilization, overcommit behavior) are
// single-trace numbers; a sweep quantifies their run-to-run variance and
// parameter sensitivity: N root-seed replicates × M named profile
// variants, each point simulating the full nine-cell suite (the 2011
// cell plus the 2019 cells a–h), with every figure folded online by
// streaming reducers — a sweep cell costs its reducer state, never a
// retained trace.
//
// # Grid contract
//
// The grid expands through the engine's published helpers: grid point
// (run, variant, cell) simulates with seed engine.DeriveGridSeed(root,
// run, cell) and ID space engine.IDBase(flat grid index). Seeds depend
// only on (root, run, cell) — never on the variant list — so variant A
// and variant B of replicate run face the same stochastic world (common
// random numbers), and adding a variant to a sweep never changes any
// other variant's numbers. Same root seed + same definition ⇒ the same
// Result — and byte-identical report — at any Parallelism.
//
// # Statistics
//
// Each grid point reduces to one scalar metric vector: the streaming
// reducers' per-cell scalars (streaming.Scalars) averaged over the eight
// 2019 cells, plus scheduler preemption/OOM counters summed over them.
// The 2011 cell simulates for era context but stays out of the averages.
// Across the N replicates of a variant, every metric gets a
// stats.CrossRun: mean, sample stddev, min/max, and the 95% Student-t
// confidence half-width.
package sweep

import (
	"fmt"

	"repro/internal/analysis/streaming"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/progress"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Variant is one named profile overlay: Apply mutates the freshly built
// cell profiles of a grid point (arrival-rate multipliers, machine-count
// scaling, tier-mix shifts, overcommit or admission-ceiling settings, …)
// before simulation. A nil Apply is the identity (baseline) variant.
type Variant struct {
	Name  string
	Apply func(*workload.CellProfile)
}

// Def defines a sweep.
type Def struct {
	// Scale is the base suite scale (machine counts, horizon, warmup);
	// Scale.Seed is the sweep's root seed, Scale.Progress (if set)
	// receives live progress lines for the whole grid, and Scale.Replay
	// (if set) replays the same recorded per-cell workloads at every grid
	// point — fixing the workload itself across variants, CRN beyond
	// seeds. Scale.Parallelism is ignored — the sweep schedules the whole
	// grid through one pool, see Parallelism below.
	Scale experiments.Scale
	// Seeds is the number of root-seed replicates (N ≥ 1).
	Seeds int
	// Variants are the profile overlays to compare; empty means just the
	// baseline.
	Variants []Variant
	// Parallelism bounds the engine worker pool across the entire grid;
	// <= 0 means GOMAXPROCS. It never changes the result.
	Parallelism int
}

// VariantStats is one variant's cross-seed outcome.
type VariantStats struct {
	Name string
	// PerSeed[r][m] is metric m of replicate run r.
	PerSeed [][]float64
	// Stats[m] summarizes metric m across the replicates.
	Stats []stats.CrossRun
	// Diffs[m] summarizes the per-replicate paired difference of metric m
	// against the sweep's baseline variant (this variant minus baseline,
	// replicate by replicate). Because replicate r of every variant shares
	// grid seeds (common random numbers), the paired Student-t CI on the
	// difference is the statistically right — and typically much tighter —
	// comparison. Nil for the baseline variant itself.
	Diffs []stats.CrossRun
	// UnpairedCI95[m] is the Welch two-sample 95% half-width on the same
	// mean difference, ignoring the pairing — the counterfactual interval
	// the CRN discipline beats. Nil exactly when Diffs is.
	UnpairedCI95 []float64
}

// Result is a finished sweep: the definition it ran, the metric-vector
// names, and per-variant cross-seed statistics. All rendering
// (WriteReport, Table, WriteCSVs) is a pure function of this value.
type Result struct {
	Def      Def
	Metrics  []string
	Cells    int // suite cells simulated per grid point
	Variants []VariantStats
	// Baseline indexes the comparison anchor in Variants for the paired
	// differences: the first variant named "baseline" when present,
	// otherwise the first variant.
	Baseline int
}

// MetricNames returns the sweep metric vector's names in order: the
// streaming per-cell scalars (averaged over the 2019 cells), then the
// scheduler activity counters (summed over them).
func MetricNames() []string {
	return append(streaming.ScalarNames(), "preemptions", "oom_evictions")
}

// Run expands the sweep's seed × variant × cell grid, simulates every
// point through the engine with per-spec streaming reducers (NoMemTrace;
// no trace is ever retained), and aggregates cross-seed statistics.
func Run(d Def) (*Result, error) {
	if d.Seeds <= 0 {
		return nil, fmt.Errorf("sweep: Seeds must be >= 1, got %d", d.Seeds)
	}
	variants := d.Variants
	if len(variants) == 0 {
		variants = []Variant{Baseline()}
	}
	names := make(map[string]bool, len(variants))
	for i, v := range variants {
		if v.Name == "" {
			return nil, fmt.Errorf("sweep: variant %d has no name", i)
		}
		if names[v.Name] {
			return nil, fmt.Errorf("sweep: duplicate variant %q — report rows and CSV keys would be ambiguous", v.Name)
		}
		names[v.Name] = true
	}

	cells := len(experiments.SuiteProfiles(d.Scale))
	specs := make([]engine.Spec, 0, d.Seeds*len(variants)*cells)
	reducers := make([]*streaming.CellReducer, 0, cap(specs))
	base := core.Options{Horizon: d.Scale.Horizon, NoMemTrace: true,
		TimelineWarmup: d.Scale.Warmup}
	base.UsageNoiseFast = d.Scale.UsageNoiseFast
	flat := 0
	for run := 0; run < d.Seeds; run++ {
		for _, v := range variants {
			for c, p := range experiments.SuiteProfiles(d.Scale) {
				if v.Apply != nil {
					v.Apply(p)
				}
				spec := engine.NewGridSpec(run, c, flat, p, base, d.Scale.Seed)
				if c < len(d.Scale.Replay) {
					// The same recorded workload at every grid point of
					// cell c: variants then differ only in what the
					// scheduler does with identical arrivals.
					spec.Options.Replay = d.Scale.Replay[c]
				}
				red := experiments.NewCellReducerFor(spec)
				spec.Options.ExtraSinks = append(spec.Options.ExtraSinks, red)
				specs = append(specs, spec)
				reducers = append(reducers, red)
				flat++
			}
		}
	}

	opts := engine.Options{Parallelism: d.Parallelism}
	if d.Scale.Progress != nil {
		prog := progress.New(d.Scale.Progress, "sweep", len(specs))
		opts.OnStart = func(int) { prog.Start() }
		opts.OnResult = func(int, *core.CellResult) { prog.Done() }
	}
	// Grid points feed the sweep-level registry/timeline like suite cells
	// feed a suite's: one private registry per point, merged in grid
	// order, one timeline row per flat index.
	ri := engine.NewRunInstruments(d.Scale.Metrics, d.Scale.Timeline, len(specs))
	ri.Apply(specs)
	results := engine.Run(specs, ri.Wrap(opts))

	res := &Result{Def: d, Metrics: MetricNames(), Cells: cells}
	res.Def.Variants = variants
	for vi, v := range variants {
		vs := VariantStats{Name: v.Name}
		for run := 0; run < d.Seeds; run++ {
			lo := (run*len(variants) + vi) * cells
			vs.PerSeed = append(vs.PerSeed, pointMetrics(
				reducers[lo:lo+cells], results[lo:lo+cells], d.Scale))
		}
		vs.Stats = make([]stats.CrossRun, len(res.Metrics))
		for m := range res.Metrics {
			xs := make([]float64, d.Seeds)
			for run := 0; run < d.Seeds; run++ {
				xs[run] = vs.PerSeed[run][m]
			}
			vs.Stats[m] = stats.SummarizeRuns(xs)
		}
		res.Variants = append(res.Variants, vs)
	}

	// Paired differences against the baseline anchor: replicate r of every
	// variant shares seeds (see the grid contract), so the per-replicate
	// difference cancels common noise and its paired-t CI is the right
	// comparison interval.
	for i, v := range variants {
		if v.Name == "baseline" {
			res.Baseline = i
			break
		}
	}
	anchor := &res.Variants[res.Baseline]
	for vi := range res.Variants {
		if vi == res.Baseline {
			continue
		}
		vs := &res.Variants[vi]
		vs.Diffs = make([]stats.CrossRun, len(res.Metrics))
		vs.UnpairedCI95 = make([]float64, len(res.Metrics))
		for m := range res.Metrics {
			xs := make([]float64, d.Seeds)
			ys := make([]float64, d.Seeds)
			for run := 0; run < d.Seeds; run++ {
				xs[run] = anchor.PerSeed[run][m]
				ys[run] = vs.PerSeed[run][m]
			}
			diff, err := stats.PairedDiff(xs, ys)
			if err != nil {
				return nil, err
			}
			vs.Diffs[m] = diff
			vs.UnpairedCI95[m] = stats.UnpairedDiffCI95(xs, ys)
		}
	}
	return res, nil
}

// pointMetrics reduces one grid point's suite (nine reducers + nine cell
// results) to the sweep metric vector: reducer scalars averaged over the
// 2019 cells, scheduler counters summed over them.
func pointMetrics(reds []*streaming.CellReducer, results []*core.CellResult, sc experiments.Scale) []float64 {
	scalars := len(streaming.ScalarNames())
	vec := make([]float64, scalars+2)
	n2019 := 0
	for i, r := range reds {
		if r.Meta().Era != trace.Era2019 {
			continue
		}
		n2019++
		for m, s := range r.Scalars(sc.Warmup) {
			vec[m] += s.Value
		}
		vec[scalars] += float64(results[i].Sched.Preemptions)
		vec[scalars+1] += float64(results[i].Sched.OOMEvictions)
	}
	if n2019 > 0 {
		for m := 0; m < scalars; m++ {
			vec[m] /= float64(n2019)
		}
	}
	return vec
}
