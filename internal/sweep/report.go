package sweep

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/report"
	"repro/internal/table"
)

// WriteReport renders the sweep: a header describing the grid, a
// variant × metric summary of cross-seed means, then one table per
// metric with the full cross-seed statistics (mean, stddev, min, max,
// 95% CI half-width, n). Output is a pure function of the Result, so the
// determinism contract extends to the report bytes.
func (r *Result) WriteReport(w io.Writer) error {
	d := r.Def
	if _, err := fmt.Fprintf(w,
		"== sweep: scale %q · %d seeds × %d variants × %d cells · root seed %d ==\n",
		d.Scale.Name, d.Seeds, len(r.Variants), r.Cells, d.Scale.Seed); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"(scalar metrics averaged over the eight 2019 cells; preemptions/oom summed; ±95%% CI via Student-t, n=%d)\n\n",
		d.Seeds); err != nil {
		return err
	}

	headers := append([]string{"variant"}, r.Metrics...)
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		row := []string{v.Name}
		for _, st := range v.Stats {
			row = append(row, report.F(st.Mean))
		}
		rows = append(rows, row)
	}
	if _, err := fmt.Fprintln(w, "== sweep summary: cross-seed means =="); err != nil {
		return err
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}

	for m, name := range r.Metrics {
		if _, err := fmt.Fprintf(w, "\n== metric %s ==\n", name); err != nil {
			return err
		}
		rows := make([][]string, 0, len(r.Variants))
		for _, v := range r.Variants {
			st := v.Stats[m]
			rows = append(rows, []string{
				v.Name,
				report.F(st.Mean),
				report.F(st.Stddev),
				report.F(st.Min),
				report.F(st.Max),
				report.F(st.CI95),
				strconv.Itoa(st.N),
			})
		}
		if err := report.Table(w, []string{"variant", "mean", "stddev", "min", "max", "ci95±", "n"}, rows); err != nil {
			return err
		}
	}
	return r.writePairedSection(w)
}

// writePairedSection renders the paired-difference comparison: for every
// non-baseline variant and metric, the per-replicate variant-minus-
// baseline difference (mean, stddev, paired-t 95% half-width) next to the
// Welch unpaired half-width on the same data. Because replicates share
// grid seeds across variants (common random numbers), the paired
// interval is the honest one — and its advantage over the unpaired
// column is the variance reduction the seeding discipline buys. Omitted
// when the sweep has a single variant (nothing to compare).
func (r *Result) writePairedSection(w io.Writer) error {
	if len(r.Variants) < 2 {
		return nil
	}
	base := r.Variants[r.Baseline]
	if _, err := fmt.Fprintf(w,
		"\n== paired differences vs %q (per-replicate diffs under common random numbers) ==\n",
		base.Name); err != nil {
		return err
	}
	var rows [][]string
	for _, v := range r.Variants {
		if v.Diffs == nil {
			continue
		}
		for m, d := range v.Diffs {
			rows = append(rows, []string{
				v.Name, r.Metrics[m],
				report.F(d.Mean), report.F(d.Stddev),
				report.F(d.CI95), report.F(v.UnpairedCI95[m]),
				strconv.Itoa(d.N),
			})
		}
	}
	return report.Table(w,
		[]string{"variant", "metric", "diff mean", "diff stddev", "paired ci95±", "unpaired ci95±", "n"}, rows)
}

// Table materializes the sweep's per-seed measurements as a long-form
// columnar table (variant, seed, metric, value) — the shape the table
// engine's filters and group-bys consume, and the source of the CSV
// exports.
func (r *Result) Table() *table.Table {
	t := table.New(
		table.Column{Name: "variant", Type: table.String},
		table.Column{Name: "seed", Type: table.Int64},
		table.Column{Name: "metric", Type: table.String},
		table.Column{Name: "value", Type: table.Float64},
	)
	for _, v := range r.Variants {
		for run, vec := range v.PerSeed {
			for m, x := range vec {
				t.Append(v.Name, int64(run), r.Metrics[m], x)
			}
		}
	}
	return t
}

// WriteCSVs exports the sweep to dir (created if needed): one
// <metric>.csv per metric with the per-seed values in long form, plus
// summary.csv holding every variant × metric CrossRun. Files are written
// deterministically, so two runs of the same sweep produce identical
// bytes.
func (r *Result) WriteCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	long := r.Table()
	for _, name := range r.Metrics {
		q := table.From(long).Where(table.EqString("metric", name))
		variants := q.StringCol("variant")
		seeds := q.IntCol("seed")
		values := q.FloatCol("value")
		rows := make([][]string, len(values))
		for i := range values {
			rows[i] = []string{variants[i], strconv.FormatInt(seeds[i], 10), report.F(values[i])}
		}
		if err := writeCSVFile(filepath.Join(dir, name+".csv"),
			[]string{"variant", "seed", name}, rows); err != nil {
			return err
		}
	}

	var rows [][]string
	for _, v := range r.Variants {
		for m, st := range v.Stats {
			rows = append(rows, []string{
				v.Name, r.Metrics[m],
				report.F(st.Mean), report.F(st.Stddev),
				report.F(st.Min), report.F(st.Max),
				report.F(st.CI95), strconv.Itoa(st.N),
			})
		}
	}
	if err := writeCSVFile(filepath.Join(dir, "summary.csv"),
		[]string{"variant", "metric", "mean", "stddev", "min", "max", "ci95", "n"}, rows); err != nil {
		return err
	}

	// paired_diffs.csv mirrors the report's paired-difference section:
	// variant-minus-baseline per-replicate differences with both the
	// paired and the unpaired 95% half-widths.
	var diffRows [][]string
	for _, v := range r.Variants {
		if v.Diffs == nil {
			continue
		}
		for m, d := range v.Diffs {
			diffRows = append(diffRows, []string{
				v.Name, r.Variants[r.Baseline].Name, r.Metrics[m],
				report.F(d.Mean), report.F(d.Stddev),
				report.F(d.CI95), report.F(v.UnpairedCI95[m]),
				strconv.Itoa(d.N),
			})
		}
	}
	if len(diffRows) == 0 {
		return nil
	}
	return writeCSVFile(filepath.Join(dir, "paired_diffs.csv"),
		[]string{"variant", "baseline", "metric", "diff_mean", "diff_stddev", "paired_ci95", "unpaired_ci95", "n"}, diffRows)
}

// writeCSVFile writes one CSV through the report codec.
func writeCSVFile(path string, headers []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteCSV(f, headers, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
