package sweep

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/report"
	"repro/internal/table"
)

// WriteReport renders the sweep: a header describing the grid, a
// variant × metric summary of cross-seed means, then one table per
// metric with the full cross-seed statistics (mean, stddev, min, max,
// 95% CI half-width, n). Output is a pure function of the Result, so the
// determinism contract extends to the report bytes.
func (r *Result) WriteReport(w io.Writer) error {
	d := r.Def
	if _, err := fmt.Fprintf(w,
		"== sweep: scale %q · %d seeds × %d variants × %d cells · root seed %d ==\n",
		d.Scale.Name, d.Seeds, len(r.Variants), r.Cells, d.Scale.Seed); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"(scalar metrics averaged over the eight 2019 cells; preemptions/oom summed; ±95%% CI via Student-t, n=%d)\n\n",
		d.Seeds); err != nil {
		return err
	}

	headers := append([]string{"variant"}, r.Metrics...)
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		row := []string{v.Name}
		for _, st := range v.Stats {
			row = append(row, report.F(st.Mean))
		}
		rows = append(rows, row)
	}
	if _, err := fmt.Fprintln(w, "== sweep summary: cross-seed means =="); err != nil {
		return err
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}

	for m, name := range r.Metrics {
		if _, err := fmt.Fprintf(w, "\n== metric %s ==\n", name); err != nil {
			return err
		}
		rows := make([][]string, 0, len(r.Variants))
		for _, v := range r.Variants {
			st := v.Stats[m]
			rows = append(rows, []string{
				v.Name,
				report.F(st.Mean),
				report.F(st.Stddev),
				report.F(st.Min),
				report.F(st.Max),
				report.F(st.CI95),
				strconv.Itoa(st.N),
			})
		}
		if err := report.Table(w, []string{"variant", "mean", "stddev", "min", "max", "ci95±", "n"}, rows); err != nil {
			return err
		}
	}
	return nil
}

// Table materializes the sweep's per-seed measurements as a long-form
// columnar table (variant, seed, metric, value) — the shape the table
// engine's filters and group-bys consume, and the source of the CSV
// exports.
func (r *Result) Table() *table.Table {
	t := table.New(
		table.Column{Name: "variant", Type: table.String},
		table.Column{Name: "seed", Type: table.Int64},
		table.Column{Name: "metric", Type: table.String},
		table.Column{Name: "value", Type: table.Float64},
	)
	for _, v := range r.Variants {
		for run, vec := range v.PerSeed {
			for m, x := range vec {
				t.Append(v.Name, int64(run), r.Metrics[m], x)
			}
		}
	}
	return t
}

// WriteCSVs exports the sweep to dir (created if needed): one
// <metric>.csv per metric with the per-seed values in long form, plus
// summary.csv holding every variant × metric CrossRun. Files are written
// deterministically, so two runs of the same sweep produce identical
// bytes.
func (r *Result) WriteCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	long := r.Table()
	for _, name := range r.Metrics {
		q := table.From(long).Where(table.EqString("metric", name))
		variants := q.StringCol("variant")
		seeds := q.IntCol("seed")
		values := q.FloatCol("value")
		rows := make([][]string, len(values))
		for i := range values {
			rows[i] = []string{variants[i], strconv.FormatInt(seeds[i], 10), report.F(values[i])}
		}
		if err := writeCSVFile(filepath.Join(dir, name+".csv"),
			[]string{"variant", "seed", name}, rows); err != nil {
			return err
		}
	}

	var rows [][]string
	for _, v := range r.Variants {
		for m, st := range v.Stats {
			rows = append(rows, []string{
				v.Name, r.Metrics[m],
				report.F(st.Mean), report.F(st.Stddev),
				report.F(st.Min), report.F(st.Max),
				report.F(st.CI95), strconv.Itoa(st.N),
			})
		}
	}
	return writeCSVFile(filepath.Join(dir, "summary.csv"),
		[]string{"variant", "metric", "mean", "stddev", "min", "max", "ci95", "n"}, rows)
}

// writeCSVFile writes one CSV through the report codec.
func writeCSVFile(path string, headers []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteCSV(f, headers, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
