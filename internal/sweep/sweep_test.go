package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

// tinyScale keeps sweep tests fast: full nine-cell suites, small cells,
// short horizon.
func tinyScale() experiments.Scale {
	return experiments.Scale{Name: "tiny", Machines2011: 40, Machines2019: 30,
		Horizon: 3 * sim.Hour, Warmup: 1 * sim.Hour, Seed: 5}
}

func tinyDef(par int) Def {
	return Def{
		Scale:       tinyScale(),
		Seeds:       2,
		Variants:    []Variant{Baseline(), ArrivalScale(1.5)},
		Parallelism: par,
	}
}

// TestSweepDeterministicAcrossParallelism is the sweep's acceptance
// gate: parallelism 1 and 8 must produce deeply equal results and
// byte-identical report renderings.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	serial, err := Run(tinyDef(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(tinyDef(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Variants, parallel.Variants) {
		t.Fatal("sweep results differ between parallelism 1 and 8")
	}

	var a, b bytes.Buffer
	if err := serial.WriteReport(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("sweep report bytes differ between parallelism 1 and 8")
	}
	if a.Len() == 0 {
		t.Fatal("empty sweep report")
	}
	for _, name := range serial.Metrics {
		if !strings.Contains(a.String(), "== metric "+name+" ==") {
			t.Fatalf("report is missing the %s metric table", name)
		}
	}
}

// TestSweepSeedsProduceVariance proves the replicate seeds actually
// perturb the simulation: per-seed metric vectors differ and at least
// the rate metrics show nonzero cross-seed spread.
func TestSweepSeedsProduceVariance(t *testing.T) {
	res, err := Run(Def{Scale: tinyScale(), Seeds: 3, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Variants[0]
	if reflect.DeepEqual(v.PerSeed[0], v.PerSeed[1]) {
		t.Fatal("replicate seeds 0 and 1 produced identical metric vectors")
	}
	varying := 0
	for m, st := range v.Stats {
		if st.N != 3 {
			t.Fatalf("metric %s: n=%d, want 3", res.Metrics[m], st.N)
		}
		if st.Stddev > 0 {
			varying++
			if st.CI95 <= 0 {
				t.Fatalf("metric %s: stddev %g but CI95 %g", res.Metrics[m], st.Stddev, st.CI95)
			}
		}
		if st.Min > st.Mean || st.Mean > st.Max {
			t.Fatalf("metric %s: min/mean/max out of order: %+v", res.Metrics[m], st)
		}
	}
	if varying < len(res.Metrics)/2 {
		t.Fatalf("only %d/%d metrics vary across seeds", varying, len(res.Metrics))
	}
}

// TestVariantListDoesNotPerturbSharedVariants pins the common-random-
// numbers contract: a variant's per-seed numbers are identical whether
// it runs alone or alongside other variants, because grid seeds depend
// only on (root, run, cell).
func TestVariantListDoesNotPerturbSharedVariants(t *testing.T) {
	alone, err := Run(Def{Scale: tinyScale(), Seeds: 2, Parallelism: 8,
		Variants: []Variant{Baseline()}})
	if err != nil {
		t.Fatal(err)
	}
	paired, err := Run(Def{Scale: tinyScale(), Seeds: 2, Parallelism: 8,
		Variants: []Variant{ArrivalScale(2), Baseline()}})
	if err != nil {
		t.Fatal(err)
	}
	got := paired.Variants[1]
	if got.Name != "baseline" {
		t.Fatalf("variant order: got %q", got.Name)
	}
	if !reflect.DeepEqual(alone.Variants[0].PerSeed, got.PerSeed) {
		t.Fatal("baseline numbers changed when another variant joined the sweep")
	}
}

func TestRunRejectsBadDefs(t *testing.T) {
	if _, err := Run(Def{Scale: tinyScale(), Seeds: 0}); err == nil {
		t.Fatal("Seeds 0 accepted")
	}
	if _, err := Run(Def{Scale: tinyScale(), Seeds: 1,
		Variants: []Variant{Baseline(), Baseline()}}); err == nil {
		t.Fatal("duplicate variant names accepted")
	}
	if _, err := Run(Def{Scale: tinyScale(), Seeds: 1,
		Variants: []Variant{{Name: ""}}}); err == nil {
		t.Fatal("unnamed variant accepted")
	}
}

func TestParseVariants(t *testing.T) {
	vs, err := ParseVariants("arrival:0.5,1.0,2.0;overcommit:1.25;baseline")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, v := range vs {
		names = append(names, v.Name)
	}
	want := []string{"arrival:0.5", "arrival:1", "arrival:2", "overcommit:1.25", "baseline"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("parsed %v, want %v", names, want)
	}
	if vs[0].Apply == nil || vs[4].Apply != nil {
		t.Fatal("arrival variant must have an overlay; baseline must not")
	}
	for _, bad := range []string{"bogus:1", "arrival:zero", "arrival:-1", "arrival"} {
		if _, err := ParseVariants(bad); err == nil {
			t.Fatalf("ParseVariants(%q) accepted", bad)
		}
	}
	if vs, err := ParseVariants(""); err != nil || len(vs) != 1 || vs[0].Name != "baseline" {
		t.Fatalf("empty spec: %v, %v", vs, err)
	}
}

func TestVariantOverlaysMutateKnobs(t *testing.T) {
	p := workload.Profile2019("a", 100)
	baseRate, baseMachines := p.JobsPerHour, p.Machines
	baseOC := p.Overcommit.CPUFactor
	ArrivalScale(0.5).Apply(p)
	MachineScale(2).Apply(p)
	OvercommitScale(1.5).Apply(p)
	AllocCeiling(0.42).Apply(p)
	if p.JobsPerHour != baseRate*0.5 || p.Machines != baseMachines*2 {
		t.Fatalf("arrival/machines overlays: %g, %d", p.JobsPerHour, p.Machines)
	}
	if p.Overcommit.CPUFactor != baseOC*1.5 || p.BatchAllocCeiling != 0.42 {
		t.Fatalf("overcommit/ceiling overlays: %+v, %g", p.Overcommit, p.BatchAllocCeiling)
	}

	ProdShift(2).Apply(p)
	sum := 0.0
	for _, tier := range p.Tiers {
		sum += tier.ArrivalShare
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("prodshift left arrival shares summing to %g", sum)
	}
}

// TestSweepCSVs checks the per-metric and summary CSV exports exist,
// carry the long-form rows, and are byte-deterministic.
func TestSweepCSVs(t *testing.T) {
	res, err := Run(Def{Scale: tinyScale(), Seeds: 2, Parallelism: 8,
		Variants: []Variant{Baseline(), ArrivalScale(1.5)}})
	if err != nil {
		t.Fatal(err)
	}
	read := func(dir string) map[string][]byte {
		t.Helper()
		if err := res.WriteCSVs(dir); err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte)
		for _, name := range append([]string{"summary"}, res.Metrics...) {
			b, err := os.ReadFile(filepath.Join(dir, name+".csv"))
			if err != nil {
				t.Fatal(err)
			}
			if len(b) == 0 {
				t.Fatalf("%s.csv is empty", name)
			}
			out[name] = b
		}
		return out
	}
	first := read(filepath.Join(t.TempDir(), "a"))
	second := read(filepath.Join(t.TempDir(), "b"))
	if !reflect.DeepEqual(first, second) {
		t.Fatal("CSV exports are not deterministic")
	}

	lines := strings.Split(strings.TrimSpace(string(first["cpu_util"])), "\n")
	if lines[0] != "variant,seed,cpu_util" {
		t.Fatalf("metric CSV header %q", lines[0])
	}
	// header + (variants × seeds) rows
	if want := 1 + 2*2; len(lines) != want {
		t.Fatalf("cpu_util.csv has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(string(first["summary"]), "variant,metric,mean,stddev,min,max,ci95,n") {
		t.Fatalf("summary header: %q", strings.SplitN(string(first["summary"]), "\n", 2)[0])
	}
}
