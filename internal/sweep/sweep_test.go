package sweep

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/workload"
)

// tinyScale keeps sweep tests fast: full nine-cell suites, small cells,
// short horizon.
func tinyScale() experiments.Scale {
	return experiments.Scale{Name: "tiny", Machines2011: 40, Machines2019: 30,
		Horizon: 3 * sim.Hour, Warmup: 1 * sim.Hour, Seed: 5}
}

func tinyDef(par int) Def {
	return Def{
		Scale:       tinyScale(),
		Seeds:       2,
		Variants:    []Variant{Baseline(), ArrivalScale(1.5)},
		Parallelism: par,
	}
}

// TestSweepDeterministicAcrossParallelism is the sweep's acceptance
// gate: parallelism 1 and 8 must produce deeply equal results and
// byte-identical report renderings.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	serial, err := Run(tinyDef(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(tinyDef(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Variants, parallel.Variants) {
		t.Fatal("sweep results differ between parallelism 1 and 8")
	}

	var a, b bytes.Buffer
	if err := serial.WriteReport(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("sweep report bytes differ between parallelism 1 and 8")
	}
	if a.Len() == 0 {
		t.Fatal("empty sweep report")
	}
	for _, name := range serial.Metrics {
		if !strings.Contains(a.String(), "== metric "+name+" ==") {
			t.Fatalf("report is missing the %s metric table", name)
		}
	}
}

// TestSweepSeedsProduceVariance proves the replicate seeds actually
// perturb the simulation: per-seed metric vectors differ and at least
// the rate metrics show nonzero cross-seed spread.
func TestSweepSeedsProduceVariance(t *testing.T) {
	res, err := Run(Def{Scale: tinyScale(), Seeds: 3, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Variants[0]
	if reflect.DeepEqual(v.PerSeed[0], v.PerSeed[1]) {
		t.Fatal("replicate seeds 0 and 1 produced identical metric vectors")
	}
	varying := 0
	for m, st := range v.Stats {
		if st.N != 3 {
			t.Fatalf("metric %s: n=%d, want 3", res.Metrics[m], st.N)
		}
		if st.Stddev > 0 {
			varying++
			if st.CI95 <= 0 {
				t.Fatalf("metric %s: stddev %g but CI95 %g", res.Metrics[m], st.Stddev, st.CI95)
			}
		}
		if st.Min > st.Mean || st.Mean > st.Max {
			t.Fatalf("metric %s: min/mean/max out of order: %+v", res.Metrics[m], st)
		}
	}
	if varying < len(res.Metrics)/2 {
		t.Fatalf("only %d/%d metrics vary across seeds", varying, len(res.Metrics))
	}
}

// TestVariantListDoesNotPerturbSharedVariants pins the common-random-
// numbers contract: a variant's per-seed numbers are identical whether
// it runs alone or alongside other variants, because grid seeds depend
// only on (root, run, cell).
func TestVariantListDoesNotPerturbSharedVariants(t *testing.T) {
	alone, err := Run(Def{Scale: tinyScale(), Seeds: 2, Parallelism: 8,
		Variants: []Variant{Baseline()}})
	if err != nil {
		t.Fatal(err)
	}
	paired, err := Run(Def{Scale: tinyScale(), Seeds: 2, Parallelism: 8,
		Variants: []Variant{ArrivalScale(2), Baseline()}})
	if err != nil {
		t.Fatal(err)
	}
	got := paired.Variants[1]
	if got.Name != "baseline" {
		t.Fatalf("variant order: got %q", got.Name)
	}
	if !reflect.DeepEqual(alone.Variants[0].PerSeed, got.PerSeed) {
		t.Fatal("baseline numbers changed when another variant joined the sweep")
	}

	// The contract extends to policy variants: joining the sweep with a
	// different scheduler brain must leave the baseline untouched too.
	worstFit, err := PolicyVariant("worst-fit")
	if err != nil {
		t.Fatal(err)
	}
	zoo, err := Run(Def{Scale: tinyScale(), Seeds: 2, Parallelism: 8,
		Variants: []Variant{worstFit, Baseline()}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alone.Variants[0].PerSeed, zoo.Variants[1].PerSeed) {
		t.Fatal("baseline numbers changed when a policy variant joined the sweep")
	}
	if reflect.DeepEqual(zoo.Variants[0].PerSeed, zoo.Variants[1].PerSeed) {
		t.Fatal("worst-fit produced numbers identical to baseline — policy overlay did not apply")
	}
}

// TestPairedDiffsTighterThanUnpaired pins the sweep's statistical payoff:
// under the grid's common-random-numbers seeding, the paired-t interval
// on a variant-minus-baseline difference comes out tighter than the
// Welch unpaired interval from the same replicates. The advantage is a
// correlation effect, not an identity — a metric whose noise correlates
// weakly across arms can tip the other way at tiny n, because the paired
// t table (df = n−1) is harsher than Welch's (df up to 2n−2) — so the
// test demands strict tightness on the headline utilization metrics
// (strongly seed-correlated by construction) and majority tightness
// overall, rather than a universal per-metric inequality.
func TestPairedDiffsTighterThanUnpaired(t *testing.T) {
	bestFit, err := PolicyVariant("best-fit")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Def{Scale: tinyScale(), Seeds: 3, Parallelism: 8,
		Variants: []Variant{ArrivalScale(1.5), Baseline(), bestFit}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline != 1 {
		t.Fatalf("baseline anchor index %d, want 1", res.Baseline)
	}
	if res.Variants[1].Diffs != nil || res.Variants[1].UnpairedCI95 != nil {
		t.Fatal("baseline variant must carry no self-difference")
	}
	metric := func(name string) int {
		for m, n := range res.Metrics {
			if n == name {
				return m
			}
		}
		t.Fatalf("metric %q not in sweep vector", name)
		return -1
	}
	cpuUtil := metric("cpu_util")
	tighter, total := 0, 0
	for _, vi := range []int{0, 2} {
		v := res.Variants[vi]
		if len(v.Diffs) != len(res.Metrics) || len(v.UnpairedCI95) != len(res.Metrics) {
			t.Fatalf("variant %q: diff vectors sized %d/%d, want %d",
				v.Name, len(v.Diffs), len(v.UnpairedCI95), len(res.Metrics))
		}
		for m, d := range v.Diffs {
			if d.N != 3 {
				t.Fatalf("variant %q metric %s: diff n=%d, want 3", v.Name, res.Metrics[m], d.N)
			}
			if want := v.Stats[m].Mean - res.Variants[1].Stats[m].Mean; math.Abs(d.Mean-want) > 1e-9 {
				t.Fatalf("variant %q metric %s: diff mean %g, want %g", v.Name, res.Metrics[m], d.Mean, want)
			}
			total++
			if d.CI95 <= v.UnpairedCI95[m] {
				tighter++
			}
		}
		if d := v.Diffs[cpuUtil]; d.CI95 >= v.UnpairedCI95[cpuUtil] {
			t.Fatalf("variant %q: paired cpu_util CI95 %g not tighter than unpaired %g",
				v.Name, d.CI95, v.UnpairedCI95[cpuUtil])
		}
	}
	if 2*tighter < total {
		t.Fatalf("paired interval tighter for only %d/%d variant×metric pairs", tighter, total)
	}
}

func TestRunRejectsBadDefs(t *testing.T) {
	if _, err := Run(Def{Scale: tinyScale(), Seeds: 0}); err == nil {
		t.Fatal("Seeds 0 accepted")
	}
	if _, err := Run(Def{Scale: tinyScale(), Seeds: 1,
		Variants: []Variant{Baseline(), Baseline()}}); err == nil {
		t.Fatal("duplicate variant names accepted")
	}
	if _, err := Run(Def{Scale: tinyScale(), Seeds: 1,
		Variants: []Variant{{Name: ""}}}); err == nil {
		t.Fatal("unnamed variant accepted")
	}
}

func TestParseVariants(t *testing.T) {
	vs, err := ParseVariants("arrival:0.5,1.0,2.0;overcommit:1.25;baseline")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, v := range vs {
		names = append(names, v.Name)
	}
	want := []string{"arrival:0.5", "arrival:1", "arrival:2", "overcommit:1.25", "baseline"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("parsed %v, want %v", names, want)
	}
	if vs[0].Apply == nil || vs[4].Apply != nil {
		t.Fatal("arrival variant must have an overlay; baseline must not")
	}
	for _, bad := range []string{"bogus:1", "arrival:zero", "arrival:-1", "arrival"} {
		if _, err := ParseVariants(bad); err == nil {
			t.Fatalf("ParseVariants(%q) accepted", bad)
		}
	}
	if vs, err := ParseVariants(""); err != nil || len(vs) != 1 || vs[0].Name != "baseline" {
		t.Fatalf("empty spec: %v, %v", vs, err)
	}
}

// TestParseVariantsPolicyAndComposite covers the policy family and the
// name:knob=value composite clause grammar, plus the promise that every
// rejection names the valid set — a typo never silently no-ops.
func TestParseVariantsPolicyAndComposite(t *testing.T) {
	vs, err := ParseVariants("policy:best-fit,worst-fit;zoo-hot:policy=oversub,arrival=1.5")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, v := range vs {
		names = append(names, v.Name)
	}
	want := []string{"policy:best-fit", "policy:worst-fit", "zoo-hot"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("parsed %v, want %v", names, want)
	}

	p := workload.Profile2019("a", 100)
	baseRate := p.JobsPerHour
	vs[2].Apply(p)
	if p.Policy != scheduler.Oversub || p.JobsPerHour != baseRate*1.5 {
		t.Fatalf("composite overlay: policy %v, rate %g (base %g)", p.Policy, p.JobsPerHour, baseRate)
	}
	p2 := workload.Profile2019("a", 100)
	vs[1].Apply(p2)
	if p2.Policy != scheduler.WorstFit {
		t.Fatalf("policy overlay: got %v", p2.Policy)
	}

	// Every rejection names the valid set it was checked against.
	errorLists := []struct {
		spec  string
		lists []string
	}{
		{"bogus:1", familyNames()},                      // unknown family
		{"zoo:bogus=1", knobNames()},                    // unknown composite knob
		{"policy:bestfit", scheduler.PolicyNames()},     // unknown policy in family clause
		{"zoo:policy=bestfit", scheduler.PolicyNames()}, // unknown policy in composite
	}
	for _, tc := range errorLists {
		_, err := ParseVariants(tc.spec)
		if err == nil {
			t.Fatalf("ParseVariants(%q) accepted", tc.spec)
		}
		for _, name := range tc.lists {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("ParseVariants(%q) error %q does not list %q", tc.spec, err, name)
			}
		}
	}
	for _, bad := range []string{"zoo:arrival", "zoo:arrival=x", "zoo:arrival=-1", "zoo:arrival=0"} {
		if _, err := ParseVariants(bad); err == nil {
			t.Fatalf("ParseVariants(%q) accepted", bad)
		}
	}
	if _, err := PolicyVariant("nope"); err == nil {
		t.Fatal("PolicyVariant accepted an unknown policy name")
	}
}

func TestVariantOverlaysMutateKnobs(t *testing.T) {
	p := workload.Profile2019("a", 100)
	baseRate, baseMachines := p.JobsPerHour, p.Machines
	baseOC := p.Overcommit.CPUFactor
	ArrivalScale(0.5).Apply(p)
	MachineScale(2).Apply(p)
	OvercommitScale(1.5).Apply(p)
	AllocCeiling(0.42).Apply(p)
	if p.JobsPerHour != baseRate*0.5 || p.Machines != baseMachines*2 {
		t.Fatalf("arrival/machines overlays: %g, %d", p.JobsPerHour, p.Machines)
	}
	if p.Overcommit.CPUFactor != baseOC*1.5 || p.BatchAllocCeiling != 0.42 {
		t.Fatalf("overcommit/ceiling overlays: %+v, %g", p.Overcommit, p.BatchAllocCeiling)
	}

	ProdShift(2).Apply(p)
	sum := 0.0
	for _, tier := range p.Tiers {
		sum += tier.ArrivalShare
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("prodshift left arrival shares summing to %g", sum)
	}
}

// TestSweepCSVs checks the per-metric and summary CSV exports exist,
// carry the long-form rows, and are byte-deterministic.
func TestSweepCSVs(t *testing.T) {
	res, err := Run(Def{Scale: tinyScale(), Seeds: 2, Parallelism: 8,
		Variants: []Variant{Baseline(), ArrivalScale(1.5)}})
	if err != nil {
		t.Fatal(err)
	}
	read := func(dir string) map[string][]byte {
		t.Helper()
		if err := res.WriteCSVs(dir); err != nil {
			t.Fatal(err)
		}
		out := make(map[string][]byte)
		for _, name := range append([]string{"summary", "paired_diffs"}, res.Metrics...) {
			b, err := os.ReadFile(filepath.Join(dir, name+".csv"))
			if err != nil {
				t.Fatal(err)
			}
			if len(b) == 0 {
				t.Fatalf("%s.csv is empty", name)
			}
			out[name] = b
		}
		return out
	}
	first := read(filepath.Join(t.TempDir(), "a"))
	second := read(filepath.Join(t.TempDir(), "b"))
	if !reflect.DeepEqual(first, second) {
		t.Fatal("CSV exports are not deterministic")
	}

	lines := strings.Split(strings.TrimSpace(string(first["cpu_util"])), "\n")
	if lines[0] != "variant,seed,cpu_util" {
		t.Fatalf("metric CSV header %q", lines[0])
	}
	// header + (variants × seeds) rows
	if want := 1 + 2*2; len(lines) != want {
		t.Fatalf("cpu_util.csv has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(string(first["summary"]), "variant,metric,mean,stddev,min,max,ci95,n") {
		t.Fatalf("summary header: %q", strings.SplitN(string(first["summary"]), "\n", 2)[0])
	}

	diffLines := strings.Split(strings.TrimSpace(string(first["paired_diffs"])), "\n")
	if diffLines[0] != "variant,baseline,metric,diff_mean,diff_stddev,paired_ci95,unpaired_ci95,n" {
		t.Fatalf("paired_diffs header %q", diffLines[0])
	}
	// header + (non-baseline variants × metrics) rows
	if want := 1 + 1*len(res.Metrics); len(diffLines) != want {
		t.Fatalf("paired_diffs.csv has %d lines, want %d", len(diffLines), want)
	}

	var report bytes.Buffer
	if err := res.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), `== paired differences vs "baseline"`) {
		t.Fatal("report is missing the paired-difference section")
	}
}

// TestParseVariantsArrivalProcesses covers the polymorphic arrival
// family: numeric values keep their rate-multiplier meaning, everything
// else selects an arrival process by spec — in family clauses and in
// named composites alike — and typos list the registered process set.
func TestParseVariantsArrivalProcesses(t *testing.T) {
	vs, err := ParseVariants(
		"arrival:2,gamma:cv=2.5,cohorts:k=40+skew=1.5;bursty:arrival=weibull:cv=3,policy=best-fit")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, v := range vs {
		names = append(names, v.Name)
	}
	want := []string{"arrival:2", "arrival:gamma:cv=2.5", "arrival:cohorts:k=40+skew=1.5", "bursty"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("parsed %v, want %v", names, want)
	}

	p := workload.Profile2019("a", 100)
	baseRate := p.JobsPerHour
	vs[0].Apply(p)
	if p.JobsPerHour != baseRate*2 || p.Arrival != "" {
		t.Fatalf("numeric arrival value no longer scales the rate: %g (base %g), arrival %q",
			p.JobsPerHour, baseRate, p.Arrival)
	}
	vs[1].Apply(p)
	if p.Arrival != "gamma:cv=2.5" {
		t.Fatalf("process variant set Arrival = %q", p.Arrival)
	}
	p2 := workload.Profile2019("a", 100)
	vs[3].Apply(p2)
	if p2.Arrival != "weibull:cv=3" || p2.Policy != scheduler.BestFit {
		t.Fatalf("composite overlay: arrival %q, policy %v", p2.Arrival, p2.Policy)
	}

	for _, tc := range []struct {
		spec  string
		lists []string
	}{
		{"arrival:loglogistic", workload.ArrivalNames()},
		{"x:arrival=loglogistic", workload.ArrivalNames()},
	} {
		_, err := ParseVariants(tc.spec)
		if err == nil {
			t.Fatalf("ParseVariants(%q) accepted", tc.spec)
		}
		for _, name := range tc.lists {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("ParseVariants(%q) error %q does not list %q", tc.spec, err, name)
			}
		}
	}
	for _, bad := range []string{"arrival:gamma:burst=2", "x:arrival=gamma:cv=-1"} {
		if _, err := ParseVariants(bad); err == nil {
			t.Fatalf("ParseVariants(%q) accepted", bad)
		}
	}
}

// TestSweepReplayFixesWorkloadAcrossVariants pins the CRN-beyond-seeds
// contract of Scale.Replay: when every grid point replays the same
// recorded workloads, an arrival-process variant has nothing left to
// vary — its metrics equal the baseline's exactly — while the replayed
// numbers still match a plain generated run at the recording seed.
func TestSweepReplayFixesWorkloadAcrossVariants(t *testing.T) {
	rec := tinyScale()
	rec.RecordWorkload = true
	suite := experiments.RunSuite(rec)
	recs := make([]*workload.Recording, len(suite.Stats))
	for i := range suite.Stats {
		recs[i] = suite.Stats[i].Workload
	}

	d := Def{
		Scale:       tinyScale(),
		Seeds:       1,
		Variants:    []Variant{Baseline(), mustVariant(t, "arrival:gamma:cv=2.5")},
		Parallelism: 4,
	}
	d.Scale.Replay = recs
	res, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	base, alt := res.Variants[0], res.Variants[1]
	if !reflect.DeepEqual(base.PerSeed, alt.PerSeed) {
		t.Fatalf("arrival variant moved metrics under replayed workloads:\nbase %v\nalt  %v",
			base.PerSeed[0], alt.PerSeed[0])
	}

	// Sanity check the control: without replay the same variant moves at
	// least one metric.
	d2 := d
	d2.Scale.Replay = nil
	res2, err := Run(d2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(res2.Variants[0].PerSeed, res2.Variants[1].PerSeed) {
		t.Fatal("gamma:cv=2.5 variant changed nothing even without replay — variant inert")
	}
}

func mustVariant(t *testing.T, spec string) Variant {
	t.Helper()
	vs, err := ParseVariants(spec)
	if err != nil || len(vs) != 1 {
		t.Fatalf("ParseVariants(%q): %v (%d variants)", spec, err, len(vs))
	}
	return vs[0]
}
