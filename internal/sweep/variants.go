package sweep

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/scheduler"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Baseline returns the identity variant: profiles simulate exactly as
// the experiments suite builds them.
func Baseline() Variant { return Variant{Name: "baseline"} }

// ArrivalScale returns a variant multiplying every cell's job arrival
// rate by f (load sensitivity).
func ArrivalScale(f float64) Variant {
	return Variant{
		Name:  "arrival:" + ftoa(f),
		Apply: func(p *workload.CellProfile) { p.JobsPerHour *= f },
	}
}

// MachineScale returns a variant multiplying every cell's machine count
// by f, rounded, never below one machine (capacity sensitivity).
func MachineScale(f float64) Variant {
	return Variant{
		Name: "machines:" + ftoa(f),
		Apply: func(p *workload.CellProfile) {
			m := int(math.Round(float64(p.Machines) * f))
			if m < 1 {
				m = 1
			}
			p.Machines = m
		},
	}
}

// OvercommitScale returns a variant multiplying both overcommit factors
// by f (§4's allocation-ceiling sensitivity).
func OvercommitScale(f float64) Variant {
	return Variant{
		Name: "overcommit:" + ftoa(f),
		Apply: func(p *workload.CellProfile) {
			p.Overcommit.CPUFactor *= f
			p.Overcommit.MemFactor *= f
		},
	}
}

// AllocCeiling returns a variant pinning the batch admission
// controller's best-effort-batch CPU ceiling to the absolute fraction v.
func AllocCeiling(v float64) Variant {
	return Variant{
		Name:  "allocceiling:" + ftoa(v),
		Apply: func(p *workload.CellProfile) { p.BatchAllocCeiling = v },
	}
}

// ProdShift returns a variant multiplying the production tier's arrival
// share by f and renormalizing the tier mix to sum to one (tier-mix
// sensitivity: cell a versus cell b is exactly such a shift).
func ProdShift(f float64) Variant {
	return Variant{
		Name: "prodshift:" + ftoa(f),
		Apply: func(p *workload.CellProfile) {
			total := 0.0
			for i := range p.Tiers {
				if p.Tiers[i].Tier == trace.TierProduction {
					p.Tiers[i].ArrivalShare *= f
				}
				total += p.Tiers[i].ArrivalShare
			}
			if total <= 0 {
				return
			}
			for i := range p.Tiers {
				p.Tiers[i].ArrivalShare /= total
			}
		},
	}
}

// ArrivalProcessVariant returns a variant pinning every cell's arrival
// process to the given spec (see workload.ParseArrival) — same clusters,
// same policies, different inter-arrival structure. Inside variant
// clauses a multi-knob spec separates its knobs with "+" rather than ","
// (e.g. "cohorts:k=40+skew=1.5"), because "," already separates clause
// values. It errors on an unknown process or knob rather than silently
// no-opping.
func ArrivalProcessVariant(spec string) (Variant, error) {
	parsed, err := workload.ParseArrival(spec)
	if err != nil {
		return Variant{}, fmt.Errorf("sweep: %w", err)
	}
	canonical := parsed.String()
	return Variant{
		Name:  "arrival:" + canonical,
		Apply: func(p *workload.CellProfile) { p.Arrival = canonical },
	}, nil
}

// arrivalVariant builds one value of the polymorphic arrival family: a
// plain number keeps its historical meaning as a rate multiplier
// (ArrivalScale), anything else is an arrival-process spec
// (ArrivalProcessVariant).
func arrivalVariant(value, clause string) (Variant, error) {
	if f, err := strconv.ParseFloat(value, 64); err == nil {
		if f <= 0 {
			return Variant{}, fmt.Errorf("sweep: value %g in clause %q must be positive", f, clause)
		}
		return ArrivalScale(f), nil
	}
	v, err := ArrivalProcessVariant(value)
	if err != nil {
		return Variant{}, fmt.Errorf("%w (in clause %q)", err, clause)
	}
	return v, nil
}

// PolicyVariant returns a variant pinning every cell's placement policy
// to the named brain from the scheduler's policy zoo — same clusters,
// same arrivals, different scheduler. It errors (rather than silently
// no-opping) on a name outside the registered set.
func PolicyVariant(name string) (Variant, error) {
	policy, err := scheduler.ParsePolicy(name)
	if err != nil {
		return Variant{}, fmt.Errorf("sweep: %w", err)
	}
	return Variant{
		Name:  "policy:" + name,
		Apply: func(p *workload.CellProfile) { p.Policy = policy },
	}, nil
}

// families maps a ParseVariants family keyword to its constructor.
var families = map[string]func(float64) Variant{
	"arrival":      ArrivalScale,
	"machines":     MachineScale,
	"overcommit":   OvercommitScale,
	"allocceiling": AllocCeiling,
	"prodshift":    ProdShift,
}

// knobNames returns the valid composite-clause knobs, sorted, for error
// messages: the numeric families plus policy.
func knobNames() []string {
	out := make([]string, 0, len(families)+1)
	for name := range families {
		out = append(out, name)
	}
	out = append(out, "policy")
	sort.Strings(out)
	return out
}

// familyNames returns the valid clause keywords, sorted, for error
// messages: the knobs plus baseline.
func familyNames() []string {
	out := append(knobNames(), "baseline")
	sort.Strings(out)
	return out
}

// knobVariant builds one knob=value overlay of a named composite clause:
// the numeric families by parsed float, "policy" by policy name, and
// "arrival" polymorphically — a number scales the rate, anything else
// selects an arrival process (knobs "+"-separated, see ArrivalProcessVariant).
func knobVariant(knob, value, clause string) (Variant, error) {
	if knob == "policy" {
		v, err := PolicyVariant(value)
		if err != nil {
			return Variant{}, fmt.Errorf("%w (in clause %q)", err, clause)
		}
		return v, nil
	}
	if knob == "arrival" {
		return arrivalVariant(value, clause)
	}
	mk := families[knob]
	if mk == nil {
		return Variant{}, fmt.Errorf("sweep: unknown knob %q in clause %q (knobs: %s)",
			knob, clause, strings.Join(knobNames(), ", "))
	}
	f, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return Variant{}, fmt.Errorf("sweep: bad value %q for knob %q in clause %q", value, knob, clause)
	}
	if f <= 0 {
		return Variant{}, fmt.Errorf("sweep: value %g for knob %q in clause %q must be positive", f, knob, clause)
	}
	return mk(f), nil
}

// parseNamedClause parses a "name:knob=value[,knob=value...]" composite
// clause into one variant carrying the clause's own name and applying
// every knob overlay in order.
func parseNamedClause(name, values, clause string) (Variant, error) {
	var overlays []func(*workload.CellProfile)
	for _, kv := range strings.Split(values, ",") {
		knob, value, ok := strings.Cut(kv, "=")
		if !ok {
			return Variant{}, fmt.Errorf("sweep: bad knob assignment %q in clause %q (want knob=value)", kv, clause)
		}
		v, err := knobVariant(strings.TrimSpace(knob), strings.TrimSpace(value), clause)
		if err != nil {
			return Variant{}, err
		}
		overlays = append(overlays, v.Apply)
	}
	return Variant{
		Name: name,
		Apply: func(p *workload.CellProfile) {
			for _, apply := range overlays {
				apply(p)
			}
		},
	}, nil
}

// ParseVariants parses a CLI sweep specification: semicolon-separated
// clauses, each one of
//
//   - "baseline" — the identity variant;
//   - "family:v1,v2,..." — one variant per numeric value. Families:
//     arrival, machines, overcommit (multipliers), allocceiling
//     (absolute fraction), prodshift (production-share multiplier);
//   - "policy:name1,name2,..." — one variant per placement policy from
//     the scheduler zoo (scheduler.PolicyNames);
//   - "arrival:spec1,spec2,..." — the arrival family is polymorphic:
//     a numeric value keeps its rate-multiplier meaning, anything else
//     selects an arrival process by spec (workload.ParseArrival), e.g.
//     "arrival:gamma:cv=2.5,cohorts:k=40+skew=1.5" — multi-knob specs
//     join knobs with "+" because "," separates clause values;
//   - "name:knob=value[,knob=value...]" — a named composite variant
//     applying each knob overlay in order; knobs are the families above
//     plus policy.
//
// Example:
//
//	baseline;arrival:0.5,weibull:cv=3;policy:best-fit;zoo-hot:policy=oversub,arrival=1.5
//
// expands to five variants. Unknown clause, knob, policy and arrival
// names error with the valid set — a typo never silently no-ops. An
// empty spec yields just the baseline.
func ParseVariants(spec string) ([]Variant, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return []Variant{Baseline()}, nil
	}
	var out []Variant
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if clause == "baseline" {
			out = append(out, Baseline())
			continue
		}
		family, values, ok := strings.Cut(clause, ":")
		family = strings.TrimSpace(family)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown variant clause %q (clauses: %s, or name:knob=value)",
				clause, strings.Join(familyNames(), ", "))
		}
		if family == "arrival" {
			// Handled before the "=" composite check: arrival-process specs
			// like "gamma:cv=2.5" carry their own "=" knobs.
			for _, vs := range strings.Split(values, ",") {
				v, err := arrivalVariant(strings.TrimSpace(vs), clause)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			continue
		}
		if strings.Contains(values, "=") {
			v, err := parseNamedClause(family, values, clause)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		if family == "policy" {
			for _, name := range strings.Split(values, ",") {
				v, err := PolicyVariant(strings.TrimSpace(name))
				if err != nil {
					return nil, fmt.Errorf("%w (in clause %q)", err, clause)
				}
				out = append(out, v)
			}
			continue
		}
		mk := families[family]
		if mk == nil {
			return nil, fmt.Errorf("sweep: unknown variant family %q in clause %q (clauses: %s, or name:knob=value)",
				family, clause, strings.Join(familyNames(), ", "))
		}
		for _, vs := range strings.Split(values, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: bad value %q in clause %q", vs, clause)
			}
			if v <= 0 {
				return nil, fmt.Errorf("sweep: value %g in clause %q must be positive", v, clause)
			}
			out = append(out, mk(v))
		}
	}
	if len(out) == 0 {
		return []Variant{Baseline()}, nil
	}
	return out, nil
}

// ftoa formats a variant parameter so the name round-trips exactly.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
