package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/trace"
	"repro/internal/workload"
)

// Baseline returns the identity variant: profiles simulate exactly as
// the experiments suite builds them.
func Baseline() Variant { return Variant{Name: "baseline"} }

// ArrivalScale returns a variant multiplying every cell's job arrival
// rate by f (load sensitivity).
func ArrivalScale(f float64) Variant {
	return Variant{
		Name:  "arrival:" + ftoa(f),
		Apply: func(p *workload.CellProfile) { p.JobsPerHour *= f },
	}
}

// MachineScale returns a variant multiplying every cell's machine count
// by f, rounded, never below one machine (capacity sensitivity).
func MachineScale(f float64) Variant {
	return Variant{
		Name: "machines:" + ftoa(f),
		Apply: func(p *workload.CellProfile) {
			m := int(math.Round(float64(p.Machines) * f))
			if m < 1 {
				m = 1
			}
			p.Machines = m
		},
	}
}

// OvercommitScale returns a variant multiplying both overcommit factors
// by f (§4's allocation-ceiling sensitivity).
func OvercommitScale(f float64) Variant {
	return Variant{
		Name: "overcommit:" + ftoa(f),
		Apply: func(p *workload.CellProfile) {
			p.Overcommit.CPUFactor *= f
			p.Overcommit.MemFactor *= f
		},
	}
}

// AllocCeiling returns a variant pinning the batch admission
// controller's best-effort-batch CPU ceiling to the absolute fraction v.
func AllocCeiling(v float64) Variant {
	return Variant{
		Name:  "allocceiling:" + ftoa(v),
		Apply: func(p *workload.CellProfile) { p.BatchAllocCeiling = v },
	}
}

// ProdShift returns a variant multiplying the production tier's arrival
// share by f and renormalizing the tier mix to sum to one (tier-mix
// sensitivity: cell a versus cell b is exactly such a shift).
func ProdShift(f float64) Variant {
	return Variant{
		Name: "prodshift:" + ftoa(f),
		Apply: func(p *workload.CellProfile) {
			total := 0.0
			for i := range p.Tiers {
				if p.Tiers[i].Tier == trace.TierProduction {
					p.Tiers[i].ArrivalShare *= f
				}
				total += p.Tiers[i].ArrivalShare
			}
			if total <= 0 {
				return
			}
			for i := range p.Tiers {
				p.Tiers[i].ArrivalShare /= total
			}
		},
	}
}

// families maps a ParseVariants family keyword to its constructor.
var families = map[string]func(float64) Variant{
	"arrival":      ArrivalScale,
	"machines":     MachineScale,
	"overcommit":   OvercommitScale,
	"allocceiling": AllocCeiling,
	"prodshift":    ProdShift,
}

// ParseVariants parses a CLI sweep specification: semicolon-separated
// clauses, each either "baseline" or "family:v1,v2,..." expanding to one
// variant per value, in order. Families: arrival, machines, overcommit
// (multipliers), allocceiling (absolute fraction), prodshift
// (production-share multiplier). Example:
//
//	arrival:0.5,1.0,2.0;overcommit:1.25
//
// expands to four variants. An empty spec yields just the baseline.
func ParseVariants(spec string) ([]Variant, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return []Variant{Baseline()}, nil
	}
	var out []Variant
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if clause == "baseline" {
			out = append(out, Baseline())
			continue
		}
		family, values, ok := strings.Cut(clause, ":")
		mk := families[strings.TrimSpace(family)]
		if !ok || mk == nil {
			return nil, fmt.Errorf("sweep: unknown variant clause %q (families: arrival, machines, overcommit, allocceiling, prodshift, baseline)", clause)
		}
		for _, vs := range strings.Split(values, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
			if err != nil {
				return nil, fmt.Errorf("sweep: bad value %q in clause %q", vs, clause)
			}
			if v <= 0 {
				return nil, fmt.Errorf("sweep: value %g in clause %q must be positive", v, clause)
			}
			out = append(out, mk(v))
		}
	}
	if len(out) == 0 {
		return []Variant{Baseline()}, nil
	}
	return out, nil
}

// ftoa formats a variant parameter so the name round-trips exactly.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
