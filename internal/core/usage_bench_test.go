package core

// Benchmarks for the per-window usage pipeline: the sampler walk itself
// (BenchmarkUsageSample) and the sampler feeding a realistic sink
// pipeline — buffered fan-out into a streaming reducer
// (BenchmarkUsagePipeline). Both run against a live cell populated by a
// real warmup simulation, so resident counts, task mix and machine
// occupancy match what a mid-horizon 2019 cell actually looks like.
// BENCH_PR7.json tracks their before/after numbers.

import (
	"testing"

	"repro/internal/analysis/streaming"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// usageBenchState is a live mid-simulation cell: kernel, scheduler and
// cluster state frozen at the end of warmup, ready for sampler windows.
type usageBenchState struct {
	p     *workload.CellProfile
	cell  *cluster.Cell
	sched *scheduler.Scheduler
	k     *sim.Kernel
	src   *rng.Source
	now   sim.Time
}

// buildUsageBenchState mirrors Run's wiring (minus autopilot and usage
// sampling) and advances the simulation through warmup so the cell holds
// a realistic steady-state resident population.
func buildUsageBenchState(tb testing.TB, machines int, warmup sim.Time) *usageBenchState {
	tb.Helper()
	p := workload.Profile2019("a", machines)
	root := rng.New(11)
	k := sim.NewKernel()
	cell := cluster.BuildCell(p.Name, p.Machines, p.Shapes, root.Split("machines"))
	schedCfg := scheduler.Config{
		Policy:                p.Policy,
		CandidateSample:       p.CandidateSample,
		Overcommit:            p.Overcommit,
		ServiceTime:           dist.LogNormalFromMedian(p.SchedServiceMedian, p.SchedServiceSigma),
		RetryBackoff:          30 * sim.Second,
		EnablePreemption:      true,
		PreemptionPriorityGap: 10,
		EvictionRestartDelay:  15 * sim.Second,
		FailRestartDelay:      10 * sim.Second,
	}
	sched := scheduler.New(schedCfg, cell, k, trace.NopSink{}, root.Split("scheduler"))
	gen := workload.NewGenerator(p, cell.Capacity().CPU, warmup, root.Split("workload"), 1)
	var scheduleArrival func(now sim.Time)
	scheduleArrival = func(now sim.Time) {
		next := now + gen.NextInterArrival(now)
		if next >= warmup {
			return
		}
		k.At(next, func(t sim.Time) {
			for _, j := range gen.Generate(t) {
				sched.Submit(j)
			}
			scheduleArrival(t)
		})
	}
	scheduleArrival(0)
	k.RunUntil(warmup)
	if sched.NumRunning() == 0 {
		tb.Fatal("usage bench warmup produced no running tasks")
	}
	return &usageBenchState{
		p: p, cell: cell, sched: sched, k: k,
		src: root.Split("usage"),
		now: warmup - warmup%sim.SampleWindow,
	}
}

// newBenchSampler binds a fresh sampler (autopilot off, histograms off)
// to the live cell, pointing at the given sink.
func (st *usageBenchState) newBenchSampler(sink trace.Sink) *usageSampler {
	return st.newBenchSamplerNoise(sink, false)
}

// newBenchSamplerNoise is newBenchSampler with the UsageNoiseFast table
// toggled explicitly.
func (st *usageBenchState) newBenchSamplerNoise(sink trace.Sink, fastNoise bool) *usageSampler {
	s := newUsageSampler(st.p, st.cell, st.sched, nil, sink, st.src, false, fastNoise)
	s.k = st.k
	return s
}

// benchReducer builds a CellReducer dimensioned for the bench cell.
func (st *usageBenchState) benchReducer(horizon sim.Time) *streaming.CellReducer {
	return streaming.NewCellReducer(streaming.Config{
		Meta: trace.Meta{
			Era: st.p.Era, Cell: st.p.Name, Duration: horizon,
			Machines: st.p.Machines, Seed: 11,
		},
		SnapshotAt: horizon / 2,
	})
}

// BenchmarkUsageSample measures one 5-minute sampling window over a
// large, warmed-up cell (LargeScale's 400-machine 2019 shape) with the
// sink reduced to a row counter: the cost of the sampler walk itself.
// Steady state must not allocate — TestUsageSampleSteadyStateZeroAllocs
// guards that, and CI gates this benchmark's allocs/op at zero.
func BenchmarkUsageSample(b *testing.B) {
	st := buildUsageBenchState(b, 400, 2*sim.Hour)
	counter := &trace.CountingSink{}
	sampler := st.newBenchSampler(counter)
	sampler.sample(st.now) // warm buffers
	before := counter.Counts().Usage
	sampler.sample(st.now)
	perWindow := counter.Counts().Usage - before
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.sample(st.now)
	}
	b.ReportMetric(float64(perWindow), "records/window")
}

// BenchmarkUsageSampleFastNoise is BenchmarkUsageSample with
// Options.UsageNoiseFast on: the per-resident noise pair comes from one
// 64-bit table draw instead of two Box–Muller normals plus two math.Exp
// calls. BENCH_PR8.json gates the delta against the exact-path number.
func BenchmarkUsageSampleFastNoise(b *testing.B) {
	st := buildUsageBenchState(b, 400, 2*sim.Hour)
	sampler := st.newBenchSamplerNoise(&trace.CountingSink{}, true)
	sampler.sample(st.now) // warm buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.sample(st.now)
	}
}

// TestUsageSampleSteadyStateZeroAllocs pins the sampler's allocation-free
// steady state with autopilot disabled: after the first window has sized
// the reusable buffers, a sampling window performs zero heap allocations.
func TestUsageSampleSteadyStateZeroAllocs(t *testing.T) {
	st := buildUsageBenchState(t, 120, sim.Hour)
	for _, fast := range []bool{false, true} {
		sampler := st.newBenchSamplerNoise(&trace.CountingSink{}, fast)
		sampler.sample(st.now)
		sampler.sample(st.now)
		if allocs := testing.AllocsPerRun(50, func() { sampler.sample(st.now) }); allocs != 0 {
			t.Fatalf("steady-state sample (fastNoise=%v) allocated %v times per window, want 0",
				fast, allocs)
		}
	}
}

// BenchmarkUsagePipeline measures the full usage path — sampler →
// fan-out → buffered sink → streaming reducer — for one window over a
// warmed-up 400-machine cell. The sub-benchmarks compare scalar
// per-record delivery (the pre-PR path, forced through scalarShim) with
// batched delivery; both produce identical reducer state.
func BenchmarkUsagePipeline(b *testing.B) {
	horizon := 8 * sim.Hour
	for _, mode := range []struct {
		name   string
		scalar bool
	}{{"batched", false}, {"scalar", true}} {
		b.Run(mode.name, func(b *testing.B) {
			st := buildUsageBenchState(b, 400, 2*sim.Hour)
			reducer := st.benchReducer(horizon)
			var sink trace.Sink = trace.FanOut(
				&trace.CountingSink{},
				trace.NewBufferedSink(reducer, 0),
			)
			if mode.scalar {
				sink = scalarShim{sink}
			}
			sampler := st.newBenchSampler(sink)
			sampler.sample(st.now) // warm buffers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sampler.sample(st.now)
			}
		})
	}
}

// scalarShim hides every optional sink capability (UsageBatcher in
// particular), forcing per-record delivery: the differential tests and
// the scalar pipeline benchmark use it to reproduce the pre-batching
// path through the modern code.
type scalarShim struct{ out trace.Sink }

func (s scalarShim) CollectionEvent(ev trace.CollectionEvent) { s.out.CollectionEvent(ev) }
func (s scalarShim) InstanceEvent(ev trace.InstanceEvent)     { s.out.InstanceEvent(ev) }
func (s scalarShim) Usage(rec trace.UsageRecord)              { s.out.Usage(rec) }
func (s scalarShim) MachineEvent(ev trace.MachineEvent)       { s.out.MachineEvent(ev) }
