// Package core is the public façade of the reproduction: it wires the
// cluster substrate, the Borg scheduler, the Autopilot vertical autoscaler
// and the calibrated workload generator into a discrete-event simulation
// of one Borg cell, and emits a 2019-schema trace while it runs.
//
// Typical use:
//
//	profile := workload.Profile2019("a", 600)
//	res := core.Run(profile, core.Options{Horizon: 48 * sim.Hour, Seed: 1})
//	violations := trace.Validate(res.Trace, trace.DefaultValidateOptions())
//
// The resulting MemTrace feeds the analysis package, which regenerates
// every table and figure of the paper.
package core

import (
	"io"
	"math"
	"time"

	"repro/internal/autopilot"
	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RunKnobs are the per-run tuning knobs shared verbatim by every runner
// configuration: core.Options, experiments.Scale and fleet.Config all
// embed this struct (and sweeps inherit it through their Scale), so a
// new shared knob is added in exactly one place and every layer's
// selector (opts.Policy, sc.Policy, cfg.Policy, …) keeps compiling.
type RunKnobs struct {
	// Policy, when non-empty, overrides the profile's placement policy by
	// canonical name (see scheduler.ParsePolicy). Run panics on an unknown
	// name, like it would on any other malformed static configuration.
	Policy string
	// Arrival, when non-empty, overrides the profile's arrival process by
	// spec (see workload.ParseArrival, e.g. "gamma:cv=2.5"). Ignored when
	// a replay supplies the workload. Run panics on a malformed spec.
	Arrival string
	// UsageNoiseFast replaces the usage sampler's two per-resident
	// lognormal noise draws (math.Exp over Box–Muller normals) with one
	// 64-bit draw indexing a stratified inverse-CDF lookup table — the
	// same marginal distribution to table resolution, with the table mean
	// normalized to the exact lognormal mean (see noiseTable). It is OFF
	// by default because it changes the randomness consumption sequence:
	// enabling it is a versioned trace bump — same-seed traces differ
	// from the exact path byte-for-byte, while scalar figure metrics stay
	// statistically equivalent (pinned by test). Fleet-scale runs enable
	// it to cheapen the sampler's dominant remaining cost.
	UsageNoiseFast bool
	// Progress, when non-nil, receives live progress reporting in the
	// runners that render it (experiments, sweep, fleet). core.Run itself
	// simulates one cell and emits no progress.
	Progress io.Writer
	// Metrics, when non-nil, receives this run's instruments (sched_*,
	// sim_*, usage_*, trace_* series; see internal/metrics). Instruments
	// only observe: they consume no randomness and never alter trace
	// bytes, so a run with Metrics set is byte-identical to one without.
	// Multi-cell runners give each cell a private registry and merge them
	// in spec order (engine.RunInstruments); this field must therefore be
	// nilled per cell by fleet-level configs, like Progress.
	Metrics *metrics.Registry
	// Timeline, when non-nil, records wall-clock spans (warmup/run/flush
	// per cell, reduce at the runner level) exportable as Chrome
	// trace_event JSON. Same observe-only contract as Metrics.
	Timeline *metrics.Timeline
}

// Options configures one cell simulation.
type Options struct {
	RunKnobs
	// Horizon is the simulated duration (the trace window).
	Horizon sim.Time
	// Seed is the root seed; every random stream derives from it, so a
	// (profile, horizon, seed) triple fully determines the trace.
	Seed uint64
	// Histograms enables per-window 21-bucket CPU histograms on usage
	// records (costly; off by default).
	Histograms bool
	// ExtraSinks receive every trace row in addition to the in-memory
	// store (e.g. streaming analyzers). Wrap a shared sink in
	// trace.NewSyncSink when the same instance also receives rows from
	// other concurrently simulated cells.
	ExtraSinks []trace.Sink
	// NoMemTrace disables full in-memory trace retention: rows stream
	// only to ExtraSinks (and the row counter) and CellResult.Trace is
	// nil. Use for online-analysis or throughput runs where buffering a
	// whole cell-month of rows is waste.
	NoMemTrace bool
	// IDBase offsets collection IDs so multi-cell runs have disjoint ID
	// spaces.
	IDBase trace.CollectionID
	// DisableAutopilot turns vertical scaling off even for jobs marked
	// as autoscaled (ablation support).
	DisableAutopilot bool
	// RecordWorkload captures the generated arrival/job stream into
	// CellResult.Workload (a versioned workload.Recording) while the run
	// proceeds normally.
	RecordWorkload bool
	// TimelineID labels this cell's timeline spans (the Chrome trace TID)
	// so concurrent cells render as separate rows. Ignored when
	// RunKnobs.Timeline is nil.
	TimelineID int
	// TimelineWarmup, when positive and Timeline is non-nil, splits the
	// simulation span at this simulated instant into separate "warmup" and
	// "run" wall-clock spans. The kernel's RunUntil is resumable, so the
	// split cannot reorder events or change the trace.
	TimelineWarmup sim.Time
	// Replay, when non-nil, replays a recorded workload instead of
	// generating one: the cell sees the recording's exact arrival instants
	// and job bodies (IDs rebased onto IDBase), under whatever policy and
	// parameters this run selects. The workload RNG stream goes unused;
	// all other streams (machines, scheduler, maintenance, usage) draw
	// exactly as in a generating run at the same seed.
	Replay *workload.Recording
}

// CellResult is the outcome of one simulated cell.
type CellResult struct {
	Profile *workload.CellProfile
	// Trace is the retained in-memory trace, nil when Options.NoMemTrace
	// was set.
	Trace *trace.MemTrace
	Sched scheduler.Stats
	// Rows counts every row emitted, whether or not it was retained.
	Rows trace.RowCounts
	// AutopilotUpdates counts limit adjustments issued.
	AutopilotUpdates int
	// Workload is the captured arrival/job stream, non-nil iff
	// Options.RecordWorkload was set.
	Workload *workload.Recording
}

// Run simulates one cell for opts.Horizon and returns its trace.
func Run(p *workload.CellProfile, opts Options) *CellResult {
	if opts.Horizon <= 0 {
		opts.Horizon = 24 * sim.Hour
	}
	root := rng.New(opts.Seed)
	k := sim.NewKernel()

	var mem *trace.MemTrace
	if !opts.NoMemTrace {
		mem = trace.NewMemTrace(trace.Meta{
			Era:      p.Era,
			Cell:     p.Name,
			Duration: opts.Horizon,
			Machines: p.Machines,
			Seed:     opts.Seed,
		})
	}
	counter := &trace.CountingSink{}
	parts := make([]trace.Sink, 0, 2+len(opts.ExtraSinks))
	if mem != nil {
		parts = append(parts, mem)
	}
	parts = append(parts, counter)
	parts = append(parts, opts.ExtraSinks...)
	sink := trace.FanOut(parts...)

	// Build the cell and announce its machines.
	cell := cluster.BuildCell(p.Name, p.Machines, p.Shapes, root.Split("machines"))
	cell.Machines(func(m *cluster.Machine) {
		sink.MachineEvent(trace.MachineEvent{
			Time: 0, Machine: m.ID, Type: trace.MachineAdd,
			Capacity: m.Capacity, Platform: m.Platform,
		})
	})

	// Scheduler.
	policy := p.Policy
	if opts.Policy != "" {
		policy = scheduler.MustParsePolicy(opts.Policy)
	}
	schedCfg := scheduler.Config{
		Policy:                policy,
		CandidateSample:       p.CandidateSample,
		Overcommit:            p.Overcommit,
		ServiceTime:           dist.LogNormalFromMedian(p.SchedServiceMedian, p.SchedServiceSigma),
		RetryBackoff:          30 * sim.Second,
		EnablePreemption:      true,
		PreemptionPriorityGap: 10,
		EvictionRestartDelay:  15 * sim.Second,
		FailRestartDelay:      10 * sim.Second,
	}
	schedCfg.ProdEvictionSLO = 0.08
	schedCfg.Metrics = opts.Metrics
	if p.BatchQueue {
		ceiling := p.BatchAllocCeiling
		if ceiling <= 0 {
			ceiling = 0.85
		}
		schedCfg.Batch = &scheduler.BatchConfig{
			CheckPeriod:      20 * sim.Second,
			AllocCeiling:     ceiling,
			MaxAdmitPerCheck: 8,
		}
	}
	sched := scheduler.New(schedCfg, cell, k, sink, root.Split("scheduler"))

	// Autopilot. Limit updates flow through the scheduler's setter so its
	// incremental admission accounting tracks autoscaled requests.
	var ap *autopilot.Autopilot
	if !opts.DisableAutopilot {
		ap = autopilot.New(autopilot.DefaultConfig(p.Overcommit), cell, sink)
		ap.OnLimitChange(sched.UpdateTaskRequest)
	}

	// Workload arrivals: a live generator by default, or a replayer over
	// a recorded stream. Constructing a generator consumes no randomness
	// and root.Split never advances the parent state, so the replay path
	// leaves every other stream's draws untouched — a replay at the same
	// seed is byte-identical to the run that recorded it.
	var gen workload.JobSource
	if opts.Replay != nil {
		gen = workload.NewReplayer(opts.Replay, opts.IDBase)
	} else {
		gen = workload.NewGeneratorArrival(p, cell.Capacity().CPU, opts.Horizon,
			root.Split("workload"), opts.IDBase+1, opts.Arrival)
	}
	var recorder *workload.Recorder
	if opts.RecordWorkload {
		arrival := opts.Arrival
		if arrival == "" {
			arrival = p.Arrival
		}
		if opts.Replay != nil {
			arrival = opts.Replay.Meta.Arrival
		}
		recorder = workload.NewRecorder(gen, workload.RecordingMeta{
			Cell:     p.Name,
			Era:      p.Era,
			Machines: p.Machines,
			Horizon:  opts.Horizon,
			Seed:     opts.Seed,
			Arrival:  workload.MustParseArrival(arrival).String(),
			IDBase:   opts.IDBase,
		})
		gen = recorder
	}
	var scheduleArrival func(now sim.Time)
	scheduleArrival = func(now sim.Time) {
		delta := gen.NextInterArrival(now)
		next := now + delta
		if next >= opts.Horizon {
			return
		}
		k.At(next, func(t sim.Time) {
			for _, j := range gen.Generate(t) {
				sched.Submit(j)
			}
			scheduleArrival(t)
		})
	}
	scheduleArrival(0)

	// Machine maintenance (~1 OS upgrade per machine-month, §5.2).
	maintSrc := root.Split("maintenance")
	expected := p.MaintenanceRate * opts.Horizon.Hours() / (30 * 24)
	for _, id := range cell.MachineIDs() {
		id := id
		n := dist.PoissonCount(maintSrc, expected)
		for i := 0; i < n; i++ {
			at := sim.Time(maintSrc.Float64() * float64(opts.Horizon))
			k.At(at, func(sim.Time) { sched.EvictMachine(id) })
		}
	}

	// Usage sampling every 5 minutes, plus partial-window records when
	// tasks stop between samples (so sub-window mice show up in the
	// usage table, as they do in the real trace).
	sampler := newUsageSampler(p, cell, sched, ap, sink, root.Split("usage"),
		opts.Histograms, opts.UsageNoiseFast)
	sampler.k = k
	sched.UnplaceHook = sampler.taskStopped
	// Instruments piggyback on the sampling tick: the queue-depth
	// histogram sees one observation per window, a sim-time series rather
	// than a wall-clock one. Observing is read-only — no randomness, no
	// trace rows — so the instrumented tick is byte-identical to the bare
	// one.
	var queueDepth *metrics.Histogram
	if opts.Metrics != nil {
		sampler.mWindows = opts.Metrics.Counter("usage_windows_total")
		sampler.mBatch = opts.Metrics.Histogram("usage_batch_records")
		queueDepth = opts.Metrics.Histogram("sched_queue_depth")
	}
	k.Every(sim.SampleWindow, sim.SampleWindow, opts.Horizon, func(now sim.Time) {
		if queueDepth != nil {
			queueDepth.Observe(float64(sched.QueueDepth()))
		}
		sampler.sample(now)
	})

	// The kernel run splits at the warmup boundary only when a timeline
	// wants separate spans; RunUntil is resumable, so the split leaves the
	// event order — and therefore the trace — untouched.
	tl := opts.Timeline
	if tl != nil && opts.TimelineWarmup > 0 && opts.TimelineWarmup < opts.Horizon {
		warmStart := time.Now()
		k.RunUntil(opts.TimelineWarmup)
		tl.Record("warmup", "cell", opts.TimelineID, warmStart, time.Since(warmStart))
		runStart := time.Now()
		k.RunUntil(opts.Horizon)
		tl.Record("run", "cell", opts.TimelineID, runStart, time.Since(runStart))
	} else {
		done := tl.Span("run", "cell", opts.TimelineID)
		k.RunUntil(opts.Horizon)
		done()
	}
	flushDone := tl.Span("flush", "cell", opts.TimelineID)
	trace.Flush(sink)
	flushDone()

	if reg := opts.Metrics; reg != nil {
		reg.Counter("sim_events_total").Add(int64(k.Fired()))
		reg.Histogram("sim_event_slab").Observe(float64(k.PoolSize()))
		rows := counter.Counts()
		reg.Counter("trace_rows_collections_total").Add(rows.Collections)
		reg.Counter("trace_rows_instances_total").Add(rows.Instances)
		reg.Counter("trace_rows_usage_total").Add(rows.Usage)
		reg.Counter("trace_rows_machines_total").Add(rows.Machines)
	}

	res := &CellResult{Profile: p, Trace: mem, Sched: sched.Stats(), Rows: counter.Counts()}
	if ap != nil {
		res.AutopilotUpdates = ap.Updates()
	}
	if recorder != nil {
		res.Workload = recorder.Recording()
	}
	return res
}

// obs is one running task's sampled usage for the current window.
type obs struct {
	task *scheduler.Task
	res  *cluster.Resident
	avg  trace.Resources
	peak trace.Resources
}

// usageSampler turns each running task's usage model into 5-minute usage
// records, applies work-conserving CPU throttling and memory OOM pressure,
// and feeds Autopilot.
type usageSampler struct {
	p     *workload.CellProfile
	cell  *cluster.Cell
	sched *scheduler.Scheduler
	ap    *autopilot.Autopilot
	sink  trace.Sink
	// batcher is sink's UsageBatcher capability, asserted once at
	// construction so the per-machine emit pays no dynamic dispatch.
	// Nil when sink only takes scalar rows.
	batcher    trace.UsageBatcher
	src        *rng.Source
	k          *sim.Kernel
	histograms bool
	// noise is non-nil iff Options.UsageNoiseFast: the stratified lookup
	// pair that stands in for the exact lognormal draws.
	noise *noiseTable
	// obsBuf is the per-machine observation scratch, reused every window
	// so steady-state sampling does not allocate.
	obsBuf []obs
	// machBuf snapshots the cell's occupied-machine index each window
	// (see sample); reused like obsBuf.
	machBuf []*cluster.Machine
	// recBuf collects one machine-window's usage records and is handed to
	// the sink as a single batch (trace.EmitUsageBatch); the sink must not
	// retain it, so the buffer is reused every machine.
	recBuf []trace.UsageRecord
	// trackSeen maps instance keys the autopilot has open windows for to
	// the last sampling generation that observed them; entries whose stamp
	// falls behind trackGen belong to tasks that stopped running and are
	// forgotten. Generation stamping replaces the previous
	// two-map scheme, which allocated a fresh map every window. Unused
	// (and nil) when ap == nil.
	trackSeen map[trace.InstanceKey]uint64
	trackGen  uint64
	// mWindows counts sampled windows and mBatch observes per-machine
	// batch sizes when Options.Metrics is set; both nil otherwise.
	// Observe-only: neither draws randomness nor emits rows.
	mWindows *metrics.Counter
	mBatch   *metrics.Histogram
	// partialCPU/partialMem accumulate the time-weighted usage already
	// emitted for the current window by tasks that stopped mid-window,
	// per machine. The tick throttle subtracts them so a machine's
	// window total never exceeds its physical capacity.
	partialCPU map[trace.MachineID]float64
	partialMem map[trace.MachineID]float64
}

func newUsageSampler(p *workload.CellProfile, cell *cluster.Cell, sched *scheduler.Scheduler,
	ap *autopilot.Autopilot, sink trace.Sink, src *rng.Source, histograms, fastNoise bool) *usageSampler {
	u := &usageSampler{
		p: p, cell: cell, sched: sched, ap: ap, sink: sink, src: src,
		histograms: histograms,
		partialCPU: make(map[trace.MachineID]float64),
		partialMem: make(map[trace.MachineID]float64),
	}
	if fastNoise {
		u.noise = newNoiseTable(p.UsageNoiseSigma)
	}
	if ap != nil {
		u.trackSeen = make(map[trace.InstanceKey]uint64)
	}
	u.batcher, _ = sink.(trace.UsageBatcher)
	return u
}

// usageNoise returns the multiplicative (CPU, memory) noise pair for one
// resident-window observation: the exact lognormal draws by default, or
// the stratified table draw when Options.UsageNoiseFast is set. The
// exact branch is byte-for-byte the PR 7 randomness sequence.
func (u *usageSampler) usageNoise() (noiseC, noiseM float64) {
	if u.noise != nil {
		return u.noise.draw(u.src)
	}
	noiseC = math.Exp(u.p.UsageNoiseSigma * u.src.NormFloat64())
	noiseM = math.Exp(u.p.UsageNoiseSigma * 0.3 * u.src.NormFloat64())
	return noiseC, noiseM
}

// sample emits one 5-minute window of usage records ending at now. It
// walks the cell's occupied-machine index in ID order and each machine's
// cached resident order — both deterministic — so randomness consumption
// stays a pure function of the simulation state, with no per-window
// sorting or grouping maps. Machines without residents consume no
// randomness, which is what makes the occupied-only walk draw-for-draw
// identical to a full machine scan. Each machine's records leave as one
// batch (trace.EmitUsageBatch), and steady-state sampling with autopilot
// disabled performs zero heap allocations.
func (u *usageSampler) sample(now sim.Time) {
	if u.mWindows != nil {
		u.mWindows.Inc()
	}
	if u.ap != nil {
		u.trackGen++
	}
	// Snapshot the occupied index before walking it: handling one
	// machine's memory pressure can empty the machine, and the index's
	// in-place compaction would make a live range skip the next entry.
	// Nothing during the walk can occupy a new machine or touch another
	// machine's residents, so the snapshot visits exactly the machines a
	// full ID scan would.
	machines := append(u.machBuf[:0], u.cell.OccupiedMachines()...)
	for _, m := range machines {
		mid := m.ID
		if m.NumResidents() == 0 {
			continue
		}
		list := u.obsBuf[:0]
		var cpuSum, memSum float64
		for _, r := range m.Residents() {
			// The resident carries its task pointer; direct cluster
			// placements (tests) fall back to the key lookup.
			t, _ := r.Task.(*scheduler.Task)
			if t == nil {
				t = u.sched.TaskByKey(r.Key)
			}
			if t == nil || t.State != scheduler.TaskRunning || t.Machine != mid {
				continue
			}
			noiseC, noiseM := u.usageNoise()
			avg := trace.Resources{CPU: t.MeanCPU * noiseC, Mem: t.MeanMem * noiseM}
			peakJitter := 1 + (t.PeakFact-1)*(0.7+0.6*u.src.Float64())
			cpuSum += avg.CPU
			memSum += avg.Mem
			if n := len(list); n < cap(list) {
				list = list[:n+1]
			} else {
				list = append(list, obs{})
			}
			o := &list[len(list)-1]
			o.task, o.res = t, r
			o.avg, o.peak = avg, avg.Scale(peakJitter)
		}
		u.obsBuf = list[:0]
		if len(list) == 0 {
			continue
		}
		// Work-conserving CPU: the machine cannot exceed its physical
		// capacity; oversubscribed machines throttle everyone
		// proportionally (§2). Capacity already consumed by tasks that
		// stopped earlier in this window is reserved first.
		capCPU := m.Capacity.CPU
		capMem := m.Capacity.Mem
		if len(u.partialCPU) > 0 || len(u.partialMem) > 0 {
			capCPU -= u.partialCPU[mid]
			capMem -= u.partialMem[mid]
		}
		if capCPU < 0 {
			capCPU = 0
		}
		if capMem < 0 {
			capMem = 0
		}
		if cpuSum > capCPU && cpuSum > 0 {
			f := capCPU / cpuSum
			for i := range list {
				list[i].avg.CPU *= f
				list[i].peak.CPU *= f
			}
		}
		// Memory is a hard bound: pressure evicts the weakest residents
		// (§5.2); the evicted tasks' usage vanishes with them.
		if memSum > capMem {
			for i := range list {
				// SetResidentUsage keeps the machine's incremental usage
				// aggregate consistent; the pressure handler below reads it.
				m.SetResidentUsage(list[i].res, list[i].avg)
			}
			u.sched.HandleMemoryPressure(mid, capMem)
		}

		recs := u.recBuf[:0]
		for i := range list {
			o := &list[i]
			t := o.task
			if t.State != scheduler.TaskRunning || t.Machine != mid {
				continue // evicted by the pressure handler above
			}
			m.SetResidentUsage(o.res, o.avg)
			if n := len(recs); n < cap(recs) {
				recs = recs[:n+1]
			} else {
				recs = append(recs, trace.UsageRecord{})
			}
			// Field assignments instead of a composite literal: the
			// literal would be built in a temporary and copied into the
			// reused slot. The histogram pointer is cleared explicitly
			// because the slot may hold a stale one from the last window.
			rec := &recs[len(recs)-1]
			rec.Start = now - sim.SampleWindow
			rec.End = now
			rec.Key = t.Key
			rec.Machine = mid
			rec.Tier = t.Job.Tier
			rec.AvgUsage = o.avg
			rec.MaxUsage = o.peak
			rec.Limit = t.Request
			rec.CPUHistogram = nil
			if u.histograms {
				rec.CPUHistogram = synthHistogram(o.avg.CPU, o.peak.CPU, t.Request.CPU, u.src)
			}
			if u.ap != nil {
				// Observe may emit UPDATE_RUNNING instance events and
				// resize this task's request; the record above already
				// captured the pre-update limit, exactly as scalar
				// emission did.
				u.ap.Observe(now, t, o.peak)
				u.trackSeen[t.Key] = u.trackGen
			}
		}
		if len(recs) > 0 {
			if u.mBatch != nil {
				u.mBatch.Observe(float64(len(recs)))
			}
			if u.batcher != nil {
				u.batcher.UsageBatch(recs)
			} else {
				trace.EmitUsageBatch(u.sink, recs)
			}
		}
		u.recBuf = recs[:0]
	}
	u.machBuf = machines[:0]

	if u.ap != nil {
		// Stale stamps are tasks that stopped running since their last
		// observation: close their autopilot windows. Forget is a bare
		// map delete, so the map's iteration order cannot influence the
		// simulation.
		for key, gen := range u.trackSeen {
			if gen != u.trackGen {
				delete(u.trackSeen, key)
				u.ap.Forget(key)
			}
		}
	}

	// A new window begins: release the partial-usage reservations.
	clear(u.partialCPU)
	clear(u.partialMem)
}

// taskStopped emits the partial usage record for a task leaving its
// machine mid-window: the interval from the later of its run start and the
// last sampling boundary, up to now.
func (u *usageSampler) taskStopped(t *scheduler.Task, runStart sim.Time) {
	now := u.k.Now()
	boundary := now - now%sim.SampleWindow
	start := boundary
	if runStart > start {
		start = runStart
	}
	if start >= now || t.Machine == 0 {
		return
	}
	m := u.cell.Machine(t.Machine)
	if m == nil {
		return
	}
	noiseC, noiseM := u.usageNoise()
	avg := trace.Resources{CPU: t.MeanCPU * noiseC, Mem: t.MeanMem * noiseM}
	// The machine's window capacity not already claimed by earlier
	// partial records bounds what this record may report.
	frac := float64(now-start) / float64(sim.SampleWindow)
	availCPU := m.Capacity.CPU - u.partialCPU[t.Machine]
	availMem := m.Capacity.Mem - u.partialMem[t.Machine]
	if avg.CPU*frac > availCPU {
		avg.CPU = math.Max(0, availCPU/frac)
	}
	if avg.Mem*frac > availMem {
		avg.Mem = math.Max(0, availMem/frac)
	}
	u.partialCPU[t.Machine] += avg.CPU * frac
	u.partialMem[t.Machine] += avg.Mem * frac
	peakJitter := 1 + (t.PeakFact-1)*(0.7+0.6*u.src.Float64())
	peak := avg.Scale(peakJitter)
	rec := trace.UsageRecord{
		Start:    start,
		End:      now,
		Key:      t.Key,
		Machine:  t.Machine,
		Tier:     t.Job.Tier,
		AvgUsage: avg,
		MaxUsage: peak,
		Limit:    t.Request,
	}
	if u.histograms {
		rec.CPUHistogram = synthHistogram(avg.CPU, peak.CPU, t.Request.CPU, u.src)
	}
	u.sink.Usage(rec)
}

// synthHistogram builds the trace's 21-bucket CPU utilization histogram
// for one window from the window's average and peak, by sampling a
// plausible within-window trajectory.
func synthHistogram(avg, peak, limit float64, src *rng.Source) *stats.UsageHistogram {
	h := &stats.UsageHistogram{}
	if limit <= 0 {
		limit = 1e-9
	}
	// 30 pseudo-samples (≈10-second resolution): uniform between trough
	// and peak, centered on the average.
	trough := 2*avg - peak
	if trough < 0 {
		trough = 0
	}
	for i := 0; i < 30; i++ {
		v := trough + (peak-trough)*src.Float64()
		h.Add(v / limit)
	}
	return h
}
