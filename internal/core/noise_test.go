package core

import (
	"math"
	"testing"

	"repro/internal/analysis/streaming"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestNoiseTableMoments(t *testing.T) {
	for _, sigma := range []float64{0.1, 0.25, 0.5} {
		tab := newNoiseTable(sigma)
		for name, tc := range map[string]struct {
			entries []float64
			sigma   float64
		}{
			"cpu": {tab.c[:], sigma},
			"mem": {tab.m[:], sigma * 0.3},
		} {
			sum := 0.0
			for i, v := range tc.entries {
				if v <= 0 {
					t.Fatalf("sigma=%g %s[%d] = %g, want positive", sigma, name, i, v)
				}
				if i > 0 && v <= tc.entries[i-1] {
					t.Fatalf("sigma=%g %s table not strictly increasing at %d", sigma, name, i)
				}
				sum += v
			}
			mean := sum / float64(len(tc.entries))
			want := math.Exp(tc.sigma * tc.sigma / 2)
			if rel := math.Abs(mean-want) / want; rel > 1e-12 {
				t.Errorf("sigma=%g %s table mean %g, want exact lognormal mean %g (rel err %g)",
					sigma, name, mean, want, rel)
			}
			// The normalization must be a small correction, not a rescue of
			// a badly built table: the raw stratified mean already sits
			// within a fraction of a percent of the analytic mean.
			med := tc.entries[len(tc.entries)/2]
			if med < 0.9 || med > 1.1 {
				t.Errorf("sigma=%g %s table median entry %g, want near lognormal median 1",
					sigma, name, med)
			}
		}
	}
}

func TestNoiseTableDrawMatchesLognormal(t *testing.T) {
	const sigma = 0.25
	tab := newNoiseTable(sigma)
	src := rng.New(99)
	const n = 200000
	var sumC, sumM, sumLogC, sumLogM float64
	for i := 0; i < n; i++ {
		c, m := tab.draw(src)
		sumC += c
		sumM += m
		sumLogC += math.Log(c)
		sumLogM += math.Log(m)
	}
	// Sample means within ~5 sigma of the analytic lognormal moments.
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"mean C", sumC / n, math.Exp(sigma * sigma / 2), 5 * sigma / math.Sqrt(n)},
		{"mean M", sumM / n, math.Exp(sigma * 0.3 * sigma * 0.3 / 2), 5 * sigma * 0.3 / math.Sqrt(n)},
		{"log-mean C", sumLogC / n, 0, 5 * sigma / math.Sqrt(n)},
		{"log-mean M", sumLogM / n, 0, 5 * sigma * 0.3 / math.Sqrt(n)},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %g, want %g ± %g", c.name, c.got, c.want, c.tol)
		}
	}
}

// noiseRun simulates a small 2019 cell in bounded memory and returns its
// streaming scalar metrics by name.
func noiseRun(t *testing.T, seed uint64, fast bool) map[string]float64 {
	t.Helper()
	p := workload.Profile2019("a", 120)
	horizon := 8 * sim.Hour
	red := streaming.NewCellReducer(streaming.Config{
		Meta: trace.Meta{
			Era: p.Era, Cell: p.Name, Duration: horizon,
			Machines: p.Machines, Seed: seed,
		},
		SnapshotAt: horizon / 2,
	})
	Run(p, Options{
		RunKnobs: RunKnobs{UsageNoiseFast: fast},
		Horizon:  horizon, Seed: seed, NoMemTrace: true,
		ExtraSinks: []trace.Sink{red},
	})
	out := make(map[string]float64)
	for _, s := range red.Scalars(horizon / 2) {
		out[s.Name] = s.Value
	}
	return out
}

// TestUsageNoiseFastOffIsByteIdentical pins the versioned-trace contract:
// with UsageNoiseFast left at its zero value the randomness sequence is
// untouched, so a run is byte-identical to an explicit fast=false run —
// the exact-path draws must not have moved even by one variate.
func TestUsageNoiseFastOffIsByteIdentical(t *testing.T) {
	p := workload.Profile2019("a", 120)
	opts := Options{Horizon: 8 * sim.Hour, Seed: 7}
	a := Run(p, opts)
	opts.UsageNoiseFast = false
	b := Run(workload.Profile2019("a", 120), opts)
	ta, tb := a.Trace, b.Trace
	if len(ta.UsageRecords) != len(tb.UsageRecords) {
		t.Fatalf("usage row counts differ: %d vs %d", len(ta.UsageRecords), len(tb.UsageRecords))
	}
	for i := range ta.UsageRecords {
		if ta.UsageRecords[i] != tb.UsageRecords[i] {
			t.Fatalf("usage record %d differs with UsageNoiseFast unset vs false", i)
		}
	}
}

func TestUsageNoiseFastChangesTraceDeterministically(t *testing.T) {
	p := workload.Profile2019("a", 120)
	opts := Options{RunKnobs: RunKnobs{UsageNoiseFast: true}, Horizon: 4 * sim.Hour, Seed: 7}
	a := Run(p, opts)
	b := Run(workload.Profile2019("a", 120), opts)
	if len(a.Trace.UsageRecords) != len(b.Trace.UsageRecords) {
		t.Fatalf("fast-noise runs not deterministic: %d vs %d usage rows",
			len(a.Trace.UsageRecords), len(b.Trace.UsageRecords))
	}
	for i := range a.Trace.UsageRecords {
		if a.Trace.UsageRecords[i] != b.Trace.UsageRecords[i] {
			t.Fatalf("fast-noise usage record %d differs between identical runs", i)
		}
	}
	exact := Run(workload.Profile2019("a", 120), Options{Horizon: 4 * sim.Hour, Seed: 7})
	same := len(exact.Trace.UsageRecords) == len(a.Trace.UsageRecords)
	if same {
		for i := range a.Trace.UsageRecords {
			if a.Trace.UsageRecords[i] != exact.Trace.UsageRecords[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("UsageNoiseFast=true produced a byte-identical trace to the exact path; the versioned bump is not taking effect")
	}
}

// TestUsageNoiseFastStatisticallyEquivalent checks that switching the
// noise implementation moves the figure-level scalars only within noise:
// across seeds, fast-vs-exact utilization and allocation metrics agree to
// a few percent, and the scheduling-side metrics (which share the run's
// randomness downstream of the sampler) stay in the same band.
func TestUsageNoiseFastStatisticallyEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed simulation pair per seed")
	}
	seeds := []uint64{3, 11, 27}
	bounds := map[string]float64{
		"cpu_util":  0.05,
		"mem_util":  0.05,
		"cpu_alloc": 0.05,
		"mem_alloc": 0.05,
	}
	diffs := make(map[string][]float64)
	for _, seed := range seeds {
		exact := noiseRun(t, seed, false)
		fast := noiseRun(t, seed, true)
		for name := range bounds {
			e, f := exact[name], fast[name]
			if e <= 0 {
				t.Fatalf("seed %d: exact %s = %g, want positive", seed, name, e)
			}
			diffs[name] = append(diffs[name], (f-e)/e)
		}
	}
	for name, ds := range diffs {
		mean := 0.0
		for _, d := range ds {
			mean += d
		}
		mean /= float64(len(ds))
		if math.Abs(mean) > bounds[name] {
			t.Errorf("%s: mean relative fast-vs-exact diff %.4f over seeds %v exceeds ±%.2f (per-seed %v)",
				name, mean, seeds, bounds[name], ds)
		}
	}
}
