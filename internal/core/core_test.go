package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// smallRun simulates a small 2019 cell; shared across tests via sync once
// semantics would hide determinism issues, so each test runs its own.
func smallRun(t *testing.T, seed uint64) *CellResult {
	t.Helper()
	p := workload.Profile2019("a", 120)
	return Run(p, Options{Horizon: 8 * sim.Hour, Seed: seed})
}

func TestRunProducesTrace(t *testing.T) {
	res := smallRun(t, 1)
	tr := res.Trace
	if len(tr.MachineEvents) != 120 {
		t.Fatalf("machine events %d", len(tr.MachineEvents))
	}
	if len(tr.CollectionEvents) == 0 || len(tr.InstanceEvents) == 0 || len(tr.UsageRecords) == 0 {
		t.Fatalf("empty trace: %s", tr.Counts())
	}
	if res.Sched.JobsSubmitted < 50 {
		t.Fatalf("jobs submitted %d", res.Sched.JobsSubmitted)
	}
	if res.Sched.TasksPlaced == 0 {
		t.Fatal("no tasks placed")
	}
	if res.AutopilotUpdates == 0 {
		t.Fatal("autopilot never adjusted a limit")
	}
}

func TestTraceValidates(t *testing.T) {
	res := smallRun(t, 2)
	violations := trace.Validate(res.Trace, trace.DefaultValidateOptions())
	if len(violations) != 0 {
		t.Fatalf("%d violations, first: %v", len(violations), violations[0])
	}
}

func TestDeterminism(t *testing.T) {
	a := smallRun(t, 7)
	b := smallRun(t, 7)
	ta, tb := a.Trace, b.Trace
	if len(ta.CollectionEvents) != len(tb.CollectionEvents) ||
		len(ta.InstanceEvents) != len(tb.InstanceEvents) ||
		len(ta.UsageRecords) != len(tb.UsageRecords) {
		t.Fatalf("row counts differ: %s vs %s", ta.Counts(), tb.Counts())
	}
	for i := range ta.CollectionEvents {
		if ta.CollectionEvents[i] != tb.CollectionEvents[i] {
			t.Fatalf("collection event %d differs: %+v vs %+v", i, ta.CollectionEvents[i], tb.CollectionEvents[i])
		}
	}
	for i := range ta.InstanceEvents {
		if ta.InstanceEvents[i] != tb.InstanceEvents[i] {
			t.Fatalf("instance event %d differs", i)
		}
	}
	for i := range ta.UsageRecords {
		if ta.UsageRecords[i] != tb.UsageRecords[i] {
			t.Fatalf("usage record %d differs: %+v vs %+v", i, ta.UsageRecords[i], tb.UsageRecords[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := smallRun(t, 1)
	b := smallRun(t, 99)
	if len(a.Trace.CollectionEvents) == len(b.Trace.CollectionEvents) &&
		len(a.Trace.UsageRecords) == len(b.Trace.UsageRecords) {
		// Counts could coincide; compare content of the first events.
		same := true
		for i := 0; i < 50 && i < len(a.Trace.CollectionEvents); i++ {
			if a.Trace.CollectionEvents[i] != b.Trace.CollectionEvents[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestUtilizationInSaneBand(t *testing.T) {
	res := smallRun(t, 3)
	tr := res.Trace
	// Average CPU usage as a fraction of capacity over the second half
	// of the run (post-warmup) should be meaningful but below 1.
	caps := tr.MachineCapacities()
	var capCPU float64
	for _, ev := range caps {
		capCPU += ev.Capacity.CPU
	}
	half := tr.Meta.Duration / 2
	var usageHours float64
	for _, rec := range tr.UsageRecords {
		if rec.Start >= half {
			usageHours += rec.AvgUsage.CPU * (rec.End - rec.Start).Hours()
		}
	}
	if usageHours == 0 {
		t.Fatal("no post-warmup usage")
	}
	frac := usageHours / ((tr.Meta.Duration - half).Hours() * capCPU)
	if frac < 0.10 || frac > 0.95 {
		t.Fatalf("post-warmup CPU utilization %v outside sane band", frac)
	}
}

func TestExtraSinksSeeEverything(t *testing.T) {
	p := workload.Profile2019("b", 80)
	extra := trace.NewMemTrace(trace.Meta{})
	res := Run(p, Options{Horizon: 4 * sim.Hour, Seed: 5, ExtraSinks: []trace.Sink{extra}})
	if len(extra.CollectionEvents) != len(res.Trace.CollectionEvents) ||
		len(extra.UsageRecords) != len(res.Trace.UsageRecords) {
		t.Fatalf("extra sink missed rows: %s vs %s", extra.Counts(), res.Trace.Counts())
	}
}

func TestIDBaseSeparatesCells(t *testing.T) {
	p := workload.Profile2019("a", 60)
	a := Run(p, Options{Horizon: 2 * sim.Hour, Seed: 1, IDBase: 0})
	b := Run(p, Options{Horizon: 2 * sim.Hour, Seed: 2, IDBase: 1 << 32})
	for _, id := range b.Trace.Collections() {
		if id <= 1<<32 {
			t.Fatalf("collection id %d below IDBase", id)
		}
	}
	for _, id := range a.Trace.Collections() {
		if id >= 1<<32 {
			t.Fatalf("collection id %d above expected range", id)
		}
	}
}

func TestHistogramsOption(t *testing.T) {
	p := workload.Profile2019("a", 40)
	res := Run(p, Options{Horizon: 2 * sim.Hour, Seed: 4, Histograms: true})
	withHist := 0
	for _, rec := range res.Trace.UsageRecords {
		if rec.CPUHistogram != nil {
			withHist++
			if rec.CPUHistogram.Total() == 0 {
				t.Fatal("empty histogram")
			}
		}
	}
	if withHist == 0 {
		t.Fatal("no histograms recorded")
	}
	// Default: no histograms.
	res2 := Run(p, Options{Horizon: 1 * sim.Hour, Seed: 4})
	for _, rec := range res2.Trace.UsageRecords {
		if rec.CPUHistogram != nil {
			t.Fatal("histogram recorded despite being disabled")
		}
	}
}

func Test2011ProfileRuns(t *testing.T) {
	p := workload.Profile2011(120)
	res := Run(p, Options{Horizon: 8 * sim.Hour, Seed: 11})
	tr := res.Trace
	if tr.Meta.Era != trace.Era2011 {
		t.Fatal("era")
	}
	violations := trace.Validate(tr, trace.DefaultValidateOptions())
	if len(violations) != 0 {
		t.Fatalf("%d violations, first: %v", len(violations), violations[0])
	}
	// No 2019-only features in the event stream.
	for _, ev := range tr.CollectionEvents {
		if ev.Type == trace.EventQueue {
			t.Fatal("2011 trace has batch QUEUE events")
		}
		if ev.CollectionType == trace.CollectionAllocSet {
			t.Fatal("2011 trace has alloc sets")
		}
	}
	if res.AutopilotUpdates != 0 {
		t.Fatalf("2011 autopilot updates %d", res.AutopilotUpdates)
	}
}

func TestDisableAutopilot(t *testing.T) {
	p := workload.Profile2019("a", 60)
	res := Run(p, Options{Horizon: 4 * sim.Hour, Seed: 6, DisableAutopilot: true})
	if res.AutopilotUpdates != 0 {
		t.Fatalf("autopilot updates %d with autopilot disabled", res.AutopilotUpdates)
	}
	for _, ev := range res.Trace.InstanceEvents {
		if ev.Type == trace.EventUpdateRunning {
			t.Fatal("UPDATE_RUNNING with autopilot disabled")
		}
	}
}

func TestSchedulingDelaysPositive(t *testing.T) {
	res := smallRun(t, 8)
	tr := res.Trace
	// For every job with a SCHEDULE, the first SCHEDULE must come at or
	// after the ENABLE.
	enable := map[trace.CollectionID]sim.Time{}
	for _, ev := range tr.CollectionEvents {
		if ev.Type == trace.EventEnable {
			enable[ev.Collection] = ev.Time
		}
	}
	firstRun := map[trace.CollectionID]sim.Time{}
	for _, ev := range tr.InstanceEvents {
		if ev.Type == trace.EventSchedule {
			if cur, ok := firstRun[ev.Key.Collection]; !ok || ev.Time < cur {
				firstRun[ev.Key.Collection] = ev.Time
			}
		}
	}
	checked := 0
	for id, fr := range firstRun {
		en, ok := enable[id]
		if !ok {
			continue
		}
		if fr < en {
			t.Fatalf("job %d first run %v before enable %v", id, fr, en)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("too few jobs checked: %d", checked)
	}
}
