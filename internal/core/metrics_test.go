package core

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestMetricsDoNotChangeTrace is the determinism contract's pinned
// acceptance test at the cell level: a run with a Registry (and a
// Timeline) attached must produce a trace byte-identical to the same
// run with metrics disabled — instruments observe, they never
// participate (no randomness consumed, no rows written).
func TestMetricsDoNotChangeTrace(t *testing.T) {
	opts := Options{Horizon: 8 * sim.Hour, Seed: 7}
	plain := Run(workload.Profile2019("a", 120), opts)

	reg := metrics.NewRegistry()
	opts.Metrics = reg
	opts.Timeline = metrics.NewTimeline()
	opts.TimelineID = 3
	instrumented := Run(workload.Profile2019("a", 120), opts)

	if !reflect.DeepEqual(plain.Trace.CollectionEvents, instrumented.Trace.CollectionEvents) {
		t.Fatal("collection events differ with metrics enabled")
	}
	if !reflect.DeepEqual(plain.Trace.InstanceEvents, instrumented.Trace.InstanceEvents) {
		t.Fatal("instance events differ with metrics enabled")
	}
	if !reflect.DeepEqual(plain.Trace.UsageRecords, instrumented.Trace.UsageRecords) {
		t.Fatal("usage records differ with metrics enabled")
	}
	if !reflect.DeepEqual(plain.Trace.MachineEvents, instrumented.Trace.MachineEvents) {
		t.Fatal("machine events differ with metrics enabled")
	}
	if plain.Sched != instrumented.Sched {
		t.Fatalf("scheduler stats differ: %+v vs %+v", plain.Sched, instrumented.Sched)
	}

	// And the registry actually observed the run.
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Hists) == 0 {
		t.Fatalf("instrumented run recorded nothing: %+v", snap)
	}
	if got := reg.Counter("sched_tasks_placed_total").Value(); got != int64(instrumented.Sched.TasksPlaced) {
		t.Fatalf("sched_tasks_placed_total = %d, stats say %d", got, instrumented.Sched.TasksPlaced)
	}
	if reg.Counter("sim_events_total").Value() == 0 {
		t.Fatal("sim_events_total not recorded")
	}
	if reg.Counter("usage_windows_total").Value() == 0 {
		t.Fatal("usage_windows_total not recorded")
	}
	rows := instrumented.Rows
	if got := reg.Counter("trace_rows_usage_total").Value(); got != rows.Usage {
		t.Fatalf("trace_rows_usage_total = %d, row counter says %d", got, rows.Usage)
	}
	if opts.Timeline.Len() == 0 {
		t.Fatal("timeline recorded no spans")
	}
}
