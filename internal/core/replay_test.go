package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func tracesEqual(t *testing.T, label string, a, b *trace.MemTrace) bool {
	t.Helper()
	ok := true
	if !reflect.DeepEqual(a.CollectionEvents, b.CollectionEvents) {
		t.Errorf("%s: collection events differ (%d vs %d)", label, len(a.CollectionEvents), len(b.CollectionEvents))
		ok = false
	}
	if !reflect.DeepEqual(a.InstanceEvents, b.InstanceEvents) {
		t.Errorf("%s: instance events differ (%d vs %d)", label, len(a.InstanceEvents), len(b.InstanceEvents))
		ok = false
	}
	if !reflect.DeepEqual(a.UsageRecords, b.UsageRecords) {
		t.Errorf("%s: usage records differ (%d vs %d)", label, len(a.UsageRecords), len(b.UsageRecords))
		ok = false
	}
	if !reflect.DeepEqual(a.MachineEvents, b.MachineEvents) {
		t.Errorf("%s: machine events differ (%d vs %d)", label, len(a.MachineEvents), len(b.MachineEvents))
		ok = false
	}
	return ok
}

func replayOpts() Options {
	return Options{Horizon: 6 * sim.Hour, Seed: 11, IDBase: 1 << 32}
}

// TestReplayReproducesRecordingRun pins the replay fidelity contract at
// the cell level: a run that replays its own recording at the same seed
// produces the recording run's trace byte for byte — the workload stream
// carries every workload-split draw, and the other rng streams
// (machines, scheduler, maintenance, usage) are untouched by skipping
// the generator.
func TestReplayReproducesRecordingRun(t *testing.T) {
	opts := replayOpts()
	opts.RecordWorkload = true
	rec := Run(workload.Profile2019("a", 180), opts)
	if rec.Workload == nil || len(rec.Workload.Arrivals) == 0 {
		t.Fatal("RecordWorkload run captured no workload")
	}

	opts2 := replayOpts()
	opts2.Replay = rec.Workload
	rep := Run(workload.Profile2019("a", 180), opts2)
	if !tracesEqual(t, "record vs replay", rec.Trace, rep.Trace) {
		t.Fatal("replaying a cell's own recording did not reproduce its trace")
	}
}

// TestReplayIdenticalAcrossPolicies pins workload/policy separation:
// replaying one recording under two placement policies re-records byte-
// identical workload files (the arrival stream is policy-independent)
// while the schedulers place it differently.
func TestReplayIdenticalAcrossPolicies(t *testing.T) {
	opts := replayOpts()
	opts.RecordWorkload = true
	rec := Run(workload.Profile2019("a", 180), opts)

	var files [2][]byte
	var traces [2]*trace.MemTrace
	for i, policy := range []string{"random-fit", "best-fit"} {
		o := replayOpts()
		o.Policy = policy
		o.Replay = rec.Workload
		o.RecordWorkload = true
		res := Run(workload.Profile2019("a", 180), o)
		var buf bytes.Buffer
		if _, err := res.Workload.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		files[i] = buf.Bytes()
		traces[i] = res.Trace
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatal("re-recorded workload files differ across policies — replay is leaking policy into the workload")
	}
	if reflect.DeepEqual(traces[0].InstanceEvents, traces[1].InstanceEvents) {
		t.Fatal("random-fit and best-fit produced identical instance events under replay — policy override inert")
	}
}

// TestReplayIgnoresArrivalOverride: under replay the recorded stream
// wins; an -arrival override must not change the trace.
func TestReplayIgnoresArrivalOverride(t *testing.T) {
	opts := replayOpts()
	opts.RecordWorkload = true
	rec := Run(workload.Profile2019("a", 180), opts)

	a := replayOpts()
	a.Replay = rec.Workload
	plain := Run(workload.Profile2019("a", 180), a)

	b := replayOpts()
	b.Replay = rec.Workload
	b.Arrival = "gamma:cv=2.5"
	overridden := Run(workload.Profile2019("a", 180), b)
	if !tracesEqual(t, "replay vs replay+arrival", plain.Trace, overridden.Trace) {
		t.Fatal("arrival override changed a replayed run")
	}
}
