package core

import (
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
)

// noiseTableBits sets the resolution of the fast usage-noise lookup:
// 2^10 strata per marginal, which keeps the table pair inside 16 KB (two
// cache-resident float64 arrays) while bounding each stratum to under
// 0.1% of probability mass.
const noiseTableBits = 10

// noiseTableSize is the number of strata per table.
const noiseTableSize = 1 << noiseTableBits

// noiseTable is the UsageNoiseFast lookup pair: stratified inverse-CDF
// tables for the CPU noise lognormal exp(σ·N(0,1)) and the memory noise
// lognormal exp(0.3σ·N(0,1)). Entry i holds the lognormal quantile at
// the stratum midpoint (i+0.5)/N, and each table is rescaled so its
// arithmetic mean equals the exact lognormal mean exp(σ²/2) — the
// moment the utilization scalars integrate over, so the fast path stays
// unbiased even though the tails are clipped at the outermost strata.
//
// A draw consumes one 64-bit variate and splits it into two independent
// 10-bit indices (xoshiro256** output bits are jointly equidistributed),
// replacing two Box–Muller normals and two math.Exp calls per resident
// per window. The table is built once per sampler at construction, so
// steady-state sampling stays allocation-free.
type noiseTable struct {
	c [noiseTableSize]float64 // CPU noise: lognormal σ
	m [noiseTableSize]float64 // memory noise: lognormal 0.3σ
}

// newNoiseTable builds the lookup pair for the profile's UsageNoiseSigma.
func newNoiseTable(sigma float64) *noiseTable {
	t := &noiseTable{}
	fillNoiseStrata(t.c[:], sigma)
	fillNoiseStrata(t.m[:], sigma*0.3)
	return t
}

// fillNoiseStrata populates tab[i] = exp(sigma·Φ⁻¹((i+0.5)/N)) and
// rescales so mean(tab) = exp(sigma²/2) exactly.
func fillNoiseStrata(tab []float64, sigma float64) {
	n := float64(len(tab))
	sum := 0.0
	for i := range tab {
		p := (float64(i) + 0.5) / n
		tab[i] = math.Exp(sigma * dist.InvNormCDF(p))
		sum += tab[i]
	}
	scale := math.Exp(sigma*sigma/2) * n / sum
	for i := range tab {
		tab[i] *= scale
	}
}

// draw returns one (CPU, memory) noise pair from a single 64-bit variate:
// the top 10 bits index the CPU table, the next 10 the memory table.
func (t *noiseTable) draw(src *rng.Source) (noiseC, noiseM float64) {
	bits := src.Uint64()
	return t.c[bits>>(64-noiseTableBits)],
		t.m[(bits>>(64-2*noiseTableBits))&(noiseTableSize-1)]
}
