// Quickstart: simulate a small 2019-profile Borg cell for six hours,
// validate the resulting trace, and print headline statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// A 100-machine cell with cell a's workload mix, simulated for 6 hours.
	profile := workload.Profile2019("a", 100)
	res := core.Run(profile, core.Options{Horizon: 6 * sim.Hour, Seed: 42})
	tr := res.Trace

	fmt.Printf("cell %s simulated: %s\n", profile.Name, tr.Counts())
	fmt.Printf("scheduler stats: %+v\n\n", res.Sched)

	// The trace passes the §9 invariant pipeline.
	if v := trace.Validate(tr, trace.DefaultValidateOptions()); len(v) > 0 {
		log.Fatalf("trace invariants violated: %v", v[0])
	}
	fmt.Println("trace validates: submit-before-terminate, capacity, parent-kill all hold")

	// Tier-level utilization, Figure 3 style.
	av := analysis.AverageUsageByTier(tr, 2*sim.Hour)
	if err := report.TierAveragesTable(os.Stdout,
		"\naverage usage as fraction of cell capacity (post-warmup)",
		[]analysis.TierAverages{av}, "cpu"); err != nil {
		log.Fatal(err)
	}

	// Scheduling delay, Figure 10 style.
	all, byTier := analysis.SchedulingDelays([]*trace.MemTrace{tr})
	fmt.Printf("\nscheduling delay: median %.2fs (n=%d)\n", stats.Quantile(all, 0.5), len(all))
	for _, tier := range trace.Tiers() {
		if xs := byTier[tier]; len(xs) > 0 {
			fmt.Printf("  %-4s median %.2fs  p90 %.2fs\n",
				tier, stats.Quantile(xs, 0.5), stats.Quantile(xs, 0.9))
		}
	}
}
