// Sweep: quantifies run-to-run variance and parameter sensitivity of
// the reproduction's headline numbers. The paper reports single-trace
// observations; this example reruns a small nine-cell suite under three
// replicate seeds × four variants — half/paper/double arrival load plus
// a best-fit placement-policy arm from the scheduler zoo — and prints
// cross-seed means with 95% confidence intervals for each sweep metric,
// ending with the paired-difference section: each variant differenced
// against the baseline replicate by replicate.
//
// Every grid point streams through per-cell reducers with NoMemTrace, so
// the simulations cost reducer state, not retained traces, and the
// grid's common-random-numbers seeding means the variants' differences
// are not seed noise — which is exactly why the paired 95% intervals
// come out tighter than the unpaired ones printed beside them.
//
//	go run ./examples/sweep [-parallel N]
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)
	parallel := flag.Int("parallel", 0, "cells simulated concurrently (0 = all CPUs)")
	flag.Parse()

	bestFit, err := sweep.PolicyVariant("best-fit")
	if err != nil {
		log.Fatal(err)
	}
	def := sweep.Def{
		Scale: experiments.Scale{Name: "example", Machines2011: 60, Machines2019: 50,
			Horizon: 6 * sim.Hour, Warmup: 2 * sim.Hour, Seed: 1},
		Seeds: 3,
		Variants: []sweep.Variant{
			sweep.ArrivalScale(0.5),
			sweep.Baseline(),
			sweep.ArrivalScale(2),
			bestFit,
		},
		Parallelism: *parallel,
	}

	start := time.Now()
	res, err := sweep.Run(def)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("swept %d × %d × %d cells in %v",
		def.Seeds, len(def.Variants), res.Cells, time.Since(start).Round(time.Millisecond))
	if err := res.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
