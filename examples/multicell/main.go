// Multicell: reproduces the paper's inter-cell variation findings
// (Figures 3/5/6, §4): each of the eight 2019 cells runs a different
// workload mix — cell b is batch-heavy, cell a production-heavy, cell h
// mid-tier-heavy — and machine utilization differs visibly between cells.
// The cells simulate concurrently on the engine's worker pool; the
// -parallel flag changes only how long that takes, never the numbers.
//
// The analysis here is fully streaming: each cell carries one
// streaming.CellReducer and simulates with NoMemTrace, so no trace is
// ever retained — every figure below is read from reducer state after
// the rows were folded online and dropped. Memory stays bounded no
// matter the horizon; the numbers are byte-identical to what post-hoc
// analysis of a retained trace would produce.
//
//	go run ./examples/multicell [-parallel N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/streaming"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	parallel := flag.Int("parallel", 0, "cells simulated concurrently (0 = all CPUs)")
	flag.Parse()

	const machines = 80
	const rootSeed = 100
	horizon := 8 * sim.Hour

	cells := []string{"a", "b", "h"} // the paper's three named extremes
	specs := make([]engine.Spec, len(cells))
	reducers := make([]*streaming.CellReducer, len(cells))
	for i, cell := range cells {
		specs[i] = engine.NewSpec(i, workload.Profile2019(cell, machines),
			core.Options{Horizon: horizon, NoMemTrace: true}, rootSeed)
		reducers[i] = streaming.NewCellReducer(streaming.Config{
			Meta: trace.Meta{
				Era: trace.Era2019, Cell: cell, Duration: horizon,
				Machines: machines, Seed: specs[i].Options.Seed,
			},
			SnapshotAt: horizon / 2,
		})
	}
	engine.AttachSinks(specs, func(i int) trace.Sink { return reducers[i] })

	fmt.Printf("simulating cells a (prod-heavy), b (beb-heavy), h (mid-heavy), parallelism=%d, NoMemTrace...\n", *parallel)
	start := time.Now()
	var averages []analysis.TierAverages
	// OnResult streams each cell's analysis in spec order while later
	// cells may still be simulating; the reducer already holds the
	// folded state, so this reads it without touching any trace.
	engine.Run(specs, engine.Options{
		Parallelism: *parallel,
		OnResult: func(i int, res *core.CellResult) {
			averages = append(averages, reducers[i].AverageUsageByTier(3*sim.Hour))
			fmt.Printf("  cell %s done: %d rows folded, reducer state %s\n",
				cells[i], res.Rows.Total(), reducers[i].Counts())
		},
	})
	fmt.Printf("simulated %d cells in %v\n", len(cells), time.Since(start).Round(time.Millisecond))

	if err := report.TierAveragesTable(os.Stdout,
		"\naverage CPU usage by tier (fraction of cell capacity, Figure 3)",
		averages, "cpu"); err != nil {
		log.Fatal(err)
	}

	// The headline inter-cell contrasts the paper calls out.
	get := func(cell string) analysis.TierAverages {
		for _, a := range averages {
			if a.Cell == cell {
				return a
			}
		}
		log.Fatalf("missing cell %s", cell)
		return analysis.TierAverages{}
	}
	a, b, h := get("a"), get("b"), get("h")
	fmt.Printf("\ncell b beb share of usage:  %.0f%% (largest of the three)\n",
		100*b.CPU[trace.TierBestEffortBatch]/total(b))
	fmt.Printf("cell a prod share of usage: %.0f%% (largest of the three)\n",
		100*a.CPU[trace.TierProduction]/total(a))
	fmt.Printf("cell h mid share of usage:  %.0f%% (largest of the three)\n",
		100*h.CPU[trace.TierMid]/total(h))

	// Machine utilization medians differ between cells (Figure 6).
	fmt.Println("\nmachine CPU utilization at mid-trace (Figure 6):")
	for i, r := range reducers {
		cpu, _ := r.MachineUtilization()
		fmt.Printf("  cell %s: median %.2f  p90 %.2f\n",
			cells[i], stats.Quantile(cpu, 0.5), stats.Quantile(cpu, 0.9))
	}
}

func total(a analysis.TierAverages) float64 {
	t := 0.0
	for _, tier := range trace.Tiers() {
		t += a.CPU[tier]
	}
	return t
}
