// Heavytail: demonstrates the paper's §7 "hogs and mice" finding and its
// scheduling implication (§7.3, research direction 5): when 1% of jobs
// carry almost all the load, isolating them — here by demoting them below
// the mice — collapses the mice's queueing delay.
//
// The example drives the scheduler directly through the public API with a
// hand-built workload: many tiny mice jobs plus a few enormous hogs.
//
//	go run ./examples/heavytail
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// buildWorkload makes 500 mice and 5 hogs; hog tasks keep the scheduler
// busy for long stretches.
func runScenario(hogPriority int) (miceDelaysSeconds []float64, hogShare float64) {
	cell := cluster.NewCell("ht")
	for i := 0; i < 40; i++ {
		cell.AddMachine(trace.Resources{CPU: 1, Mem: 1}, "P0")
	}
	k := sim.NewKernel()
	sink := trace.NewMemTrace(trace.Meta{Era: trace.Era2019, Cell: "ht", Duration: 6 * sim.Hour, Machines: 40})
	cfg := scheduler.DefaultConfig()
	cfg.Batch = nil
	cfg.ServiceTime = dist.LogNormalFromMedian(0.25, 0.6) // a busy scheduler
	sched := scheduler.New(cfg, cell, k, sink, rng.New(7))
	src := rng.New(99)

	id := trace.CollectionID(1)
	var miceJobs []*scheduler.Job
	var total, hogHours float64

	// 5 hogs: 400 tasks each, 2 hours — over 99% of the compute-hours.
	for i := 0; i < 5; i++ {
		j := scheduler.NewJob(id)
		id++
		j.Type = trace.CollectionJob
		j.Priority = hogPriority
		j.Tier = trace.TierFromPriority2019(hogPriority)
		j.User = "hog"
		for t := 0; t < 400; t++ {
			j.AddTask(&scheduler.Task{
				Request:  trace.Resources{CPU: 0.08, Mem: 0.05},
				Duration: 2 * sim.Hour,
				MeanCPU:  0.06, MeanMem: 0.04, PeakFact: 1.2,
			})
		}
		hogHours += 400 * 0.06 * 2
		total += 400 * 0.06 * 2
		at := sim.Time(i) * 20 * sim.Minute
		k.At(at, func(sim.Time) { sched.Submit(j) })
	}

	// 500 mice: 1 task, 3 minutes, arriving throughout.
	for i := 0; i < 500; i++ {
		j := scheduler.NewJob(id)
		id++
		j.Type = trace.CollectionJob
		j.Priority = 110
		j.Tier = trace.TierBestEffortBatch
		j.User = "mouse"
		j.AddTask(&scheduler.Task{
			Request:  trace.Resources{CPU: 0.02, Mem: 0.02},
			Duration: 3 * sim.Minute,
			MeanCPU:  0.015, MeanMem: 0.015, PeakFact: 1.2,
		})
		total += 0.015 * 0.05
		miceJobs = append(miceJobs, j)
		at := sim.Time(src.Intn(int(4 * sim.Hour)))
		k.At(at, func(sim.Time) { sched.Submit(j) })
	}

	k.RunUntil(6 * sim.Hour)

	for _, j := range miceJobs {
		if j.FirstRun >= 0 {
			miceDelaysSeconds = append(miceDelaysSeconds, (j.FirstRun - j.ReadyTime).Seconds())
		}
	}
	return miceDelaysSeconds, hogHours / total
}

func main() {
	// Scenario A: hogs share the mice's priority — mice queue behind
	// thousands of hog task placements.
	same, share := runScenario(110)
	// Scenario B: hogs demoted to the free tier — mice are effectively
	// isolated and see a lightly loaded scheduler.
	isolated, _ := runScenario(0)

	fmt.Printf("hogs are 1%% of jobs and %.1f%% of compute-hours\n\n", share*100)
	fmt.Printf("%-28s %10s %10s %10s\n", "scenario", "p50 (s)", "p90 (s)", "p99 (s)")
	p := func(xs []float64, q float64) float64 { return stats.Quantile(xs, q) }
	fmt.Printf("%-28s %10.2f %10.2f %10.2f\n", "hogs at mice priority", p(same, 0.5), p(same, 0.9), p(same, 0.99))
	fmt.Printf("%-28s %10.2f %10.2f %10.2f\n", "hogs isolated below mice", p(isolated, 0.5), p(isolated, 0.9), p(isolated, 0.99))
	fmt.Println("\nisolating the hogs lets the 99% of jobs that are mice see a lightly loaded cell (§7.3)")
}
