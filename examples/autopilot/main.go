// Autopilot: reproduces the Figure 14 scenario — the peak NCU slack of
// fully autoscaled, constrained, and manually provisioned jobs — on a
// single simulated cell, and estimates the capacity Autopilot returns to
// the cell.
//
//	go run ./examples/autopilot
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	profile := workload.Profile2019("e", 120)
	res := core.Run(profile, core.Options{Horizon: 10 * sim.Hour, Seed: 11})
	tr := res.Trace

	fmt.Printf("cell %s: %d autopilot limit updates issued\n\n", profile.Name, res.AutopilotUpdates)

	slack := analysis.SlackSamples([]*trace.MemTrace{tr})
	fmt.Printf("%-14s %10s %10s %10s %10s\n", "strategy", "p25 (%)", "p50 (%)", "p75 (%)", "samples")
	for _, mode := range []trace.VerticalScaling{trace.ScalingFull, trace.ScalingConstrained, trace.ScalingNone} {
		xs := slack[mode]
		if len(xs) == 0 {
			continue
		}
		fmt.Printf("%-14s %10.1f %10.1f %10.1f %10d\n", mode,
			stats.Quantile(xs, 0.25), stats.Quantile(xs, 0.5), stats.Quantile(xs, 0.75), len(xs))
	}

	full := stats.Quantile(slack[trace.ScalingFull], 0.5)
	manual := stats.Quantile(slack[trace.ScalingNone], 0.5)
	fmt.Printf("\nfully autoscaled jobs carry %.0f points less median peak slack than manual ones\n", manual-full)
	fmt.Println("(the paper reports >25 points for the vast majority of jobs, Figure 14)")

	// Slack is capacity the cell can resell: compare aggregate limits.
	var limitAuto, peakAuto, limitMan, peakMan float64
	scaling := map[trace.CollectionID]trace.VerticalScaling{}
	for _, info := range tr.CollectionInfos() {
		scaling[info.ID] = info.Scaling
	}
	for _, rec := range tr.UsageRecords {
		switch scaling[rec.Key.Collection] {
		case trace.ScalingFull:
			limitAuto += rec.Limit.CPU
			peakAuto += rec.MaxUsage.CPU
		case trace.ScalingNone:
			limitMan += rec.Limit.CPU
			peakMan += rec.MaxUsage.CPU
		}
	}
	if limitAuto > 0 && limitMan > 0 {
		fmt.Printf("\naggregate reserved-but-unused CPU: %.0f%% for autoscaled vs %.0f%% for manual jobs\n",
			(1-peakAuto/limitAuto)*100, (1-peakMan/limitMan)*100)
	}
}
