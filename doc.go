// Package repro is a from-scratch Go reproduction of "Borg: the Next
// Generation" (Tirmazi et al., EuroSys 2020): a discrete-event Borg cell
// simulator with a calibrated synthetic workload generator that emits
// traces in the 2019 schema, plus the full analysis toolkit that
// regenerates every table and figure of the paper.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The root-level benchmarks (bench_test.go)
// regenerate each table and figure; cmd/borgexperiments prints the whole
// evaluation.
package repro
