// Package repro is a from-scratch Go reproduction of "Borg: the Next
// Generation" (Tirmazi et al., EuroSys 2020): a discrete-event Borg cell
// simulator with a calibrated synthetic workload generator that emits
// traces in the 2019 schema, plus the full analysis toolkit that
// regenerates every table and figure of the paper.
//
// # Architecture
//
// The system is layered, bottom to top:
//
//   - internal/sim — the discrete-event kernel: a virtual microsecond
//     clock and a pooled event heap (events are slab-allocated and
//     recycled; cancellation goes through generation-checked EventRef
//     handles, so steady-state simulation does not allocate per event).
//     One kernel drives exactly one cell and is single-threaded by design.
//   - internal/rng, internal/dist — splittable deterministic randomness
//     (xoshiro256**) and the calibrated parametric distributions drawn
//     from it. All stochastic behavior flows through explicit sources, so
//     a trace is a pure function of (profile, horizon, seed).
//   - internal/cluster, internal/scheduler, internal/autopilot,
//     internal/workload — the simulated cell: machines, the Borg
//     scheduler (placement, preemption, batch queue), the vertical
//     autoscaler, and the per-cell workload generator. Placement
//     behavior is pluggable: a scheduler.Policy bundles candidate
//     scoring, preemption-plan preference, failure handling and
//     (optionally) pending-queue order, and a registered zoo of
//     policies — random-fit, best-fit, least-allocated (the default),
//     worst-fit, an oversubscription-aware scorer, and a no-retry
//     one-shot — swaps in by name (scheduler.ParsePolicy) through
//     core.Options, experiments.Scale, and sweep variants.
//   - internal/trace — the 2019-schema data model and the streaming sink
//     pipeline: rows flow through composable trace.Sink implementations
//     (FanOut, BufferedSink batching, SyncSink for sinks shared across
//     cells, CountingSink online reduction). Full in-memory retention
//     (MemTrace) is just one sink and can be switched off per run. Sinks
//     that can absorb many usage rows at once additionally implement
//     trace.UsageBatcher (see "Usage pipeline and sink batching" below).
//   - internal/core — the single-cell façade: wires one cell's
//     components and sink pipeline and runs it to the horizon.
//   - internal/engine — multi-cell orchestration: runs N cell
//     simulations concurrently on a bounded worker pool and streams
//     results back in submission order. The engine owns the determinism
//     contracts: per-cell seeds derive from the root seed via
//     engine.DeriveSeed, per-cell collection-ID spaces are disjoint via
//     engine.IDBase, and therefore the same root seed yields
//     byte-identical traces at any parallelism.
//   - internal/analysis, internal/analysis/streaming, internal/report,
//     internal/experiments — the evaluation: experiments.RunSuite
//     simulates the paper's nine cells (2011 plus 2019 a–h) through the
//     engine and regenerates every table and figure. Each per-figure
//     analysis is factored into a per-cell accumulation plus an exact
//     merge, with two interchangeable front ends: post-hoc over a
//     retained MemTrace, or online via streaming.CellReducer — a
//     trace.Sink that folds rows as the simulation emits them.
//   - internal/sweep — parameter sweeps over the engine: seed × variant
//     × cell grids with common-random-numbers seeding, per-point
//     streaming reducers, and cross-seed statistics (mean, stddev, 95%
//     CI per variant × metric), reported by cmd/borgsweep.
//   - internal/fleet — warehouse-scale federation: O(100) synthetic
//     cells profile-sampled around the 2019 medians, streamed through
//     one engine pool with bounded memory and rolled up online into
//     fleet-level cross-cell percentiles (internal/stats t-digests),
//     reported by cmd/borgfleet. internal/progress supplies the live
//     progress reporter shared by all three CLIs, and internal/cliflags
//     the shared flag set (-seed, -parallel, -policy, -arrival,
//     -progress, profiling, observability) they register and validate
//     identically.
//   - internal/metrics — the observability seam: a registry of typed
//     instruments every hot layer reports into, exporters (Prometheus
//     text, JSON, CSV, Chrome trace_event timelines), and the opt-in
//     live HTTP endpoint. See "Observability" below.
//
// # Placement fast path
//
// The scheduler reproduces the 2015-era Borg throughput machinery the
// paper credits (score caching, equivalence classes): machines maintain
// their usage total, allocation, victim order and overcommit ceiling
// incrementally, so a placement attempt reads O(1) aggregates instead of
// rescanning residents; tasks are bucketed into equivalence classes
// (request shape × tier × priority band) and each machine memoizes its
// score for the last class that probed it, invalidated by a per-machine
// generation counter bumped on every place/remove/limit/usage mutation.
// Resident records and kernel callbacks are pooled, so steady-state
// placement performs zero heap allocations (guarded by an
// AllocsPerRun test in CI). The policy layer sits on top of this
// machinery without weakening it: policies are stateless singletons
// whose Score is a pure function of generation-covered machine state
// and class-covered request shape, so the per-class score cache, the
// candidate RNG draw sequence, and the zero-alloc guarantee hold for
// every policy in the zoo (guarded per policy by AllocsPerRun and a
// per-policy benchmark gate). The caches are pure memoization under a hard
// determinism constraint: every cached value is bit-identical to
// recomputation and the candidate RNG draw sequence is unchanged by
// caching, so for a given build the same seed yields byte-identical
// traces at any parallelism. Traces are stable per build, not across
// versions: an optimization that reorders floating-point sums or random
// draws (as the fast path did) legitimately shifts same-seed
// trajectories relative to earlier commits.
//
// # Streaming analysis
//
// Trace retention, not simulation, used to bound suite horizons: every
// figure was computed post-hoc over a fully retained MemTrace, so memory
// grew with every usage record and life-cycle event. The streaming
// reducers invert that: experiments.RunSuiteStreaming runs all nine
// cells with core.Options.NoMemTrace, each cell's rows folding through
// one streaming.CellReducer (and, optionally, a sharded CSV export via
// trace.DirSink behind a BufferedSink) before being dropped. Reducer
// state grows only with the number of jobs and tasks — the aggregates
// the figures inherently need — cutting the LargeScale suite's peak heap
// by ~10x (BENCH_PR4.json) while producing a report byte-identical to
// the retained path: within a cell both paths fold the same terms in
// emission order, and cross-cell merges share the same Finish/Merge
// functions. CI pins this with differential tests (reducer vs post-hoc,
// streamed report vs retained report), a benchmark-regression gate
// against the checked-in baselines, and a peak-HeapAlloc ceiling on the
// LargeScale streaming suite.
//
// # Usage pipeline and sink batching
//
// Usage sampling is the per-window hot loop: every five simulated
// minutes the sampler visits every occupied machine and emits one
// UsageRecord per resident task. At warehouse scale that loop dominates
// the profile, so both of its halves are allocation-free. The sampler
// side walks an occupied-machine index maintained by the cell (never
// scanning empty machines), reuses pooled observation and record
// buffers across windows, and tracks first-window-after-placement state
// with a generation counter instead of a per-window map; a steady-state
// sampling window performs zero heap allocations (AllocsPerRun-guarded
// in CI, like the placement fast path).
//
// The delivery side batches: instead of one Sink.Usage virtual call per
// record, the sampler hands each machine-window's records to the sink
// as one []UsageRecord. The contract is trace.UsageBatcher, an optional
// capability interface next to trace.Sink:
//
//   - UsageBatch(recs) must be semantically identical to calling
//     Usage(recs[i]) for i in order — batching changes the call count,
//     never the row sequence any downstream observes.
//   - The slice is only valid for the duration of the call (the sampler
//     reuses it next window); implementations that retain rows must
//     copy them out, as MemTrace and BufferedSink do.
//   - trace.EmitUsageBatch(sink, recs) is the dispatch helper: it
//     type-asserts once and falls back to the per-record loop for plain
//     scalar sinks, so batching is transparent to sinks that never opt
//     in.
//
// The composable sinks propagate the capability end to end: FanOut
// forwards a batch to every child (each child independently batched or
// scalar), SyncSink holds its lock once per batch, CountingSink counts
// len(recs) in one step, BufferedSink passes batches straight through
// to a batch-capable downstream (draining any buffered scalar stragglers
// first, preserving row order) and buffers row-by-row otherwise, and
// streaming.CellReducer folds a whole batch with its per-collection
// classification memoized across adjacent rows. Batched and scalar
// delivery produce byte-identical reports and CSV export shards at any
// parallelism — CI pins that with a differential test that forces the
// scalar path through an interposer and diffs the bytes.
//
// What remains of the window cost after those two halves is mostly
// random-number arithmetic: each resident draws two lognormal noise
// factors, classically two Box–Muller normals plus two math.Exp calls.
// core.Options.UsageNoiseFast replaces that with a 1024-entry stratified
// inverse-CDF table per resource (midpoint quantiles via
// dist.InvNormCDF, rescaled so the table mean is exactly the
// lognormal's), indexed by disjoint bit fields of a single Uint64 draw.
// The fast path is off by default because it is a versioned trace bump:
// same-seed traces differ byte-for-byte from the exact path (CI pins
// the default path's bytes), while the scalar distributions remain
// statistically equivalent — a differential test bounds the drift of
// the utilization scalars, and the benchmark gate holds the measured
// window speedup.
//
// # Workload generation and record/replay
//
// The workload generator's arrival timing is a pluggable seam:
// workload.ArrivalProcess decides when the next collection is submitted
// and by whom, running under a workload.RateEnvelope (SineEnvelope —
// base rate times a sum of sinusoidal harmonics; one harmonic is the
// classic diurnal profile). Processes register by name like scheduler
// policies — workload.ParseArrival validates a "name:knob=value,..."
// spec and lists the valid set on a typo, workload.ArrivalNames feeds
// help text. The registry: "poisson" (the default diurnally-thinned
// Poisson stream — byte-identical at the same seed to the pre-API
// generator, pinned by a golden report hash in CI), "gamma:cv=C" and
// "weibull:cv=C" (renewal processes whose coefficient-of-variation knob
// dials burstiness a memoryless stream cannot express), and
// "cohorts:k=K,skew=S,cv=C" (K clients with Zipf-skewed rate shares,
// each an independent gamma renewal stream, superposed; the firing
// client is the submitting user). A spec threads through every layer:
// workload.CellProfile.Arrival, core.RunKnobs.Arrival,
// experiments.Scale, the polymorphic sweep family
// "arrival:gamma:cv=2.5,..." (numeric values still mean rate
// multipliers), fleet-wide overrides, and the -arrival flag of all
// three CLIs.
//
// The same seam makes workloads portable across runs:
// workload.Recorder wraps any generator and captures the exact
// arrival/job stream; workload.Replayer plays a capture back through
// the generator-facing interface, rebasing collection IDs onto the
// replaying run's ID space. Recordings serialize to a versioned text
// format (round-trip exact — floats print with strconv 'g'/-1) via
// WriteTo/ReadRecording; experiments.SaveWorkloads/LoadWorkloads
// persist a suite's nine cells as one file each, driven by
// borgexperiments -record-workload/-replay-workload. Because core.Run
// derives its rng streams by labeled splits, replaying skips only the
// workload stream: a replay at the recording's seed reproduces the
// recording run's trace byte for byte, and the same recording replays
// byte-identically under any placement policy, parameter overlay or
// engine parallelism — Scale.Replay pins identical workloads across
// sweep variants (common random numbers beyond seeds), and CI's
// replay-smoke job checks record → replay → re-record fidelity end to
// end through the CLI.
//
// # Fleet federation
//
// internal/fleet scales the engine from the paper's nine-cell suite to
// warehouse footprints: fleet.Run expands a Config (cell count, median
// machine count, horizon, root seed) into O(100) synthetic cells whose
// profiles are lognormal-sampled around the calibrated 2019 medians —
// machine count, arrival rate, tier mix and diurnal phase all vary
// per cell — and streams them through one engine worker pool via
// engine.RunStream. Specs materialize only as workers pick them up;
// every cell runs with NoMemTrace plus one streaming.CellReducer, and
// each cell's scalars fold into the fleet rollup (one merging
// stats.Digest per metric) the moment its in-order result delivers,
// after which the reducer is released. Peak heap is therefore
// O(Parallelism) cells regardless of fleet size — the 128-cell CI smoke
// runs in a few MB against a 1536 MB ceiling. Determinism follows the
// engine contract: cell i simulates with engine.DeriveSeed(root, i) and
// a profile drawn from that seed's own splitter, so the report, rollup
// CSV and per-cell CSV are byte-identical at any parallelism and cell
// i's world never depends on the fleet size (fleets are CRN-comparable
// across knob changes). cmd/borgfleet drives it:
//
//	borgfleet -cells 128 -machines 60 -hours 4 -progress \
//	  -rollup-csv rollup.csv -cells-csv cells.csv
//
// # Parameter sweeps
//
// The paper's numbers are single-trace observations; internal/sweep
// quantifies their run-to-run variance and parameter sensitivity. A
// sweep is N root-seed replicates × M named profile variants (overlays
// mutating workload.CellProfile knobs: arrival-rate multipliers,
// machine-count scaling, tier-mix shifts, overcommit and
// admission-ceiling settings, and placement policies from the
// scheduler zoo — same clusters, same arrivals, different brains),
// each grid point simulating the full
// nine-cell suite with one streaming reducer per cell and NoMemTrace —
// wide sweeps cost reducer state, never retained traces. Grid seeds
// follow engine.DeriveGridSeed(root, run, cell): they depend only on the
// replicate and cell, never on the variant list, so all variants of a
// replicate face the same stochastic world (common random numbers) and
// cross-variant deltas are not seed noise. Each grid point reduces to a
// scalar metric vector (streaming.Scalars averaged over the 2019 cells
// plus scheduler counters); across replicates every variant × metric
// gets a stats.CrossRun — mean, sample stddev, min/max and a 95%
// Student-t confidence interval — rendered as a variant × metric report
// and per-metric CSVs. Because replicates share seeds across variants,
// the report closes with a paired-difference section (and
// paired_diffs.csv): every non-baseline variant differenced against
// the baseline replicate by replicate, with the paired Student-t 95%
// half-width (stats.PairedDiff) printed beside the Welch unpaired
// interval it beats. cmd/borgsweep drives it:
//
//	borgsweep -scale small -seeds 5 \
//	  -variants 'baseline;arrival:0.5,2.0;policy:best-fit,oversub' -csv out/
//
// Same root seed + same definition ⇒ byte-identical sweep report at any
// -parallel setting; CI smoke-tests exactly that.
//
// # Observability
//
// internal/metrics instruments the simulator without touching its
// determinism: a Registry of typed instruments — lock-free atomic
// counters and gauges, mutex-guarded t-digest histograms — that the
// scheduler (placement attempts, score-cache hit rate, preemptions,
// live pending-queue depth), the sim kernel (events dispatched, slab
// occupancy), the usage pipeline (windows sampled, batch sizes) and the
// trace layer (rows emitted per kind) report into. The contract is
// observe-only: instruments consume no randomness, schedule no events
// and write no trace rows, so a run with metrics attached is
// byte-identical to one without, at any parallelism — pinned by
// differential tests in internal/core, internal/experiments and
// internal/fleet, and the instrumented placement fast path stays
// zero-alloc (counter posts are batched per pick; histograms ride the
// usage sampler's periodic tick, never the hot path) under its own
// AllocsPerRun guard and benchmark gate.
//
// Multi-cell runs roll up deterministically: engine.RunInstruments
// gives every cell a private registry (concurrent cells never share
// one) and merges them into the run-level registry in spec order on the
// engine's serialized OnResult path — the same discipline the streaming
// reducers use — so the rolled-up snapshot, t-digest quantiles
// included, is byte-identical at any parallelism. Counter/gauge merges
// and histogram count/sum/min/max are exact and order-independent.
// A metrics.Timeline sits outside the determinism boundary and records
// wall-clock spans (warmup/run/flush per cell, cell and reduce spans at
// the engine) exportable as Chrome trace_event JSON for
// chrome://tracing or Perfetto.
//
// The surface is uniform across the CLIs (internal/cliflags.Obs):
// -http :6060 serves live progress/ETA, /metrics (Prometheus),
// /metrics.json, /metrics.csv, /timeline, /debug/pprof/ and
// /debug/vars while the run executes, bounded by a graceful shutdown
// when it completes (handlers render snapshots into local buffers, so
// a stalled scraper can never block the engine's OnResult path);
// -metrics FILE exports the final snapshot (format by extension) and
// -timeline FILE the run timeline. The shared run summary — elapsed
// wall time plus peak HeapAlloc from metrics.PeakHeapDuring, the one
// sampler behind the CI memory ceiling, the suite benchmarks and every
// CLI log line — records into the same registry (run_wall_seconds,
// peak_heap_bytes). CI's metrics-smoke job scrapes a live fleet run
// end to end and diffs its report against a metrics-off run.
//
// The root-level benchmarks (bench_test.go) regenerate each table and
// figure and measure the engine's parallel speedup; cmd/borgexperiments
// prints the whole evaluation (-parallel N simulates N cells
// concurrently without changing a byte of output, -stream folds it
// through the reducers without retaining a trace). PAPER.md holds the
// source paper's abstract and ROADMAP.md the project direction.
package repro
