// Benchmarks regenerating every table and figure of the paper (one bench
// per artifact, per DESIGN.md's experiment index), plus ablation benches
// for the design choices the reproduction encodes. Figure benches share
// one simulated small-scale suite and measure the analysis passes; the
// ablation benches run whole simulations per configuration and report
// domain metrics via b.ReportMetric.
package repro

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/streaming"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

// suite simulates the 9-cell small-scale suite once for all figure benches.
func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		sc := experiments.Scale{
			Name: "bench", Machines2011: 80, Machines2019: 60,
			Horizon: 8 * sim.Hour, Warmup: 3 * sim.Hour, Seed: 7,
		}
		benchSuite = experiments.RunSuite(sc)
	})
	return benchSuite
}

func BenchmarkTable1(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Table1(s.T2011, s.T2019)
	}
}

func BenchmarkFigure1(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range s.T2019 {
			analysis.MachineShapes(tr)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var series []analysis.TierSeries
		for _, tr := range s.T2019 {
			series = append(series, analysis.UsageSeries(tr))
		}
		analysis.AverageSeries(series)
	}
}

func BenchmarkFigure3(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range s.T2019 {
			analysis.AverageUsageByTier(tr, s.Scale.Warmup)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var series []analysis.TierSeries
		for _, tr := range s.T2019 {
			series = append(series, analysis.AllocationSeries(tr))
		}
		analysis.AverageSeries(series)
	}
}

func BenchmarkFigure5(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range s.T2019 {
			analysis.AverageAllocationByTier(tr, s.Scale.Warmup)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range s.T2019 {
			analysis.MachineUtilizationCCDF(tr, s.Scale.Horizon/2)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Transitions(s.T2019[6]) // cell g, as the paper uses
	}
}

func BenchmarkAllocSetStats(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.AllocSets(s.T2019)
	}
}

func BenchmarkTerminationStats(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Terminations(s.T2019)
	}
}

func BenchmarkFigure8(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		r19 := analysis.Rates(s.T2019)
		r11 := analysis.Rates([]*trace.MemTrace{s.T2011})
		ratio = stats.Quantile(r19.JobsPerHour, 0.5) / stats.Quantile(r11.JobsPerHour, 0.5) *
			float64(s.Scale.Machines2011) / float64(s.Scale.Machines2019)
	}
	b.ReportMetric(ratio, "jobrate-ratio-2019/2011")
}

func BenchmarkFigure9(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var resub float64
	for i := 0; i < b.N; i++ {
		r19 := analysis.Rates(s.T2019)
		resub = stats.Quantile(r19.AllTasksPerHour, 0.5)/stats.Quantile(r19.NewTasksPerHour, 0.5) - 1
	}
	b.ReportMetric(resub, "resubmit-ratio-2019")
}

func BenchmarkFigure10(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var median float64
	for i := 0; i < b.N; i++ {
		all, _ := analysis.SchedulingDelays(s.T2019)
		median = stats.Quantile(all, 0.5)
	}
	b.ReportMetric(median, "median-delay-s")
}

func BenchmarkFigure11(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var beb95 float64
	for i := 0; i < b.N; i++ {
		tpj := analysis.TasksPerJob(s.T2019)
		beb95 = stats.Quantile(tpj[trace.TierBestEffortBatch], 0.95)
	}
	b.ReportMetric(beb95, "beb-p95-tasks")
}

func BenchmarkTable2(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var col analysis.Table2Column
	for i := 0; i < b.N; i++ {
		ints := analysis.JobUsageIntegrals(s.T2019)
		col = analysis.ComputeTable2Column(ints.CPUHours)
	}
	b.ReportMetric(col.Top1Share*100, "top1%-load-share")
	b.ReportMetric(col.C2, "C2")
}

func BenchmarkFigure12(b *testing.B) {
	s := suite(b)
	ints := analysis.JobUsageIntegrals(s.T2019)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.UsageCCDF(ints.CPUHours)
		analysis.UsageCCDF(ints.MemHours)
	}
}

func BenchmarkFigure13(b *testing.B) {
	s := suite(b)
	ints := analysis.JobUsageIntegrals(s.T2019)
	b.ResetTimer()
	var r float64
	for i := 0; i < b.N; i++ {
		_, r = analysis.CPUMemCorrelation(ints, 100)
	}
	b.ReportMetric(r, "pearson-r")
}

func BenchmarkFigure14(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var gap float64
	for i := 0; i < b.N; i++ {
		slack := analysis.SlackSamples(s.T2019)
		gap = stats.Quantile(slack[trace.ScalingNone], 0.5) -
			stats.Quantile(slack[trace.ScalingFull], 0.5)
	}
	b.ReportMetric(gap, "autopilot-slack-gap-pp")
}

// BenchmarkSuiteParallelism measures the multi-cell suite at parallelism
// 1 versus 8: the engine's whole reason to exist is the wall-clock gap
// between these two sub-benchmarks (the output is identical). The gap
// scales with available cores — on a single-core machine the two are
// equal, since 9 deterministic single-threaded simulations cannot go
// faster than the hardware.
func BenchmarkSuiteParallelism(b *testing.B) {
	b.Logf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	sc := experiments.Scale{
		Name: "bench-par", Machines2011: 80, Machines2019: 60,
		Horizon: 4 * sim.Hour, Warmup: sim.Hour, Seed: 7,
	}
	for _, par := range []int{1, 8} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc.Parallelism = par
				experiments.RunSuite(sc)
			}
		})
	}
}

// benchScaleLarge is the placement-heavy nine-cell scale shared by the
// retained and streaming macro benchmarks (tracked in BENCH_PR3.json /
// BENCH_PR4.json).
func benchScaleLarge() experiments.Scale {
	return experiments.Scale{
		Name: "large-bench", Machines2011: 240, Machines2019: 200,
		Horizon: 6 * sim.Hour, Warmup: 2 * sim.Hour, Seed: 11,
	}
}

// BenchmarkLargeCellSuite runs the nine-cell suite at a placement-heavy
// scale (larger cells, more residents per machine) with full parallelism,
// retaining every trace: it is the macro benchmark for the scheduler
// placement fast path, tracked in BENCH_PR3.json, and the memory
// baseline the streaming twin below undercuts. Peak heap is sampled by
// the same probe the CI memory-ceiling gate uses.
func BenchmarkLargeCellSuite(b *testing.B) {
	sc := benchScaleLarge()
	b.ResetTimer()
	peak := metrics.PeakHeapDuring(func() {
		for i := 0; i < b.N; i++ {
			experiments.RunSuite(sc)
		}
	})
	b.ReportMetric(float64(peak)/1e6, "peak-heap-MB")
}

// BenchmarkStreamingSuite is BenchmarkLargeCellSuite with NoMemTrace:
// the same nine cells, but every row folds through a streaming reducer
// and is dropped, and the full report renders from reducer state. The
// interesting metric is peak-heap-MB next to the retained twin's — trace
// retention, not simulation state, dominates the retained peak.
func BenchmarkStreamingSuite(b *testing.B) {
	sc := benchScaleLarge()
	b.ResetTimer()
	peak := metrics.PeakHeapDuring(func() {
		for i := 0; i < b.N; i++ {
			suite, err := experiments.RunSuiteStreaming(sc, experiments.StreamingOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if err := suite.WriteReport(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(peak)/1e6, "peak-heap-MB")
}

// BenchmarkManyCellSuite is the warehouse-scale smoke benchmark: it
// simulates a fleet of 54 small 2019 cells (profiles sampled round-robin
// from the paper's a–h set) in one engine run with NoMemTrace and one
// streaming reducer per cell — the shape a many-cell fleet study takes.
// Peak heap must stay under the same 1536 MB ceiling the CI streaming
// guard enforces: per-cell memory is bounded reducer state, so the fleet
// footprint grows with cells, not with rows. The run takes tens of
// seconds, so it is gated behind MANY_CELL_BENCH=1 (the CI many-cell
// smoke job sets it).
func BenchmarkManyCellSuite(b *testing.B) {
	if os.Getenv("MANY_CELL_BENCH") != "1" {
		b.Skip("set MANY_CELL_BENCH=1 to run the many-cell suite benchmark")
	}
	const (
		cells       = 54
		machines    = 60
		heapCeiling = 1536.0 // MB, matching the CI memory-ceiling gate
	)
	names := workload.Cells2019()
	b.ResetTimer()
	var rows int64
	peak := metrics.PeakHeapDuring(func() {
		for i := 0; i < b.N; i++ {
			specs := make([]engine.Spec, cells)
			for c := range specs {
				p := workload.Profile2019(names[c%len(names)], machines)
				specs[c] = engine.NewSpec(c, p, core.Options{
					Horizon:    2 * sim.Hour,
					NoMemTrace: true,
				}, 29)
			}
			reducers := make([]*streaming.CellReducer, cells)
			engine.AttachSinks(specs, func(c int) trace.Sink {
				reducers[c] = experiments.NewCellReducerFor(specs[c])
				return reducers[c]
			})
			for _, res := range engine.Run(specs, engine.Options{}) {
				rows += res.Rows.Total()
			}
		}
	})
	if rows == 0 {
		b.Fatal("many-cell run emitted no rows")
	}
	peakMB := float64(peak) / 1e6
	b.ReportMetric(peakMB, "peak-heap-MB")
	b.ReportMetric(float64(rows)/float64(b.N), "rows/op")
	if peakMB > heapCeiling {
		b.Fatalf("peak heap %.0f MB exceeds the %d MB ceiling", peakMB, int(heapCeiling))
	}
}

// BenchmarkFleetRollup is the warehouse-scale federation smoke: a
// 128-cell fleet — profiles sampled around the 2019 medians per cell —
// streamed through engine.RunStream with one reducer per cell and the
// usage-noise fast path on, rolled up online into cross-cell t-digest
// percentiles. Peak heap must stay under the CI streaming guard's
// 1536 MB ceiling: released reducers and O(Parallelism) in-flight cells
// keep the footprint flat in fleet size. Minutes-long, so gated behind
// FLEET_SMOKE=1 (the CI fleet-smoke job sets it).
func BenchmarkFleetRollup(b *testing.B) {
	if os.Getenv("FLEET_SMOKE") != "1" {
		b.Skip("set FLEET_SMOKE=1 to run the fleet rollup benchmark")
	}
	const heapCeiling = 1536.0 // MB, matching the CI memory-ceiling gate
	cfg := fleet.Config{
		Cells:          128,
		MedianMachines: 60,
		Horizon:        2 * sim.Hour,
		Seed:           29,
	}
	cfg.UsageNoiseFast = true
	b.ResetTimer()
	var machines int
	peak := metrics.PeakHeapDuring(func() {
		for i := 0; i < b.N; i++ {
			rep := fleet.Run(cfg)
			machines = rep.TotalMachines
			if len(rep.Rollup) == 0 || rep.Rollup[0].Name != "cpu_util" || rep.Rollup[0].P50 <= 0 {
				b.Fatalf("fleet rollup malformed: %+v", rep.Rollup)
			}
		}
	})
	peakMB := float64(peak) / 1e6
	b.ReportMetric(peakMB, "peak-heap-MB")
	b.ReportMetric(float64(machines), "machines")
	if peakMB > heapCeiling {
		b.Fatalf("peak heap %.0f MB exceeds the %d MB ceiling", peakMB, int(heapCeiling))
	}
}

// BenchmarkSimulateCell measures end-to-end cell simulation throughput.
func BenchmarkSimulateCell(b *testing.B) {
	p := workload.Profile2019("a", 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(p, core.Options{Horizon: 2 * sim.Hour, Seed: uint64(i)})
	}
}

// BenchmarkAblationPlacement compares placement policies by the spread of
// machine CPU utilization (Figure 6's 2011→2019 tightening is driven by
// this choice).
func BenchmarkAblationPlacement(b *testing.B) {
	for _, policy := range []struct {
		name  string
		value scheduler.PlacementPolicy
	}{
		{"random-fit", scheduler.RandomFit},
		{"best-fit", scheduler.BestFit},
		{"least-allocated", scheduler.LeastAllocated},
	} {
		b.Run(policy.name, func(b *testing.B) {
			var spread float64
			for i := 0; i < b.N; i++ {
				p := workload.Profile2019("a", 60)
				p.Policy = policy.value
				res := core.Run(p, core.Options{Horizon: 4 * sim.Hour, Seed: 3})
				cpu, _ := analysis.MachineUtilization(res.Trace, 3*sim.Hour)
				s := stats.Summarize(cpu)
				spread = s.Variance
			}
			b.ReportMetric(spread*1000, "util-variance-x1000")
		})
	}
}

// BenchmarkAblationOvercommit sweeps the CPU allocation ceiling and
// reports the OOM/preemption cost of pushing multiplexing harder
// (research direction 2).
func BenchmarkAblationOvercommit(b *testing.B) {
	for _, factor := range []struct {
		name string
		cpu  float64
		mem  float64
	}{{"low-1.2", 1.2, 1.1}, {"paper-1.6", 1.6, 1.3}, {"high-2.0", 2.0, 1.6}} {
		b.Run(factor.name, func(b *testing.B) {
			var oom, preempt float64
			for i := 0; i < b.N; i++ {
				p := workload.Profile2019("b", 60)
				p.Overcommit.CPUFactor = factor.cpu
				p.Overcommit.MemFactor = factor.mem
				res := core.Run(p, core.Options{Horizon: 4 * sim.Hour, Seed: 3})
				oom = float64(res.Sched.OOMEvictions)
				preempt = float64(res.Sched.Preemptions)
			}
			b.ReportMetric(oom, "oom-evictions")
			b.ReportMetric(preempt, "preemptions")
		})
	}
}

// BenchmarkAblationBatchQueue compares the best-effort batch tier's delay
// tail with and without the batch-queue front-end.
func BenchmarkAblationBatchQueue(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"queue-on", true}, {"queue-off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				p := workload.Profile2019("b", 60)
				p.BatchQueue = mode.on
				res := core.Run(p, core.Options{Horizon: 4 * sim.Hour, Seed: 3})
				_, byTier := analysis.SchedulingDelays([]*trace.MemTrace{res.Trace})
				p99 = stats.Quantile(byTier[trace.TierBestEffortBatch], 0.99)
			}
			b.ReportMetric(p99, "beb-delay-p99-s")
		})
	}
}

// BenchmarkAblationHogIsolation quantifies §7.3: the mice's delay when the
// top-1% hogs share their priority versus being segregated below them.
func BenchmarkAblationHogIsolation(b *testing.B) {
	for _, mode := range []struct {
		name        string
		hogPriority int
	}{{"hogs-mixed", 110}, {"hogs-isolated", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			var p90 float64
			for i := 0; i < b.N; i++ {
				p90 = miceDelayP90(mode.hogPriority)
			}
			b.ReportMetric(p90, "mice-delay-p90-s")
		})
	}
}

// miceDelayP90 builds a hand-crafted hogs+mice workload on a small cell —
// five 400-task hogs plus 400 single-task mice — and returns the mice's
// 90th-percentile scheduling delay in seconds.
func miceDelayP90(hogPriority int) float64 {
	cell := cluster.NewCell("ablation")
	for i := 0; i < 30; i++ {
		cell.AddMachine(trace.Resources{CPU: 1, Mem: 1}, "P0")
	}
	k := sim.NewKernel()
	cfg := scheduler.DefaultConfig()
	cfg.Batch = nil
	cfg.ServiceTime = dist.LogNormalFromMedian(0.25, 0.6)
	sched := scheduler.New(cfg, cell, k, trace.NopSink{}, rng.New(7))
	src := rng.New(31)

	id := trace.CollectionID(1)
	for i := 0; i < 5; i++ {
		j := scheduler.NewJob(id)
		id++
		j.Type = trace.CollectionJob
		j.Priority = hogPriority
		j.Tier = trace.TierFromPriority2019(hogPriority)
		for t := 0; t < 400; t++ {
			j.AddTask(&scheduler.Task{
				Request:  trace.Resources{CPU: 0.05, Mem: 0.04},
				Duration: 2 * sim.Hour, MeanCPU: 0.04, MeanMem: 0.03, PeakFact: 1.2,
			})
		}
		at := sim.Time(i) * 15 * sim.Minute
		k.At(at, func(sim.Time) { sched.Submit(j) })
	}
	var mice []*scheduler.Job
	for i := 0; i < 400; i++ {
		j := scheduler.NewJob(id)
		id++
		j.Type = trace.CollectionJob
		j.Priority = 110
		j.Tier = trace.TierBestEffortBatch
		j.AddTask(&scheduler.Task{
			Request:  trace.Resources{CPU: 0.02, Mem: 0.02},
			Duration: 3 * sim.Minute, MeanCPU: 0.01, MeanMem: 0.01, PeakFact: 1.2,
		})
		mice = append(mice, j)
		at := sim.Time(src.Intn(int(3 * sim.Hour)))
		k.At(at, func(sim.Time) { sched.Submit(j) })
	}
	k.RunUntil(5 * sim.Hour)

	var delays []float64
	for _, j := range mice {
		if j.FirstRun >= 0 {
			delays = append(delays, (j.FirstRun - j.ReadyTime).Seconds())
		}
	}
	return stats.Quantile(delays, 0.9)
}

// BenchmarkSweepSmall is the parameter-sweep macro benchmark gated in
// CI: a 2-seed × 2-variant sweep of the nine-cell suite at a small
// scale, streaming reducers only (NoMemTrace), report rendered to
// io.Discard. It exercises grid expansion, common-random-numbers
// seeding, per-spec reducer attachment and cross-seed aggregation — the
// whole internal/sweep path.
func BenchmarkSweepSmall(b *testing.B) {
	def := sweep.Def{
		Scale: experiments.Scale{
			Name: "sweep-bench", Machines2011: 60, Machines2019: 50,
			Horizon: 3 * sim.Hour, Warmup: sim.Hour, Seed: 7,
		},
		Seeds:    2,
		Variants: []sweep.Variant{sweep.Baseline(), sweep.ArrivalScale(1.5)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(def)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteReport(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
