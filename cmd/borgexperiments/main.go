// Command borgexperiments regenerates every table and figure of "Borg:
// the Next Generation" (EuroSys '20) from freshly simulated traces and
// prints paper-vs-measured comparisons.
//
// Simulation speed comes from two layers: -parallel N runs cells
// concurrently on the engine's worker pool, and within each cell the
// scheduler's allocation-free placement fast path (equivalence-class
// score caching over incremental machine aggregates — see the package
// docs) keeps per-placement cost constant as cells grow. Neither layer
// affects the output of a given build: for the same binary, the same
// seed yields the same report at every -parallel setting.
//
// Memory has a third switch: -stream runs the whole suite with
// core.Options.NoMemTrace — every trace row is folded online by one
// streaming reducer per cell (internal/analysis/streaming) and then
// dropped, so resident memory is bounded by per-job reducer state
// instead of growing with the horizon. The report is byte-identical to
// the retained-trace path for the same scale and seed; CI enforces that
// with a differential test and a peak-heap ceiling. -export DIR
// additionally writes each cell's trace as sharded CSV (one WriteDir-
// layout subdirectory per cell) while simulating, through the buffered
// sink pipeline; it implies -stream.
//
// Usage:
//
//	borgexperiments [-scale small|default|large] [-seed N] [-parallel N]
//	                [-policy NAME] [-arrival SPEC] [-stream] [-export DIR]
//	                [-record-workload DIR] [-replay-workload DIR]
//	                [-progress] [-o report.txt]
//	                [-http :6060] [-metrics FILE] [-timeline FILE]
//	                [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -progress prints live cells-done / in-flight / ETA lines to stderr;
// peak HeapAlloc over the run is always reported, so the streaming
// path's memory claims are observable outside benchmarks.
//
// -http serves the live observability endpoint while the run executes
// (progress/ETA at /, Prometheus at /metrics, pprof under /debug/);
// -metrics writes the final metrics snapshot (sched_*, sim_*, usage_*,
// trace_* series; format by extension) and -timeline the wall-clock
// run timeline as Chrome trace_event JSON. Instruments observe only:
// none of the three changes a report or trace byte.
//
// -policy overrides every cell's placement policy (see the scheduler
// policy zoo: random-fit, best-fit, least-allocated, worst-fit, oversub,
// one-shot); -arrival overrides every cell's arrival process (poisson,
// gamma, weibull, cohorts — see workload.ParseArrival for knobs); by
// default each cell keeps its era's calibrated settings.
//
// -record-workload DIR captures each cell's generated arrival/job
// stream into one versioned recording file per cell under DIR;
// -replay-workload DIR replays such a directory instead of generating
// workloads, so the identical job stream can be rerun under any -policy
// or -parallel setting (the replayed trace is byte-identical across
// both).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgexperiments: ")
	scaleName := flag.String("scale", "default", "simulation scale: small, default or large")
	common := cliflags.Register(flag.CommandLine, "root random seed")
	stream := flag.Bool("stream", false, "run with NoMemTrace: fold rows through streaming reducers instead of retaining traces (same report bytes)")
	export := flag.String("export", "", "write per-cell CSV trace shards to this directory while simulating (implies -stream)")
	recordDir := flag.String("record-workload", "", "record each cell's generated workload into this directory (one versioned file per cell)")
	replayDir := flag.String("replay-workload", "", "replay the recorded workloads in this directory instead of generating (see -record-workload)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Parse()

	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	prof, err := common.StartProfiling()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			log.Fatal(err)
		}
	}()
	obs, err := common.StartObservability(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := obs.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.SmallScale()
	case "default":
		sc = experiments.DefaultScale()
	case "large":
		sc = experiments.LargeScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	sc.Seed = *common.Seed
	sc.Parallelism = *common.Parallel
	sc.RunKnobs = obs.Knobs(common.Knobs())
	if *export != "" {
		*stream = true
	}
	sc.RecordWorkload = *recordDir != ""
	if *replayDir != "" {
		recs, err := experiments.LoadWorkloads(*replayDir, sc)
		if err != nil {
			log.Fatal(err)
		}
		sc.Replay = recs
		log.Printf("replaying %d recorded workloads from %s", len(recs), *replayDir)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintf(w, "Borg: the Next Generation — reproduction report\n")
	fmt.Fprintf(w, "scale=%s machines2011=%d machines2019=%dx8 horizon=%v seed=%d\n\n",
		sc.Name, sc.Machines2011, sc.Machines2019, sc.Horizon, sc.Seed)
	if *common.Parallel != 1 {
		effective := sc.Parallelism
		if effective <= 0 {
			effective = runtime.GOMAXPROCS(0)
		}
		mode := "retained traces"
		if *stream {
			mode = "streaming reducers (NoMemTrace)"
		}
		log.Printf("simulating 9 cells, parallelism=%d, %s", effective, mode)
	}

	var report func(io.Writer) error
	var stats []core.CellResult
	rs := obs.MeasureRun(func() {
		if *stream {
			suite, err := experiments.RunSuiteStreaming(sc, experiments.StreamingOptions{ExportDir: *export})
			if err != nil {
				log.Fatal(err)
			}
			if *export != "" {
				log.Printf("wrote 9 CSV shards under %s", *export)
			}
			report = suite.WriteReport
			stats = suite.Stats
		} else {
			suite := experiments.RunSuite(sc)
			report = suite.WriteReport
			stats = suite.Stats
		}
	})
	if *recordDir != "" {
		if err := experiments.SaveWorkloads(*recordDir, stats); err != nil {
			log.Fatal(err)
		}
		log.Printf("recorded %d cell workloads under %s", len(stats), *recordDir)
	}
	fmt.Fprintf(w, "simulated 9 cells in %s\n\n", rs)
	if err := report(w); err != nil {
		log.Fatal(err)
	}
}
