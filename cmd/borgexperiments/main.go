// Command borgexperiments regenerates every table and figure of "Borg:
// the Next Generation" (EuroSys '20) from freshly simulated traces and
// prints paper-vs-measured comparisons.
//
// Simulation speed comes from two layers: -parallel N runs cells
// concurrently on the engine's worker pool, and within each cell the
// scheduler's allocation-free placement fast path (equivalence-class
// score caching over incremental machine aggregates — see the package
// docs) keeps per-placement cost constant as cells grow. Neither layer
// affects the output of a given build: for the same binary, the same
// seed yields the same report at every -parallel setting.
//
// Usage:
//
//	borgexperiments [-scale small|default|large] [-seed N] [-parallel N] [-o report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgexperiments: ")
	scaleName := flag.String("scale", "default", "simulation scale: small, default or large")
	seed := flag.Uint64("seed", 1, "root random seed")
	parallel := flag.Int("parallel", 0, "cells simulated concurrently (0 = all CPUs); does not change the output")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.SmallScale()
	case "default":
		sc = experiments.DefaultScale()
	case "large":
		sc = experiments.LargeScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	sc.Seed = *seed
	sc.Parallelism = *parallel

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	fmt.Fprintf(w, "Borg: the Next Generation — reproduction report\n")
	fmt.Fprintf(w, "scale=%s machines2011=%d machines2019=%dx8 horizon=%v seed=%d\n\n",
		sc.Name, sc.Machines2011, sc.Machines2019, sc.Horizon, sc.Seed)
	if *parallel != 1 {
		effective := sc.Parallelism
		if effective <= 0 {
			effective = runtime.GOMAXPROCS(0)
		}
		log.Printf("simulating 9 cells, parallelism=%d", effective)
	}
	suite := experiments.RunSuite(sc)
	fmt.Fprintf(w, "simulated 9 cells in %v\n\n", time.Since(start).Round(time.Millisecond))
	if err := suite.WriteReport(w); err != nil {
		log.Fatal(err)
	}
}
