// Command borgexperiments regenerates every table and figure of "Borg:
// the Next Generation" (EuroSys '20) from freshly simulated traces and
// prints paper-vs-measured comparisons.
//
// Simulation speed comes from two layers: -parallel N runs cells
// concurrently on the engine's worker pool, and within each cell the
// scheduler's allocation-free placement fast path (equivalence-class
// score caching over incremental machine aggregates — see the package
// docs) keeps per-placement cost constant as cells grow. Neither layer
// affects the output of a given build: for the same binary, the same
// seed yields the same report at every -parallel setting.
//
// Memory has a third switch: -stream runs the whole suite with
// core.Options.NoMemTrace — every trace row is folded online by one
// streaming reducer per cell (internal/analysis/streaming) and then
// dropped, so resident memory is bounded by per-job reducer state
// instead of growing with the horizon. The report is byte-identical to
// the retained-trace path for the same scale and seed; CI enforces that
// with a differential test and a peak-heap ceiling. -export DIR
// additionally writes each cell's trace as sharded CSV (one WriteDir-
// layout subdirectory per cell) while simulating, through the buffered
// sink pipeline; it implies -stream.
//
// Usage:
//
//	borgexperiments [-scale small|default|large] [-seed N] [-parallel N]
//	                [-policy NAME] [-stream] [-export DIR] [-progress]
//	                [-o report.txt]
//	                [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -progress prints live cells-done / in-flight / ETA lines to stderr;
// peak HeapAlloc over the run is always reported, so the streaming
// path's memory claims are observable outside benchmarks.
//
// -policy overrides every cell's placement policy (see the scheduler
// policy zoo: random-fit, best-fit, least-allocated, worst-fit, oversub,
// one-shot); by default each cell keeps its era's calibrated policy.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/scheduler"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgexperiments: ")
	scaleName := flag.String("scale", "default", "simulation scale: small, default or large")
	seed := flag.Uint64("seed", 1, "root random seed")
	parallel := flag.Int("parallel", 0, "cells simulated concurrently (0 = all CPUs); does not change the output")
	policy := flag.String("policy", "", "override every cell's placement policy ("+
		strings.Join(scheduler.PolicyNames(), ", ")+"); empty keeps era defaults")
	stream := flag.Bool("stream", false, "run with NoMemTrace: fold rows through streaming reducers instead of retaining traces (same report bytes)")
	progressFlag := flag.Bool("progress", false, "print live progress (cells done / in flight / ETA) to stderr")
	export := flag.String("export", "", "write per-cell CSV trace shards to this directory while simulating (implies -stream)")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	prof, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			log.Fatal(err)
		}
	}()

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.SmallScale()
	case "default":
		sc = experiments.DefaultScale()
	case "large":
		sc = experiments.LargeScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	sc.Seed = *seed
	sc.Parallelism = *parallel
	if *policy != "" {
		if _, err := scheduler.ParsePolicy(*policy); err != nil {
			log.Fatal(err)
		}
		sc.Policy = *policy
	}
	if *export != "" {
		*stream = true
	}
	if *progressFlag {
		sc.Progress = os.Stderr
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	fmt.Fprintf(w, "Borg: the Next Generation — reproduction report\n")
	fmt.Fprintf(w, "scale=%s machines2011=%d machines2019=%dx8 horizon=%v seed=%d\n\n",
		sc.Name, sc.Machines2011, sc.Machines2019, sc.Horizon, sc.Seed)
	if *parallel != 1 {
		effective := sc.Parallelism
		if effective <= 0 {
			effective = runtime.GOMAXPROCS(0)
		}
		mode := "retained traces"
		if *stream {
			mode = "streaming reducers (NoMemTrace)"
		}
		log.Printf("simulating 9 cells, parallelism=%d, %s", effective, mode)
	}

	var report func(io.Writer) error
	peak := experiments.PeakHeapDuring(func() {
		if *stream {
			suite, err := experiments.RunSuiteStreaming(sc, experiments.StreamingOptions{ExportDir: *export})
			if err != nil {
				log.Fatal(err)
			}
			if *export != "" {
				log.Printf("wrote 9 CSV shards under %s", *export)
			}
			report = suite.WriteReport
		} else {
			report = experiments.RunSuite(sc).WriteReport
		}
	})
	fmt.Fprintf(w, "simulated 9 cells in %v (peak heap %.0f MB)\n\n",
		time.Since(start).Round(time.Millisecond), float64(peak)/(1<<20))
	if err := report(w); err != nil {
		log.Fatal(err)
	}
}
