// Command borgexperiments regenerates every table and figure of "Borg:
// the Next Generation" (EuroSys '20) from freshly simulated traces and
// prints paper-vs-measured comparisons.
//
// Usage:
//
//	borgexperiments [-scale small|default|large] [-seed N] [-o report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgexperiments: ")
	scaleName := flag.String("scale", "default", "simulation scale: small, default or large")
	seed := flag.Uint64("seed", 1, "root random seed")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.SmallScale()
	case "default":
		sc = experiments.DefaultScale()
	case "large":
		sc = experiments.LargeScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	sc.Seed = *seed

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	fmt.Fprintf(w, "Borg: the Next Generation — reproduction report\n")
	fmt.Fprintf(w, "scale=%s machines2011=%d machines2019=%dx8 horizon=%v seed=%d\n\n",
		sc.Name, sc.Machines2011, sc.Machines2019, sc.Horizon, sc.Seed)
	suite := experiments.RunSuite(sc)
	fmt.Fprintf(w, "simulated 9 cells in %v\n\n", time.Since(start).Round(time.Millisecond))
	if err := suite.WriteReport(w); err != nil {
		log.Fatal(err)
	}
}
