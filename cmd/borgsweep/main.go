// Command borgsweep runs seed × profile parameter sweeps over the
// nine-cell suite and reports cross-seed statistics per variant: mean,
// sample stddev, min/max and a 95% Student-t confidence interval for
// every sweep metric, plus per-metric CSV exports for plotting.
//
// Every grid point simulates with NoMemTrace: each cell's rows fold
// through a streaming reducer and are dropped, so even wide sweeps cost
// reducer state rather than retained traces. The grid is deterministic —
// same root seed and definition produce byte-identical reports at any
// -parallel setting — and grid seeds depend only on (seed, replicate,
// cell), so every variant faces the same simulated worlds (common random
// numbers; see internal/sweep). That seeding discipline is what the
// paired-difference section at the end of the report exploits: each
// non-baseline variant's metrics are differenced against the baseline
// replicate by replicate, and the paired Student-t 95% interval on the
// difference is printed next to the Welch unpaired interval it beats
// (also exported as paired_diffs.csv with -csv).
//
// Usage:
//
//	borgsweep [-scale small|default|large] [-seed N] [-seeds N]
//	          [-variants SPEC] [-parallel N] [-policy NAME]
//	          [-arrival SPEC] [-progress] [-o report.txt] [-csv DIR]
//	          [-http :6060] [-metrics FILE] [-timeline FILE]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -progress prints live grid-points-done / in-flight / ETA lines to
// stderr; peak HeapAlloc over the sweep is always reported. -policy and
// -arrival set sweep-wide profile defaults that individual variants may
// still override. -http/-metrics/-timeline are the shared observability
// set (see internal/cliflags): live Prometheus + pprof endpoint during
// the sweep, final snapshot export, Chrome trace_event run timeline —
// all observe-only, never changing report bytes.
//
// where SPEC is semicolon-separated clauses: "baseline", a numeric
// family "family:v1,v2,..." (arrival, machines, overcommit,
// allocceiling, prodshift), the placement-policy family
// "policy:name1,name2,..." (random-fit, best-fit, least-allocated,
// worst-fit, oversub, one-shot — the scheduler policy zoo), arrival
// processes "arrival:gamma:cv=2.5,cohorts:k=40" (poisson, gamma,
// weibull, cohorts — numeric values still mean rate multipliers), or a
// named composite "name:knob=value,..." where knob is any family,
// policy, or an arrival-process spec (multi-knob arrival specs join
// their knobs with + since , separates composite knobs, e.g.
// "bursty:arrival=cohorts:k=40+skew=1.5,policy=best-fit").
// Examples:
//
//	borgsweep -scale small -seeds 5 -variants arrival:0.5,1.0,2.0
//	borgsweep -seeds 3 -variants "overcommit:0.8,1.25;allocceiling:0.5;baseline"
//	borgsweep -seeds 5 -variants "baseline;policy:best-fit,worst-fit"
//	borgsweep -seeds 5 -variants "baseline;arrival:gamma:cv=2.5,weibull:cv=3"
//	borgsweep -seeds 5 -variants "baseline;zoo-hot:policy=oversub,arrival=1.5"
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgsweep: ")
	scaleName := flag.String("scale", "small", "simulation scale: small, default or large")
	common := cliflags.Register(flag.CommandLine, "sweep root seed")
	seeds := flag.Int("seeds", 5, "number of root-seed replicates per variant")
	variantSpec := flag.String("variants", "baseline",
		"variant spec: semicolon-separated clauses — numeric families (arrival, machines, overcommit, allocceiling, prodshift), "+
			"placement policies (policy:best-fit,...; see scheduler zoo), arrival processes (arrival:gamma:cv=2.5,...), "+
			"named composites (name:policy=oversub,arrival=1.5) or baseline")
	out := flag.String("o", "", "write the sweep report to this file instead of stdout")
	csvDir := flag.String("csv", "", "export per-metric and summary CSVs to this directory")
	flag.Parse()

	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	prof, err := common.StartProfiling()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			log.Fatal(err)
		}
	}()
	obs, err := common.StartObservability(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := obs.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.SmallScale()
	case "default":
		sc = experiments.DefaultScale()
	case "large":
		sc = experiments.LargeScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	sc.Seed = *common.Seed
	sc.RunKnobs = obs.Knobs(common.Knobs())

	variants, err := sweep.ParseVariants(*variantSpec)
	if err != nil {
		log.Fatal(err)
	}
	def := sweep.Def{Scale: sc, Seeds: *seeds, Variants: variants, Parallelism: *common.Parallel}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	effective := *common.Parallel
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	log.Printf("sweeping %d seeds × %d variants × 9 cells at scale %q (%d simulations, parallelism %d, streaming reducers)",
		*seeds, len(variants), sc.Name, *seeds*len(variants)*9, effective)

	var res *sweep.Result
	rs := obs.MeasureRun(func() {
		res, err = sweep.Run(def)
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("simulated %d cells in %s", *seeds*len(variants)*res.Cells, rs)

	fmt.Fprintf(w, "Borg: the Next Generation — parameter-sweep report\n\n")
	if err := res.WriteReport(w); err != nil {
		log.Fatal(err)
	}
	if *csvDir != "" {
		if err := res.WriteCSVs(*csvDir); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d metric CSVs + summary.csv + paired_diffs.csv under %s", len(res.Metrics), *csvDir)
	}
}
