// Command benchgate is the CI benchmark-regression gate: it parses `go
// test -bench` output (typically -count 3 for medians), compares each
// benchmark's median ns/op against the checked-in baseline JSON
// (BENCH_PR3.json's "after" numbers), and fails — exit status 1 — when a
// benchmark regresses beyond the tolerance factor or allocates more than
// its baseline allows. Whatever it measured is written as a fresh JSON
// artifact (BENCH_PR4.json in CI) so every run extends the perf
// trajectory the baselines started.
//
// Benchmarks without a baseline entry are recorded but not gated;
// baseline entries missing from the bench output fail the gate (a
// silently deleted benchmark must not pass).
//
// Usage:
//
//	go test -run '^$' -bench 'Placement|Preemption' -benchtime 10000x -count 3 ./internal/scheduler | tee bench.txt
//	go run ./cmd/benchgate -bench bench.txt -baseline BENCH_PR3.json -tolerance 1.5 -o BENCH_PR4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the checked-in BENCH_PR*.json layout.
type baselineFile struct {
	Benchmarks map[string]struct {
		After map[string]float64 `json:"after"`
	} `json:"benchmarks"`
}

// run is one parsed benchmark invocation.
type run struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasAllocs   bool
	metrics     map[string]float64
}

// result is one benchmark's gate outcome, serialized into the artifact.
type result struct {
	Name            string             `json:"name"`
	Runs            int                `json:"runs"`
	NsPerOp         float64            `json:"ns_per_op_median"`
	BytesPerOp      float64            `json:"bytes_per_op"`
	AllocsPerOp     float64            `json:"allocs_per_op"`
	Metrics         map[string]float64 `json:"metrics,omitempty"`
	BaselineNsPerOp float64            `json:"baseline_ns_per_op,omitempty"`
	Ratio           float64            `json:"ratio_vs_baseline,omitempty"`
	Status          string             `json:"status"` // ok | regressed | unbaselined
}

type artifact struct {
	Source    string   `json:"source"`
	Baseline  string   `json:"baseline"`
	Tolerance float64  `json:"tolerance"`
	Results   []result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	benchPath := flag.String("bench", "", "file holding `go test -bench` output")
	basePath := flag.String("baseline", "BENCH_PR3.json", "baseline JSON with per-benchmark \"after\" numbers")
	tolerance := flag.Float64("tolerance", 1.5, "fail when median ns/op exceeds tolerance × baseline")
	outPath := flag.String("o", "", "write the measured numbers as a JSON artifact")
	flag.Parse()
	if *benchPath == "" {
		log.Fatal("-bench is required")
	}

	runs, order, err := parseBench(*benchPath)
	if err != nil {
		log.Fatal(err)
	}
	if len(runs) == 0 {
		log.Fatalf("no benchmark lines found in %s", *benchPath)
	}

	baseRaw, err := os.ReadFile(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	var base baselineFile
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		log.Fatalf("parse %s: %v", *basePath, err)
	}

	art := artifact{Source: *benchPath, Baseline: *basePath, Tolerance: *tolerance}
	failed := false
	for _, name := range order {
		rs := runs[name]
		res := result{
			Name:        name,
			Runs:        len(rs),
			NsPerOp:     medianOf(rs, func(r run) float64 { return r.nsPerOp }),
			BytesPerOp:  medianOf(rs, func(r run) float64 { return r.bytesPerOp }),
			AllocsPerOp: medianOf(rs, func(r run) float64 { return r.allocsPerOp }),
			Status:      "unbaselined",
		}
		for key := range rs[0].metrics {
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			k := key
			res.Metrics[k] = medianOf(rs, func(r run) float64 { return r.metrics[k] })
		}
		if b, ok := base.Benchmarks[name]; ok {
			baseNs := b.After["ns_per_op"]
			if baseNs == 0 {
				baseNs = b.After["s_per_op"] * 1e9
			}
			if baseNs > 0 {
				res.BaselineNsPerOp = baseNs
				res.Ratio = res.NsPerOp / baseNs
				res.Status = "ok"
				if res.Ratio > *tolerance {
					res.Status = "regressed"
					failed = true
					log.Printf("FAIL %s: median %.0f ns/op is %.2f× baseline %.0f ns/op (tolerance %.2f×)",
						name, res.NsPerOp, res.Ratio, baseNs, *tolerance)
				} else {
					log.Printf("ok   %s: median %.0f ns/op, %.2f× baseline", name, res.NsPerOp, res.Ratio)
				}
			}
			if baseAllocs, ok := b.After["allocs_per_op"]; ok && rs[0].hasAllocs {
				if res.AllocsPerOp > baseAllocs {
					res.Status = "regressed"
					failed = true
					log.Printf("FAIL %s: %.0f allocs/op exceeds baseline %.0f", name, res.AllocsPerOp, baseAllocs)
				}
			}
		} else {
			log.Printf("new  %s: median %.0f ns/op (no baseline, recorded only)", name, res.NsPerOp)
		}
		art.Results = append(art.Results, res)
	}

	// A gateable baseline that produced no measurement is a silent hole
	// in the gate — fail loudly instead. Baseline entries without an
	// ns_per_op/s_per_op number (whole-run notes) are documentation, not
	// gates.
	for name, b := range base.Benchmarks {
		if b.After["ns_per_op"] == 0 && b.After["s_per_op"] == 0 {
			continue
		}
		if _, ok := runs[name]; !ok {
			failed = true
			log.Printf("FAIL %s: present in %s but missing from bench output", name, *basePath)
		}
	}

	if *outPath != "" {
		enc, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(enc, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *outPath)
	}
	if failed {
		os.Exit(1)
	}
}

// parseBench extracts benchmark runs (possibly repeated via -count) from
// go test output, preserving first-seen order.
func parseBench(path string) (map[string][]run, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	runs := make(map[string][]run)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		r, ok := parseFields(strings.Fields(m[3]))
		if !ok {
			continue
		}
		if _, seen := runs[name]; !seen {
			order = append(order, name)
		}
		runs[name] = append(runs[name], r)
	}
	return runs, order, sc.Err()
}

// parseFields reads the value/unit pairs after the iteration count.
func parseFields(fields []string) (run, bool) {
	r := run{metrics: make(map[string]float64)}
	ok := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return r, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.nsPerOp, ok = v, true
		case "B/op":
			r.bytesPerOp = v
		case "allocs/op":
			r.allocsPerOp, r.hasAllocs = v, true
		default:
			r.metrics[fields[i+1]] = v
		}
	}
	return r, ok
}

func medianOf(rs []run, get func(run) float64) float64 {
	vs := make([]float64, len(rs))
	for i, r := range rs {
		vs[i] = get(r)
	}
	sort.Float64s(vs)
	n := len(vs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}
