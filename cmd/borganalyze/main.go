// Command borganalyze runs the paper's analyses against a trace directory
// previously written by borgtrace, printing the figures the single cell
// supports (usage/allocation series, machine utilization, transitions,
// rates, delays, tasks-per-job, usage integrals, slack).
//
// Usage:
//
//	borganalyze -trace ./trace-b [-warmup-hours 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borganalyze: ")
	dir := flag.String("trace", "", "trace directory (required)")
	warmupHours := flag.Float64("warmup-hours", 4, "hours to exclude from time-averaged figures")
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	tr, err := trace.ReadDir(*dir)
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	warmup := sim.FromHours(*warmupHours)
	fmt.Fprintf(w, "trace: era=%s cell=%s machines=%d duration=%v\n%s\n\n",
		tr.Meta.Era, tr.Meta.Cell, tr.Meta.Machines, tr.Meta.Duration, tr.Counts())

	check(report.TierSeriesTable(w, "Hourly CPU usage by tier (Figure 2)", analysis.UsageSeries(tr), "cpu"))
	check(report.TierSeriesTable(w, "Hourly CPU allocation by tier (Figure 4)", analysis.AllocationSeries(tr), "cpu"))
	av := analysis.AverageUsageByTier(tr, warmup)
	check(report.TierAveragesTable(w, "Average usage by tier (Figure 3)", []analysis.TierAverages{av}, "cpu"))

	cpu, mem := analysis.MachineUtilization(tr, tr.Meta.Duration/2)
	check(report.Table(w, []string{"machine utilization", "median", "p90"}, [][]string{
		{"cpu", report.F(stats.Quantile(cpu, 0.5)), report.F(stats.Quantile(cpu, 0.9))},
		{"mem", report.F(stats.Quantile(mem, 0.5)), report.F(stats.Quantile(mem, 0.9))},
	}))

	check(report.Transitions(w, "State transitions (Figure 7)", analysis.Transitions(tr), 15))

	trs := []*trace.MemTrace{tr}
	rates := analysis.Rates(trs)
	check(report.Table(w, []string{"rates/hour", "median", "mean"}, [][]string{
		{"jobs", report.F(stats.Quantile(rates.JobsPerHour, 0.5)), report.F(stats.Summarize(rates.JobsPerHour).Mean)},
		{"new tasks", report.F(stats.Quantile(rates.NewTasksPerHour, 0.5)), report.F(stats.Summarize(rates.NewTasksPerHour).Mean)},
		{"all tasks", report.F(stats.Quantile(rates.AllTasksPerHour, 0.5)), report.F(stats.Summarize(rates.AllTasksPerHour).Mean)},
	}))

	all, byTier := analysis.SchedulingDelays(trs)
	rows := [][]string{{"all", report.F(stats.Quantile(all, 0.5)), report.F(stats.Quantile(all, 0.9))}}
	for _, tier := range trace.Tiers() {
		if xs := byTier[tier]; len(xs) > 0 {
			rows = append(rows, []string{tier.String(), report.F(stats.Quantile(xs, 0.5)), report.F(stats.Quantile(xs, 0.9))})
		}
	}
	check(report.Table(w, []string{"scheduling delay (s)", "median", "p90"}, rows))

	ints := analysis.JobUsageIntegrals(trs)
	check(report.Table2(w, "Per-job resource-hours (Table 2)",
		analysis.ComputeTable2Column(ints.CPUHours), analysis.ComputeTable2Column(ints.MemHours)))

	slack := analysis.SlackSamples(trs)
	var srows [][]string
	for _, mode := range []trace.VerticalScaling{trace.ScalingFull, trace.ScalingConstrained, trace.ScalingNone} {
		if xs := slack[mode]; len(xs) > 0 {
			srows = append(srows, []string{mode.String(), report.F(stats.Quantile(xs, 0.5))})
		}
	}
	if len(srows) > 0 {
		check(report.Table(w, []string{"peak NCU slack (Figure 14)", "median %"}, srows))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
