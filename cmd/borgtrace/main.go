// Command borgtrace simulates one Borg cell and writes its trace to disk
// as CSV tables (collection_events, instance_events, instance_usage,
// machine_events) plus meta.json — the reproduction's analogue of
// downloading one cell of the published trace.
//
// Large -machines counts are practical because placement cost does not
// grow with cell occupancy: the scheduler's fast path (incremental
// machine aggregates plus equivalence-class score caching, see the
// package docs) keeps each placement attempt allocation-free and O(1)
// per candidate. For a given build, the trace for a given (era, cell,
// machines, hours, seed) tuple is byte-stable; traces are not promised
// stable across versions of the simulator.
//
// Usage:
//
//	borgtrace -era 2019 -cell b -machines 300 -hours 24 -seed 7 -out ./trace-b
package main

import (
	"flag"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgtrace: ")
	era := flag.String("era", "2019", "trace era: 2011 or 2019")
	cell := flag.String("cell", "a", "2019 cell name (a-h); ignored for 2011")
	machines := flag.Int("machines", 200, "machines in the simulated cell")
	hours := flag.Float64("hours", 24, "simulated duration in hours")
	seed := flag.Uint64("seed", 1, "root random seed")
	out := flag.String("out", "trace-out", "output directory")
	validate := flag.Bool("validate", true, "run the §9 invariant validator before writing")
	flag.Parse()

	var profile *workload.CellProfile
	switch *era {
	case "2011":
		profile = workload.Profile2011(*machines)
	case "2019":
		profile = workload.Profile2019(*cell, *machines)
	default:
		log.Fatalf("unknown era %q", *era)
	}

	res := core.Run(profile, core.Options{
		Horizon: sim.FromHours(*hours),
		Seed:    *seed,
	})
	log.Printf("simulated cell %s: %s", profile.Name, res.Trace.Counts())
	log.Printf("scheduler: %+v", res.Sched)

	if *validate {
		violations := trace.Validate(res.Trace, trace.DefaultValidateOptions())
		if len(violations) > 0 {
			log.Printf("WARNING: %d invariant violations (first: %v)", len(violations), violations[0])
		} else {
			log.Printf("validator: all invariants hold")
		}
	}

	if err := trace.WriteDir(res.Trace, *out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote trace to %s", *out)
}
