// Command borgtrace simulates one Borg cell and writes its trace to disk
// as CSV tables (collection_events, instance_events, instance_usage,
// machine_events) plus meta.json — the reproduction's analogue of
// downloading one cell of the published trace.
//
// Large -machines counts are practical because placement cost does not
// grow with cell occupancy: the scheduler's fast path (incremental
// machine aggregates plus equivalence-class score caching, see the
// package docs) keeps each placement attempt allocation-free and O(1)
// per candidate. For a given build, the trace for a given (era, cell,
// machines, hours, seed) tuple is byte-stable; traces are not promised
// stable across versions of the simulator.
//
// By default the trace is retained in memory and written at the end
// (which also enables the §9 invariant validator). With -stream the rows
// are written to disk while the simulation runs, through a buffered
// trace.DirSink, and nothing is retained: memory stays bounded no matter
// how long the horizon, which is the mode for generating month-scale
// traces. The two modes produce byte-identical CSV for the same seed;
// -validate is unavailable under -stream because the validator needs the
// retained trace.
//
// Usage:
//
//	borgtrace -era 2019 -cell b -machines 300 -hours 24 -seed 7 -out ./trace-b
//	borgtrace -era 2019 -cell b -machines 300 -hours 720 -seed 7 -stream -out ./trace-b
package main

import (
	"flag"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgtrace: ")
	era := flag.String("era", "2019", "trace era: 2011 or 2019")
	cell := flag.String("cell", "a", "2019 cell name (a-h); ignored for 2011")
	machines := flag.Int("machines", 200, "machines in the simulated cell")
	hours := flag.Float64("hours", 24, "simulated duration in hours")
	seed := flag.Uint64("seed", 1, "root random seed")
	out := flag.String("out", "trace-out", "output directory")
	stream := flag.Bool("stream", false, "write CSV while simulating (NoMemTrace: bounded memory at any horizon; disables -validate)")
	validate := flag.Bool("validate", true, "run the §9 invariant validator before writing (retained mode only)")
	flag.Parse()

	var profile *workload.CellProfile
	switch *era {
	case "2011":
		profile = workload.Profile2011(*machines)
	case "2019":
		profile = workload.Profile2019(*cell, *machines)
	default:
		log.Fatalf("unknown era %q", *era)
	}
	horizon := sim.FromHours(*hours)

	if *stream {
		meta := trace.Meta{
			Era: profile.Era, Cell: profile.Name, Duration: horizon,
			Machines: profile.Machines, Seed: *seed,
		}
		ds, err := trace.NewDirSink(*out, meta)
		if err != nil {
			log.Fatal(err)
		}
		res := core.Run(profile, core.Options{
			Horizon:    horizon,
			Seed:       *seed,
			NoMemTrace: true,
			ExtraSinks: []trace.Sink{trace.NewBufferedSink(ds, 0)},
		})
		if err := ds.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("simulated cell %s: %d rows streamed", profile.Name, res.Rows.Total())
		log.Printf("scheduler: %+v", res.Sched)
		if *validate {
			log.Printf("note: -validate is skipped under -stream (no retained trace)")
		}
		log.Printf("wrote trace to %s (streaming)", *out)
		return
	}

	res := core.Run(profile, core.Options{
		Horizon: horizon,
		Seed:    *seed,
	})
	log.Printf("simulated cell %s: %s", profile.Name, res.Trace.Counts())
	log.Printf("scheduler: %+v", res.Sched)

	if *validate {
		violations := trace.Validate(res.Trace, trace.DefaultValidateOptions())
		if len(violations) > 0 {
			log.Printf("WARNING: %d invariant violations (first: %v)", len(violations), violations[0])
		} else {
			log.Printf("validator: all invariants hold")
		}
	}

	if err := trace.WriteDir(res.Trace, *out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote trace to %s", *out)
}
