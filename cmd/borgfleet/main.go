// Command borgfleet runs warehouse-scale federations: N synthetic cells
// sampled around the paper's 2019 medians (machine count, arrival rate,
// tier mix per cell), simulated in one process on the engine's worker
// pool with bounded memory, and rolled up online into fleet-level
// cross-cell percentiles (p50/p90/p99 per scalar metric).
//
// Every cell runs with NoMemTrace and one streaming reducer; cell specs
// materialize only as workers pick them up and are released as soon as
// their scalars fold into the rollup, so peak memory is O(-parallel)
// cells regardless of fleet size. Cell i of a fleet rooted at -seed R
// simulates with engine.DeriveSeed(R, i): the fleet report and CSVs are
// byte-identical at any -parallel setting, and cell i's world never
// depends on the fleet size, so fleets are CRN-comparable across knob
// changes.
//
// Usage:
//
//	borgfleet [-cells N] [-machines N] [-hours H] [-seed N] [-parallel N]
//	          [-fastnoise] [-policy NAME] [-arrival SPEC] [-progress]
//	          [-o report.txt] [-cells-csv FILE] [-rollup-csv FILE]
//	          [-http :6060] [-metrics FILE] [-timeline FILE]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -fastnoise enables the usage sampler's table-based noise fast path in
// every cell (core.RunKnobs.UsageNoiseFast — a versioned trace bump:
// cheaper sampling, statistically equivalent scalars, different trace
// bytes than the exact path). -policy and -arrival override every
// sampled cell's placement policy / arrival process (fleet-wide knob
// ablations under CRN). Peak HeapAlloc is always reported so the
// bounded-memory claim is observable.
//
// -http/-metrics/-timeline are the shared observability set (see
// internal/cliflags): a live Prometheus + pprof + progress endpoint
// while the fleet runs, the final fleet-level metrics rollup exported
// by extension, and the wall-clock run timeline as Chrome trace_event
// JSON. Instruments observe only — report and CSV bytes are unchanged.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"

	"repro/internal/cliflags"
	"repro/internal/fleet"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgfleet: ")
	cells := flag.Int("cells", 128, "fleet size (number of synthetic cells)")
	machines := flag.Int("machines", 60, "median machines per cell (lognormal across the fleet)")
	hours := flag.Float64("hours", 4, "simulated horizon per cell, in hours")
	common := cliflags.Register(flag.CommandLine, "fleet root seed")
	fastNoise := flag.Bool("fastnoise", false, "enable the usage-noise table fast path (versioned trace bump; same scalars statistically)")
	out := flag.String("o", "", "write the fleet report to this file instead of stdout")
	cellsCSV := flag.String("cells-csv", "", "stream per-cell scalar rows to this CSV file")
	rollupCSV := flag.String("rollup-csv", "", "write the cross-cell rollup to this CSV file")
	flag.Parse()

	if err := common.Validate(); err != nil {
		log.Fatal(err)
	}
	prof, err := common.StartProfiling()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			log.Fatal(err)
		}
	}()
	obs, err := common.StartObservability(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := obs.Close(); err != nil {
			log.Fatal(err)
		}
	}()

	cfg := fleet.Config{
		Cells:          *cells,
		MedianMachines: *machines,
		Horizon:        sim.FromHours(*hours),
		Seed:           *common.Seed,
		Parallelism:    *common.Parallel,
	}
	cfg.RunKnobs = obs.Knobs(common.Knobs())
	cfg.UsageNoiseFast = *fastNoise

	var cellWriter *fleet.CellCSV
	if *cellsCSV != "" {
		f, err := os.Create(*cellsCSV)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cellWriter = fleet.NewCellCSV(f)
		cfg.OnCell = cellWriter.Cell
	}

	effective := *common.Parallel
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	log.Printf("simulating %d cells (median %d machines, %gh horizon), parallelism %d",
		*cells, *machines, *hours, effective)

	var rep *fleet.Report
	rs := obs.MeasureRun(func() {
		rep = fleet.Run(cfg)
	})
	log.Printf("simulated %d cells (%d machines) in %s", rep.Cells, rep.TotalMachines, rs)

	if cellWriter != nil {
		if err := cellWriter.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote per-cell scalars to %s", *cellsCSV)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w)
	if err := rep.WriteText(w); err != nil {
		log.Fatal(err)
	}
	if *rollupCSV != "" {
		f, err := os.Create(*rollupCSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote rollup to %s", *rollupCSV)
	}
}
