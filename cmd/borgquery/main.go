// Command borgquery runs simple filter/group-by queries over a trace
// directory using the columnar table engine — the reproduction's miniature
// BigQuery (§3, §9).
//
// Usage:
//
//	borgquery -trace ./trace-b -table usage -group tier -agg sum:avg_cpu
//	borgquery -trace ./trace-b -table collections -where tier=prod -limit 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/table"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("borgquery: ")
	dir := flag.String("trace", "", "trace directory (required)")
	tbl := flag.String("table", "collections", "table: collections, instances or usage")
	where := flag.String("where", "", "filter, e.g. tier=prod")
	group := flag.String("group", "", "group-by column")
	agg := flag.String("agg", "", "aggregation, e.g. sum:avg_cpu or mean:avg_mem")
	limit := flag.Int("limit", 20, "max rows to print")
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}

	tr, err := trace.ReadDir(*dir)
	if err != nil {
		log.Fatal(err)
	}

	t := buildTable(tr, *tbl)
	q := table.From(t)
	if *where != "" {
		col, val, ok := strings.Cut(*where, "=")
		if !ok {
			log.Fatalf("bad -where %q (want col=value)", *where)
		}
		q = q.Where(table.EqString(col, val))
	}
	if *group != "" {
		var aggs []table.Agg
		aggs = append(aggs, table.Count("n"))
		if *agg != "" {
			kind, col, ok := strings.Cut(*agg, ":")
			if !ok {
				log.Fatalf("bad -agg %q (want kind:column)", *agg)
			}
			switch kind {
			case "sum":
				aggs = append(aggs, table.Sum("sum_"+col, col))
			case "mean":
				aggs = append(aggs, table.Mean("mean_"+col, col))
			case "min":
				aggs = append(aggs, table.Min("min_"+col, col))
			case "max":
				aggs = append(aggs, table.Max("max_"+col, col))
			default:
				log.Fatalf("unknown aggregation %q", kind)
			}
		}
		result := q.GroupBy([]string{*group}, aggs...)
		fmt.Print(result.Format(*limit))
		return
	}
	fmt.Print(q.Limit(*limit).Materialize().Format(*limit))
}

// buildTable adapts one trace table into the columnar engine.
func buildTable(tr *trace.MemTrace, name string) *table.Table {
	switch name {
	case "collections":
		t := table.New(
			table.Column{Name: "id", Type: table.Int64},
			table.Column{Name: "type", Type: table.String},
			table.Column{Name: "tier", Type: table.String},
			table.Column{Name: "priority", Type: table.Int64},
			table.Column{Name: "user", Type: table.String},
			table.Column{Name: "final", Type: table.String},
			table.Column{Name: "parent", Type: table.Int64},
		)
		for _, info := range tr.CollectionInfos() {
			t.Append(int64(info.ID), info.CollectionType.String(), info.Tier.String(),
				int64(info.Priority), info.User, info.FinalEvent.String(), int64(info.Parent))
		}
		return t
	case "instances":
		t := table.New(
			table.Column{Name: "collection", Type: table.Int64},
			table.Column{Name: "index", Type: table.Int64},
			table.Column{Name: "type", Type: table.String},
			table.Column{Name: "tier", Type: table.String},
			table.Column{Name: "machine", Type: table.Int64},
			table.Column{Name: "time", Type: table.Int64},
		)
		for _, ev := range tr.InstanceEvents {
			t.Append(int64(ev.Key.Collection), int64(ev.Key.Index), ev.Type.String(),
				ev.Tier.String(), int64(ev.Machine), int64(ev.Time))
		}
		return t
	case "usage":
		t := table.New(
			table.Column{Name: "collection", Type: table.Int64},
			table.Column{Name: "tier", Type: table.String},
			table.Column{Name: "machine", Type: table.Int64},
			table.Column{Name: "avg_cpu", Type: table.Float64},
			table.Column{Name: "avg_mem", Type: table.Float64},
			table.Column{Name: "max_cpu", Type: table.Float64},
			table.Column{Name: "limit_cpu", Type: table.Float64},
			table.Column{Name: "limit_mem", Type: table.Float64},
		)
		for _, rec := range tr.UsageRecords {
			t.Append(int64(rec.Key.Collection), rec.Tier.String(), int64(rec.Machine),
				rec.AvgUsage.CPU, rec.AvgUsage.Mem, rec.MaxUsage.CPU,
				rec.Limit.CPU, rec.Limit.Mem)
		}
		return t
	default:
		log.Fatalf("unknown table %q", name)
		return nil
	}
}
